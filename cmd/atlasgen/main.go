// Command atlasgen generates a synthetic Atlas-like traceroute dataset for
// one of the built-in scenarios (the quiet baseline or one of the paper's
// three case studies) and writes it as JSON Lines plus a metadata sidecar
// (probe→AS and prefix→AS mappings needed for offline analysis).
//
// Usage:
//
//	atlasgen -case ddos -scale quick -out ddos.jsonl -meta ddos.meta.json
//
// The output is consumed by cmd/pinpoint.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"pinpoint/internal/atlas"
	"pinpoint/internal/experiments"
	"pinpoint/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("atlasgen: ")

	caseName := flag.String("case", "quiet", "scenario: quiet, ddos, leak or ixp")
	scaleName := flag.String("scale", "quick", "workload scale: quick or full")
	out := flag.String("out", "-", "results JSONL output path (- for stdout)")
	metaPath := flag.String("meta", "", "metadata JSON output path (default <out>.meta.json)")
	flag.Parse()

	scale, err := experiments.ParseScale(*scaleName)
	if err != nil {
		log.Fatal(err)
	}

	c, err := experiments.NewCase(*caseName, scale)
	if err != nil {
		log.Fatal(err)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = f
	}
	if *metaPath == "" && *out != "-" {
		*metaPath = *out + ".meta.json"
	}

	tw := trace.NewWriter(w)
	n := 0
	err = c.Platform.Run(c.Start, c.End, func(r trace.Result) error {
		n++
		return tw.Write(r)
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}

	if *metaPath != "" {
		f, err := os.Create(*metaPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := atlas.WriteMetadata(f, c.Platform.Metadata()); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Fprintf(os.Stderr, "atlasgen: %s (%s): %d traceroutes, %s .. %s\n",
		c.Name, c.Description, n, c.Start.Format("2006-01-02 15:04"), c.End.Format("2006-01-02 15:04"))
	for _, win := range c.EventWindows {
		fmt.Fprintf(os.Stderr, "atlasgen: injected event %s .. %s\n",
			win[0].Format("2006-01-02 15:04"), win[1].Format("15:04"))
	}
}
