// Command atlasgen generates a synthetic Atlas-like traceroute dataset for
// one of the built-in scenarios (the quiet baseline or one of the paper's
// three case studies) and writes it as NDJSON — gzip-compressed when the
// output path ends in .gz — plus a metadata sidecar (probe→AS and
// prefix→AS mappings needed for offline analysis). Generation can run on
// several workers; the emitted stream is bit-identical for any count.
//
// Usage:
//
//	atlasgen -case ddos -scale quick -out ddos.ndjson -meta ddos.meta.json
//	atlasgen -case ddos -o ddos.ndjson.gz -gen-workers 4
//
// The output is consumed by cmd/pinpoint (and cmd/ihr's -input mode).
package main

import (
	"compress/gzip"
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"strings"

	"pinpoint/internal/atlas"
	"pinpoint/internal/experiments"
	"pinpoint/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("atlasgen: ")

	caseName := flag.String("case", "quiet", "scenario: "+strings.Join(experiments.CaseNames, ", "))
	scaleName := flag.String("scale", "quick", "workload scale: quick or full")
	out := flag.String("out", "-", "results NDJSON output path (- for stdout; a .gz suffix compresses)")
	flag.StringVar(out, "o", "-", "shorthand for -out")
	metaPath := flag.String("meta", "", "metadata JSON output path (default <out>.meta.json)")
	genWorkers := flag.Int("gen-workers", 1, "generator workers (0 = all CPUs, 1 = sequential)")
	flag.Parse()

	scale, err := experiments.ParseScale(*scaleName)
	if err != nil {
		log.Fatal(err)
	}

	c, err := experiments.NewCase(*caseName, scale)
	if err != nil {
		log.Fatal(err)
	}
	c.Platform.SetWorkers(*genWorkers)

	var w io.Writer = os.Stdout
	var file *os.File
	if *out != "-" {
		file, err = os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		w = file
	}
	var zw *gzip.Writer
	if strings.HasSuffix(*out, ".gz") {
		zw = gzip.NewWriter(w)
		w = zw
	}
	if *metaPath == "" && *out != "-" {
		*metaPath = *out + ".meta.json"
	}

	tw := trace.NewWriter(w)
	n := 0
	err = c.Platform.Run(c.Start, c.End, func(r trace.Result) error {
		n++
		return tw.Write(r)
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		log.Fatal(err)
	}
	if zw != nil {
		if err := zw.Close(); err != nil {
			log.Fatal(err)
		}
	}
	if file != nil {
		if err := file.Close(); err != nil {
			log.Fatal(err)
		}
	}

	if *metaPath != "" {
		f, err := os.Create(*metaPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := atlas.WriteMetadata(f, c.Platform.Metadata()); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Fprintf(os.Stderr, "atlasgen: %s (%s): %d traceroutes, %s .. %s (%d generator workers)\n",
		c.Name, c.Description, n, c.Start.Format("2006-01-02 15:04"), c.End.Format("2006-01-02 15:04"),
		c.Platform.Workers())
	for _, win := range c.EventWindows {
		fmt.Fprintf(os.Stderr, "atlasgen: injected event %s .. %s\n",
			win[0].Format("2006-01-02 15:04"), win[1].Format("15:04"))
	}
}
