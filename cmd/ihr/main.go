// Command ihr is the Internet Health Report of §8: it runs a measurement
// scenario through the streaming analysis pipeline and serves the computed
// results (alarms, per-AS magnitudes, events) over an HTTP JSON API — the
// reproduction of the paper's public API and website.
//
// Usage:
//
//	ihr -case ddos -scale quick -addr :8080
//	ihr -case ddos -input ddos.ndjson.gz -decode-workers 4
//
// With -input the server replays an NDJSON dump (e.g. from atlasgen)
// through the parallel ingest pipeline instead of generating live; the
// -case still supplies the probe/prefix metadata and the display window.
//
// Endpoints:
//
//	GET /api/status            analysis progress
//	GET /api/alarms/delay      delay-change alarms
//	GET /api/alarms/forwarding forwarding anomalies
//	GET /api/events            major per-AS events
//	GET /api/magnitude?asn=N   hourly magnitude series for one AS
//	GET /                      human-readable summary
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"pinpoint/internal/core"
	"pinpoint/internal/delay"
	"pinpoint/internal/experiments"
	"pinpoint/internal/forwarding"
	"pinpoint/internal/ingest"
	"pinpoint/internal/ipmap"
	"pinpoint/internal/trace"
)

// runtimeWorkers resolves the 0 = all-CPUs flag convention for reporting.
func runtimeWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// splitPaths parses the -input list, rejecting an effectively empty one.
func splitPaths(s string) []string {
	out := ingest.SplitPaths(s)
	if len(out) == 0 {
		log.Fatal("-input lists no dump paths")
	}
	return out
}

type server struct {
	mu       sync.RWMutex
	analyzer *core.Analyzer
	c        *experiments.Case
	done     bool
	results  int

	delayAlarms []delayAlarmJSON
	fwdAlarms   []fwdAlarmJSON
}

type delayAlarmJSON struct {
	Bin       time.Time `json:"bin"`
	Link      string    `json:"link"`
	MedianMS  float64   `json:"median_ms"`
	RefMS     float64   `json:"reference_ms"`
	ShiftMS   float64   `json:"shift_ms"`
	Deviation float64   `json:"deviation"`
	Probes    int       `json:"probes"`
	ASes      int       `json:"ases"`
}

type fwdAlarmJSON struct {
	Bin    time.Time `json:"bin"`
	Router string    `json:"router"`
	Dst    string    `json:"dst"`
	Rho    float64   `json:"rho"`
	TopHop string    `json:"top_hop"`
	TopR   float64   `json:"top_responsibility"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ihr: ")

	caseName := flag.String("case", "ddos", "scenario: quiet, ddos, leak or ixp (with -input, supplies the metadata)")
	scaleName := flag.String("scale", "quick", "workload scale: quick or full")
	addr := flag.String("addr", ":8080", "HTTP listen address")
	workers := flag.Int("workers", 0, "analysis worker shards (0 = all CPUs, 1 = sequential)")
	genWorkers := flag.Int("gen-workers", 0, "measurement generator workers (0 = all CPUs, 1 = sequential)")
	input := flag.String("input", "", "comma-separated NDJSON dump paths to analyze instead of live generation (.gz ok, - for stdin)")
	decodeWorkers := flag.Int("decode-workers", 0, "NDJSON decode workers for -input (0 = all CPUs, 1 = sequential)")
	flag.Parse()

	scale, err := experiments.ParseScale(*scaleName)
	if err != nil {
		log.Fatal(err)
	}
	c, err := experiments.NewCase(*caseName, scale)
	if err != nil {
		log.Fatal(err)
	}

	s := &server{c: c}
	cfg := core.Config{RetainAlarms: true, Workers: *workers}
	if cfg.Workers == 0 {
		cfg.Workers = core.AutoWorkers
	}
	a := core.New(cfg, c.Platform.ProbeASN, c.Net.Prefixes())
	// The hooks fire inside ObserveBatch/Flush, which the analysis
	// goroutine runs under s.mu — so they must append without locking.
	a.OnDelayAlarm = func(al delay.Alarm) {
		s.delayAlarms = append(s.delayAlarms, delayAlarmJSON{
			Bin: al.Bin, Link: al.Link.String(),
			MedianMS: al.Observed.Median, RefMS: al.Reference.Median,
			ShiftMS: al.DiffMS, Deviation: al.Deviation,
			Probes: al.Probes, ASes: al.ASes,
		})
	}
	a.OnForwardingAlarm = func(al forwarding.Alarm) {
		top, _ := al.MaxResponsibility()
		s.fwdAlarms = append(s.fwdAlarms, fwdAlarmJSON{
			Bin: al.Bin, Router: al.Router.String(), Dst: al.Dst.String(),
			Rho: al.Rho, TopHop: top.Hop.String(), TopR: top.Responsibility,
		})
	}
	s.analyzer = a

	c.Platform.SetWorkers(*genWorkers)
	go func() {
		// Both sources feed chronologically ordered batches straight into
		// ObserveBatch on this goroutine — fused generation (parallel
		// generator workers, no intermediate channel hop) or dump replay
		// (parallel NDJSON decode workers behind a reorder buffer). The
		// lock covers the analyzer and aggregator mutation: handlers read
		// them (Events, magnitudes) under RLock, so writing outside the
		// lock would be a data race on the series maps. Producers still
		// overlap analysis — they run ahead within their reorder window
		// while this batch is ingested.
		ingestBatch := func(rs []trace.Result) error {
			s.mu.Lock()
			s.results += len(rs)
			a.ObserveBatch(rs)
			s.mu.Unlock()
			return nil
		}
		t0 := time.Now()
		var err error
		var producer string
		if *input != "" {
			var st ingest.Stats
			st, err = ingest.Files(context.Background(), splitPaths(*input),
				ingest.Options{Workers: *decodeWorkers}, ingestBatch)
			producer = fmt.Sprintf("%d decode workers, %d dump lines", runtimeWorkers(*decodeWorkers), st.Lines)
		} else {
			err = c.Platform.RunChunks(context.Background(), c.Start, c.End, 0, ingestBatch)
			producer = fmt.Sprintf("%d generator workers", c.Platform.Workers())
		}
		s.mu.Lock()
		a.Flush()
		a.Close()
		s.done = true
		s.mu.Unlock()
		if err != nil {
			log.Printf("analysis run failed: %v", err)
			return
		}
		elapsed := time.Since(t0)
		log.Printf("analysis complete: %d results in %s (%.0f results/s; %d engine workers, %s)",
			s.results, elapsed.Round(time.Millisecond), float64(s.results)/elapsed.Seconds(),
			a.Workers(), producer)
	}()

	mux := http.NewServeMux()
	mux.HandleFunc("/api/status", s.handleStatus)
	mux.HandleFunc("/api/alarms/delay", s.handleDelayAlarms)
	mux.HandleFunc("/api/alarms/forwarding", s.handleFwdAlarms)
	mux.HandleFunc("/api/events", s.handleEvents)
	mux.HandleFunc("/api/magnitude", s.handleMagnitude)
	mux.HandleFunc("/", s.handleIndex)

	log.Printf("case %s (%s); serving on %s", c.Name, c.Description, *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

func writeJSON(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func (s *server) handleStatus(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	reg := s.analyzer.Registry()
	writeJSON(w, map[string]interface{}{
		"case":        s.c.Name,
		"description": s.c.Description,
		"start":       s.c.Start,
		"end":         s.c.End,
		"results":     s.results,
		"done":        s.done,
		"delayAlarms": len(s.delayAlarms),
		"fwdAlarms":   len(s.fwdAlarms),
		"identities": map[string]int{
			"addrs":   reg.Addrs(),
			"links":   reg.Links(),
			"flows":   reg.Flows(),
			"routers": reg.Routers(),
		},
	})
}

func (s *server) handleDelayAlarms(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	writeJSON(w, s.delayAlarms)
}

func (s *server) handleFwdAlarms(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	writeJSON(w, s.fwdAlarms)
}

func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	type eventJSON struct {
		ASN       string    `json:"asn"`
		Bin       time.Time `json:"bin"`
		Type      string    `json:"type"`
		Magnitude float64   `json:"magnitude"`
	}
	var out []eventJSON
	for _, e := range s.analyzer.Aggregator().Events(s.c.Start, s.c.End) {
		out = append(out, eventJSON{
			ASN: e.ASN.String(), Bin: e.Bin, Type: e.Type.String(), Magnitude: e.Magnitude,
		})
	}
	writeJSON(w, out)
}

func (s *server) handleMagnitude(w http.ResponseWriter, r *http.Request) {
	asnStr := r.URL.Query().Get("asn")
	asn, err := strconv.ParseUint(asnStr, 10, 32)
	if err != nil {
		http.Error(w, "missing or invalid asn parameter", http.StatusBadRequest)
		return
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	agg := s.analyzer.Aggregator()
	type point struct {
		T time.Time `json:"t"`
		V float64   `json:"v"`
	}
	resp := map[string][]point{}
	for _, p := range agg.DelayMagnitude(ipmap.ASN(asn), s.c.Start, s.c.End) {
		resp["delay"] = append(resp["delay"], point{p.T, p.V})
	}
	for _, p := range agg.ForwardingMagnitude(ipmap.ASN(asn), s.c.Start, s.c.End) {
		resp["forwarding"] = append(resp["forwarding"], point{p.T, p.V})
	}
	writeJSON(w, resp)
}

func (s *server) handleIndex(w http.ResponseWriter, r *http.Request) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "Internet Health Report — %s\n%s\n\n", s.c.Name, s.c.Description)
	fmt.Fprintf(w, "results processed: %d (done=%v)\n", s.results, s.done)
	fmt.Fprintf(w, "delay alarms: %d, forwarding alarms: %d\n\n", len(s.delayAlarms), len(s.fwdAlarms))
	fmt.Fprintln(w, "API: /api/status /api/alarms/delay /api/alarms/forwarding /api/events /api/magnitude?asn=N")
}
