// Command ihr is the Internet Health Report of §8: it runs a measurement
// scenario through the streaming analysis pipeline and serves the computed
// results (alarms, per-AS magnitudes, events) over an HTTP JSON API — the
// reproduction of the paper's public API and website.
//
// Usage:
//
//	ihr -case ddos -scale quick -addr :8080
//	ihr -case ddos -input ddos.ndjson.gz -decode-workers 4
//	ihr -case ddos -store /var/lib/ihr/ddos
//	ihr -follow http://writer:8080 -addr :8081
//	ihr -follow http://writer:8080 -case ddos -store /var/lib/ihr/ddos
//
// With -input the server replays an NDJSON dump (e.g. from atlasgen)
// through the parallel ingest pipeline instead of generating live; the
// -case still supplies the probe/prefix metadata and the display window.
//
// With -store every closed bin is committed to an append-only segment store
// (internal/segstore) before it is announced; restarting with the same
// directory rebuilds the snapshot from the committed segments, replays the
// deterministic input as warmup, and resumes committing at the first
// uncovered bin — serving byte-identical payloads to an uninterrupted run.
//
// With -follow the process is a replica instead of a writer: it runs no
// analysis, tails the writer's versioned replication feed (/api/stream),
// rebuilds byte-identical snapshots and serves the same read API. Replicas
// resync automatically across disconnects and writer restarts; N replicas
// behind any load balancer form a horizontally scalable read tier. Adding
// -store (plus -case for the run identity) bootstraps the replica from
// local segment files — e.g. a writer directory on shared storage — so only
// the bins missing from the files travel over the feed. -feed sizes the
// writer's in-memory catch-up ring (deltas kept for ?since= replay before
// falling back to the segment store or a full-state resync).
//
// Endpoints (see internal/serve for filters, pagination, ETag and SSE):
//
//	GET /api/status            analysis progress and run outcome
//	GET /api/alarms/delay      delay-change alarms
//	GET /api/alarms/forwarding forwarding anomalies
//	GET /api/events            major per-AS events
//	GET /api/magnitude?asn=N   hourly magnitude series for one AS
//	GET /api/bins[?bin=T]      committed-bin index / one bin's payload (-store only)
//	GET /api/stream            SSE delta stream (one event per closed bin)
//	GET /                      human-readable summary
//
// Serving is decoupled from analysis by the snapshot read model of
// internal/serve: handlers never take a lock the ingest loop holds, so
// heavy read traffic cannot stall the pipeline and a heavy batch cannot
// stall readers. SIGINT/SIGTERM shut the server down gracefully.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"os/signal"
	"runtime"
	"strings"
	"syscall"
	"time"

	"pinpoint/internal/core"
	"pinpoint/internal/delay"
	"pinpoint/internal/experiments"
	"pinpoint/internal/forwarding"
	"pinpoint/internal/ingest"
	"pinpoint/internal/segstore"
	"pinpoint/internal/serve"
	"pinpoint/internal/trace"
)

// runtimeWorkers resolves the 0 = all-CPUs flag convention for reporting.
func runtimeWorkers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// parseInputs parses the -input list. An -input that was given but lists no
// usable path is a flag error and must be rejected before the server starts
// listening — not with a log.Fatal from inside the ingest goroutine.
func parseInputs(s string) ([]string, error) {
	out := ingest.SplitPaths(s)
	if len(out) == 0 {
		return nil, errors.New("-input lists no dump paths")
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("ihr: ")

	caseName := flag.String("case", "ddos", "scenario: "+strings.Join(experiments.CaseNames, ", ")+" (with -input, supplies the metadata)")
	scaleName := flag.String("scale", "quick", "workload scale: quick or full")
	addr := flag.String("addr", ":8080", "HTTP listen address")
	workers := flag.Int("workers", 0, "analysis worker shards (0 = all CPUs, 1 = sequential)")
	genWorkers := flag.Int("gen-workers", 0, "measurement generator workers (0 = all CPUs, 1 = sequential)")
	input := flag.String("input", "", "comma-separated NDJSON dump paths to analyze instead of live generation (.gz ok, - for stdin)")
	decodeWorkers := flag.Int("decode-workers", 0, "NDJSON decode workers for -input (0 = all CPUs, 1 = sequential)")
	corroborate := flag.Int("corroborate", 0, "require this many distinct corroborating alarm sources per event (0 = off, paper behaviour)")
	storeDir := flag.String("store", "", "segment store directory for crash-safe per-bin persistence; reopening resumes past committed bins and adds /api/bins time travel")
	evictIdle := flag.Int("evict-idle-bins", 0, "evict detector state for links/flows idle this many bins (0 = off, paper behaviour)")
	follow := flag.String("follow", "", "writer base URL to replicate (e.g. http://writer:8080): run as a read replica tailing its feed instead of analyzing locally")
	feedWindow := flag.Int("feed", 0, "replication feed catch-up window in deltas (0 = default 256)")
	flag.Parse()

	// All flag validation happens before the listener opens: a bad flag must
	// fail the command, never kill a server that already accepted traffic.
	scale, err := experiments.ParseScale(*scaleName)
	if err != nil {
		log.Fatal(err)
	}
	c, err := experiments.NewCase(*caseName, scale)
	if err != nil {
		log.Fatal(err)
	}
	var inputPaths []string
	if *input != "" {
		if inputPaths, err = parseInputs(*input); err != nil {
			log.Fatal(err)
		}
	}

	if *follow != "" {
		if *input != "" {
			log.Fatal("-follow and -input are mutually exclusive (a replica runs no analysis)")
		}
		runFollower(c, *follow, *addr, *storeDir, *feedWindow)
		return
	}

	cfg := core.Config{Workers: *workers}
	if cfg.Workers == 0 {
		cfg.Workers = core.AutoWorkers
	}
	cfg.Events.Corroborate = *corroborate
	cfg.Delay = delay.Config{EvictIdleBins: *evictIdle}
	cfg.Forwarding = forwarding.Config{EvictIdleBins: *evictIdle}
	// No RetainAlarms: the publisher keeps the wire-form record, so the
	// analyzer does not need a second in-memory copy.
	a := core.New(cfg, c.Platform.ProbeASN, c.Net.Prefixes())
	meta := serve.Meta{
		Case:        c.Name,
		Description: c.Description,
		Start:       c.Start,
		End:         c.End,
	}
	var pub *serve.Publisher
	if *storeDir != "" {
		st, err := segstore.Open(*storeDir)
		if err != nil {
			log.Fatalf("-store: %v", err)
		}
		if rec := st.Recovery(); rec.TruncatedEntries > 0 || rec.TruncatedData > 0 {
			log.Printf("store %s: discarded torn tail (%d manifest bytes, %d data bytes)",
				*storeDir, rec.TruncatedEntries, rec.TruncatedData)
		}
		pub, err = serve.NewPublisherWithStore(a, meta, st)
		if err != nil {
			log.Fatalf("-store: %v", err)
		}
		if at, ok := pub.Resumed(); ok {
			// The input is replayed from the start to rebuild detector
			// state; bins before the cursor are warmup only — they are
			// never re-committed or re-announced.
			log.Printf("store %s: %d committed bins, resuming at %s (replaying earlier input as warmup)",
				*storeDir, st.Len(), at.Format(time.RFC3339))
		} else {
			log.Printf("store %s: empty, starting fresh", *storeDir)
		}
	} else {
		pub = serve.NewPublisher(a, meta)
	}
	if *feedWindow > 0 {
		pub.SetFeedWindow(*feedWindow)
	}
	srv := serve.NewServer(pub, serve.Options{Addr: *addr})

	c.Platform.SetWorkers(*genWorkers)
	go runAnalysis(a, pub, c, inputPaths, *decodeWorkers)

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	log.Printf("case %s (%s); serving on %s", c.Name, c.Description, *addr)
	if err := srv.ListenAndServe(ctx); err != nil {
		log.Fatal(err)
	}
	log.Print("shut down")
}

// runFollower is the replica role: no analyzer, no ingest — tail the
// writer's replication feed and serve the rebuilt snapshots. With a store
// directory the replica bootstraps from the local segment files first and
// only tails the bins they are missing.
func runFollower(c *experiments.Case, url, addr, storeDir string, feedWindow int) {
	opts := serve.FollowerOptions{
		URL:        strings.TrimRight(url, "/"),
		FeedWindow: feedWindow,
		Logf:       log.Printf,
	}
	if storeDir != "" {
		opts.StoreDir = storeDir
		opts.Meta = serve.Meta{
			Case:        c.Name,
			Description: c.Description,
			Start:       c.Start,
			End:         c.End,
		}
		// The writer's bin size comes from the engine config; resolve the
		// same default here instead of hardcoding it, so a future non-hour
		// case cannot make -follow -store fail the hello's bin-size check.
		opts.BinSize = core.Config{}.BinSize()
	}
	f, err := serve.NewFollower(opts)
	if err != nil {
		log.Fatal(err)
	}
	if storeDir != "" {
		log.Printf("store %s: bootstrapped to snapshot seq %d", storeDir, f.Snapshot().Seq)
	}
	srv := serve.NewServer(f, serve.Options{Addr: addr})

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	go func() {
		if err := f.Run(ctx); err != nil && ctx.Err() == nil {
			// Permanent feed failure (protocol or run-identity mismatch): keep
			// serving whatever state was reached, but say why it froze.
			log.Printf("replication stopped: %v", err)
		}
	}()
	log.Printf("replica of %s; serving on %s", url, addr)
	if err := srv.ListenAndServe(ctx); err != nil {
		log.Fatal(err)
	}
	log.Print("shut down")
}

// runAnalysis drives the fused generator (or dump replay) into the engine
// and reports the outcome through the publisher. No lock is shared with the
// HTTP side: the publisher swaps immutable snapshots as bins close.
func runAnalysis(a *core.Analyzer, pub *serve.Publisher, c *experiments.Case, inputPaths []string, decodeWorkers int) {
	ingestBatch := func(rs []trace.Result) error {
		a.ObserveBatch(rs)
		pub.ObserveResults(len(rs))
		return nil
	}
	t0 := time.Now()
	var err error
	var producer string
	if len(inputPaths) > 0 {
		var st ingest.Stats
		st, err = ingest.Files(context.Background(), inputPaths,
			ingest.Options{Workers: decodeWorkers}, ingestBatch)
		producer = fmt.Sprintf("%d decode workers, %d dump lines (%d decoded, %d skipped)",
			runtimeWorkers(decodeWorkers), st.Lines, st.Results, st.Skipped)
	} else {
		err = c.Platform.RunChunks(context.Background(), c.Start, c.End, 0, ingestBatch)
		producer = fmt.Sprintf("%d generator workers", c.Platform.Workers())
	}
	a.Flush()
	a.Close()
	pub.Finish(err)
	if err != nil {
		log.Printf("analysis run FAILED: %v", err)
		return
	}
	elapsed := time.Since(t0)
	log.Printf("analysis complete: %d results in %s (%.0f results/s; %d engine workers, %s)",
		a.Results(), elapsed.Round(time.Millisecond), float64(a.Results())/elapsed.Seconds(),
		a.Workers(), producer)
}
