package main

import "testing"

// Regression for the late-crash bug: an -input listing no usable path used
// to log.Fatal from inside the ingest goroutine, killing the server after
// it had started listening. parseInputs must reject it as a flag error
// instead, so main can refuse to serve at all.
func TestParseInputsRejectsEmptyLists(t *testing.T) {
	for _, bad := range []string{"", ",", " , ", ",,,"} {
		if paths, err := parseInputs(bad); err == nil {
			t.Errorf("parseInputs(%q) = %v, want error", bad, paths)
		}
	}
	paths, err := parseInputs(" a.ndjson , ,b.ndjson.gz")
	if err != nil {
		t.Fatalf("parseInputs(valid) error: %v", err)
	}
	if len(paths) != 2 || paths[0] != "a.ndjson" || paths[1] != "b.ndjson.gz" {
		t.Errorf("parseInputs = %v, want [a.ndjson b.ndjson.gz]", paths)
	}
}
