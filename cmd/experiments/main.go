// Command experiments regenerates the paper's tables and figures (see
// DESIGN.md §4 for the index) and prints each report with its
// paper-vs-measured claim checks. The output of `-scale full` is the source
// of EXPERIMENTS.md.
//
// Usage:
//
//	experiments                 # all experiments, quick scale
//	experiments -scale full     # benchmark scale
//	experiments -run F6,F7,F8   # one figure family
//	experiments -dot out/       # also write alarm-graph DOT files
//	experiments -robust BENCH_robust.json   # robustness grid instead
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"pinpoint/internal/experiments"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("experiments: ")

	scaleName := flag.String("scale", "quick", "workload scale: quick or full")
	runList := flag.String("run", "all", "comma-separated experiment ids (e.g. F2,F6) or all")
	dotDir := flag.String("dot", "", "directory for alarm-graph DOT output (F8, F12)")
	robustOut := flag.String("robust", "", "run the robustness grid (cases × artifact mixes, corroboration ablation) and write the JSON report to this path instead of the paper experiments")
	robustCases := flag.String("robust-cases", "", "comma-separated case subset for -robust (default all: "+strings.Join(experiments.CaseNames, ", ")+")")
	workers := flag.Int("workers", 0, "platform/analyzer workers for -robust (0 = default)")
	flag.Parse()

	scale, err := experiments.ParseScale(*scaleName)
	if err != nil {
		log.Fatal(err)
	}

	if *robustOut != "" {
		cfg := experiments.RobustConfig{Workers: *workers}
		if *robustCases != "" {
			for _, c := range strings.Split(*robustCases, ",") {
				cfg.Cases = append(cfg.Cases, strings.TrimSpace(c))
			}
		}
		rep, err := experiments.RunRobustness(scale, cfg)
		if err != nil {
			log.Fatal(err)
		}
		buf, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		buf = append(buf, '\n')
		if err := os.WriteFile(*robustOut, buf, 0o644); err != nil {
			log.Fatal(err)
		}
		s := rep.Summary
		fmt.Printf("robustness grid: %d cells → %s\n", len(rep.Cells), *robustOut)
		fmt.Printf("clean true positives %d → %d, clean windows hit %d → %d under corroboration\n",
			s.CleanTruePosBase, s.CleanTruePosCorr, s.CleanWindowsHitBase, s.CleanWindowsHitCorr)
		fmt.Printf("artifact-run false positives %d → %d under corroboration\n",
			s.ArtFalsePosBase, s.ArtFalsePosCorr)
		return
	}

	want := map[string]bool{}
	all := *runList == "all" || *runList == ""
	if !all {
		for _, id := range strings.Split(*runList, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	failures := 0
	ran := 0
	for _, e := range experiments.Registry {
		if !all && !want[e.ID] {
			continue
		}
		ran++
		rep, err := e.Run(scale)
		if err != nil {
			log.Fatalf("%s: %v", e.ID, err)
		}
		fmt.Println(rep.Render())
		failures += len(rep.Failed())
	}
	if ran == 0 {
		log.Fatalf("no experiments matched %q", *runList)
	}

	if *dotDir != "" {
		if err := os.MkdirAll(*dotDir, 0o755); err != nil {
			log.Fatal(err)
		}
		if err := experiments.WriteCaseGraphs(scale, func(name string) (*os.File, error) {
			return os.Create(filepath.Join(*dotDir, name))
		}); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("DOT graphs written to %s\n", *dotDir)
	}

	if failures > 0 {
		log.Fatalf("%d paper claims failed", failures)
	}
	fmt.Printf("all paper claims hold (%d experiments, %s scale)\n", ran, scale)
}
