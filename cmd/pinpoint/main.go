// Command pinpoint analyzes a traceroute dataset offline: it runs the full
// detection pipeline (differential-RTT delay changes, forwarding anomalies,
// per-AS aggregation) over an NDJSON dump and prints alarms, per-AS
// magnitudes, and major events. With -case it instead generates one of the
// built-in scenarios and analyzes it in place through the fused pipeline
// (parallel generator workers feeding the sharded engine directly); -case
// combined with -input replays a dump of that scenario (e.g. from
// atlasgen) through the parallel ingest pipeline, with the case supplying
// the probe and prefix metadata — no sidecar file needed.
//
// Dumps may be gzip-compressed (auto-detected), read from stdin (-), and
// -input accepts a comma-separated list replayed as one stream.
// -cpuprofile/-memprofile write pprof profiles of the whole run for field
// profiling of ingest; -intern-fused folds address interning into the
// decode workers.
//
// With -store DIR (requires -case) every closed bin is committed to an
// append-only segment store (internal/segstore) as the run progresses; a
// rerun with the same directory resumes past the committed bins, replaying
// the earlier deterministic input as warmup only. -evict-idle-bins bounds
// detector memory by evicting per-link/per-flow state idle beyond the
// threshold (a fidelity tradeoff; off by default).
//
// Usage:
//
//	pinpoint -in ddos.ndjson -meta ddos.ndjson.meta.json
//	atlasgen -case leak | pinpoint -meta leak.meta.json
//	pinpoint -case ddos -scale quick -gen-workers 4 -workers 4
//	pinpoint -case ddos -input ddos.ndjson.gz -decode-workers 4
//	pinpoint -case ddos -store /tmp/ddos.store
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/netip"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"time"

	"pinpoint/internal/atlas"
	"pinpoint/internal/core"
	"pinpoint/internal/experiments"
	"pinpoint/internal/ingest"
	"pinpoint/internal/ipmap"
	"pinpoint/internal/report"
	"pinpoint/internal/segstore"
	"pinpoint/internal/serve"
	"pinpoint/internal/timeseries"
	"pinpoint/internal/trace"
)

// splitPaths parses the -input list, rejecting an effectively empty one.
func splitPaths(s string) ([]string, error) {
	out := ingest.SplitPaths(s)
	if len(out) == 0 {
		return nil, errors.New("-input lists no dump paths")
	}
	return out, nil
}

// main only parses the exit status; the whole run lives in run() so its
// defers — crucially StopCPUProfile and the -memprofile writer — fire on
// every error path instead of being skipped by log.Fatal's os.Exit.
func main() {
	log.SetFlags(0)
	log.SetPrefix("pinpoint: ")
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	in := flag.String("in", "-", "results NDJSON input path (- for stdin; gzip auto-detected)")
	input := flag.String("input", "", "comma-separated dump paths to replay (NDJSON, .gz ok, - for stdin); with -case the case supplies the metadata")
	metaPath := flag.String("meta", "", "metadata JSON path (required for dump input unless -case)")
	caseName := flag.String("case", "", "generate and analyze a scenario ("+strings.Join(experiments.CaseNames, ", ")+") — or, with -input, supply its metadata for a dump replay")
	scaleName := flag.String("scale", "quick", "workload scale for -case: quick or full")
	genWorkers := flag.Int("gen-workers", 0, "generator workers for -case (0 = all CPUs, 1 = sequential)")
	decodeWorkers := flag.Int("decode-workers", 0, "NDJSON decode workers for dump input (0 = all CPUs, 1 = sequential)")
	skipBad := flag.Bool("skip-bad", false, "tolerate undecodable dump lines (skipped count is reported) instead of aborting")
	threshold := flag.Float64("threshold", 10, "event magnitude threshold")
	window := flag.Duration("window", 7*24*time.Hour, "magnitude sliding window")
	corroborate := flag.Int("corroborate", 0, "require this many distinct corroborating alarm sources per event (0 = off, paper behaviour)")
	workers := flag.Int("workers", 0, "analysis worker shards (0 = all CPUs, 1 = sequential)")
	verbose := flag.Bool("v", false, "print every alarm")
	topAS := flag.Int("top", 10, "number of ASes to summarize")
	dotPath := flag.String("dot", "", "write the alarm graph (all components) as Graphviz DOT to this path")
	dotAround := flag.String("dot-around", "", "restrict the DOT graph to the component containing this IP")
	internFused := flag.Bool("intern-fused", false, "fuse address interning into the NDJSON decode workers (pre-warms the identity registry straight from wire bytes)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile (taken at exit, after a GC) to this path")
	binCloseStats := flag.Bool("binclose-stats", false, "print bin-close kernel throughput (bins/links/flows closed, samples/s) after the run")
	storeDir := flag.String("store", "", "segment store directory for crash-safe per-bin persistence (requires -case); reopening resumes past committed bins, reporting post-resume alarms only")
	evictIdle := flag.Int("evict-idle-bins", 0, "evict detector state for links/flows idle this many bins (0 = off, paper behaviour)")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return fmt.Errorf("-cpuprofile: %w", err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		// Registered after the CPU-profile defer so it runs first; errors
		// only log so the CPU profile still flushes.
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				log.Printf("-memprofile: %v", err)
				return
			}
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("-memprofile: %v", err)
			}
			f.Close()
		}()
	}

	cfg := core.Config{RetainAlarms: true, Workers: *workers}
	if cfg.Workers == 0 {
		cfg.Workers = core.AutoWorkers
	}
	cfg.Events.Threshold = *threshold
	cfg.Events.Window = *window
	cfg.Events.Corroborate = *corroborate
	cfg.Delay.EvictIdleBins = *evictIdle
	cfg.Forwarding.EvictIdleBins = *evictIdle

	// hookIncremental advances the aggregator's incremental magnitude/event
	// read model as each bin closes, spreading §6 event extraction across
	// the run; the final Events query is then a cache filter instead of an
	// O(ASes × bins × window) recomputation.
	hookIncremental := func(a *core.Analyzer) {
		binSize := a.Aggregator().Config().BinSize
		a.OnBinClose = func(bin time.Time) {
			a.Aggregator().CloseBins(bin.Add(binSize))
		}
	}

	var (
		a           *core.Analyzer
		first, last time.Time
		elapsed     time.Duration
	)
	var c *experiments.Case
	if *caseName != "" {
		scale, err := experiments.ParseScale(*scaleName)
		if err != nil {
			return err
		}
		c, err = experiments.NewCase(*caseName, scale)
		if err != nil {
			return err
		}
	}

	if *input != "" && *in != "-" {
		return errors.New("-in and -input are mutually exclusive; list every dump in -input")
	}
	if c != nil && *in != "-" {
		return errors.New("-case generates its own data; use -input to replay a dump of the case")
	}
	if *storeDir != "" && c == nil {
		// Resuming replays the deterministic input from the start; only a
		// case supplies the run window the store's resume cursor needs.
		return errors.New("-store requires -case")
	}

	// attach wires per-close processing: with -store, a headless publisher
	// owns the close hook (committing each bin to the segment store and
	// advancing the incremental region); otherwise the plain incremental
	// hook runs. The publisher serves no HTTP here — it is the commit and
	// resume machinery shared with cmd/ihr.
	var pub *serve.Publisher
	attach := func(a *core.Analyzer) error {
		if *storeDir == "" {
			hookIncremental(a)
			return nil
		}
		st, err := segstore.Open(*storeDir)
		if err != nil {
			return fmt.Errorf("-store: %w", err)
		}
		if rec := st.Recovery(); rec.TruncatedEntries > 0 || rec.TruncatedData > 0 {
			fmt.Printf("store %s: discarded torn tail (%d manifest bytes, %d data bytes)\n",
				*storeDir, rec.TruncatedEntries, rec.TruncatedData)
		}
		pub, err = serve.NewPublisherWithStore(a, serve.Meta{
			Case:        c.Name,
			Description: c.Description,
			Start:       c.Start,
			End:         c.End,
		}, st)
		if err != nil {
			return fmt.Errorf("-store: %w", err)
		}
		if at, ok := pub.Resumed(); ok {
			fmt.Printf("store %s: %d committed bins, resuming at %s (replaying earlier input as warmup)\n",
				*storeDir, st.Len(), at.Format(time.RFC3339))
		}
		return nil
	}

	// replay analyzes one or more NDJSON dumps through the parallel ingest
	// pipeline (gzip auto-detected, ordered reorder-buffer delivery).
	replay := func(paths []string, probeASN func(int) (ipmap.ASN, bool), table *ipmap.Table) error {
		a = core.New(cfg, probeASN, table)
		if err := attach(a); err != nil {
			return err
		}
		opts := ingest.Options{Workers: *decodeWorkers}
		if *internFused {
			opts.Intern = a.Registry()
		}
		if *skipBad {
			opts.OnError = func(*ingest.LineError) error { return nil }
		}
		t0 := time.Now()
		st, err := a.RunFiles(context.Background(), paths, opts, func(rs []trace.Result) {
			if first.IsZero() {
				first = rs[0].Time
			}
			last = rs[len(rs)-1].Time
		})
		if err != nil {
			return err
		}
		elapsed = time.Since(t0)
		fmt.Printf("ingested %d lines (%d results, %d skipped) from %d dump(s)\n",
			st.Lines, st.Results, st.Skipped, len(paths))
		return nil
	}

	switch {
	case c != nil && *input == "":
		// Fused mode: generate and analyze in place.
		c.Platform.SetWorkers(*genWorkers)
		a = core.New(cfg, c.Platform.ProbeASN, c.Net.Prefixes())
		if err := attach(a); err != nil {
			return err
		}
		t0 := time.Now()
		if err := a.RunPlatform(context.Background(), c.Platform, c.Start, c.End); err != nil {
			return err
		}
		elapsed = time.Since(t0)
		first, last = c.Start, c.End
		fmt.Printf("case %s (%s), fused pipeline: %d generator workers\n",
			c.Name, c.Description, c.Platform.Workers())
	case c != nil:
		// Mixed mode: replay a dump of the scenario; the case supplies the
		// probe and prefix metadata instead of a -meta sidecar.
		fmt.Printf("case %s (%s), dump replay\n", c.Name, c.Description)
		paths, err := splitPaths(*input)
		if err != nil {
			return err
		}
		if err := replay(paths, c.Platform.ProbeASN, c.Net.Prefixes()); err != nil {
			return err
		}
	default:
		if *metaPath == "" {
			return errors.New("-meta is required (probe and prefix mappings)")
		}
		mf, err := os.Open(*metaPath)
		if err != nil {
			return err
		}
		meta, err := atlas.ReadMetadata(mf)
		mf.Close()
		if err != nil {
			return err
		}
		table, err := meta.Table()
		if err != nil {
			return err
		}
		paths := []string{*in}
		if *input != "" {
			if paths, err = splitPaths(*input); err != nil {
				return err
			}
		}
		if err := replay(paths, meta.ProbeASN(), table); err != nil {
			return err
		}
	}
	defer a.Close()

	if pub != nil {
		// Finish seals the run: any commit failure recorded during the run
		// surfaces here, so a store with missing bins cannot pass as a
		// completed analysis.
		pub.Finish(nil)
		if err := pub.StoreErr(); err != nil {
			return fmt.Errorf("segment store: %w", err)
		}
		st := pub.Store()
		fmt.Printf("segment store: %d committed bins in %s\n", st.Len(), *storeDir)
		defer st.Close()
	}

	fmt.Printf("processed %d results, %s .. %s (%.0f results/s end-to-end)\n",
		a.Results(), first.Format("2006-01-02 15:04"), last.Format("2006-01-02 15:04"),
		float64(a.Results())/elapsed.Seconds())
	fmt.Printf("links with samples: %d; router IPs modeled: %d (workers: %d)\n",
		a.LinksSeen(), a.RoutersSeen(), a.Workers())
	reg := a.Registry()
	fmt.Printf("interned identities: %d addrs, %d links, %d flows, %d routers\n",
		reg.Addrs(), reg.Links(), reg.Flows(), reg.Routers())
	fmt.Printf("delay alarms: %d; forwarding alarms: %d\n\n",
		len(a.DelayAlarms()), len(a.ForwardingAlarms()))

	if *binCloseStats {
		dc, fc := a.BinCloseStats()
		rate := 0.0
		if dc.Dur > 0 {
			rate = float64(dc.Samples) / dc.Dur.Seconds()
		}
		fmt.Printf("bin-close: %d bins; %d link-bins (%d ∆ samples, %.3gM samples/s through the kernels, %v); %d flow-bins (%v); %d link / %d flow states evicted\n\n",
			dc.Bins, dc.Links, dc.Samples, rate/1e6, dc.Dur.Round(time.Millisecond), fc.Flows, fc.Dur.Round(time.Millisecond),
			dc.Evicted, fc.Evicted)
	}

	if *verbose {
		for _, al := range a.DelayAlarms() {
			fmt.Printf("DELAY %s %s shift=%.1fms dev=%.1f (probes=%d ases=%d)\n",
				al.Bin.Format("01-02 15:04"), al.Link, al.DiffMS, al.Deviation, al.Probes, al.ASes)
		}
		for _, al := range a.ForwardingAlarms() {
			top, _ := al.MaxResponsibility()
			fmt.Printf("FWD   %s router=%s dst=%s ρ=%.2f top=%s r=%.2f\n",
				al.Bin.Format("01-02 15:04"), al.Router, al.Dst, al.Rho, top.Hop, top.Responsibility)
		}
		fmt.Println()
	}

	// Per-AS summary sorted by total delay severity.
	agg := a.Aggregator()
	type asScore struct {
		asn   string
		score float64
	}
	var scores []asScore
	for _, asn := range agg.ASes() {
		total := 0.0
		if s := agg.DelaySeries(asn); s != nil {
			for _, p := range s.Points() {
				total += p.V
			}
		}
		scores = append(scores, asScore{asn: asn.String(), score: total})
	}
	sort.Slice(scores, func(i, j int) bool { return scores[i].score > scores[j].score })
	rows := [][]string{{"AS", "total delay severity"}}
	for i, s := range scores {
		if i >= *topAS {
			break
		}
		rows = append(rows, []string{s.asn, fmt.Sprintf("%.1f", s.score)})
	}
	fmt.Print(report.Table(rows))

	// Extend the incremental region to the query bound (quiet trailing bins
	// included) so Events answers from the maintained cache.
	agg.CloseBins(last.Add(time.Hour))
	evs := agg.Events(timeseries.Bin(first, time.Hour).Add(*window/7), last.Add(time.Hour))
	fmt.Printf("\nmajor events (|magnitude| ≥ %.0f):\n", *threshold)
	if len(evs) == 0 {
		fmt.Println("  none")
	}
	for _, e := range evs {
		fmt.Printf("  %s\n", e)
	}

	if *dotPath != "" {
		g := a.Graph(first, last.Add(time.Hour))
		var around netip.Addr
		if *dotAround != "" {
			var err error
			around, err = netip.ParseAddr(*dotAround)
			if err != nil {
				return fmt.Errorf("-dot-around: %w", err)
			}
		}
		f, err := os.Create(*dotPath)
		if err != nil {
			return err
		}
		if err := g.WriteDOT(f, around, nil); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("\nalarm graph written to %s\n", *dotPath)
	}
	return nil
}
