// Command pinpoint analyzes a traceroute dataset offline: it runs the full
// detection pipeline (differential-RTT delay changes, forwarding anomalies,
// per-AS aggregation) over a JSONL stream and prints alarms, per-AS
// magnitudes, and major events. With -case it instead generates one of the
// built-in scenarios and analyzes it in place through the fused pipeline
// (parallel generator workers feeding the sharded engine directly).
//
// Usage:
//
//	pinpoint -in ddos.jsonl -meta ddos.jsonl.meta.json
//	atlasgen -case leak | pinpoint -meta leak.meta.json
//	pinpoint -case ddos -scale quick -gen-workers 4 -workers 4
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/netip"
	"os"
	"sort"
	"time"

	"pinpoint/internal/atlas"
	"pinpoint/internal/core"
	"pinpoint/internal/experiments"
	"pinpoint/internal/report"
	"pinpoint/internal/timeseries"
	"pinpoint/internal/trace"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("pinpoint: ")

	in := flag.String("in", "-", "results JSONL input path (- for stdin)")
	metaPath := flag.String("meta", "", "metadata JSON path (required unless -case)")
	caseName := flag.String("case", "", "generate and analyze a scenario (quiet, ddos, leak, ixp) instead of reading JSONL")
	scaleName := flag.String("scale", "quick", "workload scale for -case: quick or full")
	genWorkers := flag.Int("gen-workers", 0, "generator workers for -case (0 = all CPUs, 1 = sequential)")
	threshold := flag.Float64("threshold", 10, "event magnitude threshold")
	window := flag.Duration("window", 7*24*time.Hour, "magnitude sliding window")
	workers := flag.Int("workers", 0, "analysis worker shards (0 = all CPUs, 1 = sequential)")
	verbose := flag.Bool("v", false, "print every alarm")
	topAS := flag.Int("top", 10, "number of ASes to summarize")
	dotPath := flag.String("dot", "", "write the alarm graph (all components) as Graphviz DOT to this path")
	dotAround := flag.String("dot-around", "", "restrict the DOT graph to the component containing this IP")
	flag.Parse()

	cfg := core.Config{RetainAlarms: true, Workers: *workers}
	if cfg.Workers == 0 {
		cfg.Workers = core.AutoWorkers
	}
	cfg.Events.Threshold = *threshold
	cfg.Events.Window = *window

	var (
		a           *core.Analyzer
		first, last time.Time
		elapsed     time.Duration
	)
	if *caseName != "" {
		scale, err := experiments.ParseScale(*scaleName)
		if err != nil {
			log.Fatal(err)
		}
		c, err := experiments.NewCase(*caseName, scale)
		if err != nil {
			log.Fatal(err)
		}
		c.Platform.SetWorkers(*genWorkers)
		a = core.New(cfg, c.Platform.ProbeASN, c.Net.Prefixes())
		defer a.Close()
		t0 := time.Now()
		if err := a.RunPlatform(context.Background(), c.Platform, c.Start, c.End); err != nil {
			log.Fatal(err)
		}
		elapsed = time.Since(t0)
		first, last = c.Start, c.End
		fmt.Printf("case %s (%s), fused pipeline: %d generator workers\n",
			c.Name, c.Description, c.Platform.Workers())
	} else {
		if *metaPath == "" {
			log.Fatal("-meta is required (probe and prefix mappings)")
		}
		mf, err := os.Open(*metaPath)
		if err != nil {
			log.Fatal(err)
		}
		meta, err := atlas.ReadMetadata(mf)
		mf.Close()
		if err != nil {
			log.Fatal(err)
		}
		table, err := meta.Table()
		if err != nil {
			log.Fatal(err)
		}

		var r io.Reader = os.Stdin
		if *in != "-" {
			f, err := os.Open(*in)
			if err != nil {
				log.Fatal(err)
			}
			defer f.Close()
			r = f
		}

		a = core.New(cfg, meta.ProbeASN(), table)
		defer a.Close()

		tr := trace.NewReader(r)
		t0 := time.Now()
		batch := make([]trace.Result, 0, atlas.DefaultBatchSize)
		for {
			res, err := tr.Read()
			if err == io.EOF {
				break
			}
			if err != nil {
				log.Fatal(err)
			}
			if first.IsZero() {
				first = res.Time
			}
			last = res.Time
			batch = append(batch, res)
			if len(batch) == cap(batch) {
				a.ObserveBatch(batch)
				batch = batch[:0]
			}
		}
		a.ObserveBatch(batch)
		a.Flush()
		elapsed = time.Since(t0)
	}

	fmt.Printf("processed %d results, %s .. %s (%.0f results/s end-to-end)\n",
		a.Results(), first.Format("2006-01-02 15:04"), last.Format("2006-01-02 15:04"),
		float64(a.Results())/elapsed.Seconds())
	fmt.Printf("links with samples: %d; router IPs modeled: %d (workers: %d)\n",
		a.LinksSeen(), a.RoutersSeen(), a.Workers())
	reg := a.Registry()
	fmt.Printf("interned identities: %d addrs, %d links, %d flows, %d routers\n",
		reg.Addrs(), reg.Links(), reg.Flows(), reg.Routers())
	fmt.Printf("delay alarms: %d; forwarding alarms: %d\n\n",
		len(a.DelayAlarms()), len(a.ForwardingAlarms()))

	if *verbose {
		for _, al := range a.DelayAlarms() {
			fmt.Printf("DELAY %s %s shift=%.1fms dev=%.1f (probes=%d ases=%d)\n",
				al.Bin.Format("01-02 15:04"), al.Link, al.DiffMS, al.Deviation, al.Probes, al.ASes)
		}
		for _, al := range a.ForwardingAlarms() {
			top, _ := al.MaxResponsibility()
			fmt.Printf("FWD   %s router=%s dst=%s ρ=%.2f top=%s r=%.2f\n",
				al.Bin.Format("01-02 15:04"), al.Router, al.Dst, al.Rho, top.Hop, top.Responsibility)
		}
		fmt.Println()
	}

	// Per-AS summary sorted by total delay severity.
	agg := a.Aggregator()
	type asScore struct {
		asn   string
		score float64
	}
	var scores []asScore
	for _, asn := range agg.ASes() {
		total := 0.0
		if s := agg.DelaySeries(asn); s != nil {
			for _, p := range s.Points() {
				total += p.V
			}
		}
		scores = append(scores, asScore{asn: asn.String(), score: total})
	}
	sort.Slice(scores, func(i, j int) bool { return scores[i].score > scores[j].score })
	rows := [][]string{{"AS", "total delay severity"}}
	for i, s := range scores {
		if i >= *topAS {
			break
		}
		rows = append(rows, []string{s.asn, fmt.Sprintf("%.1f", s.score)})
	}
	fmt.Print(report.Table(rows))

	evs := agg.Events(timeseries.Bin(first, time.Hour).Add(*window/7), last.Add(time.Hour))
	fmt.Printf("\nmajor events (|magnitude| ≥ %.0f):\n", *threshold)
	if len(evs) == 0 {
		fmt.Println("  none")
	}
	for _, e := range evs {
		fmt.Printf("  %s\n", e)
	}

	if *dotPath != "" {
		g := a.Graph(first, last.Add(time.Hour))
		var around netip.Addr
		if *dotAround != "" {
			var err error
			around, err = netip.ParseAddr(*dotAround)
			if err != nil {
				log.Fatalf("-dot-around: %v", err)
			}
		}
		f, err := os.Create(*dotPath)
		if err != nil {
			log.Fatal(err)
		}
		if err := g.WriteDOT(f, around, nil); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\nalarm graph written to %s\n", *dotPath)
	}
}
