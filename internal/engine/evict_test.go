package engine_test

import (
	"fmt"
	"reflect"
	"testing"

	"pinpoint/internal/core"
	"pinpoint/internal/delay"
	"pinpoint/internal/forwarding"
)

// runEvicting pushes the fixture through an Analyzer with idle-state
// eviction enabled on both detectors.
func runEvicting(t testing.TB, fx *fixtureData, workers int) *core.Analyzer {
	t.Helper()
	a := core.New(core.Config{
		RetainAlarms: true,
		Workers:      workers,
		Delay:        delay.Config{EvictIdleBins: 2},
		Forwarding:   forwarding.Config{EvictIdleBins: 2},
	}, fx.probeASN, fx.table)
	for _, r := range fx.results {
		a.Observe(r)
	}
	a.Flush()
	return a
}

// TestEvictionDeterminism is the eviction twin of
// TestShardedMatchesSequential: with EvictIdleBins set, eviction decisions
// depend only on each link's/flow's own sample history, so any shard count
// must produce exactly the sequential run's alarms, events, magnitude
// series and seen-counts. The fixture's link-down window (3 bins) forces
// flows idle past the 2-bin threshold and back, so the evict-and-return
// path is genuinely exercised.
func TestEvictionDeterminism(t *testing.T) {
	fx := fixture(t)
	seq := runEvicting(t, fx, 1)
	if len(seq.DelayAlarms()) == 0 || len(seq.ForwardingAlarms()) == 0 {
		t.Fatalf("weak fixture: %d delay / %d forwarding alarms; want both > 0",
			len(seq.DelayAlarms()), len(seq.ForwardingAlarms()))
	}
	dc, fc := seq.BinCloseStats()
	if dc.Evicted == 0 && fc.Evicted == 0 {
		t.Fatalf("fixture never evicted (delay %d, fwd %d); the test is vacuous", dc.Evicted, fc.Evicted)
	}

	for _, workers := range []int{2, 4} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			sh := runEvicting(t, fx, workers)
			defer sh.Close()

			if !reflect.DeepEqual(seq.DelayAlarms(), sh.DelayAlarms()) {
				t.Errorf("delay alarms differ under eviction: sequential %d, sharded %d",
					len(seq.DelayAlarms()), len(sh.DelayAlarms()))
			}
			if !reflect.DeepEqual(seq.ForwardingAlarms(), sh.ForwardingAlarms()) {
				t.Errorf("forwarding alarms differ under eviction: sequential %d, sharded %d",
					len(seq.ForwardingAlarms()), len(sh.ForwardingAlarms()))
			}
			if got, want := sh.LinksSeen(), seq.LinksSeen(); got != want {
				t.Errorf("LinksSeen = %d, want %d", got, want)
			}
			if got, want := sh.RoutersSeen(), seq.RoutersSeen(); got != want {
				t.Errorf("RoutersSeen = %d, want %d", got, want)
			}
			if got, want := sh.AvgNextHops(), seq.AvgNextHops(); got != want {
				t.Errorf("AvgNextHops = %v, want %v", got, want)
			}

			seqEvents := seq.Aggregator().Events(fx.start, fx.end)
			shEvents := sh.Aggregator().Events(fx.start, fx.end)
			if !reflect.DeepEqual(seqEvents, shEvents) {
				t.Errorf("events differ under eviction")
			}
			for _, asn := range seq.Aggregator().ASes() {
				if !reflect.DeepEqual(
					seq.Aggregator().DelayMagnitude(asn, fx.start, fx.end),
					sh.Aggregator().DelayMagnitude(asn, fx.start, fx.end)) {
					t.Errorf("AS%d delay magnitude series differ under eviction", asn)
				}
				if !reflect.DeepEqual(
					seq.Aggregator().ForwardingMagnitude(asn, fx.start, fx.end),
					sh.Aggregator().ForwardingMagnitude(asn, fx.start, fx.end)) {
					t.Errorf("AS%d forwarding magnitude series differ under eviction", asn)
				}
			}
		})
	}
}
