// Package engine shards the paper's two detectors across CPU cores while
// producing output bit-identical to a single sequential detector pair.
//
// The pipeline is: the caller's goroutine extracts per-link ∆ samples
// (delay.ExtractSamples, §4) and per-router next-hop contributions
// (forwarding.ExtractContributions, §5) from each chronologically ordered
// traceroute result and routes them, by a hash of trace.LinkKey
// respectively the router address, to one of N shards. Each shard owns a
// private delay.Detector and forwarding.Detector fed through a bounded
// batch channel, so map maintenance and — the expensive part — bin
// evaluation (robust medians, Wilson CIs, Pearson correlations) run
// concurrently across shards. When the stream crosses a bin boundary the
// engine drains the in-flight batches, closes every shard's bin in
// parallel, and merges the shard alarm slices deterministically (sorted by
// bin, then link / router key — the exact order the sequential detector
// emits). The merged slices are returned to the caller, which remains the
// single writer into events.Aggregator.
//
// Determinism holds because (1) a link or router always hashes to the same
// shard, so its state and sample order are those of a lone detector, (2)
// the §4.3 random probe dropping is seeded per (link, bin) inside
// delay.Detector rather than from a shared stream, and (3) the merge sort
// restores the global key order the sequential close produces.
//
// The engine owns (or is handed) one ident.Registry shared by extraction
// and every shard detector: the caller's goroutine interns addresses,
// links, flows and routers while extracting, and the samples cross the
// shard channels as dense uint32 IDs. Shard routing hashes one uint32
// instead of two 16-byte addresses, and the shard detectors index their
// columnar state by the same IDs. Alarms resurface with reverse-resolved
// addresses, so the deterministic merge is unchanged.
package engine

import (
	"runtime"
	"sync"
	"time"

	"pinpoint/internal/delay"
	"pinpoint/internal/forwarding"
	"pinpoint/internal/hash"
	"pinpoint/internal/ident"
	"pinpoint/internal/ipmap"
	"pinpoint/internal/timeseries"
	"pinpoint/internal/trace"
)

// Config parameterizes the engine. Zero values give GOMAXPROCS shards and
// the batching defaults below.
type Config struct {
	Delay      delay.Config
	Forwarding forwarding.Config

	// Workers is the shard count. 0 means GOMAXPROCS. The engine spawns
	// one goroutine per shard; a 1-worker engine is still concurrent
	// (extraction overlaps ingestion) but callers wanting the classic
	// sequential path should use the detectors directly (core does).
	Workers int

	// BatchSize is how many traceroute results are extracted before their
	// contributions are handed to the shards in one channel send per
	// shard. 0 means 256.
	BatchSize int

	// QueueDepth bounds how many batches may be in flight per shard; a
	// full queue back-pressures the caller. 0 means 8.
	QueueDepth int

	// Registry is the shared identity layer. Leave nil to let the engine
	// create a private one; core injects the analyzer-wide registry here
	// so aggregation can resolve alarm addresses through the same IDs.
	Registry *ident.Registry
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 256
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8
	}
	if c.Registry == nil {
		c.Registry = ident.NewRegistry()
	}
	return c
}

// Stats are engine-wide detector statistics, gathered from all shards at a
// synchronization point.
type Stats struct {
	LinksSeen   int     // distinct links with ∆ samples (§4)
	RoutersSeen int     // distinct router IPs modeled (§5)
	AvgNextHops float64 // mean responsive next hops per reference model

	// Bin-close kernel accounting, aggregated across shards: Bins is the
	// per-shard maximum (every shard closes every bin), the remaining
	// fields sum over the shard partition — so Dur is CPU time spent
	// closing, not elapsed time (parallel shard closes overlap).
	DelayClose delay.CloseStats
	FwdClose   forwarding.CloseStats
}

// shardMsg is one unit of channel traffic to a shard: either an ingest
// batch for bin Bin, or (when reply is non-nil) a synchronization request —
// close the open bin and report alarms plus stats.
type shardMsg struct {
	bin      time.Time
	samples  []delay.Sample
	contribs []forwarding.Contribution

	reply chan shardResult
	flush bool // with reply: close the open bin before reporting
}

type shardResult struct {
	delayAlarms []delay.Alarm
	fwdAlarms   []forwarding.Alarm

	linksSeen   int
	routersSeen int
	refModels   int
	refNextHops int
	delayClose  delay.CloseStats
	fwdClose    forwarding.CloseStats
}

type shard struct {
	eng      *Engine
	delayDet *delay.Detector
	fwdDet   *forwarding.Detector
	ch       chan shardMsg
}

func (s *shard) run(wg *sync.WaitGroup) {
	defer wg.Done()
	for msg := range s.ch {
		if msg.reply != nil {
			var res shardResult
			if msg.flush {
				res.delayAlarms = s.delayDet.Flush()
				res.fwdAlarms = s.fwdDet.Flush()
			}
			res.linksSeen = s.delayDet.LinksSeen()
			res.routersSeen = s.fwdDet.RoutersSeen()
			res.refModels, res.refNextHops = s.fwdDet.RefStats()
			res.delayClose = s.delayDet.CloseStats()
			res.fwdClose = s.fwdDet.CloseStats()
			msg.reply <- res
			continue
		}
		s.delayDet.BeginBin(msg.bin)
		s.fwdDet.BeginBin(msg.bin)
		for _, smp := range msg.samples {
			s.delayDet.IngestSample(smp)
		}
		for _, c := range msg.contribs {
			s.fwdDet.IngestContribution(c)
		}
		// Recycle the consumed batch slices; the dispatcher refills them
		// instead of growing fresh ones, keeping steady-state ingestion
		// allocation-free on the routing path.
		if msg.samples != nil {
			s.eng.samplePool.Put(&msg.samples)
		}
		if msg.contribs != nil {
			s.eng.contribPool.Put(&msg.contribs)
		}
	}
}

// Engine is the sharded analyzer. Like the detectors it replaces, it must
// be driven from a single goroutine (Observe/Flush/stat calls); the
// concurrency lives behind the shard channels. Close must be called to
// release the shard goroutines.
type Engine struct {
	cfg      Config
	binSize  time.Duration
	reg      *ident.Registry
	intern   *ident.Interner // dispatcher-owned memo over reg
	probeASN func(int) (ipmap.ASN, bool)

	shards []*shard
	wg     sync.WaitGroup
	reply  chan shardResult // reused for every synchronization barrier

	curBin    time.Time
	haveBin   bool
	closed    bool
	lastStats Stats // refreshed at every barrier; served after Close

	// Per-shard buffers the caller's goroutine fills during extraction and
	// hands off once pending reaches BatchSize results.
	bufSamples  [][]delay.Sample
	bufContribs [][]forwarding.Contribution
	pending     int

	// Bound once to avoid a closure allocation per result.
	sampleSink  func(delay.Sample)
	contribSink func(forwarding.Contribution)

	// Batch slices cycle between the dispatcher and the shards: a shard
	// puts a consumed slice back once it has ingested it, and dispatch
	// prefers a recycled slice over allocating.
	samplePool  sync.Pool
	contribPool sync.Pool
}

// New returns a started Engine; probeASN resolves probe ids to AS numbers
// for the §4.3 diversity filter, exactly as in delay.NewDetector.
func New(cfg Config, probeASN func(int) (ipmap.ASN, bool)) *Engine {
	cfg = cfg.withDefaults()
	// Every shard detector interns through the engine's registry, so the
	// IDs on routed samples resolve identically everywhere.
	cfg.Delay.Registry = cfg.Registry
	cfg.Forwarding.Registry = cfg.Registry
	e := &Engine{
		cfg:         cfg,
		reg:         cfg.Registry,
		intern:      ident.NewInterner(cfg.Registry),
		probeASN:    probeASN,
		shards:      make([]*shard, cfg.Workers),
		reply:       make(chan shardResult, cfg.Workers),
		bufSamples:  make([][]delay.Sample, cfg.Workers),
		bufContribs: make([][]forwarding.Contribution, cfg.Workers),
	}
	for i := range e.shards {
		s := &shard{
			eng:      e,
			delayDet: delay.NewDetector(cfg.Delay, probeASN),
			fwdDet:   forwarding.NewDetector(cfg.Forwarding),
			ch:       make(chan shardMsg, cfg.QueueDepth),
		}
		e.shards[i] = s
		e.wg.Add(1)
		go s.run(&e.wg)
	}
	e.binSize = e.shards[0].delayDet.Config().BinSize
	e.sampleSink = e.routeSample
	e.contribSink = e.routeContribution
	return e
}

// Workers returns the effective shard count.
func (e *Engine) Workers() int { return len(e.shards) }

// Registry returns the shared identity registry.
func (e *Engine) Registry() *ident.Registry { return e.reg }

// shardFor maps a dense interned ID to its owning shard: one 64-bit mix of
// a uint32 instead of hashing 16-byte addresses. The same entity always
// interns to the same ID and therefore always lands on the same shard,
// which is what keeps per-link and per-router state (and the order of its
// samples) identical to a lone detector's.
func (e *Engine) shardFor(id uint32) int {
	return int(hash.Mix64(uint64(id), 0x1d) % uint64(len(e.shards)))
}

func (e *Engine) routeSample(s delay.Sample) {
	i := e.shardFor(uint32(s.Link))
	e.bufSamples[i] = append(e.bufSamples[i], s)
}

func (e *Engine) routeContribution(c forwarding.Contribution) {
	i := e.shardFor(uint32(c.Router))
	e.bufContribs[i] = append(e.bufContribs[i], c)
}

// Observe ingests one traceroute result (chronological order required, as
// for the detectors). When the result opens a new bin, the previous bin is
// closed across all shards in parallel and its merged alarms are returned
// in exactly the order a sequential detector pair would have produced.
func (e *Engine) Observe(r trace.Result) ([]delay.Alarm, []forwarding.Alarm) {
	if e.closed {
		return nil, nil
	}
	bin := timeseries.Bin(r.Time, e.binSize)
	var da []delay.Alarm
	var fa []forwarding.Alarm
	if e.haveBin && bin.After(e.curBin) {
		da, fa = e.closeBin()
	}
	if !e.haveBin || bin.After(e.curBin) {
		e.curBin = bin
		e.haveBin = true
	}
	delay.ExtractSamples(e.intern, r, e.probeASN, e.sampleSink)
	forwarding.ExtractContributions(e.intern, r, e.contribSink)
	e.pending++
	if e.pending >= e.cfg.BatchSize {
		e.dispatch()
	}
	return da, fa
}

// ObserveBatch ingests a slice of chronologically ordered results,
// accumulating any alarms released by bin closes within the slice.
func (e *Engine) ObserveBatch(rs []trace.Result) ([]delay.Alarm, []forwarding.Alarm) {
	var da []delay.Alarm
	var fa []forwarding.Alarm
	for _, r := range rs {
		d, f := e.Observe(r)
		da = append(da, d...)
		fa = append(fa, f...)
	}
	return da, fa
}

// dispatch hands the filled per-shard buffers to the shard channels. Each
// shard receives its batch tagged with the open bin; channel FIFO order
// preserves the per-link sample order of a sequential run.
func (e *Engine) dispatch() {
	for i, s := range e.shards {
		if len(e.bufSamples[i]) == 0 && len(e.bufContribs[i]) == 0 {
			continue
		}
		s.ch <- shardMsg{bin: e.curBin, samples: e.bufSamples[i], contribs: e.bufContribs[i]}
		if v, ok := e.samplePool.Get().(*[]delay.Sample); ok {
			e.bufSamples[i] = (*v)[:0]
		} else {
			e.bufSamples[i] = nil
		}
		if v, ok := e.contribPool.Get().(*[]forwarding.Contribution); ok {
			e.bufContribs[i] = (*v)[:0]
		} else {
			e.bufContribs[i] = nil
		}
	}
	e.pending = 0
}

// barrier drains the pipeline: pending buffers are dispatched, every shard
// receives a synchronization request, and the replies are collected. With
// flush set each shard also closes its open bin and reports the alarms;
// the per-shard alarm runs are returned unmerged (reply-arrival order),
// each already in the shard detector's sorted emission order.
func (e *Engine) barrier(flush bool) (shardResult, [][]delay.Alarm, [][]forwarding.Alarm) {
	e.dispatch()
	for _, s := range e.shards {
		s.ch <- shardMsg{reply: e.reply, flush: flush}
	}
	var agg shardResult
	var daRuns [][]delay.Alarm
	var faRuns [][]forwarding.Alarm
	for range e.shards {
		res := <-e.reply
		if len(res.delayAlarms) > 0 {
			daRuns = append(daRuns, res.delayAlarms)
		}
		if len(res.fwdAlarms) > 0 {
			faRuns = append(faRuns, res.fwdAlarms)
		}
		agg.linksSeen += res.linksSeen
		agg.routersSeen += res.routersSeen
		agg.refModels += res.refModels
		agg.refNextHops += res.refNextHops
		agg.delayClose.Links += res.delayClose.Links
		agg.delayClose.Samples += res.delayClose.Samples
		agg.delayClose.Evicted += res.delayClose.Evicted
		agg.delayClose.Dur += res.delayClose.Dur
		agg.delayClose.Bins = max(agg.delayClose.Bins, res.delayClose.Bins)
		agg.fwdClose.Flows += res.fwdClose.Flows
		agg.fwdClose.Evicted += res.fwdClose.Evicted
		agg.fwdClose.Dur += res.fwdClose.Dur
		agg.fwdClose.Bins = max(agg.fwdClose.Bins, res.fwdClose.Bins)
	}
	e.lastStats = Stats{
		LinksSeen:   agg.linksSeen,
		RoutersSeen: agg.routersSeen,
		DelayClose:  agg.delayClose,
		FwdClose:    agg.fwdClose,
	}
	if agg.refModels > 0 {
		e.lastStats.AvgNextHops = float64(agg.refNextHops) / float64(agg.refModels)
	}
	return agg, daRuns, faRuns
}

// mergeRuns k-way merges per-shard alarm runs into one slice. Each run is
// already in the shard detector's sorted emission order, and any given
// alarm key is owned by exactly one shard, so cross-run ties cannot occur
// and the merge restores exactly the global order the sequential detector
// emits — what the old concat-and-sort produced, without the O(n log n)
// comparison sort over alarms that are already 1/W-sorted. The linear head
// scan is O(total·W); W ≤ GOMAXPROCS and alarm counts are tiny next to
// bin-close work. A single non-empty run is returned as-is (the shard's
// close builds a fresh slice per bin, so no aliasing hazard).
func mergeRuns[T any](runs [][]T, cmp func(a, b T) int) []T {
	switch len(runs) {
	case 0:
		return nil
	case 1:
		return runs[0]
	}
	total := 0
	for _, r := range runs {
		total += len(r)
	}
	out := make([]T, 0, total)
	heads := make([]int, len(runs))
	for len(out) < total {
		best := -1
		for i, r := range runs {
			if heads[i] >= len(r) {
				continue
			}
			if best < 0 || cmp(r[heads[i]], runs[best][heads[best]]) < 0 {
				best = i
			}
		}
		out = append(out, runs[best][heads[best]])
		heads[best]++
	}
	return out
}

func cmpDelayAlarm(a, b delay.Alarm) int {
	if c := a.Bin.Compare(b.Bin); c != 0 {
		return c
	}
	if c := a.Link.Near.Compare(b.Link.Near); c != 0 {
		return c
	}
	return a.Link.Far.Compare(b.Link.Far)
}

func cmpFwdAlarm(a, b forwarding.Alarm) int {
	if c := a.Bin.Compare(b.Bin); c != 0 {
		return c
	}
	if c := a.Router.Compare(b.Router); c != 0 {
		return c
	}
	return a.Dst.Compare(b.Dst)
}

// closeBin closes the open bin on every shard in parallel and merges the
// per-shard alarm runs into the sequential order: by bin, then link
// (Near, Far) for delay and (Router, Dst) for forwarding. Within one close
// all alarms share a bin and each shard's run is already key-sorted, so
// the k-way merge alone restores the order a single detector's sorted
// close loop emits — which keeps the downstream aggregator's
// floating-point accumulation, hook order and retained-slice order
// bit-identical.
func (e *Engine) closeBin() ([]delay.Alarm, []forwarding.Alarm) {
	_, daRuns, faRuns := e.barrier(true)
	return mergeRuns(daRuns, cmpDelayAlarm), mergeRuns(faRuns, cmpFwdAlarm)
}

// Flush closes the open bin (if any) across all shards and returns the
// merged alarms. The engine stays usable: a later Observe opens a new bin.
// After Close, Flush is a no-op.
func (e *Engine) Flush() ([]delay.Alarm, []forwarding.Alarm) {
	if e.closed {
		return nil, nil
	}
	if !e.haveBin {
		e.dispatch() // nothing buffered in practice, but keep the invariant
		return nil, nil
	}
	e.haveBin = false
	return e.closeBin()
}

// Stats synchronizes with all shards and returns engine-wide detector
// statistics without closing the open bin. After Close it returns the
// statistics gathered at the last barrier (the final Flush, typically).
func (e *Engine) Stats() Stats {
	if e.closed {
		return e.lastStats
	}
	e.barrier(false)
	return e.lastStats
}

// Close releases the shard goroutines. Any still-open bin is discarded;
// call Flush first. Close is idempotent.
func (e *Engine) Close() {
	if e.closed {
		return
	}
	e.closed = true
	for _, s := range e.shards {
		close(s.ch)
	}
	e.wg.Wait()
}
