package engine_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"pinpoint/internal/atlas"
	"pinpoint/internal/core"
	"pinpoint/internal/delay"
	"pinpoint/internal/engine"
	"pinpoint/internal/forwarding"
	"pinpoint/internal/ipmap"
	"pinpoint/internal/netsim"
	"pinpoint/internal/trace"
)

// fixture is a seeded netsim campaign: a mid-size topology with a
// congestion event, builtin measurements to the root and anchoring
// measurements to two anchors, collected once and shared by every test.
type fixtureData struct {
	results  []trace.Result
	probeASN func(int) (ipmap.ASN, bool)
	table    *ipmap.Table
	start    time.Time
	end      time.Time
}

var (
	fixtureOnce sync.Once
	fixtureVal  *fixtureData
	fixtureErr  error
)

func fixture(t testing.TB) *fixtureData {
	t.Helper()
	fixtureOnce.Do(func() {
		topo, err := netsim.Generate(netsim.TopoConfig{
			Seed: 7, Tier1: 2, Transit: 4, Stub: 12,
			Roots: 1, RootInstances: 3, Anchors: 2,
		})
		if err != nil {
			fixtureErr = err
			return
		}
		start := time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
		root := topo.Roots[0]
		// A congestion window exercises the §4 delay path; a link-down
		// window reroutes flows, exercising the §5 forwarding path.
		scenario := netsim.NewScenario(
			netsim.Event{
				Name: "congestion", Kind: netsim.EventCongestion,
				From: root.Sites[0], To: root.Instances[0], Both: true,
				ExtraDelayMS: 80, Loss: 0.02,
				Start: start.Add(36 * time.Hour), End: start.Add(38 * time.Hour),
			},
			netsim.Event{
				Name: "down", Kind: netsim.EventLinkDown,
				From: root.Sites[1], To: root.Instances[1], Both: true,
				Start: start.Add(40 * time.Hour), End: start.Add(43 * time.Hour),
			},
		)
		net, err := topo.Build(scenario)
		if err != nil {
			fixtureErr = err
			return
		}
		platform := atlas.NewPlatform(net, 11, netsim.TracerouteOpts{})
		platform.AddProbes(topo.ProbeSites())
		platform.AddBuiltin(root.Addr)
		for _, a := range topo.Anchors[:2] {
			var ids []int
			for _, pr := range platform.Probes() {
				ids = append(ids, pr.ID)
			}
			platform.AddAnchoring(a.Addr, ids)
		}
		end := start.Add(46 * time.Hour)
		results, err := platform.Collect(start, end)
		if err != nil {
			fixtureErr = err
			return
		}
		fixtureVal = &fixtureData{
			results:  results,
			probeASN: platform.ProbeASN,
			table:    net.Prefixes(),
			start:    start,
			end:      end,
		}
	})
	if fixtureErr != nil {
		t.Fatalf("fixture: %v", fixtureErr)
	}
	return fixtureVal
}

// runAnalyzer pushes the whole fixture through an Analyzer with the given
// worker count and returns it flushed.
func runAnalyzer(t testing.TB, fx *fixtureData, workers int) *core.Analyzer {
	t.Helper()
	a := core.New(core.Config{RetainAlarms: true, Workers: workers}, fx.probeASN, fx.table)
	for _, r := range fx.results {
		a.Observe(r)
	}
	a.Flush()
	return a
}

// TestShardedMatchesSequential is the engine's key invariant: for any shard
// count the sharded run produces exactly the same alarms, statistics,
// magnitude series and events as the sequential path — same values, same
// order.
func TestShardedMatchesSequential(t *testing.T) {
	fx := fixture(t)
	seq := runAnalyzer(t, fx, 1)
	if len(seq.DelayAlarms()) == 0 || len(seq.ForwardingAlarms()) == 0 {
		t.Fatalf("weak fixture: %d delay / %d forwarding alarms; want both > 0",
			len(seq.DelayAlarms()), len(seq.ForwardingAlarms()))
	}

	for _, workers := range []int{2, 3, 4, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			sh := runAnalyzer(t, fx, workers)
			defer sh.Close()
			if sh.Workers() != workers {
				t.Fatalf("Workers() = %d, want %d", sh.Workers(), workers)
			}

			if !reflect.DeepEqual(seq.DelayAlarms(), sh.DelayAlarms()) {
				t.Errorf("delay alarms differ: sequential %d, sharded %d",
					len(seq.DelayAlarms()), len(sh.DelayAlarms()))
			}
			if !reflect.DeepEqual(seq.ForwardingAlarms(), sh.ForwardingAlarms()) {
				t.Errorf("forwarding alarms differ: sequential %d, sharded %d",
					len(seq.ForwardingAlarms()), len(sh.ForwardingAlarms()))
			}

			if got, want := sh.LinksSeen(), seq.LinksSeen(); got != want {
				t.Errorf("LinksSeen = %d, want %d", got, want)
			}
			if got, want := sh.RoutersSeen(), seq.RoutersSeen(); got != want {
				t.Errorf("RoutersSeen = %d, want %d", got, want)
			}
			if got, want := sh.AvgNextHops(), seq.AvgNextHops(); got != want {
				t.Errorf("AvgNextHops = %v, want %v", got, want)
			}

			seqEvents := seq.Aggregator().Events(fx.start, fx.end)
			shEvents := sh.Aggregator().Events(fx.start, fx.end)
			if !reflect.DeepEqual(seqEvents, shEvents) {
				t.Errorf("events differ: sequential %v, sharded %v", seqEvents, shEvents)
			}

			for _, asn := range seq.Aggregator().ASes() {
				sm := seq.Aggregator().DelayMagnitude(asn, fx.start, fx.end)
				hm := sh.Aggregator().DelayMagnitude(asn, fx.start, fx.end)
				if !reflect.DeepEqual(sm, hm) {
					t.Errorf("AS%d delay magnitude series differ", asn)
				}
				sf := seq.Aggregator().ForwardingMagnitude(asn, fx.start, fx.end)
				hf := sh.Aggregator().ForwardingMagnitude(asn, fx.start, fx.end)
				if !reflect.DeepEqual(sf, hf) {
					t.Errorf("AS%d forwarding magnitude series differ", asn)
				}
			}
		})
	}
}

// TestBatchedMatchesPerResult feeds the same stream through ObserveBatch
// with an awkward batch size and expects identical retained alarms.
func TestBatchedMatchesPerResult(t *testing.T) {
	fx := fixture(t)
	seq := runAnalyzer(t, fx, 1)

	a := core.New(core.Config{RetainAlarms: true, Workers: 4, BatchSize: 17}, fx.probeASN, fx.table)
	defer a.Close()
	for i := 0; i < len(fx.results); i += 97 {
		end := i + 97
		if end > len(fx.results) {
			end = len(fx.results)
		}
		a.ObserveBatch(fx.results[i:end])
	}
	a.Flush()

	if !reflect.DeepEqual(seq.DelayAlarms(), a.DelayAlarms()) {
		t.Errorf("delay alarms differ under batching")
	}
	if !reflect.DeepEqual(seq.ForwardingAlarms(), a.ForwardingAlarms()) {
		t.Errorf("forwarding alarms differ under batching")
	}
	if a.Results() != len(fx.results) {
		t.Errorf("Results() = %d, want %d", a.Results(), len(fx.results))
	}
}

// TestEngineDirect drives the engine API without the core facade: alarms
// must come back merged in (bin, key) order and Flush must reopen cleanly.
func TestEngineDirect(t *testing.T) {
	fx := fixture(t)
	e := engine.New(engine.Config{Workers: 4, BatchSize: 8}, fx.probeASN)
	defer e.Close()

	var da, fa int
	lastBin := time.Time{}
	for _, r := range fx.results {
		d, f := e.Observe(r)
		for _, al := range d {
			if al.Bin.Before(lastBin) {
				t.Fatalf("delay alarm bins out of order: %s after %s", al.Bin, lastBin)
			}
			lastBin = al.Bin
		}
		da += len(d)
		fa += len(f)
	}
	d, f := e.Flush()
	da += len(d)
	fa += len(f)
	if da == 0 || fa == 0 {
		t.Fatalf("engine produced %d delay / %d forwarding alarms; want both > 0", da, fa)
	}

	st := e.Stats()
	if st.LinksSeen == 0 || st.RoutersSeen == 0 {
		t.Fatalf("empty stats: %+v", st)
	}

	// Flush closed the bin; a second Flush must yield nothing.
	if d, f := e.Flush(); len(d) != 0 || len(f) != 0 {
		t.Errorf("second Flush returned %d/%d alarms, want none", len(d), len(f))
	}

	// The engine must accept a new stream after Flush.
	if _, _ = e.Observe(fx.results[len(fx.results)-1]); false {
		t.Fatal("unreachable")
	}
	e.Flush()
}

// TestEngineStress hammers an 8-shard engine with interleaved Observe,
// Stats and Flush calls; it exists to run under the race detector, where
// any unsynchronized access across the shard channel boundary fails the
// build (`go test -race ./internal/engine/...`).
func TestEngineStress(t *testing.T) {
	fx := fixture(t)
	a := core.New(core.Config{Workers: 8, BatchSize: 5}, fx.probeASN, fx.table)
	defer a.Close()

	hookCalls := 0
	a.OnDelayAlarm = func(delay.Alarm) { hookCalls++ }
	a.OnForwardingAlarm = func(forwarding.Alarm) { hookCalls++ }
	for i, r := range fx.results {
		a.Observe(r)
		if i%1000 == 0 {
			_ = a.LinksSeen() // Stats barrier interleaved with ingestion
		}
	}
	a.Flush()
	a.Flush() // idempotent
	if a.LinksSeen() == 0 {
		t.Fatal("no links seen")
	}
	if hookCalls == 0 {
		t.Fatal("hooks never fired")
	}
}

// TestUseAfterClose: a closed engine must degrade to no-ops (and serve the
// last gathered stats), never panic on its closed shard channels.
func TestUseAfterClose(t *testing.T) {
	fx := fixture(t)
	e := engine.New(engine.Config{Workers: 2}, fx.probeASN)
	for _, r := range fx.results[:200] {
		e.Observe(r)
	}
	e.Flush()
	want := e.Stats()
	e.Close()

	if d, f := e.Observe(fx.results[0]); d != nil || f != nil {
		t.Error("Observe after Close returned alarms")
	}
	if d, f := e.Flush(); d != nil || f != nil {
		t.Error("Flush after Close returned alarms")
	}
	if got := e.Stats(); got != want {
		t.Errorf("Stats after Close = %+v, want %+v", got, want)
	}
	e.Close() // still idempotent
}
