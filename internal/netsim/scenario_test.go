package netsim

import (
	"testing"
	"time"
)

var (
	scT0 = time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
	scT1 = scT0.Add(1 * time.Hour)
	scT2 = scT0.Add(2 * time.Hour)
	scT3 = scT0.Add(3 * time.Hour)
)

func TestLinkStateOverlappingEvents(t *testing.T) {
	s := NewScenario(
		Event{Name: "c1", Kind: EventCongestion, From: 1, To: 2, ExtraDelayMS: 10, Loss: 0.6, Start: scT0, End: scT2},
		Event{Name: "c2", Kind: EventCongestion, From: 1, To: 2, ExtraDelayMS: 5, Loss: 0.7, Start: scT1, End: scT3},
		Event{Name: "down", Kind: EventLinkDown, From: 1, To: 2, Start: scT1, End: scT2},
	)
	// Only c1 active.
	if ms, loss, down := s.LinkState(1, 2, scT0); ms != 10 || loss != 0.6 || down {
		t.Errorf("at t0: got (%v, %v, %v), want (10, 0.6, false)", ms, loss, down)
	}
	// Overlap: delays add, loss clamps to 1, down wins.
	if ms, loss, down := s.LinkState(1, 2, scT1); ms != 15 || loss != 1 || !down {
		t.Errorf("at t1: got (%v, %v, %v), want (15, 1, true)", ms, loss, down)
	}
	// c2 alone after c1 and the link-down end.
	if ms, loss, down := s.LinkState(1, 2, scT2); ms != 5 || loss != 0.7 || down {
		t.Errorf("at t2: got (%v, %v, %v), want (5, 0.7, false)", ms, loss, down)
	}
	// Directionality: none of the events touch 2→1.
	if ms, loss, down := s.LinkState(2, 1, scT1); ms != 0 || loss != 0 || down {
		t.Errorf("reverse dir: got (%v, %v, %v), want zeros", ms, loss, down)
	}
}

func TestRouterStateOverlappingEvents(t *testing.T) {
	s := NewScenario(
		Event{Name: "hush", Kind: EventSilence, Router: 7, Start: scT0, End: scT2},
		Event{Name: "b1", Kind: EventBlackhole, Router: 7, Loss: 0.5, Start: scT0, End: scT2},
		Event{Name: "b2", Kind: EventBlackhole, Router: 7, Loss: 0.8, Start: scT1, End: scT3},
	)
	if silent, drop := s.RouterState(7, scT0); !silent || drop != 0.5 {
		t.Errorf("at t0: got (%v, %v), want (true, 0.5)", silent, drop)
	}
	// Overlapping blackholes: drop probability clamps to 1.
	if silent, drop := s.RouterState(7, scT1); !silent || drop != 1 {
		t.Errorf("at t1: got (%v, %v), want (true, 1)", silent, drop)
	}
	if silent, drop := s.RouterState(7, scT2); silent || drop != 0.8 {
		t.Errorf("at t2: got (%v, %v), want (false, 0.8)", silent, drop)
	}
	if silent, drop := s.RouterState(8, scT1); silent || drop != 0 {
		t.Errorf("other router: got (%v, %v), want (false, 0)", silent, drop)
	}
}

// Zero-duration events are rejected by Build, but NewScenario accepts them
// (scenarios can be assembled programmatically before validation); the
// half-open [Start, End) semantics make them inert everywhere.
func TestZeroDurationEventIsInert(t *testing.T) {
	ev := Event{Name: "blip", Kind: EventCongestion, From: 1, To: 2, ExtraDelayMS: 99, Start: scT1, End: scT1}
	s := NewScenario(ev)
	if ev.Active(scT1) {
		t.Error("zero-duration event reports active at its own instant")
	}
	for _, at := range []time.Time{scT0, scT1, scT1.Add(time.Nanosecond), scT2} {
		if ms, loss, down := s.LinkState(1, 2, at); ms != 0 || loss != 0 || down {
			t.Errorf("at %v: got (%v, %v, %v), want zeros", at, ms, loss, down)
		}
	}
	// A zero-duration route-affecting event still contributes its instant
	// to the boundary list (an epoch boundary where nothing changes), but
	// never flips an epoch key bit.
	zr := NewScenario(Event{Name: "flap", Kind: EventLinkDown, From: 1, To: 2, Start: scT1, End: scT1})
	if got := zr.EpochBoundaries(); len(got) != 1 || !got[0].Equal(scT1) {
		t.Errorf("boundaries = %v, want [%v]", got, scT1)
	}
	if zr.EpochKey(scT1) != 0 {
		t.Error("zero-duration event flips the epoch key")
	}
	// Build rejects non-positive durations outright.
	b := NewBuilder()
	b.AS(100, "a", "10.0.100.0/24")
	r1 := b.Router(100, "r1", RouterOpts{ResponseProb: 1})
	r2 := b.Router(100, "r2", RouterOpts{ResponseProb: 1})
	b.Link(r1, r2, LinkOpts{DelayMS: 1})
	if _, err := b.Build(NewScenario(Event{Name: "blip", Kind: EventCongestion, From: r1, To: r2, Start: scT1, End: scT1})); err == nil {
		t.Error("Build accepted a zero-duration event")
	}
}

func TestEpochBoundariesSharedStart(t *testing.T) {
	s := NewScenario(
		Event{Name: "r1", Kind: EventReroute, From: 1, To: 2, WeightFactor: 10, Start: scT1, End: scT2},
		Event{Name: "r2", Kind: EventLinkDown, From: 3, To: 4, Start: scT1, End: scT3},
		Event{Name: "cosmetic", Kind: EventCongestion, From: 1, To: 2, ExtraDelayMS: 1, Start: scT0, End: scT3},
	)
	// Two route-affecting events share scT1; congestion contributes no
	// boundary. Expect deduplicated [scT1, scT2, scT3].
	got := s.EpochBoundaries()
	want := []time.Time{scT1, scT2, scT3}
	if len(got) != len(want) {
		t.Fatalf("boundaries = %v, want %v", got, want)
	}
	for i := range want {
		if !got[i].Equal(want[i]) {
			t.Fatalf("boundaries = %v, want %v", got, want)
		}
	}
	// Epoch keys: both active in [t1, t2), only r2 in [t2, t3).
	if k := s.EpochKey(scT0); k != 0 {
		t.Errorf("key(t0) = %b, want 0", k)
	}
	if k := s.EpochKey(scT1); k != 0b11 {
		t.Errorf("key(t1) = %b, want 11", k)
	}
	if k := s.EpochKey(scT2); k != 0b10 {
		t.Errorf("key(t2) = %b, want 10", k)
	}
	if k := s.EpochKey(scT3); k != 0 {
		t.Errorf("key(t3) = %b, want 0", k)
	}
}
