package netsim

import (
	"math/rand/v2"
	"net/netip"
	"testing"
	"time"
)

func TestGenerateDefaultTopology(t *testing.T) {
	topo, err := Generate(TopoConfig{Seed: 42})
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	n, err := topo.Build(nil)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(topo.Tier1) != 4 || len(topo.Transit) != 10 || len(topo.Stub) != 30 {
		t.Errorf("AS counts: %d/%d/%d", len(topo.Tier1), len(topo.Transit), len(topo.Stub))
	}
	if len(topo.Roots) != 3 || len(topo.Anchors) != 10 || len(topo.IXPs) != 1 {
		t.Errorf("services: %d roots, %d anchors, %d ixps", len(topo.Roots), len(topo.Anchors), len(topo.IXPs))
	}
	if n.NumRouters() < 80 {
		t.Errorf("router count = %d, want ≥ 80", n.NumRouters())
	}
	if len(topo.ProbeSites()) != 30 {
		t.Errorf("probe sites = %d", len(topo.ProbeSites()))
	}
	if len(topo.Targets()) != 13 {
		t.Errorf("targets = %d, want 3 roots + 10 anchors", len(topo.Targets()))
	}
}

func TestGenerateDeterministic(t *testing.T) {
	t1, err := Generate(TopoConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	t2, err := Generate(TopoConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	n1, _ := t1.Build(nil)
	n2, _ := t2.Build(nil)
	if n1.NumRouters() != n2.NumRouters() || n1.NumEdges() != n2.NumEdges() {
		t.Fatal("same seed produced different topologies")
	}
	for i := 0; i < n1.NumRouters(); i++ {
		a, b := n1.Router(RouterID(i)), n2.Router(RouterID(i))
		if a.Addr != b.Addr || a.AS != b.AS || a.Name != b.Name {
			t.Fatalf("router %d differs: %+v vs %+v", i, a, b)
		}
	}
}

func TestGeneratedTopologyFullyConnected(t *testing.T) {
	topo, err := Generate(TopoConfig{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	n, err := topo.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every probe site must reach every target.
	at := time.Date(2015, 5, 1, 0, 0, 0, 0, time.UTC)
	for _, probe := range topo.ProbeSites() {
		for _, dst := range topo.Targets() {
			if _, ok := n.ForwardPath(probe, dst, at, 0); !ok {
				t.Fatalf("probe %v cannot reach %v", n.Router(probe).Name, dst)
			}
		}
	}
}

func TestGeneratedPrefixesResolve(t *testing.T) {
	topo, err := Generate(TopoConfig{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	n, err := topo.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every router interface address must map to some AS; IXP interfaces
	// must map to the IXP ASN despite belonging to member ASes.
	for i := 0; i < n.NumRouters(); i++ {
		r := n.Router(RouterID(i))
		if _, ok := n.Prefixes().Lookup(r.Addr); !ok {
			t.Errorf("router %s addr %v has no AS mapping", r.Name, r.Addr)
		}
	}
	for _, ixp := range topo.IXPs {
		for _, iface := range ixp.Ifaces {
			asn, ok := n.Prefixes().Lookup(n.Router(iface).Addr)
			if !ok || asn != ixp.ASN {
				t.Errorf("IXP iface %v maps to %v, want %v", n.Router(iface).Addr, asn, ixp.ASN)
			}
		}
	}
	// Root service addresses map to the operator AS.
	for _, root := range topo.Roots {
		asn, ok := n.Prefixes().Lookup(root.Addr)
		if !ok || asn != root.ASN {
			t.Errorf("root %v maps to %v, want %v", root.Addr, asn, root.ASN)
		}
	}
}

// Return-path asymmetry is the paper's founding observation: most forward
// paths differ from the corresponding return path.
func TestPathAsymmetryIsCommon(t *testing.T) {
	topo, err := Generate(TopoConfig{Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	n, err := topo.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2015, 5, 1, 0, 0, 0, 0, time.UTC)
	asym, total := 0, 0
	// Anchors (unicast, stub-hosted) exercise long inter-domain paths;
	// anycast roots are intentionally close by and often symmetric.
	for _, probe := range topo.ProbeSites() {
		for _, dst := range topo.Targets()[3:] {
			fwd, ok := n.ForwardPath(probe, dst, at, 0)
			if !ok || len(fwd) < 3 {
				continue
			}
			last := fwd[len(fwd)-1]
			ret, ok := n.ReturnPath(last, probe, at)
			if !ok {
				continue
			}
			total++
			if !samePathReversed(fwd, ret) {
				asym++
			}
		}
	}
	if total == 0 {
		t.Fatal("no paths sampled")
	}
	frac := float64(asym) / float64(total)
	if frac < 0.5 {
		t.Errorf("asymmetric fraction = %.2f, want ≥ 0.5 (paper cites ~90%% at AS level)", frac)
	}
}

func samePathReversed(fwd, ret []RouterID) bool {
	if len(fwd) != len(ret) {
		return false
	}
	for i := range fwd {
		if fwd[i] != ret[len(ret)-1-i] {
			return false
		}
	}
	return true
}

// Traceroutes over the generated topology should mostly succeed and produce
// parsable hops; this is the smoke test the measurement platform relies on.
func TestGeneratedTraceroutes(t *testing.T) {
	topo, err := Generate(TopoConfig{Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	n, err := topo.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2015, 5, 1, 0, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewPCG(1, 2))
	reached := 0
	total := 0
	for _, probe := range topo.ProbeSites() {
		for ti, dst := range topo.Targets() {
			res, err := n.Traceroute(probe, dst, at, ti, rng, TracerouteOpts{})
			if err != nil {
				t.Fatalf("traceroute: %v", err)
			}
			if err := res.Validate(); err != nil {
				t.Fatalf("invalid result: %v", err)
			}
			total++
			if res.Reached() {
				reached++
			}
		}
	}
	if frac := float64(reached) / float64(total); frac < 0.9 {
		t.Errorf("reach fraction = %.2f, want ≥ 0.9", frac)
	}
}

func TestLanAddr(t *testing.T) {
	a := lanAddr("80.81.192.0/24", 1)
	if a != "80.81.192.1" {
		t.Errorf("lanAddr(1) = %s", a)
	}
	if lanAddr("80.81.192.0/24", 251) != lanAddr("80.81.192.0/24", 1) {
		t.Error("host wraps modulo 250")
	}
	if _, err := netip.ParseAddr(lanAddr("80.81.192.0/24", 99)); err != nil {
		t.Error(err)
	}
}
