package netsim

import (
	"fmt"
	"net/netip"
	"time"

	"pinpoint/internal/hash"
)

// Artifacts configures the measurement-artifact injection layer: the
// traceroute pathologies Viger et al. catalog for real Atlas data, injected
// inside TracerouteInto so detector robustness can be measured against
// hostile input. The zero value disables every artifact and — by contract —
// makes zero extra PRNG draws, so artifact-free runs are byte-identical to
// builds that never heard of this struct (the golden-test lock).
//
// Determinism: artifact decisions come from two deterministic sources only.
// Per-flow and per-(router, hour) decisions use hash.Fold over stable
// identifiers (no PRNG draw, so enabling one artifact cannot shift the draw
// sequence of another); per-packet and per-trace coin flips use the
// traceroute's own rng, which the platform reseeds per (measurement, probe,
// time) task — so artifact-laden runs stay bit-identical for any worker
// count. Draw order inside one traceroute is fixed: the route-flip coin (one
// Float64, iff RouteFlipProb > 0), then per packet the multipath coin (one
// Uint64, iff the flow is multipath-selected) followed by the unchanged
// probeHop draws, then after the TTL loop one reorder coin per adjacent hop
// boundary (iff ReorderProb > 0).
type Artifacts struct {
	// MultipathProb selects flows (per (probe, dst, parisID), by hash)
	// whose packets are load-balanced per packet across two equal-cost-ish
	// paths, as if a router on the path ignored the Paris flow identifier.
	// Replies for one TTL then mix addresses from two real paths, creating
	// false adjacent pairs / false links.
	MultipathProb float64

	// RouteFlipProb selects traces (per trace, by rng) that execute slowly
	// enough to straddle route changes: each TTL is probed
	// RouteFlipHopStall later than the previous one, and when a
	// route-affecting epoch boundary crosses the trace the forward path is
	// recomputed mid-trace — the classic inconsistent-traceroute artifact.
	RouteFlipProb float64

	// ReorderProb swaps, per adjacent hop boundary (by rng), one reply of
	// hop i with one reply of hop i+1 — response reordering attributing a
	// reply to the wrong TTL, another false-link source.
	ReorderProb float64

	// LyingHopProb selects (router, hour) pairs (by hash) during which the
	// router answers from a stale interface: a dedicated address that
	// belongs to no live router, allocated at Build from a neighboring
	// AS's prefix (an old peering allocation) so the hop is misattributed
	// across an AS boundary. Bursty by construction — one lying router
	// pollutes a whole analysis bin from a single source, exactly the
	// shape the corroboration pass is meant to demote.
	LyingHopProb float64

	// AliasProb selects routers (by hash) that answer from a second
	// interface address for half of all flows (per (router, parisID), by
	// hash). The alias address is allocated from the router's AS prefix at
	// Build time; one physical router then shows up as two IPs, splitting
	// its links' sample populations.
	AliasProb float64
}

// RouteFlipHopStall is the per-TTL pacing of a route-flip-selected "slow"
// traceroute: hop i is probed (i-1)·stall after the trace start, so a trace
// of 15 hops spans ~7 minutes and can straddle an epoch boundary.
const RouteFlipHopStall = 30 * time.Second

// Enabled reports whether any artifact is switched on.
func (a Artifacts) Enabled() bool {
	return a.MultipathProb > 0 || a.RouteFlipProb > 0 || a.ReorderProb > 0 ||
		a.LyingHopProb > 0 || a.AliasProb > 0
}

// validate checks every rate is a probability.
func (a Artifacts) validate() error {
	check := func(name string, v float64) error {
		if v < 0 || v > 1 {
			return fmt.Errorf("netsim: artifact rate %s = %v outside [0, 1]", name, v)
		}
		return nil
	}
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"MultipathProb", a.MultipathProb},
		{"RouteFlipProb", a.RouteFlipProb},
		{"ReorderProb", a.ReorderProb},
		{"LyingHopProb", a.LyingHopProb},
		{"AliasProb", a.AliasProb},
	} {
		if err := check(f.name, f.v); err != nil {
			return err
		}
	}
	return nil
}

// Hash salts: distinct per decision family so enabling one artifact never
// changes another's selections.
const (
	artSaltMultipath = 0xa17f_0001
	artSaltLying     = 0xa17f_0002
	artSaltAlias     = 0xa17f_0003
	artSaltAliasFlow = 0xa17f_0004
)

// hashFloat maps a 64-bit hash to [0, 1). hash.Fold ends on a multiply,
// which leaves its output badly clustered for small sequential inputs
// (router ids, hour counters) — comparing it against a probability would
// skew every artifact rate. A final avalanche (murmur3 fmix64) restores a
// uniform distribution without touching the shared primitive that golden
// outputs depend on.
func hashFloat(h uint64) float64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return float64(h>>11) / (1 << 53)
}

// addrHash folds an address into a stable 64-bit value.
func addrHash(a netip.Addr) uint64 {
	b := a.As16()
	var hi, lo uint64
	for i := 0; i < 8; i++ {
		hi = hi<<8 | uint64(b[i])
		lo = lo<<8 | uint64(b[i+8])
	}
	return hash.Fold(0x5ca1ab1e, hi, lo)
}

// multipathFlow reports whether the (probe, dst, parisID) flow is selected
// for per-packet load balancing.
func (a Artifacts) multipathFlow(probe RouterID, dst netip.Addr, parisID int) bool {
	if a.MultipathProb <= 0 {
		return false
	}
	h := hash.Fold(artSaltMultipath, uint64(probe), addrHash(dst), uint64(parisID))
	return hashFloat(h) < a.MultipathProb
}

// lyingRouter reports whether the router lies about its address during the
// hour containing t.
func (a Artifacts) lyingRouter(r RouterID, t time.Time) bool {
	if a.LyingHopProb <= 0 {
		return false
	}
	h := hash.Fold(artSaltLying, uint64(r), uint64(t.Unix()/3600))
	return hashFloat(h) < a.LyingHopProb
}

// aliasedReply reports whether the router answers this flow from its alias
// address: the router must be alias-selected, and the (router, parisID)
// flow hash picks the alias for roughly half of all flows.
func (a Artifacts) aliasedReply(r RouterID, parisID int) bool {
	if a.AliasProb <= 0 {
		return false
	}
	if hashFloat(hash.Fold(artSaltAlias, uint64(r))) >= a.AliasProb {
		return false
	}
	// Route the parity decision through the avalanche too: the raw Fold
	// low bit is just the seed's parity for odd multipliers.
	return hashFloat(hash.Fold(artSaltAliasFlow, uint64(r), uint64(parisID))) < 0.5
}
