package netsim

import (
	"math/rand/v2"
	"testing"
	"time"
)

func benchNet(b *testing.B) (*Net, *Topo) {
	b.Helper()
	topo, err := Generate(TopoConfig{Seed: 99})
	if err != nil {
		b.Fatal(err)
	}
	n, err := topo.Build(nil)
	if err != nil {
		b.Fatal(err)
	}
	return n, topo
}

// BenchmarkTraceroute measures the full per-traceroute cost (routing lookup
// from cache, per-packet delay/loss sampling over forward and return legs).
func BenchmarkTraceroute(b *testing.B) {
	n, topo := benchNet(b)
	at := time.Date(2015, 5, 1, 0, 0, 0, 0, time.UTC)
	sites := topo.ProbeSites()
	targets := topo.Targets()
	rng := rand.New(rand.NewPCG(1, 1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probe := sites[i%len(sites)]
		dst := targets[i%len(targets)]
		if _, err := n.Traceroute(probe, dst, at, i%16, rng, TracerouteOpts{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTracerouteWith is BenchmarkTraceroute with a caller-owned
// scratch: the per-worker configuration of the parallel generator. Only the
// returned result's two exactly-sized slices are allocated per op.
func BenchmarkTracerouteWith(b *testing.B) {
	n, topo := benchNet(b)
	at := time.Date(2015, 5, 1, 0, 0, 0, 0, time.UTC)
	sites := topo.ProbeSites()
	targets := topo.Targets()
	rng := rand.New(rand.NewPCG(1, 1))
	var sc TracerouteScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probe := sites[i%len(sites)]
		dst := targets[i%len(targets)]
		if _, err := n.TracerouteWith(&sc, probe, dst, at, i%16, rng, TracerouteOpts{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTracerouteInto measures the zero-allocation core: the result
// aliases the scratch and is dropped, so steady-state allocs/op must be 0.
func BenchmarkTracerouteInto(b *testing.B) {
	n, topo := benchNet(b)
	at := time.Date(2015, 5, 1, 0, 0, 0, 0, time.UTC)
	sites := topo.ProbeSites()
	targets := topo.Targets()
	rng := rand.New(rand.NewPCG(1, 1))
	var sc TracerouteScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		probe := sites[i%len(sites)]
		dst := targets[i%len(targets)]
		if _, err := n.TracerouteInto(&sc, probe, dst, at, i%16, rng, TracerouteOpts{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTowardTreeCold measures one Dijkstra shortest-path-tree
// computation on the default topology (the per-epoch routing cost).
func BenchmarkTowardTreeCold(b *testing.B) {
	n, topo := benchNet(b)
	sites := topo.ProbeSites()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.computeTowardTree(sites[i%len(sites)], 0)
	}
}

func BenchmarkGenerateTopology(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		topo, err := Generate(TopoConfig{Seed: uint64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if _, err := topo.Build(nil); err != nil {
			b.Fatal(err)
		}
	}
}
