package netsim

import (
	"math/rand/v2"
	"net/netip"
	"testing"
	"time"
)

// lineTopology builds P -- A -- B -- C with a detour P -- D -- C, anchor
// service on C. Weights make the direct path preferred.
func lineTopology(t *testing.T, scenario *Scenario) (*Net, map[string]RouterID) {
	t.Helper()
	b := NewBuilder()
	b.AS(100, "probe-as", "10.0.100.0/24")
	b.AS(200, "mid-as", "10.0.200.0/24")
	b.AS(300, "dst-as", "10.1.44.0/24")
	ids := map[string]RouterID{}
	ids["P"] = b.Router(100, "P", RouterOpts{ResponseProb: 1})
	ids["A"] = b.Router(200, "A", RouterOpts{ResponseProb: 1})
	ids["B"] = b.Router(200, "B", RouterOpts{ResponseProb: 1})
	ids["C"] = b.Router(300, "C", RouterOpts{ResponseProb: 1})
	ids["D"] = b.Router(200, "D", RouterOpts{ResponseProb: 1})
	b.Link(ids["P"], ids["A"], LinkOpts{DelayMS: 1, Loss: 1e-9})
	b.Link(ids["A"], ids["B"], LinkOpts{DelayMS: 2, Loss: 1e-9})
	b.Link(ids["B"], ids["C"], LinkOpts{DelayMS: 3, Loss: 1e-9})
	b.Link(ids["P"], ids["D"], LinkOpts{DelayMS: 10, Loss: 1e-9})
	b.Link(ids["D"], ids["C"], LinkOpts{DelayMS: 10, Loss: 1e-9})
	b.Service("10.1.44.200", 300, "", ids["C"])
	n, err := b.Build(scenario)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return n, ids
}

var tAt = time.Date(2015, 6, 1, 12, 0, 0, 0, time.UTC)

func TestBuilderErrors(t *testing.T) {
	cases := map[string]func(b *Builder){
		"dup AS":     func(b *Builder) { b.AS(1, "x", "10.0.0.0/24"); b.AS(1, "y", "10.0.1.0/24") },
		"bad prefix": func(b *Builder) { b.AS(1, "x", "nope") },
		"unknown AS": func(b *Builder) { b.Router(9, "r", RouterOpts{}) },
		"dup addr": func(b *Builder) {
			b.AS(1, "x", "10.0.0.0/24")
			b.RouterAt(1, "a", "10.0.0.1", RouterOpts{})
			b.RouterAt(1, "b", "10.0.0.1", RouterOpts{})
		},
		"self link": func(b *Builder) {
			b.AS(1, "x", "10.0.0.0/24")
			r := b.Router(1, "r", RouterOpts{})
			b.Link(r, r, LinkOpts{DelayMS: 1})
		},
		"zero delay": func(b *Builder) {
			b.AS(1, "x", "10.0.0.0/24")
			r1 := b.Router(1, "r1", RouterOpts{})
			r2 := b.Router(1, "r2", RouterOpts{})
			b.Link(r1, r2, LinkOpts{})
		},
		"empty service":   func(b *Builder) { b.AS(1, "x", "10.0.0.0/24"); b.Service("10.9.9.9", 1, "") },
		"unknown service": func(b *Builder) { b.AS(1, "x", "10.0.0.0/24"); b.Service("10.9.9.9", 1, "", RouterID(99)) },
	}
	for name, f := range cases {
		t.Run(name, func(t *testing.T) {
			b := NewBuilder()
			f(b)
			if _, err := b.Build(nil); err == nil {
				t.Error("expected build error")
			}
		})
	}
}

func TestBuildValidatesScenario(t *testing.T) {
	b := NewBuilder()
	b.AS(1, "x", "10.0.0.0/24")
	r1 := b.Router(1, "r1", RouterOpts{})
	r2 := b.Router(1, "r2", RouterOpts{})
	b.Link(r1, r2, LinkOpts{DelayMS: 1})
	bad := NewScenario(Event{Kind: EventSilence, Router: RouterID(42), Start: tAt, End: tAt.Add(time.Hour)})
	if _, err := b.Build(bad); err == nil {
		t.Error("scenario with unknown router accepted")
	}

	b2 := NewBuilder()
	b2.AS(1, "x", "10.0.0.0/24")
	a := b2.Router(1, "r1", RouterOpts{})
	z := b2.Router(1, "r2", RouterOpts{})
	b2.Link(a, z, LinkOpts{DelayMS: 1})
	zeroDur := NewScenario(Event{Kind: EventSilence, Router: a, Start: tAt, End: tAt})
	if _, err := b2.Build(zeroDur); err == nil {
		t.Error("zero-duration event accepted")
	}
}

func TestForwardPathShortest(t *testing.T) {
	n, ids := lineTopology(t, nil)
	path, ok := n.ForwardPath(ids["P"], netip.MustParseAddr("10.1.44.200"), tAt, 0)
	if !ok {
		t.Fatal("destination unreachable")
	}
	want := []RouterID{ids["P"], ids["A"], ids["B"], ids["C"]}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestTracerouteBasics(t *testing.T) {
	n, ids := lineTopology(t, nil)
	rng := rand.New(rand.NewPCG(1, 1))
	res, err := n.Traceroute(ids["P"], netip.MustParseAddr("10.1.44.200"), tAt, 0, rng, TracerouteOpts{})
	if err != nil {
		t.Fatalf("Traceroute: %v", err)
	}
	if err := res.Validate(); err != nil {
		t.Fatalf("invalid result: %v", err)
	}
	if len(res.Hops) != 3 {
		t.Fatalf("hops = %d, want 3", len(res.Hops))
	}
	// Final hop replies with the service address.
	if !res.Reached() {
		t.Error("destination not reached")
	}
	last := res.Hops[2].Responders()
	if len(last) != 1 || last[0] != netip.MustParseAddr("10.1.44.200") {
		t.Errorf("final hop responders = %v, want service addr", last)
	}
	// Hop 1 is A, hop 2 is B.
	if got := res.Hops[0].Responders()[0]; got != n.Router(ids["A"]).Addr {
		t.Errorf("hop1 = %v, want A", got)
	}
	if got := res.Hops[1].Responders()[0]; got != n.Router(ids["B"]).Addr {
		t.Errorf("hop2 = %v, want B", got)
	}
	// RTTs increase roughly with distance: median hop3 > median hop1.
	h1 := res.Hops[0].RTTs(n.Router(ids["A"]).Addr)
	h3 := res.Hops[2].RTTs(netip.MustParseAddr("10.1.44.200"))
	if len(h1) != 3 || len(h3) != 3 {
		t.Fatalf("want 3 replies per hop, got %d and %d", len(h1), len(h3))
	}
	if h3[0] < h1[0] {
		t.Logf("note: hop3 RTT %v < hop1 RTT %v (possible with noise)", h3[0], h1[0])
	}
}

func TestTracerouteUnknownInputs(t *testing.T) {
	n, ids := lineTopology(t, nil)
	rng := rand.New(rand.NewPCG(1, 1))
	if _, err := n.Traceroute(RouterID(99), netip.MustParseAddr("10.1.44.200"), tAt, 0, rng, TracerouteOpts{}); err == nil {
		t.Error("unknown probe accepted")
	}
	if _, err := n.Traceroute(ids["P"], netip.MustParseAddr("9.9.9.9"), tAt, 0, rng, TracerouteOpts{}); err == nil {
		t.Error("unknown destination accepted")
	}
}

func TestTracerouteDeterministicGivenSeed(t *testing.T) {
	n, ids := lineTopology(t, nil)
	r1, _ := n.Traceroute(ids["P"], netip.MustParseAddr("10.1.44.200"), tAt, 0, rand.New(rand.NewPCG(7, 9)), TracerouteOpts{})
	r2, _ := n.Traceroute(ids["P"], netip.MustParseAddr("10.1.44.200"), tAt, 0, rand.New(rand.NewPCG(7, 9)), TracerouteOpts{})
	if len(r1.Hops) != len(r2.Hops) {
		t.Fatal("hop counts differ")
	}
	for i := range r1.Hops {
		for j := range r1.Hops[i].Replies {
			a, b := r1.Hops[i].Replies[j], r2.Hops[i].Replies[j]
			if a != b {
				t.Fatalf("replies differ at hop %d: %+v vs %+v", i, a, b)
			}
		}
	}
}

func TestLinkDownReroutes(t *testing.T) {
	start := tAt
	end := tAt.Add(time.Hour)
	var ids map[string]RouterID
	var n *Net
	// Need ids before scenario; build twice with same deterministic builder.
	_, ids = lineTopology(t, nil)
	sc := NewScenario(Event{
		Name: "AB down", Kind: EventLinkDown,
		From: ids["A"], To: ids["B"], Both: true,
		Start: start, End: end,
	})
	n, ids = lineTopology(t, sc)

	before, _ := n.ForwardPath(ids["P"], netip.MustParseAddr("10.1.44.200"), start.Add(-time.Hour), 0)
	during, ok := n.ForwardPath(ids["P"], netip.MustParseAddr("10.1.44.200"), start.Add(10*time.Minute), 0)
	if !ok {
		t.Fatal("expected detour to exist")
	}
	after, _ := n.ForwardPath(ids["P"], netip.MustParseAddr("10.1.44.200"), end.Add(time.Minute), 0)

	if len(before) != 4 || len(after) != 4 {
		t.Errorf("before/after should use 3-hop path: %v / %v", before, after)
	}
	if len(during) != 3 || during[1] != ids["D"] {
		t.Errorf("during outage path = %v, want via D", during)
	}
}

func TestCongestionRaisesRTT(t *testing.T) {
	_, ids := lineTopology(t, nil)
	sc := NewScenario(Event{
		Name: "congest BC", Kind: EventCongestion,
		From: ids["B"], To: ids["C"], Both: true, ExtraDelayMS: 100,
		Start: tAt, End: tAt.Add(time.Hour),
	})
	n, ids := lineTopology(t, sc)
	dst := netip.MustParseAddr("10.1.44.200")

	med := func(at time.Time) float64 {
		rng := rand.New(rand.NewPCG(3, 3))
		var rtts []float64
		for i := 0; i < 30; i++ {
			res, err := n.Traceroute(ids["P"], dst, at, 0, rng, TracerouteOpts{})
			if err != nil {
				t.Fatal(err)
			}
			rtts = append(rtts, res.Hops[len(res.Hops)-1].RTTs(dst)...)
		}
		// crude median
		sum := 0.0
		for _, v := range rtts {
			sum += v
		}
		return sum / float64(len(rtts))
	}
	quiet := med(tAt.Add(-time.Hour))
	busy := med(tAt.Add(10 * time.Minute))
	if busy < quiet+80 {
		t.Errorf("congestion not visible: quiet=%v busy=%v", quiet, busy)
	}
}

func TestSilenceMakesHopUnresponsive(t *testing.T) {
	_, ids := lineTopology(t, nil)
	sc := NewScenario(Event{
		Name: "B silent", Kind: EventSilence, Router: ids["B"],
		Start: tAt, End: tAt.Add(time.Hour),
	})
	n, ids := lineTopology(t, sc)
	rng := rand.New(rand.NewPCG(5, 5))
	res, err := n.Traceroute(ids["P"], netip.MustParseAddr("10.1.44.200"), tAt.Add(time.Minute), 0, rng, TracerouteOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hops) != 3 {
		t.Fatalf("hops = %d, want 3 (silent router still forwards)", len(res.Hops))
	}
	if !res.Hops[1].Unresponsive() {
		t.Error("hop 2 should be unresponsive while B is silent")
	}
	if !res.Reached() {
		t.Error("traffic should still reach the destination through a silent router")
	}
}

func TestBlackholeDropsTransit(t *testing.T) {
	_, ids := lineTopology(t, nil)
	sc := NewScenario(Event{
		Name: "B blackhole", Kind: EventBlackhole, Router: ids["B"], Loss: 1,
		Start: tAt, End: tAt.Add(time.Hour),
	})
	n, ids := lineTopology(t, sc)
	rng := rand.New(rand.NewPCG(6, 6))
	res, err := n.Traceroute(ids["P"], netip.MustParseAddr("10.1.44.200"), tAt.Add(time.Minute), 0, rng, TracerouteOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reached() {
		t.Error("blackholed path must not reach the destination")
	}
	// B itself still answers TTL-expired (it is the target, not transit).
	if res.Hops[1].Unresponsive() {
		t.Error("hop at B should still respond (not transit for its own TTL)")
	}
	// Hops beyond B are dead.
	if len(res.Hops) < 3 || !res.Hops[2].Unresponsive() {
		t.Error("hops beyond the blackhole should time out")
	}
}

func TestAnycastPicksNearestInstance(t *testing.T) {
	b := NewBuilder()
	b.AS(1, "left", "10.0.1.0/24")
	b.AS(2, "right", "10.0.2.0/24")
	b.AS(3, "op", "10.0.3.0/24")
	p1 := b.Router(1, "p1", RouterOpts{ResponseProb: 1})
	p2 := b.Router(2, "p2", RouterOpts{ResponseProb: 1})
	mid := b.Router(1, "mid", RouterOpts{ResponseProb: 1})
	i1 := b.Router(3, "i1", RouterOpts{ResponseProb: 1})
	i2 := b.Router(3, "i2", RouterOpts{ResponseProb: 1})
	b.Link(p1, i1, LinkOpts{DelayMS: 1})
	b.Link(p2, i2, LinkOpts{DelayMS: 1})
	b.Link(p1, mid, LinkOpts{DelayMS: 30})
	b.Link(p2, mid, LinkOpts{DelayMS: 30})
	b.Service("193.0.14.129", 3, "193.0.14.0/24", i1, i2)
	n, err := b.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	dst := netip.MustParseAddr("193.0.14.129")
	path1, _ := n.ForwardPath(p1, dst, tAt, 0)
	path2, _ := n.ForwardPath(p2, dst, tAt, 0)
	if path1[len(path1)-1] != i1 {
		t.Errorf("p1 should hit instance i1, path %v", path1)
	}
	if path2[len(path2)-1] != i2 {
		t.Errorf("p2 should hit instance i2, path %v", path2)
	}
}

func TestEpochKeyAndBoundaries(t *testing.T) {
	_, ids := lineTopology(t, nil)
	e1 := Event{Name: "r1", Kind: EventReroute, From: ids["A"], To: ids["B"], WeightFactor: 10, Start: tAt, End: tAt.Add(time.Hour)}
	e2 := Event{Name: "r2", Kind: EventLinkDown, From: ids["B"], To: ids["C"], Start: tAt.Add(30 * time.Minute), End: tAt.Add(2 * time.Hour)}
	e3 := Event{Name: "noise", Kind: EventCongestion, From: ids["A"], To: ids["B"], ExtraDelayMS: 5, Start: tAt, End: tAt.Add(time.Hour)}
	sc := NewScenario(e1, e2, e3)
	if sc.EpochKey(tAt.Add(-time.Minute)) != 0 {
		t.Error("epoch before events should be 0")
	}
	k1 := sc.EpochKey(tAt.Add(10 * time.Minute))
	k2 := sc.EpochKey(tAt.Add(45 * time.Minute))
	k3 := sc.EpochKey(tAt.Add(90 * time.Minute))
	if k1 == 0 || k1 == k2 || k2 == k3 || k1 == k3 {
		t.Errorf("epochs should differ: %v %v %v", k1, k2, k3)
	}
	bounds := sc.EpochBoundaries()
	if len(bounds) != 4 {
		t.Errorf("boundaries = %v, want 4 distinct instants", bounds)
	}
	// Congestion is not route-affecting: same epoch key with/without it.
	scNoCongest := NewScenario(e1, e2)
	if scNoCongest.EpochKey(tAt.Add(10*time.Minute)) != k1 {
		t.Error("congestion event must not alter the epoch key")
	}
}

func TestGapLimitTruncates(t *testing.T) {
	// P -- A -- B(silent+blackhole) -- C -- dst: traceroute should stop
	// after GapLimit unresponsive hops.
	_, ids := lineTopology(t, nil)
	sc := NewScenario(
		Event{Name: "bh", Kind: EventBlackhole, Router: ids["A"], Loss: 1, Start: tAt, End: tAt.Add(time.Hour)},
		Event{Name: "quiet", Kind: EventSilence, Router: ids["A"], Start: tAt, End: tAt.Add(time.Hour)},
	)
	n, ids := lineTopology(t, sc)
	rng := rand.New(rand.NewPCG(8, 8))
	res, err := n.Traceroute(ids["P"], netip.MustParseAddr("10.1.44.200"), tAt.Add(time.Minute), 0, rng, TracerouteOpts{GapLimit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hops) != 3 {
		t.Errorf("hops = %d, want exactly GapLimit=3 timeout hops", len(res.Hops))
	}
	for _, h := range res.Hops {
		if !h.Unresponsive() {
			t.Error("all hops should be unresponsive")
		}
	}
}
