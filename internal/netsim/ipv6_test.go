package netsim

import (
	"math/rand/v2"
	"testing"
	"time"
)

func TestGenerateIPv6Topology(t *testing.T) {
	topo, err := Generate(TopoConfig{Seed: 66, IPv6: true, Tier1: 2, Transit: 4, Stub: 8,
		Roots: 1, RootInstances: 3, Anchors: 2, IXPs: 1, IXPMembers: 3})
	if err != nil {
		t.Fatal(err)
	}
	n, err := topo.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	// Every router interface and every service address is IPv6.
	for i := 0; i < n.NumRouters(); i++ {
		if !n.Router(RouterID(i)).Addr.Is6() {
			t.Fatalf("router %d has non-IPv6 address %v", i, n.Router(RouterID(i)).Addr)
		}
	}
	for _, svc := range n.Services() {
		if !svc.Is6() {
			t.Fatalf("service %v is not IPv6", svc)
		}
	}
	// LPM resolves IPv6 interfaces, including IXP LAN interfaces to the
	// IXP ASN.
	for _, ixp := range topo.IXPs {
		for _, iface := range ixp.Ifaces {
			asn, ok := n.Prefixes().Lookup(n.Router(iface).Addr)
			if !ok || asn != ixp.ASN {
				t.Errorf("IPv6 IXP iface %v → %v/%v, want %v", n.Router(iface).Addr, asn, ok, ixp.ASN)
			}
		}
	}
}

// The full detection stack is address-family agnostic: a congestion on an
// IPv6 link is detected exactly like an IPv4 one.
func TestIPv6TracerouteAndAddresses(t *testing.T) {
	topo, err := Generate(TopoConfig{Seed: 67, IPv6: true, Tier1: 2, Transit: 4, Stub: 8,
		Roots: 1, RootInstances: 2, Anchors: 2, IXPs: 1, IXPMembers: 3})
	if err != nil {
		t.Fatal(err)
	}
	n, err := topo.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	at := time.Date(2015, 5, 1, 0, 0, 0, 0, time.UTC)
	rng := rand.New(rand.NewPCG(1, 1))
	reached := 0
	for _, probe := range topo.ProbeSites() {
		res, err := n.Traceroute(probe, topo.Roots[0].Addr, at, 0, rng, TracerouteOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Validate(); err != nil {
			t.Fatal(err)
		}
		if res.Reached() {
			reached++
		}
		for _, h := range res.Hops {
			for _, a := range h.Responders() {
				if !a.Is6() {
					t.Fatalf("IPv4 responder %v in IPv6 topology", a)
				}
			}
		}
	}
	if reached < len(topo.ProbeSites())/2 {
		t.Errorf("only %d/%d probes reached the v6 root", reached, len(topo.ProbeSites()))
	}
}
