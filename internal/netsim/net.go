package netsim

import (
	"container/heap"
	"fmt"
	"net/netip"
	"sync"
	"sync/atomic"

	"pinpoint/internal/ipmap"
)

// RouterID indexes a router within a Net.
type RouterID int

// NoRouter is the invalid router sentinel.
const NoRouter RouterID = -1

// Router is one IP interface in the simulated network.
type Router struct {
	ID   RouterID
	Addr netip.Addr
	AS   ipmap.ASN
	Name string

	// ResponseProb is the probability the router answers a TTL-expired
	// packet with an ICMP time-exceeded message. Real routers rate-limit
	// or disable ICMP generation; values slightly below 1 make hops
	// occasionally unresponsive even in healthy conditions.
	ResponseProb float64

	// SlowPathMS is the mean of the exponential extra delay a router adds
	// when generating an ICMP reply (the "slow path" of §2).
	SlowPathMS float64
}

// EdgeID indexes a directional edge within a Net.
type EdgeID int

// Edge is one direction of a link between two routers.
type Edge struct {
	ID     EdgeID
	From   RouterID
	To     RouterID
	Weight float64 // routing weight (lower is preferred)
	Delay  DelayModel
	Loss   float64 // baseline per-packet loss probability
}

// Net is an immutable simulated network. Build one with a Builder and then
// query it concurrently; route trees are cached per (root, epoch) in an
// immutable copy-on-write map, so steady-state lookups are lock-free — the
// parallel measurement generator hits this cache from every worker on every
// traceroute, and a mutex here shows up immediately in profiles.
type Net struct {
	routers  []Router
	edges    []Edge
	out      [][]EdgeID // edges leaving each router
	in       [][]EdgeID // edges entering each router
	byAddr   map[netip.Addr]RouterID
	services map[netip.Addr][]RouterID // service address → instance routers
	prefixes *ipmap.Table
	scenario *Scenario

	// Measurement-artifact layer (see Artifacts). aliases[id] is the
	// router's second interface address (invalid when unassigned) and
	// staleAddr[id] the stale interface address a lying router replies
	// with — drawn from a neighboring AS's prefix, or the router's own
	// address when allocation was impossible (artifact no-op); both
	// are only populated when the relevant artifact rate is nonzero.
	artifacts Artifacts
	aliases   []netip.Addr
	staleAddr []netip.Addr

	treeMu  sync.Mutex                              // serializes cache misses
	trees   atomic.Pointer[map[treeKey]*towardTree] // immutable snapshot
	scratch sync.Pool                               // *TracerouteScratch for Traceroute
}

// NumRouters returns the number of routers.
func (n *Net) NumRouters() int { return len(n.routers) }

// NumEdges returns the number of directional edges.
func (n *Net) NumEdges() int { return len(n.edges) }

// Router returns the router with the given id.
func (n *Net) Router(id RouterID) Router { return n.routers[id] }

// RouterByAddr resolves an interface address to its router.
func (n *Net) RouterByAddr(a netip.Addr) (Router, bool) {
	id, ok := n.byAddr[a]
	if !ok {
		return Router{}, false
	}
	return n.routers[id], true
}

// RouterByName resolves a router by its symbolic name (linear scan; intended
// for tests and scenario construction, not hot paths).
func (n *Net) RouterByName(name string) (Router, bool) {
	for _, r := range n.routers {
		if r.Name == name {
			return r, true
		}
	}
	return Router{}, false
}

// Prefixes returns the IP→AS table announced by the simulated network.
// The detectors use it for alarm aggregation exactly as the paper uses BGP
// data.
func (n *Net) Prefixes() *ipmap.Table { return n.prefixes }

// Scenario returns the scenario attached to the network (never nil; an
// empty scenario when none was attached).
func (n *Net) Scenario() *Scenario { return n.scenario }

// Artifacts returns the measurement-artifact configuration baked in at
// Build (the zero value when none was set).
func (n *Net) Artifacts() Artifacts { return n.artifacts }

// RouterAlias returns the alias (second interface) address of a router, or
// an invalid address when the router has none. Aliases exist only on nets
// built with Artifacts.AliasProb > 0.
func (n *Net) RouterAlias(id RouterID) netip.Addr {
	if n.aliases == nil || !validRouter(id, len(n.aliases)) {
		return netip.Addr{}
	}
	return n.aliases[id]
}

// ServiceInstances returns the routers hosting the given service address
// (one for unicast services, several for anycast).
func (n *Net) ServiceInstances(addr netip.Addr) []RouterID { return n.services[addr] }

// Services returns all service addresses in deterministic (insertion-free,
// sorted-string) order.
func (n *Net) Services() []netip.Addr {
	out := make([]netip.Addr, 0, len(n.services))
	for a := range n.services {
		out = append(out, a)
	}
	sortAddrs(out)
	return out
}

func sortAddrs(as []netip.Addr) {
	for i := 1; i < len(as); i++ {
		for j := i; j > 0 && as[j].Less(as[j-1]); j-- {
			as[j], as[j-1] = as[j-1], as[j]
		}
	}
}

// Neighbors returns the routers directly reachable from r, in edge order.
func (n *Net) Neighbors(r RouterID) []RouterID {
	out := make([]RouterID, 0, len(n.out[r]))
	for _, id := range n.out[r] {
		out = append(out, n.edges[id].To)
	}
	return out
}

// edgeBetween returns the edge From→To, or false when absent.
func (n *Net) edgeBetween(from, to RouterID) (Edge, bool) {
	for _, id := range n.out[from] {
		if n.edges[id].To == to {
			return n.edges[id], true
		}
	}
	return Edge{}, false
}

// --- Shortest-path "toward" trees -----------------------------------------

type treeKey struct {
	root  RouterID
	epoch uint64
}

// towardTree holds, for every router, the distance and the equal-cost next
// hops along shortest paths toward a root router. It answers both "how do
// packets travel from X to the destination root" (forwarding) and "how do
// ICMP replies travel from hop X back to the probe root" (return paths).
type towardTree struct {
	root  RouterID
	dist  []float64
	nexts [][]RouterID // equal-cost next hops toward root; nil if unreachable
}

const inf = 1e18

// towardTree computes (or returns the cached) shortest-path tree toward
// root under the routing weights active at the given epoch. The fast path
// is one atomic load and a map read on an immutable snapshot; misses take a
// mutex, recompute, and publish a copied map (RCU), so concurrent readers
// never contend once the epoch's trees are warm.
func (n *Net) towardTree(root RouterID, epoch uint64) *towardTree {
	key := treeKey{root: root, epoch: epoch}
	if m := n.trees.Load(); m != nil {
		if t, ok := (*m)[key]; ok {
			return t
		}
	}

	n.treeMu.Lock()
	defer n.treeMu.Unlock()
	var cur map[treeKey]*towardTree
	if m := n.trees.Load(); m != nil {
		cur = *m
		if t, ok := cur[key]; ok {
			return t
		}
	}
	t := n.computeTowardTree(root, epoch)
	next := make(map[treeKey]*towardTree, len(cur)+1)
	for k, v := range cur {
		next[k] = v
	}
	next[key] = t
	n.trees.Store(&next)
	return t
}

type pqItem struct {
	router RouterID
	dist   float64
}

type priorityQueue []pqItem

func (pq priorityQueue) Len() int            { return len(pq) }
func (pq priorityQueue) Less(i, j int) bool  { return pq[i].dist < pq[j].dist }
func (pq priorityQueue) Swap(i, j int)       { pq[i], pq[j] = pq[j], pq[i] }
func (pq *priorityQueue) Push(x interface{}) { *pq = append(*pq, x.(pqItem)) }
func (pq *priorityQueue) Pop() interface{} {
	old := *pq
	n := len(old)
	it := old[n-1]
	*pq = old[:n-1]
	return it
}

// computeTowardTree runs Dijkstra from root over reversed edges, so dist[u]
// is the cost of the shortest directed path u→…→root.
func (n *Net) computeTowardTree(root RouterID, epoch uint64) *towardTree {
	nr := len(n.routers)
	dist := make([]float64, nr)
	for i := range dist {
		dist[i] = inf
	}
	dist[root] = 0
	settled := make([]bool, nr)

	pq := &priorityQueue{{router: root, dist: 0}}
	for pq.Len() > 0 {
		it := heap.Pop(pq).(pqItem)
		v := it.router
		if settled[v] {
			continue
		}
		settled[v] = true
		// Relax edges u→v: a packet at u can reach root via v.
		for _, eid := range n.in[v] {
			e := n.edges[eid]
			w, down := n.scenario.edgeWeight(e, epoch)
			if down {
				continue
			}
			u := e.From
			if nd := w + it.dist; nd < dist[u] {
				dist[u] = nd
				heap.Push(pq, pqItem{router: u, dist: nd})
			}
		}
	}

	const eps = 1e-9
	nexts := make([][]RouterID, nr)
	for u := 0; u < nr; u++ {
		if dist[u] >= inf || RouterID(u) == root {
			continue
		}
		for _, eid := range n.out[u] {
			e := n.edges[eid]
			w, down := n.scenario.edgeWeight(e, epoch)
			if down {
				continue
			}
			if dist[e.To] < inf && dist[u] >= w+dist[e.To]-eps && dist[u] <= w+dist[e.To]+eps {
				nexts[u] = append(nexts[u], e.To)
			}
		}
	}
	return &towardTree{root: root, dist: dist, nexts: nexts}
}

// next returns the next hop from u toward the tree root, choosing among
// equal-cost candidates with the given flow selector (Paris traceroute keeps
// the selector constant within a flow, so the path is stable).
func (t *towardTree) next(u RouterID, flow int) (RouterID, bool) {
	cands := t.nexts[u]
	if len(cands) == 0 {
		return NoRouter, false
	}
	if flow < 0 {
		flow = -flow
	}
	return cands[flow%len(cands)], true
}

// pathFrom walks the tree from u to the root, returning the router sequence
// excluding u itself. ok is false when the root is unreachable; the returned
// prefix is then the walk up to the dead end.
func (t *towardTree) pathFrom(u RouterID, flow int) (path []RouterID, ok bool) {
	return t.appendPathFrom(nil, u, flow)
}

// appendPathFrom is pathFrom appending into a caller-owned buffer: the hot
// traceroute path hands in a scratch slice so the walk allocates nothing in
// steady state. The walked routers (excluding u) are appended to dst.
func (t *towardTree) appendPathFrom(dst []RouterID, u RouterID, flow int) (path []RouterID, ok bool) {
	base := len(dst)
	cur := u
	for cur != t.root {
		nxt, have := t.next(cur, flow)
		if !have {
			return dst, false
		}
		dst = append(dst, nxt)
		cur = nxt
		if len(dst)-base > 1024 {
			panic(fmt.Sprintf("netsim: routing loop walking toward %d from %d", t.root, u))
		}
	}
	return dst, true
}
