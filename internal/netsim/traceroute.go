package netsim

import (
	"fmt"
	"math/rand/v2"
	"net/netip"
	"time"

	"pinpoint/internal/trace"
)

// TracerouteOpts controls the traceroute engine. The zero value is replaced
// by Defaults (3 packets per hop, TTL limit 30, gap limit 4, 0.05 ms
// measurement noise) — the Atlas-like behaviour the paper's dataset has.
type TracerouteOpts struct {
	MaxTTL        int
	PacketsPerHop int
	GapLimit      int     // consecutive unresponsive hops before giving up
	NoiseMS       float64 // std-dev of probe-side measurement noise
}

// Defaults fills zero fields with the default options.
func (o TracerouteOpts) Defaults() TracerouteOpts {
	if o.MaxTTL == 0 {
		o.MaxTTL = 30
	}
	if o.PacketsPerHop == 0 {
		o.PacketsPerHop = 3
	}
	if o.GapLimit == 0 {
		o.GapLimit = 4
	}
	if o.NoiseMS == 0 {
		o.NoiseMS = 0.05
	}
	return o
}

// TracerouteScratch holds the working memory of one traceroute: the forward
// and return path walks and the backing arrays for the result's hops and
// replies. A scratch is single-owner (one goroutine at a time); the parallel
// measurement generator keeps one per worker. Buffers grow to the campaign's
// high-water mark and are then reused, making steady-state traceroutes
// allocation-free on the simulation side.
type TracerouteScratch struct {
	path     []RouterID    // forward path, probe first
	altPath  []RouterID    // multipath-artifact alternate path
	flipPath []RouterID    // route-flip-artifact recomputed path
	retPath  []RouterID    // per-packet return path, replying router first
	hops     []trace.Hop   // reused hop headers
	replies  []trace.Reply // one backing array for every hop's replies
}

// TracerouteInto runs one traceroute using (and aliasing) the scratch: the
// returned Result's Hops and Replies point into scratch-owned arrays and are
// valid only until the scratch's next traceroute. It is the zero-allocation
// core; use Traceroute or TracerouteWith when the result must own its
// memory.
func (n *Net) TracerouteInto(sc *TracerouteScratch, probe RouterID, dst netip.Addr, at time.Time, parisID int, rng *rand.Rand, opts TracerouteOpts) (trace.Result, error) {
	opts = opts.Defaults()
	if !validRouter(probe, len(n.routers)) {
		return trace.Result{}, fmt.Errorf("netsim: traceroute from unknown router %d", probe)
	}
	epoch := n.scenario.EpochKey(at)

	instances := n.services[dst]
	if instances == nil {
		if rid, ok := n.byAddr[dst]; ok {
			instances = []RouterID{rid}
		} else {
			return trace.Result{}, fmt.Errorf("netsim: traceroute to unknown destination %v", dst)
		}
	}

	// Anycast resolution: the routing system delivers to the closest
	// instance (ties broken by lowest id, like lowest router-id in BGP).
	var dstRouter RouterID = NoRouter
	best := inf
	var fwd *towardTree
	for _, inst := range instances {
		t := n.towardTree(inst, epoch)
		if t.dist[probe] < best {
			best = t.dist[probe]
			dstRouter = inst
			fwd = t
		}
	}
	if dstRouter == NoRouter {
		// Fully unreachable: packets vanish at the probe's first hop.
		dstRouter = instances[0]
		fwd = n.towardTree(dstRouter, epoch)
	}

	sc.path = append(sc.path[:0], probe)
	var reached bool
	sc.path, reached = fwd.appendPathFrom(sc.path, probe, parisID)
	full := sc.path

	ret := n.towardTree(probe, epoch)

	res := trace.Result{
		PrbID:   int(probe),
		Time:    at,
		Src:     n.routers[probe].Addr,
		Dst:     dst,
		ParisID: parisID,
	}

	// Reserve the worst-case reply capacity up front so every hop's Replies
	// subslices one stable backing array (no mid-run growth, no aliasing of
	// two generations).
	if need := opts.MaxTTL * opts.PacketsPerHop; cap(sc.replies) < need {
		sc.replies = make([]trace.Reply, 0, need)
	}
	if cap(sc.hops) < opts.MaxTTL {
		sc.hops = make([]trace.Hop, 0, opts.MaxTTL)
	}
	sc.replies = sc.replies[:0]
	sc.hops = sc.hops[:0]

	// Artifact-layer setup. The strict contract here is that with the zero
	// Artifacts config this block draws nothing from rng and every per-packet
	// branch below collapses to the original code path: artifact-free runs
	// must stay byte-identical to builds that never attached Artifacts.
	art := n.artifacts
	useArt := art.Enabled()
	var altFull []RouterID
	if useArt && art.multipathFlow(probe, dst, parisID) {
		// A hash-selected flow crosses a load balancer that ignores the
		// Paris flow identifier: packets split over a second path (walked
		// with a perturbed flow selector), mixing two real paths' routers
		// within single TTLs.
		sc.altPath = append(sc.altPath[:0], probe)
		sc.altPath, _ = fwd.appendPathFrom(sc.altPath, probe, parisID+1)
		altFull = sc.altPath
	}
	slow := false
	if useArt && art.RouteFlipProb > 0 {
		// One coin per trace, drawn whenever the artifact is on (never
		// conditioned on epoch boundaries) so the draw sequence is a pure
		// function of the config.
		slow = rng.Float64() < art.RouteFlipProb
	}

	gap := 0
	lastIdx := len(full) - 1
	hopFull, hopAt, flipEpoch := full, at, epoch
	for i := 1; i <= opts.MaxTTL; i++ {
		if slow {
			// A slow trace: hop i fires later than hop i-1. When a
			// route-affecting boundary falls inside the trace, the remaining
			// TTLs probe the new route while the earlier hops recorded the
			// old one — the inconsistent-traceroute artifact.
			hopAt = at.Add(time.Duration(i-1) * RouteFlipHopStall)
			if e2 := n.scenario.EpochKey(hopAt); e2 != flipEpoch {
				flipEpoch = e2
				sc.flipPath = append(sc.flipPath[:0], probe)
				sc.flipPath, _ = n.towardTree(dstRouter, e2).appendPathFrom(sc.flipPath, probe, parisID)
				hopFull = sc.flipPath
			}
		}
		hopStart := len(sc.replies)
		for p := 0; p < opts.PacketsPerHop; p++ {
			pktFull := hopFull
			if altFull != nil && rng.Uint64()&1 == 1 {
				pktFull = altFull
			}
			if i < len(pktFull) {
				sc.replies = append(sc.replies, n.probeHop(sc, pktFull, i, pktFull[i], dst, dstRouter, ret, hopAt, parisID, rng, opts))
			} else {
				// Beyond the routable path (a routing dead end): the packet
				// vanishes.
				sc.replies = append(sc.replies, trace.Reply{Timeout: true})
			}
		}
		hop := trace.Hop{Index: i, Replies: sc.replies[hopStart:len(sc.replies):len(sc.replies)]}
		sc.hops = append(sc.hops, hop)

		// Loop control keys on the base path: an artifact can change what a
		// hop reports, never how far the probe walks.
		if i <= lastIdx && full[i] == dstRouter && reached {
			break
		}
		if hop.Unresponsive() {
			gap++
			if gap >= opts.GapLimit {
				break
			}
		} else {
			gap = 0
		}
	}
	if useArt && art.ReorderProb > 0 {
		// Response reordering: one coin per adjacent hop boundary (drawn for
		// every boundary, so the count only depends on the hop count), each
		// success swapping the last reply of hop i with the first of hop
		// i+1 — replies attributed to the wrong TTL create false links.
		for h := 0; h+1 < len(sc.hops); h++ {
			if rng.Float64() >= art.ReorderProb {
				continue
			}
			a, b := sc.hops[h].Replies, sc.hops[h+1].Replies
			if len(a) > 0 && len(b) > 0 {
				a[len(a)-1], b[0] = b[0], a[len(a)-1]
			}
		}
	}
	res.Hops = sc.hops
	return res, nil
}

// TracerouteWith runs one traceroute through the scratch and copies the
// result out into exactly-sized, caller-owned memory (two allocations: the
// hop slice and one shared reply backing array). This is what the parallel
// generator's workers call: all the intermediate garbage — path walks,
// per-packet return paths, slice growth — stays in the per-worker scratch.
func (n *Net) TracerouteWith(sc *TracerouteScratch, probe RouterID, dst netip.Addr, at time.Time, parisID int, rng *rand.Rand, opts TracerouteOpts) (trace.Result, error) {
	res, err := n.TracerouteInto(sc, probe, dst, at, parisID, rng, opts)
	if err != nil {
		return res, err
	}
	hops := make([]trace.Hop, len(res.Hops))
	backing := make([]trace.Reply, 0, len(sc.replies))
	for i, h := range res.Hops {
		start := len(backing)
		backing = append(backing, h.Replies...)
		hops[i] = trace.Hop{Index: h.Index, Replies: backing[start:len(backing):len(backing)]}
	}
	res.Hops = hops
	return res, nil
}

// Traceroute simulates one Paris traceroute from a probe-hosting router to a
// destination address (a service address or a router interface address) at
// the given instant. The Paris flow identifier pins ECMP decisions, so
// repeated calls with the same id traverse the same path (modulo scenario
// epochs). The caller supplies the PRNG, which fully determines the noise.
// The returned Result owns its memory; working buffers come from a pooled
// scratch, so callers issuing many traceroutes from one goroutine should
// hold their own TracerouteScratch and use TracerouteWith instead.
func (n *Net) Traceroute(probe RouterID, dst netip.Addr, at time.Time, parisID int, rng *rand.Rand, opts TracerouteOpts) (trace.Result, error) {
	sc, _ := n.scratch.Get().(*TracerouteScratch)
	if sc == nil {
		sc = &TracerouteScratch{}
	}
	res, err := n.TracerouteWith(sc, probe, dst, at, parisID, rng, opts)
	n.scratch.Put(sc)
	return res, err
}

// probeHop simulates one packet probing hop index i (router target) of the
// forward path and returns the resulting reply or timeout.
func (n *Net) probeHop(sc *TracerouteScratch, full []RouterID, i int, target RouterID, dst netip.Addr, dstRouter RouterID, ret *towardTree, at time.Time, parisID int, rng *rand.Rand, opts TracerouteOpts) trace.Reply {
	// Forward leg over links full[0..i].
	fwdMS, ok := n.legDelay(full[:i+1], at, rng)
	if !ok {
		return trace.Reply{Timeout: true}
	}
	// Transit routers (strictly between probe and target) may blackhole.
	for _, r := range full[1:i] {
		if _, drop := n.scenario.RouterState(r, at); drop > 0 && rng.Float64() < drop {
			return trace.Reply{Timeout: true}
		}
	}
	router := n.routers[target]
	// The target router generates the ICMP time-exceeded reply (or not).
	if silent, _ := n.scenario.RouterState(target, at); silent {
		return trace.Reply{Timeout: true}
	}
	if rng.Float64() > router.ResponseProb {
		return trace.Reply{Timeout: true}
	}
	// Return leg: the ICMP reply routes back independently. Its flow key is
	// fixed per (replying router, probe), not per Paris id: return-path ECMP
	// hashes on the reply's own header fields.
	sc.retPath = append(sc.retPath[:0], target)
	retFull, reachedProbe := ret.appendPathFrom(sc.retPath, target, int(target)*2654435761)
	sc.retPath = retFull
	if !reachedProbe {
		return trace.Reply{Timeout: true}
	}
	retMS, okRet := n.legDelay(retFull, at, rng)
	if !okRet {
		return trace.Reply{Timeout: true}
	}
	for _, r := range retFull[1 : len(retFull)-1] {
		if _, drop := n.scenario.RouterState(r, at); drop > 0 && rng.Float64() < drop {
			return trace.Reply{Timeout: true}
		}
	}
	rtt := fwdMS + retMS + rng.ExpFloat64()*router.SlowPathMS + rng.NormFloat64()*opts.NoiseMS
	if rtt < 0.01 {
		rtt = 0.01
	}
	from := router.Addr
	// Address artifacts (hash-decided, no rng draws): a lying router answers
	// from a stale interface address for a whole hour; an alias-selected
	// router answers half its flows from a second interface address.
	if n.staleAddr != nil && n.artifacts.lyingRouter(target, at) {
		from = n.staleAddr[target]
	} else if n.aliases != nil && n.artifacts.aliasedReply(target, parisID) {
		if al := n.aliases[target]; al.IsValid() {
			from = al
		}
	}
	if target == dstRouter && len(n.services[dst]) > 0 {
		// Replies from the service hop carry the service address (what
		// anycast looks like in real traceroutes).
		from = dst
	}
	return trace.Reply{From: from, RTT: rtt}
}

// legDelay accumulates sampled one-way delay along consecutive routers,
// returning ok=false when any link drops the packet or is down.
func (n *Net) legDelay(routers []RouterID, at time.Time, rng *rand.Rand) (ms float64, ok bool) {
	for j := 0; j+1 < len(routers); j++ {
		e, have := n.edgeBetween(routers[j], routers[j+1])
		if !have {
			return 0, false
		}
		extra, loss, down := n.scenario.LinkState(e.From, e.To, at)
		if down {
			return 0, false
		}
		p := e.Loss + loss
		if p > 0 && rng.Float64() < p {
			return 0, false
		}
		ms += e.Delay.Sample(rng, extra)
	}
	return ms, true
}

// ForwardPath returns the router sequence (including the probe router) a
// flow takes toward dst at the given time, and whether the destination is
// reached. Diagnostics and tests use it; the traceroute engine inlines the
// same logic.
func (n *Net) ForwardPath(probe RouterID, dst netip.Addr, at time.Time, parisID int) ([]RouterID, bool) {
	epoch := n.scenario.EpochKey(at)
	instances := n.services[dst]
	if instances == nil {
		if rid, ok := n.byAddr[dst]; ok {
			instances = []RouterID{rid}
		} else {
			return nil, false
		}
	}
	var dstRouter RouterID = NoRouter
	best := inf
	var fwd *towardTree
	for _, inst := range instances {
		t := n.towardTree(inst, epoch)
		if t.dist[probe] < best {
			best = t.dist[probe]
			dstRouter = inst
			fwd = t
		}
	}
	if dstRouter == NoRouter {
		return []RouterID{probe}, false
	}
	path, ok := fwd.pathFrom(probe, parisID)
	return append([]RouterID{probe}, path...), ok
}

// ReturnPath returns the router sequence an ICMP reply takes from a router
// back to the probe at the given time.
func (n *Net) ReturnPath(from, probe RouterID, at time.Time) ([]RouterID, bool) {
	epoch := n.scenario.EpochKey(at)
	ret := n.towardTree(probe, epoch)
	path, ok := ret.pathFrom(from, int(from)*2654435761)
	return append([]RouterID{from}, path...), ok
}
