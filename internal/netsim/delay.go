package netsim

import (
	"math"
	"math/rand/v2"
)

// DelayModel describes the per-packet one-way delay of a link direction, in
// milliseconds. Sampled delay = Base + |N(0, Jitter)| + spike + outlier.
// The half-normal jitter models queuing variation; spikes (probability
// SpikeProb, exponential mean SpikeMS) model transient queue buildup; and
// outliers (probability OutlierProb, exponential mean OutlierMS) model the
// rare, huge measurement errors the paper attributes its >µ+3σ values to
// (125 in two weeks of one link's samples, §4.2.2) — events the
// median-based detector must shrug off but the mean cannot.
type DelayModel struct {
	BaseMS      float64
	JitterMS    float64
	SpikeProb   float64
	SpikeMS     float64 // mean of the exponential spike
	OutlierProb float64
	OutlierMS   float64 // mean of the exponential measurement-error outlier
}

// Sample draws one delay observation with extraMS added to the base (used
// for scenario-injected congestion).
func (d DelayModel) Sample(rng *rand.Rand, extraMS float64) float64 {
	v := d.BaseMS + extraMS
	if d.JitterMS > 0 {
		v += math.Abs(rng.NormFloat64()) * d.JitterMS
	}
	if d.SpikeProb > 0 && rng.Float64() < d.SpikeProb {
		v += rng.ExpFloat64() * d.SpikeMS
	}
	if d.OutlierProb > 0 && rng.Float64() < d.OutlierProb {
		v += rng.ExpFloat64() * d.OutlierMS
	}
	return v
}

// Symmetric returns a pair of delay models for the two directions of a link
// with the same parameters.
func Symmetric(base, jitter float64) (fwd, rev DelayModel) {
	m := DelayModel{BaseMS: base, JitterMS: jitter, SpikeProb: defaultSpikeProb, SpikeMS: defaultSpikeMS}
	return m, m
}

// Default per-link noise parameters used by builders unless overridden.
const (
	defaultSpikeProb = 0.01
	defaultSpikeMS   = 20.0
)
