package netsim

import (
	"math/rand/v2"
	"net/netip"
	"reflect"
	"sync"
	"testing"
	"time"

	"pinpoint/internal/trace"
)

type trTask struct {
	probe RouterID
	dst   netip.Addr
	paris int
	seed  uint64
}

// tracerouteTasks builds a deterministic task mix over the default topology.
func tracerouteTasks(b testing.TB) (*Net, []trTask) {
	b.Helper()
	topo, err := Generate(TopoConfig{Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	n, err := topo.Build(nil)
	if err != nil {
		b.Fatal(err)
	}
	sites := topo.ProbeSites()
	targets := topo.Targets()
	tasks := make([]trTask, 0, 200)
	for i := 0; i < 200; i++ {
		tasks = append(tasks, trTask{
			probe: sites[i%len(sites)],
			dst:   targets[i%len(targets)],
			paris: i % 16,
			seed:  uint64(i + 1),
		})
	}
	return n, tasks
}

// TestTracerouteScratchReuseIdentical asserts that a single scratch reused
// across many traceroutes produces results identical to fresh pooled
// Traceroute calls — i.e. no state leaks between calls through the scratch.
func TestTracerouteScratchReuseIdentical(t *testing.T) {
	n, tasks := tracerouteTasks(t)
	at := time.Date(2015, 5, 1, 0, 0, 0, 0, time.UTC)

	var fresh []trace.Result
	for _, tk := range tasks {
		rng := rand.New(rand.NewPCG(tk.seed, tk.seed))
		r, err := n.Traceroute(tk.probe, tk.dst, at, tk.paris, rng, TracerouteOpts{})
		if err != nil {
			t.Fatal(err)
		}
		fresh = append(fresh, r)
	}

	var sc TracerouteScratch
	var reused []trace.Result
	for _, tk := range tasks {
		rng := rand.New(rand.NewPCG(tk.seed, tk.seed))
		r, err := n.TracerouteWith(&sc, tk.probe, tk.dst, at, tk.paris, rng, TracerouteOpts{})
		if err != nil {
			t.Fatal(err)
		}
		reused = append(reused, r)
	}

	if !reflect.DeepEqual(fresh, reused) {
		t.Fatal("scratch-reused traceroutes differ from fresh ones")
	}
}

// TestTracerouteIntoMatchesWith asserts the aliasing fast path returns the
// same content as the copy-out path (checked immediately, before the next
// call invalidates it).
func TestTracerouteIntoMatchesWith(t *testing.T) {
	n, tasks := tracerouteTasks(t)
	at := time.Date(2015, 5, 1, 0, 0, 0, 0, time.UTC)
	var scA, scB TracerouteScratch
	for _, tk := range tasks[:50] {
		rngA := rand.New(rand.NewPCG(tk.seed, tk.seed))
		a, err := n.TracerouteInto(&scA, tk.probe, tk.dst, at, tk.paris, rngA, TracerouteOpts{})
		if err != nil {
			t.Fatal(err)
		}
		rngB := rand.New(rand.NewPCG(tk.seed, tk.seed))
		b, err := n.TracerouteWith(&scB, tk.probe, tk.dst, at, tk.paris, rngB, TracerouteOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatal("TracerouteInto result differs from TracerouteWith")
		}
	}
}

// TestTracerouteConcurrentDeterministic runs the task mix concurrently from
// many goroutines (per-task seeded, per-goroutine scratch) against a cold
// route cache and asserts every result matches the sequential execution —
// the contention test for the copy-on-write towardTree cache. Run with
// -race in CI.
func TestTracerouteConcurrentDeterministic(t *testing.T) {
	n, tasks := tracerouteTasks(t)
	at := time.Date(2015, 5, 1, 0, 0, 0, 0, time.UTC)

	want := make([]trace.Result, len(tasks))
	for i, tk := range tasks {
		rng := rand.New(rand.NewPCG(tk.seed, tk.seed))
		r, err := n.Traceroute(tk.probe, tk.dst, at, tk.paris, rng, TracerouteOpts{})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}

	// Fresh net: cold cache so concurrent goroutines race on misses.
	topo, err := Generate(TopoConfig{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	n2, err := topo.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]trace.Result, len(tasks))
	const workers = 8
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var sc TracerouteScratch
			for i := w; i < len(tasks); i += workers {
				tk := tasks[i]
				rng := rand.New(rand.NewPCG(tk.seed, tk.seed))
				r, err := n2.TracerouteWith(&sc, tk.probe, tk.dst, at, tk.paris, rng, TracerouteOpts{})
				if err != nil {
					t.Error(err)
					return
				}
				got[i] = r
			}
		}(w)
	}
	wg.Wait()
	if !reflect.DeepEqual(want, got) {
		t.Fatal("concurrent traceroutes differ from sequential")
	}
}
