package netsim

import (
	"math"
	"math/rand/v2"
	"net/netip"
	"reflect"
	"testing"
	"time"
)

// artifactTopology is lineTopology with an artifact config attached before
// Build. art == nil means SetArtifacts is never called, which must be
// indistinguishable from attaching the zero config.
func artifactTopology(t *testing.T, art *Artifacts, scenario *Scenario) (*Net, map[string]RouterID) {
	t.Helper()
	b := NewBuilder()
	b.AS(100, "probe-as", "10.0.100.0/24")
	b.AS(200, "mid-as", "10.0.200.0/24")
	b.AS(300, "dst-as", "10.1.44.0/24")
	ids := map[string]RouterID{}
	ids["P"] = b.Router(100, "P", RouterOpts{ResponseProb: 1})
	ids["A"] = b.Router(200, "A", RouterOpts{ResponseProb: 1})
	ids["B"] = b.Router(200, "B", RouterOpts{ResponseProb: 1})
	ids["C"] = b.Router(300, "C", RouterOpts{ResponseProb: 1})
	ids["D"] = b.Router(200, "D", RouterOpts{ResponseProb: 1})
	b.Link(ids["P"], ids["A"], LinkOpts{DelayMS: 1, Loss: 1e-9})
	b.Link(ids["A"], ids["B"], LinkOpts{DelayMS: 2, Loss: 1e-9})
	b.Link(ids["B"], ids["C"], LinkOpts{DelayMS: 3, Loss: 1e-9})
	b.Link(ids["P"], ids["D"], LinkOpts{DelayMS: 10, Loss: 1e-9})
	b.Link(ids["D"], ids["C"], LinkOpts{DelayMS: 10, Loss: 1e-9})
	b.Service("10.1.44.200", 300, "", ids["C"])
	if art != nil {
		b.SetArtifacts(*art)
	}
	n, err := b.Build(scenario)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return n, ids
}

// diamondTopology builds two equal-cost paths P–A–C and P–D–C so the ECMP
// tie-break actually has a choice to make — the multipath artifact needs a
// second real path to mix in.
func diamondTopology(t *testing.T, art Artifacts) (*Net, map[string]RouterID) {
	t.Helper()
	b := NewBuilder()
	b.AS(100, "probe-as", "10.0.100.0/24")
	b.AS(200, "mid-as", "10.0.200.0/24")
	b.AS(300, "dst-as", "10.1.44.0/24")
	ids := map[string]RouterID{}
	ids["P"] = b.Router(100, "P", RouterOpts{ResponseProb: 1})
	ids["A"] = b.Router(200, "A", RouterOpts{ResponseProb: 1})
	ids["D"] = b.Router(200, "D", RouterOpts{ResponseProb: 1})
	ids["C"] = b.Router(300, "C", RouterOpts{ResponseProb: 1})
	b.Link(ids["P"], ids["A"], LinkOpts{DelayMS: 1, Loss: 1e-9})
	b.Link(ids["A"], ids["C"], LinkOpts{DelayMS: 1, Loss: 1e-9})
	b.Link(ids["P"], ids["D"], LinkOpts{DelayMS: 1, Loss: 1e-9})
	b.Link(ids["D"], ids["C"], LinkOpts{DelayMS: 1, Loss: 1e-9})
	b.Service("10.1.44.200", 300, "", ids["C"])
	b.SetArtifacts(art)
	n, err := b.Build(nil)
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return n, ids
}

var artDst = netip.MustParseAddr("10.1.44.200")

// TestArtifactFreeByteIdentical is the golden lock at its source: attaching
// the zero Artifacts config must leave every traceroute bit-identical to a
// build that never called SetArtifacts — same replies, same RTTs, because
// zero config means zero extra PRNG draws.
func TestArtifactFreeByteIdentical(t *testing.T) {
	plain, ids := artifactTopology(t, nil, nil)
	zero, _ := artifactTopology(t, &Artifacts{}, nil)
	for hour := 0; hour < 4; hour++ {
		for paris := 0; paris < 4; paris++ {
			at := tAt.Add(time.Duration(hour) * time.Hour)
			seed := uint64(hour*16 + paris)
			r1, err := plain.Traceroute(ids["P"], artDst, at, paris, rand.New(rand.NewPCG(seed, 7)), TracerouteOpts{})
			if err != nil {
				t.Fatal(err)
			}
			r2, err := zero.Traceroute(ids["P"], artDst, at, paris, rand.New(rand.NewPCG(seed, 7)), TracerouteOpts{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(r1, r2) {
				t.Fatalf("hour %d paris %d: zero-config result diverges from plain build:\n%+v\nvs\n%+v", hour, paris, r1, r2)
			}
		}
	}
}

func TestArtifactRatesValidated(t *testing.T) {
	for name, art := range map[string]Artifacts{
		"multipath >1": {MultipathProb: 1.5},
		"flip <0":      {RouteFlipProb: -0.1},
		"reorder >1":   {ReorderProb: 2},
		"lying <0":     {LyingHopProb: -1},
		"alias >1":     {AliasProb: 1.01},
	} {
		t.Run(name, func(t *testing.T) {
			b := NewBuilder()
			b.AS(100, "x", "10.0.100.0/24")
			r1 := b.Router(100, "r1", RouterOpts{ResponseProb: 1})
			r2 := b.Router(100, "r2", RouterOpts{ResponseProb: 1})
			b.Link(r1, r2, LinkOpts{DelayMS: 1})
			b.SetArtifacts(art)
			if _, err := b.Build(nil); err == nil {
				t.Errorf("Build accepted artifact config %+v", art)
			}
		})
	}
}

// TestLyingRouterUsesNeighborASStale: during a lying hour the router answers
// from its stale address, which must live in a *neighboring* AS's prefix (so
// the forged responsibility lands across an AS boundary), collide with no
// live interface, and hold for the whole hour; in truthful hours the real
// address comes back.
func TestLyingRouterUsesNeighborASStale(t *testing.T) {
	art := Artifacts{LyingHopProb: 0.5}
	n, ids := artifactTopology(t, &art, nil)
	a := ids["A"]

	var lyingAt, truthfulAt time.Time
	for k := 0; k < 200; k++ {
		at := tAt.Add(time.Duration(k) * time.Hour)
		if art.lyingRouter(a, at) {
			if lyingAt.IsZero() {
				lyingAt = at
			}
		} else if truthfulAt.IsZero() {
			truthfulAt = at
		}
		if !lyingAt.IsZero() && !truthfulAt.IsZero() {
			break
		}
	}
	if lyingAt.IsZero() || truthfulAt.IsZero() {
		t.Fatalf("no lying/truthful hour pair in 200 hours at p=0.5 (hash badly skewed?)")
	}

	stale := n.staleAddr[a]
	real := n.routers[a].Addr
	if stale == real {
		t.Fatalf("stale address for A was not allocated (fell back to real addr %v)", real)
	}
	// A's first cross-AS neighbor by edge creation order is P (AS 100).
	if !netip.MustParsePrefix("10.0.100.0/24").Contains(stale) {
		t.Errorf("stale addr %v not in neighbor AS 100's prefix", stale)
	}
	if _, live := n.byAddr[stale]; live {
		t.Errorf("stale addr %v collides with a live router interface", stale)
	}

	hop1 := func(at time.Time, seed uint64) netip.Addr {
		res, err := n.Traceroute(ids["P"], artDst, at, 0, rand.New(rand.NewPCG(seed, 9)), TracerouteOpts{})
		if err != nil {
			t.Fatal(err)
		}
		for _, rep := range res.Hops[0].Replies {
			if !rep.Timeout {
				return rep.From
			}
		}
		t.Fatalf("hop 1 fully unresponsive at %v", at)
		return netip.Addr{}
	}
	if got := hop1(lyingAt, 1); got != stale {
		t.Errorf("lying hour hop 1 = %v, want stale %v", got, stale)
	}
	// The lie holds for the whole hour, not per packet.
	if got := hop1(lyingAt.Add(41*time.Minute), 2); got != stale {
		t.Errorf("lying hour +41m hop 1 = %v, want stale %v", got, stale)
	}
	if got := hop1(truthfulAt, 3); got != real {
		t.Errorf("truthful hour hop 1 = %v, want real %v", got, real)
	}
}

// TestAliasSplitsFlowsStably: an alias-selected router answers a stable
// subset of Paris flows from its alias address — same flow, same address,
// across runs and seeds — and the alias comes from the router's own AS.
func TestAliasSplitsFlowsStably(t *testing.T) {
	art := Artifacts{AliasProb: 1}
	n, ids := artifactTopology(t, &art, nil)
	a := ids["A"]
	real := n.routers[a].Addr
	alias := n.aliases[a]
	if !alias.IsValid() || alias == real {
		t.Fatalf("alias for A not allocated: %v", alias)
	}
	if !netip.MustParsePrefix("10.0.200.0/24").Contains(alias) {
		t.Errorf("alias %v outside A's own AS prefix", alias)
	}

	seen := map[netip.Addr]bool{}
	for paris := 0; paris < 16; paris++ {
		var first netip.Addr
		for run := 0; run < 2; run++ {
			res, err := n.Traceroute(ids["P"], artDst, tAt, paris, rand.New(rand.NewPCG(uint64(run*100+paris), 3)), TracerouteOpts{})
			if err != nil {
				t.Fatal(err)
			}
			for _, rep := range res.Hops[0].Replies {
				if rep.Timeout {
					continue
				}
				if rep.From != real && rep.From != alias {
					t.Fatalf("paris %d: hop 1 answered from %v, want real %v or alias %v", paris, rep.From, real, alias)
				}
				if run == 0 && !first.IsValid() {
					first = rep.From
				} else if first.IsValid() && rep.From != first {
					t.Errorf("paris %d: address flapped within a flow (%v then %v)", paris, first, rep.From)
				}
				seen[rep.From] = true
			}
		}
	}
	if !seen[real] || !seen[alias] {
		t.Errorf("16 flows all landed on one address (real=%v alias=%v): split hash degenerate", seen[real], seen[alias])
	}
}

// TestMultipathMixesWithinHop: a multipath-selected flow load-balances per
// packet, so a single TTL's replies mix addresses from two real paths —
// exactly the false-link artifact. Without artifacts a flow's hop never
// shows two routers.
func TestMultipathMixesWithinHop(t *testing.T) {
	n, ids := diamondTopology(t, Artifacts{MultipathProb: 1})
	clean, _ := diamondTopology(t, Artifacts{})
	aAddr, dAddr := n.routers[ids["A"]].Addr, n.routers[ids["D"]].Addr

	mixedHop := func(net *Net, paris int, seed uint64) bool {
		res, err := net.Traceroute(ids["P"], artDst, tAt, paris, rand.New(rand.NewPCG(seed, 5)), TracerouteOpts{PacketsPerHop: 8})
		if err != nil {
			t.Fatal(err)
		}
		sawA, sawD := false, false
		for _, rep := range res.Hops[0].Replies {
			sawA = sawA || rep.From == aAddr
			sawD = sawD || rep.From == dAddr
		}
		return sawA && sawD
	}

	anyMixed := false
	for paris := 0; paris < 8; paris++ {
		anyMixed = anyMixed || mixedHop(n, paris, uint64(paris))
		if mixedHop(clean, paris, uint64(paris)) {
			t.Fatalf("paris %d: artifact-free flow mixed two routers in one hop", paris)
		}
	}
	if !anyMixed {
		t.Error("MultipathProb=1 never mixed two paths within a hop across 8 flows")
	}
}

// TestReorderSwapsAcrossHopBoundary: reorder coins are drawn after the TTL
// loop, so with the same seed the pre-swap replies equal the artifact-free
// run's — and ReorderProb=1 must swap the last reply of hop i with the
// first of hop i+1.
func TestReorderSwapsAcrossHopBoundary(t *testing.T) {
	base, ids := artifactTopology(t, nil, nil)
	reord, _ := artifactTopology(t, &Artifacts{ReorderProb: 1}, nil)
	rb, err := base.Traceroute(ids["P"], artDst, tAt, 0, rand.New(rand.NewPCG(11, 13)), TracerouteOpts{})
	if err != nil {
		t.Fatal(err)
	}
	rr, err := reord.Traceroute(ids["P"], artDst, tAt, 0, rand.New(rand.NewPCG(11, 13)), TracerouteOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rr.Validate(); err != nil {
		t.Fatalf("reordered result invalid: %v", err)
	}
	if len(rb.Hops) < 2 || len(rr.Hops) != len(rb.Hops) {
		t.Fatalf("hop counts diverge: %d vs %d", len(rb.Hops), len(rr.Hops))
	}
	b0 := rb.Hops[0].Replies
	b1 := rb.Hops[1].Replies
	r0 := rr.Hops[0].Replies
	r1 := rr.Hops[1].Replies
	if !reflect.DeepEqual(r0[len(r0)-1], b1[0]) {
		t.Errorf("hop 1 last reply = %+v, want hop 2's first %+v", r0[len(r0)-1], b1[0])
	}
	if !reflect.DeepEqual(r1[0], b0[len(b0)-1]) {
		t.Errorf("hop 2 first reply = %+v, want hop 1's last %+v", r1[0], b0[len(b0)-1])
	}
}

// TestRouteFlipStraddlesEpoch: a flip-selected trace paces its TTLs 30 s
// apart; when a route-affecting boundary falls inside the trace, later hops
// probe the new (shorter) route and the trace becomes internally
// inconsistent — here the new path is too short for TTL 3, which times out
// where the artifact-free run saw the destination.
func TestRouteFlipStraddlesEpoch(t *testing.T) {
	// From +60 s, make the P–A edge unusable: the best path flips to the
	// 2-hop detour P–D–C right as TTL 3 fires.
	sc := NewScenario(Event{
		Name: "flip", Kind: EventReroute, From: 0, To: 1, WeightFactor: 1e6, Both: true,
		Start: tAt.Add(60 * time.Second), End: tAt.Add(time.Hour),
	})
	base, ids := artifactTopology(t, nil, sc)
	flip, _ := artifactTopology(t, &Artifacts{RouteFlipProb: 1}, sc)

	rb, err := base.Traceroute(ids["P"], artDst, tAt, 0, rand.New(rand.NewPCG(21, 2)), TracerouteOpts{})
	if err != nil {
		t.Fatal(err)
	}
	rf, err := flip.Traceroute(ids["P"], artDst, tAt, 0, rand.New(rand.NewPCG(21, 2)), TracerouteOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := rf.Validate(); err != nil {
		t.Fatalf("flipped result invalid: %v", err)
	}
	if len(rb.Hops) != 3 || len(rf.Hops) != 3 {
		t.Fatalf("hop counts: base %d, flipped %d, want 3 (loop control keys on the base path)", len(rb.Hops), len(rf.Hops))
	}
	if rb.Hops[2].Unresponsive() {
		t.Fatal("artifact-free TTL 3 should reach the destination")
	}
	// TTL 1 fires before the boundary: still the old path's first hop.
	for _, rep := range rf.Hops[0].Replies {
		if !rep.Timeout && rep.From != base.routers[ids["A"]].Addr {
			t.Errorf("flipped TTL 1 = %v, want old-path hop A %v", rep.From, base.routers[ids["A"]].Addr)
		}
	}
	// TTL 3 fires at +60 s on the recomputed 2-hop path: nothing lives there.
	if !rf.Hops[2].Unresponsive() {
		t.Errorf("flipped TTL 3 got replies %+v, want timeouts on the shortened post-flip path", rf.Hops[2].Replies)
	}
}

// TestArtifactsDeterministicGivenSeed: with every artifact enabled the full
// result — addresses, RTTs, timeouts — is a pure function of the seed.
func TestArtifactsDeterministicGivenSeed(t *testing.T) {
	art := Artifacts{MultipathProb: 0.5, RouteFlipProb: 0.5, ReorderProb: 0.5, LyingHopProb: 0.5, AliasProb: 0.5}
	n, ids := artifactTopology(t, &art, nil)
	for paris := 0; paris < 4; paris++ {
		at := tAt.Add(time.Duration(paris) * time.Hour)
		r1, err := n.Traceroute(ids["P"], artDst, at, paris, rand.New(rand.NewPCG(77, uint64(paris))), TracerouteOpts{})
		if err != nil {
			t.Fatal(err)
		}
		r2, err := n.Traceroute(ids["P"], artDst, at, paris, rand.New(rand.NewPCG(77, uint64(paris))), TracerouteOpts{})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r1, r2) {
			t.Fatalf("paris %d: same seed, different results", paris)
		}
		if err := r1.Validate(); err != nil {
			t.Fatalf("paris %d: invalid result: %v", paris, err)
		}
	}
}

// FuzzArtifactTraceroute fuzzes the artifact rate space: any in-range config
// must produce well-formed, seed-deterministic traceroutes; any out-of-range
// rate must be rejected at Build.
func FuzzArtifactTraceroute(f *testing.F) {
	f.Add(0.0, 0.0, 0.0, 0.0, 0.0, uint64(1), 0)
	f.Add(1.0, 1.0, 1.0, 1.0, 1.0, uint64(42), 7)
	f.Add(0.2, 0.1, 0.03, 0.04, 0.3, uint64(9), 3)
	f.Add(0.5, 0.0, 1.0, 0.5, 0.0, uint64(1234), 15)
	f.Fuzz(func(t *testing.T, mp, rf, ro, ly, al float64, seed uint64, paris int) {
		for _, v := range []float64{mp, rf, ro, ly, al} {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip()
			}
		}
		art := Artifacts{MultipathProb: mp, RouteFlipProb: rf, ReorderProb: ro, LyingHopProb: ly, AliasProb: al}
		b := NewBuilder()
		b.AS(100, "probe-as", "10.0.100.0/24")
		b.AS(200, "mid-as", "10.0.200.0/24")
		b.AS(300, "dst-as", "10.1.44.0/24")
		p := b.Router(100, "P", RouterOpts{ResponseProb: 1})
		a := b.Router(200, "A", RouterOpts{ResponseProb: 1})
		bb := b.Router(200, "B", RouterOpts{ResponseProb: 1})
		c := b.Router(300, "C", RouterOpts{ResponseProb: 1})
		d := b.Router(200, "D", RouterOpts{ResponseProb: 1})
		b.Link(p, a, LinkOpts{DelayMS: 1})
		b.Link(a, bb, LinkOpts{DelayMS: 2})
		b.Link(bb, c, LinkOpts{DelayMS: 3})
		b.Link(p, d, LinkOpts{DelayMS: 10})
		b.Link(d, c, LinkOpts{DelayMS: 10})
		b.Service("10.1.44.200", 300, "", c)
		b.SetArtifacts(art)
		n, err := b.Build(nil)
		inRange := art.validate() == nil
		if !inRange {
			if err == nil {
				t.Fatalf("Build accepted out-of-range config %+v", art)
			}
			return
		}
		if err != nil {
			t.Fatalf("Build rejected in-range config %+v: %v", art, err)
		}
		if paris < 0 {
			paris = -paris
		}
		for hour := 0; hour < 2; hour++ {
			at := tAt.Add(time.Duration(hour) * time.Hour)
			r1, err := n.Traceroute(p, artDst, at, paris%64, rand.New(rand.NewPCG(seed, uint64(hour))), TracerouteOpts{})
			if err != nil {
				t.Fatal(err)
			}
			if err := r1.Validate(); err != nil {
				t.Fatalf("invalid result under %+v: %v", art, err)
			}
			r2, err := n.Traceroute(p, artDst, at, paris%64, rand.New(rand.NewPCG(seed, uint64(hour))), TracerouteOpts{})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(r1, r2) {
				t.Fatalf("nondeterministic result under %+v", art)
			}
		}
	})
}
