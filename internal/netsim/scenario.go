package netsim

import (
	"fmt"
	"sort"
	"time"
)

// EventKind enumerates the disruption types the scenario engine can inject.
type EventKind int

// Event kinds. Congestion and Loss alter packets on a link direction;
// Silence and Blackhole alter a router; LinkDown and Reroute alter routing
// and therefore define epoch boundaries.
const (
	// EventCongestion adds ExtraDelayMS (and optionally Loss) to a link
	// direction — the paper's DDoS and route-leak case studies.
	EventCongestion EventKind = iota
	// EventLoss adds per-packet loss probability to a link direction.
	EventLoss
	// EventLinkDown removes a link direction from routing and drops all
	// packets on it. Route-affecting.
	EventLinkDown
	// EventReroute multiplies the routing weight of a link direction by
	// WeightFactor, diverting flows. Route-affecting.
	EventReroute
	// EventSilence stops a router from generating ICMP replies while still
	// forwarding traffic (the hop turns into "*" in traceroutes).
	EventSilence
	// EventBlackhole makes a router drop transiting packets with
	// probability Loss — the AMS-IX outage shape (§7.3).
	EventBlackhole
)

// String implements fmt.Stringer.
func (k EventKind) String() string {
	switch k {
	case EventCongestion:
		return "congestion"
	case EventLoss:
		return "loss"
	case EventLinkDown:
		return "link-down"
	case EventReroute:
		return "reroute"
	case EventSilence:
		return "silence"
	case EventBlackhole:
		return "blackhole"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one timed disruption. The half-open interval [Start, End)
// delimits when it is active. Link events target the direction From→To;
// set Both to affect both directions. Router events target Router.
type Event struct {
	Name  string
	Kind  EventKind
	Start time.Time
	End   time.Time

	From, To RouterID // link-directed kinds
	Both     bool
	Router   RouterID // router-directed kinds

	ExtraDelayMS float64 // EventCongestion
	Loss         float64 // EventCongestion, EventLoss, EventBlackhole
	WeightFactor float64 // EventReroute
}

// Active reports whether the event applies at time t.
func (e Event) Active(t time.Time) bool {
	return !t.Before(e.Start) && t.Before(e.End)
}

func (e Event) routeAffecting() bool {
	return e.Kind == EventLinkDown || e.Kind == EventReroute
}

func (e Event) isLinkKind() bool {
	switch e.Kind {
	case EventCongestion, EventLoss, EventLinkDown, EventReroute:
		return true
	}
	return false
}

func (e Event) matchesDir(from, to RouterID) bool {
	if e.From == from && e.To == to {
		return true
	}
	return e.Both && e.From == to && e.To == from
}

// Scenario is an indexed set of events. The zero value is an empty scenario.
// Scenarios are immutable once attached to a Net via Builder.Build.
type Scenario struct {
	events    []Event
	linkIdx   map[[2]RouterID][]int // directional key → event indices
	routerIdx map[RouterID][]int
	routeIdx  []int // indices of route-affecting events (≤ 64)
}

// NewScenario indexes the given events. It panics when more than 64
// route-affecting events are supplied (the epoch key is a 64-bit mask; no
// realistic scenario comes close).
func NewScenario(events ...Event) *Scenario {
	s := &Scenario{
		events:    events,
		linkIdx:   make(map[[2]RouterID][]int),
		routerIdx: make(map[RouterID][]int),
	}
	for i, e := range events {
		if e.isLinkKind() {
			s.linkIdx[[2]RouterID{e.From, e.To}] = append(s.linkIdx[[2]RouterID{e.From, e.To}], i)
			if e.Both {
				s.linkIdx[[2]RouterID{e.To, e.From}] = append(s.linkIdx[[2]RouterID{e.To, e.From}], i)
			}
		} else {
			s.routerIdx[e.Router] = append(s.routerIdx[e.Router], i)
		}
		if e.routeAffecting() {
			s.routeIdx = append(s.routeIdx, i)
		}
	}
	if len(s.routeIdx) > 64 {
		panic("netsim: more than 64 route-affecting events")
	}
	return s
}

// Events returns the scenario's events.
func (s *Scenario) Events() []Event {
	if s == nil {
		return nil
	}
	return s.events
}

// EpochKey returns a bitmask identifying which route-affecting events are
// active at t. Two instants with equal keys share identical routing.
func (s *Scenario) EpochKey(t time.Time) uint64 {
	if s == nil {
		return 0
	}
	var key uint64
	for bit, idx := range s.routeIdx {
		if s.events[idx].Active(t) {
			key |= 1 << uint(bit)
		}
	}
	return key
}

// EpochBoundaries returns the sorted, de-duplicated instants at which
// routing can change. Useful for tests and for precomputing trees.
func (s *Scenario) EpochBoundaries() []time.Time {
	if s == nil {
		return nil
	}
	var ts []time.Time
	for _, idx := range s.routeIdx {
		ts = append(ts, s.events[idx].Start, s.events[idx].End)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i].Before(ts[j]) })
	out := ts[:0]
	for i, t := range ts {
		if i == 0 || !t.Equal(out[len(out)-1]) {
			out = append(out, t)
		}
	}
	return out
}

// LinkState returns the scenario modifiers for the directional link
// from→to at time t: extra one-way delay, extra loss probability, and
// whether the direction is administratively down.
func (s *Scenario) LinkState(from, to RouterID, t time.Time) (extraMS, loss float64, down bool) {
	if s == nil {
		return 0, 0, false
	}
	for _, idx := range s.linkIdx[[2]RouterID{from, to}] {
		e := s.events[idx]
		if !e.Active(t) || !e.matchesDir(from, to) {
			continue
		}
		switch e.Kind {
		case EventCongestion:
			extraMS += e.ExtraDelayMS
			loss += e.Loss
		case EventLoss:
			loss += e.Loss
		case EventLinkDown:
			down = true
		}
	}
	if loss > 1 {
		loss = 1
	}
	return extraMS, loss, down
}

// RouterState returns the scenario modifiers for a router at time t:
// whether it is ICMP-silent and the probability it drops transiting packets.
func (s *Scenario) RouterState(r RouterID, t time.Time) (silent bool, dropProb float64) {
	if s == nil {
		return false, 0
	}
	for _, idx := range s.routerIdx[r] {
		e := s.events[idx]
		if !e.Active(t) {
			continue
		}
		switch e.Kind {
		case EventSilence:
			silent = true
		case EventBlackhole:
			dropProb += e.Loss
		}
	}
	if dropProb > 1 {
		dropProb = 1
	}
	return silent, dropProb
}

// edgeWeight returns the routing weight of e under the given epoch and
// whether the edge is down. Epochs encode exactly the set of active
// route-affecting events, so evaluation needs no timestamp.
func (s *Scenario) edgeWeight(e Edge, epoch uint64) (w float64, down bool) {
	w = e.Weight
	if s == nil {
		return w, false
	}
	for bit, idx := range s.routeIdx {
		if epoch&(1<<uint(bit)) == 0 {
			continue
		}
		ev := s.events[idx]
		if !ev.matchesDir(e.From, e.To) {
			continue
		}
		switch ev.Kind {
		case EventLinkDown:
			return w, true
		case EventReroute:
			w *= ev.WeightFactor
		}
	}
	return w, false
}
