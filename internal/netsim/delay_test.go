package netsim

import (
	"math/rand/v2"
	"testing"
)

func TestDelayModelSample(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	m := DelayModel{BaseMS: 5, JitterMS: 0.5}
	for i := 0; i < 1000; i++ {
		v := m.Sample(rng, 0)
		if v < 5 {
			t.Fatalf("sample %v below base (half-normal jitter is non-negative)", v)
		}
		if v > 5+10*0.5 {
			t.Fatalf("sample %v implausibly large without spikes", v)
		}
	}
}

func TestDelayModelExtra(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	m := DelayModel{BaseMS: 5}
	if v := m.Sample(rng, 100); v < 105 {
		t.Errorf("extra delay not applied: %v", v)
	}
}

func TestDelayModelSpikes(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	m := DelayModel{BaseMS: 5, SpikeProb: 0.5, SpikeMS: 100}
	spiked := 0
	const n = 2000
	for i := 0; i < n; i++ {
		if m.Sample(rng, 0) > 20 {
			spiked++
		}
	}
	frac := float64(spiked) / n
	if frac < 0.3 || frac > 0.6 {
		t.Errorf("spike fraction = %v, want ≈ 0.5 (minus small spikes)", frac)
	}
}

func TestDelayModelOutliers(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	m := DelayModel{BaseMS: 5, OutlierProb: 0.01, OutlierMS: 600}
	huge := 0
	const n = 20000
	for i := 0; i < n; i++ {
		if m.Sample(rng, 0) > 100 {
			huge++
		}
	}
	// ~1% outliers with mean 600 → most exceed 100ms.
	frac := float64(huge) / n
	if frac < 0.005 || frac > 0.02 {
		t.Errorf("outlier fraction = %v, want ≈ 0.008", frac)
	}
}

func TestSymmetricHelper(t *testing.T) {
	fwd, rev := Symmetric(10, 1)
	if fwd.BaseMS != 10 || rev.BaseMS != 10 || fwd.JitterMS != 1 {
		t.Errorf("Symmetric = %+v / %+v", fwd, rev)
	}
}

func TestNeighbors(t *testing.T) {
	n, ids := lineTopology(t, nil)
	nb := n.Neighbors(ids["P"])
	if len(nb) != 2 {
		t.Fatalf("P neighbors = %v, want A and D", nb)
	}
	seen := map[RouterID]bool{}
	for _, r := range nb {
		seen[r] = true
	}
	if !seen[ids["A"]] || !seen[ids["D"]] {
		t.Errorf("P neighbors = %v", nb)
	}
}
