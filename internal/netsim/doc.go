// Package netsim simulates the substrate the paper measures: a router-level
// Internet with autonomous systems, directional links, shortest-path
// forwarding with independently computed (and usually asymmetric) return
// paths, anycast services, heavy-tailed delay noise, packet loss, and a
// scenario engine that injects the disruptions the paper studies
// (congestion, loss, reroutes, router silence, link failures).
//
// It replaces the real Internet + RIPE Atlas data plane of the paper.
// The substitution is behaviour-preserving for the detectors because they
// consume only traceroute results; see DESIGN.md §2.
//
// # Model
//
//   - A Router is an IP interface with an owning AS, an ICMP response
//     probability and a slow-path delay for generating TTL-expired replies.
//   - An Edge is a directional link with an IGP-like weight and a DelayModel
//     (base propagation + half-normal jitter + occasional heavy-tail spikes).
//     The two directions of a physical link are two edges whose weights
//     deliberately differ, which — together with ECMP tie-breaking — yields
//     the forward/return path asymmetry the paper's §3 is built around.
//   - Forwarding is destination-rooted shortest path ("toward trees").
//     Paris traceroute flow identifiers pick deterministically among
//     equal-cost next hops, so one flow sees one stable path.
//   - Services (unicast or anycast) attach an externally visible address to
//     one or more routers; replies from the service hop carry the service
//     address, which is how the paper observes "23 unique IP pairs
//     containing the K-root server address".
//   - A Scenario is a set of timed events; route-affecting events partition
//     time into epochs, and shortest-path trees are cached per epoch.
package netsim
