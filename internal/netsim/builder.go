package netsim

import (
	"fmt"
	"net/netip"

	"pinpoint/internal/ipmap"
)

// Builder assembles a Net. Methods record the first error encountered and
// turn subsequent calls into no-ops; Build returns that error. This keeps
// topology construction code linear and readable.
type Builder struct {
	routers  []Router
	edges    []Edge
	prefixes ipmap.Table
	services map[netip.Addr][]RouterID
	byAddr   map[netip.Addr]RouterID

	asPrefix map[ipmap.ASN]netip.Prefix
	asNext   map[ipmap.ASN]int // next host offset within the AS prefix
	asName   map[ipmap.ASN]string

	artifacts Artifacts
	aliases   []netip.Addr // lazily allocated per-router alias addresses
	stale     []netip.Addr // lazily allocated per-router stale (lying) addresses

	err error
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder {
	return &Builder{
		services: make(map[netip.Addr][]RouterID),
		byAddr:   make(map[netip.Addr]RouterID),
		asPrefix: make(map[ipmap.ASN]netip.Prefix),
		asNext:   make(map[ipmap.ASN]int),
		asName:   make(map[ipmap.ASN]string),
	}
}

func (b *Builder) fail(format string, args ...interface{}) {
	if b.err == nil {
		b.err = fmt.Errorf("netsim: "+format, args...)
	}
}

// AS registers an autonomous system and the prefix it announces. Routers of
// the AS are auto-addressed from the prefix.
func (b *Builder) AS(asn ipmap.ASN, name, prefix string) {
	if b.err != nil {
		return
	}
	p, err := netip.ParsePrefix(prefix)
	if err != nil {
		b.fail("AS%d prefix %q: %v", asn, prefix, err)
		return
	}
	if _, dup := b.asPrefix[asn]; dup {
		b.fail("AS%d registered twice", asn)
		return
	}
	b.asPrefix[asn] = p.Masked()
	b.asNext[asn] = 1
	b.asName[asn] = name
	if err := b.prefixes.Add(p, asn); err != nil {
		b.fail("AS%d: %v", asn, err)
	}
}

// RouterOpts tunes router behaviour; zero fields take defaults
// (ResponseProb 0.99, SlowPathMS 0.3).
type RouterOpts struct {
	ResponseProb float64
	SlowPathMS   float64
}

// Router adds a router to a registered AS, assigning it the next free
// address of the AS prefix, and returns its id.
func (b *Builder) Router(asn ipmap.ASN, name string, opts RouterOpts) RouterID {
	if b.err != nil {
		return NoRouter
	}
	p, ok := b.asPrefix[asn]
	if !ok {
		b.fail("router %q: AS%d not registered", name, asn)
		return NoRouter
	}
	addr, err := hostAddr(p, b.asNext[asn])
	if err != nil {
		b.fail("router %q: %v", name, err)
		return NoRouter
	}
	b.asNext[asn]++
	return b.addRouter(asn, name, addr, opts)
}

// RouterAt adds a router with an explicit interface address (which must not
// collide with an existing one). The address does not have to fall inside
// the AS prefix: exchange-point fabrics assign members addresses from the
// IXP prefix while the router operationally belongs to the member AS, and
// reproducing the AMS-IX case (§7.3) needs exactly that split.
func (b *Builder) RouterAt(asn ipmap.ASN, name, addr string, opts RouterOpts) RouterID {
	if b.err != nil {
		return NoRouter
	}
	a, err := netip.ParseAddr(addr)
	if err != nil {
		b.fail("router %q address %q: %v", name, addr, err)
		return NoRouter
	}
	return b.addRouter(asn, name, a, opts)
}

func (b *Builder) addRouter(asn ipmap.ASN, name string, addr netip.Addr, opts RouterOpts) RouterID {
	if _, dup := b.byAddr[addr]; dup {
		b.fail("router %q: address %v already in use", name, addr)
		return NoRouter
	}
	if opts.ResponseProb == 0 {
		opts.ResponseProb = 0.99
	}
	if opts.SlowPathMS == 0 {
		opts.SlowPathMS = 0.3
	}
	id := RouterID(len(b.routers))
	b.routers = append(b.routers, Router{
		ID:           id,
		Addr:         addr,
		AS:           asn,
		Name:         name,
		ResponseProb: opts.ResponseProb,
		SlowPathMS:   opts.SlowPathMS,
	})
	b.byAddr[addr] = id
	return id
}

// LinkOpts tunes one physical link (two directional edges). Zero fields take
// defaults: Jitter = 5% of the base delay (min 0.02 ms), Weight = base delay
// per direction, default spike noise, loss 0.0005.
type LinkOpts struct {
	DelayMS     float64 // one-way base delay, required (> 0)
	JitterMS    float64
	WeightAB    float64 // routing weight A→B
	WeightBA    float64 // routing weight B→A
	Loss        float64
	SpikeProb   float64
	SpikeMS     float64
	OutlierProb float64 // rare huge measurement-error spikes (both dirs)
	OutlierMS   float64
	DelayBAMS   float64 // one-way base delay B→A; 0 → same as DelayMS
	JitterBAMS  float64 // jitter B→A; 0 → same as JitterMS
}

// Link connects two routers with a bidirectional link and returns the edge
// ids (a→b, b→a).
func (b *Builder) Link(a, z RouterID, opts LinkOpts) (ab, ba EdgeID) {
	if b.err != nil {
		return -1, -1
	}
	if a == NoRouter || z == NoRouter || int(a) >= len(b.routers) || int(z) >= len(b.routers) {
		b.fail("link references unknown router (%d, %d)", a, z)
		return -1, -1
	}
	if a == z {
		b.fail("self-link on router %d", a)
		return -1, -1
	}
	if opts.DelayMS <= 0 {
		b.fail("link %d-%d: DelayMS must be > 0", a, z)
		return -1, -1
	}
	jit := opts.JitterMS
	if jit == 0 {
		jit = opts.DelayMS * 0.05
		if jit < 0.02 {
			jit = 0.02
		}
	}
	delayBA := opts.DelayBAMS
	if delayBA == 0 {
		delayBA = opts.DelayMS
	}
	jitBA := opts.JitterBAMS
	if jitBA == 0 {
		jitBA = jit
	}
	wAB, wBA := opts.WeightAB, opts.WeightBA
	if wAB == 0 {
		wAB = opts.DelayMS
	}
	if wBA == 0 {
		wBA = delayBA
	}
	loss := opts.Loss
	if loss == 0 {
		loss = 0.0005
	}
	spikeProb := opts.SpikeProb
	if spikeProb == 0 {
		spikeProb = defaultSpikeProb
	}
	spikeMS := opts.SpikeMS
	if spikeMS == 0 {
		spikeMS = defaultSpikeMS
	}
	mk := func(from, to RouterID, base, jitter, weight float64) EdgeID {
		id := EdgeID(len(b.edges))
		b.edges = append(b.edges, Edge{
			ID: id, From: from, To: to, Weight: weight,
			Delay: DelayModel{
				BaseMS: base, JitterMS: jitter,
				SpikeProb: spikeProb, SpikeMS: spikeMS,
				OutlierProb: opts.OutlierProb, OutlierMS: opts.OutlierMS,
			},
			Loss: loss,
		})
		return id
	}
	ab = mk(a, z, opts.DelayMS, jit, wAB)
	ba = mk(z, a, delayBA, jitBA, wBA)
	return ab, ba
}

// Service attaches an externally visible service address to one or more
// instance routers. One instance models a unicast service (an Atlas anchor,
// say); several model anycast (the DNS root servers of §7.1). The address
// must not collide with a router interface address.
func (b *Builder) Service(addr string, asn ipmap.ASN, prefix string, instances ...RouterID) {
	if b.err != nil {
		return
	}
	a, err := netip.ParseAddr(addr)
	if err != nil {
		b.fail("service address %q: %v", addr, err)
		return
	}
	if len(instances) == 0 {
		b.fail("service %v has no instances", a)
		return
	}
	if _, dup := b.byAddr[a]; dup {
		b.fail("service %v collides with a router address", a)
		return
	}
	if _, dup := b.services[a]; dup {
		b.fail("service %v registered twice", a)
		return
	}
	for _, id := range instances {
		if id == NoRouter || int(id) >= len(b.routers) {
			b.fail("service %v references unknown router %d", a, id)
			return
		}
	}
	if prefix != "" {
		p, err := netip.ParsePrefix(prefix)
		if err != nil {
			b.fail("service %v prefix %q: %v", a, prefix, err)
			return
		}
		if err := b.prefixes.Add(p, asn); err != nil {
			b.fail("service %v: %v", a, err)
			return
		}
	}
	b.services[a] = append([]RouterID(nil), instances...)
}

// SetArtifacts attaches a measurement-artifact configuration; subsequent
// Build calls bake it into the returned Net. The zero Artifacts value (the
// default) injects nothing and leaves the traceroute engine's PRNG draw
// sequence untouched.
func (b *Builder) SetArtifacts(a Artifacts) {
	if b.err != nil {
		return
	}
	if err := a.validate(); err != nil {
		b.err = err
		return
	}
	b.artifacts = a
}

// allocAliases assigns each router a second interface address from its AS
// prefix (skipping routers whose AS is unregistered or exhausted). The
// allocation happens once per Builder and is reused by later Build calls, so
// building the same topology twice — the planning pattern of the case
// studies — yields identical aliases.
func (b *Builder) allocAliases() []netip.Addr {
	if b.aliases != nil {
		return b.aliases
	}
	aliases := make([]netip.Addr, len(b.routers))
	for _, r := range b.routers {
		p, ok := b.asPrefix[r.AS]
		if !ok {
			continue
		}
		addr, err := hostAddr(p, b.asNext[r.AS])
		if err != nil {
			continue // prefix exhausted: this router keeps a single address
		}
		b.asNext[r.AS]++
		if _, dup := b.byAddr[addr]; dup {
			continue
		}
		if _, dup := b.services[addr]; dup {
			continue
		}
		aliases[r.ID] = addr
	}
	b.aliases = aliases
	return aliases
}

// allocStale assigns each router a stale interface address used as the
// forged reply source during lying-hop bursts. The address is drawn from
// the prefix of the router's first cross-AS neighbor (falling back to its
// own AS when it has none): real stale interfaces keep addresses from old
// peering allocations, so the forged replies land in the *wrong* AS group —
// without the cross-AS misattribution, the forged hop's positive
// responsibility and the real hop's negative responsibility cancel inside
// one AS series (the paper's intra-AS rerouting mitigation) and the
// artifact would be invisible to the event layer it is meant to stress.
// Like allocAliases it is idempotent, so repeated Build calls on one
// Builder yield identical addresses; routers whose chosen AS is
// unregistered or exhausted keep their own address, which neutralizes the
// artifact for them.
func (b *Builder) allocStale() []netip.Addr {
	if b.stale != nil {
		return b.stale
	}
	staleAS := make([]ipmap.ASN, len(b.routers))
	for _, r := range b.routers {
		staleAS[r.ID] = r.AS
	}
	crossAS := make([]bool, len(b.routers))
	for _, e := range b.edges { // edges scanned in creation order: deterministic
		if !crossAS[e.From] && b.routers[e.To].AS != b.routers[e.From].AS {
			staleAS[e.From] = b.routers[e.To].AS
			crossAS[e.From] = true
		}
	}
	stale := make([]netip.Addr, len(b.routers))
	for _, r := range b.routers {
		stale[r.ID] = r.Addr // fallback: artifact no-op
		asn := staleAS[r.ID]
		p, ok := b.asPrefix[asn]
		if !ok {
			continue
		}
		addr, err := hostAddr(p, b.asNext[asn])
		if err != nil {
			continue
		}
		b.asNext[asn]++
		if _, dup := b.byAddr[addr]; dup {
			continue
		}
		if _, dup := b.services[addr]; dup {
			continue
		}
		stale[r.ID] = addr
	}
	b.stale = stale
	return stale
}

// Build finalizes the network with the given scenario (nil for none).
func (b *Builder) Build(scenario *Scenario) (*Net, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.routers) == 0 {
		return nil, fmt.Errorf("netsim: no routers")
	}
	if scenario == nil {
		scenario = NewScenario()
	}
	for _, e := range scenario.Events() {
		if e.isLinkKind() {
			if !validRouter(e.From, len(b.routers)) || !validRouter(e.To, len(b.routers)) {
				return nil, fmt.Errorf("netsim: event %q references unknown link routers", e.Name)
			}
		} else if !validRouter(e.Router, len(b.routers)) {
			return nil, fmt.Errorf("netsim: event %q references unknown router", e.Name)
		}
		if !e.End.After(e.Start) {
			return nil, fmt.Errorf("netsim: event %q has non-positive duration", e.Name)
		}
	}
	n := &Net{
		routers:   b.routers,
		edges:     b.edges,
		out:       make([][]EdgeID, len(b.routers)),
		in:        make([][]EdgeID, len(b.routers)),
		byAddr:    b.byAddr,
		services:  b.services,
		prefixes:  &b.prefixes,
		scenario:  scenario,
		artifacts: b.artifacts,
	}
	for _, e := range b.edges {
		n.out[e.From] = append(n.out[e.From], e.ID)
		n.in[e.To] = append(n.in[e.To], e.ID)
	}
	if b.artifacts.AliasProb > 0 {
		n.aliases = b.allocAliases()
	}
	if b.artifacts.LyingHopProb > 0 {
		// A lying router replies from a stale interface: a dedicated
		// address that belongs to no live router (think a decommissioned
		// peering interface still configured in the ICMP source
		// selection), drawn from a neighboring AS's prefix so the burst
		// misattributes the hop across an AS boundary. A live neighbor's
		// address would be silently discarded by the analyzers' self-loop
		// filters; a dedicated cross-AS address makes the burst visible as
		// a forged pattern change in the wrong AS — exactly the
		// single-source false positive the corroboration pass exists to
		// demote. Routers in unregistered or exhausted ASes fall back to
		// their own address (the artifact is a no-op there).
		n.staleAddr = b.allocStale()
	}
	return n, nil
}

func validRouter(id RouterID, n int) bool { return id >= 0 && int(id) < n }

// hostAddr returns the i-th host address inside the prefix (1-based).
func hostAddr(p netip.Prefix, i int) (netip.Addr, error) {
	a := p.Addr()
	for k := 0; k < i; k++ {
		a = a.Next()
		if !p.Contains(a) {
			return netip.Addr{}, fmt.Errorf("prefix %v exhausted", p)
		}
	}
	return a, nil
}
