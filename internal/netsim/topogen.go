package netsim

import (
	"fmt"
	"math/rand/v2"
	"net/netip"

	"pinpoint/internal/ipmap"
)

// TopoConfig parameterizes the random Internet-like topology generator.
// Zero fields take the defaults noted on each field.
type TopoConfig struct {
	Seed uint64

	// IPv6 generates an IPv6 Internet instead of IPv4 (the paper analyzes
	// both families with identical methods; 1.2 B IPv6 traceroutes in §2).
	// Everything downstream — detectors, aggregation, LPM — is address-
	// family agnostic.
	IPv6 bool

	Tier1   int // number of tier-1 (transit-free) ASes; default 4
	Transit int // number of mid-tier transit ASes; default 10
	Stub    int // number of stub (probe-hosting) ASes; default 30

	RoutersPerTier1   int // backbone routers per tier-1; default 5
	RoutersPerTransit int // default 3
	RoutersPerStub    int // default 2

	IXPs          int // number of exchange points; default 1
	IXPMembers    int // member ASes per IXP (from transit+tier1); default 8
	Roots         int // number of anycast root-like services; default 3
	RootInstances int // anycast instances per root; default 6
	Anchors       int // unicast anchor services on stub ASes; default 10
}

func (c TopoConfig) withDefaults() TopoConfig {
	def := func(v *int, d int) {
		if *v == 0 {
			*v = d
		}
	}
	def(&c.Tier1, 4)
	def(&c.Transit, 10)
	def(&c.Stub, 30)
	def(&c.RoutersPerTier1, 5)
	def(&c.RoutersPerTransit, 3)
	def(&c.RoutersPerStub, 2)
	def(&c.IXPs, 1)
	def(&c.IXPMembers, 8)
	def(&c.Roots, 3)
	def(&c.RootInstances, 6)
	def(&c.Anchors, 10)
	return c
}

// ASInfo describes one generated AS.
type ASInfo struct {
	ASN     ipmap.ASN
	Name    string
	Routers []RouterID
	Border  []RouterID // routers with inter-AS links
}

// IXPInfo describes one generated exchange point: a peering LAN whose
// interface addresses come from the IXP prefix (and therefore map to the
// IXP's ASN under longest-prefix match, like the AMS-IX peering LAN of
// §7.3) while each interface operationally belongs to a member AS.
type IXPInfo struct {
	ASN      ipmap.ASN
	Name     string
	Prefix   string
	Members  []ipmap.ASN
	Ifaces   []RouterID // one LAN-facing interface router per member
	Backbone []RouterID // the member backbone router behind each interface
}

// RootInfo describes one anycast root-like service (cf. the DNS root
// servers of §7.1).
type RootInfo struct {
	Addr      netip.Addr
	ASN       ipmap.ASN  // operator AS, e.g. the paper's AS25152 for K-root
	Instances []RouterID // instance routers inside the operator AS
	Sites     []RouterID // the transit/IXP routers each instance attaches to
}

// AnchorInfo describes one unicast anchor-like measurement target.
type AnchorInfo struct {
	Addr   netip.Addr
	ASN    ipmap.ASN
	Router RouterID
}

// Topo is the output of Generate: a Builder pre-populated with the topology
// plus the inventory needed to attach probes, build scenarios, and pick
// measurement targets. Call Build (or Builder.Build) to finalize.
type Topo struct {
	Builder *Builder
	Cfg     TopoConfig

	Tier1   []ASInfo
	Transit []ASInfo
	Stub    []ASInfo
	IXPs    []IXPInfo
	Roots   []RootInfo
	Anchors []AnchorInfo
}

// Build finalizes the network with the given scenario.
func (t *Topo) Build(scenario *Scenario) (*Net, error) { return t.Builder.Build(scenario) }

// ProbeSites returns one router per stub AS, the canonical probe attachment
// points.
func (t *Topo) ProbeSites() []RouterID {
	out := make([]RouterID, 0, len(t.Stub))
	for _, as := range t.Stub {
		out = append(out, as.Routers[0])
	}
	return out
}

// Targets returns every measurement target address: all roots then all
// anchors.
func (t *Topo) Targets() []netip.Addr {
	var out []netip.Addr
	for _, r := range t.Roots {
		out = append(out, r.Addr)
	}
	for _, a := range t.Anchors {
		out = append(out, a.Addr)
	}
	return out
}

// ASN blocks used by the generator. They are arbitrary but stable, so tests
// and experiment narratives can reference them.
const (
	Tier1ASNBase   ipmap.ASN = 1000
	TransitASNBase ipmap.ASN = 2000
	StubASNBase    ipmap.ASN = 3000
	IXPASNBase     ipmap.ASN = 1200 // first IXP gets 1200, echoing AMS-IX
	RootASNBase    ipmap.ASN = 25100
)

// ASPrefix returns the canonical /24 prefix the generator (and fixtures)
// assign to an AS number: 10.<asn high byte>.<asn low byte>.0/24.
func ASPrefix(asn ipmap.ASN) string {
	return fmt.Sprintf("10.%d.%d.0/24", (uint32(asn)>>8)&255, uint32(asn)&255)
}

// ASPrefix6 is the IPv6 equivalent: fd00:<asn>::/48 (ULA space).
func ASPrefix6(asn ipmap.ASN) string {
	return fmt.Sprintf("fd00:%x::/48", uint32(asn))
}

type addrPlan struct{ v6 bool }

func (a addrPlan) asPrefix(asn ipmap.ASN) string {
	if a.v6 {
		return ASPrefix6(asn)
	}
	return ASPrefix(asn)
}

func (a addrPlan) ixpPrefix(i int) string {
	if a.v6 {
		return fmt.Sprintf("2001:7f8:%x::/64", 192+i)
	}
	return fmt.Sprintf("80.81.%d.0/24", 192+i)
}

func (a addrPlan) rootAddr(i int) string {
	if a.v6 {
		return fmt.Sprintf("2001:500:%x::129", 14+i)
	}
	return fmt.Sprintf("193.0.%d.129", 14+i)
}

func (a addrPlan) rootPrefix(i int) string {
	if a.v6 {
		return fmt.Sprintf("2001:500:%x::/48", 14+i)
	}
	return fmt.Sprintf("193.0.%d.0/24", 14+i)
}

func (a addrPlan) anchorAddr(asn ipmap.ASN) string {
	if a.v6 {
		return fmt.Sprintf("fd00:%x::2:200", uint32(asn))
	}
	return fmt.Sprintf("10.%d.%d.200", (uint32(asn)>>8)&255, uint32(asn)&255)
}

// Generate builds a random hierarchical topology:
//
//   - tier-1 ASes are internally ring+chord connected and fully meshed with
//     each other,
//   - transit ASes home to 2 upstreams (tier-1 or earlier transit),
//   - stub ASes home to 1–3 transit upstreams,
//   - IXP peering LANs interconnect a sample of transit/tier-1 members,
//   - anycast roots place instances behind diverse transit/IXP sites,
//   - anchors sit in stub ASes.
//
// Per-direction routing weights are independently jittered around the link
// delay, so forward and return paths frequently diverge — the property the
// differential-RTT method is designed around (§3, challenge 1).
func Generate(cfg TopoConfig) (*Topo, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x9e3779b97f4a7c15))
	b := NewBuilder()
	t := &Topo{Builder: b, Cfg: cfg}

	jw := func(base float64) (float64, float64) {
		// Per-direction weights: delay scaled by nearly independent factors
		// (hot-potato routing prices each direction separately). The wide
		// spread is what makes most paths asymmetric, matching the
		// asymmetry statistics the paper cites (~90% at AS level).
		return base * (0.3 + 1.4*rng.Float64()), base * (0.3 + 1.4*rng.Float64())
	}
	link := func(a, z RouterID, delay float64) {
		wab, wba := jw(delay)
		b.Link(a, z, LinkOpts{DelayMS: delay, WeightAB: wab, WeightBA: wba})
	}
	plan := addrPlan{v6: cfg.IPv6}

	// --- Tier-1 ---
	for i := 0; i < cfg.Tier1; i++ {
		asn := Tier1ASNBase + ipmap.ASN(i)
		name := fmt.Sprintf("T1-%d", i)
		b.AS(asn, name, plan.asPrefix(asn))
		info := ASInfo{ASN: asn, Name: name}
		for r := 0; r < cfg.RoutersPerTier1; r++ {
			id := b.Router(asn, fmt.Sprintf("%s-r%d", name, r), RouterOpts{})
			info.Routers = append(info.Routers, id)
		}
		// Ring plus chords for intra-AS redundancy.
		n := len(info.Routers)
		for r := 0; r < n; r++ {
			link(info.Routers[r], info.Routers[(r+1)%n], 1+4*rng.Float64())
		}
		if n > 3 {
			link(info.Routers[0], info.Routers[n/2], 2+4*rng.Float64())
		}
		t.Tier1 = append(t.Tier1, info)
	}
	// Full mesh between tier-1s (three peering links each pair for
	// diversity).
	for i := 0; i < len(t.Tier1); i++ {
		for j := i + 1; j < len(t.Tier1); j++ {
			for k := 0; k < 3; k++ {
				a := pick(rng, t.Tier1[i].Routers)
				z := pick(rng, t.Tier1[j].Routers)
				link(a, z, 5+25*rng.Float64())
				t.Tier1[i].Border = append(t.Tier1[i].Border, a)
				t.Tier1[j].Border = append(t.Tier1[j].Border, z)
			}
		}
	}

	// --- Transit ---
	for i := 0; i < cfg.Transit; i++ {
		asn := TransitASNBase + ipmap.ASN(i)
		name := fmt.Sprintf("TR-%d", i)
		b.AS(asn, name, plan.asPrefix(asn))
		info := ASInfo{ASN: asn, Name: name}
		for r := 0; r < cfg.RoutersPerTransit; r++ {
			id := b.Router(asn, fmt.Sprintf("%s-r%d", name, r), RouterOpts{})
			info.Routers = append(info.Routers, id)
			if r > 0 {
				link(info.Routers[r-1], id, 1+3*rng.Float64())
			}
		}
		if len(info.Routers) > 2 {
			link(info.Routers[0], info.Routers[len(info.Routers)-1], 1+3*rng.Float64())
		}
		// Two or three upstreams: tier-1s, or an earlier transit for depth.
		ups := 2 + rng.IntN(2)
		for u := 0; u < ups; u++ {
			var up RouterID
			if i > 0 && rng.Float64() < 0.3 {
				up = pick(rng, t.Transit[rng.IntN(i)].Routers)
			} else {
				up = pick(rng, t.Tier1[rng.IntN(len(t.Tier1))].Routers)
			}
			border := pick(rng, info.Routers)
			link(border, up, 2+18*rng.Float64())
			info.Border = append(info.Border, border)
		}
		// Lateral peering with an earlier transit increases path diversity,
		// a prerequisite for forward/return asymmetry.
		if i > 0 && rng.Float64() < 0.6 {
			peer := pick(rng, t.Transit[rng.IntN(i)].Routers)
			border := pick(rng, info.Routers)
			link(border, peer, 2+10*rng.Float64())
			info.Border = append(info.Border, border)
		}
		t.Transit = append(t.Transit, info)
	}

	// --- Stubs ---
	for i := 0; i < cfg.Stub; i++ {
		asn := StubASNBase + ipmap.ASN(i)
		name := fmt.Sprintf("ST-%d", i)
		b.AS(asn, name, plan.asPrefix(asn))
		info := ASInfo{ASN: asn, Name: name}
		for r := 0; r < cfg.RoutersPerStub; r++ {
			id := b.Router(asn, fmt.Sprintf("%s-r%d", name, r), RouterOpts{})
			info.Routers = append(info.Routers, id)
			if r > 0 {
				link(info.Routers[r-1], id, 0.5+2*rng.Float64())
			}
		}
		ups := 2 + rng.IntN(2)
		for u := 0; u < ups; u++ {
			up := pick(rng, t.Transit[rng.IntN(len(t.Transit))].Routers)
			border := pick(rng, info.Routers)
			link(border, up, 1+9*rng.Float64())
			info.Border = append(info.Border, border)
		}
		t.Stub = append(t.Stub, info)
	}

	// --- IXPs ---
	for i := 0; i < cfg.IXPs; i++ {
		asn := IXPASNBase + ipmap.ASN(i)
		name := fmt.Sprintf("IXP-%d", i)
		prefix := plan.ixpPrefix(i)
		b.AS(asn, name, prefix)
		ixp := IXPInfo{ASN: asn, Name: name, Prefix: prefix}
		// Sample distinct members from transit then tier-1 ASes.
		pool := append(append([]ASInfo{}, t.Transit...), t.Tier1...)
		rng.Shuffle(len(pool), func(a, b int) { pool[a], pool[b] = pool[b], pool[a] })
		m := cfg.IXPMembers
		if m > len(pool) {
			m = len(pool)
		}
		for mi, member := range pool[:m] {
			backbone := pick(rng, member.Routers)
			iface := b.RouterAt(member.ASN, fmt.Sprintf("%s-%s-if", name, member.Name),
				lanAddr(prefix, mi+1), RouterOpts{})
			// LAN interfaces answer traceroute reliably in normal times.
			b.Link(backbone, iface, LinkOpts{DelayMS: 0.2, WeightAB: 0.2, WeightBA: 0.2})
			ixp.Members = append(ixp.Members, member.ASN)
			ixp.Ifaces = append(ixp.Ifaces, iface)
			ixp.Backbone = append(ixp.Backbone, backbone)
		}
		// Peering LAN: full mesh of member interfaces. Delay is tiny but the
		// routing weight is moderate, so peering wins for member-to-member
		// traffic without becoming a global symmetric shortcut.
		for a := 0; a < len(ixp.Ifaces); a++ {
			for z := a + 1; z < len(ixp.Ifaces); z++ {
				wab, wba := jw(4)
				b.Link(ixp.Ifaces[a], ixp.Ifaces[z], LinkOpts{DelayMS: 0.3, WeightAB: wab, WeightBA: wba})
			}
		}
		t.IXPs = append(t.IXPs, ixp)
	}

	// --- Anycast roots ---
	for i := 0; i < cfg.Roots; i++ {
		asn := RootASNBase + ipmap.ASN(i)
		name := fmt.Sprintf("ROOT-%c", 'K'+i)
		b.AS(asn, name, plan.asPrefix(asn))
		root := RootInfo{ASN: asn, Addr: netip.MustParseAddr(plan.rootAddr(i))}
		// Attach instances behind diverse sites: prefer IXP backbones,
		// then transit routers.
		var sites []RouterID
		for _, ixp := range t.IXPs {
			sites = append(sites, ixp.Backbone...)
		}
		for _, tr := range t.Transit {
			sites = append(sites, tr.Routers...)
		}
		rng.Shuffle(len(sites), func(a, b int) { sites[a], sites[b] = sites[b], sites[a] })
		ni := cfg.RootInstances
		if ni > len(sites) {
			ni = len(sites)
		}
		for inst := 0; inst < ni; inst++ {
			r := b.Router(asn, fmt.Sprintf("%s-i%d", name, inst), RouterOpts{})
			site := sites[inst]
			b.Link(site, r, LinkOpts{DelayMS: 0.5, WeightAB: 0.5, WeightBA: 0.5})
			root.Instances = append(root.Instances, r)
			root.Sites = append(root.Sites, site)
		}
		b.Service(root.Addr.String(), asn, plan.rootPrefix(i), root.Instances...)
		t.Roots = append(t.Roots, root)
	}

	// --- Anchors ---
	for i := 0; i < cfg.Anchors; i++ {
		as := t.Stub[i%len(t.Stub)]
		r := pick(rng, as.Routers)
		addr := plan.anchorAddr(as.ASN)
		b.Service(addr, as.ASN, "", r)
		t.Anchors = append(t.Anchors, AnchorInfo{Addr: netip.MustParseAddr(addr), ASN: as.ASN, Router: r})
	}

	if b.err != nil {
		return nil, b.err
	}
	return t, nil
}

func pick(rng *rand.Rand, ids []RouterID) RouterID { return ids[rng.IntN(len(ids))] }

func lanAddr(prefix string, host int) string {
	p := netip.MustParsePrefix(prefix)
	a := p.Addr()
	h := (host-1)%250 + 1
	for i := 0; i < h; i++ {
		a = a.Next()
	}
	return a.String()
}
