package atlas

import (
	"bytes"
	"testing"
)

func TestMetadataRoundTrip(t *testing.T) {
	p, topo := testPlatform(t, 31)
	_ = topo
	m := p.Metadata()
	if len(m.Probes) != 8 {
		t.Fatalf("probes = %d", len(m.Probes))
	}
	if len(m.Prefixes) == 0 {
		t.Fatal("no prefixes")
	}

	var buf bytes.Buffer
	if err := WriteMetadata(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMetadata(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Probes) != len(m.Probes) || len(got.Prefixes) != len(m.Prefixes) {
		t.Fatalf("round trip lost entries: %d/%d probes, %d/%d prefixes",
			len(got.Probes), len(m.Probes), len(got.Prefixes), len(m.Prefixes))
	}

	// Probe lookup matches the live platform.
	lookup := got.ProbeASN()
	for _, pr := range p.Probes() {
		asn, ok := lookup(pr.ID)
		if !ok || asn != pr.ASN {
			t.Errorf("probe %d: %v/%v, want %v", pr.ID, asn, ok, pr.ASN)
		}
	}
	if _, ok := lookup(9999); ok {
		t.Error("unknown probe resolved")
	}

	// Table resolves the same as the live prefix table.
	tbl, err := got.Table()
	if err != nil {
		t.Fatal(err)
	}
	for _, pr := range p.Probes() {
		addr := p.Net().Router(pr.Router).Addr
		want, _ := p.Net().Prefixes().Lookup(addr)
		gotASN, ok := tbl.Lookup(addr)
		if !ok || gotASN != want {
			t.Errorf("table lookup %v = %v/%v, want %v", addr, gotASN, ok, want)
		}
	}
}

func TestMetadataBadPrefix(t *testing.T) {
	m := Metadata{Prefixes: []PrefixMeta{{Prefix: "nope", ASN: 1}}}
	if _, err := m.Table(); err == nil {
		t.Error("bad prefix accepted")
	}
}

func TestReadMetadataError(t *testing.T) {
	if _, err := ReadMetadata(bytes.NewBufferString("{")); err == nil {
		t.Error("malformed metadata accepted")
	}
}
