package atlas

import (
	"context"
	"reflect"
	"testing"
	"time"

	"pinpoint/internal/netsim"
	"pinpoint/internal/trace"
)

func testPlatform(t *testing.T, seed uint64) (*Platform, *netsim.Topo) {
	t.Helper()
	topo, err := netsim.Generate(netsim.TopoConfig{
		Seed: seed, Tier1: 2, Transit: 4, Stub: 8,
		Roots: 1, RootInstances: 3, Anchors: 2, IXPs: 1, IXPMembers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	n, err := topo.Build(nil)
	if err != nil {
		t.Fatal(err)
	}
	p := NewPlatform(n, seed, netsim.TracerouteOpts{})
	p.AddProbes(topo.ProbeSites())
	return p, topo
}

var from = time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)

func TestProbeRegistration(t *testing.T) {
	p, topo := testPlatform(t, 1)
	probes := p.Probes()
	if len(probes) != 8 {
		t.Fatalf("probes = %d, want 8", len(probes))
	}
	for i, pr := range probes {
		if pr.ID != i+1 {
			t.Errorf("probe %d has ID %d", i, pr.ID)
		}
		if pr.ASN != p.Net().Router(pr.Router).AS {
			t.Errorf("probe %d ASN mismatch", pr.ID)
		}
	}
	asn, ok := p.ProbeASN(1)
	if !ok || asn == 0 {
		t.Errorf("ProbeASN(1) = %v/%v", asn, ok)
	}
	if _, ok := p.ProbeASN(999); ok {
		t.Error("unknown probe resolved")
	}
	_ = topo
}

func TestMeasurementRegistration(t *testing.T) {
	p, topo := testPlatform(t, 2)
	m1 := p.AddBuiltin(topo.Roots[0].Addr)
	m2 := p.AddAnchoring(topo.Anchors[0].Addr, []int{1, 2, 3})
	if m1.Interval != 30*time.Minute || m1.Kind != Builtin {
		t.Errorf("builtin = %+v", m1)
	}
	if m2.Interval != 15*time.Minute || m2.Kind != Anchoring {
		t.Errorf("anchoring = %+v", m2)
	}
	if len(m1.Probes) != 8 || len(m2.Probes) != 3 {
		t.Errorf("probe sets: %d, %d", len(m1.Probes), len(m2.Probes))
	}
	if m2.ID != m1.ID+1 {
		t.Errorf("ids not sequential: %d, %d", m1.ID, m2.ID)
	}
	if len(p.Measurements()) != 2 {
		t.Error("measurement registry wrong")
	}
}

func TestRunProducesExpectedVolume(t *testing.T) {
	p, topo := testPlatform(t, 3)
	p.AddBuiltin(topo.Roots[0].Addr)
	to := from.Add(2 * time.Hour)
	results, err := p.Collect(from, to)
	if err != nil {
		t.Fatal(err)
	}
	// 8 probes, every 30 min, 2 hours → 4 rounds → 32 results.
	if len(results) != 32 {
		t.Fatalf("results = %d, want 32", len(results))
	}
	// Chronological order.
	for i := 1; i < len(results); i++ {
		if results[i].Time.Before(results[i-1].Time) {
			t.Fatal("results not chronological")
		}
	}
	// All results carry measurement and probe IDs and validate.
	for _, r := range results {
		if r.MsmID < 5000 || r.PrbID < 1 {
			t.Errorf("result missing ids: %+v", r)
		}
		if err := r.Validate(); err != nil {
			t.Errorf("invalid result: %v", err)
		}
	}
}

func TestRunDeterministic(t *testing.T) {
	run := func() []trace.Result {
		p, topo := testPlatform(t, 77)
		p.AddBuiltin(topo.Roots[0].Addr)
		rs, err := p.Collect(from, from.Add(time.Hour))
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Time.Equal(b[i].Time) || a[i].PrbID != b[i].PrbID {
			t.Fatalf("schedule differs at %d", i)
		}
		if len(a[i].Hops) != len(b[i].Hops) {
			t.Fatalf("hops differ at %d", i)
		}
		for h := range a[i].Hops {
			for j := range a[i].Hops[h].Replies {
				if a[i].Hops[h].Replies[j] != b[i].Hops[h].Replies[j] {
					t.Fatalf("replies differ at result %d hop %d", i, h)
				}
			}
		}
	}
}

func TestProbesSpreadWithinInterval(t *testing.T) {
	p, topo := testPlatform(t, 5)
	p.AddBuiltin(topo.Roots[0].Addr)
	rs, err := p.Collect(from, from.Add(30*time.Minute))
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 8 {
		t.Fatalf("results = %d, want 8 (one round)", len(rs))
	}
	distinct := map[time.Time]bool{}
	for _, r := range rs {
		distinct[r.Time] = true
	}
	if len(distinct) < 4 {
		t.Errorf("probes not spread: %d distinct firing times", len(distinct))
	}
}

func TestAnchoringCadence(t *testing.T) {
	p, topo := testPlatform(t, 6)
	p.AddAnchoring(topo.Anchors[0].Addr, []int{1, 2})
	rs, err := p.Collect(from, from.Add(time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	// 2 probes × 4 rounds of 15 min.
	if len(rs) != 8 {
		t.Fatalf("results = %d, want 8", len(rs))
	}
}

func TestStreamDeliversAndCloses(t *testing.T) {
	p, topo := testPlatform(t, 7)
	p.AddBuiltin(topo.Roots[0].Addr)
	ch, errc := p.Stream(context.Background(), from, from.Add(time.Hour))
	n := 0
	for range ch {
		n++
	}
	if err := <-errc; err != nil {
		t.Fatalf("stream error: %v", err)
	}
	if n != 16 {
		t.Errorf("streamed %d results, want 16", n)
	}
}

func TestStreamCancel(t *testing.T) {
	p, topo := testPlatform(t, 8)
	p.AddBuiltin(topo.Roots[0].Addr)
	ctx, cancel := context.WithCancel(context.Background())
	ch, errc := p.Stream(ctx, from, from.Add(240*time.Hour))
	<-ch
	cancel()
	// Drain; channel must close promptly.
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				<-errc
				return
			}
		case <-deadline:
			t.Fatal("stream did not close after cancel")
		}
	}
}

func TestRunChunkingBoundary(t *testing.T) {
	// A run spanning a day boundary must not duplicate or drop firings.
	p, topo := testPlatform(t, 9)
	p.AddBuiltin(topo.Roots[0].Addr)
	all, err := p.Collect(from, from.Add(26*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	want := 8 * 52 // 8 probes × 52 half-hours
	if len(all) != want {
		t.Errorf("results = %d, want %d", len(all), want)
	}
	seen := map[string]bool{}
	for _, r := range all {
		key := r.Time.String() + "/" + string(rune(r.PrbID))
		if seen[key] {
			t.Fatalf("duplicate firing %s", key)
		}
		seen[key] = true
	}
}

func TestStreamBatchesMatchesCollect(t *testing.T) {
	p, topo := testPlatform(t, 12)
	p.AddBuiltin(topo.Roots[0].Addr)
	want, err := p.Collect(from, from.Add(4*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	ch, errc := p.StreamBatches(context.Background(), from, from.Add(4*time.Hour), 5)
	var got []trace.Result
	for batch := range ch {
		if len(batch) == 0 || len(batch) > 5 {
			t.Fatalf("batch size %d, want 1..5", len(batch))
		}
		got = append(got, batch...)
	}
	if err := <-errc; err != nil {
		t.Fatalf("stream error: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Errorf("batched stream delivered %d results, Collect %d, or order differs",
			len(got), len(want))
	}
}

func TestStreamBatchesCancel(t *testing.T) {
	p, topo := testPlatform(t, 13)
	p.AddBuiltin(topo.Roots[0].Addr)
	ctx, cancel := context.WithCancel(context.Background())
	ch, errc := p.StreamBatches(ctx, from, from.Add(240*time.Hour), 4)
	<-ch
	cancel()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				<-errc
				return
			}
		case <-deadline:
			t.Fatal("batched stream did not close after cancel")
		}
	}
}
