package atlas

import (
	"encoding/json"
	"fmt"
	"io"
	"net/netip"

	"pinpoint/internal/ipmap"
)

// Dataset metadata: traceroute JSONL files carry measurements only. For
// offline analysis (cmd/pinpoint) the consumer also needs probe→AS mapping
// (for the §4.3 diversity filter) and the prefix→AS table (for §6
// aggregation — the paper uses BGP data for this). Metadata is the sidecar
// carrying both.
type Metadata struct {
	Probes   []ProbeMeta  `json:"probes"`
	Prefixes []PrefixMeta `json:"prefixes"`
}

// ProbeMeta describes one probe.
type ProbeMeta struct {
	ID     int    `json:"id"`
	ASN    uint32 `json:"asn"`
	Addr   string `json:"addr"`
	Anchor bool   `json:"anchor,omitempty"`
}

// PrefixMeta is one prefix→AS announcement.
type PrefixMeta struct {
	Prefix string `json:"prefix"`
	ASN    uint32 `json:"asn"`
}

// Metadata extracts the platform's probe and prefix metadata.
func (p *Platform) Metadata() Metadata {
	var m Metadata
	for _, pr := range p.Probes() {
		addr := p.net.Router(pr.Router).Addr.String()
		m.Probes = append(m.Probes, ProbeMeta{
			ID: pr.ID, ASN: uint32(pr.ASN), Addr: addr, Anchor: pr.Anchor,
		})
	}
	for _, e := range p.net.Prefixes().Entries() {
		m.Prefixes = append(m.Prefixes, PrefixMeta{Prefix: e.Prefix.String(), ASN: uint32(e.ASN)})
	}
	return m
}

// WriteMetadata encodes metadata as indented JSON.
func WriteMetadata(w io.Writer, m Metadata) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// ReadMetadata decodes metadata JSON.
func ReadMetadata(r io.Reader) (Metadata, error) {
	var m Metadata
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return Metadata{}, fmt.Errorf("atlas: decoding metadata: %w", err)
	}
	return m, nil
}

// ProbeASN returns a lookup function suitable for the delay detector.
func (m Metadata) ProbeASN() func(int) (ipmap.ASN, bool) {
	byID := make(map[int]ipmap.ASN, len(m.Probes))
	for _, p := range m.Probes {
		byID[p.ID] = ipmap.ASN(p.ASN)
	}
	return func(id int) (ipmap.ASN, bool) {
		asn, ok := byID[id]
		return asn, ok
	}
}

// Table builds the LPM prefix table for alarm aggregation.
func (m Metadata) Table() (*ipmap.Table, error) {
	var t ipmap.Table
	for _, pm := range m.Prefixes {
		p, err := netip.ParsePrefix(pm.Prefix)
		if err != nil {
			return nil, fmt.Errorf("atlas: metadata prefix %q: %w", pm.Prefix, err)
		}
		if err := t.Add(p, ipmap.ASN(pm.ASN)); err != nil {
			return nil, err
		}
	}
	return &t, nil
}
