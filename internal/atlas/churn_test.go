package atlas

import (
	"testing"
	"time"
)

func TestProbeWindowLimitsScheduling(t *testing.T) {
	p, topo := testPlatform(t, 21)
	p.AddBuiltin(topo.Roots[0].Addr)

	// Probe 1 disconnects after the first hour of a 2-hour run.
	if !p.SetProbeWindow(1, time.Time{}, from.Add(time.Hour)) {
		t.Fatal("SetProbeWindow rejected known probe")
	}
	// Probe 2 connects only for the second hour.
	p.SetProbeWindow(2, from.Add(time.Hour), time.Time{})

	rs, err := p.Collect(from, from.Add(2*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int][2]int{} // probe → firings per hour
	for _, r := range rs {
		c := counts[r.PrbID]
		if r.Time.Before(from.Add(time.Hour)) {
			c[0]++
		} else {
			c[1]++
		}
		counts[r.PrbID] = c
	}
	if c := counts[1]; c[0] != 2 || c[1] != 0 {
		t.Errorf("probe 1 fired %v, want [2 0]", c)
	}
	if c := counts[2]; c[0] != 0 || c[1] != 2 {
		t.Errorf("probe 2 fired %v, want [0 2]", c)
	}
	if c := counts[3]; c[0] != 2 || c[1] != 2 {
		t.Errorf("always-on probe 3 fired %v, want [2 2]", c)
	}
}

func TestProbeWindowUnknownProbe(t *testing.T) {
	p, _ := testPlatform(t, 22)
	if p.SetProbeWindow(999, time.Time{}, time.Time{}) {
		t.Error("unknown probe accepted")
	}
}
