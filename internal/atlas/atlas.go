// Package atlas simulates the RIPE Atlas measurement platform of §2:
// probes hosted in stub networks continuously run Paris traceroutes toward
// builtin targets (the anycast DNS root servers, every 30 minutes) and
// anchoring targets (anchors, every 15 minutes), producing a stream of
// results in time order.
//
// The platform replaces the paper's 2.8-billion-traceroute dataset; scale is
// a config knob, the result schema and cadences are the paper's.
//
// Generation is deterministic and parallelizable: every (measurement,
// probe, firing time) task is independently seeded via hash.Fold, an
// incremental min-heap scheduler emits tasks in exact chronological order
// using O(streams) memory, and with SetWorkers(n > 1) the tasks execute on
// n goroutines while a sequence-numbered reorder buffer restores the
// chronological stream — bit-identical to a sequential run for any worker
// count.
package atlas

import (
	"context"
	"fmt"
	"math/rand/v2"
	"net/netip"
	"runtime"
	"sync"
	"time"

	"pinpoint/internal/hash"
	"pinpoint/internal/ipmap"
	"pinpoint/internal/netsim"
	"pinpoint/internal/trace"
)

// Builtin and anchoring measurement cadences from §2.
const (
	BuiltinInterval   = 30 * time.Minute
	AnchoringInterval = 15 * time.Minute
)

// Probe is one vantage point, attached to a router of the simulated network.
type Probe struct {
	ID     int
	Router netsim.RouterID
	ASN    ipmap.ASN
	Anchor bool // anchors are "super probes" (§2)

	// ConnectedFrom/ConnectedTo bound the probe's availability: outside
	// the window it schedules no measurements. Zero values mean always
	// connected. The paper's dataset has the same churn: 11,538 probes
	// connected at some point during the eight months, ~10,000 at any
	// instant.
	ConnectedFrom, ConnectedTo time.Time
}

// connectedAt reports whether the probe is online at t.
func (p Probe) connectedAt(t time.Time) bool {
	if !p.ConnectedFrom.IsZero() && t.Before(p.ConnectedFrom) {
		return false
	}
	if !p.ConnectedTo.IsZero() && !t.Before(p.ConnectedTo) {
		return false
	}
	return true
}

// Kind distinguishes the two repetitive measurement classes of §2.
type Kind int

// Measurement kinds.
const (
	Builtin Kind = iota
	Anchoring
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == Builtin {
		return "builtin"
	}
	return "anchoring"
}

// Measurement is one repetitive traceroute measurement toward a target.
type Measurement struct {
	ID       int
	Kind     Kind
	Target   netip.Addr
	Interval time.Duration
	Probes   []int // participating probe IDs
}

// Platform schedules measurements over a simulated network.
type Platform struct {
	net     *netsim.Net
	seed    uint64
	opts    netsim.TracerouteOpts
	probes  []Probe // dense: probes[i].ID == i+1
	msms    []Measurement
	nextID  int
	workers int // generator goroutines; <= 1 is sequential
}

// NewPlatform returns an empty platform over the given network. The seed
// determines all measurement noise; equal seeds give bit-identical streams.
func NewPlatform(n *netsim.Net, seed uint64, opts netsim.TracerouteOpts) *Platform {
	return &Platform{
		net:     n,
		seed:    seed,
		opts:    opts.Defaults(),
		nextID:  5000, // Atlas-like measurement IDs start at 5000
		workers: 1,
	}
}

// Net returns the underlying network.
func (p *Platform) Net() *netsim.Net { return p.net }

// SetWorkers sets how many goroutines Run, RunChunks, Stream and
// StreamBatches execute traceroutes on. n <= 0 means GOMAXPROCS; 1 (the
// default) is sequential. Every task is independently seeded and a reorder
// buffer restores chronological emission, so the result stream is
// bit-identical for every worker count.
func (p *Platform) SetWorkers(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p.workers = n
}

// Workers returns the configured generator worker count.
func (p *Platform) Workers() int { return p.workers }

// AddProbe attaches a probe to a router, deriving its ASN from the router's
// operator AS. Probe IDs are assigned sequentially from 1; the platform
// stores probes densely by ID, so hot-path lookups are slice indexing.
func (p *Platform) AddProbe(router netsim.RouterID, anchor bool) Probe {
	id := len(p.probes) + 1
	pr := Probe{ID: id, Router: router, ASN: p.net.Router(router).AS, Anchor: anchor}
	p.probes = append(p.probes, pr)
	return pr
}

// AddProbes attaches one probe per router.
func (p *Platform) AddProbes(routers []netsim.RouterID) []Probe {
	out := make([]Probe, 0, len(routers))
	for _, r := range routers {
		out = append(out, p.AddProbe(r, false))
	}
	return out
}

// Probes returns all probes in ID order.
func (p *Platform) Probes() []Probe {
	out := make([]Probe, len(p.probes))
	copy(out, p.probes)
	return out
}

// Probe returns the probe with the given id.
func (p *Platform) Probe(id int) (Probe, bool) {
	if id < 1 || id > len(p.probes) {
		return Probe{}, false
	}
	return p.probes[id-1], true
}

// SetProbeWindow bounds a probe's connectivity to [from, to); measurements
// outside the window are not scheduled. It returns false for unknown probes.
func (p *Platform) SetProbeWindow(id int, from, to time.Time) bool {
	if id < 1 || id > len(p.probes) {
		return false
	}
	p.probes[id-1].ConnectedFrom, p.probes[id-1].ConnectedTo = from, to
	return true
}

// ProbeASN resolves a probe id to its AS number; the delay analyzer's
// probe-diversity filter (§4.3) keys on this.
func (p *Platform) ProbeASN(id int) (ipmap.ASN, bool) {
	if id < 1 || id > len(p.probes) {
		return 0, false
	}
	return p.probes[id-1].ASN, true
}

// AddBuiltin registers a builtin measurement: every probe traceroutes the
// target every 30 minutes (cf. the root-server measurements of §2).
func (p *Platform) AddBuiltin(target netip.Addr) Measurement {
	ids := make([]int, len(p.probes))
	for i := range p.probes {
		ids[i] = i + 1
	}
	return p.addMeasurement(Builtin, target, BuiltinInterval, ids)
}

// AddAnchoring registers an anchoring measurement from the given probes
// every 15 minutes.
func (p *Platform) AddAnchoring(target netip.Addr, probeIDs []int) Measurement {
	return p.addMeasurement(Anchoring, target, AnchoringInterval, probeIDs)
}

// AddCustom registers a measurement with an arbitrary cadence.
func (p *Platform) AddCustom(target netip.Addr, interval time.Duration, probeIDs []int) Measurement {
	return p.addMeasurement(Builtin, target, interval, probeIDs)
}

func (p *Platform) addMeasurement(kind Kind, target netip.Addr, interval time.Duration, probeIDs []int) Measurement {
	m := Measurement{
		ID:       p.nextID,
		Kind:     kind,
		Target:   target,
		Interval: interval,
		Probes:   append([]int(nil), probeIDs...),
	}
	p.nextID++
	p.msms = append(p.msms, m)
	return m
}

// Measurements returns the registered measurements.
func (p *Platform) Measurements() []Measurement { return p.msms }

// hash mixes identifiers into a stable 64-bit value for seeding per-task
// PRNGs and offsets.
func (p *Platform) hash(vals ...uint64) uint64 {
	return hash.Fold(p.seed, vals...)
}

// --- Incremental schedule ------------------------------------------------

// genTask is one (measurement, probe) firing.
type genTask struct {
	at    time.Time
	msm   int32 // index into p.msms
	probe int32 // probe ID
}

// cursor is one (measurement, probe) stream's next firing. Firing times lie
// on the absolute grid {k·interval + offset}, so cursors are independent of
// where the run window starts.
type cursor struct {
	at       time.Time
	interval time.Duration
	msm      int32
	probe    int32
}

// cursorLess orders cursors by (firing time, measurement index, probe ID) —
// exactly the chronological order the platform emits results in.
func cursorLess(a, b cursor) bool {
	if !a.at.Equal(b.at) {
		return a.at.Before(b.at)
	}
	if a.msm != b.msm {
		return a.msm < b.msm
	}
	return a.probe < b.probe
}

// scheduler is an incremental min-heap over per-(measurement, probe) firing
// cursors. Unlike the old materialize-and-sort generator it needs
// O(streams) memory for arbitrarily long campaigns and emits the next task
// in O(log streams), with no per-chunk re-sorting.
type scheduler struct {
	p  *Platform
	to time.Time
	h  []cursor // min-heap ordered by cursorLess
}

// newScheduler builds the heap. Probe IDs are validated here rather than at
// measurement registration so callers may register measurements before
// attaching the probes they reference; by run time every ID must resolve.
func (p *Platform) newScheduler(from, to time.Time) (*scheduler, error) {
	s := &scheduler{p: p, to: to}
	for mi, m := range p.msms {
		for _, prb := range m.Probes {
			if prb < 1 || prb > len(p.probes) {
				return nil, fmt.Errorf("atlas: measurement %d references unknown probe %d", m.ID, prb)
			}
			off := time.Duration(p.hash(uint64(m.ID), uint64(prb), 0xa11a5) % uint64(m.Interval))
			// First firing at or after from.
			start := from.Truncate(m.Interval).Add(off)
			for start.Before(from) {
				start = start.Add(m.Interval)
			}
			if !start.Before(to) {
				continue
			}
			s.h = append(s.h, cursor{at: start, interval: m.Interval, msm: int32(mi), probe: int32(prb)})
		}
	}
	for i := len(s.h)/2 - 1; i >= 0; i-- {
		s.down(i)
	}
	return s, nil
}

func (s *scheduler) down(i int) {
	for {
		l := 2*i + 1
		if l >= len(s.h) {
			return
		}
		least := l
		if r := l + 1; r < len(s.h) && cursorLess(s.h[r], s.h[l]) {
			least = r
		}
		if !cursorLess(s.h[least], s.h[i]) {
			return
		}
		s.h[i], s.h[least] = s.h[least], s.h[i]
		i = least
	}
}

// next pops the chronologically next firing of a connected probe, advancing
// its stream cursor. ok is false when the schedule is exhausted.
func (s *scheduler) next() (genTask, bool) {
	for len(s.h) > 0 {
		c := s.h[0]
		t := genTask{at: c.at, msm: c.msm, probe: c.probe}
		if nxt := c.at.Add(c.interval); nxt.Before(s.to) {
			s.h[0].at = nxt
			s.down(0)
		} else {
			last := len(s.h) - 1
			s.h[0] = s.h[last]
			s.h = s.h[:last]
			s.down(0)
		}
		// Disconnected probes skip the firing but keep their cadence.
		if s.p.probes[t.probe-1].connectedAt(t.at) {
			return t, true
		}
	}
	return genTask{}, false
}

// exec runs one task. The per-task reseed leaves the PCG in exactly the
// state rand.NewPCG(h1, h2) constructs, so every task's noise stream is a
// pure function of (seed, measurement, probe, firing time) — the property
// that makes tasks freely distributable across workers.
func (p *Platform) exec(sc *netsim.TracerouteScratch, pcg *rand.PCG, rng *rand.Rand, t genTask) (trace.Result, error) {
	m := p.msms[t.msm]
	pr := p.probes[t.probe-1]
	pcg.Seed(
		p.hash(uint64(m.ID), uint64(t.probe), uint64(t.at.UnixNano())),
		p.hash(uint64(t.at.UnixNano()), uint64(m.ID)),
	)
	parisID := int(p.hash(uint64(m.ID), uint64(t.probe)) % 16)
	res, err := p.net.TracerouteWith(sc, pr.Router, m.Target, t.at, parisID, rng, p.opts)
	if err != nil {
		return trace.Result{}, fmt.Errorf("atlas: msm %d probe %d: %w", m.ID, pr.ID, err)
	}
	res.MsmID = m.ID
	res.PrbID = pr.ID
	return res, nil
}

// --- Running -------------------------------------------------------------

// genChunkSize is how many tasks Run groups per unit of worker handoff when
// parallel. Chunk boundaries never affect results (tasks are independently
// seeded), only amortization.
const genChunkSize = 64

// Run executes all scheduled measurements in [from, to) in chronological
// order, invoking fn for each result. Returning a non-nil error from fn
// aborts the run. Results are bit-identical for equal platform seeds,
// regardless of SetWorkers.
func (p *Platform) Run(from, to time.Time, fn func(trace.Result) error) error {
	if p.workers > 1 {
		return p.runPar(context.Background(), from, to, genChunkSize, true, func(rs []trace.Result) error {
			for _, r := range rs {
				if err := fn(r); err != nil {
					return err
				}
			}
			return nil
		})
	}
	return p.runSeq(from, to, fn)
}

func (p *Platform) runSeq(from, to time.Time, fn func(trace.Result) error) error {
	sched, err := p.newScheduler(from, to)
	if err != nil {
		return err
	}
	// One PRNG reseeded per task, one scratch for every traceroute's
	// working memory: the steady-state producer loop allocates only the
	// emitted results.
	pcg := rand.NewPCG(0, 0)
	rng := rand.New(pcg)
	var sc netsim.TracerouteScratch
	for {
		t, ok := sched.next()
		if !ok {
			return nil
		}
		res, err := p.exec(&sc, pcg, rng, t)
		if err != nil {
			return err
		}
		if err := fn(res); err != nil {
			return err
		}
	}
}

// RunChunks executes the campaign like Run but delivers results in
// chronological chunks of up to chunkSize (0 = DefaultBatchSize; the final
// chunk may be short). Chunk boundaries depend only on chunkSize, so the
// grouping — like the results — is identical for every worker count. The
// chunks are freshly allocated; fn may retain them. This is the fused
// producer API: core.Analyzer.RunPlatform feeds these chunks straight into
// the sharded engine without an intermediate channel hop.
func (p *Platform) RunChunks(ctx context.Context, from, to time.Time, chunkSize int, fn func([]trace.Result) error) error {
	if chunkSize <= 0 {
		chunkSize = DefaultBatchSize
	}
	if p.workers > 1 {
		return p.runPar(ctx, from, to, chunkSize, false, fn)
	}
	chunk := make([]trace.Result, 0, chunkSize)
	err := p.runSeq(from, to, func(r trace.Result) error {
		chunk = append(chunk, r)
		if len(chunk) >= chunkSize {
			if err := ctx.Err(); err != nil {
				return err
			}
			out := chunk
			chunk = make([]trace.Result, 0, chunkSize)
			return fn(out)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	if len(chunk) > 0 {
		return fn(chunk)
	}
	return nil
}

// taskChunk and resultChunk carry sequence numbers: the producer assigns
// them in schedule order, workers execute out of order, and the emitter's
// reorder buffer releases chunks strictly by sequence. tasks is the pooled
// pointer itself so workers return it to the pool without allocating a new
// slice header.
type taskChunk struct {
	seq   uint64
	tasks *[]genTask
}

type resultChunk struct {
	seq     uint64
	results []trace.Result
	err     error // first task error; results holds the tasks before it
}

// taskBufPool recycles producer task buffers once a worker has drained them.
var taskBufPool = sync.Pool{New: func() any { return new([]genTask) }}

// runPar is the parallel producer: one scheduler goroutine cuts the
// chronological task stream into fixed-size chunks, workers execute chunks
// concurrently (each with its own PRNG and traceroute scratch), and the
// caller's goroutine reorders completed chunks by sequence number and emits
// them — so emission order, chunk grouping and every byte of every result
// match the sequential path. A window semaphore bounds in-flight chunks,
// back-pressuring the scheduler when emission (or the consumer behind it)
// is the bottleneck.
// emitPartial controls error-path parity with the sequential harnesses: Run
// calls fn per result up to the failing task (emitPartial true), while
// RunChunks discards the partially filled chunk an error interrupts
// (emitPartial false) — either way the consumed stream is identical to the
// corresponding sequential path.
func (p *Platform) runPar(ctx context.Context, from, to time.Time, chunkSize int, emitPartial bool, emit func([]trace.Result) error) error {
	sched, err := p.newScheduler(from, to)
	if err != nil {
		return err
	}
	workers := p.workers
	ctx2, cancel := context.WithCancel(ctx)
	defer cancel()

	tasks := make(chan taskChunk, workers)
	results := make(chan resultChunk, workers)
	window := make(chan struct{}, 4*workers) // in-flight chunk bound

	// Producer: the only goroutine touching the schedule heap, so task
	// order and chunk contents are deterministic regardless of workers.
	go func() {
		defer close(tasks)
		var seq uint64
		buf := taskBufPool.Get().(*[]genTask)
		*buf = (*buf)[:0]
		for {
			t, ok := sched.next()
			if !ok {
				break
			}
			*buf = append(*buf, t)
			if len(*buf) < chunkSize {
				continue
			}
			select {
			case window <- struct{}{}:
			case <-ctx2.Done():
				return
			}
			select {
			case tasks <- taskChunk{seq: seq, tasks: buf}:
			case <-ctx2.Done():
				return
			}
			seq++
			buf = taskBufPool.Get().(*[]genTask)
			*buf = (*buf)[:0]
		}
		if len(*buf) == 0 {
			taskBufPool.Put(buf)
			return
		}
		select {
		case window <- struct{}{}:
		case <-ctx2.Done():
			return
		}
		select {
		case tasks <- taskChunk{seq: seq, tasks: buf}:
		case <-ctx2.Done():
		}
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pcg := rand.NewPCG(0, 0)
			rng := rand.New(pcg)
			var sc netsim.TracerouteScratch
			for tc := range tasks {
				rc := resultChunk{seq: tc.seq, results: make([]trace.Result, 0, len(*tc.tasks))}
				for _, t := range *tc.tasks {
					res, err := p.exec(&sc, pcg, rng, t)
					if err != nil {
						rc.err = err
						break
					}
					rc.results = append(rc.results, res)
				}
				*tc.tasks = (*tc.tasks)[:0]
				taskBufPool.Put(tc.tasks)
				select {
				case results <- rc:
				case <-ctx2.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Reorder and emit on the caller's goroutine. pending holds completed
	// chunks that arrived ahead of sequence; its size is bounded by the
	// window semaphore.
	var (
		next    uint64
		runErr  error
		pending = make(map[uint64]resultChunk, 4*workers)
	)
	for rc := range results {
		pending[rc.seq] = rc
		for runErr == nil {
			c, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			<-window // chunk leaves flight; scheduler may refill
			if len(c.results) > 0 && (c.err == nil || emitPartial) {
				if err := emit(c.results); err != nil {
					runErr = err
				}
			}
			if runErr == nil && c.err != nil {
				runErr = c.err
			}
		}
		if runErr != nil {
			cancel() // stop producer and workers; results will close
		}
	}
	if runErr == nil {
		runErr = ctx.Err()
	}
	return runErr
}

// Collect runs the platform and gathers all results into a slice (intended
// for tests and small experiments; long campaigns should use Run or Stream).
func (p *Platform) Collect(from, to time.Time) ([]trace.Result, error) {
	var out []trace.Result
	err := p.Run(from, to, func(r trace.Result) error {
		out = append(out, r)
		return nil
	})
	return out, err
}

// Stream runs the platform in a goroutine and delivers results over a
// channel, mirroring the RIPE Atlas streaming API the paper's online
// deployment consumes (§8). The channel closes when the run completes or
// the context is canceled; a run error is delivered on the error channel
// (buffered, at most one).
func (p *Platform) Stream(ctx context.Context, from, to time.Time) (<-chan trace.Result, <-chan error) {
	ch := make(chan trace.Result, 1024)
	errc := make(chan error, 1)
	go func() {
		defer close(ch)
		defer close(errc)
		err := p.Run(from, to, func(r trace.Result) error {
			select {
			case ch <- r:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		})
		if err != nil && ctx.Err() == nil {
			errc <- err
		}
	}()
	return ch, errc
}

// DefaultBatchSize is the batch size RunChunks and StreamBatches use when
// the caller passes 0.
const DefaultBatchSize = 256

// StreamBatches is Stream with batched delivery: results are grouped into
// slices of up to batchSize (0 = DefaultBatchSize) so consumers pay one
// channel synchronization per batch instead of per result — the overhead
// that dominates once the sharded engine parallelizes the analysis itself.
// Order within and across batches is the chronological Run order; the final
// batch may be short. The channel closes when the run completes or the
// context is canceled; a run error is delivered on the error channel
// (buffered, at most one).
func (p *Platform) StreamBatches(ctx context.Context, from, to time.Time, batchSize int) (<-chan []trace.Result, <-chan error) {
	ch := make(chan []trace.Result, 8)
	errc := make(chan error, 1)
	go func() {
		defer close(ch)
		defer close(errc)
		err := p.RunChunks(ctx, from, to, batchSize, func(rs []trace.Result) error {
			select {
			case ch <- rs:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		})
		if err != nil && ctx.Err() == nil {
			errc <- err
		}
	}()
	return ch, errc
}
