// Package atlas simulates the RIPE Atlas measurement platform of §2:
// probes hosted in stub networks continuously run Paris traceroutes toward
// builtin targets (the anycast DNS root servers, every 30 minutes) and
// anchoring targets (anchors, every 15 minutes), producing a stream of
// results in time order.
//
// The platform replaces the paper's 2.8-billion-traceroute dataset; scale is
// a config knob, the result schema and cadences are the paper's.
package atlas

import (
	"context"
	"fmt"
	"math/rand/v2"
	"net/netip"
	"sort"
	"time"

	"pinpoint/internal/hash"
	"pinpoint/internal/ipmap"
	"pinpoint/internal/netsim"
	"pinpoint/internal/trace"
)

// Builtin and anchoring measurement cadences from §2.
const (
	BuiltinInterval   = 30 * time.Minute
	AnchoringInterval = 15 * time.Minute
)

// Probe is one vantage point, attached to a router of the simulated network.
type Probe struct {
	ID     int
	Router netsim.RouterID
	ASN    ipmap.ASN
	Anchor bool // anchors are "super probes" (§2)

	// ConnectedFrom/ConnectedTo bound the probe's availability: outside
	// the window it schedules no measurements. Zero values mean always
	// connected. The paper's dataset has the same churn: 11,538 probes
	// connected at some point during the eight months, ~10,000 at any
	// instant.
	ConnectedFrom, ConnectedTo time.Time
}

// connectedAt reports whether the probe is online at t.
func (p Probe) connectedAt(t time.Time) bool {
	if !p.ConnectedFrom.IsZero() && t.Before(p.ConnectedFrom) {
		return false
	}
	if !p.ConnectedTo.IsZero() && !t.Before(p.ConnectedTo) {
		return false
	}
	return true
}

// Kind distinguishes the two repetitive measurement classes of §2.
type Kind int

// Measurement kinds.
const (
	Builtin Kind = iota
	Anchoring
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == Builtin {
		return "builtin"
	}
	return "anchoring"
}

// Measurement is one repetitive traceroute measurement toward a target.
type Measurement struct {
	ID       int
	Kind     Kind
	Target   netip.Addr
	Interval time.Duration
	Probes   []int // participating probe IDs
}

// Platform schedules measurements over a simulated network.
type Platform struct {
	net    *netsim.Net
	seed   uint64
	opts   netsim.TracerouteOpts
	probes map[int]Probe
	order  []int // probe IDs in insertion order
	msms   []Measurement
	nextID int
}

// NewPlatform returns an empty platform over the given network. The seed
// determines all measurement noise; equal seeds give bit-identical streams.
func NewPlatform(n *netsim.Net, seed uint64, opts netsim.TracerouteOpts) *Platform {
	return &Platform{
		net:    n,
		seed:   seed,
		opts:   opts.Defaults(),
		probes: make(map[int]Probe),
		nextID: 5000, // Atlas-like measurement IDs start at 5000
	}
}

// Net returns the underlying network.
func (p *Platform) Net() *netsim.Net { return p.net }

// AddProbe attaches a probe to a router, deriving its ASN from the router's
// operator AS. Probe IDs are assigned sequentially from 1.
func (p *Platform) AddProbe(router netsim.RouterID, anchor bool) Probe {
	id := len(p.probes) + 1
	pr := Probe{ID: id, Router: router, ASN: p.net.Router(router).AS, Anchor: anchor}
	p.probes[id] = pr
	p.order = append(p.order, id)
	return pr
}

// AddProbes attaches one probe per router.
func (p *Platform) AddProbes(routers []netsim.RouterID) []Probe {
	out := make([]Probe, 0, len(routers))
	for _, r := range routers {
		out = append(out, p.AddProbe(r, false))
	}
	return out
}

// Probes returns all probes in insertion order.
func (p *Platform) Probes() []Probe {
	out := make([]Probe, 0, len(p.order))
	for _, id := range p.order {
		out = append(out, p.probes[id])
	}
	return out
}

// Probe returns the probe with the given id.
func (p *Platform) Probe(id int) (Probe, bool) {
	pr, ok := p.probes[id]
	return pr, ok
}

// SetProbeWindow bounds a probe's connectivity to [from, to); measurements
// outside the window are not scheduled. It returns false for unknown probes.
func (p *Platform) SetProbeWindow(id int, from, to time.Time) bool {
	pr, ok := p.probes[id]
	if !ok {
		return false
	}
	pr.ConnectedFrom, pr.ConnectedTo = from, to
	p.probes[id] = pr
	return true
}

// ProbeASN resolves a probe id to its AS number; the delay analyzer's
// probe-diversity filter (§4.3) keys on this.
func (p *Platform) ProbeASN(id int) (ipmap.ASN, bool) {
	pr, ok := p.probes[id]
	if !ok {
		return 0, false
	}
	return pr.ASN, true
}

// AddBuiltin registers a builtin measurement: every probe traceroutes the
// target every 30 minutes (cf. the root-server measurements of §2).
func (p *Platform) AddBuiltin(target netip.Addr) Measurement {
	return p.addMeasurement(Builtin, target, BuiltinInterval, p.order)
}

// AddAnchoring registers an anchoring measurement from the given probes
// every 15 minutes.
func (p *Platform) AddAnchoring(target netip.Addr, probeIDs []int) Measurement {
	return p.addMeasurement(Anchoring, target, AnchoringInterval, probeIDs)
}

// AddCustom registers a measurement with an arbitrary cadence.
func (p *Platform) AddCustom(target netip.Addr, interval time.Duration, probeIDs []int) Measurement {
	return p.addMeasurement(Builtin, target, interval, probeIDs)
}

func (p *Platform) addMeasurement(kind Kind, target netip.Addr, interval time.Duration, probeIDs []int) Measurement {
	m := Measurement{
		ID:       p.nextID,
		Kind:     kind,
		Target:   target,
		Interval: interval,
		Probes:   append([]int(nil), probeIDs...),
	}
	p.nextID++
	p.msms = append(p.msms, m)
	return m
}

// Measurements returns the registered measurements.
func (p *Platform) Measurements() []Measurement { return p.msms }

// hash mixes identifiers into a stable 64-bit value for seeding per-task
// PRNGs and offsets.
func (p *Platform) hash(vals ...uint64) uint64 {
	return hash.Fold(p.seed, vals...)
}

type task struct {
	at    time.Time
	msm   int // index into p.msms
	probe int // probe ID
}

// tasksBetween generates all (measurement, probe) firings within [from, to),
// sorted chronologically. Each probe fires at a stable per-(msm,probe)
// offset within the interval, spreading load like the real platform.
func (p *Platform) tasksBetween(from, to time.Time) []task {
	var out []task
	for mi, m := range p.msms {
		for _, prb := range m.Probes {
			meta := p.probes[prb]
			off := time.Duration(p.hash(uint64(m.ID), uint64(prb), 0xa11a5) % uint64(m.Interval))
			// First firing at or after from.
			start := from.Truncate(m.Interval).Add(off)
			for start.Before(from) {
				start = start.Add(m.Interval)
			}
			for at := start; at.Before(to); at = at.Add(m.Interval) {
				if !meta.connectedAt(at) {
					continue
				}
				out = append(out, task{at: at, msm: mi, probe: prb})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if !out[i].at.Equal(out[j].at) {
			return out[i].at.Before(out[j].at)
		}
		if out[i].msm != out[j].msm {
			return out[i].msm < out[j].msm
		}
		return out[i].probe < out[j].probe
	})
	return out
}

// Run executes all scheduled measurements in [from, to) in chronological
// order, invoking fn for each result. Returning a non-nil error from fn
// aborts the run. Results are bit-identical for equal platform seeds.
//
// The generation is chunked by day so arbitrarily long campaigns run in
// bounded memory.
func (p *Platform) Run(from, to time.Time, fn func(trace.Result) error) error {
	const chunk = 24 * time.Hour
	// One PRNG reseeded per task: Seed(h1, h2) leaves the PCG in exactly
	// the state NewPCG(h1, h2) constructs, so the stream is bit-identical
	// to the old per-task allocation while producing none.
	pcg := rand.NewPCG(0, 0)
	rng := rand.New(pcg)
	for cs := from; cs.Before(to); cs = cs.Add(chunk) {
		ce := cs.Add(chunk)
		if ce.After(to) {
			ce = to
		}
		for _, t := range p.tasksBetween(cs, ce) {
			m := p.msms[t.msm]
			pr := p.probes[t.probe]
			pcg.Seed(
				p.hash(uint64(m.ID), uint64(t.probe), uint64(t.at.UnixNano())),
				p.hash(uint64(t.at.UnixNano()), uint64(m.ID)),
			)
			parisID := int(p.hash(uint64(m.ID), uint64(t.probe)) % 16)
			res, err := p.net.Traceroute(pr.Router, m.Target, t.at, parisID, rng, p.opts)
			if err != nil {
				return fmt.Errorf("atlas: msm %d probe %d: %w", m.ID, t.probe, err)
			}
			res.MsmID = m.ID
			res.PrbID = pr.ID
			if err := fn(res); err != nil {
				return err
			}
		}
	}
	return nil
}

// Collect runs the platform and gathers all results into a slice (intended
// for tests and small experiments; long campaigns should use Run or Stream).
func (p *Platform) Collect(from, to time.Time) ([]trace.Result, error) {
	var out []trace.Result
	err := p.Run(from, to, func(r trace.Result) error {
		out = append(out, r)
		return nil
	})
	return out, err
}

// Stream runs the platform in a goroutine and delivers results over a
// channel, mirroring the RIPE Atlas streaming API the paper's online
// deployment consumes (§8). The channel closes when the run completes or
// the context is canceled; a run error is delivered on the error channel
// (buffered, at most one).
func (p *Platform) Stream(ctx context.Context, from, to time.Time) (<-chan trace.Result, <-chan error) {
	ch := make(chan trace.Result, 1024)
	errc := make(chan error, 1)
	go func() {
		defer close(ch)
		defer close(errc)
		err := p.Run(from, to, func(r trace.Result) error {
			select {
			case ch <- r:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		})
		if err != nil && ctx.Err() == nil {
			errc <- err
		}
	}()
	return ch, errc
}

// DefaultBatchSize is the StreamBatches batch size when the caller passes 0.
const DefaultBatchSize = 256

// StreamBatches is Stream with batched delivery: results are grouped into
// slices of up to batchSize (0 = DefaultBatchSize) so consumers pay one
// channel synchronization per batch instead of per result — the overhead
// that dominates once the sharded engine parallelizes the analysis itself.
// Order within and across batches is the chronological Run order; the final
// batch may be short. The channel closes when the run completes or the
// context is canceled; a run error is delivered on the error channel
// (buffered, at most one).
func (p *Platform) StreamBatches(ctx context.Context, from, to time.Time, batchSize int) (<-chan []trace.Result, <-chan error) {
	if batchSize <= 0 {
		batchSize = DefaultBatchSize
	}
	ch := make(chan []trace.Result, 8)
	errc := make(chan error, 1)
	go func() {
		defer close(ch)
		defer close(errc)
		batch := make([]trace.Result, 0, batchSize)
		flush := func() error {
			if len(batch) == 0 {
				return nil
			}
			out := batch
			batch = make([]trace.Result, 0, batchSize)
			select {
			case ch <- out:
				return nil
			case <-ctx.Done():
				return ctx.Err()
			}
		}
		err := p.Run(from, to, func(r trace.Result) error {
			batch = append(batch, r)
			if len(batch) >= batchSize {
				return flush()
			}
			return nil
		})
		if err == nil {
			err = flush()
		}
		if err != nil && ctx.Err() == nil {
			errc <- err
		}
	}()
	return ch, errc
}
