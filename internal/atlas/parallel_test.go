package atlas

import (
	"context"
	"errors"
	"net/netip"
	"reflect"
	"testing"
	"time"

	"pinpoint/internal/trace"
)

// parallelPlatform builds a platform with enough schedule structure to
// stress the reorder buffer: builtin + anchoring measurements and probe
// churn windows (disconnections exercise the scheduler's skip path).
func parallelPlatform(t *testing.T, seed uint64) *Platform {
	t.Helper()
	p, topo := testPlatform(t, seed)
	p.AddBuiltin(topo.Roots[0].Addr)
	p.AddAnchoring(topo.Anchors[0].Addr, []int{1, 2, 3, 4})
	p.AddAnchoring(topo.Anchors[1].Addr, []int{3, 5, 7})
	p.SetProbeWindow(2, from.Add(90*time.Minute), time.Time{})
	p.SetProbeWindow(5, time.Time{}, from.Add(2*time.Hour))
	return p
}

func TestRunParallelBitIdentical(t *testing.T) {
	to := from.Add(6 * time.Hour)
	seq := parallelPlatform(t, 31)
	want, err := seq.Collect(from, to)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("empty sequential baseline")
	}
	for _, workers := range []int{2, 3, 4, 8} {
		par := parallelPlatform(t, 31)
		par.SetWorkers(workers)
		got, err := par.Collect(from, to)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: parallel stream differs from sequential (%d vs %d results)",
				workers, len(got), len(want))
		}
	}
}

func TestRunChunksGroupingIdentical(t *testing.T) {
	to := from.Add(4 * time.Hour)
	collect := func(workers, chunkSize int) [][]int {
		p := parallelPlatform(t, 32)
		if workers > 1 {
			p.SetWorkers(workers)
		}
		var chunks [][]int
		err := p.RunChunks(context.Background(), from, to, chunkSize, func(rs []trace.Result) error {
			prbs := make([]int, 0, len(rs))
			for _, r := range rs {
				prbs = append(prbs, r.PrbID)
			}
			chunks = append(chunks, prbs)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return chunks
	}
	want := collect(1, 7)
	for _, workers := range []int{2, 4} {
		if got := collect(workers, 7); !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: chunk grouping differs", workers)
		}
	}
}

func TestStreamBatchesParallelMatchesSequential(t *testing.T) {
	to := from.Add(3 * time.Hour)
	seq := parallelPlatform(t, 33)
	want, err := seq.Collect(from, to)
	if err != nil {
		t.Fatal(err)
	}
	par := parallelPlatform(t, 33)
	par.SetWorkers(4)
	ch, errc := par.StreamBatches(context.Background(), from, to, 16)
	var got []trace.Result
	for batch := range ch {
		if len(batch) == 0 || len(batch) > 16 {
			t.Fatalf("batch size %d, want 1..16", len(batch))
		}
		got = append(got, batch...)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatal("parallel batched stream differs from sequential Collect")
	}
}

func TestRunParallelFnErrorAborts(t *testing.T) {
	p := parallelPlatform(t, 34)
	p.SetWorkers(4)
	boom := errors.New("boom")
	n := 0
	err := p.Run(from, from.Add(24*time.Hour), func(r trace.Result) error {
		n++
		if n == 50 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if n != 50 {
		t.Fatalf("fn called %d times after abort, want exactly 50", n)
	}
}

func TestRunChunksParallelCancel(t *testing.T) {
	p := parallelPlatform(t, 35)
	p.SetWorkers(4)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	calls := 0
	err := p.RunChunks(ctx, from, from.Add(1000*time.Hour), 8, func(rs []trace.Result) error {
		calls++
		if calls == 3 {
			cancel()
		}
		return ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestParallelCollectDeterministicAcrossRuns(t *testing.T) {
	to := from.Add(2 * time.Hour)
	run := func() []trace.Result {
		p := parallelPlatform(t, 36)
		p.SetWorkers(3)
		rs, err := p.Collect(from, to)
		if err != nil {
			t.Fatal(err)
		}
		return rs
	}
	if !reflect.DeepEqual(run(), run()) {
		t.Fatal("two parallel runs differ")
	}
}

// TestTaskErrorParitySeqVsPar pins the error-path contract: a mid-campaign
// task failure (unresolvable measurement target) must leave the consumed
// stream identical for sequential and parallel runs — RunChunks drops the
// partially filled chunk the error interrupts in both modes.
func TestTaskErrorParitySeqVsPar(t *testing.T) {
	to := from.Add(4 * time.Hour)
	run := func(workers int) ([]trace.Result, error) {
		p, topo := testPlatform(t, 39)
		p.AddBuiltin(topo.Roots[0].Addr)
		p.AddCustom(netip.MustParseAddr("203.0.113.250"), time.Hour, []int{3}) // not in the net
		if workers > 1 {
			p.SetWorkers(workers)
		}
		var got []trace.Result
		err := p.RunChunks(context.Background(), from, to, 8, func(rs []trace.Result) error {
			got = append(got, rs...)
			return nil
		})
		return got, err
	}
	want, wantErr := run(1)
	if wantErr == nil {
		t.Fatal("sequential run did not surface the task error")
	}
	for _, workers := range []int{2, 4} {
		got, err := run(workers)
		if err == nil || err.Error() != wantErr.Error() {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, wantErr)
		}
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: consumed %d results before error, sequential consumed %d",
				workers, len(got), len(want))
		}
	}
}

func TestRunRejectsUnknownProbe(t *testing.T) {
	p, topo := testPlatform(t, 38)
	p.AddAnchoring(topo.Anchors[0].Addr, []int{1, 999})
	if err := p.Run(from, from.Add(time.Hour), func(trace.Result) error { return nil }); err == nil {
		t.Fatal("sequential Run accepted a measurement with an unknown probe")
	}
	p.SetWorkers(2)
	if err := p.Run(from, from.Add(time.Hour), func(trace.Result) error { return nil }); err == nil {
		t.Fatal("parallel Run accepted a measurement with an unknown probe")
	}
}

func TestSetWorkersAutoIsPositive(t *testing.T) {
	p, _ := testPlatform(t, 37)
	p.SetWorkers(0)
	if p.Workers() < 1 {
		t.Fatalf("Workers() = %d after SetWorkers(0)", p.Workers())
	}
}
