package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"pinpoint/internal/core"
	"pinpoint/internal/delay"
	"pinpoint/internal/ipmap"
	"pinpoint/internal/netsim"
	"pinpoint/internal/report"
	"pinpoint/internal/trace"
)

// leakData is the shared outcome of the §7.2 route-leak run (F9–F12).
type leakData struct {
	topo     *netsim.Topo
	analyzer *core.Analyzer
	victim0  ipmap.ASN // the paper's AS3549 (Level3 Global Crossing) analog
	victim1  ipmap.ASN // the paper's AS3356 (Level3 Communications) analog
	tracked  map[trace.LinkKey][]delay.Observation
	linkA    trace.LinkKey // congested for the whole leak window (Fig 11a)
	linkB    trace.LinkKey // loss first hour, congestion second (Fig 11b)
	start    time.Time
}

var leakMemo = struct {
	sync.Mutex
	runs map[Scale]*leakData
}{runs: map[Scale]*leakData{}}

// leakScenario injects the route leak on diversity-chosen victims: traffic
// attraction via rerouting of the first victim's uplinks plus congestion
// and loss across both victim backbones — the state Level(3) was in while
// absorbing the leaked routes. linkA/linkB are the Fig 11 crafted links.
func leakScenario(v0, v1 netsim.ASInfo, leaker *netsim.ASInfo, linkA, linkB dirLink, ingress0, ingress1 []dirLink) []netsim.Event {
	var evs []netsim.Event

	// Fig 11a analog: one link congested for the full window with a large
	// shift (+229 ms in the paper, London–London).
	evs = append(evs, netsim.Event{
		Name: "leak-linkA", Kind: netsim.EventCongestion,
		From: linkA.From, To: linkA.To, Both: true,
		ExtraDelayMS: 110, Loss: 0.05,
		Start: leakStart, End: leakEnd,
	})
	// Fig 11b analog: a link that first drops probes (no RTT samples at all
	// in the first hour) and then shows the congestion (+108 ms, NY–London).
	evs = append(evs, netsim.Event{
		Name: "leak-linkB-loss", Kind: netsim.EventLoss,
		From: linkB.From, To: linkB.To, Both: true,
		Loss:  0.97,
		Start: leakStart, End: leakStart.Add(time.Hour),
	})
	evs = append(evs, netsim.Event{
		Name: "leak-linkB-congestion", Kind: netsim.EventCongestion,
		From: linkB.From, To: linkB.To, Both: true,
		ExtraDelayMS: 55, Loss: 0.05,
		Start: leakStart.Add(time.Hour), End: leakEnd,
	})
	// Blanket congestion + loss across the remaining victim backbone links
	// ("congestion seen in numerous cities ... for both Level(3) ASes").
	// Loss above 50% flips single-next-hop patterns into anti-correlation,
	// which is what lights up the Fig 10 forwarding magnitudes.
	blanket := func(as netsim.ASInfo, ms float64) {
		for i := 0; i+1 < len(as.Routers); i++ {
			from, to := as.Routers[i], as.Routers[i+1]
			crafted := func(l dirLink) bool {
				return (l.From == from && l.To == to) || (l.From == to && l.To == from)
			}
			if crafted(linkA) || crafted(linkB) {
				continue
			}
			evs = append(evs, netsim.Event{
				Name: fmt.Sprintf("leak-%s-l%d", as.Name, i), Kind: netsim.EventCongestion,
				From: from, To: to, Both: true,
				ExtraDelayMS: ms, Loss: 0.55,
				Start: leakStart, End: leakEnd,
			})
		}
	}
	// Only the first victim's backbone gets the blanket: the second
	// victim's congestion signal comes from its ingress links and crafted
	// linkB — blanketing its remaining internal links would starve linkB's
	// flows of samples and erase the Fig 11b recovery alarm.
	blanket(v0, 90)
	// The peering links INTO the victims congest and drop packets — the
	// paper attributes the event to "congested peering links between
	// Telekom Malaysia and Level(3)". Inbound loss makes the victims'
	// border routers disappear as next hops in their neighbors' forwarding
	// models, which is exactly the Fig 10 negative-magnitude signature
	// (devalued victim IPs, no compensating positive scores: the lost
	// packets land in the unresponsive bucket).
	ingress := func(name string, links []dirLink, ms, loss float64, s, e time.Time) {
		for i, l := range links {
			evs = append(evs, netsim.Event{
				Name: fmt.Sprintf("%s-%d", name, i), Kind: netsim.EventCongestion,
				From: l.From, To: l.To, Both: true,
				ExtraDelayMS: ms, Loss: loss,
				Start: s, End: e,
			})
		}
	}
	// Both directions lossy: the round trip compounds to >50% packet loss,
	// enough to flip single-next-hop patterns into anti-correlation. The
	// second victim's heavy loss lasts only the first hour (matching the
	// paper's Fig 11b: the NY router "suspected of dropping probing packets
	// from 09:00 to 10:00"), then tapers so its crafted link regains the
	// samples that produce the 10:00 delay alarm.
	ingress("leak-ingress-v0", ingress0, 80, 0.45, leakStart, leakEnd)
	ingress("leak-ingress-v1-h1", ingress1, 60, 0.45, leakStart, leakStart.Add(time.Hour))
	ingress("leak-ingress-v1-h2", ingress1, 60, 0.15, leakStart.Add(time.Hour), leakEnd)
	// The reroute: leaked routes shift flows in a third, otherwise healthy
	// AS (the leaker's side). Deliberately NOT inside the victims: diverting
	// the victims' own traffic would starve the crafted links of samples,
	// whereas the paper's leak kept traffic flowing *through* the congested
	// Level(3) links.
	if leaker != nil && len(leaker.Border) > 0 {
		evs = append(evs, netsim.Event{
			Name: "leak-reroute", Kind: netsim.EventReroute,
			From: leaker.Border[0], To: leaker.Routers[0], Both: true, WeightFactor: 8,
			Start: leakStart, End: leakEnd,
		})
	}

	return evs
}

// leakSelection records the diversity-chosen actors of the leak case.
type leakSelection struct {
	v0, v1       netsim.ASInfo
	linkA, linkB dirLink
}

// buildLeakCase generates the topology, picks victims by quiet-routing
// diversity, and builds the scenario-laden network.
func buildLeakCase(scale Scale, art netsim.Artifacts) (*netsim.Topo, *netsim.Net, leakSelection, error) {
	topo, err := netsim.Generate(caseTopoConfig(scale, 20150612))
	if err != nil {
		return nil, nil, leakSelection{}, err
	}
	// Plan against quiet routing: victims are the transit ASes whose
	// internal links see the most probe-AS-diverse traffic.
	quiet, err := topo.Build(nil)
	if err != nil {
		return nil, nil, leakSelection{}, err
	}
	div := linkDiversity(quiet, topo.ProbeSites(), topo.Targets(), leakHistoryStart)
	rank := rankTransitByDiversity(quiet, topo, div)
	sel := leakSelection{v0: topo.Transit[rank[0]], v1: topo.Transit[rank[1]]}
	var leaker *netsim.ASInfo
	if len(rank) > 2 {
		leaker = &topo.Transit[rank[2]]
	}
	sel.linkA, _ = bestIntraASLink(quiet, sel.v0, div)
	sel.linkB, _ = bestIntraASLink(quiet, sel.v1, div)
	ingress0 := ingressLinks(quiet, sel.v0)
	ingress1 := ingressLinks(quiet, sel.v1)

	topo.Builder.SetArtifacts(art)
	n, err := topo.Build(netsim.NewScenario(
		leakScenario(sel.v0, sel.v1, leaker, sel.linkA, sel.linkB, ingress0, ingress1)...))
	if err != nil {
		return nil, nil, leakSelection{}, err
	}
	return topo, n, sel, nil
}

func runLeak(scale Scale) (*leakData, error) {
	leakMemo.Lock()
	defer leakMemo.Unlock()
	if d, ok := leakMemo.runs[scale]; ok {
		return d, nil
	}

	topo, n, sel, err := buildLeakCase(scale, netsim.Artifacts{})
	if err != nil {
		return nil, err
	}
	v0, v1 := sel.v0, sel.v1
	linkA, linkB := sel.linkA, sel.linkB

	d := &leakData{
		topo: topo, victim0: v0.ASN, victim1: v1.ASN,
		tracked: make(map[trace.LinkKey][]delay.Observation),
		start:   quickHistory(scale, leakHistoryStart, leakStart),
	}
	d.linkA = trace.LinkKey{Near: n.Router(linkA.From).Addr, Far: n.Router(linkA.To).Addr}
	d.linkB = trace.LinkKey{Near: n.Router(linkB.From).Addr, Far: n.Router(linkB.To).Addr}
	trackedKeys := map[trace.LinkKey]bool{
		d.linkA: true, d.linkA.Reverse(): true,
		d.linkB: true, d.linkB.Reverse(): true,
	}

	p := newCasePlatform(n, topo, 20150612)
	cfg := core.Config{RetainAlarms: true}
	cfg.Delay.Observer = func(o delay.Observation) {
		if trackedKeys[o.Link] {
			d.tracked[o.Link] = append(d.tracked[o.Link], o)
		}
	}
	a := core.New(cfg, p.ProbeASN, n.Prefixes())
	if err := p.Run(d.start, leakRunEnd, func(r trace.Result) error {
		a.Observe(r)
		return nil
	}); err != nil {
		return nil, err
	}
	a.Flush()
	d.analyzer = a
	leakMemo.runs[scale] = d
	return d, nil
}

// Fig09LeakDelayMagnitude regenerates Fig 9: delay-change magnitude for the
// two victim transit ASes, peaking during the leak window.
func Fig09LeakDelayMagnitude(scale Scale) (*Report, error) {
	d, err := runLeak(scale)
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	metrics := map[string]float64{}
	claims := []Claim{}
	for i, asn := range []ipmap.ASN{d.victim0, d.victim1} {
		mags := d.analyzer.Aggregator().DelayMagnitude(asn, d.start.Add(24*time.Hour), leakRunEnd)
		var inPeak, outPeak float64
		for _, p := range mags {
			if !p.T.Before(leakStart) && p.T.Before(leakEnd) {
				inPeak = maxf(inPeak, p.V)
			} else {
				outPeak = maxf(outPeak, p.V)
			}
		}
		sb.WriteString(report.TimeSeries(fmt.Sprintf("%s delay change magnitude", asn), mags, 7))
		sb.WriteString("\n")
		metrics[fmt.Sprintf("victim%d_in_peak", i)] = inPeak
		metrics[fmt.Sprintf("victim%d_out_peak", i)] = outPeak
		claims = append(claims, Claim{
			Name:     fmt.Sprintf("victim %d magnitude peaks during leak", i),
			Paper:    "positive peaks June 12 09:00–11:00 (Fig 9)",
			Measured: fmt.Sprintf("in=%.0f out=%.0f", inPeak, outPeak),
			Holds:    inPeak > 10 && inPeak > 3*maxf(outPeak, 1),
		})
	}
	return &Report{
		ID: "F9", Title: "Route-leak delay magnitude (victim ASes)", Scale: scale,
		Text: sb.String(), Metrics: metrics, Claims: claims,
	}, nil
}

// Fig10LeakForwardingMagnitude regenerates Fig 10: both victims' forwarding
// magnitudes dip sharply negative in the same window (routers disappearing
// from forwarding models + packet loss).
func Fig10LeakForwardingMagnitude(scale Scale) (*Report, error) {
	d, err := runLeak(scale)
	if err != nil {
		return nil, err
	}
	var sb strings.Builder
	metrics := map[string]float64{}
	claims := []Claim{}
	for i, asn := range []ipmap.ASN{d.victim0, d.victim1} {
		mags := d.analyzer.Aggregator().ForwardingMagnitude(asn, d.start.Add(24*time.Hour), leakRunEnd)
		inMin, outMin := 0.0, 0.0
		for _, p := range mags {
			if !p.T.Before(leakStart) && p.T.Before(leakEnd) {
				if p.V < inMin {
					inMin = p.V
				}
			} else if p.V < outMin {
				outMin = p.V
			}
		}
		sb.WriteString(report.TimeSeries(fmt.Sprintf("%s forwarding anomaly magnitude", asn), mags, 7))
		sb.WriteString("\n")
		metrics[fmt.Sprintf("victim%d_in_min", i)] = inMin
		metrics[fmt.Sprintf("victim%d_out_min", i)] = outMin
		claims = append(claims, Claim{
			Name:     fmt.Sprintf("victim %d forwarding magnitude dips during leak", i),
			Paper:    "negative peaks June 12 09:00–11:00 (Fig 10)",
			Measured: fmt.Sprintf("in=%.1f out=%.1f", inMin, outMin),
			Holds:    inMin < -1 && inMin < outMin,
		})
	}
	return &Report{
		ID: "F10", Title: "Route-leak forwarding magnitude", Scale: scale,
		Text: sb.String(), Metrics: metrics, Claims: claims,
	}, nil
}

// Fig11LeakLinks regenerates Fig 11: one victim link alarms for the whole
// window with a large shift; the other loses its RTT samples in the first
// hour (forwarding anomaly) and alarms once samples return — the
// complementarity of the two methods.
func Fig11LeakLinks(scale Scale) (*Report, error) {
	d, err := runLeak(scale)
	if err != nil {
		return nil, err
	}

	obsFor := func(k trace.LinkKey) []delay.Observation {
		if len(d.tracked[k]) >= len(d.tracked[k.Reverse()]) {
			return d.tracked[k]
		}
		return d.tracked[k.Reverse()]
	}
	within := func(o delay.Observation, s, e time.Time) bool {
		return !o.Bin.Before(s) && o.Bin.Before(e)
	}

	obsA := obsFor(d.linkA)
	obsB := obsFor(d.linkB)

	var aAlarms int
	var aShift float64
	for _, o := range obsA {
		if o.Anomalous && within(o, leakStart, leakEnd) {
			aAlarms++
			shift := o.Observed.Median - o.Reference.Median
			if shift > aShift {
				aShift = shift
			}
		}
	}
	var bFirstHourObs, bSecondHourAlarms int
	for _, o := range obsB {
		if within(o, leakStart, leakStart.Add(time.Hour)) {
			bFirstHourObs++
		}
		if o.Anomalous && within(o, leakStart.Add(time.Hour), leakEnd) {
			bSecondHourAlarms++
		}
	}
	// Forwarding anomalies naming linkB's near end during the loss hour.
	bFwd := 0
	for _, al := range d.analyzer.ForwardingAlarms() {
		if !al.Bin.Before(leakStart) && al.Bin.Before(leakStart.Add(time.Hour)) {
			if al.Router == d.linkB.Near || al.Router == d.linkB.Far {
				bFwd++
				continue
			}
			for _, h := range al.Hops {
				if h.Hop == d.linkB.Near || h.Hop == d.linkB.Far {
					bFwd++
					break
				}
			}
		}
	}

	var sb strings.Builder
	sb.WriteString(report.Table([][]string{
		{"link", "role", "observed bins", "alarm bins in window", "max median shift"},
		{d.linkA.String(), "congested 09–11h (Fig 11a)", fmt.Sprintf("%d", len(obsA)), fmt.Sprintf("%d", aAlarms), report.MS(aShift)},
		{d.linkB.String(), "loss 09–10h, congested 10–11h (Fig 11b)", fmt.Sprintf("%d", len(obsB)), fmt.Sprintf("%d", bSecondHourAlarms), "—"},
	}))
	fmt.Fprintf(&sb, "\nlink B evaluated bins during the loss hour: %d (loss starves the delay detector)\n", bFirstHourObs)
	fmt.Fprintf(&sb, "forwarding alarms naming link B's ends during the loss hour: %d\n", bFwd)

	r := &Report{
		ID: "F11", Title: "Route-leak per-link complementarity", Scale: scale,
		Text: sb.String(),
		Metrics: map[string]float64{
			"linkA_alarms":      float64(aAlarms),
			"linkA_shift_ms":    aShift,
			"linkB_gap_bins":    float64(bFirstHourObs),
			"linkB_late_alarms": float64(bSecondHourAlarms),
			"linkB_fwd_alarms":  float64(bFwd),
		},
	}
	r.Claims = []Claim{
		{
			Name:     "fully congested link alarms with a large shift",
			Paper:    "London–London +229 ms, reported 09:00 and 10:00 (11a)",
			Measured: fmt.Sprintf("%d alarms, max shift %.0f ms", aAlarms, aShift),
			Holds:    aAlarms >= 2 && aShift > 50,
		},
		{
			Name:     "lossy link starves the delay detector first",
			Paper:    "RTT samples missing at 09:00 due to packet loss (11b)",
			Measured: fmt.Sprintf("%d evaluated bins in loss hour", bFirstHourObs),
			Holds:    bFirstHourObs == 0,
		},
		{
			Name:     "delay alarm appears when samples return",
			Paper:    "NY–London +108 ms reported at 10:00 (11b)",
			Measured: fmt.Sprintf("%d alarms in the second hour", bSecondHourAlarms),
			Holds:    bSecondHourAlarms >= 1,
		},
		{
			Name:     "forwarding model covers the gap",
			Paper:    "NY address found in forwarding anomalies 09:00–10:00",
			Measured: fmt.Sprintf("%d forwarding alarms", bFwd),
			Holds:    bFwd >= 1,
		},
	}
	return r, nil
}

// Fig12LeakGraph regenerates Fig 12: the connected alarm component inside
// the victim backbone at the leak peak, with per-edge median shifts and
// forwarding-flagged (red) nodes.
func Fig12LeakGraph(scale Scale) (*Report, error) {
	d, err := runLeak(scale)
	if err != nil {
		return nil, err
	}
	g := d.analyzer.Graph(leakStart, leakEnd)
	nodes := g.ComponentNodes(d.linkA.Near)
	edges := g.Component(d.linkA.Near)
	flagged := 0
	for _, n := range nodes {
		if g.Flagged(n) {
			flagged++
		}
	}
	maxShift := 0.0
	for _, e := range edges {
		if e.ShiftMS > maxShift {
			maxShift = e.ShiftMS
		}
	}

	var sb strings.Builder
	sb.WriteString(report.Table([][]string{
		{"quantity", "value", "paper (Fig 12)"},
		{"component nodes", fmt.Sprintf("%d", len(nodes)), "≈ a dozen (London)"},
		{"component edges", fmt.Sprintf("%d", len(edges)), "—"},
		{"forwarding-flagged (red) nodes", fmt.Sprintf("%d", flagged), "several"},
		{"max edge shift", report.MS(maxShift), "+229 ms"},
	}))

	r := &Report{
		ID: "F12", Title: "Route-leak alarm graph", Scale: scale,
		Text: sb.String(),
		Metrics: map[string]float64{
			"nodes": float64(len(nodes)), "edges": float64(len(edges)),
			"flagged": float64(flagged), "max_shift": maxShift,
		},
	}
	r.Claims = []Claim{
		{
			Name:     "adjacent victim links form one component",
			Paper:    "several adjacent links reported together",
			Measured: fmt.Sprintf("%d nodes / %d edges", len(nodes), len(edges)),
			Holds:    len(nodes) >= 3 && len(edges) >= 2,
		},
		{
			Name:     "forwarding anomalies mark nodes in the component",
			Paper:    "red nodes in Fig 12",
			Measured: fmt.Sprintf("%d flagged", flagged),
			Holds:    flagged >= 1,
		},
	}
	return r, nil
}
