package experiments

import (
	"fmt"
	"time"

	"pinpoint/internal/atlas"
	"pinpoint/internal/netsim"
)

// Case is a ready-to-run measurement campaign over one of the scenarios:
// the quiet baseline or one of the paper's three case studies. cmd/atlasgen
// dumps cases to JSONL, cmd/ihr streams them, and the examples run them
// directly.
type Case struct {
	Name        string
	Description string
	Platform    *atlas.Platform
	Topo        *netsim.Topo
	Net         *netsim.Net
	Start, End  time.Time

	// EventWindows are the injected disruption intervals (ground truth).
	EventWindows [][2]time.Time
}

// CaseNames lists the valid case names for NewCase.
var CaseNames = []string{"quiet", "ddos", "leak", "ixp"}

// NewCase builds the named scenario at the given scale.
func NewCase(name string, scale Scale) (*Case, error) {
	switch name {
	case "quiet":
		topo, err := netsim.Generate(caseTopoConfig(scale, 42))
		if err != nil {
			return nil, err
		}
		n, err := topo.Build(nil)
		if err != nil {
			return nil, err
		}
		start := time.Date(2015, 5, 1, 0, 0, 0, 0, time.UTC)
		end := start.Add(72 * time.Hour)
		if scale == Full {
			end = start.Add(10 * 24 * time.Hour)
		}
		return &Case{
			Name: name, Description: "healthy network, no injected events",
			Platform: newCasePlatform(n, topo, 42), Topo: topo, Net: n,
			Start: start, End: end,
		}, nil
	case "ddos":
		topo, n, _, err := buildDDoSCase(scale)
		if err != nil {
			return nil, err
		}
		return &Case{
			Name:        name,
			Description: "§7.1: DDoS against anycast root servers (two attack windows)",
			Platform:    newCasePlatform(n, topo, 20151130), Topo: topo, Net: n,
			Start: quickHistory(scale, ddosHistoryStart, ddosAttack1Start), End: ddosEnd,
			EventWindows: [][2]time.Time{
				{ddosAttack1Start, ddosAttack1End},
				{ddosAttack2Start, ddosAttack2End},
			},
		}, nil
	case "leak":
		topo, n, _, err := buildLeakCase(scale)
		if err != nil {
			return nil, err
		}
		return &Case{
			Name:        name,
			Description: "§7.2: BGP route leak congesting two transit backbones",
			Platform:    newCasePlatform(n, topo, 20150612), Topo: topo, Net: n,
			Start:        quickHistory(scale, leakHistoryStart, leakStart),
			End:          leakRunEnd,
			EventWindows: [][2]time.Time{{leakStart, leakEnd}},
		}, nil
	case "ixp":
		topo, n, err := buildIXPCase(scale)
		if err != nil {
			return nil, err
		}
		return &Case{
			Name:        name,
			Description: "§7.3: exchange-point peering LAN outage (loss only, no delay signal)",
			Platform:    newCasePlatform(n, topo, 20150513), Topo: topo, Net: n,
			Start:        quickHistory(scale, ixpHistoryStart, ixpOutageStart),
			End:          ixpRunEnd,
			EventWindows: [][2]time.Time{{ixpOutageStart, ixpOutageEnd}},
		}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown case %q (valid: %v)", name, CaseNames)
	}
}
