package experiments

import (
	"fmt"
	"time"

	"pinpoint/internal/atlas"
	"pinpoint/internal/netsim"
)

// Case is a ready-to-run measurement campaign over one of the scenarios:
// the quiet baseline, one of the paper's three case studies, or one of the
// adversity-suite disruptions. cmd/atlasgen dumps cases to JSONL, cmd/ihr
// streams them, and the examples run them directly.
type Case struct {
	Name        string
	Description string
	Platform    *atlas.Platform
	Topo        *netsim.Topo
	Net         *netsim.Net
	Start, End  time.Time

	// EventWindows are the injected disruption intervals (ground truth).
	EventWindows [][2]time.Time
}

// CaseNames lists the valid case names for NewCase. CLI -case flags derive
// their usage strings from this list, so new cases show up in -h
// automatically.
var CaseNames = []string{"quiet", "ddos", "leak", "ixp", "anycast", "ixpfail", "fiber"}

// NewCase builds the named scenario at the given scale, artifact-free.
func NewCase(name string, scale Scale) (*Case, error) {
	return NewCaseArtifacts(name, scale, netsim.Artifacts{})
}

// NewCaseArtifacts builds the named scenario with the given
// measurement-artifact mix baked into the network. The zero Artifacts value
// reproduces NewCase exactly, byte for byte. Scenario planning (DDoS
// catchments, leak victim ranking, the fiber link census) always runs
// against the clean quiet network — artifacts corrupt measurements, not the
// ground truth.
func NewCaseArtifacts(name string, scale Scale, art netsim.Artifacts) (*Case, error) {
	switch name {
	case "quiet":
		topo, err := netsim.Generate(caseTopoConfig(scale, 42))
		if err != nil {
			return nil, err
		}
		topo.Builder.SetArtifacts(art)
		n, err := topo.Build(nil)
		if err != nil {
			return nil, err
		}
		start := time.Date(2015, 5, 1, 0, 0, 0, 0, time.UTC)
		end := start.Add(72 * time.Hour)
		if scale == Full {
			end = start.Add(10 * 24 * time.Hour)
		}
		return &Case{
			Name: name, Description: "healthy network, no injected events",
			Platform: newCasePlatform(n, topo, 42), Topo: topo, Net: n,
			Start: start, End: end,
		}, nil
	case "ddos":
		topo, n, _, err := buildDDoSCase(scale, art)
		if err != nil {
			return nil, err
		}
		return &Case{
			Name:        name,
			Description: "§7.1: DDoS against anycast root servers (two attack windows)",
			Platform:    newCasePlatform(n, topo, 20151130), Topo: topo, Net: n,
			Start: quickHistory(scale, ddosHistoryStart, ddosAttack1Start), End: ddosEnd,
			EventWindows: [][2]time.Time{
				{ddosAttack1Start, ddosAttack1End},
				{ddosAttack2Start, ddosAttack2End},
			},
		}, nil
	case "leak":
		topo, n, _, err := buildLeakCase(scale, art)
		if err != nil {
			return nil, err
		}
		return &Case{
			Name:        name,
			Description: "§7.2: BGP route leak congesting two transit backbones",
			Platform:    newCasePlatform(n, topo, 20150612), Topo: topo, Net: n,
			Start:        quickHistory(scale, leakHistoryStart, leakStart),
			End:          leakRunEnd,
			EventWindows: [][2]time.Time{{leakStart, leakEnd}},
		}, nil
	case "ixp":
		topo, n, err := buildIXPCase(scale, art)
		if err != nil {
			return nil, err
		}
		return &Case{
			Name:        name,
			Description: "§7.3: exchange-point peering LAN outage (loss only, no delay signal)",
			Platform:    newCasePlatform(n, topo, 20150513), Topo: topo, Net: n,
			Start:        quickHistory(scale, ixpHistoryStart, ixpOutageStart),
			End:          ixpRunEnd,
			EventWindows: [][2]time.Time{{ixpOutageStart, ixpOutageEnd}},
		}, nil
	case "anycast":
		topo, n, err := buildAnycastCase(scale, art)
		if err != nil {
			return nil, err
		}
		return &Case{
			Name:        name,
			Description: "anycast catchment shift: two root instances withdrawn, their probes drain elsewhere",
			Platform:    newCasePlatform(n, topo, 20150901), Topo: topo, Net: n,
			Start:        quickHistory(scale, anycastHistoryStart, anycastShiftStart),
			End:          anycastRunEnd,
			EventWindows: [][2]time.Time{{anycastShiftStart, anycastShiftEnd}},
		}, nil
	case "ixpfail":
		topo, n, err := buildIXPFailCase(scale, art)
		if err != nil {
			return nil, err
		}
		return &Case{
			Name:        name,
			Description: "IXP failover: peering LAN down, member traffic reroutes through transit",
			Platform:    newCasePlatform(n, topo, 20150715), Topo: topo, Net: n,
			Start:        quickHistory(scale, ixpfailHistoryStart, ixpfailStart),
			End:          ixpfailRunEnd,
			EventWindows: [][2]time.Time{{ixpfailStart, ixpfailEnd}},
		}, nil
	case "fiber":
		topo, n, err := buildFiberCase(scale, art)
		if err != nil {
			return nil, err
		}
		return &Case{
			Name:        name,
			Description: "partial fiber degradation: one backbone direction degraded, return paths healthy",
			Platform:    newCasePlatform(n, topo, 20151020), Topo: topo, Net: n,
			Start:        quickHistory(scale, fiberHistoryStart, fiberStart),
			End:          fiberRunEnd,
			EventWindows: [][2]time.Time{{fiberStart, fiberEnd}},
		}, nil
	default:
		return nil, fmt.Errorf("experiments: unknown case %q (valid: %v)", name, CaseNames)
	}
}
