package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"pinpoint/internal/core"
	"pinpoint/internal/delay"
	"pinpoint/internal/ipmap"
	"pinpoint/internal/netsim"
	"pinpoint/internal/report"
	"pinpoint/internal/stats"
	"pinpoint/internal/trace"
)

// longRunData is the shared outcome of the "campaign" run standing in for
// the paper's 8-month dataset: a multi-week measurement with a handful of
// injected disruptions of all three kinds, used by F5 and T1.
type longRunData struct {
	topo     *netsim.Topo
	analyzer *core.Analyzer
	start    time.Time
	end      time.Time
	analysis time.Time // first bin with a full magnitude window behind it

	delayMags []float64 // hourly delay magnitudes pooled over all ASes
	fwdMags   []float64 // hourly forwarding magnitudes pooled over all ASes

	linksEvaluated map[trace.LinkKey]int // link → evaluated bins
	linksAlarmed   map[trace.LinkKey]int
	probesSum      int // Σ probes over evaluations (for the mean)
	evaluations    int
	asCount        int // distinct ASes pooled into the magnitude sets
}

var longMemo = struct {
	sync.Mutex
	runs map[Scale]*longRunData
}{runs: map[Scale]*longRunData{}}

func runLong(scale Scale) (*longRunData, error) {
	longMemo.Lock()
	defer longMemo.Unlock()
	if d, ok := longMemo.runs[scale]; ok {
		return d, nil
	}

	topo, err := netsim.Generate(caseTopoConfig(scale, 20150501))
	if err != nil {
		return nil, err
	}
	start := time.Date(2015, 5, 1, 0, 0, 0, 0, time.UTC)
	days := 18
	if scale == Quick {
		days = 5
	}
	end := start.Add(time.Duration(days) * 24 * time.Hour)
	analysis := start.Add(48 * time.Hour)
	if scale == Full {
		analysis = start.Add(7 * 24 * time.Hour)
	}

	// A handful of disruptions spread across the campaign, one per family,
	// planned against quiet routing so they land on traversed links.
	quiet, err := topo.Build(nil)
	if err != nil {
		return nil, err
	}
	div := linkDiversity(quiet, topo.ProbeSites(), topo.Targets(), start)
	rank := rankTransitByDiversity(quiet, topo, div)
	link0, _ := bestIntraASLink(quiet, topo.Transit[rank[0]], div)
	link1, _ := bestIntraASLink(quiet, topo.Transit[rank[1]], div)
	plan := planDDoS(quiet, topo, start)

	day := func(d int, h int) time.Time { return start.Add(time.Duration(d*24+h) * time.Hour) }
	var evs []netsim.Event
	addCongestion := func(name string, from, to netsim.RouterID, d1, h1, hours int, ms float64) {
		evs = append(evs, netsim.Event{
			Name: name, Kind: netsim.EventCongestion, From: from, To: to, Both: true,
			ExtraDelayMS: ms, Loss: 0.05,
			Start: day(d1, h1), End: day(d1, h1+hours),
		})
	}
	ixpDark := func(d1, h1, hours int) {
		for _, iface := range topo.IXPs[0].Ifaces {
			evs = append(evs,
				netsim.Event{Name: "bh", Kind: netsim.EventBlackhole, Router: iface, Loss: 1,
					Start: day(d1, h1), End: day(d1, h1+hours)},
				netsim.Event{Name: "quiet", Kind: netsim.EventSilence, Router: iface,
					Start: day(d1, h1), End: day(d1, h1+hours)},
			)
		}
	}
	root := topo.Roots[0]
	if scale == Full {
		addCongestion("c1", link0.From, link0.To, 8, 13, 2, 120)
		addCongestion("c2", link1.From, link1.To, 12, 4, 3, 80)
		addCongestion("c3", root.Sites[plan.both], root.Instances[plan.both], 15, 7, 2, 60)
		ixpDark(10, 9, 3)
		tr := topo.Transit[rank[2]]
		evs = append(evs, netsim.Event{
			Name: "rr", Kind: netsim.EventReroute, From: tr.Border[0], To: tr.Routers[0],
			Both: true, WeightFactor: 10,
			Start: day(14, 2), End: day(14, 8),
		})
	} else {
		addCongestion("c1", link0.From, link0.To, 3, 13, 2, 120)
		ixpDark(4, 9, 2)
	}

	n, err := topo.Build(netsim.NewScenario(evs...))
	if err != nil {
		return nil, err
	}

	d := &longRunData{
		topo: topo, start: start, end: end, analysis: analysis,
		linksEvaluated: make(map[trace.LinkKey]int),
		linksAlarmed:   make(map[trace.LinkKey]int),
	}
	p := newCasePlatform(n, topo, 20150501)
	cfg := core.Config{RetainAlarms: true}
	cfg.Delay.Observer = func(o delay.Observation) {
		d.linksEvaluated[o.Link]++
		if o.Anomalous {
			d.linksAlarmed[o.Link]++
		}
		d.probesSum += o.Probes
		d.evaluations++
	}
	a := core.New(cfg, p.ProbeASN, n.Prefixes())
	if err := p.Run(start, end, func(r trace.Result) error {
		a.Observe(r)
		return nil
	}); err != nil {
		return nil, err
	}
	a.Flush()
	d.analyzer = a

	// Pool hourly magnitudes over EVERY monitored AS, exactly as the paper
	// does over its 1060 ASes: quiet ASes contribute zero-magnitude hours,
	// which is what puts ~97% of the mass below 1 in Fig 5a.
	seen := map[ipmap.ASN]struct{}{}
	var allASes []ipmap.ASN
	for _, e := range n.Prefixes().Entries() {
		if _, dup := seen[e.ASN]; dup {
			continue
		}
		seen[e.ASN] = struct{}{}
		allASes = append(allASes, e.ASN)
	}
	bins := int(end.Sub(analysis) / time.Hour)
	for _, asn := range allASes {
		dm := a.Aggregator().DelayMagnitude(asn, analysis, end)
		if dm == nil {
			d.delayMags = append(d.delayMags, make([]float64, bins)...)
		} else {
			for _, pt := range dm {
				d.delayMags = append(d.delayMags, pt.V)
			}
		}
		fm := a.Aggregator().ForwardingMagnitude(asn, analysis, end)
		if fm == nil {
			d.fwdMags = append(d.fwdMags, make([]float64, bins)...)
		} else {
			for _, pt := range fm {
				d.fwdMags = append(d.fwdMags, pt.V)
			}
		}
	}
	d.asCount = len(allASes)
	longMemo.runs[scale] = d
	return d, nil
}

// Fig05MagnitudeDistributions regenerates Fig 5: (a) the CCDF of hourly
// delay-change magnitudes over all ASes — overwhelmingly below 1, with a
// heavy right tail from real events — and (b) the CDF of forwarding
// magnitudes — a heavy left tail of significant anomalies.
func Fig05MagnitudeDistributions(scale Scale) (*Report, error) {
	d, err := runLong(scale)
	if err != nil {
		return nil, err
	}
	below1 := stats.FractionBelow(d.delayMags, 1)
	maxMag := stats.Max(d.delayMags)
	minFwd := stats.Min(d.fwdMags)
	fwdBelowMinus10 := 0
	for _, v := range d.fwdMags {
		if v < -10 {
			fwdBelowMinus10++
		}
	}
	fwdFrac := float64(fwdBelowMinus10) / float64(len(d.fwdMags))

	var sb strings.Builder
	fmt.Fprintf(&sb, "Pooled hourly magnitudes over %d ASes (%d with alarms), %d delay points, %d forwarding points\n\n",
		d.asCount, len(d.analyzer.Aggregator().ASes()), len(d.delayMags), len(d.fwdMags))
	sb.WriteString(report.Histogram("Fig 5a analog: delay magnitude distribution", clampRange(d.delayMags, -5, 30), 12))
	sb.WriteString("\n")
	sb.WriteString(report.Histogram("Fig 5b analog: forwarding magnitude distribution", clampRange(d.fwdMags, -30, 5), 12))
	sb.WriteString("\n")
	sb.WriteString(report.Table([][]string{
		{"statistic", "measured", "paper"},
		{"P(delay mag < 1)", report.Percent(below1), "≈97%"},
		{"max delay magnitude", fmt.Sprintf("%.0f", maxMag), "heavy tail (top ≈ 3×10⁴)"},
		{"min forwarding magnitude", fmt.Sprintf("%.0f", minFwd), "heavy left tail"},
		{"P(fwd mag < −10)", report.Percent(fwdFrac), "≈0.001%"},
	}))

	r := &Report{
		ID: "F5", Title: "Magnitude distributions over all ASes", Scale: scale,
		Text: sb.String(),
		Metrics: map[string]float64{
			"delay_below_1": below1,
			"delay_max":     maxMag,
			"fwd_min":       minFwd,
			"fwd_below_-10": fwdFrac,
			"delay_points":  float64(len(d.delayMags)),
			"fwd_points":    float64(len(d.fwdMags)),
		},
	}
	r.Claims = []Claim{
		{
			Name:     "ASes are usually free of large delay changes",
			Paper:    "97% of hourly magnitudes < 1",
			Measured: report.Percent(below1),
			Holds:    below1 > 0.9,
		},
		{
			Name:     "heavy right tail from real events",
			Paper:    "CCDF tail reaches very large magnitudes",
			Measured: fmt.Sprintf("max %.0f", maxMag),
			Holds:    maxMag > 10,
		},
		{
			Name:     "forwarding anomalies have a heavy left tail",
			Paper:    "mag < −10 for only 0.001% of the time",
			Measured: fmt.Sprintf("%.3f%% below −10, min %.0f", fwdFrac*100, minFwd),
			Holds:    fwdFrac < 0.05 && minFwd < -1,
		},
	}
	return r, nil
}

// Tab01AggregateStats regenerates the §7 aggregate statistics paragraphs:
// links monitored, probes per link, links with at least one anomaly, router
// IPs with forwarding models and their mean next-hop count.
func Tab01AggregateStats(scale Scale) (*Report, error) {
	d, err := runLong(scale)
	if err != nil {
		return nil, err
	}
	linksSeen := d.analyzer.DelayDetector().LinksSeen()
	linksEval := len(d.linksEvaluated)
	linksAlarmed := len(d.linksAlarmed)
	alarmFrac := 0.0
	if linksEval > 0 {
		alarmFrac = float64(linksAlarmed) / float64(linksEval)
	}
	probesPerLink := 0.0
	if d.evaluations > 0 {
		probesPerLink = float64(d.probesSum) / float64(d.evaluations)
	}
	routers := d.analyzer.ForwardingDetector().RoutersSeen()
	avgHops := d.analyzer.ForwardingDetector().AvgNextHops()

	var sb strings.Builder
	sb.WriteString(report.Table([][]string{
		{"statistic", "measured (scaled)", "paper (8 months, full Atlas)"},
		{"links with ∆ samples", fmt.Sprintf("%d", linksSeen), "262k IPv4"},
		{"links passing diversity filter", fmt.Sprintf("%d", linksEval), "—"},
		{"mean probes per evaluated link", fmt.Sprintf("%.0f", probesPerLink), "147 IPv4"},
		{"links with ≥1 delay anomaly", fmt.Sprintf("%d (%s)", linksAlarmed, report.Percent(alarmFrac)), "33%"},
		{"router IPs with forwarding models", fmt.Sprintf("%d", routers), "170k IPv4"},
		{"mean next hops per model", fmt.Sprintf("%.1f", avgHops), "4"},
	}))

	r := &Report{
		ID: "T1", Title: "§7 aggregate statistics", Scale: scale,
		Text: sb.String(),
		Metrics: map[string]float64{
			"links_seen":      float64(linksSeen),
			"links_evaluated": float64(linksEval),
			"links_alarmed":   float64(linksAlarmed),
			"alarm_fraction":  alarmFrac,
			"probes_per_link": probesPerLink,
			"routers_modeled": float64(routers),
			"avg_next_hops":   avgHops,
		},
	}
	r.Claims = []Claim{
		{
			Name:     "diversity filter keeps a usable link population",
			Paper:    "262k links monitored",
			Measured: fmt.Sprintf("%d of %d links evaluated", linksEval, linksSeen),
			Holds:    linksEval > 0 && linksEval <= linksSeen,
		},
		{
			Name:     "a minority of links ever alarm",
			Paper:    "33% of links had ≥1 anomaly",
			Measured: report.Percent(alarmFrac),
			Holds:    alarmFrac < 0.6,
		},
		{
			Name:     "forwarding models stay small",
			Paper:    "4 next hops on average",
			Measured: fmt.Sprintf("%.1f", avgHops),
			Holds:    avgHops >= 1 && avgHops < 10,
		},
	}
	return r, nil
}

// clampRange keeps values within [lo, hi] for readable histograms.
func clampRange(xs []float64, lo, hi float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		if x < lo {
			x = lo
		}
		if x > hi {
			x = hi
		}
		out = append(out, x)
	}
	return out
}
