package experiments

import (
	"fmt"
	"time"

	"pinpoint/internal/ipmap"
	"pinpoint/internal/netsim"
)

// Adversity-suite cases: three disruption shapes beyond the paper's §7
// trio, built for measuring detector robustness (see robust.go). Each is
// planned against quiet routing — like the DDoS and leak cases — and
// carries ground-truth EventWindows.

// buildAnycastCase injects an anycast catchment shift: every root instance
// except the least-served one has its site link rerouted away (weight ×
// 1e6) for three hours — the BGP-withdrawal shape of a botched anycast
// maintenance, where one surviving site suddenly absorbs the entire probe
// population. Forward paths toward the root change for nearly every probe
// and RTTs jump to the (farther) surviving instance.
func buildAnycastCase(scale Scale, art netsim.Artifacts) (*netsim.Topo, *netsim.Net, error) {
	topo, err := netsim.Generate(caseTopoConfig(scale, 20150901))
	if err != nil {
		return nil, nil, err
	}
	quiet, err := topo.Build(nil)
	if err != nil {
		return nil, nil, err
	}
	root := topo.Roots[0]
	// Keep the least-served instance (smallest quiet catchment) so the
	// withdrawal moves the largest possible probe population.
	catch, _ := rootCatchment(quiet, root, topo.ProbeSites(), anycastHistoryStart)
	keep := 0
	for i, inst := range root.Instances {
		if len(catch[inst]) < len(catch[root.Instances[keep]]) {
			keep = i
		}
	}
	var evs []netsim.Event
	for i := range root.Instances {
		if i == keep {
			continue
		}
		evs = append(evs, netsim.Event{
			Name: fmt.Sprintf("anycast-withdraw-%d", i), Kind: netsim.EventReroute,
			From: root.Sites[i], To: root.Instances[i], Both: true,
			WeightFactor: 1e6,
			Start:        anycastShiftStart, End: anycastShiftEnd,
		})
	}
	topo.Builder.SetArtifacts(art)
	n, err := topo.Build(netsim.NewScenario(evs...))
	if err != nil {
		return nil, nil, err
	}
	return topo, n, nil
}

// buildIXPFailCase injects an IXP failover: every peering-LAN link of the
// first exchange goes administratively down, so member-to-member traffic
// reroutes through transit. Unlike the §7.3 "ixp" case (blackhole +
// silence: pure loss, no routing reaction) this one is route-affecting —
// the LAN hops vanish from paths and the detours carry a delay signal.
func buildIXPFailCase(scale Scale, art netsim.Artifacts) (*netsim.Topo, *netsim.Net, error) {
	topo, err := netsim.Generate(caseTopoConfig(scale, 20150715))
	if err != nil {
		return nil, nil, err
	}
	ixp := topo.IXPs[0]
	var evs []netsim.Event
	for a := 0; a < len(ixp.Ifaces); a++ {
		for z := a + 1; z < len(ixp.Ifaces); z++ {
			evs = append(evs, netsim.Event{
				Name: fmt.Sprintf("ixpfail-%d-%d", a, z), Kind: netsim.EventLinkDown,
				From: ixp.Ifaces[a], To: ixp.Ifaces[z], Both: true,
				Start: ixpfailStart, End: ixpfailEnd,
			})
		}
	}
	topo.Builder.SetArtifacts(art)
	n, err := topo.Build(netsim.NewScenario(evs...))
	if err != nil {
		return nil, nil, err
	}
	return topo, n, nil
}

// buildFiberCase injects a partial fiber degradation with asymmetric return
// paths: the busiest inter-AS backbone direction (found by walking
// quiet-routing forward paths from every probe to every target) gains 18 ms
// and 2% loss in that direction only. Replies riding the healthy reverse
// direction are untouched, so only traces whose *forward* leg crosses the
// sick fiber see the shift — the asymmetry the differential-RTT method is
// built to survive.
func buildFiberCase(scale Scale, art netsim.Artifacts) (*netsim.Topo, *netsim.Net, error) {
	topo, err := netsim.Generate(caseTopoConfig(scale, 20151020))
	if err != nil {
		return nil, nil, err
	}
	quiet, err := topo.Build(nil)
	if err != nil {
		return nil, nil, err
	}
	from, to, ok := busiestBackboneLink(quiet, topo, fiberHistoryStart)
	if !ok {
		return nil, nil, fmt.Errorf("experiments: fiber case found no inter-AS backbone link in use")
	}
	evs := []netsim.Event{
		{
			Name: "fiber-degrade-delay", Kind: netsim.EventCongestion,
			From: from, To: to, // one direction only: asymmetric by design
			ExtraDelayMS: 18, Loss: 0.02,
			Start: fiberStart, End: fiberEnd,
		},
	}
	topo.Builder.SetArtifacts(art)
	n, err := topo.Build(netsim.NewScenario(evs...))
	if err != nil {
		return nil, nil, err
	}
	return topo, n, nil
}

// busiestBackboneLink walks quiet forward paths from every probe site to
// every target over a few Paris flow ids and returns the most-traversed
// directed router pair crossing between two core (tier-1 or transit) ASes.
// The delay detector only evaluates links measured by at least three
// distinct probe ASes (MinASes), so the census ranks pairs by probe-site
// diversity first and raw crossings second; a degraded link nobody can
// triangulate would make the case undetectable by construction.
func busiestBackboneLink(n *netsim.Net, topo *netsim.Topo, at time.Time) (from, to netsim.RouterID, ok bool) {
	core := make(map[ipmap.ASN]bool, len(topo.Tier1)+len(topo.Transit))
	for _, as := range topo.Tier1 {
		core[as.ASN] = true
	}
	for _, as := range topo.Transit {
		core[as.ASN] = true
	}
	type pair struct{ a, b netsim.RouterID }
	type tally struct {
		crossings int
		probes    map[netsim.RouterID]bool
	}
	counts := make(map[pair]*tally)
	for _, probe := range topo.ProbeSites() {
		for _, tgt := range topo.Targets() {
			for paris := 0; paris < 4; paris++ {
				path, _ := n.ForwardPath(probe, tgt, at, paris)
				for i := 0; i+1 < len(path); i++ {
					ra, rb := n.Router(path[i]), n.Router(path[i+1])
					if ra.AS == rb.AS || !core[ra.AS] || !core[rb.AS] {
						continue
					}
					p := pair{path[i], path[i+1]}
					t := counts[p]
					if t == nil {
						t = &tally{probes: make(map[netsim.RouterID]bool)}
						counts[p] = t
					}
					t.crossings++
					t.probes[probe] = true
				}
			}
		}
	}
	best, bestProbes, bestN := pair{netsim.NoRouter, netsim.NoRouter}, 0, 0
	for p, t := range counts {
		np := len(t.probes)
		// Deterministic argmax: probe diversity, then crossings, then (a, b).
		better := np > bestProbes ||
			(np == bestProbes && (t.crossings > bestN ||
				(t.crossings == bestN && (p.a < best.a || (p.a == best.a && p.b < best.b)))))
		if better {
			best, bestProbes, bestN = p, np, t.crossings
		}
	}
	if bestN == 0 {
		return netsim.NoRouter, netsim.NoRouter, false
	}
	return best.a, best.b, true
}
