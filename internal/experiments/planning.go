package experiments

import (
	"net/netip"
	"sort"
	"time"

	"pinpoint/internal/ipmap"
	"pinpoint/internal/netsim"
)

// Scenario planning: case-study events must land on links the probes
// actually traverse with enough AS diversity, otherwise the detectors
// (correctly) never evaluate them. These helpers inspect the quiet-epoch
// routing of a built network — the same information an operator has when
// placing Atlas anchors (§8) — and pick the busiest targets.

// dirLink is a directed router pair.
type dirLink struct{ From, To netsim.RouterID }

// linkDiversity returns, for every directed link on a forward path from a
// probe site to a target, the set of probe ASes traversing it.
func linkDiversity(n *netsim.Net, sites []netsim.RouterID, targets []netip.Addr, at time.Time) map[dirLink]map[ipmap.ASN]struct{} {
	out := make(map[dirLink]map[ipmap.ASN]struct{})
	for _, site := range sites {
		asn := n.Router(site).AS
		for _, dst := range targets {
			path, ok := n.ForwardPath(site, dst, at, 0)
			if !ok {
				continue
			}
			for i := 0; i+1 < len(path); i++ {
				l := dirLink{From: path[i], To: path[i+1]}
				set := out[l]
				if set == nil {
					set = make(map[ipmap.ASN]struct{})
					out[l] = set
				}
				set[asn] = struct{}{}
			}
		}
	}
	return out
}

// bestIntraASLink returns the intra-AS directed link of `as` with the most
// distinct traversing probe ASes, and that count.
func bestIntraASLink(n *netsim.Net, as netsim.ASInfo, div map[dirLink]map[ipmap.ASN]struct{}) (dirLink, int) {
	inAS := make(map[netsim.RouterID]bool, len(as.Routers))
	for _, r := range as.Routers {
		inAS[r] = true
	}
	var best dirLink
	bestN := 0
	// Deterministic scan order.
	links := make([]dirLink, 0, len(div))
	for l := range div {
		links = append(links, l)
	}
	sort.Slice(links, func(i, j int) bool {
		if links[i].From != links[j].From {
			return links[i].From < links[j].From
		}
		return links[i].To < links[j].To
	})
	for _, l := range links {
		if !inAS[l.From] || !inAS[l.To] {
			continue
		}
		if n := len(div[l]); n > bestN {
			best, bestN = l, n
		}
	}
	return best, bestN
}

// rankTransitByDiversity orders the transit ASes by the diversity of their
// busiest intra-AS link, descending. Victim selection for the route-leak
// case uses the top entries so the injected congestion is observable.
func rankTransitByDiversity(n *netsim.Net, topo *netsim.Topo, div map[dirLink]map[ipmap.ASN]struct{}) []int {
	type scored struct {
		idx int
		n   int
	}
	var s []scored
	for i, as := range topo.Transit {
		_, cnt := bestIntraASLink(n, as, div)
		s = append(s, scored{idx: i, n: cnt})
	}
	sort.SliceStable(s, func(i, j int) bool { return s[i].n > s[j].n })
	out := make([]int, len(s))
	for i, sc := range s {
		out[i] = sc.idx
	}
	return out
}

// rootCatchment returns, per instance of the root, the set of probe ASes
// whose anycast routing lands on it, plus the most AS-diverse upstream link
// (X → site) feeding each instance's site.
func rootCatchment(n *netsim.Net, root netsim.RootInfo, sites []netsim.RouterID, at time.Time) (catch map[netsim.RouterID]map[ipmap.ASN]struct{}, upstream map[netsim.RouterID]dirLink) {
	catch = make(map[netsim.RouterID]map[ipmap.ASN]struct{})
	upDiv := make(map[netsim.RouterID]map[dirLink]map[ipmap.ASN]struct{})
	for _, site := range sites {
		asn := n.Router(site).AS
		path, ok := n.ForwardPath(site, root.Addr, at, 0)
		if !ok || len(path) < 2 {
			continue
		}
		inst := path[len(path)-1]
		set := catch[inst]
		if set == nil {
			set = make(map[ipmap.ASN]struct{})
			catch[inst] = set
		}
		set[asn] = struct{}{}
		if len(path) >= 3 {
			l := dirLink{From: path[len(path)-3], To: path[len(path)-2]}
			m := upDiv[inst]
			if m == nil {
				m = make(map[dirLink]map[ipmap.ASN]struct{})
				upDiv[inst] = m
			}
			s := m[l]
			if s == nil {
				s = make(map[ipmap.ASN]struct{})
				m[l] = s
			}
			s[asn] = struct{}{}
		}
	}
	upstream = make(map[netsim.RouterID]dirLink)
	for inst, m := range upDiv {
		var best dirLink
		bestN := 0
		links := make([]dirLink, 0, len(m))
		for l := range m {
			links = append(links, l)
		}
		sort.Slice(links, func(i, j int) bool {
			if links[i].From != links[j].From {
				return links[i].From < links[j].From
			}
			return links[i].To < links[j].To
		})
		for _, l := range links {
			if n := len(m[l]); n > bestN {
				best, bestN = l, n
			}
		}
		upstream[inst] = best
	}
	return catch, upstream
}

// ingressLinks returns the external→internal directed links of an AS: for
// every AS router, each link from a neighbor in a different AS. These are
// the peering/transit links that congest when leaked routes drag traffic in.
func ingressLinks(n *netsim.Net, as netsim.ASInfo) []dirLink {
	inAS := make(map[netsim.RouterID]bool, len(as.Routers))
	for _, r := range as.Routers {
		inAS[r] = true
	}
	seen := map[dirLink]bool{}
	var out []dirLink
	for _, r := range as.Routers {
		for _, nb := range n.Neighbors(r) {
			if inAS[nb] || n.Router(nb).AS == as.ASN {
				continue
			}
			l := dirLink{From: nb, To: r}
			if !seen[l] {
				seen[l] = true
				out = append(out, l)
			}
		}
	}
	return out
}

// ddosPlan assigns the Fig 7 roles to root instances by catchment size:
// the best-served instance is hit by both attacks, the next by the first
// attack only, the third is spared; everything else is hit by both.
type ddosPlan struct {
	both, firstOnly, spared int // indices into root.Instances
	upstream                dirLink
	haveUpstream            bool
}

func planDDoS(n *netsim.Net, topo *netsim.Topo, at time.Time) ddosPlan {
	root := topo.Roots[0]
	catch, upstream := rootCatchment(n, root, topo.ProbeSites(), at)
	type scored struct {
		idx int
		n   int
	}
	var s []scored
	for i, inst := range root.Instances {
		s = append(s, scored{idx: i, n: len(catch[inst])})
	}
	sort.SliceStable(s, func(i, j int) bool { return s[i].n > s[j].n })
	plan := ddosPlan{both: s[0].idx, firstOnly: s[0].idx, spared: s[0].idx}
	if len(s) > 1 {
		plan.firstOnly = s[1].idx
	}
	if len(s) > 2 {
		plan.spared = s[2].idx
	}
	if up, ok := upstream[root.Instances[plan.both]]; ok && up.From != up.To {
		plan.upstream = up
		plan.haveUpstream = true
	}
	return plan
}
