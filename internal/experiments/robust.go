package experiments

import (
	"fmt"
	"time"

	"pinpoint/internal/core"
	"pinpoint/internal/delay"
	"pinpoint/internal/events"
	"pinpoint/internal/forwarding"
	"pinpoint/internal/netsim"
	"pinpoint/internal/trace"
)

// Robustness harness: run every case under every measurement-artifact mix,
// score detected events against the ground-truth EventWindows, and measure
// what the corroboration pass buys — the precision/recall evidence behind
// BENCH_robust.json. One platform run per (case, mix) feeds two event
// scorings (corroboration off and on) by replaying the retained alarms, so
// the ablation compares identical inputs.

// ArtifactMix is one named artifact configuration of the robustness grid.
type ArtifactMix struct {
	Name string           `json:"name"`
	Art  netsim.Artifacts `json:"artifacts"`
}

// ArtifactMixes returns the standard grid: the artifact-free baseline, two
// single-family mixes, and the everything-at-once storm.
func ArtifactMixes() []ArtifactMix {
	return []ArtifactMix{
		{Name: "clean", Art: netsim.Artifacts{}},
		{Name: "multipath", Art: netsim.Artifacts{MultipathProb: 0.2, ReorderProb: 0.02}},
		{Name: "lying", Art: netsim.Artifacts{LyingHopProb: 0.04, AliasProb: 0.25}},
		{Name: "storm", Art: netsim.Artifacts{
			MultipathProb: 0.25, RouteFlipProb: 0.1, ReorderProb: 0.03,
			LyingHopProb: 0.04, AliasProb: 0.3,
		}},
	}
}

// RobustScore is an event-level precision/recall scoring of one run against
// the case's ground-truth windows.
type RobustScore struct {
	Events     int     `json:"events"`
	TruePos    int     `json:"true_pos"`    // event bins inside a window (± slack)
	FalsePos   int     `json:"false_pos"`   // event bins outside every window
	Windows    int     `json:"windows"`     // ground-truth window count
	WindowsHit int     `json:"windows_hit"` // windows with ≥ 1 event inside
	Precision  float64 `json:"precision"`   // TruePos / Events (1 when no events)
	Recall     float64 `json:"recall"`      // WindowsHit / Windows (1 when no windows)
}

// RobustCell is one (case, mix) measurement.
type RobustCell struct {
	Case        string      `json:"case"`
	Mix         string      `json:"mix"`
	Results     int         `json:"results"`
	DelayAlarms int         `json:"delay_alarms"`
	FwdAlarms   int         `json:"fwd_alarms"`
	Base        RobustScore `json:"base"`         // corroboration off
	Corroborate RobustScore `json:"corroborated"` // corroboration on (K = CorroborateK)
}

// RobustSummary aggregates the ablation across the grid: true positives on
// clean runs must survive corroboration; false positives on artifact-laden
// runs should drop.
type RobustSummary struct {
	CleanTruePosBase    int `json:"clean_true_pos_base"`
	CleanTruePosCorr    int `json:"clean_true_pos_corroborated"`
	CleanWindowsHitBase int `json:"clean_windows_hit_base"`
	CleanWindowsHitCorr int `json:"clean_windows_hit_corroborated"`
	ArtFalsePosBase     int `json:"artifact_false_pos_base"`
	ArtFalsePosCorr     int `json:"artifact_false_pos_corroborated"`
}

// RobustReport is the BENCH_robust.json payload.
type RobustReport struct {
	Scale        string        `json:"scale"`
	Threshold    float64       `json:"threshold"`
	WindowHours  float64       `json:"window_hours"`
	CorroborateK int           `json:"corroborate_k"`
	SlackBins    int           `json:"slack_bins"`
	Workers      int           `json:"workers"`
	WarmupHours  float64       `json:"warmup_hours"`
	Mixes        []ArtifactMix `json:"mixes"`
	Cells        []RobustCell  `json:"cells"`
	Summary      RobustSummary `json:"summary"`
}

// RobustConfig parameterizes RunRobustness. The zero value takes the
// defaults noted per field.
type RobustConfig struct {
	Cases        []string      // default: all of CaseNames
	Mixes        []ArtifactMix // default: ArtifactMixes()
	Workers      int           // platform + analyzer workers; default 2
	CorroborateK int           // corroboration K for the ablation; default 2
	SlackBins    int           // event-to-window matching slack; default 1
}

func (c RobustConfig) withDefaults() RobustConfig {
	if len(c.Cases) == 0 {
		c.Cases = CaseNames
	}
	if len(c.Mixes) == 0 {
		c.Mixes = ArtifactMixes()
	}
	if c.Workers == 0 {
		c.Workers = 2
	}
	if c.CorroborateK == 0 {
		c.CorroborateK = 2
	}
	if c.SlackBins == 0 {
		c.SlackBins = 1
	}
	return c
}

// robustEventsConfig mirrors the golden-test detection parameters: at Quick
// scale the shortened history needs the 24 h magnitude window and the lower
// threshold; Full scale runs the paper's defaults.
func robustEventsConfig(scale Scale) events.Config {
	if scale == Quick {
		return events.Config{Threshold: 3, Window: 24 * time.Hour}
	}
	return events.Config{}
}

// RunRobustness runs the full grid and assembles the report.
func RunRobustness(scale Scale, cfg RobustConfig) (*RobustReport, error) {
	cfg = cfg.withDefaults()
	evCfg := robustEventsConfig(scale)
	rep := &RobustReport{
		Scale:        scale.String(),
		Threshold:    evCfg.Threshold,
		WindowHours:  evCfg.Window.Hours(),
		CorroborateK: cfg.CorroborateK,
		SlackBins:    cfg.SlackBins,
		Workers:      cfg.Workers,
		WarmupHours:  24,
		Mixes:        cfg.Mixes,
	}
	if rep.Threshold == 0 {
		rep.Threshold = 10 // events.Config default
	}
	if rep.WindowHours == 0 {
		rep.WindowHours = 7 * 24
	}
	for _, name := range cfg.Cases {
		for _, mix := range cfg.Mixes {
			cell, err := runRobustCell(scale, name, mix, cfg, evCfg)
			if err != nil {
				return nil, fmt.Errorf("case %s mix %s: %w", name, mix.Name, err)
			}
			rep.Cells = append(rep.Cells, *cell)
			if mix.Name == "clean" || !mix.Art.Enabled() {
				rep.Summary.CleanTruePosBase += cell.Base.TruePos
				rep.Summary.CleanTruePosCorr += cell.Corroborate.TruePos
				rep.Summary.CleanWindowsHitBase += cell.Base.WindowsHit
				rep.Summary.CleanWindowsHitCorr += cell.Corroborate.WindowsHit
			} else {
				rep.Summary.ArtFalsePosBase += cell.Base.FalsePos
				rep.Summary.ArtFalsePosCorr += cell.Corroborate.FalsePos
			}
		}
	}
	return rep, nil
}

// runRobustCell runs one (case, mix): generate + analyze once with retained
// alarms, then score events with corroboration off and on.
func runRobustCell(scale Scale, name string, mix ArtifactMix, cfg RobustConfig, evCfg events.Config) (*RobustCell, error) {
	c, err := NewCaseArtifacts(name, scale, mix.Art)
	if err != nil {
		return nil, err
	}
	c.Platform.SetWorkers(cfg.Workers)
	coreCfg := core.Config{RetainAlarms: true, Workers: cfg.Workers, Events: evCfg}
	a := core.New(coreCfg, c.Platform.ProbeASN, c.Net.Prefixes())
	results := 0
	if err := c.Platform.Run(c.Start, c.End, func(r trace.Result) error {
		results++
		a.Observe(r)
		return nil
	}); err != nil {
		return nil, err
	}
	a.Flush()
	dal, fal := a.DelayAlarms(), a.ForwardingAlarms()

	cell := &RobustCell{
		Case: name, Mix: mix.Name,
		Results: results, DelayAlarms: len(dal), FwdAlarms: len(fal),
	}
	base := evCfg
	corr := evCfg
	corr.Corroborate = cfg.CorroborateK
	cell.Base = scoreEvents(c, dal, fal, base, cfg.SlackBins)
	cell.Corroborate = scoreEvents(c, dal, fal, corr, cfg.SlackBins)
	return cell, nil
}

// scoreEvents replays retained alarms into a fresh aggregator under the
// given config, detects events through the incremental CloseBins path (the
// path corroboration must ride in production), and scores the event bins
// against the case's ground-truth windows.
func scoreEvents(c *Case, dal []delay.Alarm, fal []forwarding.Alarm, evCfg events.Config, slackBins int) RobustScore {
	agg := events.NewAggregator(evCfg, c.Net.Prefixes())
	agg.ObserveBin(c.Start)
	for _, al := range dal {
		agg.AddDelayAlarm(al)
	}
	for _, al := range fal {
		agg.AddForwardingAlarm(al)
	}
	binSize := agg.Config().BinSize
	agg.CloseBins(c.End.Add(binSize))
	// Skip the first day: magnitudes over a nearly-empty window are noise in
	// every configuration, and no case schedules its disruption that early.
	evs := agg.Events(c.Start.Add(24*time.Hour), c.End.Add(binSize))
	return scoreAgainstWindows(evs, c.EventWindows, binSize, slackBins)
}

// scoreAgainstWindows computes the precision/recall cell from detected
// events and ground-truth windows, with slackBins bins of slack around each
// window (detector output lands on bin edges; a disruption ending mid-bin
// legitimately scores in the closing bin).
func scoreAgainstWindows(evs []events.Event, windows [][2]time.Time, binSize time.Duration, slackBins int) RobustScore {
	slack := time.Duration(slackBins) * binSize
	s := RobustScore{Events: len(evs), Windows: len(windows)}
	hit := make([]bool, len(windows))
	for _, ev := range evs {
		in := false
		for wi, w := range windows {
			if !ev.Bin.Before(w[0].Add(-slack)) && ev.Bin.Before(w[1].Add(slack)) {
				in = true
				hit[wi] = true
			}
		}
		if in {
			s.TruePos++
		} else {
			s.FalsePos++
		}
	}
	for _, h := range hit {
		if h {
			s.WindowsHit++
		}
	}
	s.Precision = 1
	if s.Events > 0 {
		s.Precision = float64(s.TruePos) / float64(s.Events)
	}
	s.Recall = 1
	if s.Windows > 0 {
		s.Recall = float64(s.WindowsHit) / float64(s.Windows)
	}
	return s
}
