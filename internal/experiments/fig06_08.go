package experiments

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"pinpoint/internal/atlas"
	"pinpoint/internal/core"
	"pinpoint/internal/delay"
	"pinpoint/internal/netsim"
	"pinpoint/internal/report"
	"pinpoint/internal/trace"
)

// ddosData is the shared outcome of the §7.1 DDoS run, reused by F6–F8.
type ddosData struct {
	topo     *netsim.Topo
	analyzer *core.Analyzer
	tracked  map[trace.LinkKey][]delay.Observation
	rootASN  string
	start    time.Time
	// tracked link roles
	linkBoth, linkFirstOnly, linkSpared, linkUpstream trace.LinkKey
}

var ddosMemo = struct {
	sync.Mutex
	runs map[Scale]*ddosData
}{runs: map[Scale]*ddosData{}}

// buildDDoSCase generates the topology, plans the attack against quiet
// routing, and builds the scenario-laden network (with the given artifact
// mix baked in). Shared with cmd tools and examples via NewCase.
func buildDDoSCase(scale Scale, art netsim.Artifacts) (*netsim.Topo, *netsim.Net, ddosPlan, error) {
	topo, err := netsim.Generate(caseTopoConfig(scale, 20151130))
	if err != nil {
		return nil, nil, ddosPlan{}, err
	}
	quiet, err := topo.Build(nil)
	if err != nil {
		return nil, nil, ddosPlan{}, err
	}
	plan := planDDoS(quiet, topo, ddosHistoryStart)
	topo.Builder.SetArtifacts(art)
	n, err := topo.Build(netsim.NewScenario(ddosScenario(topo, plan)...))
	if err != nil {
		return nil, nil, ddosPlan{}, err
	}
	return topo, n, plan, nil
}

func runDDoS(scale Scale) (*ddosData, error) {
	ddosMemo.Lock()
	defer ddosMemo.Unlock()
	if d, ok := ddosMemo.runs[scale]; ok {
		return d, nil
	}

	topo, n, plan, err := buildDDoSCase(scale, netsim.Artifacts{})
	if err != nil {
		return nil, err
	}
	root := topo.Roots[0]

	d := &ddosData{
		topo:    topo,
		tracked: make(map[trace.LinkKey][]delay.Observation),
		start:   quickHistory(scale, ddosHistoryStart, ddosAttack1Start),
	}
	link := func(i int) trace.LinkKey {
		return trace.LinkKey{Near: n.Router(root.Sites[i]).Addr, Far: root.Addr}
	}
	d.linkBoth = link(plan.both)
	d.linkFirstOnly = link(plan.firstOnly)
	d.linkSpared = link(plan.spared)
	if plan.haveUpstream {
		d.linkUpstream = trace.LinkKey{
			Near: n.Router(plan.upstream.From).Addr,
			Far:  n.Router(plan.upstream.To).Addr,
		}
	}
	trackedKeys := map[trace.LinkKey]bool{
		d.linkBoth: true, d.linkFirstOnly: true, d.linkSpared: true, d.linkUpstream: true,
	}

	p := newCasePlatform(n, topo, 20151130)

	cfg := core.Config{RetainAlarms: true}
	cfg.Delay.Observer = func(o delay.Observation) {
		if trackedKeys[o.Link] {
			d.tracked[o.Link] = append(d.tracked[o.Link], o)
		}
	}
	a := core.New(cfg, p.ProbeASN, n.Prefixes())
	if err := p.Run(d.start, ddosEnd, func(r trace.Result) error {
		a.Observe(r)
		return nil
	}); err != nil {
		return nil, err
	}
	a.Flush()
	d.analyzer = a
	d.rootASN = root.ASN.String()
	ddosMemo.runs[scale] = d
	return d, nil
}

// Fig06KrootMagnitude regenerates Fig 6: the delay-change magnitude of the
// root operator's AS over the attack week shows two prominent peaks at
// exactly the two documented attack windows.
func Fig06KrootMagnitude(scale Scale) (*Report, error) {
	d, err := runDDoS(scale)
	if err != nil {
		return nil, err
	}
	root := d.topo.Roots[0]
	mags := d.analyzer.Aggregator().DelayMagnitude(root.ASN, d.start.Add(24*time.Hour), ddosEnd)

	inWin := func(t time.Time) int {
		if !t.Before(ddosAttack1Start) && t.Before(ddosAttack1End) {
			return 1
		}
		if !t.Before(ddosAttack2Start) && t.Before(ddosAttack2End) {
			return 2
		}
		return 0
	}
	var peak1, peak2, peakOut float64
	for _, p := range mags {
		switch inWin(p.T) {
		case 1:
			peak1 = maxf(peak1, p.V)
		case 2:
			peak2 = maxf(peak2, p.V)
		default:
			peakOut = maxf(peakOut, p.V)
		}
	}

	var sb strings.Builder
	sb.WriteString(report.TimeSeries(
		fmt.Sprintf("%s (%s) delay change magnitude", root.ASN, "root operator"), mags, 8))
	sb.WriteString("\n")
	sb.WriteString(report.Table([][]string{
		{"window", "max magnitude"},
		{"attack 1 (Nov 30 07:00–09:30)", fmt.Sprintf("%.1f", peak1)},
		{"attack 2 (Dec 1 05:00–06:00)", fmt.Sprintf("%.1f", peak2)},
		{"outside attacks", fmt.Sprintf("%.1f", peakOut)},
	}))

	r := &Report{
		ID: "F6", Title: "DDoS peaks in root-operator delay magnitude", Scale: scale,
		Text: sb.String(),
		Metrics: map[string]float64{
			"peak_attack1": peak1, "peak_attack2": peak2, "peak_outside": peakOut,
		},
	}
	r.Claims = []Claim{
		{
			Name:     "both attacks produce magnitude peaks",
			Paper:    "two peaks of unprecedented level (Fig 6)",
			Measured: fmt.Sprintf("peak1=%.0f, peak2=%.0f", peak1, peak2),
			Holds:    peak1 > 10 && peak2 > 10,
		},
		{
			Name:     "peaks dominate the quiet baseline",
			Paper:    "peaks dwarf surrounding weeks",
			Measured: fmt.Sprintf("outside max %.1f", peakOut),
			Holds:    peak1 > 3*maxf(peakOut, 1) && peak2 > 3*maxf(peakOut, 1),
		},
	}
	return r, nil
}

// Fig07PerLinkDelays regenerates Fig 7: per-link median differential RTT
// panels around the attacks — instances hit by both attacks, by only the
// first, an unaffected anycast instance, and an upstream link.
func Fig07PerLinkDelays(scale Scale) (*Report, error) {
	d, err := runDDoS(scale)
	if err != nil {
		return nil, err
	}

	type role struct {
		name string
		key  trace.LinkKey
	}
	roles := []role{
		{"hit by both attacks (Fig 7a)", d.linkBoth},
		{"hit by first attack only (Fig 7c)", d.linkFirstOnly},
		{"spared instance (Fig 7b)", d.linkSpared},
		{"upstream of attacked site (Fig 7e)", d.linkUpstream},
	}

	alarmsIn := func(obs []delay.Observation, s, e time.Time) int {
		n := 0
		for _, o := range obs {
			if o.Anomalous && !o.Bin.Before(s) && o.Bin.Before(e) {
				n++
			}
		}
		return n
	}

	var sb strings.Builder
	rows := [][]string{{"link role", "bins", "alarms attack1", "alarms attack2", "alarms quiet"}}
	counts := map[string][3]int{}
	for _, rl := range roles {
		obs := d.tracked[rl.key]
		a1 := alarmsIn(obs, ddosAttack1Start, ddosAttack1End)
		a2 := alarmsIn(obs, ddosAttack2Start, ddosAttack2End)
		tot := 0
		for _, o := range obs {
			if o.Anomalous {
				tot++
			}
		}
		quiet := tot - a1 - a2
		counts[rl.name] = [3]int{a1, a2, quiet}
		rows = append(rows, []string{
			rl.name, fmt.Sprintf("%d", len(obs)),
			fmt.Sprintf("%d", a1), fmt.Sprintf("%d", a2), fmt.Sprintf("%d", quiet),
		})
		var meds []float64
		for _, o := range obs {
			meds = append(meds, o.Observed.Median)
		}
		fmt.Fprintf(&sb, "%-36s %s\n", rl.name, report.Sparkline(meds))
	}
	sb.WriteString("\n")
	sb.WriteString(report.Table(rows))

	both := counts[roles[0].name]
	firstOnly := counts[roles[1].name]
	spared := counts[roles[2].name]
	upstream := counts[roles[3].name]

	r := &Report{
		ID: "F7", Title: "Per-link delays during the DDoS", Scale: scale,
		Text: sb.String(),
		Metrics: map[string]float64{
			"both_a1": float64(both[0]), "both_a2": float64(both[1]),
			"firstonly_a1": float64(firstOnly[0]), "firstonly_a2": float64(firstOnly[1]),
			"spared_alarms": float64(spared[0] + spared[1] + spared[2]),
			"upstream_a1":   float64(upstream[0]),
		},
	}
	r.Claims = []Claim{
		{
			Name:     "instance hit by both attacks alarms in both",
			Paper:    "Kansas City instance reported in both windows (7a)",
			Measured: fmt.Sprintf("attack1 %d, attack2 %d alarms", both[0], both[1]),
			Holds:    both[0] > 0 && both[1] > 0,
		},
		{
			Name:     "some instances hit by one attack only",
			Paper:    "instances impacted by only one attack (7c)",
			Measured: fmt.Sprintf("attack1 %d, attack2 %d alarms", firstOnly[0], firstOnly[1]),
			Holds:    firstOnly[0] > 0 && firstOnly[1] == 0,
		},
		{
			Name:     "anycast spares some instances",
			Paper:    "Poland instance perfectly stable (7b)",
			Measured: fmt.Sprintf("%d alarms in attack windows", spared[0]+spared[1]),
			Holds:    spared[0]+spared[1] == 0,
		},
		{
			Name:     "upstream links are also pinpointed",
			Paper:    "DE-CIX link upstream of Frankfurt instance (7e)",
			Measured: fmt.Sprintf("%d alarms during attack1", upstream[0]),
			Holds:    upstream[0] > 0,
		},
	}
	return r, nil
}

// Fig08AlarmGraph regenerates Fig 8: the connected component of delay
// alarms around the root server address at the attack peak, plus the count
// of root-related alarms over the attack (paper: 129 IPv4 alarms in 3 h).
func Fig08AlarmGraph(scale Scale) (*Report, error) {
	d, err := runDDoS(scale)
	if err != nil {
		return nil, err
	}
	root := d.topo.Roots[0]

	g := d.analyzer.Graph(ddosAttack1Start, ddosAttack1End)
	nodes := g.ComponentNodes(root.Addr)
	edges := g.Component(root.Addr)

	rootAlarms := 0
	for _, al := range d.analyzer.DelayAlarms() {
		if al.Bin.Before(ddosAttack1Start) || !al.Bin.Before(ddosAttack1End) {
			continue
		}
		for _, rt := range d.topo.Roots {
			if al.Link.Near == rt.Addr || al.Link.Far == rt.Addr {
				rootAlarms++
				break
			}
		}
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "Alarm graph over attack 1 (%s .. %s):\n",
		ddosAttack1Start.Format("Jan 2 15:04"), ddosAttack1End.Format("15:04"))
	sb.WriteString(report.Table([][]string{
		{"quantity", "value", "paper"},
		{"component nodes around root", fmt.Sprintf("%d", len(nodes)), "dozens (Fig 8)"},
		{"component edges (alarms)", fmt.Sprintf("%d", len(edges)), "—"},
		{"total components", fmt.Sprintf("%d", g.Components()), "several (one per root family)"},
		{"alarms involving root addresses", fmt.Sprintf("%d", rootAlarms), "129 IPv4 (3 h, full Atlas scale)"},
	}))
	sb.WriteString("\n(graphviz output: cmd/experiments -dot writes the component as DOT)\n")

	r := &Report{
		ID: "F8", Title: "Alarm graph around the root server", Scale: scale,
		Text: sb.String(),
		Metrics: map[string]float64{
			"component_nodes": float64(len(nodes)),
			"component_edges": float64(len(edges)),
			"root_alarms":     float64(rootAlarms),
		},
	}
	r.Claims = []Claim{
		{
			Name:     "alarms form a connected component around the root",
			Paper:    "connected component of K-root alarms (Fig 8)",
			Measured: fmt.Sprintf("%d nodes, %d edges", len(nodes), len(edges)),
			Holds:    len(nodes) >= 3 && len(edges) >= 2,
		},
		{
			Name:     "multiple root-related alarms during the attack",
			Paper:    "129 root-server alarms in 3 h",
			Measured: fmt.Sprintf("%d (scaled platform)", rootAlarms),
			Holds:    rootAlarms >= 3,
		},
	}
	return r, nil
}

// newCasePlatform attaches probes to all stub sites and registers builtin
// measurements toward every root plus anchoring measurements toward every
// anchor (10 probes per anchor, mirroring the paper's probe/anchor ratio).
func newCasePlatform(n *netsim.Net, topo *netsim.Topo, seed uint64) *atlas.Platform {
	p := atlas.NewPlatform(n, seed, netsim.TracerouteOpts{})
	probes := p.AddProbes(topo.ProbeSites())
	for _, rt := range topo.Roots {
		p.AddBuiltin(rt.Addr)
	}
	for i, an := range topo.Anchors {
		var ids []int
		for j := 0; j < 10 && j < len(probes); j++ {
			ids = append(ids, probes[(i*7+j)%len(probes)].ID)
		}
		p.AddAnchoring(an.Addr, ids)
	}
	return p
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
