package experiments

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pinpoint/internal/core"
	"pinpoint/internal/delay"
	"pinpoint/internal/events"
	"pinpoint/internal/forwarding"
)

var update = flag.Bool("update", false, "rewrite the golden case snapshots under testdata/")

// goldenSnapshot is the serialized end-to-end output of one fixed-seed case
// run: every delay alarm, every forwarding alarm, and the detected events.
// All fields marshal deterministically (no maps with unordered keys), so
// the files diff cleanly across runs.
type goldenSnapshot struct {
	Case             string             `json:"case"`
	Scale            string             `json:"scale"`
	Results          int                `json:"results"`
	DelayAlarms      []delay.Alarm      `json:"delay_alarms"`
	ForwardingAlarms []forwarding.Alarm `json:"forwarding_alarms"`
	Events           []events.Event     `json:"events"`
}

// TestGoldenCaseOutputs is the end-to-end regression net: a fixed-seed
// quick-scale run of each scenario must reproduce the checked-in snapshot
// bit for bit — any change to the detectors, the engine, the generator or
// the simulator that shifts a single alarm fails here with a line diff.
// Regenerate intentionally with:
//
//	go test ./internal/experiments -run TestGolden -update
func TestGoldenCaseOutputs(t *testing.T) {
	// ddos exercises the delay path (and events); ixp the forwarding path.
	for _, name := range []string{"ddos", "ixp"} {
		t.Run(name, func(t *testing.T) {
			c, err := NewCase(name, Quick)
			if err != nil {
				t.Fatal(err)
			}
			c.Platform.SetWorkers(2)
			cfg := core.Config{RetainAlarms: true, Workers: 2}
			cfg.Events.Threshold = 3
			cfg.Events.Window = 24 * time.Hour
			a := core.New(cfg, c.Platform.ProbeASN, c.Net.Prefixes())
			defer a.Close()
			if err := a.RunPlatform(context.Background(), c.Platform, c.Start, c.End); err != nil {
				t.Fatal(err)
			}

			snap := goldenSnapshot{
				Case:             c.Name,
				Scale:            "quick",
				Results:          a.Results(),
				DelayAlarms:      a.DelayAlarms(),
				ForwardingAlarms: a.ForwardingAlarms(),
				Events:           a.Aggregator().Events(c.Start, c.End.Add(time.Hour)),
			}
			got, err := json.MarshalIndent(snap, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, '\n')

			path := filepath.Join("testdata", fmt.Sprintf("golden_%s.json", name))
			if *update {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("wrote %s (%d delay alarms, %d forwarding alarms, %d events)",
					path, len(snap.DelayAlarms), len(snap.ForwardingAlarms), len(snap.Events))
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run `go test ./internal/experiments -run TestGolden -update`): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("output diverged from %s:\n%s\nrun with -update if the change is intended", path, firstDiff(want, got))
			}
		})
	}
}

// firstDiff renders the first divergent line with context — a readable
// failure instead of two multi-thousand-line JSON blobs.
func firstDiff(want, got []byte) string {
	w := strings.Split(string(want), "\n")
	g := strings.Split(string(got), "\n")
	n := len(w)
	if len(g) > n {
		n = len(g)
	}
	line := func(s []string, i int) (string, bool) {
		if i < len(s) {
			return s[i], true
		}
		return "", false
	}
	for i := 0; i < n; i++ {
		wl, wok := line(w, i)
		gl, gok := line(g, i)
		if wok == gok && wl == gl {
			continue
		}
		var b strings.Builder
		fmt.Fprintf(&b, "first difference at line %d (golden %d lines, got %d lines)\n", i+1, len(w), len(g))
		for j := i - 2; j <= i+2; j++ {
			if j < 0 {
				continue
			}
			if l, ok := line(w, j); ok {
				marker := " "
				if j == i {
					marker = "-"
				}
				fmt.Fprintf(&b, "%s golden %5d | %s\n", marker, j+1, l)
			}
		}
		if l, ok := line(g, i); ok {
			fmt.Fprintf(&b, "+ got    %5d | %s\n", i+1, l)
		}
		return b.String()
	}
	return "files differ only in length"
}
