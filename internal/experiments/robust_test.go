package experiments

import (
	"encoding/json"
	"reflect"
	"testing"

	"pinpoint/internal/core"
	"pinpoint/internal/netsim"
	"pinpoint/internal/trace"
)

// stormMix is the everything-at-once artifact config used by the
// determinism tests: every injection family fires.
var stormMix = netsim.Artifacts{
	MultipathProb: 0.25, RouteFlipProb: 0.1, ReorderProb: 0.03,
	LyingHopProb: 0.04, AliasProb: 0.3,
}

// TestArtifactRunWorkerEquivalence: an artifact-heavy campaign must emit a
// bit-identical result stream for any worker count — artifact coin flips ride
// the per-task PRNG, never worker-local state.
func TestArtifactRunWorkerEquivalence(t *testing.T) {
	baseline := func(workers int) []trace.Result {
		c, err := NewCaseArtifacts("quiet", Quick, stormMix)
		if err != nil {
			t.Fatal(err)
		}
		c.Platform.SetWorkers(workers)
		rs, err := c.Platform.Collect(c.Start, c.End)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return rs
	}
	want := baseline(1)
	if len(want) == 0 {
		t.Fatal("empty sequential baseline")
	}
	for _, workers := range []int{2, 4, 8} {
		got := baseline(workers)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("workers=%d: artifact-laden stream differs from sequential (%d vs %d results)",
				workers, len(got), len(want))
		}
	}
}

// TestQuietCaseFalsePositiveFloor pins the detector's noise floor: the quiet
// baseline with artifacts off must produce zero alarms and zero events, and
// even under every artifact mix the event layer must stay silent — artifacts
// alone may raise alarms, but no mix fabricates a major event on an
// undisturbed network.
func TestQuietCaseFalsePositiveFloor(t *testing.T) {
	evCfg := robustEventsConfig(Quick)
	for _, mix := range ArtifactMixes() {
		mix := mix
		t.Run(mix.Name, func(t *testing.T) {
			c, err := NewCaseArtifacts("quiet", Quick, mix.Art)
			if err != nil {
				t.Fatal(err)
			}
			c.Platform.SetWorkers(2)
			a := core.New(core.Config{RetainAlarms: true, Workers: 2, Events: evCfg},
				c.Platform.ProbeASN, c.Net.Prefixes())
			if err := c.Platform.Run(c.Start, c.End, func(r trace.Result) error {
				a.Observe(r)
				return nil
			}); err != nil {
				t.Fatal(err)
			}
			a.Flush()
			dal, fal := a.DelayAlarms(), a.ForwardingAlarms()
			if !mix.Art.Enabled() {
				if len(dal) != 0 || len(fal) != 0 {
					t.Errorf("clean quiet run raised %d delay + %d forwarding alarms, want 0 + 0",
						len(dal), len(fal))
				}
			}
			score := scoreEvents(c, dal, fal, evCfg, 1)
			if score.Events != 0 {
				t.Errorf("mix %s: quiet run produced %d events, want 0 (%d delay alarms, %d fwd alarms)",
					mix.Name, score.Events, len(dal), len(fal))
			}
		})
	}
}

// TestRunRobustnessSmoke runs a two-cell grid end to end and checks the
// report's structure: cell accounting, score invariants, summary wiring, and
// that the report serializes (it is the BENCH_robust.json payload).
func TestRunRobustnessSmoke(t *testing.T) {
	rep, err := RunRobustness(Quick, RobustConfig{
		Cases: []string{"quiet"},
		Mixes: []ArtifactMix{
			{Name: "clean"},
			{Name: "lying", Art: netsim.Artifacts{LyingHopProb: 0.04, AliasProb: 0.25}},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Cells) != 2 {
		t.Fatalf("got %d cells, want 2", len(rep.Cells))
	}
	for _, cell := range rep.Cells {
		if cell.Results == 0 {
			t.Errorf("cell %s/%s: zero results", cell.Case, cell.Mix)
		}
		for _, s := range []RobustScore{cell.Base, cell.Corroborate} {
			if s.TruePos+s.FalsePos != s.Events {
				t.Errorf("cell %s/%s: TP %d + FP %d != events %d", cell.Case, cell.Mix, s.TruePos, s.FalsePos, s.Events)
			}
			if s.Precision < 0 || s.Precision > 1 || s.Recall < 0 || s.Recall > 1 {
				t.Errorf("cell %s/%s: precision %v / recall %v outside [0,1]", cell.Case, cell.Mix, s.Precision, s.Recall)
			}
		}
		// Corroboration only ever demotes: it cannot create events.
		if cell.Corroborate.Events > cell.Base.Events {
			t.Errorf("cell %s/%s: corroboration added events (%d > %d)",
				cell.Case, cell.Mix, cell.Corroborate.Events, cell.Base.Events)
		}
	}
	// The quiet case has no ground-truth windows; nothing contributes TPs.
	if rep.Summary.CleanTruePosBase != 0 || rep.Summary.ArtFalsePosBase < rep.Summary.ArtFalsePosCorr {
		t.Errorf("summary inconsistent: %+v", rep.Summary)
	}
	buf, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("report does not serialize: %v", err)
	}
	var back RobustReport
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
}

// BenchmarkRobustCell measures one artifact-laden (case, mix) cell end to
// end — generation, analysis, and the double event scoring. CI's bench-smoke
// runs this as the robustness-harness regression canary.
func BenchmarkRobustCell(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := RunRobustness(Quick, RobustConfig{
			Cases: []string{"quiet"},
			Mixes: []ArtifactMix{{Name: "storm", Art: stormMix}},
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Cells) != 1 {
			b.Fatalf("got %d cells, want 1", len(rep.Cells))
		}
	}
}
