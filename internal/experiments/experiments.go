// Package experiments contains one harness per table and figure of the
// paper's evaluation (see DESIGN.md §4 for the full index). Each harness
// builds its workload, runs the detection pipeline, prints the rows/series
// the paper's artifact shows, and checks the paper's qualitative claims —
// who wins, what peaks where, which shapes hold. Absolute values from the
// paper's 2.8-billion-traceroute dataset are reported side by side with the
// scaled measurement, never asserted as equal.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Scale selects the workload size.
type Scale int

// Scales. Quick keeps harnesses fast enough for the test suite; Full is the
// benchmark/report scale.
const (
	Quick Scale = iota
	Full
)

// String implements fmt.Stringer.
func (s Scale) String() string {
	if s == Quick {
		return "quick"
	}
	return "full"
}

// ParseScale resolves a scale name ("quick" or "full") — the single parser
// behind every CLI's -scale flag.
func ParseScale(name string) (Scale, error) {
	switch name {
	case "quick":
		return Quick, nil
	case "full":
		return Full, nil
	default:
		return Quick, fmt.Errorf("experiments: unknown scale %q (valid: quick, full)", name)
	}
}

// Claim is one paper statement checked against the reproduction.
type Claim struct {
	Name     string
	Paper    string // what the paper reports
	Measured string // what this run measured
	Holds    bool   // does the qualitative claim hold?
}

// Report is the output of one experiment harness.
type Report struct {
	ID      string // DESIGN.md experiment id, e.g. "F2"
	Title   string
	Scale   Scale
	Text    string             // human-readable rendering (tables, plots)
	Metrics map[string]float64 // machine-readable numbers
	Claims  []Claim
}

// Failed returns the claims that did not hold.
func (r *Report) Failed() []Claim {
	var out []Claim
	for _, c := range r.Claims {
		if !c.Holds {
			out = append(out, c)
		}
	}
	return out
}

// Render returns the full textual report including the claim table.
func (r *Report) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "== %s: %s [%s scale] ==\n\n", r.ID, r.Title, r.Scale)
	sb.WriteString(r.Text)
	if len(r.Claims) > 0 {
		sb.WriteString("\nClaims (paper vs measured):\n")
		for _, c := range r.Claims {
			status := "OK "
			if !c.Holds {
				status = "FAIL"
			}
			fmt.Fprintf(&sb, "  [%s] %-38s paper: %-34s measured: %s\n", status, c.Name, c.Paper, c.Measured)
		}
	}
	if len(r.Metrics) > 0 {
		keys := make([]string, 0, len(r.Metrics))
		for k := range r.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		sb.WriteString("\nMetrics:\n")
		for _, k := range keys {
			fmt.Fprintf(&sb, "  %-40s %g\n", k, r.Metrics[k])
		}
	}
	return sb.String()
}

// Experiment is a registered harness.
type Experiment struct {
	ID    string
	Title string
	Run   func(Scale) (*Report, error)
}

// Registry lists every experiment in DESIGN.md order.
var Registry = []Experiment{
	{ID: "F2", Title: "Fig 2: median differential RTT stability", Run: Fig02MedianStability},
	{ID: "F3", Title: "Fig 3: normality of median vs mean differential RTT", Run: Fig03Normality},
	{ID: "F4", Title: "Fig 4 / §5.2.2: forwarding worked example", Run: Fig04ForwardingExample},
	{ID: "F5", Title: "Fig 5a+5b: magnitude distributions over all ASes", Run: Fig05MagnitudeDistributions},
	{ID: "F6", Title: "Fig 6: DDoS peaks in root-operator delay magnitude", Run: Fig06KrootMagnitude},
	{ID: "F7", Title: "Fig 7: per-link delays during the DDoS", Run: Fig07PerLinkDelays},
	{ID: "F8", Title: "Fig 8: alarm graph around the root server", Run: Fig08AlarmGraph},
	{ID: "F9", Title: "Fig 9: route-leak delay magnitude (victim ASes)", Run: Fig09LeakDelayMagnitude},
	{ID: "F10", Title: "Fig 10: route-leak forwarding magnitude", Run: Fig10LeakForwardingMagnitude},
	{ID: "F11", Title: "Fig 11: route-leak per-link complementarity", Run: Fig11LeakLinks},
	{ID: "F12", Title: "Fig 12: route-leak alarm graph (victim component)", Run: Fig12LeakGraph},
	{ID: "F13", Title: "Fig 13: IXP outage forwarding anomaly", Run: Fig13IXPOutage},
	{ID: "T1", Title: "§7 aggregate statistics", Run: Tab01AggregateStats},
	{ID: "T2", Title: "Appendix B: detection limits", Run: Tab02DetectionLimits},
	{ID: "A1", Title: "Ablation: median-CLT vs mean-CLT", Run: Abl01MedianVsMean},
	{ID: "A2", Title: "Ablation: probe-diversity filter", Run: Abl02DiversityFilter},
	{ID: "A3", Title: "Ablation: AS-level responsibility cancellation", Run: Abl03ASCancellation},
}

// ByID returns the registered experiment with the given id.
func ByID(id string) (Experiment, bool) {
	for _, e := range Registry {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
