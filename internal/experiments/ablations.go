package experiments

import (
	"fmt"
	"math"
	"strings"
	"time"

	"pinpoint/internal/atlas"
	"pinpoint/internal/delay"
	"pinpoint/internal/forwarding"
	"pinpoint/internal/ipmap"
	"pinpoint/internal/netsim"
	"pinpoint/internal/report"
	"pinpoint/internal/trace"
)

// Abl01MedianVsMean quantifies the §4.2.2 design choice as a power
// comparison: on a link contaminated with rare huge measurement outliers, a
// genuine +5 ms congestion is injected. The outliers inflate the mean's
// standard-error CI until the event is invisible to it, while the median's
// order-statistics CI ignores them entirely — "an impractical number of
// samples is required for the [original] CLT to hold".
func Abl01MedianVsMean(scale Scale) (*Report, error) {
	nProbes, days := 60, 7
	if scale == Quick {
		nProbes, days = 40, 3
	}
	start := time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
	evStart := start.Add(time.Duration(days)*24*time.Hour - 30*time.Hour)
	evEnd := evStart.Add(3 * time.Hour)
	f, err := buildCogentLink(41, nProbes, 0.001, evStart, evEnd, 5)
	if err != nil {
		return nil, err
	}
	median := delay.NewDetector(delay.Config{Seed: 1}, f.Platform.ProbeASN)
	mean := delay.NewDetector(delay.Config{Seed: 1, UseMeanCI: true}, f.Platform.ProbeASN)

	inWindow := func(als []delay.Alarm) (in, out int) {
		for _, al := range als {
			if !al.Bin.Before(evStart) && al.Bin.Before(evEnd) {
				in++
			} else {
				out++
			}
		}
		return in, out
	}
	var medAll, meanAll []delay.Alarm
	err = f.Platform.Run(start, start.Add(time.Duration(days)*24*time.Hour), func(r trace.Result) error {
		medAll = append(medAll, median.Observe(r)...)
		meanAll = append(meanAll, mean.Observe(r)...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	medAll = append(medAll, median.Flush()...)
	meanAll = append(meanAll, mean.Flush()...)
	medIn, medOut := inWindow(medAll)
	meanIn, meanOut := inWindow(meanAll)

	var sb strings.Builder
	fmt.Fprintf(&sb, "+5 ms congestion injected %s .. %s on an outlier-contaminated link\n\n",
		evStart.Format("Jan 2 15:04"), evEnd.Format("15:04"))
	sb.WriteString(report.Table([][]string{
		{"characterization", "event bins detected", "alarms elsewhere"},
		{"median + Wilson (paper)", fmt.Sprintf("%d of 3", medIn), fmt.Sprintf("%d", medOut)},
		{"mean + standard error (baseline)", fmt.Sprintf("%d of 3", meanIn), fmt.Sprintf("%d", meanOut)},
	}))

	r := &Report{
		ID: "A1", Title: "Median-CLT vs mean-CLT", Scale: scale,
		Text: sb.String(),
		Metrics: map[string]float64{
			"median_alarms": float64(medIn), "median_false": float64(medOut),
			"mean_alarms": float64(meanIn), "mean_false": float64(meanOut),
		},
	}
	r.Claims = []Claim{
		{
			Name:     "median detects what the mean misses",
			Paper:    "outliers make the mean impractical (§4.2.2)",
			Measured: fmt.Sprintf("median %d/3 event bins vs mean %d/3", medIn, meanIn),
			Holds:    medIn >= 2 && meanIn < medIn,
		},
		{
			Name:     "median stays quiet off-event",
			Paper:    "robust estimator, no spurious alarms",
			Measured: fmt.Sprintf("%d off-event alarms", medOut),
			Holds:    medOut <= 1,
		},
	}
	return r, nil
}

// Abl02DiversityFilter quantifies the §4.3 design choice. All probes of one
// AS share a return path; a congestion on that *return* path is
// indistinguishable from a change on the monitored link. With the filter
// the link is simply not evaluated; without it, the detector mis-attributes
// the return-path event to the link.
func Abl02DiversityFilter(scale Scale) (*Report, error) {
	nProbes := 12
	b := netsim.NewBuilder()
	const asn ipmap.ASN = 64500
	b.AS(asn, "core", "10.1.1.0/24")
	r1 := b.Router(asn, "x", netsim.RouterOpts{ResponseProb: 1})
	r2 := b.Router(asn, "y", netsim.RouterOpts{ResponseProb: 1})
	tgt := b.Router(asn, "t", netsim.RouterOpts{ResponseProb: 1})
	agg := b.Router(asn, "return-aggregator", netsim.RouterOpts{ResponseProb: 1})
	b.Link(r1, r2, netsim.LinkOpts{DelayMS: 5, WeightAB: 1, WeightBA: 1})
	b.Link(r2, tgt, netsim.LinkOpts{DelayMS: 1, WeightAB: 1, WeightBA: 1})
	b.Service("10.1.1.200", asn, "", tgt)
	// Every probe sits in the SAME AS and returns from r2/tgt via agg.
	const probeASN ipmap.ASN = 64501
	b.AS(probeASN, "probes", "10.1.2.0/24")
	var sites []netsim.RouterID
	for i := 0; i < nProbes; i++ {
		p := b.Router(probeASN, fmt.Sprintf("p%d", i), netsim.RouterOpts{})
		b.Link(p, r1, netsim.LinkOpts{DelayMS: 10, WeightAB: 1, WeightBA: 1})
		b.Link(p, agg, netsim.LinkOpts{DelayMS: 8, WeightAB: 1e7, WeightBA: 0.5})
		sites = append(sites, p)
	}
	b.Link(agg, r2, netsim.LinkOpts{DelayMS: 2, WeightAB: 1e7, WeightBA: 0.5})

	start := time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
	evStart := start.Add(36 * time.Hour)
	// Congest the shared RETURN path (r2→agg), not the monitored link.
	sc := netsim.NewScenario(netsim.Event{
		Name: "return-congestion", Kind: netsim.EventCongestion,
		From: r2, To: agg, ExtraDelayMS: 60,
		Start: evStart, End: evStart.Add(2 * time.Hour),
	})
	n, err := b.Build(sc)
	if err != nil {
		return nil, err
	}
	p := atlas.NewPlatform(n, 7, netsim.TracerouteOpts{})
	p.AddProbes(sites)
	p.AddBuiltin(n.Services()[0])

	filtered := delay.NewDetector(delay.Config{Seed: 1}, p.ProbeASN)
	unfiltered := delay.NewDetector(delay.Config{Seed: 1, DisableDiversityFilter: true}, p.ProbeASN)
	var fAlarms, uAlarms int
	err = p.Run(start, start.Add(60*time.Hour), func(r trace.Result) error {
		fAlarms += len(filtered.Observe(r))
		uAlarms += len(unfiltered.Observe(r))
		return nil
	})
	if err != nil {
		return nil, err
	}
	fAlarms += len(filtered.Flush())
	uAlarms += len(unfiltered.Flush())

	var sb strings.Builder
	sb.WriteString("Congestion injected on the probes' shared RETURN path only.\n\n")
	sb.WriteString(report.Table([][]string{
		{"detector", "alarms attributed to links"},
		{"with diversity filter (paper)", fmt.Sprintf("%d", fAlarms)},
		{"without filter (baseline)", fmt.Sprintf("%d", uAlarms)},
	}))

	r := &Report{
		ID: "A2", Title: "Probe-diversity filter", Scale: scale,
		Text: sb.String(),
		Metrics: map[string]float64{
			"filtered_alarms":   float64(fAlarms),
			"unfiltered_alarms": float64(uAlarms),
		},
	}
	r.Claims = []Claim{
		{
			Name:     "filter suppresses ambiguous attributions",
			Paper:    "links seen from <3 ASes are discarded (§4.3)",
			Measured: fmt.Sprintf("filtered %d vs unfiltered %d alarms", fAlarms, uAlarms),
			Holds:    fAlarms == 0 && uAlarms > 0,
		},
	}
	return r, nil
}

// Abl03ASCancellation quantifies the §6 aggregation property: an intra-AS
// reroute devalues one next hop and promotes another in the same AS, so
// the AS-level responsibility sum cancels even though per-hop scores are
// large.
func Abl03ASCancellation(scale Scale) (*Report, error) {
	b := netsim.NewBuilder()
	const asn ipmap.ASN = 64600
	b.AS(asn, "core", "10.2.1.0/24")
	in := b.Router(asn, "ingress", netsim.RouterOpts{ResponseProb: 1})
	j := b.Router(asn, "j", netsim.RouterOpts{ResponseProb: 1})
	k := b.Router(asn, "k", netsim.RouterOpts{ResponseProb: 1})
	out := b.Router(asn, "egress", netsim.RouterOpts{ResponseProb: 1})
	b.Link(in, j, netsim.LinkOpts{DelayMS: 2, WeightAB: 1, WeightBA: 1})
	b.Link(in, k, netsim.LinkOpts{DelayMS: 2, WeightAB: 5, WeightBA: 5})
	b.Link(j, out, netsim.LinkOpts{DelayMS: 2, WeightAB: 1, WeightBA: 1})
	b.Link(k, out, netsim.LinkOpts{DelayMS: 2, WeightAB: 1, WeightBA: 1})
	b.Service("10.2.1.200", asn, "", out)
	var sites []netsim.RouterID
	for i := 0; i < 6; i++ {
		pasn := ipmap.ASN(64610 + i)
		b.AS(pasn, fmt.Sprintf("pas%d", i), netsim.ASPrefix(pasn))
		p := b.Router(pasn, fmt.Sprintf("p%d", i), netsim.RouterOpts{})
		b.Link(p, in, netsim.LinkOpts{DelayMS: 5, WeightAB: 1, WeightBA: 1})
		sites = append(sites, p)
	}
	start := time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
	evStart := start.Add(30 * time.Hour)
	sc := netsim.NewScenario(netsim.Event{
		Name: "shift j->k", Kind: netsim.EventReroute,
		From: in, To: j, Both: true, WeightFactor: 50,
		Start: evStart, End: evStart.Add(3 * time.Hour),
	})
	n, err := b.Build(sc)
	if err != nil {
		return nil, err
	}
	p := atlas.NewPlatform(n, 9, netsim.TracerouteOpts{})
	p.AddProbes(sites)
	p.AddBuiltin(n.Services()[0])

	det := forwarding.NewDetector(forwarding.Config{})
	var alarms []forwarding.Alarm
	err = p.Run(start, start.Add(40*time.Hour), func(r trace.Result) error {
		alarms = append(alarms, det.Observe(r)...)
		return nil
	})
	if err != nil {
		return nil, err
	}
	alarms = append(alarms, det.Flush()...)

	var sum, sumAbs float64
	jAddr, kAddr := n.Router(j).Addr, n.Router(k).Addr
	var rj, rk float64
	for _, al := range alarms {
		for _, h := range al.Hops {
			if h.Hop == forwarding.Unresponsive {
				continue
			}
			sum += h.Responsibility
			sumAbs += math.Abs(h.Responsibility)
			switch h.Hop {
			case jAddr:
				rj += h.Responsibility
			case kAddr:
				rk += h.Responsibility
			}
		}
	}

	var sb strings.Builder
	sb.WriteString(report.Table([][]string{
		{"quantity", "value"},
		{"forwarding alarms", fmt.Sprintf("%d", len(alarms))},
		{"Σ rᵢ over AS (net)", fmt.Sprintf("%+.3f", sum)},
		{"Σ |rᵢ| (gross)", fmt.Sprintf("%.3f", sumAbs)},
		{"Σ r for devalued hop j", fmt.Sprintf("%+.3f", rj)},
		{"Σ r for promoted hop k", fmt.Sprintf("%+.3f", rk)},
	}))

	r := &Report{
		ID: "A3", Title: "AS-level responsibility cancellation", Scale: scale,
		Text: sb.String(),
		Metrics: map[string]float64{
			"alarms": float64(len(alarms)), "net": sum, "gross": sumAbs,
		},
	}
	r.Claims = []Claim{
		{
			Name:     "intra-AS reroute detected per hop",
			Paper:    "negative rᵢ for devalued, positive for promoted",
			Measured: fmt.Sprintf("r(j)=%.2f, r(k)=%.2f over %d alarms", rj, rk, len(alarms)),
			Holds:    len(alarms) > 0 && rj < 0 && rk > 0,
		},
		{
			Name:     "AS-level sum cancels",
			Paper:    "negative and positive rᵢ cancel within one AS (§6)",
			Measured: fmt.Sprintf("net %.3f vs gross %.3f", sum, sumAbs),
			Holds:    sumAbs > 0 && math.Abs(sum) < 0.25*sumAbs,
		},
	}
	return r, nil
}
