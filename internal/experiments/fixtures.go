package experiments

import (
	"fmt"
	"math/rand/v2"
	"net/netip"
	"time"

	"pinpoint/internal/atlas"
	"pinpoint/internal/ipmap"
	"pinpoint/internal/netsim"
)

// noEvent is the zero time pair for buildCogentLink calls without an
// injected congestion.
var noEvent = time.Time{}

// cogentLink is the Fig 2 fixture: one backbone link inside a single AS
// (the paper's Cogent ZRH–MUC pair), observed by many probes whose return
// paths from the two link ends deliberately differ — the exact situation
// differential RTT is designed for.
//
// Forward path from every probe: P → R1 → R2 → T(arget); replies from R1
// return directly R1→P, replies from R2 and T return via the R2→P shortcut,
// so ∆(R1,R2) = δ(R1→R2) + d(R2→P) − d(R1→P): the per-probe return-path
// terms ε are fixed per probe and differ across probes.
type cogentLink struct {
	Platform *atlas.Platform
	Net      *netsim.Net
	Link     struct{ Near, Far netip.Addr }
	Target   netip.Addr
	ASN      ipmap.ASN
	R1, R2   netsim.RouterID
}

// buildCogentLink constructs the fixture with nProbes probes, each in its
// own AS. outlierProb adds rare huge measurement spikes (for Fig 3's
// outlier discussion and the A1 ablation). A congestion event of congestMS
// is injected on the monitored link during [congestStart, congestEnd) when
// congestMS > 0.
func buildCogentLink(seed uint64, nProbes int, outlierProb float64, congestStart, congestEnd time.Time, congestMS float64) (*cogentLink, error) {
	rng := rand.New(rand.NewPCG(seed, 0xc09e47))
	b := netsim.NewBuilder()
	const asn ipmap.ASN = 174
	b.AS(asn, "Cogent", "10.0.174.0/24")
	r1 := b.Router(asn, "cogent-zrh", netsim.RouterOpts{ResponseProb: 0.995})
	r2 := b.Router(asn, "cogent-muc", netsim.RouterOpts{ResponseProb: 0.995})
	tgt := b.Router(asn, "cogent-target", netsim.RouterOpts{ResponseProb: 0.995})

	// The monitored link: δ(R1→R2) ≈ 5.3 ms one way, mild jitter, the
	// default heavy-tail spikes.
	b.Link(r1, r2, netsim.LinkOpts{
		DelayMS: 5.3, DelayBAMS: 5.1, JitterMS: 0.12,
		WeightAB: 1, WeightBA: 1,
		SpikeProb: 0.01, SpikeMS: 25,
	})
	b.Link(r2, tgt, netsim.LinkOpts{DelayMS: 0.8, WeightAB: 1, WeightBA: 1})
	b.Service("10.0.174.200", asn, "", tgt)

	// Per-probe return-path delays: a majority cluster of probes with
	// near-identical paths (metro-area probes reaching the backbone the
	// same way) plus a dispersed minority. ε = d2 − d1 is then very dense
	// around its median, which is what gives the across-probe median of ∆
	// the paper's Fig 2 steadiness: the median's sampling noise scales as
	// 1/(2·f(median)·√m), so a sharp density peak pins it down to
	// hundredths of a millisecond despite σ(∆) in the tens.
	gaussDelay := func(sigma float64) float64 {
		d := 20 + sigma*rng.NormFloat64()
		if d < 5 {
			d = 5
		}
		if d > 60 {
			d = 60
		}
		return d
	}
	probeSigma := func(i int) float64 {
		if i%5 < 3 { // 60% tight cluster
			return 0.5
		}
		return 5
	}
	var sites []netsim.RouterID
	for i := 0; i < nProbes; i++ {
		pasn := ipmap.ASN(3000 + i)
		b.AS(pasn, fmt.Sprintf("probe-as-%d", i), netsim.ASPrefix(pasn))
		p := b.Router(pasn, fmt.Sprintf("probe-%d", i), netsim.RouterOpts{})
		// Forward access path P→R1 (return R1→P uses the same link).
		// Queueing spikes are common but moderate; measurement-error
		// outliers (outlierProb) are rare and huge, like the paper's 125
		// over two weeks of one link's samples.
		sigma := probeSigma(i)
		b.Link(p, r1, netsim.LinkOpts{
			DelayMS: gaussDelay(sigma), JitterMS: 0.25,
			WeightAB: 1, WeightBA: 1,
			SpikeProb: 0.008, SpikeMS: 30,
			OutlierProb: outlierProb, OutlierMS: 600,
		})
		// Return shortcut R2→P: never used forward (huge weight), always
		// used for replies from R2 and beyond (tiny weight). Its one-way
		// delay is the per-probe ε term.
		b.Link(p, r2, netsim.LinkOpts{
			DelayMS: gaussDelay(sigma), JitterMS: 0.25,
			WeightAB: 1e7, WeightBA: 0.5,
			SpikeProb: 0.008, SpikeMS: 30,
			OutlierProb: outlierProb, OutlierMS: 600,
		})
		sites = append(sites, p)
	}

	var scenario *netsim.Scenario
	if congestMS > 0 {
		scenario = netsim.NewScenario(netsim.Event{
			Name: "congest-monitored-link", Kind: netsim.EventCongestion,
			From: r1, To: r2, Both: true, ExtraDelayMS: congestMS,
			Start: congestStart, End: congestEnd,
		})
	}
	f := &cogentLink{}
	var err error
	f.Net, err = b.Build(scenario)
	if err != nil {
		return nil, err
	}
	f.R1, f.R2 = r1, r2
	f.Link.Near = f.Net.Router(r1).Addr
	f.Link.Far = f.Net.Router(r2).Addr
	f.Target = netip.MustParseAddr("10.0.174.200")
	f.ASN = asn
	f.Platform = atlas.NewPlatform(f.Net, seed, netsim.TracerouteOpts{})
	f.Platform.AddProbes(sites)
	f.Platform.AddBuiltin(f.Target)
	return f, nil
}

// Timeline anchors shared by the case-study harnesses. Dates mirror the
// paper's events (2015).
var (
	ddosHistoryStart = time.Date(2015, 11, 23, 0, 0, 0, 0, time.UTC)
	ddosAttack1Start = time.Date(2015, 11, 30, 7, 0, 0, 0, time.UTC)
	ddosAttack1End   = time.Date(2015, 11, 30, 9, 30, 0, 0, time.UTC)
	ddosAttack2Start = time.Date(2015, 12, 1, 5, 0, 0, 0, time.UTC)
	ddosAttack2End   = time.Date(2015, 12, 1, 6, 0, 0, 0, time.UTC)
	ddosEnd          = time.Date(2015, 12, 2, 0, 0, 0, 0, time.UTC)

	leakHistoryStart = time.Date(2015, 6, 5, 0, 0, 0, 0, time.UTC)
	leakStart        = time.Date(2015, 6, 12, 9, 0, 0, 0, time.UTC)
	leakEnd          = time.Date(2015, 6, 12, 11, 0, 0, 0, time.UTC)
	leakRunEnd       = time.Date(2015, 6, 13, 0, 0, 0, 0, time.UTC)

	ixpHistoryStart = time.Date(2015, 5, 6, 0, 0, 0, 0, time.UTC)
	ixpOutageStart  = time.Date(2015, 5, 13, 10, 0, 0, 0, time.UTC)
	ixpOutageEnd    = time.Date(2015, 5, 13, 12, 0, 0, 0, time.UTC)
	ixpRunEnd       = time.Date(2015, 5, 14, 0, 0, 0, 0, time.UTC)

	// Adversity-suite cases (see adversity.go).
	anycastHistoryStart = time.Date(2015, 8, 25, 0, 0, 0, 0, time.UTC)
	anycastShiftStart   = time.Date(2015, 9, 1, 10, 0, 0, 0, time.UTC)
	anycastShiftEnd     = time.Date(2015, 9, 1, 13, 0, 0, 0, time.UTC)
	anycastRunEnd       = time.Date(2015, 9, 2, 0, 0, 0, 0, time.UTC)

	ixpfailHistoryStart = time.Date(2015, 7, 8, 0, 0, 0, 0, time.UTC)
	ixpfailStart        = time.Date(2015, 7, 15, 9, 0, 0, 0, time.UTC)
	ixpfailEnd          = time.Date(2015, 7, 15, 12, 0, 0, 0, time.UTC)
	ixpfailRunEnd       = time.Date(2015, 7, 16, 0, 0, 0, 0, time.UTC)

	fiberHistoryStart = time.Date(2015, 10, 13, 0, 0, 0, 0, time.UTC)
	fiberStart        = time.Date(2015, 10, 20, 8, 0, 0, 0, time.UTC)
	fiberEnd          = time.Date(2015, 10, 20, 14, 0, 0, 0, time.UTC)
	fiberRunEnd       = time.Date(2015, 10, 21, 0, 0, 0, 0, time.UTC)
)

// caseTopoConfig returns the shared multi-AS topology configuration for the
// case studies, sized by scale.
func caseTopoConfig(scale Scale, seed uint64) netsim.TopoConfig {
	if scale == Quick {
		return netsim.TopoConfig{
			Seed: seed, Tier1: 2, Transit: 6, Stub: 18,
			RoutersPerTier1: 4, IXPs: 1, IXPMembers: 5,
			Roots: 2, RootInstances: 4, Anchors: 4,
		}
	}
	return netsim.TopoConfig{
		Seed: seed, Tier1: 4, Transit: 12, Stub: 40,
		RoutersPerTier1: 5, IXPs: 2, IXPMembers: 8,
		Roots: 3, RootInstances: 6, Anchors: 8,
	}
}

// quickHistory shortens the pre-event history at Quick scale so the test
// suite stays fast; the magnitude window clamps accordingly.
func quickHistory(scale Scale, fullStart time.Time, event time.Time) time.Time {
	if scale == Quick {
		return event.Add(-48 * time.Hour).Truncate(24 * time.Hour)
	}
	return fullStart
}

// ddosScenario injects the §7.1 attack using the catchment-aware plan:
// the best-served instance (and every unassigned one) is congested during
// both attack windows, the plan's firstOnly instance only during the first
// (with a deliberately mild shift, so its reference is not polluted into
// the second window), and the spared instance is untouched. The upstream
// link of the best-served instance is congested too (Fig 7e), as are two
// instances of root 1 (the "F and I root" neighbors of Fig 8).
func ddosScenario(n *netsim.Topo, plan ddosPlan) []netsim.Event {
	var evs []netsim.Event
	root := n.Roots[0]
	congest := func(name string, from, to netsim.RouterID, ms float64, loss float64, s, e time.Time) {
		evs = append(evs, netsim.Event{
			Name: name, Kind: netsim.EventCongestion,
			From: from, To: to, Both: true,
			ExtraDelayMS: ms, Loss: loss, Start: s, End: e,
		})
	}
	for i := 0; i < len(root.Instances); i++ {
		site, inst := root.Sites[i], root.Instances[i]
		switch i {
		case plan.spared:
			// Untouched instance (the Poland instance of Fig 7b).
		case plan.firstOnly:
			congest(fmt.Sprintf("ddos1-only-i%d", i), site, inst, 20, 0.02, ddosAttack1Start, ddosAttack1End)
		default:
			congest(fmt.Sprintf("ddos1-i%d", i), site, inst, 40+10*float64(i), 0.03, ddosAttack1Start, ddosAttack1End)
			congest(fmt.Sprintf("ddos2-i%d", i), site, inst, 30+8*float64(i), 0.02, ddosAttack2Start, ddosAttack2End)
		}
	}
	if len(n.Roots) > 1 {
		r1 := n.Roots[1]
		for i := 0; i < 2 && i < len(r1.Instances); i++ {
			congest(fmt.Sprintf("ddos1-root1-i%d", i), r1.Sites[i], r1.Instances[i], 35, 0.02, ddosAttack1Start, ddosAttack1End)
		}
	}
	if plan.haveUpstream {
		congest("ddos1-upstream", plan.upstream.From, plan.upstream.To, 25, 0.01, ddosAttack1Start, ddosAttack1End)
	}
	return evs
}
