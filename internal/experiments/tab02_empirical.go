package experiments

import (
	"time"

	"pinpoint/internal/atlas"
	"pinpoint/internal/delay"
	"pinpoint/internal/netsim"
	"pinpoint/internal/trace"
)

// Empirical companion to Appendix B: inject events of varying duration and
// check whether the detector catches them, for the two measurement
// cadences. Eq 11 predicts the builtin cadence (r=2/h, 1-hour bins) misses
// anything much shorter than T/2 + 1/(3rn) ≈ 30 minutes, while anchoring
// (r=4/h) analyzed at its minimum usable bin (15 minutes) detects events
// down to ≈ 9 minutes.

// sweepPoint is one (cadence, bin, duration) detection trial.
type sweepPoint struct {
	Cadence  string
	Interval time.Duration
	Bin      time.Duration
	Duration time.Duration
	Detected bool
}

// runDetectionSweep injects a +15 ms congestion of the given duration,
// aligned to a bin boundary, and reports whether any alarm lands in an
// event bin.
func runDetectionSweep(nProbes int, interval, bin, duration time.Duration) (bool, error) {
	start := time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
	evStart := start.Add(30 * time.Hour) // enough history for the reference
	evEnd := evStart.Add(duration)
	f, err := buildCogentLink(uint64(997+duration/time.Minute), nProbes, 0, evStart, evEnd, 15)
	if err != nil {
		return false, err
	}
	// Rewire the measurement cadence: replace the default builtin (30 min)
	// with the requested interval.
	platform := f.Platform
	if interval != 30*time.Minute {
		platform = newCogentPlatformWithInterval(f, interval)
	}

	det := delay.NewDetector(delay.Config{BinSize: bin, Seed: 1}, platform.ProbeASN)
	detected := false
	end := evEnd.Add(4 * time.Hour)
	err = platform.Run(start, end, func(r trace.Result) error {
		for _, al := range det.Observe(r) {
			if !al.Bin.Add(bin).Before(evStart) && al.Bin.Before(evEnd) {
				detected = true
			}
		}
		return nil
	})
	if err != nil {
		return false, err
	}
	for _, al := range det.Flush() {
		if !al.Bin.Add(bin).Before(evStart) && al.Bin.Before(evEnd) {
			detected = true
		}
	}
	return detected, nil
}

// newCogentPlatformWithInterval rebuilds the fixture's platform with a
// custom measurement interval (the anchoring cadence for the sweep).
func newCogentPlatformWithInterval(f *cogentLink, interval time.Duration) *atlas.Platform {
	p := atlas.NewPlatform(f.Net, 174, netsim.TracerouteOpts{})
	var ids []int
	for _, pr := range f.Platform.Probes() {
		np := p.AddProbe(pr.Router, pr.Anchor)
		ids = append(ids, np.ID)
	}
	p.AddCustom(f.Target, interval, ids)
	return p
}

// detectionSweep runs the full duration × cadence grid.
func detectionSweep(scale Scale) ([]sweepPoint, error) {
	nProbes := 20
	durations := []time.Duration{10 * time.Minute, 15 * time.Minute, 33 * time.Minute, 45 * time.Minute}
	if scale == Quick {
		durations = []time.Duration{15 * time.Minute, 45 * time.Minute}
	}
	grid := []struct {
		name     string
		interval time.Duration
		bin      time.Duration
	}{
		{"builtin", 30 * time.Minute, time.Hour},
		{"anchoring", 15 * time.Minute, 15 * time.Minute},
	}
	var out []sweepPoint
	for _, g := range grid {
		for _, d := range durations {
			ok, err := runDetectionSweep(nProbes, g.interval, g.bin, d)
			if err != nil {
				return nil, err
			}
			out = append(out, sweepPoint{
				Cadence: g.name, Interval: g.interval, Bin: g.bin,
				Duration: d, Detected: ok,
			})
		}
	}
	return out, nil
}
