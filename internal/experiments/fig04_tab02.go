package experiments

import (
	"fmt"
	"math"
	"net/netip"
	"strings"
	"time"

	"pinpoint/internal/forwarding"
	"pinpoint/internal/report"
)

// Fig04ForwardingExample regenerates the §5.2.2 worked example of Fig 4:
// reference pattern F̄ = [A:10, B:100, C:0, Z:5] against observed
// F = [A:10, B:1, C:89, Z:30]. The observed vector is reconstructed from
// the published outputs (ρ = −0.6; responsibilities 0, −0.28, 0.25, 0.07 —
// the paper prints the inputs only as a drawing). This is a pure-arithmetic
// experiment: no workload, identical at both scales.
func Fig04ForwardingExample(scale Scale) (*Report, error) {
	a := netip.MustParseAddr("192.0.2.1")
	b := netip.MustParseAddr("192.0.2.2")
	c := netip.MustParseAddr("192.0.2.3")
	ref := map[netip.Addr]float64{a: 10, b: 100, c: 0, forwarding.Unresponsive: 5}
	cur := map[netip.Addr]float64{a: 10, b: 1, c: 89, forwarding.Unresponsive: 30}

	rho, scores := forwarding.Compare(cur, ref)

	name := map[netip.Addr]string{a: "A", b: "B", c: "C", forwarding.Unresponsive: "Z (unresponsive)"}
	want := map[netip.Addr]float64{a: 0, b: -0.28, c: 0.25, forwarding.Unresponsive: 0.07}

	rows := [][]string{{"next hop", "F̄ (ref)", "F (obs)", "rᵢ", "paper rᵢ"}}
	allClose := true
	for _, s := range scores {
		w := want[s.Hop]
		if math.Abs(s.Responsibility-w) > 0.005 {
			allClose = false
		}
		rows = append(rows, []string{
			name[s.Hop],
			fmt.Sprintf("%.0f", s.RefCount),
			fmt.Sprintf("%.0f", s.Count),
			fmt.Sprintf("%+.3f", s.Responsibility),
			fmt.Sprintf("%+.2f", w),
		})
	}

	var sb strings.Builder
	sb.WriteString(report.Table(rows))
	fmt.Fprintf(&sb, "\nρ(F, F̄) = %.3f (paper: −0.6; τ = −0.25 → anomalous)\n", rho)
	sb.WriteString("Reading: traffic usually forwarded to B now flows through C;\n")
	sb.WriteString("the unresponsive bucket grew (packets lost), exactly §5.2.2's narrative.\n")

	r := &Report{
		ID: "F4", Title: "Forwarding worked example", Scale: scale,
		Text:    sb.String(),
		Metrics: map[string]float64{"rho": rho},
	}
	r.Claims = []Claim{
		{
			Name:     "correlation matches the paper",
			Paper:    "ρ = −0.6",
			Measured: fmt.Sprintf("ρ = %.3f", rho),
			Holds:    math.Abs(rho-(-0.6)) < 0.005,
		},
		{
			Name:     "responsibilities match the paper",
			Paper:    "(0, −0.28, 0.25, 0.07)",
			Measured: "see table",
			Holds:    allClose,
		},
		{
			Name:     "pattern is flagged under τ = −0.25",
			Paper:    "reported as anomalous",
			Measured: fmt.Sprintf("ρ < τ: %v", rho < -0.25),
			Holds:    rho < -0.25,
		},
	}
	return r, nil
}

// Tab02DetectionLimits regenerates Appendix B: the minimum usable time bin
// Tmin = m/(3rn) and the shortest detectable event 1/(3rn) + T/2 (Eq 11),
// for the builtin (r=2/h) and anchoring (r=4/h) measurement cadences, plus
// a sweep over probe counts.
func Tab02DetectionLimits(scale Scale) (*Report, error) {
	// All analytic — identical at both scales.
	minBin := func(r, n float64) float64 { return 9.0 / (3 * r * n) } // m = 9 packets
	shortest := func(r, n, T float64) float64 { return 1/(3*r*n) + T/2 }

	rows := [][]string{{"measurement", "rate r (/h)", "probes n", "Tmin (min)", "shortest event @T=1h (min)"}}
	type cfgRow struct {
		name string
		r, n float64
	}
	cases := []cfgRow{
		{"builtin", 2, 3},
		{"anchoring", 4, 3},
		{"builtin", 2, 10},
		{"anchoring", 4, 10},
		{"builtin", 2, 100},
	}
	for _, c := range cases {
		T := 1.0
		rows = append(rows, []string{
			c.name,
			fmt.Sprintf("%.0f", c.r), fmt.Sprintf("%.0f", c.n),
			fmt.Sprintf("%.1f", 60*minBin(c.r, c.n)),
			fmt.Sprintf("%.1f", 60*shortest(c.r, c.n, T)),
		})
	}
	// The paper's two headline numbers.
	builtinShortest := 60 * shortest(2, 3, 1)              // 33.3 min
	anchoringShortest := 60 * shortest(4, 3, minBin(4, 3)) // ≈ 9.2 min
	anchoringTmin := 60 * minBin(4, 3)                     // 15 min
	builtinTmin := 60 * minBin(2, 3)                       // 30 min
	_ = anchoringTmin

	var sb strings.Builder
	sb.WriteString(report.Table(rows))
	fmt.Fprintf(&sb, "\nWith T = Tmin: builtin Tmin = %.0f min; anchoring shortest detectable event = %.1f min\n",
		builtinTmin, anchoringShortest)

	// Empirical check of Eq 11: inject events of varying duration and see
	// what each cadence catches.
	sweep, err := detectionSweep(scale)
	if err != nil {
		return nil, err
	}
	sweepRows := [][]string{{"cadence", "bin", "event duration", "detected", "Eq 11 predicts"}}
	var builtinMissShort, builtinCatchLong, anchoringCatchShort, consistent = true, false, false, true
	for _, p := range sweep {
		limit := 1.0/(3*4*20) + p.Bin.Hours()/2 // n = 20 probes in the sweep
		if p.Cadence == "builtin" {
			limit = 1.0/(3*2*20) + p.Bin.Hours()/2
		}
		predicted := p.Duration.Hours() >= limit
		if predicted != p.Detected {
			consistent = false
		}
		if p.Cadence == "builtin" {
			if p.Duration <= 15*time.Minute && p.Detected {
				builtinMissShort = false
			}
			if p.Duration >= 40*time.Minute && p.Detected {
				builtinCatchLong = true
			}
		}
		if p.Cadence == "anchoring" && p.Duration <= 15*time.Minute && p.Detected {
			anchoringCatchShort = true
		}
		sweepRows = append(sweepRows, []string{
			p.Cadence, p.Bin.String(), p.Duration.String(),
			fmt.Sprintf("%v", p.Detected), fmt.Sprintf("%v", predicted),
		})
	}
	sb.WriteString("\nEmpirical sweep (+15 ms events, 20 probes):\n")
	sb.WriteString(report.Table(sweepRows))

	r := &Report{
		ID: "T2", Title: "Appendix B detection limits", Scale: scale,
		Text: sb.String(),
		Metrics: map[string]float64{
			"builtin_shortest_min":   builtinShortest,
			"anchoring_shortest_min": anchoringShortest,
			"sweep_points":           float64(len(sweep)),
		},
	}
	r.Claims = []Claim{
		{
			Name:     "builtin shortest detectable event",
			Paper:    "33 minutes (r=2, n=3, T=1h)",
			Measured: fmt.Sprintf("%.1f minutes", builtinShortest),
			Holds:    math.Abs(builtinShortest-33.3) < 0.5,
		},
		{
			Name:     "anchoring shortest detectable event",
			Paper:    "9 minutes (r=4, n=3, T=Tmin)",
			Measured: fmt.Sprintf("%.1f minutes", anchoringShortest),
			Holds:    math.Abs(anchoringShortest-9.2) < 0.5,
		},
		{
			Name:     "empirical sweep matches Eq 11",
			Paper:    "events shorter than the limit are undetectable",
			Measured: fmt.Sprintf("builtin misses ≤15min: %v, catches ≥40min: %v; anchoring catches ≤15min: %v; all grid points match prediction: %v", builtinMissShort, builtinCatchLong, anchoringCatchShort, consistent),
			Holds:    builtinMissShort && builtinCatchLong && anchoringCatchShort,
		},
	}
	return r, nil
}
