package experiments

import (
	"fmt"
	"io"
	"net/netip"
	"os"
)

// WriteCaseGraphs renders the Fig 8 and Fig 12 alarm-graph components as
// Graphviz DOT files through the provided file factory ("fig08_ddos.dot"
// and "fig12_leak.dot"). The case runs are memoized, so calling this after
// the corresponding experiments reuses their results.
func WriteCaseGraphs(scale Scale, create func(name string) (*os.File, error)) error {
	d, err := runDDoS(scale)
	if err != nil {
		return err
	}
	root := d.topo.Roots[0]
	anycast := map[netip.Addr]bool{}
	for _, rt := range d.topo.Roots {
		anycast[rt.Addr] = true
	}
	if err := writeDOT(create, "fig08_ddos.dot", func(w io.Writer) error {
		return d.analyzer.Graph(ddosAttack1Start, ddosAttack1End).WriteDOT(w, root.Addr, anycast)
	}); err != nil {
		return err
	}

	l, err := runLeak(scale)
	if err != nil {
		return err
	}
	return writeDOT(create, "fig12_leak.dot", func(w io.Writer) error {
		return l.analyzer.Graph(leakStart, leakEnd).WriteDOT(w, l.linkA.Near, nil)
	})
}

func writeDOT(create func(string) (*os.File, error), name string, render func(io.Writer) error) error {
	f, err := create(name)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return fmt.Errorf("experiments: rendering %s: %w", name, err)
	}
	return f.Close()
}
