package experiments

import (
	"fmt"
	"strings"
	"time"

	"pinpoint/internal/delay"
	"pinpoint/internal/report"
	"pinpoint/internal/stats"
	"pinpoint/internal/timeseries"
	"pinpoint/internal/trace"
)

// cogentRun holds everything Fig 2 and Fig 3 extract from the fixture run.
type cogentRun struct {
	rawDiffs   []float64           // every ∆ sample of the monitored link
	byBin      []delay.Observation // per-bin medians and CIs
	binMedians []float64           // convenience: medians of byBin
	binMeans   []float64           // per-bin arithmetic means of the raw ∆
	alarms     int                 // anomalies reported on the link
	link       trace.LinkKey
	days       int
	probes     int
}

func runCogent(scale Scale, outlierProb float64) (*cogentRun, error) {
	nProbes := 95 // the Fig 2 link is "observed by 95 different probes"
	days := 14
	if scale == Quick {
		nProbes = 40
		days = 4
	}
	f, err := buildCogentLink(174, nProbes, outlierProb, noEvent, noEvent, 0)
	if err != nil {
		return nil, err
	}
	key := trace.LinkKey{Near: f.Link.Near, Far: f.Link.Far}

	run := &cogentRun{link: key, days: days, probes: nProbes}
	binRaw := map[time.Time][]float64{}

	cfg := delay.Config{Observer: func(o delay.Observation) {
		if o.Link == key {
			run.byBin = append(run.byBin, o)
			if o.Anomalous {
				run.alarms++
			}
		}
	}}
	det := delay.NewDetector(cfg, f.Platform.ProbeASN)

	start := time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
	end := start.Add(time.Duration(days) * 24 * time.Hour)
	err = f.Platform.Run(start, end, func(r trace.Result) error {
		// Collect the raw ∆ samples of the monitored link for the raw
		// statistics the paper quotes (µ, σ, outlier count).
		for _, pair := range r.AdjacentPairs() {
			for _, ra := range pair.Near.Replies {
				if ra.Timeout || ra.From != key.Near {
					continue
				}
				for _, rb := range pair.Far.Replies {
					if rb.Timeout || rb.From != key.Far {
						continue
					}
					d := rb.RTT - ra.RTT
					run.rawDiffs = append(run.rawDiffs, d)
					b := timeseries.Bin(r.Time, time.Hour)
					binRaw[b] = append(binRaw[b], d)
				}
			}
		}
		det.Observe(r)
		return nil
	})
	if err != nil {
		return nil, err
	}
	det.Flush()

	for _, o := range run.byBin {
		run.binMedians = append(run.binMedians, o.Observed.Median)
	}
	for _, o := range run.byBin {
		run.binMeans = append(run.binMeans, stats.Mean(binRaw[o.Bin]))
	}
	return run, nil
}

// Fig02MedianStability regenerates Fig 2: hourly median differential RTTs
// with Wilson confidence intervals for one backbone link over two weeks.
// The paper's claim: raw ∆ is wildly noisy (µ=4.8, σ=12.2 — σ ≈ 3µ) yet
// every hourly median falls in a 0.2 ms band and no anomaly is reported.
func Fig02MedianStability(scale Scale) (*Report, error) {
	run, err := runCogent(scale, 0)
	if err != nil {
		return nil, err
	}
	raw := stats.Describe(run.rawDiffs)
	medBand := stats.Max(run.binMedians) - stats.Min(run.binMedians)
	ciLo := make([]float64, len(run.byBin))
	ciHi := make([]float64, len(run.byBin))
	for i, o := range run.byBin {
		ciLo[i] = o.Observed.Lower
		ciHi[i] = o.Observed.Upper
	}

	var sb strings.Builder
	fmt.Fprintf(&sb, "Link %s observed by %d probes for %d days (1h bins)\n\n", run.link, run.probes, run.days)
	sb.WriteString(report.Table([][]string{
		{"statistic", "value"},
		{"raw ∆ samples", fmt.Sprintf("%d", raw.N)},
		{"raw ∆ mean µ", report.MS(raw.Mean)},
		{"raw ∆ stddev σ", report.MS(raw.Stddev)},
		{"σ / µ", fmt.Sprintf("%.2f", raw.Stddev/raw.Mean)},
		{"median band (max−min over bins)", report.MS(medBand)},
		{"median range", fmt.Sprintf("[%s, %s]", report.MS(stats.Min(run.binMedians)), report.MS(stats.Max(run.binMedians)))},
		{"CI range", fmt.Sprintf("[%s, %s]", report.MS(stats.Min(ciLo)), report.MS(stats.Max(ciHi)))},
		{"anomalies reported", fmt.Sprintf("%d", run.alarms)},
	}))
	sb.WriteString("\nHourly median ∆ (sparkline over bins):\n  ")
	sb.WriteString(report.Sparkline(run.binMedians))
	sb.WriteString("\n")

	r := &Report{
		ID: "F2", Title: "Median differential RTT stability", Scale: scale,
		Text: sb.String(),
		Metrics: map[string]float64{
			"raw_mean_ms":   raw.Mean,
			"raw_stddev_ms": raw.Stddev,
			"median_band":   medBand,
			"alarms":        float64(run.alarms),
			"bins":          float64(len(run.byBin)),
		},
	}
	r.Claims = []Claim{
		{
			Name:     "raw ∆ noise dwarfs the signal",
			Paper:    "σ=12.2 ≈ 2.5×µ=4.8",
			Measured: fmt.Sprintf("σ=%.1f, µ=%.1f (σ/µ=%.1f)", raw.Stddev, raw.Mean, raw.Stddev/raw.Mean),
			Holds:    raw.Stddev > raw.Mean,
		},
		{
			Name:     "hourly medians are remarkably steady",
			Paper:    "all medians within [5.2, 5.4] (0.2 ms band, 95 probes)",
			Measured: fmt.Sprintf("band %.2f ms over %d bins (%d probes)", medBand, len(run.binMedians), run.probes),
			// Band width scales as 1/n of probes; the Quick run uses fewer.
			Holds: medBand < map[Scale]float64{Quick: 1.0, Full: 0.5}[scale],
		},
		{
			Name:     "no anomaly on a healthy link",
			Paper:    "reference intersects all CIs",
			Measured: fmt.Sprintf("%d anomalies", run.alarms),
			Holds:    run.alarms == 0,
		},
	}
	return r, nil
}

// Fig03Normality regenerates Fig 3: the hourly median differential RTTs fit
// a normal distribution (Q-Q points on the diagonal) while the hourly means
// of the same data do not, because a handful of huge outliers (the paper
// found 125 beyond µ+3σ) wreck the mean.
func Fig03Normality(scale Scale) (*Report, error) {
	run, err := runCogent(scale, 0.0002)
	if err != nil {
		return nil, err
	}
	raw := stats.Describe(run.rawDiffs)
	outliers := stats.CountAbove(run.rawDiffs, raw.Mean+3*raw.Stddev)
	ppccMedian := stats.QQCorrelation(run.binMedians)
	ppccMean := stats.QQCorrelation(run.binMeans)

	var sb strings.Builder
	fmt.Fprintf(&sb, "Same link as Fig 2, with rare measurement-error spikes enabled\n\n")
	sb.WriteString(report.Table([][]string{
		{"statistic", "median of ∆ per bin", "mean of ∆ per bin"},
		{"Q-Q PPCC vs normal", fmt.Sprintf("%.4f", ppccMedian), fmt.Sprintf("%.4f", ppccMean)},
		{"spread (stddev over bins)", report.MS(stats.Stddev(run.binMedians)), report.MS(stats.Stddev(run.binMeans))},
	}))
	fmt.Fprintf(&sb, "\nraw outliers beyond µ+3σ: %d of %d samples (paper: 125 over two weeks)\n", outliers, raw.N)

	qq := stats.QQNormal(run.binMedians)
	if len(qq) > 0 {
		maxDev := 0.0
		for _, p := range qq {
			d := p.Sample - p.Theoretical
			if d < 0 {
				d = -d
			}
			if d > maxDev {
				maxDev = d
			}
		}
		fmt.Fprintf(&sb, "max |sample−theoretical| quantile deviation (medians): %.2f\n", maxDev)
	}

	r := &Report{
		ID: "F3", Title: "Normality of median vs mean differential RTT", Scale: scale,
		Text: sb.String(),
		Metrics: map[string]float64{
			"ppcc_median": ppccMedian,
			"ppcc_mean":   ppccMean,
			"outliers":    float64(outliers),
		},
	}
	r.Claims = []Claim{
		{
			Name:     "medians fit a normal distribution",
			Paper:    "Q-Q points on the x=y diagonal",
			Measured: fmt.Sprintf("PPCC %.4f", ppccMedian),
			Holds:    ppccMedian > 0.97,
		},
		{
			Name:     "means do not (outliers dominate)",
			Paper:    "mean Q-Q deviates; 125 outliers > µ+3σ",
			Measured: fmt.Sprintf("PPCC %.4f, %d outliers", ppccMean, outliers),
			Holds:    ppccMean < ppccMedian && outliers > 0,
		},
		{
			Name:     "median-CLT needs fewer samples than mean-CLT",
			Paper:    "median variant more robust (§4.2.2)",
			Measured: fmt.Sprintf("median spread %.3f < mean spread %.3f", stats.Stddev(run.binMedians), stats.Stddev(run.binMeans)),
			Holds:    stats.Stddev(run.binMedians) < stats.Stddev(run.binMeans),
		},
	}
	return r, nil
}
