package experiments

import (
	"strings"
	"testing"

	"pinpoint/internal/trace"
)

func TestNewCaseAllNames(t *testing.T) {
	for _, name := range CaseNames {
		name := name
		t.Run(name, func(t *testing.T) {
			c, err := NewCase(name, Quick)
			if err != nil {
				t.Fatalf("NewCase(%s): %v", name, err)
			}
			if c.Platform == nil || c.Net == nil || c.Topo == nil {
				t.Fatal("case missing components")
			}
			if !c.End.After(c.Start) {
				t.Error("case has empty time range")
			}
			if name == "quiet" && len(c.EventWindows) != 0 {
				t.Error("quiet case should have no event windows")
			}
			if name != "quiet" && len(c.EventWindows) == 0 {
				t.Error("case study should declare its event windows")
			}
			// The platform must actually produce results.
			n := 0
			err = c.Platform.Run(c.Start, c.Start.Add(c.End.Sub(c.Start)/48), func(r trace.Result) error {
				n++
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if n == 0 {
				t.Error("case produced no results")
			}
		})
	}
}

func TestNewCaseUnknown(t *testing.T) {
	if _, err := NewCase("nope", Quick); err == nil {
		t.Error("unknown case accepted")
	}
}

func TestRegistryIDsUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Registry {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Run == nil || e.Title == "" {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	if _, ok := ByID("F2"); !ok {
		t.Error("ByID(F2) failed")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID(nope) succeeded")
	}
}

func TestReportRender(t *testing.T) {
	r := &Report{
		ID: "X", Title: "test", Scale: Quick,
		Text:    "body\n",
		Metrics: map[string]float64{"m": 1},
		Claims: []Claim{
			{Name: "good", Paper: "p", Measured: "m", Holds: true},
			{Name: "bad", Paper: "p", Measured: "m", Holds: false},
		},
	}
	out := r.Render()
	for _, want := range []string{"== X: test", "body", "[OK ]", "[FAIL]", "Metrics:"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q", want)
		}
	}
	if len(r.Failed()) != 1 {
		t.Errorf("Failed = %d, want 1", len(r.Failed()))
	}
}
