package experiments

import "testing"

func TestSmokeAll(t *testing.T) {
	for _, e := range Registry {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			r, err := e.Run(Quick)
			if err != nil {
				t.Fatalf("%s: %v", e.ID, err)
			}
			for _, c := range r.Failed() {
				t.Errorf("%s claim failed: %s — measured %s (paper %s)", e.ID, c.Name, c.Measured, c.Paper)
			}
		})
	}
}
