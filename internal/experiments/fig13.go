package experiments

import (
	"fmt"
	"net/netip"
	"strings"
	"sync"
	"time"

	"pinpoint/internal/core"
	"pinpoint/internal/netsim"
	"pinpoint/internal/report"
	"pinpoint/internal/trace"
)

// ixpData is the shared outcome of the §7.3 IXP-outage run.
type ixpData struct {
	topo     *netsim.Topo
	analyzer *core.Analyzer
	prefix   netip.Prefix
	start    time.Time
}

var ixpMemo = struct {
	sync.Mutex
	runs map[Scale]*ixpData
}{runs: map[Scale]*ixpData{}}

// buildIXPCase generates the topology and injects the LAN-wide fault.
func buildIXPCase(scale Scale, art netsim.Artifacts) (*netsim.Topo, *netsim.Net, error) {
	topo, err := netsim.Generate(caseTopoConfig(scale, 20150513))
	if err != nil {
		return nil, nil, err
	}
	ixp := topo.IXPs[0]
	// The technical fault: the whole peering LAN stops switching packets
	// and stops answering traceroute — every member interface goes dark.
	var evs []netsim.Event
	for _, iface := range ixp.Ifaces {
		evs = append(evs,
			netsim.Event{
				Name: "ixp-blackhole", Kind: netsim.EventBlackhole, Router: iface,
				Loss: 1, Start: ixpOutageStart, End: ixpOutageEnd,
			},
			netsim.Event{
				Name: "ixp-silence", Kind: netsim.EventSilence, Router: iface,
				Start: ixpOutageStart, End: ixpOutageEnd,
			},
		)
	}
	topo.Builder.SetArtifacts(art)
	n, err := topo.Build(netsim.NewScenario(evs...))
	if err != nil {
		return nil, nil, err
	}
	return topo, n, nil
}

func runIXP(scale Scale) (*ixpData, error) {
	ixpMemo.Lock()
	defer ixpMemo.Unlock()
	if d, ok := ixpMemo.runs[scale]; ok {
		return d, nil
	}

	topo, n, err := buildIXPCase(scale, netsim.Artifacts{})
	if err != nil {
		return nil, err
	}
	ixp := topo.IXPs[0]

	d := &ixpData{
		topo:   topo,
		prefix: netip.MustParsePrefix(ixp.Prefix),
		start:  quickHistory(scale, ixpHistoryStart, ixpOutageStart),
	}
	p := newCasePlatform(n, topo, 20150513)
	a := core.New(core.Config{RetainAlarms: true}, p.ProbeASN, n.Prefixes())
	if err := p.Run(d.start, ixpRunEnd, func(r trace.Result) error {
		a.Observe(r)
		return nil
	}); err != nil {
		return nil, err
	}
	a.Flush()
	d.analyzer = a
	ixpMemo.runs[scale] = d
	return d, nil
}

// Fig13IXPOutage regenerates Fig 13: the outage is invisible to the delay
// method (no RTT samples to compare) but the forwarding magnitude of the
// peering-LAN AS dips sharply; unresponsive IP pairs identify the peers
// that could not exchange traffic (paper: 770 pairs).
func Fig13IXPOutage(scale Scale) (*Report, error) {
	d, err := runIXP(scale)
	if err != nil {
		return nil, err
	}
	ixp := d.topo.IXPs[0]

	fwdMags := d.analyzer.Aggregator().ForwardingMagnitude(ixp.ASN, d.start.Add(24*time.Hour), ixpRunEnd)
	delayMags := d.analyzer.Aggregator().DelayMagnitude(ixp.ASN, d.start.Add(24*time.Hour), ixpRunEnd)

	inWin := func(t time.Time) bool { return !t.Before(ixpOutageStart) && t.Before(ixpOutageEnd) }
	fwdMin, fwdMinOut := 0.0, 0.0
	for _, p := range fwdMags {
		if inWin(p.T) {
			if p.V < fwdMin {
				fwdMin = p.V
			}
		} else if p.V < fwdMinOut {
			fwdMinOut = p.V
		}
	}
	delayMaxIn := 0.0
	for _, p := range delayMags {
		if inWin(p.T) && p.V > delayMaxIn {
			delayMaxIn = p.V
		}
	}

	// "770 IP pairs related to the AMS-IX peering LAN became unresponsive":
	// distinct (router, LAN next hop) pairs devalued during the outage.
	pairs := map[string]struct{}{}
	for _, al := range d.analyzer.ForwardingAlarms() {
		if !inWin(al.Bin) {
			continue
		}
		for _, h := range al.Hops {
			if h.Hop.IsValid() && d.prefix.Contains(h.Hop) && h.Responsibility < 0 {
				pairs[al.Router.String()+">"+h.Hop.String()] = struct{}{}
			}
		}
	}

	var sb strings.Builder
	sb.WriteString(report.TimeSeries(fmt.Sprintf("%s (%s peering LAN) forwarding anomaly magnitude", ixp.ASN, ixp.Name), fwdMags, 7))
	sb.WriteString("\n")
	sb.WriteString(report.Table([][]string{
		{"quantity", "value", "paper"},
		{"min forwarding magnitude in outage", fmt.Sprintf("%.1f", fwdMin), "strong negative peak (Fig 13)"},
		{"min forwarding magnitude outside", fmt.Sprintf("%.1f", fwdMinOut), "—"},
		{"max delay magnitude in outage", fmt.Sprintf("%.1f", delayMaxIn), "delay method inconclusive"},
		{"unresponsive LAN IP pairs", fmt.Sprintf("%d", len(pairs)), "770 (full Atlas scale)"},
	}))

	r := &Report{
		ID: "F13", Title: "IXP outage forwarding anomaly", Scale: scale,
		Text: sb.String(),
		Metrics: map[string]float64{
			"fwd_min_in":   fwdMin,
			"fwd_min_out":  fwdMinOut,
			"delay_max_in": delayMaxIn,
			"lan_pairs":    float64(len(pairs)),
		},
	}
	r.Claims = []Claim{
		{
			Name:     "forwarding magnitude dips during the outage",
			Paper:    "significant negative peak May 13 11:00",
			Measured: fmt.Sprintf("min %.1f in window vs %.1f outside", fwdMin, fwdMinOut),
			Holds:    fwdMin < -1 && fwdMin < fwdMinOut,
		},
		{
			Name:     "delay method alone misses the outage",
			Paper:    "delay change method did not conclusively detect it",
			Measured: fmt.Sprintf("max delay magnitude %.1f", delayMaxIn),
			Holds:    delayMaxIn < -fwdMin,
		},
		{
			Name:     "unresponsive peering pairs identified",
			Paper:    "770 LAN IP pairs unresponsive",
			Measured: fmt.Sprintf("%d pairs (scaled)", len(pairs)),
			Holds:    len(pairs) >= 3,
		},
	}
	return r, nil
}
