// Package ident is the pipeline's interned identity layer: it maps the
// entities the detectors key their state on — IP addresses, IP-level links
// (ordered address pairs, §4), router addresses (§5) and forwarding flows
// (router, destination pairs, §5.1) — to small dense integer IDs, with
// reverse lookup for reporting.
//
// Interning moves every expensive comparison off the hot path: a
// netip.Addr is hashed and compared once, at first sight, and from then on
// the sample flows through extraction, shard routing and detector
// aggregation as a uint32. Dense IDs also let the detectors replace their
// per-key maps with slice-indexed columnar state (see internal/delay and
// internal/forwarding), which is what makes steady-state ingestion
// allocation-free.
//
// A Registry is safe for concurrent use: interning the same entity from
// any number of goroutines returns the same ID, and reverse lookups may
// run concurrently with interning. IDs are assigned in first-seen order,
// so two runs over the same chronological stream produce identical IDs —
// but nothing downstream depends on that: emission order is always
// restored by sorting on reverse-resolved keys.
package ident

import (
	"net/netip"
	"sync"

	"pinpoint/internal/trace"
)

// AddrID is a dense identifier for an interned IP address. The zero AddrID
// is reserved for the zero (invalid) netip.Addr, so it can double as the
// forwarding detector's "unresponsive" bucket.
type AddrID uint32

// ZeroAddr is the AddrID of the zero netip.Addr, reserved at registry
// construction. forwarding.Unresponsive interns to exactly this ID.
const ZeroAddr AddrID = 0

// LinkID is a dense identifier for an interned IP-level link — an ordered
// (near, far) address pair, the unit of the §4 delay analysis.
type LinkID uint32

// FlowID is a dense identifier for an interned forwarding flow — a
// (router, destination) address pair, the unit of the §5 analysis.
type FlowID uint32

// RouterID is a dense identifier for an interned router address. Routers
// get their own ID space (denser than AddrID) because the engine shards
// forwarding state per router and the detector tracks per-router facts.
type RouterID uint32

// pairKey packs two 32-bit IDs into one map key; pair interning therefore
// hashes 8 bytes instead of two 24-byte netip.Addrs.
type pairKey uint64

func mkPair(a, b AddrID) pairKey { return pairKey(a)<<32 | pairKey(b) }

// Registry is the concurrent-safe interning table. The zero value is not
// usable; construct with NewRegistry.
type Registry struct {
	mu sync.RWMutex

	addrIDs map[netip.Addr]AddrID
	addrs   []netip.Addr

	linkIDs map[pairKey]LinkID
	links   []pairKey

	flowIDs map[pairKey]FlowID
	flows   []pairKey

	routerIDs map[AddrID]RouterID
	routers   []AddrID
}

// NewRegistry returns an empty registry with the zero address pre-interned
// as ZeroAddr.
func NewRegistry() *Registry {
	g := &Registry{
		addrIDs:   make(map[netip.Addr]AddrID),
		linkIDs:   make(map[pairKey]LinkID),
		flowIDs:   make(map[pairKey]FlowID),
		routerIDs: make(map[AddrID]RouterID),
	}
	g.addrIDs[netip.Addr{}] = ZeroAddr
	g.addrs = append(g.addrs, netip.Addr{})
	return g
}

// Addr interns an address, returning its stable dense ID.
func (g *Registry) Addr(a netip.Addr) AddrID {
	g.mu.RLock()
	id, ok := g.addrIDs[a]
	g.mu.RUnlock()
	if ok {
		return id
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if id, ok := g.addrIDs[a]; ok {
		return id
	}
	id = AddrID(len(g.addrs))
	g.addrIDs[a] = id
	g.addrs = append(g.addrs, a)
	return id
}

// LookupAddr returns the ID of an already-interned address without
// interning it; ok is false when the address has never been seen.
func (g *Registry) LookupAddr(a netip.Addr) (AddrID, bool) {
	g.mu.RLock()
	id, ok := g.addrIDs[a]
	g.mu.RUnlock()
	return id, ok
}

// AddrOf resolves an ID back to its address. It panics on IDs the registry
// never issued, like a slice index out of range would.
func (g *Registry) AddrOf(id AddrID) netip.Addr {
	g.mu.RLock()
	a := g.addrs[id]
	g.mu.RUnlock()
	return a
}

// Link interns the ordered address pair (near, far).
func (g *Registry) Link(near, far AddrID) LinkID {
	k := mkPair(near, far)
	g.mu.RLock()
	id, ok := g.linkIDs[k]
	g.mu.RUnlock()
	if ok {
		return id
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if id, ok := g.linkIDs[k]; ok {
		return id
	}
	id = LinkID(len(g.links))
	g.linkIDs[k] = id
	g.links = append(g.links, k)
	return id
}

// LinkOf resolves a link ID to its endpoint address IDs.
func (g *Registry) LinkOf(id LinkID) (near, far AddrID) {
	g.mu.RLock()
	k := g.links[id]
	g.mu.RUnlock()
	return AddrID(k >> 32), AddrID(k & 0xffffffff)
}

// LinkKeyOf resolves a link ID to the trace.LinkKey reports carry.
func (g *Registry) LinkKeyOf(id LinkID) trace.LinkKey {
	g.mu.RLock()
	k := g.links[id]
	near := g.addrs[AddrID(k>>32)]
	far := g.addrs[AddrID(k&0xffffffff)]
	g.mu.RUnlock()
	return trace.LinkKey{Near: near, Far: far}
}

// LookupLink returns the ID of an already-interned link without interning;
// ok is false when either endpoint or the pair is unknown.
func (g *Registry) LookupLink(key trace.LinkKey) (LinkID, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	near, ok := g.addrIDs[key.Near]
	if !ok {
		return 0, false
	}
	far, ok := g.addrIDs[key.Far]
	if !ok {
		return 0, false
	}
	id, ok := g.linkIDs[mkPair(near, far)]
	return id, ok
}

// Flow interns the (router, destination) pair of one forwarding pattern.
func (g *Registry) Flow(router, dst AddrID) FlowID {
	k := mkPair(router, dst)
	g.mu.RLock()
	id, ok := g.flowIDs[k]
	g.mu.RUnlock()
	if ok {
		return id
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if id, ok := g.flowIDs[k]; ok {
		return id
	}
	id = FlowID(len(g.flows))
	g.flowIDs[k] = id
	g.flows = append(g.flows, k)
	return id
}

// FlowOf resolves a flow ID to its (router, destination) address IDs.
func (g *Registry) FlowOf(id FlowID) (router, dst AddrID) {
	g.mu.RLock()
	k := g.flows[id]
	g.mu.RUnlock()
	return AddrID(k >> 32), AddrID(k & 0xffffffff)
}

// FlowAddrsOf resolves a flow ID to the (router, destination) addresses.
func (g *Registry) FlowAddrsOf(id FlowID) (router, dst netip.Addr) {
	g.mu.RLock()
	k := g.flows[id]
	router = g.addrs[AddrID(k>>32)]
	dst = g.addrs[AddrID(k&0xffffffff)]
	g.mu.RUnlock()
	return router, dst
}

// LookupFlow returns the ID of an already-interned flow without interning.
func (g *Registry) LookupFlow(router, dst netip.Addr) (FlowID, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	r, ok := g.addrIDs[router]
	if !ok {
		return 0, false
	}
	d, ok := g.addrIDs[dst]
	if !ok {
		return 0, false
	}
	id, ok := g.flowIDs[mkPair(r, d)]
	return id, ok
}

// Router interns an address into the router ID space.
func (g *Registry) Router(a AddrID) RouterID {
	g.mu.RLock()
	id, ok := g.routerIDs[a]
	g.mu.RUnlock()
	if ok {
		return id
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if id, ok := g.routerIDs[a]; ok {
		return id
	}
	id = RouterID(len(g.routers))
	g.routerIDs[a] = id
	g.routers = append(g.routers, a)
	return id
}

// RouterAddrOf resolves a router ID back to its address ID.
func (g *Registry) RouterAddrOf(id RouterID) AddrID {
	g.mu.RLock()
	a := g.routers[id]
	g.mu.RUnlock()
	return a
}

// GrowTable extends a dense ID-indexed side table to n entries, filling
// the new entries with fill. Capacity doubles (with a small floor) so
// repeated one-ID extensions amortize to O(1); both detectors size their
// columnar slot tables with it.
func GrowTable[T any](s []T, n int, fill T) []T {
	if c := cap(s); n > c {
		if 2*c > n {
			n = 2 * c
		}
		if n < 64 {
			n = 64
		}
		grown := make([]T, len(s), n)
		copy(grown, s)
		s = grown
	}
	for len(s) < n {
		s = append(s, fill)
	}
	return s
}

// Interner is a single-goroutine memo in front of a shared Registry. The
// extraction hot path interns every address of every reply; paying two
// atomic operations per lookup (the registry's RWMutex fast path) costs
// more than the map hit itself. An Interner gives the owning goroutine
// plain non-atomic map hits and falls through to the locked registry only
// on first sight of an entity, so steady-state interning is lock-free
// while the registry stays safe for every other goroutine.
//
// An Interner is NOT safe for concurrent use; create one per extracting
// goroutine over the same Registry. IDs are identical across interners by
// construction (the registry assigns them).
type Interner struct {
	reg     *Registry
	addrs   map[netip.Addr]AddrID
	links   map[pairKey]LinkID
	flows   map[pairKey]FlowID
	routers map[AddrID]RouterID
	texts   map[string]addrMemo // wire-text → parsed+interned, see AddrBytes

	// Two-slot LRU in front of the addrs map. Extraction interns each
	// hop's three replies back to back, and adjacent hop pairs share one
	// hop, so the last two distinct addresses cover most calls without
	// hashing a 24-byte netip.Addr key. The zero value is coherent: the
	// zero Addr maps to ZeroAddr (0) in addrs too.
	memoAddr [2]netip.Addr
	memoID   [2]AddrID

	// One-slot memos for the pair maps. Extraction visits every
	// (near reply × far reply) combination of a hop pair — up to nine
	// Link calls that almost always carry the same two addresses.
	memoLink    pairKey
	memoLinkID  LinkID
	memoLinkSet bool
	memoFlow    pairKey
	memoFlowID  FlowID
	memoFlowSet bool
}

// addrMemo caches one wire-text address form: its parsed value and ID.
type addrMemo struct {
	addr netip.Addr
	id   AddrID
}

// NewInterner returns an empty memo over reg.
func NewInterner(reg *Registry) *Interner {
	return &Interner{
		reg:     reg,
		addrs:   map[netip.Addr]AddrID{{}: ZeroAddr},
		links:   make(map[pairKey]LinkID),
		flows:   make(map[pairKey]FlowID),
		routers: make(map[AddrID]RouterID),
	}
}

// Registry returns the shared registry behind the memo.
func (in *Interner) Registry() *Registry { return in.reg }

// Addr interns an address through the memo.
func (in *Interner) Addr(a netip.Addr) AddrID {
	if a == in.memoAddr[0] {
		return in.memoID[0]
	}
	if a == in.memoAddr[1] {
		in.memoAddr[0], in.memoAddr[1] = in.memoAddr[1], in.memoAddr[0]
		in.memoID[0], in.memoID[1] = in.memoID[1], in.memoID[0]
		return in.memoID[0]
	}
	id, ok := in.addrs[a]
	if !ok {
		id = in.reg.Addr(a)
		in.addrs[a] = id
	}
	in.memoAddr[1], in.memoID[1] = in.memoAddr[0], in.memoID[0]
	in.memoAddr[0], in.memoID[0] = a, id
	return id
}

// AddrBytes parses an address from its wire text and interns it in one
// step, memoizing on the raw bytes — a map lookup keyed by string(b) does
// not allocate on a hit, so repeated text forms cost one non-atomic map hit
// with no intermediate netip.Addr→string round trip. It is the decode-side
// fusion entry point for trace.Decoder.ParseAddr: wiring it into ingest's
// decode workers pre-warms the registry with every address the stream
// carries while the bytes are already in cache. Parse failures are not
// memoized; the error is netip.ParseAddr's.
func (in *Interner) AddrBytes(b []byte) (AddrID, netip.Addr, error) {
	if m, ok := in.texts[string(b)]; ok {
		return m.id, m.addr, nil
	}
	a, err := netip.ParseAddr(string(b))
	if err != nil {
		return 0, netip.Addr{}, err
	}
	id := in.Addr(a)
	if in.texts == nil {
		in.texts = make(map[string]addrMemo)
	}
	in.texts[string(b)] = addrMemo{addr: a, id: id}
	return id, a, nil
}

// Link interns the ordered address pair (near, far) through the memo.
func (in *Interner) Link(near, far AddrID) LinkID {
	k := mkPair(near, far)
	if in.memoLinkSet && k == in.memoLink {
		return in.memoLinkID
	}
	id, ok := in.links[k]
	if !ok {
		id = in.reg.Link(near, far)
		in.links[k] = id
	}
	in.memoLink, in.memoLinkID, in.memoLinkSet = k, id, true
	return id
}

// Flow interns the (router, destination) pair through the memo.
func (in *Interner) Flow(router, dst AddrID) FlowID {
	k := mkPair(router, dst)
	if in.memoFlowSet && k == in.memoFlow {
		return in.memoFlowID
	}
	id, ok := in.flows[k]
	if !ok {
		id = in.reg.Flow(router, dst)
		in.flows[k] = id
	}
	in.memoFlow, in.memoFlowID, in.memoFlowSet = k, id, true
	return id
}

// Router interns an address into the router ID space through the memo.
func (in *Interner) Router(a AddrID) RouterID {
	if id, ok := in.routers[a]; ok {
		return id
	}
	id := in.reg.Router(a)
	in.routers[a] = id
	return id
}

// Addrs returns how many addresses have been interned (including the
// reserved zero address).
func (g *Registry) Addrs() int {
	g.mu.RLock()
	n := len(g.addrs)
	g.mu.RUnlock()
	return n
}

// Links returns how many links have been interned.
func (g *Registry) Links() int {
	g.mu.RLock()
	n := len(g.links)
	g.mu.RUnlock()
	return n
}

// Flows returns how many forwarding flows have been interned.
func (g *Registry) Flows() int {
	g.mu.RLock()
	n := len(g.flows)
	g.mu.RUnlock()
	return n
}

// Routers returns how many router addresses have been interned.
func (g *Registry) Routers() int {
	g.mu.RLock()
	n := len(g.routers)
	g.mu.RUnlock()
	return n
}
