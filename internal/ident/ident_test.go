package ident

import (
	"fmt"
	"net/netip"
	"sync"
	"testing"

	"pinpoint/internal/trace"
)

func addr(i int) netip.Addr {
	return netip.AddrFrom4([4]byte{10, byte(i >> 16), byte(i >> 8), byte(i)})
}

func TestZeroAddrReserved(t *testing.T) {
	g := NewRegistry()
	if got := g.Addr(netip.Addr{}); got != ZeroAddr {
		t.Fatalf("zero addr interned to %d, want %d", got, ZeroAddr)
	}
	if got := g.AddrOf(ZeroAddr); got != (netip.Addr{}) {
		t.Fatalf("AddrOf(ZeroAddr) = %v, want zero addr", got)
	}
	if g.Addrs() != 1 {
		t.Fatalf("fresh registry Addrs() = %d, want 1 (the reserved zero)", g.Addrs())
	}
}

func TestInternRoundTrips(t *testing.T) {
	g := NewRegistry()
	a, b := addr(1), addr(2)
	ida, idb := g.Addr(a), g.Addr(b)
	if ida == idb {
		t.Fatal("distinct addresses got the same ID")
	}
	if g.Addr(a) != ida || g.Addr(b) != idb {
		t.Fatal("re-interning changed the ID")
	}
	if g.AddrOf(ida) != a || g.AddrOf(idb) != b {
		t.Fatal("AddrOf does not round-trip")
	}

	lid := g.Link(ida, idb)
	if got := g.Link(ida, idb); got != lid {
		t.Fatal("re-interning link changed the ID")
	}
	if rid := g.Link(idb, ida); rid == lid {
		t.Fatal("reversed link shares the ID of the forward link")
	}
	near, far := g.LinkOf(lid)
	if near != ida || far != idb {
		t.Fatalf("LinkOf = (%d, %d), want (%d, %d)", near, far, ida, idb)
	}
	if key := g.LinkKeyOf(lid); key != (trace.LinkKey{Near: a, Far: b}) {
		t.Fatalf("LinkKeyOf = %v", key)
	}
	if got, ok := g.LookupLink(trace.LinkKey{Near: a, Far: b}); !ok || got != lid {
		t.Fatalf("LookupLink = %d, %v", got, ok)
	}
	if _, ok := g.LookupLink(trace.LinkKey{Near: a, Far: addr(99)}); ok {
		t.Fatal("LookupLink interned an unknown endpoint")
	}

	fid := g.Flow(ida, idb)
	fr, fd := g.FlowOf(fid)
	if fr != ida || fd != idb {
		t.Fatalf("FlowOf = (%d, %d)", fr, fd)
	}
	if ra, da := g.FlowAddrsOf(fid); ra != a || da != b {
		t.Fatalf("FlowAddrsOf = (%v, %v)", ra, da)
	}
	if got, ok := g.LookupFlow(a, b); !ok || got != fid {
		t.Fatalf("LookupFlow = %d, %v", got, ok)
	}

	rid := g.Router(ida)
	if g.Router(ida) != rid {
		t.Fatal("re-interning router changed the ID")
	}
	if g.RouterAddrOf(rid) != ida {
		t.Fatal("RouterAddrOf does not round-trip")
	}

	if g.Addrs() != 3 || g.Links() != 2 || g.Flows() != 1 || g.Routers() != 1 {
		t.Fatalf("counts = %d/%d/%d/%d", g.Addrs(), g.Links(), g.Flows(), g.Routers())
	}
}

func TestLookupAddrDoesNotIntern(t *testing.T) {
	g := NewRegistry()
	if _, ok := g.LookupAddr(addr(7)); ok {
		t.Fatal("LookupAddr hit an address never interned")
	}
	if g.Addrs() != 1 {
		t.Fatal("LookupAddr interned as a side effect")
	}
	id := g.Addr(addr(7))
	if got, ok := g.LookupAddr(addr(7)); !ok || got != id {
		t.Fatalf("LookupAddr after intern = %d, %v", got, ok)
	}
}

// TestConcurrentInterningStableIDs hammers one registry from many
// goroutines interning overlapping entity sets, then asserts every
// goroutine observed the same ID for the same entity and that reverse
// lookup agrees. Run under -race this also proves the synchronization.
func TestConcurrentInterningStableIDs(t *testing.T) {
	g := NewRegistry()
	const workers = 8
	const n = 500

	type view struct {
		addrs   [n]AddrID
		links   [n]LinkID
		flows   [n]FlowID
		routers [n]RouterID
	}
	views := make([]view, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			v := &views[w]
			// Interleave orders per worker so insertion races are real.
			for i := 0; i < n; i++ {
				k := (i*7 + w*13) % n
				a := g.Addr(addr(k))
				b := g.Addr(addr(k + n))
				v.addrs[k] = a
				v.links[k] = g.Link(a, b)
				v.flows[k] = g.Flow(a, b)
				v.routers[k] = g.Router(a)
				// Concurrent readers must always see consistent state.
				if g.AddrOf(a) != addr(k) {
					t.Errorf("worker %d: AddrOf mismatch for %v", w, addr(k))
					return
				}
			}
		}(w)
	}
	wg.Wait()

	for w := 1; w < workers; w++ {
		if views[w] != views[0] {
			t.Fatalf("worker %d observed different IDs than worker 0", w)
		}
	}
	for i := 0; i < n; i++ {
		if g.AddrOf(views[0].addrs[i]) != addr(i) {
			t.Fatalf("reverse lookup of addr %d does not round-trip", i)
		}
		near, far := g.LinkOf(views[0].links[i])
		if near != views[0].addrs[i] || g.AddrOf(far) != addr(i+n) {
			t.Fatalf("reverse lookup of link %d does not round-trip", i)
		}
	}
	if g.Addrs() != 2*n+1 || g.Links() != n || g.Flows() != n || g.Routers() != n {
		t.Fatalf("counts = %d/%d/%d/%d", g.Addrs(), g.Links(), g.Flows(), g.Routers())
	}
}

// TestInternerMatchesRegistry: the single-owner memo must hand out exactly
// the registry's IDs, including entities another interner created first.
func TestInternerMatchesRegistry(t *testing.T) {
	g := NewRegistry()
	in1 := NewInterner(g)
	in2 := NewInterner(g)
	if in1.Registry() != g {
		t.Fatal("Registry() does not return the shared registry")
	}
	for i := 0; i < 100; i++ {
		a, b := addr(i), addr(i+100)
		ida := in1.Addr(a)
		if in2.Addr(a) != ida || g.Addr(a) != ida {
			t.Fatalf("interners disagree on addr %d", i)
		}
		idb := in2.Addr(b)
		if in1.Link(ida, idb) != in2.Link(ida, idb) {
			t.Fatalf("interners disagree on link %d", i)
		}
		if in1.Flow(ida, idb) != in2.Flow(ida, idb) {
			t.Fatalf("interners disagree on flow %d", i)
		}
		if in1.Router(ida) != in2.Router(ida) {
			t.Fatalf("interners disagree on router %d", i)
		}
	}
	// Memo hits must not re-consult the registry's counts.
	if g.Addrs() != 201 {
		t.Fatalf("Addrs = %d, want 201", g.Addrs())
	}
}

func BenchmarkInternHit(b *testing.B) {
	g := NewRegistry()
	a := addr(1)
	g.Addr(a)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Addr(a)
	}
}

func BenchmarkInternerHit(b *testing.B) {
	g := NewRegistry()
	in := NewInterner(g)
	a := addr(1)
	in.Addr(a)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		in.Addr(a)
	}
}

func BenchmarkInternMiss(b *testing.B) {
	g := NewRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.Addr(addr(i))
	}
}

func ExampleRegistry() {
	g := NewRegistry()
	near := g.Addr(netip.MustParseAddr("192.0.2.1"))
	far := g.Addr(netip.MustParseAddr("192.0.2.2"))
	link := g.Link(near, far)
	fmt.Println(g.LinkKeyOf(link))
	// Output: 192.0.2.1>192.0.2.2
}
