package forwarding

import (
	"net/netip"
	"testing"
	"time"

	"pinpoint/internal/trace"
)

func BenchmarkObserve(b *testing.B) {
	d := NewDetector(Config{})
	replies := []trace.Reply{reply(hopA), reply(hopA), reply(hopB)}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Observe(mk(i%30+1, t0.Add(time.Duration(i/2000)*time.Hour), replies))
	}
}

func BenchmarkCompare(b *testing.B) {
	addrs := []netip.Addr{hopA, hopB, hopC, Unresponsive}
	ref := addrPattern(addrs, []float64{10, 100, 0, 5})
	cur := addrPattern(addrs, []float64{10, 1, 89, 30})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Compare(cur, ref)
	}
}
