package forwarding

import (
	"math"
	"net/netip"
	"testing"
	"time"

	"pinpoint/internal/trace"
)

var (
	t0   = time.Date(2015, 5, 13, 0, 0, 0, 0, time.UTC)
	rtrR = netip.MustParseAddr("10.0.0.1")
	hopA = netip.MustParseAddr("10.0.1.1")
	hopB = netip.MustParseAddr("10.0.2.1")
	hopC = netip.MustParseAddr("10.0.3.1")
	dst1 = netip.MustParseAddr("198.51.100.1")
)

// addrPattern builds a map pattern from parallel slices.
func addrPattern(addrs []netip.Addr, counts []float64) map[netip.Addr]float64 {
	m := make(map[netip.Addr]float64)
	for i, a := range addrs {
		m[a] = counts[i]
	}
	return m
}

// TestFig4WorkedExample verifies the §5.2.2 numbers: reference
// [A,B,C,Z] = [10,100,0,5] against observed [10,1,89,30] yields ρ ≈ −0.6 and
// responsibilities ≈ (0, −0.28, 0.25, 0.07). The observed pattern is
// reconstructed from the published scores (see DESIGN.md F4).
func TestFig4WorkedExample(t *testing.T) {
	ref := addrPattern([]netip.Addr{hopA, hopB, hopC, Unresponsive}, []float64{10, 100, 0, 5})
	cur := addrPattern([]netip.Addr{hopA, hopB, hopC, Unresponsive}, []float64{10, 1, 89, 30})
	rho, scores := Compare(cur, ref)
	if math.Abs(rho-(-0.6)) > 0.005 {
		t.Errorf("ρ = %v, want ≈ -0.6", rho)
	}
	want := map[netip.Addr]float64{hopA: 0, hopB: -0.28, hopC: 0.25, Unresponsive: 0.07}
	for _, s := range scores {
		if w, ok := want[s.Hop]; ok {
			if math.Abs(s.Responsibility-w) > 0.005 {
				t.Errorf("r(%v) = %v, want ≈ %v", s.Hop, s.Responsibility, w)
			}
		}
	}
	// The dominant responsibility is hop B's disappearance.
	top := scores[0]
	for _, s := range scores[1:] {
		if math.Abs(s.Responsibility) > math.Abs(top.Responsibility) {
			top = s
		}
	}
	if top.Hop != hopB {
		t.Errorf("max |r| hop = %v, want B", top.Hop)
	}
}

func TestCompareIdenticalPatterns(t *testing.T) {
	ref := addrPattern([]netip.Addr{hopA, hopB}, []float64{10, 100})
	rho, scores := Compare(ref, ref)
	if rho < 0.999 {
		t.Errorf("identical patterns ρ = %v, want 1", rho)
	}
	for _, s := range scores {
		if s.Responsibility != 0 {
			t.Errorf("identical patterns r(%v) = %v, want 0", s.Hop, s.Responsibility)
		}
	}
}

func TestCompareDegenerate(t *testing.T) {
	// Constant vectors have undefined correlation → NaN, no panic.
	a := addrPattern([]netip.Addr{hopA, hopB}, []float64{5, 5})
	rho, _ := Compare(a, a)
	if !math.IsNaN(rho) {
		t.Errorf("constant-vector ρ = %v, want NaN", rho)
	}
}

// mk builds a result R → next where the far hop's replies are given
// explicitly.
func mk(prb int, at time.Time, far []trace.Reply) trace.Result {
	return trace.Result{
		MsmID: 5001, PrbID: prb, Time: at,
		Src: netip.MustParseAddr("192.0.2.1"), Dst: dst1,
		Hops: []trace.Hop{
			{Index: 1, Replies: []trace.Reply{{From: rtrR, RTT: 1}, {From: rtrR, RTT: 1.1}, {From: rtrR, RTT: 0.9}}},
			{Index: 2, Replies: far},
		},
	}
}

func reply(a netip.Addr) trace.Reply { return trace.Reply{From: a, RTT: 5} }

// feed sends a bin where nA probes see next hop A and nB probes see next
// hop B (three packets each).
func feed(d *Detector, bin int, nA, nB int) []Alarm {
	var alarms []Alarm
	at := t0.Add(time.Duration(bin) * time.Hour)
	p := 1
	for i := 0; i < nA; i++ {
		alarms = append(alarms, d.Observe(mk(p, at, []trace.Reply{reply(hopA), reply(hopA), reply(hopA)}))...)
		p++
	}
	for i := 0; i < nB; i++ {
		alarms = append(alarms, d.Observe(mk(p, at, []trace.Reply{reply(hopB), reply(hopB), reply(hopB)}))...)
		p++
	}
	return alarms
}

func TestStablePatternNoAlarms(t *testing.T) {
	d := NewDetector(Config{})
	var alarms []Alarm
	for bin := 0; bin < 10; bin++ {
		alarms = append(alarms, feed(d, bin, 8, 2)...)
	}
	alarms = append(alarms, d.Flush()...)
	if len(alarms) != 0 {
		t.Errorf("stable pattern fired %d alarms", len(alarms))
	}
	if d.RoutersSeen() != 1 {
		t.Errorf("RoutersSeen = %d, want 1", d.RoutersSeen())
	}
}

func TestDetectsNextHopSwap(t *testing.T) {
	d := NewDetector(Config{})
	for bin := 0; bin < 6; bin++ {
		if a := feed(d, bin, 10, 0); len(a) != 0 {
			t.Fatalf("alarms during stable period at bin %d", bin)
		}
	}
	// All traffic shifts from A to B.
	alarms := feed(d, 6, 0, 10)
	alarms = append(alarms, d.Flush()...)
	if len(alarms) != 1 {
		t.Fatalf("alarms = %d, want 1", len(alarms))
	}
	a := alarms[0]
	if a.Router != rtrR || a.Dst != dst1 {
		t.Errorf("alarm identity = %v→%v", a.Router, a.Dst)
	}
	if a.Rho >= -0.25 {
		t.Errorf("ρ = %v, want < τ", a.Rho)
	}
	var rA, rB float64
	for _, s := range a.Hops {
		switch s.Hop {
		case hopA:
			rA = s.Responsibility
		case hopB:
			rB = s.Responsibility
		}
	}
	if rA >= 0 {
		t.Errorf("r(A) = %v, want negative (hop disappeared)", rA)
	}
	if rB <= 0 {
		t.Errorf("r(B) = %v, want positive (hop newly dominant)", rB)
	}
}

func TestDetectsPacketLoss(t *testing.T) {
	// The AMS-IX shape (§7.3): next hops stop responding, packets vanish
	// into the unresponsive bucket, responsibility of the real hop goes
	// negative and of Z positive.
	d := NewDetector(Config{})
	for bin := 0; bin < 6; bin++ {
		feed(d, bin, 10, 0)
	}
	at := t0.Add(6 * time.Hour)
	var alarms []Alarm
	for p := 1; p <= 10; p++ {
		alarms = append(alarms, d.Observe(mk(p, at, []trace.Reply{{Timeout: true}, {Timeout: true}, {Timeout: true}}))...)
	}
	alarms = append(alarms, d.Flush()...)
	if len(alarms) != 1 {
		t.Fatalf("alarms = %d, want 1", len(alarms))
	}
	var rA, rZ float64
	for _, s := range alarms[0].Hops {
		switch s.Hop {
		case hopA:
			rA = s.Responsibility
		case Unresponsive:
			rZ = s.Responsibility
		}
	}
	if rA >= 0 || rZ <= 0 {
		t.Errorf("loss responsibilities r(A)=%v r(Z)=%v, want negative/positive", rA, rZ)
	}
	top, ok := alarms[0].MaxResponsibility()
	if !ok {
		t.Fatal("no hops in alarm")
	}
	if top.Hop != hopA && top.Hop != Unresponsive {
		t.Errorf("top responsibility = %v", top.Hop)
	}
}

func TestPerDestinationModels(t *testing.T) {
	// The same router must keep independent models per traceroute target.
	d := NewDetector(Config{})
	dst2 := netip.MustParseAddr("198.51.100.2")
	at := t0
	r1 := mk(1, at, []trace.Reply{reply(hopA), reply(hopA), reply(hopA)})
	r2 := mk(2, at, []trace.Reply{reply(hopB), reply(hopB), reply(hopB)})
	r2.Dst = dst2
	d.Observe(r1)
	d.Observe(r2)
	d.Flush()
	ref1, ok1 := d.ReferenceFor(FlowKey{Router: rtrR, Dst: dst1})
	ref2, ok2 := d.ReferenceFor(FlowKey{Router: rtrR, Dst: dst2})
	if !ok1 || !ok2 {
		t.Fatal("missing per-destination references")
	}
	if ref1[hopA] == 0 || ref1[hopB] != 0 {
		t.Errorf("dst1 reference polluted: %v", ref1)
	}
	if ref2[hopB] == 0 || ref2[hopA] != 0 {
		t.Errorf("dst2 reference polluted: %v", ref2)
	}
}

func TestMinPacketsGate(t *testing.T) {
	evaluated := 0
	d := NewDetector(Config{MinPackets: 9, Observer: func(Observation) { evaluated++ }})
	// Bin 0 seeds the reference; bin 1 has only one traceroute (3 packets,
	// below the gate) → not evaluated.
	feed(d, 0, 5, 0)
	feed(d, 1, 1, 0)
	feed(d, 2, 5, 0) // rolls bin 1 out
	d.Flush()
	if evaluated != 1 {
		t.Errorf("evaluated = %d, want 1 (only the full bin)", evaluated)
	}
}

func TestECMPSplitWeights(t *testing.T) {
	// A near hop answered by two routers splits the far hop's packets
	// between both models at half weight.
	d := NewDetector(Config{})
	r := trace.Result{
		MsmID: 1, PrbID: 1, Time: t0,
		Src: netip.MustParseAddr("192.0.2.1"), Dst: dst1,
		Hops: []trace.Hop{
			{Index: 1, Replies: []trace.Reply{{From: rtrR, RTT: 1}, {From: hopC, RTT: 1}}},
			{Index: 2, Replies: []trace.Reply{reply(hopA), reply(hopA), reply(hopA)}},
		},
	}
	d.Observe(r)
	d.Flush()
	ref1, _ := d.ReferenceFor(FlowKey{Router: rtrR, Dst: dst1})
	ref2, _ := d.ReferenceFor(FlowKey{Router: hopC, Dst: dst1})
	if math.Abs(ref1[hopA]-1.5) > 1e-9 || math.Abs(ref2[hopA]-1.5) > 1e-9 {
		t.Errorf("split weights = %v / %v, want 1.5 each", ref1[hopA], ref2[hopA])
	}
	if d.RoutersSeen() != 2 {
		t.Errorf("RoutersSeen = %d, want 2", d.RoutersSeen())
	}
}

func TestReferenceDecaysUnseenHops(t *testing.T) {
	d := NewDetector(Config{Alpha: 0.5})
	feed(d, 0, 4, 4)
	feed(d, 1, 8, 0) // B disappears
	d.Flush()
	ref, _ := d.ReferenceFor(FlowKey{Router: rtrR, Dst: dst1})
	if ref[hopB] >= 12 {
		t.Errorf("unseen hop did not decay: %v", ref[hopB])
	}
	if ref[hopB] <= 0 {
		t.Errorf("unseen hop vanished instantly: %v", ref[hopB])
	}
}

func TestFlushIdempotent(t *testing.T) {
	d := NewDetector(Config{})
	feed(d, 0, 3, 0)
	d.Flush()
	if a := d.Flush(); a != nil {
		t.Errorf("second flush returned %v", a)
	}
}
