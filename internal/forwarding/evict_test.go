package forwarding

import (
	"net/netip"
	"testing"
	"time"

	"pinpoint/internal/trace"
)

var (
	rtrS = netip.MustParseAddr("10.0.9.1")
	dst2 = netip.MustParseAddr("198.51.100.2")
)

// mkOn is mk generalized to an arbitrary (router, dst) flow.
func mkOn(prb int, at time.Time, router, dst netip.Addr, far []trace.Reply) trace.Result {
	return trace.Result{
		MsmID: 5001, PrbID: prb, Time: at,
		Src: netip.MustParseAddr("192.0.2.1"), Dst: dst,
		Hops: []trace.Hop{
			{Index: 1, Replies: []trace.Reply{{From: router, RTT: 1}, {From: router, RTT: 1.1}, {From: router, RTT: 0.9}}},
			{Index: 2, Replies: far},
		},
	}
}

// feedOn sends a bin of n probes through one flow, all seeing next hop A.
func feedOn(d *Detector, bin int, router, dst netip.Addr, n int) []Alarm {
	var alarms []Alarm
	at := t0.Add(time.Duration(bin) * time.Hour)
	for p := 1; p <= n; p++ {
		alarms = append(alarms, d.Observe(mkOn(p, at, router, dst, []trace.Reply{reply(hopA), reply(hopA), reply(hopA)}))...)
	}
	return alarms
}

// TestEvictIdleFlows drives one flow warm, lets it fall idle past the
// threshold while a second flow keeps bins closing, and checks that the
// sweep reclaims the slot and keeps the incremental reference statistics
// (refModels/refNextHops behind AvgNextHops) exact.
func TestEvictIdleFlows(t *testing.T) {
	d := NewDetector(Config{EvictIdleBins: 2})

	for bin := 0; bin < 4; bin++ {
		feedOn(d, bin, rtrR, dst1, 5)
		feedOn(d, bin, rtrS, dst2, 5)
	}
	if models, _ := d.RefStats(); models != 2 {
		t.Fatalf("refModels = %d, want 2", models)
	}

	// Bins 4..8: only (rtrS, dst2) appears; the idle flow must be swept and
	// its reference subtracted from the counters.
	for bin := 4; bin <= 8; bin++ {
		feedOn(d, bin, rtrS, dst2, 5)
	}
	if got := d.CloseStats().Evicted; got != 1 {
		t.Fatalf("Evicted = %d, want 1", got)
	}
	models, hops := d.RefStats()
	if models != 1 || hops != 1 {
		t.Fatalf("RefStats = (%d, %d) after eviction, want (1, 1)", models, hops)
	}
	if _, ok := d.ReferenceFor(FlowKey{Router: rtrR, Dst: dst1}); ok {
		t.Fatal("evicted flow still has a reference")
	}
	if len(d.freeSlots) != 1 {
		t.Fatalf("free slots = %d, want 1", len(d.freeSlots))
	}

	// The flow returns: slot reused, reference reseeded, RoutersSeen exact.
	feedOn(d, 9, rtrR, dst1, 5)
	feedOn(d, 9, rtrS, dst2, 5)
	feedOn(d, 10, rtrR, dst1, 5)
	feedOn(d, 10, rtrS, dst2, 5)
	if len(d.freeSlots) != 0 {
		t.Fatalf("free slots = %d after reuse, want 0", len(d.freeSlots))
	}
	if models, _ := d.RefStats(); models != 2 {
		t.Errorf("refModels = %d after return, want 2", models)
	}
	if d.RoutersSeen() != 2 {
		t.Errorf("RoutersSeen = %d, want 2", d.RoutersSeen())
	}
	d.Flush()
}

// TestFlowTouchResetDropsStaleReference checks the touch-time path: a flow
// returning after a gap the sweep never saw (no interleaved bin closes)
// must reseed its reference rather than correlate against the stale one —
// so a swapped next hop on the return bin cannot alarm.
func TestFlowTouchResetDropsStaleReference(t *testing.T) {
	d := NewDetector(Config{EvictIdleBins: 2})
	for bin := 0; bin < 6; bin++ {
		feed(d, bin, 10, 0)
	}
	// Jump to bin 10: 4 idle bins > threshold, then all traffic on hop B.
	alarms := feed(d, 10, 0, 10)
	alarms = append(alarms, feed(d, 11, 0, 10)...)
	alarms = append(alarms, d.Flush()...)
	if len(alarms) != 0 {
		t.Fatalf("stale-reset flow alarmed: %+v", alarms[0])
	}
	if got := d.CloseStats().Evicted; got != 1 {
		t.Errorf("Evicted = %d, want 1 (touch-time reset)", got)
	}
	if models, _ := d.RefStats(); models != 1 {
		t.Errorf("refModels = %d, want 1 (reseeded)", models)
	}
}

// TestFlowNoEvictionByDefault pins the paper behavior: with EvictIdleBins
// unset the same gap keeps the reference and the swap alarms immediately.
func TestFlowNoEvictionByDefault(t *testing.T) {
	d := NewDetector(Config{})
	for bin := 0; bin < 6; bin++ {
		feed(d, bin, 10, 0)
	}
	alarms := feed(d, 10, 0, 10)
	alarms = append(alarms, d.Flush()...)
	if len(alarms) != 1 {
		t.Fatalf("alarms = %d, want 1 (reference retained across the gap)", len(alarms))
	}
	if got := d.CloseStats().Evicted; got != 0 {
		t.Errorf("Evicted = %d, want 0", got)
	}
}
