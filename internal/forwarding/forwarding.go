// Package forwarding implements the paper's packet-forwarding model and
// forwarding-anomaly detection (§5): for every (router, traceroute target)
// pair it learns the usual next-hop packet-count vector — including an
// "unresponsive" bucket for packets that vanish — smooths it exponentially
// into a reference (Eq 8), flags bins whose pattern anti-correlates with the
// reference (ρ(F, F̄) < τ, §5.2.1), and attributes the change to individual
// next hops with the responsibility metric rᵢ (Eq 9, §5.2.2).
//
// Like the delay detector, the hot path flows interned IDs: extraction
// interns routers, destinations and next hops through ident.Registry and
// emits contributions tagged with a dense FlowID; the detector keeps
// columnar per-flow state (current pattern and smoothed reference as small
// (AddrID, count) vectors) in flat slices indexed by that ID, reusing the
// buffers across bins. Addresses reappear only at bin close, where flows
// are evaluated in reverse-resolved (Router, Dst) order so alarms are
// bit-identical to the pre-ID implementation.
package forwarding

import (
	"encoding/binary"
	"math"
	"net/netip"
	"slices"
	"time"

	"pinpoint/internal/ident"
	"pinpoint/internal/stats"
	"pinpoint/internal/timeseries"
	"pinpoint/internal/trace"
)

// Unresponsive is the pseudo next-hop address bucketing packets that got no
// reply beyond a router (the "Z" node of Fig 4). The zero netip.Addr is
// never a real responder, so the bucket cannot collide; it interns to
// ident.ZeroAddr.
var Unresponsive = netip.Addr{}

// Config parameterizes the detector. NewDetector fills zero fields with the
// paper's values where the paper gives one (τ = −0.25), and with
// conservative defaults documented per field where it does not.
type Config struct {
	BinSize time.Duration // analysis bin; paper: 1 hour
	Alpha   float64       // exponential smoothing factor; paper: "small"
	Tau     float64       // anomaly threshold on ρ; paper: −0.25

	// MinPackets is the minimum number of packets a (router, target) pattern
	// needs in a bin to be evaluated; tiny vectors make Pearson meaningless.
	// The paper does not state a value; default 9 (three traceroutes).
	MinPackets int

	// EvictIdleBins, when positive, evicts a flow's per-flow state (pattern
	// buffer and smoothed reference) once the flow has produced no packets
	// for that many consecutive bins, bounding detector memory on long runs.
	// Like the delay detector's knob it is a fidelity tradeoff — a returning
	// flow reseeds its reference from scratch — and the decision depends
	// only on the flow's own packet history, so sharded output stays
	// bit-identical to sequential output. 0 (the default) disables eviction,
	// preserving the paper's unbounded-memory behavior.
	EvictIdleBins int

	// Registry is the identity layer the detector interns flows through.
	// Leave nil for a private registry (the standalone sequential path);
	// the sharded engine injects its shared registry here so the FlowIDs
	// on routed contributions resolve in every shard.
	Registry *ident.Registry

	// Observer, when non-nil, receives every evaluated pattern (anomalous
	// or not); experiment harnesses use it for Fig 13's per-AS series.
	Observer func(Observation)
}

func (c Config) withDefaults() Config {
	if c.BinSize == 0 {
		c.BinSize = time.Hour
	}
	if c.Alpha == 0 {
		c.Alpha = 0.01 // "small α", §5.1, mirroring the delay detector
	}
	if c.Tau == 0 {
		c.Tau = -0.25
	}
	if c.MinPackets == 0 {
		c.MinPackets = 9
	}
	if c.Registry == nil {
		c.Registry = ident.NewRegistry()
	}
	return c
}

// FlowKey identifies one forwarding pattern: packets crossing Router toward
// the traceroute target Dst. Per §5.1 a separate model is kept per target
// because next-hop choice depends on the packet's destination.
type FlowKey struct {
	Router netip.Addr
	Dst    netip.Addr
}

// HopScore is one next hop of an anomalous pattern with its responsibility.
type HopScore struct {
	Hop            netip.Addr // Unresponsive for the loss bucket
	Responsibility float64    // rᵢ of Eq 9, in [−1, 1]
	Count          float64    // packets this bin
	RefCount       float64    // packets in the reference
}

// Alarm reports one anomalous forwarding pattern.
type Alarm struct {
	Bin    time.Time
	Router netip.Addr
	Dst    netip.Addr
	Rho    float64 // ρ(F, F̄) < τ
	Hops   []HopScore
}

// MaxResponsibility returns the hop with the largest |rᵢ| — the next hop the
// paper points at when localizing the change. ok is false for empty alarms.
func (a Alarm) MaxResponsibility() (HopScore, bool) {
	if len(a.Hops) == 0 {
		return HopScore{}, false
	}
	best := a.Hops[0]
	for _, h := range a.Hops[1:] {
		if math.Abs(h.Responsibility) > math.Abs(best.Responsibility) {
			best = h
		}
	}
	return best, true
}

// Observation is the per-bin evaluation of one pattern, emitted to
// Config.Observer.
type Observation struct {
	Bin       time.Time
	Router    netip.Addr
	Dst       netip.Addr
	Rho       float64 // NaN when the correlation is undefined
	Anomalous bool
	Packets   float64
}

// hopCount is one component of a columnar next-hop packet-count vector.
type hopCount struct {
	hop ident.AddrID
	v   float64
}

// Contribution is one extracted packet observation: W packets crossing the
// flow's router toward its destination went to next hop Hop
// (ident.ZeroAddr for lost packets). Touch marks a router observed with no
// attributable packets this result — it still instantiates the flow's
// pattern, exactly as the inline ingest always did, so reference seeding is
// unchanged. The flow is carried as an interned FlowID and the router as a
// RouterID; the sharded engine hashes the RouterID to pick the shard owning
// the router, so all flows of one router stay colocated.
type Contribution struct {
	Flow   ident.FlowID
	Router ident.RouterID
	Hop    ident.AddrID
	W      float64
	Touch  bool
}

// ExtractContributions decomposes one result into next-hop contributions
// (§5.1): for every responsive hop it records where the following hop's
// packets went — to a responsive next hop or into the unresponsive bucket.
// ECMP-split near hops contribute to each responder's model with weight
// 1/len(responders) so far-hop packets are not double counted. Extraction
// interns addresses, routers and flows through the caller's Interner
// (lock-free single-owner memo over the shared registry) and emits
// ID-tagged contributions; it owns no other state, so each extracting
// goroutine runs with its own Interner while detector state stays
// shard-local.
func ExtractContributions(in *ident.Interner, r trace.Result, fn func(Contribution)) {
	var dstID ident.AddrID
	haveDst := false
	for hi := 0; hi+1 < len(r.Hops); hi++ {
		near, far := &r.Hops[hi], &r.Hops[hi+1]
		if far.Index != near.Index+1 {
			continue
		}
		var rbuf [8]netip.Addr
		routers := near.AppendResponders(rbuf[:0])
		if len(routers) == 0 {
			continue
		}
		if !haveDst {
			dstID = in.Addr(r.Dst)
			haveDst = true
		}
		w := 1.0 / float64(len(routers))
		for _, router := range routers {
			routerAddr := in.Addr(router)
			flow := in.Flow(routerAddr, dstID)
			routerID := in.Router(routerAddr)
			emitted := false
			for _, rep := range far.Replies {
				if rep.Timeout || !rep.From.IsValid() {
					fn(Contribution{Flow: flow, Router: routerID, Hop: ident.ZeroAddr, W: w})
					emitted = true
					continue
				}
				if rep.From == router {
					continue // self-loop artifact
				}
				fn(Contribution{Flow: flow, Router: routerID, Hop: in.Addr(rep.From), W: w})
				emitted = true
			}
			if !emitted {
				fn(Contribution{Flow: flow, Router: routerID, Touch: true})
			}
		}
	}
}

// flowState is the columnar per-flow record, indexed by ident.FlowID. The
// cur vector is truncated (capacity kept) when a new bin first touches the
// flow; ref is the smoothed reference, nil until seeded. The reverse-
// resolved (router, dst) addresses are cached at slot creation — a FlowID's
// pair never changes — so bin close never goes back to the registry.
type flowState struct {
	epoch   uint32
	hasRef  bool
	isV4    bool         // both addresses are 4-byte: key64 is valid
	dead    bool         // slot reclaimed, waiting on the free list
	id      ident.FlowID // owning flow, to clear slotOf on eviction
	lastBin int64        // UnixNano of the bin the flow last appeared in
	router  netip.Addr   // reverse-resolved, cached once
	dst     netip.Addr
	key64   uint64     // big-endian-packed (router, dst) for the radix close order
	cur     []hopCount // this bin's pattern
	ref     []hopCount // smoothed reference (Eq 8)
}

// Detector is the streaming forwarding-anomaly detector. Feed
// chronologically ordered results with Observe; alarms for a bin are
// returned when the stream crosses into the next bin (and by Flush).
// Detector is not safe for concurrent use.
type Detector struct {
	cfg    Config
	reg    *ident.Registry
	intern *ident.Interner

	curBin  time.Time
	haveBin bool
	epoch   uint32

	// Columnar state. FlowIDs are global to the registry while a sharded
	// detector owns only ~1/W of the flows, so a dense per-detector slot
	// table (slotOf: FlowID → index into flows, −1 when unowned) keeps the
	// flowState records scaled to the flows this detector actually
	// ingests.
	slotOf  []int32
	flows   []flowState
	touched []ident.FlowID // flows with contributions in the open bin

	routerSeen  []bool // indexed by ident.RouterID
	routersSeen int

	// Reference statistics, maintained incrementally: reference hops are
	// only ever added (absent hops decay toward zero but stay), so the
	// counters never need a rescan — eviction decrements them when it
	// destroys a reference.
	refModels   int
	refNextHops int

	// Idle-state eviction (Config.EvictIdleBins), mirroring the delay
	// detector: evictAfter is the idle threshold in nanoseconds (0 =
	// disabled), freeSlots are reclaimed flow slots awaiting reuse. The
	// authoritative staleness check runs at touch time, so the close-time
	// sweep is pure memory reclamation.
	evictAfter int64
	freeSlots  []int32
	evicted    int

	sink func(Contribution) // bound once; avoids a closure alloc per result

	// Bin-close scratch, reused across bins so steady-state close is
	// alloc-free: the flow close-order permutation (closeKeys/closeOrd +
	// radix ping-pong buffers), the union resolution buffer, the Pearson
	// vectors, and the per-union radix scratch.
	closeKeys []uint64
	closeOrd  []int32
	closeTmpK []uint64
	closeTmpV []int32
	unionBuf  []unionHop
	fBuf      []float64
	fbarBuf   []float64
	usort     unionSort

	// Cumulative bin-close accounting (CloseStats).
	binsClosed  int
	flowsClosed int
	closeDur    time.Duration
}

// CloseStats is cumulative bin-close activity, the forwarding twin of
// delay.CloseStats: how many patterns were evaluated against their
// reference and how long closing took.
type CloseStats struct {
	Bins    int           // bins closed
	Flows   int           // flow-bins evaluated against a reference
	Evicted int           // idle flow states evicted (Config.EvictIdleBins)
	Dur     time.Duration // wall time spent closing bins
}

// CloseStats returns the detector's cumulative bin-close accounting.
func (d *Detector) CloseStats() CloseStats {
	return CloseStats{Bins: d.binsClosed, Flows: d.flowsClosed, Evicted: d.evicted, Dur: d.closeDur}
}

// unionHop is one next hop in the union of a bin's pattern and reference,
// resolved for the address-ordered Pearson vectors.
type unionHop struct {
	addr    netip.Addr
	f, fbar float64
}

// NewDetector returns a Detector with the given configuration.
func NewDetector(cfg Config) *Detector {
	cfg = cfg.withDefaults()
	d := &Detector{
		cfg:    cfg,
		reg:    cfg.Registry,
		intern: ident.NewInterner(cfg.Registry),
		epoch:  1,
	}
	if cfg.EvictIdleBins > 0 {
		d.evictAfter = int64(cfg.EvictIdleBins) * cfg.BinSize.Nanoseconds()
	}
	d.sink = d.IngestContribution
	return d
}

// Config returns the effective (default-filled) configuration.
func (d *Detector) Config() Config { return d.cfg }

// Registry returns the identity registry the detector interns through.
func (d *Detector) Registry() *ident.Registry { return d.reg }

// RoutersSeen returns how many distinct router addresses have forwarding
// models — the paper's "packet forwarding models for 170k IPv4 router IPs".
func (d *Detector) RoutersSeen() int { return d.routersSeen }

// AvgNextHops returns the mean number of responsive next hops across all
// references — the paper's "on average forwarding models contain four
// different next hops". The unresponsive bucket is not counted.
func (d *Detector) AvgNextHops() float64 {
	models, hops := d.RefStats()
	if models == 0 {
		return 0
	}
	return float64(hops) / float64(models)
}

// RefStats returns the raw counts behind AvgNextHops — how many reference
// models exist and their total responsive next hops — so the sharded engine
// can average across shard-local detectors.
func (d *Detector) RefStats() (models, nextHops int) {
	return d.refModels, d.refNextHops
}

// ReferenceFor returns a copy of the current reference pattern, for tests
// and diagnostics. ok is false when the flow has no reference yet.
func (d *Detector) ReferenceFor(k FlowKey) (map[netip.Addr]float64, bool) {
	id, ok := d.reg.LookupFlow(k.Router, k.Dst)
	if !ok || int(id) >= len(d.slotOf) || d.slotOf[id] < 0 || !d.flows[d.slotOf[id]].hasRef {
		return nil, false
	}
	ref := d.flows[d.slotOf[id]].ref
	out := make(map[netip.Addr]float64, len(ref))
	for _, h := range ref {
		out[d.reg.AddrOf(h.hop)] = h.v
	}
	return out, true
}

// Observe ingests one traceroute result, returning the previous bin's
// alarms when the result crosses a bin boundary.
func (d *Detector) Observe(r trace.Result) []Alarm {
	bin := timeseries.Bin(r.Time, d.cfg.BinSize)
	var alarms []Alarm
	if d.haveBin && bin.After(d.curBin) {
		alarms = d.closeBin()
	}
	if !d.haveBin || bin.After(d.curBin) {
		d.curBin = bin
		d.haveBin = true
	}
	d.ingest(r)
	return alarms
}

// Flush evaluates and clears the currently open bin.
func (d *Detector) Flush() []Alarm {
	if !d.haveBin {
		return nil
	}
	alarms := d.closeBin()
	d.haveBin = false
	return alarms
}

// ingest extracts next-hop contributions (§5.1) and folds them into the
// open bin.
func (d *Detector) ingest(r trace.Result) {
	ExtractContributions(d.intern, r, d.sink)
}

// BeginBin opens (or asserts) the bin the next IngestContribution calls
// belong to. It is the sharded engine's entry point: the engine closes bins
// explicitly via Flush, so BeginBin never evaluates — it only moves the bin
// cursor forward. Bins must be opened in chronological order.
func (d *Detector) BeginBin(bin time.Time) {
	if !d.haveBin || bin.After(d.curBin) {
		d.curBin = bin
		d.haveBin = true
	}
}

// IngestContribution folds one extracted contribution into the open bin.
// Together with BeginBin and Flush it forms the shard-scoped API: an engine
// shard feeds only the contributions whose router hashes to it. In steady
// state this is one epoch check plus a scan of the flow's few next-hop
// slots — no map, no alloc.
func (d *Detector) IngestContribution(c Contribution) {
	fi := int(c.Flow)
	if fi >= len(d.slotOf) {
		d.slotOf = ident.GrowTable(d.slotOf, fi+1, -1)
	}
	si := d.slotOf[fi]
	if si < 0 {
		// Resolve the address pair once, at slot creation; bin close reads
		// the cached addresses and radix-sorts IPv4 flows by the packed key.
		router, dst := d.reg.FlowAddrsOf(c.Flow)
		st := flowState{router: router, dst: dst, id: c.Flow}
		if router.Is4() && dst.Is4() {
			r4, d4 := router.As4(), dst.As4()
			st.key64 = uint64(binary.BigEndian.Uint32(r4[:]))<<32 | uint64(binary.BigEndian.Uint32(d4[:]))
			st.isV4 = true
		}
		if n := len(d.freeSlots); n > 0 {
			si = d.freeSlots[n-1]
			d.freeSlots = d.freeSlots[:n-1]
			d.flows[si] = st
		} else {
			si = int32(len(d.flows))
			d.flows = append(d.flows, st)
		}
		d.slotOf[fi] = si
	}
	fs := &d.flows[si]
	if fs.epoch != d.epoch {
		fs.epoch = d.epoch
		fs.cur = fs.cur[:0]
		d.touched = append(d.touched, c.Flow)
		bin := d.curBin.UnixNano()
		// Touch-time staleness is the authoritative eviction semantics (see
		// the delay detector): a flow idle for more than EvictIdleBins full
		// bins reseeds from scratch, exactly as if the close-time sweep had
		// reclaimed the slot.
		if d.evictAfter > 0 && fs.hasRef && bin-fs.lastBin > d.evictAfter {
			d.dropRef(fs)
			d.evicted++
		}
		fs.lastBin = bin
		ri := int(c.Router)
		if ri >= len(d.routerSeen) {
			d.routerSeen = ident.GrowTable(d.routerSeen, ri+1, false)
		}
		if !d.routerSeen[ri] {
			d.routerSeen[ri] = true
			d.routersSeen++
		}
	}
	if c.Touch {
		return
	}
	for i := range fs.cur {
		if fs.cur[i].hop == c.Hop {
			fs.cur[i].v += c.W
			return
		}
	}
	fs.cur = append(fs.cur, hopCount{hop: c.Hop, v: c.W})
}

// dropRef destroys a flow's smoothed reference, keeping the incremental
// reference statistics (refModels/refNextHops) exact: the counters are
// normally append-only, so eviction is the one path that decrements them.
func (d *Detector) dropRef(fs *flowState) {
	if !fs.hasRef {
		return
	}
	d.refModels--
	for _, h := range fs.ref {
		if h.hop != ident.ZeroAddr {
			d.refNextHops--
		}
	}
	fs.hasRef = false
	fs.ref = fs.ref[:0]
}

// closeBin evaluates every pattern of the bin against its reference and
// then folds the bin into the reference (Eq 8).
func (d *Detector) closeBin() []Alarm {
	t0 := time.Now()
	var alarms []Alarm
	// Deterministic iteration: flows are evaluated in (router, dst) address
	// order — the pre-ID emission order the downstream single-writer
	// aggregation depends on. As in the delay detector, all-IPv4 bins (the
	// normal case) get the order from a radix sort over the packed
	// big-endian keys cached in flowState (identical to the comparison
	// order, since two Is4 addresses compare by their 4-byte big-endian
	// value and distinct FlowIDs pack to distinct keys); anything else
	// falls back to the comparison sort on the cached addresses.
	keys64 := d.closeKeys[:0]
	order := d.closeOrd[:0]
	allV4 := true
	for i, id := range d.touched {
		fs := &d.flows[d.slotOf[id]]
		if !fs.isV4 {
			allV4 = false
			break
		}
		keys64 = append(keys64, fs.key64)
		order = append(order, int32(i))
	}
	if allV4 {
		d.closeTmpK, d.closeTmpV = stats.RadixSortUint64Pairs(keys64, order, d.closeTmpK, d.closeTmpV)
	} else {
		order = order[:0]
		for i := range d.touched {
			order = append(order, int32(i))
		}
		slices.SortFunc(order, func(a, b int32) int {
			fa := &d.flows[d.slotOf[d.touched[a]]]
			fb := &d.flows[d.slotOf[d.touched[b]]]
			if c := fa.router.Compare(fb.router); c != 0 {
				return c
			}
			return fa.dst.Compare(fb.dst)
		})
	}

	for _, ti := range order {
		fs := &d.flows[d.slotOf[d.touched[ti]]]
		cur := fs.cur

		total := 0.0
		for _, h := range cur {
			total += h.v
		}

		if fs.hasRef && total >= float64(d.cfg.MinPackets) {
			d.flowsClosed++
			rho, scores := d.compare(cur, fs.ref)
			anomalous := !math.IsNaN(rho) && rho < d.cfg.Tau
			if anomalous {
				alarms = append(alarms, Alarm{
					Bin:    d.curBin,
					Router: fs.router,
					Dst:    fs.dst,
					Rho:    rho,
					Hops:   scores,
				})
			}
			if d.cfg.Observer != nil {
				d.cfg.Observer(Observation{
					Bin: d.curBin, Router: fs.router, Dst: fs.dst,
					Rho: rho, Anomalous: anomalous, Packets: total,
				})
			}
		}

		// Reference update (Eq 8): F̄ ← αF + (1−α)F̄ over the union of next
		// hops; hops unseen this bin decay, hops seen for the first time
		// enter from zero. The first bin seeds the reference directly.
		if !fs.hasRef {
			fs.ref = append(fs.ref[:0], cur...)
			fs.hasRef = true
			d.refModels++
			for _, h := range cur {
				if h.hop != ident.ZeroAddr {
					d.refNextHops++
				}
			}
			continue
		}
		for _, h := range cur {
			found := false
			for i := range fs.ref {
				if fs.ref[i].hop == h.hop {
					found = true
					break
				}
			}
			if !found {
				fs.ref = append(fs.ref, hopCount{hop: h.hop})
				if h.hop != ident.ZeroAddr {
					d.refNextHops++
				}
			}
		}
		for i := range fs.ref {
			cv := 0.0
			for _, h := range cur {
				if h.hop == fs.ref[i].hop {
					cv = h.v
					break
				}
			}
			fs.ref[i].v = d.cfg.Alpha*cv + (1-d.cfg.Alpha)*fs.ref[i].v
		}
	}

	// Idle-state sweep, mirroring the delay detector: reclaim slots whose
	// flow has produced no packets for EvictIdleBins consecutive bins. The
	// sweep is strictly weaker than the touch-time check above (a reclaimed
	// flow's earliest return is one bin later, which the touch check also
	// resets), so reclamation timing never changes output.
	if d.evictAfter > 0 {
		cb := d.curBin.UnixNano()
		for si := range d.flows {
			fs := &d.flows[si]
			if fs.dead || cb-fs.lastBin < d.evictAfter {
				continue
			}
			d.dropRef(fs)
			d.slotOf[fs.id] = -1
			*fs = flowState{dead: true}
			d.freeSlots = append(d.freeSlots, int32(si))
			d.evicted++
		}
	}

	d.closeKeys = keys64[:0]
	d.closeOrd = order[:0]
	d.touched = d.touched[:0]
	d.epoch++
	d.binsClosed++
	d.closeDur += time.Since(t0)
	return alarms
}

// unionSort is the radix scratch of sortUnion, owned by the detector so
// the hot path's union ordering is alloc-free; the exported Compare passes
// nil and takes the comparison sort.
type unionSort struct {
	keys []uint64
	tmp  []uint64
	hops []unionHop
}

// sortUnion orders union ascending by address with the unresponsive zero
// address first — exactly netip.Addr.Compare's order, which sorts the
// invalid address before everything. With scratch and all-IPv4 addresses
// the order comes from a radix sort over packed keys (bit 63: address is
// valid, bits 62..31: big-endian IPv4, bits 30..0: input index — distinct
// addresses give distinct keys, the index decodes the permutation);
// otherwise it falls back to the comparison sort.
func sortUnion(union []unionHop, sc *unionSort) {
	if sc != nil {
		allV4 := true
		for i := range union {
			if union[i].addr.IsValid() && !union[i].addr.Is4() {
				allV4 = false
				break
			}
		}
		if allV4 {
			keys := sc.keys[:0]
			for i := range union {
				k := uint64(uint32(i))
				if a := union[i].addr; a.IsValid() {
					a4 := a.As4()
					k |= 1<<63 | uint64(binary.BigEndian.Uint32(a4[:]))<<31
				}
				keys = append(keys, k)
			}
			sc.tmp = stats.RadixSortUint64(keys, sc.tmp)
			hops := sc.hops[:0]
			for _, k := range keys {
				hops = append(hops, union[uint32(k)&0x7fffffff])
			}
			copy(union, hops)
			sc.keys, sc.hops = keys[:0], hops[:0]
			return
		}
	}
	slices.SortFunc(union, func(a, b unionHop) int { return a.addr.Compare(b.addr) })
}

// scoreUnion is the single implementation of the §5.2 arithmetic, shared
// by the columnar hot path and the exported Compare: it sorts the union by
// address, fills the Pearson vectors in that order (into the provided
// scratch, which may be nil), and returns ρ and the Σ|Fᵢ−F̄ᵢ| normalizer
// of Eq 9.
func scoreUnion(union []unionHop, f, fbar []float64, sc *unionSort) (rho, absDiff float64, fOut, fbarOut []float64) {
	sortUnion(union, sc)
	f, fbar = f[:0:cap(f)], fbar[:0:cap(fbar)]
	for _, u := range union {
		f = append(f, u.f)
		fbar = append(fbar, u.fbar)
		absDiff += math.Abs(u.f - u.fbar)
	}
	return stats.Pearson(f, fbar), absDiff, f, fbar
}

// unionScores materializes the per-hop responsibility scores rᵢ (Eq 9)
// over an address-sorted union.
func unionScores(union []unionHop, rho, absDiff float64) []HopScore {
	scores := make([]HopScore, len(union))
	for i, u := range union {
		r := 0.0
		if absDiff > 0 && !math.IsNaN(rho) {
			r = -rho * (u.f - u.fbar) / absDiff
		}
		scores[i] = HopScore{Hop: u.addr, Responsibility: r, Count: u.f, RefCount: u.fbar}
	}
	return scores
}

// compare evaluates one columnar pattern against its reference: the union
// of next hops is resolved into the reusable scratch and handed to the
// shared scoreUnion/unionScores core. Scores are only materialized when
// the pattern is anomalous (the exported Compare keeps returning them
// unconditionally for the Fig 4 worked example).
func (d *Detector) compare(cur, ref []hopCount) (rho float64, scores []HopScore) {
	union := d.unionBuf[:0]
	for _, h := range cur {
		union = append(union, unionHop{addr: d.reg.AddrOf(h.hop), f: h.v})
	}
	for _, h := range ref {
		a := d.reg.AddrOf(h.hop)
		found := false
		for i := range union {
			if union[i].addr == a {
				union[i].fbar = h.v
				found = true
				break
			}
		}
		if !found {
			union = append(union, unionHop{addr: a, fbar: h.v})
		}
	}
	rho, absDiff, f, fbar := scoreUnion(union, d.fBuf, d.fbarBuf, &d.usort)
	if !math.IsNaN(rho) && rho < d.cfg.Tau {
		scores = unionScores(union, rho, absDiff)
	}
	d.unionBuf = union[:0]
	d.fBuf = f[:0]
	d.fbarBuf = fbar[:0]
	return rho, scores
}

// Compare computes ρ(F, F̄) over the union of next hops and the per-hop
// responsibility scores rᵢ (Eq 9). It is exported so the Fig 4 worked
// example and the event aggregation can reuse the exact arithmetic; it
// shares scoreUnion/unionScores with the detector's hot path, so the two
// cannot drift.
func Compare(cur, ref map[netip.Addr]float64) (rho float64, scores []HopScore) {
	union := make([]unionHop, 0, len(cur)+len(ref))
	for a, v := range cur {
		union = append(union, unionHop{addr: a, f: v})
	}
	for a, v := range ref {
		found := false
		for i := range union {
			if union[i].addr == a {
				union[i].fbar = v
				found = true
				break
			}
		}
		if !found {
			union = append(union, unionHop{addr: a, fbar: v})
		}
	}
	rho, absDiff, _, _ := scoreUnion(union, nil, nil, nil)
	return rho, unionScores(union, rho, absDiff)
}
