// Package forwarding implements the paper's packet-forwarding model and
// forwarding-anomaly detection (§5): for every (router, traceroute target)
// pair it learns the usual next-hop packet-count vector — including an
// "unresponsive" bucket for packets that vanish — smooths it exponentially
// into a reference (Eq 8), flags bins whose pattern anti-correlates with the
// reference (ρ(F, F̄) < τ, §5.2.1), and attributes the change to individual
// next hops with the responsibility metric rᵢ (Eq 9, §5.2.2).
package forwarding

import (
	"math"
	"net/netip"
	"sort"
	"time"

	"pinpoint/internal/stats"
	"pinpoint/internal/timeseries"
	"pinpoint/internal/trace"
)

// Unresponsive is the pseudo next-hop address bucketing packets that got no
// reply beyond a router (the "Z" node of Fig 4). The zero netip.Addr is
// never a real responder, so the bucket cannot collide.
var Unresponsive = netip.Addr{}

// Config parameterizes the detector. NewDetector fills zero fields with the
// paper's values where the paper gives one (τ = −0.25), and with
// conservative defaults documented per field where it does not.
type Config struct {
	BinSize time.Duration // analysis bin; paper: 1 hour
	Alpha   float64       // exponential smoothing factor; paper: "small"
	Tau     float64       // anomaly threshold on ρ; paper: −0.25

	// MinPackets is the minimum number of packets a (router, target) pattern
	// needs in a bin to be evaluated; tiny vectors make Pearson meaningless.
	// The paper does not state a value; default 9 (three traceroutes).
	MinPackets int

	// Observer, when non-nil, receives every evaluated pattern (anomalous
	// or not); experiment harnesses use it for Fig 13's per-AS series.
	Observer func(Observation)
}

func (c Config) withDefaults() Config {
	if c.BinSize == 0 {
		c.BinSize = time.Hour
	}
	if c.Alpha == 0 {
		c.Alpha = 0.01 // "small α", §5.1, mirroring the delay detector
	}
	if c.Tau == 0 {
		c.Tau = -0.25
	}
	if c.MinPackets == 0 {
		c.MinPackets = 9
	}
	return c
}

// FlowKey identifies one forwarding pattern: packets crossing Router toward
// the traceroute target Dst. Per §5.1 a separate model is kept per target
// because next-hop choice depends on the packet's destination.
type FlowKey struct {
	Router netip.Addr
	Dst    netip.Addr
}

// HopScore is one next hop of an anomalous pattern with its responsibility.
type HopScore struct {
	Hop            netip.Addr // Unresponsive for the loss bucket
	Responsibility float64    // rᵢ of Eq 9, in [−1, 1]
	Count          float64    // packets this bin
	RefCount       float64    // packets in the reference
}

// Alarm reports one anomalous forwarding pattern.
type Alarm struct {
	Bin    time.Time
	Router netip.Addr
	Dst    netip.Addr
	Rho    float64 // ρ(F, F̄) < τ
	Hops   []HopScore
}

// MaxResponsibility returns the hop with the largest |rᵢ| — the next hop the
// paper points at when localizing the change. ok is false for empty alarms.
func (a Alarm) MaxResponsibility() (HopScore, bool) {
	if len(a.Hops) == 0 {
		return HopScore{}, false
	}
	best := a.Hops[0]
	for _, h := range a.Hops[1:] {
		if math.Abs(h.Responsibility) > math.Abs(best.Responsibility) {
			best = h
		}
	}
	return best, true
}

// Observation is the per-bin evaluation of one pattern, emitted to
// Config.Observer.
type Observation struct {
	Bin       time.Time
	Router    netip.Addr
	Dst       netip.Addr
	Rho       float64 // NaN when the correlation is undefined
	Anomalous bool
	Packets   float64
}

// pattern is a next-hop packet-count vector.
type pattern map[netip.Addr]float64

// Contribution is one extracted packet observation: W packets crossing
// Flow.Router toward Flow.Dst went to next hop Hop (Unresponsive for lost
// packets). Touch marks a router observed with no attributable packets this
// result — it still instantiates the flow's pattern, exactly as the inline
// ingest always did, so reference seeding is unchanged. Contributions are
// the unit of work the sharded engine routes to the shard owning the router.
type Contribution struct {
	Flow  FlowKey
	Hop   netip.Addr
	W     float64
	Touch bool
}

// ExtractContributions decomposes one result into next-hop contributions
// (§5.1): for every responsive hop it records where the following hop's
// packets went — to a responsive next hop or into the unresponsive bucket.
// ECMP-split near hops contribute to each responder's model with weight
// 1/len(responders) so far-hop packets are not double counted. Extraction is
// pure: it reads only the result, so it can run on any goroutine while
// detector state stays shard-local.
func ExtractContributions(r trace.Result, fn func(Contribution)) {
	for _, pair := range r.AdjacentPairs() {
		routers := pair.Near.Responders()
		if len(routers) == 0 {
			continue
		}
		w := 1.0 / float64(len(routers))
		for _, router := range routers {
			key := FlowKey{Router: router, Dst: r.Dst}
			emitted := false
			for _, rep := range pair.Far.Replies {
				if rep.Timeout || !rep.From.IsValid() {
					fn(Contribution{Flow: key, Hop: Unresponsive, W: w})
					emitted = true
					continue
				}
				if rep.From == router {
					continue // self-loop artifact
				}
				fn(Contribution{Flow: key, Hop: rep.From, W: w})
				emitted = true
			}
			if !emitted {
				fn(Contribution{Flow: key, Touch: true})
			}
		}
	}
}

// Detector is the streaming forwarding-anomaly detector. Feed
// chronologically ordered results with Observe; alarms for a bin are
// returned when the stream crosses into the next bin (and by Flush).
// Detector is not safe for concurrent use.
type Detector struct {
	cfg Config

	curBin  time.Time
	haveBin bool
	cur     map[FlowKey]pattern
	refs    map[FlowKey]pattern
	seen    map[netip.Addr]struct{} // distinct router addresses modeled

	sink func(Contribution) // bound once; avoids a closure alloc per result
}

// NewDetector returns a Detector with the given configuration.
func NewDetector(cfg Config) *Detector {
	d := &Detector{
		cfg:  cfg.withDefaults(),
		cur:  make(map[FlowKey]pattern),
		refs: make(map[FlowKey]pattern),
		seen: make(map[netip.Addr]struct{}),
	}
	d.sink = d.IngestContribution
	return d
}

// Config returns the effective (default-filled) configuration.
func (d *Detector) Config() Config { return d.cfg }

// RoutersSeen returns how many distinct router addresses have forwarding
// models — the paper's "packet forwarding models for 170k IPv4 router IPs".
func (d *Detector) RoutersSeen() int { return len(d.seen) }

// AvgNextHops returns the mean number of responsive next hops across all
// references — the paper's "on average forwarding models contain four
// different next hops". The unresponsive bucket is not counted.
func (d *Detector) AvgNextHops() float64 {
	models, hops := d.RefStats()
	if models == 0 {
		return 0
	}
	return float64(hops) / float64(models)
}

// RefStats returns the raw counts behind AvgNextHops — how many reference
// models exist and their total responsive next hops — so the sharded engine
// can average across shard-local detectors.
func (d *Detector) RefStats() (models, nextHops int) {
	for _, ref := range d.refs {
		for a := range ref {
			if a != Unresponsive {
				nextHops++
			}
		}
	}
	return len(d.refs), nextHops
}

// ReferenceFor returns a copy of the current reference pattern, for tests
// and diagnostics. ok is false when the flow has no reference yet.
func (d *Detector) ReferenceFor(k FlowKey) (map[netip.Addr]float64, bool) {
	ref, ok := d.refs[k]
	if !ok {
		return nil, false
	}
	out := make(map[netip.Addr]float64, len(ref))
	for a, v := range ref {
		out[a] = v
	}
	return out, true
}

// Observe ingests one traceroute result, returning the previous bin's
// alarms when the result crosses a bin boundary.
func (d *Detector) Observe(r trace.Result) []Alarm {
	bin := timeseries.Bin(r.Time, d.cfg.BinSize)
	var alarms []Alarm
	if d.haveBin && bin.After(d.curBin) {
		alarms = d.closeBin()
	}
	if !d.haveBin || bin.After(d.curBin) {
		d.curBin = bin
		d.haveBin = true
	}
	d.ingest(r)
	return alarms
}

// Flush evaluates and clears the currently open bin.
func (d *Detector) Flush() []Alarm {
	if !d.haveBin {
		return nil
	}
	alarms := d.closeBin()
	d.haveBin = false
	return alarms
}

// ingest extracts next-hop contributions (§5.1) and folds them into the
// open bin.
func (d *Detector) ingest(r trace.Result) {
	ExtractContributions(r, d.sink)
}

// BeginBin opens (or asserts) the bin the next IngestContribution calls
// belong to. It is the sharded engine's entry point: the engine closes bins
// explicitly via Flush, so BeginBin never evaluates — it only moves the bin
// cursor forward. Bins must be opened in chronological order.
func (d *Detector) BeginBin(bin time.Time) {
	if !d.haveBin || bin.After(d.curBin) {
		d.curBin = bin
		d.haveBin = true
	}
}

// IngestContribution folds one extracted contribution into the open bin.
// Together with BeginBin and Flush it forms the shard-scoped API: an engine
// shard feeds only the contributions whose router hashes to it.
func (d *Detector) IngestContribution(c Contribution) {
	pat := d.cur[c.Flow]
	if pat == nil {
		pat = make(pattern)
		d.cur[c.Flow] = pat
		d.seen[c.Flow.Router] = struct{}{}
	}
	if c.Touch {
		return
	}
	pat[c.Hop] += c.W
}

// closeBin evaluates every pattern of the bin against its reference and
// then folds the bin into the reference (Eq 8).
func (d *Detector) closeBin() []Alarm {
	var alarms []Alarm
	keys := make([]FlowKey, 0, len(d.cur))
	for k := range d.cur {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Router != keys[j].Router {
			return keys[i].Router.Less(keys[j].Router)
		}
		return keys[i].Dst.Less(keys[j].Dst)
	})

	for _, key := range keys {
		cur := d.cur[key]
		ref, hasRef := d.refs[key]

		total := 0.0
		for _, v := range cur {
			total += v
		}

		if hasRef && total >= float64(d.cfg.MinPackets) {
			rho, scores := Compare(cur, ref)
			anomalous := !math.IsNaN(rho) && rho < d.cfg.Tau
			if anomalous {
				alarms = append(alarms, Alarm{
					Bin:    d.curBin,
					Router: key.Router,
					Dst:    key.Dst,
					Rho:    rho,
					Hops:   scores,
				})
			}
			if d.cfg.Observer != nil {
				d.cfg.Observer(Observation{
					Bin: d.curBin, Router: key.Router, Dst: key.Dst,
					Rho: rho, Anomalous: anomalous, Packets: total,
				})
			}
		}

		// Reference update (Eq 8): F̄ ← αF + (1−α)F̄ over the union of next
		// hops; hops unseen this bin decay, hops seen for the first time
		// enter from zero. The first bin seeds the reference directly.
		if !hasRef {
			ref = make(pattern, len(cur))
			for a, v := range cur {
				ref[a] = v
			}
			d.refs[key] = ref
			continue
		}
		for a := range cur {
			if _, ok := ref[a]; !ok {
				ref[a] = 0
			}
		}
		for a := range ref {
			ref[a] = d.cfg.Alpha*cur[a] + (1-d.cfg.Alpha)*ref[a]
		}
	}

	d.cur = make(map[FlowKey]pattern)
	return alarms
}

// Compare computes ρ(F, F̄) over the union of next hops and the per-hop
// responsibility scores rᵢ (Eq 9). It is exported so the Fig 4 worked
// example and the event aggregation can reuse the exact arithmetic.
func Compare(cur, ref map[netip.Addr]float64) (rho float64, scores []HopScore) {
	addrs := make([]netip.Addr, 0, len(cur)+len(ref))
	seen := make(map[netip.Addr]struct{}, len(cur)+len(ref))
	for a := range cur {
		if _, ok := seen[a]; !ok {
			seen[a] = struct{}{}
			addrs = append(addrs, a)
		}
	}
	for a := range ref {
		if _, ok := seen[a]; !ok {
			seen[a] = struct{}{}
			addrs = append(addrs, a)
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i].Less(addrs[j]) })

	f := make([]float64, len(addrs))
	fbar := make([]float64, len(addrs))
	var absDiff float64
	for i, a := range addrs {
		f[i] = cur[a]
		fbar[i] = ref[a]
		absDiff += math.Abs(f[i] - fbar[i])
	}
	rho = stats.Pearson(f, fbar)

	scores = make([]HopScore, len(addrs))
	for i, a := range addrs {
		r := 0.0
		if absDiff > 0 && !math.IsNaN(rho) {
			r = -rho * (f[i] - fbar[i]) / absDiff
		}
		scores[i] = HopScore{Hop: a, Responsibility: r, Count: f[i], RefCount: fbar[i]}
	}
	return rho, scores
}
