package forwarding

import (
	"net/netip"
	"testing"
	"time"

	"pinpoint/internal/trace"
)

func TestAvgNextHops(t *testing.T) {
	d := NewDetector(Config{})
	if got := d.AvgNextHops(); got != 0 {
		t.Errorf("empty detector AvgNextHops = %v", got)
	}
	// One flow with two next hops, one flow with one.
	at := time.Date(2015, 5, 13, 0, 0, 0, 0, time.UTC)
	d.Observe(mk(1, at, []trace.Reply{reply(hopA), reply(hopB), reply(hopA)}))
	r2 := mk(2, at, []trace.Reply{reply(hopC), reply(hopC), reply(hopC)})
	r2.Dst = netip.MustParseAddr("198.51.100.9")
	d.Observe(r2)
	d.Flush()
	// Flow 1: hops A and B → 2; flow 2: hop C → 1. Mean = 1.5.
	if got := d.AvgNextHops(); got != 1.5 {
		t.Errorf("AvgNextHops = %v, want 1.5", got)
	}
}

func TestAvgNextHopsExcludesUnresponsive(t *testing.T) {
	d := NewDetector(Config{})
	at := time.Date(2015, 5, 13, 0, 0, 0, 0, time.UTC)
	d.Observe(mk(1, at, []trace.Reply{reply(hopA), {Timeout: true}, {Timeout: true}}))
	d.Flush()
	if got := d.AvgNextHops(); got != 1 {
		t.Errorf("AvgNextHops = %v, want 1 (unresponsive bucket excluded)", got)
	}
}
