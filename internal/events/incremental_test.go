package events

import (
	"net/netip"
	"testing"
	"time"

	"pinpoint/internal/forwarding"
	"pinpoint/internal/timeseries"
)

// feedStep is one bin of a synthetic alarm schedule.
type feedStep struct {
	bin    int // hours after t0
	delay  []float64
	fwd    []float64
	fwdASN string // hop address for fwd responsibilities; default AS100
}

// runSchedule feeds the schedule chronologically. When inc is true it
// advances the incremental region after each bin, exactly as
// core.Analyzer.OnBinClose drives it; deltas accumulate into the returned
// slice.
func runSchedule(t *testing.T, steps []feedStep, inc bool) (*Aggregator, []Event) {
	t.Helper()
	a := NewAggregator(Config{Window: 12 * time.Hour, Threshold: 3}, testTable(t))
	var deltas []Event
	for _, st := range steps {
		bin := t0.Add(time.Duration(st.bin) * time.Hour)
		a.ObserveBin(bin)
		for _, v := range st.delay {
			a.AddDelayAlarm(delayAlarm(bin, "10.1.0.1", "10.2.0.1", v))
		}
		for _, v := range st.fwd {
			hop := st.fwdASN
			if hop == "" {
				hop = "10.1.0.9"
			}
			a.AddForwardingAlarm(forwarding.Alarm{
				Bin:    bin,
				Router: netip.MustParseAddr("10.1.0.1"),
				Dst:    netip.MustParseAddr("198.51.100.1"),
				Rho:    -0.6,
				Hops:   []forwarding.HopScore{{Hop: netip.MustParseAddr(hop), Responsibility: v}},
			})
		}
		if inc {
			deltas = append(deltas, a.CloseBins(bin.Add(time.Hour))...)
		}
	}
	return a, deltas
}

// The schedule mixes quiet warm-up, a delay spike, a forwarding spike on an
// AS that first appears mid-run (exercising the zero backfill), gap bins
// with no alarms at all, and a negative forwarding excursion.
var eqSchedule = []feedStep{
	{bin: 0, delay: []float64{1, 0.5}},
	{bin: 1, delay: []float64{0.8}},
	{bin: 2, delay: []float64{1.2}, fwd: []float64{0.1}},
	{bin: 3, delay: []float64{0.9}},
	{bin: 4, delay: []float64{40}},                      // delay event
	{bin: 5, delay: []float64{1}, fwd: []float64{-2.5}}, // negative fwd event
	{bin: 8, delay: []float64{1.1}},                     // gap: bins 6,7 silent
	{bin: 9, fwd: []float64{3}, fwdASN: "80.81.192.7"},  // new AS mid-run
	{bin: 10, delay: []float64{0.7}, fwd: []float64{0.05}},
	{bin: 12, delay: []float64{35, 20}}, // multi-alarm event bin
}

func TestIncrementalEventsMatchRecompute(t *testing.T) {
	incAgg, deltas := runSchedule(t, eqSchedule, true)
	refAgg, _ := runSchedule(t, eqSchedule, false)

	from, to := t0, t0.Add(13*time.Hour)
	want := refAgg.Events(from, to)
	if len(want) == 0 {
		t.Fatal("schedule produced no events; test is vacuous")
	}
	got := incAgg.Events(from, to) // covered → served from the region
	if len(got) != len(want) {
		t.Fatalf("incremental Events len=%d, recompute len=%d\ngot %v\nwant %v", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
	// The per-close deltas concatenate to exactly the full event list.
	if len(deltas) != len(want) {
		t.Fatalf("delta concatenation len=%d, want %d", len(deltas), len(want))
	}
	for i := range want {
		if deltas[i] != want[i] {
			t.Errorf("delta %d: got %+v, want %+v", i, deltas[i], want[i])
		}
	}
}

func TestIncrementalMagnitudesMatchRecompute(t *testing.T) {
	incAgg, _ := runSchedule(t, eqSchedule, true)
	refAgg, _ := runSchedule(t, eqSchedule, false)

	from, to := t0, t0.Add(13*time.Hour)
	for _, asn := range refAgg.ASes() {
		for name, get := range map[string]func(*Aggregator) []timeseries.Point{
			"delay": func(a *Aggregator) []timeseries.Point { return a.DelayMagnitude(asn, from, to) },
			"fwd":   func(a *Aggregator) []timeseries.Point { return a.ForwardingMagnitude(asn, from, to) },
		} {
			want := get(refAgg)
			got := get(incAgg)
			if len(got) != len(want) {
				t.Fatalf("AS%d %s: len=%d, want %d", asn, name, len(got), len(want))
			}
			for i := range want {
				if !got[i].T.Equal(want[i].T) || got[i].V != want[i].V {
					t.Errorf("AS%d %s point %d: got %v, want %v", asn, name, i, got[i], want[i])
				}
			}
		}
	}
}

func TestIncrementalSubrangeQueries(t *testing.T) {
	incAgg, _ := runSchedule(t, eqSchedule, true)
	refAgg, _ := runSchedule(t, eqSchedule, false)
	// Sub-windows of the covered region must match the recompute too.
	for _, w := range [][2]int{{0, 13}, {3, 6}, {4, 5}, {5, 5}, {9, 13}} {
		from, to := t0.Add(time.Duration(w[0])*time.Hour), t0.Add(time.Duration(w[1])*time.Hour)
		want := refAgg.Events(from, to)
		got := incAgg.Events(from, to)
		if len(got) != len(want) {
			t.Fatalf("window %v: incremental %d events, recompute %d", w, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("window %v event %d: got %+v, want %+v", w, i, got[i], want[i])
			}
		}
	}
	// A query past the region falls back to recomputation and still agrees.
	from, to := t0, t0.Add(20*time.Hour)
	want := refAgg.Events(from, to)
	got := incAgg.Events(from, to)
	if len(got) != len(want) {
		t.Fatalf("uncovered window: incremental %d events, recompute %d", len(got), len(want))
	}
}

func TestIncrementalStalenessRebuild(t *testing.T) {
	incAgg, _ := runSchedule(t, eqSchedule, true)
	// Published view before the out-of-order mutation.
	dm, _, _, _, ok := incAgg.MagnitudeSnapshot()
	if !ok {
		t.Fatal("MagnitudeSnapshot not available after CloseBins")
	}
	before := append([]timeseries.Point(nil), dm[100]...)

	// An alarm landing inside the processed region invalidates it...
	incAgg.AddDelayAlarm(delayAlarm(t0.Add(2*time.Hour), "10.1.0.1", "10.2.0.1", 50))
	if _, _, _, _, ok := incAgg.MagnitudeSnapshot(); ok {
		t.Fatal("snapshot still offered after out-of-order mutation")
	}
	// ...queries fall back to recomputation immediately...
	refAgg, _ := runSchedule(t, eqSchedule, false)
	refAgg.AddDelayAlarm(delayAlarm(t0.Add(2*time.Hour), "10.1.0.1", "10.2.0.1", 50))
	from, to := t0, t0.Add(13*time.Hour)
	assertEventsEqual(t, "stale fallback", incAgg.Events(from, to), refAgg.Events(from, to))

	// ...the next CloseBins rebuilds the region from scratch...
	incAgg.CloseBins(t0.Add(13 * time.Hour))
	assertEventsEqual(t, "post-rebuild", incAgg.Events(from, to), refAgg.Events(from, to))

	// ...and the previously published prefix kept its contents (the rebuild
	// allocated fresh storage instead of mutating it).
	for i, p := range before {
		if dm[100][i] != p {
			t.Fatalf("published prefix mutated at %d: %v != %v", i, dm[100][i], p)
		}
	}
}

func assertEventsEqual(t *testing.T, label string, got, want []Event) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d events, want %d\ngot %v\nwant %v", label, len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("%s event %d: got %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

func TestMagnitudeSnapshotPrefixStability(t *testing.T) {
	half := eqSchedule[:5]
	rest := eqSchedule[5:]
	a := NewAggregator(Config{Window: 12 * time.Hour, Threshold: 3}, testTable(t))
	feed := func(steps []feedStep) {
		for _, st := range steps {
			bin := t0.Add(time.Duration(st.bin) * time.Hour)
			a.ObserveBin(bin)
			for _, v := range st.delay {
				a.AddDelayAlarm(delayAlarm(bin, "10.1.0.1", "10.2.0.1", v))
			}
			a.CloseBins(bin.Add(time.Hour))
		}
	}
	feed(half)
	dm, _, start, thru, ok := a.MagnitudeSnapshot()
	if !ok {
		t.Fatal("no snapshot after first half")
	}
	if !start.Equal(t0) || !thru.Equal(t0.Add(5*time.Hour)) {
		t.Fatalf("region [%v, %v), want [%v, %v)", start, thru, t0, t0.Add(5*time.Hour))
	}
	saved := append([]timeseries.Point(nil), dm[100]...)
	feed(rest) // appends behind the published prefix
	for i, p := range saved {
		if dm[100][i] != p {
			t.Fatalf("prefix point %d changed after further closes: %v != %v", i, dm[100][i], p)
		}
	}
	if _, _, _, thru2, _ := a.MagnitudeSnapshot(); !thru2.After(thru) {
		t.Fatalf("region did not advance: %v", thru2)
	}
}
