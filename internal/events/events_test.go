package events

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"pinpoint/internal/delay"
	"pinpoint/internal/forwarding"
	"pinpoint/internal/ipmap"
	"pinpoint/internal/stats"
	"pinpoint/internal/trace"
)

var t0 = time.Date(2015, 11, 23, 0, 0, 0, 0, time.UTC)

func testTable(t *testing.T) *ipmap.Table {
	t.Helper()
	var tbl ipmap.Table
	tbl.MustAdd("10.1.0.0/16", 100)
	tbl.MustAdd("10.2.0.0/16", 200)
	tbl.MustAdd("80.81.192.0/24", 1200)
	return &tbl
}

func delayAlarm(bin time.Time, near, far string, dev float64) delay.Alarm {
	return delay.Alarm{
		Bin: bin,
		Link: trace.LinkKey{
			Near: netip.MustParseAddr(near),
			Far:  netip.MustParseAddr(far),
		},
		Deviation: dev,
		DiffMS:    dev,
		Observed:  stats.MedianCI{N: 10},
		Reference: stats.MedianCI{N: 1},
	}
}

func TestDelayAlarmMultiASAssignment(t *testing.T) {
	a := NewAggregator(Config{}, testTable(t))
	// Link spanning AS100 and AS200 → both series get the deviation.
	a.AddDelayAlarm(delayAlarm(t0, "10.1.0.1", "10.2.0.1", 5))
	if v, ok := a.DelaySeries(100).Value(t0); !ok || v != 5 {
		t.Errorf("AS100 = %v/%v, want 5", v, ok)
	}
	if v, ok := a.DelaySeries(200).Value(t0); !ok || v != 5 {
		t.Errorf("AS200 = %v/%v, want 5", v, ok)
	}
	// Intra-AS link → only one AS, counted once.
	a.AddDelayAlarm(delayAlarm(t0, "10.1.0.1", "10.1.0.2", 3))
	if v, _ := a.DelaySeries(100).Value(t0); v != 8 {
		t.Errorf("AS100 after intra link = %v, want 8", v)
	}
	if v, _ := a.DelaySeries(200).Value(t0); v != 5 {
		t.Errorf("AS200 unchanged = %v, want 5", v)
	}
}

func TestUnmappedAddressesSkipped(t *testing.T) {
	a := NewAggregator(Config{}, testTable(t))
	a.AddDelayAlarm(delayAlarm(t0, "192.0.2.1", "192.0.2.2", 5))
	if len(a.ASes()) != 0 {
		t.Errorf("unmapped alarm created series: %v", a.ASes())
	}
}

func TestForwardingAlarmResponsibilityRouting(t *testing.T) {
	a := NewAggregator(Config{}, testTable(t))
	al := forwarding.Alarm{
		Bin:    t0,
		Router: netip.MustParseAddr("10.1.0.1"),
		Dst:    netip.MustParseAddr("198.51.100.1"),
		Rho:    -0.6,
		Hops: []forwarding.HopScore{
			{Hop: netip.MustParseAddr("10.1.0.9"), Responsibility: -0.3},
			{Hop: netip.MustParseAddr("10.2.0.9"), Responsibility: 0.25},
			{Hop: forwarding.Unresponsive, Responsibility: 0.05},
		},
	}
	a.AddForwardingAlarm(al)
	if v, _ := a.ForwardingSeries(100).Value(t0); v != -0.3 {
		t.Errorf("AS100 fwd = %v, want -0.3", v)
	}
	if v, _ := a.ForwardingSeries(200).Value(t0); v != 0.25 {
		t.Errorf("AS200 fwd = %v, want 0.25", v)
	}
}

func TestIntraASReroutingCancels(t *testing.T) {
	// Both hops in AS100 with opposite responsibilities → net ≈ 0, the
	// paper's intra-AS mitigation.
	a := NewAggregator(Config{}, testTable(t))
	al := forwarding.Alarm{
		Bin:    t0,
		Router: netip.MustParseAddr("10.1.0.1"),
		Hops: []forwarding.HopScore{
			{Hop: netip.MustParseAddr("10.1.0.8"), Responsibility: -0.4},
			{Hop: netip.MustParseAddr("10.1.0.9"), Responsibility: 0.4},
		},
	}
	a.AddForwardingAlarm(al)
	if v, _ := a.ForwardingSeries(100).Value(t0); v != 0 {
		t.Errorf("intra-AS reroute net = %v, want 0", v)
	}
}

func TestEventsDetectPeaks(t *testing.T) {
	a := NewAggregator(Config{Threshold: 10}, testTable(t))
	// A quiet week of small delay deviations for AS100.
	for h := 0; h < 24*7; h++ {
		a.AddDelayAlarm(delayAlarm(t0.Add(time.Duration(h)*time.Hour), "10.1.0.1", "10.1.0.2", 0.5))
	}
	// Then one huge hour.
	peak := t0.Add(24 * 7 * time.Hour)
	for i := 0; i < 30; i++ {
		a.AddDelayAlarm(delayAlarm(peak, "10.1.0.1", "10.1.0.2", 8))
	}
	evs := a.Events(t0, peak.Add(2*time.Hour))
	if len(evs) == 0 {
		t.Fatal("no events detected")
	}
	found := false
	for _, e := range evs {
		if e.ASN == 100 && e.Type == DelayChange && e.Bin.Equal(peak) {
			found = true
			if e.Magnitude < 10 {
				t.Errorf("magnitude = %v", e.Magnitude)
			}
		}
	}
	if !found {
		t.Errorf("peak event missing: %v", evs)
	}
}

func TestNegativeForwardingEvent(t *testing.T) {
	// The AMS-IX signature: strongly negative forwarding magnitude.
	a := NewAggregator(Config{Threshold: 5}, testTable(t))
	lan := "80.81.192.5"
	for h := 0; h < 24*7; h++ {
		al := forwarding.Alarm{
			Bin:  t0.Add(time.Duration(h) * time.Hour),
			Hops: []forwarding.HopScore{{Hop: netip.MustParseAddr(lan), Responsibility: -0.01}},
		}
		a.AddForwardingAlarm(al)
	}
	peak := t0.Add(24 * 7 * time.Hour)
	for i := 0; i < 100; i++ {
		a.AddForwardingAlarm(forwarding.Alarm{
			Bin:  peak,
			Hops: []forwarding.HopScore{{Hop: netip.MustParseAddr(lan), Responsibility: -0.5}},
		})
	}
	evs := a.Events(t0, peak.Add(time.Hour))
	found := false
	for _, e := range evs {
		if e.ASN == 1200 && e.Type == ForwardingAnomaly && e.Magnitude < -5 {
			found = true
		}
	}
	if !found {
		t.Errorf("negative forwarding event missing: %v", evs)
	}
}

func TestEventsSortedAndString(t *testing.T) {
	a := NewAggregator(Config{Threshold: 1}, testTable(t))
	for h := 0; h < 24*7; h++ {
		a.AddDelayAlarm(delayAlarm(t0.Add(time.Duration(h)*time.Hour), "10.1.0.1", "10.2.0.2", 0.1))
	}
	peak := t0.Add(24 * 7 * time.Hour)
	for i := 0; i < 50; i++ {
		a.AddDelayAlarm(delayAlarm(peak, "10.1.0.1", "10.2.0.2", 5))
	}
	evs := a.Events(t0, peak.Add(time.Hour))
	for i := 1; i < len(evs); i++ {
		if evs[i].Bin.Before(evs[i-1].Bin) {
			t.Fatal("events not sorted")
		}
	}
	if len(evs) > 0 && !strings.Contains(evs[0].String(), "AS") {
		t.Errorf("String() = %q", evs[0].String())
	}
}

func TestAlarmGraphComponents(t *testing.T) {
	root := netip.MustParseAddr("193.0.14.129")
	alarms := []delay.Alarm{
		delayAlarm(t0, "193.0.14.129", "10.1.0.1", 10),
		delayAlarm(t0, "10.1.0.1", "10.1.0.2", 7),
		delayAlarm(t0, "10.9.9.1", "10.9.9.2", 3), // disconnected island
	}
	fwd := []forwarding.Alarm{{
		Bin:    t0,
		Router: netip.MustParseAddr("10.1.0.2"),
		Hops:   []forwarding.HopScore{{Hop: netip.MustParseAddr("10.1.0.1"), Responsibility: -0.2}},
	}}
	g := NewAlarmGraph(alarms, fwd)
	if g.Components() != 2 {
		t.Errorf("components = %d, want 2", g.Components())
	}
	comp := g.Component(root)
	if len(comp) != 2 {
		t.Errorf("root component edges = %d, want 2", len(comp))
	}
	nodes := g.ComponentNodes(root)
	if len(nodes) != 3 {
		t.Errorf("root component nodes = %v", nodes)
	}
	if !g.Flagged(netip.MustParseAddr("10.1.0.1")) {
		t.Error("forwarding-involved node not flagged")
	}
	if g.Flagged(root) {
		t.Error("root wrongly flagged")
	}
	if g.Component(netip.MustParseAddr("203.0.113.1")) != nil {
		t.Error("unknown address should have empty component")
	}
}

func TestWriteDOT(t *testing.T) {
	root := netip.MustParseAddr("193.0.14.129")
	g := NewAlarmGraph([]delay.Alarm{
		delayAlarm(t0, "193.0.14.129", "10.1.0.1", 15),
	}, nil)
	var sb strings.Builder
	if err := g.WriteDOT(&sb, root, map[netip.Addr]bool{root: true}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"graph alarms {", `"193.0.14.129"`, `shape="box"`, "+15ms"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q in:\n%s", want, out)
		}
	}
}
