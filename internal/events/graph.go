package events

import (
	"fmt"
	"io"
	"net/netip"
	"sort"
	"time"

	"pinpoint/internal/delay"
	"pinpoint/internal/forwarding"
)

// GraphEdge is one alarm drawn as an edge between two IP addresses, labeled
// with the absolute median shift (the edge labels of Fig 12).
type GraphEdge struct {
	A, B    netip.Addr
	ShiftMS float64
	Bin     time.Time
}

// AlarmGraph is the "nodes are IP addresses, edges are alarms" view the
// paper uses to show the topological extent of an event (Figs 8 and 12).
// Nodes touched by forwarding anomalies are flagged (the red nodes of
// Fig 12). Build it from alarms of one time window, then extract the
// connected component around an address of interest.
type AlarmGraph struct {
	edges  []GraphEdge
	parent map[netip.Addr]netip.Addr // union-find
	flag   map[netip.Addr]bool       // involved in forwarding anomalies
}

// NewAlarmGraph builds a graph from delay alarms, optionally flagging
// addresses reported by forwarding alarms in the same window.
func NewAlarmGraph(delayAlarms []delay.Alarm, fwdAlarms []forwarding.Alarm) *AlarmGraph {
	g := &AlarmGraph{
		parent: make(map[netip.Addr]netip.Addr),
		flag:   make(map[netip.Addr]bool),
	}
	for _, al := range delayAlarms {
		g.edges = append(g.edges, GraphEdge{
			A: al.Link.Near, B: al.Link.Far,
			ShiftMS: al.DiffMS, Bin: al.Bin,
		})
		g.union(al.Link.Near, al.Link.Far)
	}
	for _, al := range fwdAlarms {
		g.flag[al.Router] = true
		for _, h := range al.Hops {
			if h.Hop.IsValid() && h.Responsibility != 0 {
				g.flag[h.Hop] = true
			}
		}
	}
	return g
}

func (g *AlarmGraph) find(a netip.Addr) netip.Addr {
	if _, ok := g.parent[a]; !ok {
		g.parent[a] = a
	}
	for g.parent[a] != a {
		g.parent[a] = g.parent[g.parent[a]] // path halving
		a = g.parent[a]
	}
	return a
}

func (g *AlarmGraph) union(a, b netip.Addr) {
	ra, rb := g.find(a), g.find(b)
	if ra != rb {
		g.parent[ra] = rb
	}
}

// Nodes returns every address in the graph, sorted.
func (g *AlarmGraph) Nodes() []netip.Addr {
	seen := make(map[netip.Addr]struct{})
	for _, e := range g.edges {
		seen[e.A] = struct{}{}
		seen[e.B] = struct{}{}
	}
	out := make([]netip.Addr, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Edges returns all edges.
func (g *AlarmGraph) Edges() []GraphEdge { return g.edges }

// Flagged reports whether the address was involved in a forwarding anomaly.
func (g *AlarmGraph) Flagged(a netip.Addr) bool { return g.flag[a] }

// Component returns the edges of the connected component containing addr —
// the "connected component of all alarms connected to the K-root server"
// construction of §7.1. The result is empty when the address appears in no
// alarm.
func (g *AlarmGraph) Component(addr netip.Addr) []GraphEdge {
	if _, ok := g.parent[addr]; !ok {
		return nil
	}
	root := g.find(addr)
	var out []GraphEdge
	for _, e := range g.edges {
		if g.find(e.A) == root {
			out = append(out, e)
		}
	}
	return out
}

// ComponentNodes returns the distinct addresses of the component containing
// addr, sorted.
func (g *AlarmGraph) ComponentNodes(addr netip.Addr) []netip.Addr {
	seen := make(map[netip.Addr]struct{})
	for _, e := range g.Component(addr) {
		seen[e.A] = struct{}{}
		seen[e.B] = struct{}{}
	}
	out := make([]netip.Addr, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

// Components returns the number of connected components among nodes that
// appear in at least one edge.
func (g *AlarmGraph) Components() int {
	roots := make(map[netip.Addr]struct{})
	for _, n := range g.Nodes() {
		roots[g.find(n)] = struct{}{}
	}
	return len(roots)
}

// WriteDOT renders the component containing addr (or the whole graph when
// addr is the zero Addr) in Graphviz DOT format: rectangular nodes for
// anycast service addresses (several physical systems behind one address,
// as in Fig 8), red-filled nodes for forwarding-anomaly participants, edge
// labels with the median shift in milliseconds.
func (g *AlarmGraph) WriteDOT(w io.Writer, addr netip.Addr, anycast map[netip.Addr]bool) error {
	edges := g.edges
	if addr.IsValid() {
		edges = g.Component(addr)
	}
	if _, err := fmt.Fprintln(w, "graph alarms {"); err != nil {
		return err
	}
	seen := make(map[netip.Addr]struct{})
	node := func(a netip.Addr) error {
		if _, ok := seen[a]; ok {
			return nil
		}
		seen[a] = struct{}{}
		attrs := ""
		if anycast[a] {
			attrs = ` shape="box"`
		}
		if g.flag[a] {
			attrs += ` style="filled" fillcolor="red"`
		}
		_, err := fmt.Fprintf(w, "  %q [label=%q%s];\n", a, a, attrs)
		return err
	}
	for _, e := range edges {
		if err := node(e.A); err != nil {
			return err
		}
		if err := node(e.B); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "  %q -- %q [label=\"+%.0fms\"];\n", e.A, e.B, e.ShiftMS); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}
