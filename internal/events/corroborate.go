package events

// Empathy-style cross-traceroute corroboration (cf. Di Bartolomeo et al.,
// "traceroute empathy"): a magnitude threshold crossing is reported as an
// event only when enough *distinct* alarm sources — links for the delay
// series, implicated next-hop interfaces for the forwarding series —
// contributed to that AS in the event bin. Single-source peaks are exactly
// what measurement artifacts (a lying router funneling forged hops through
// one stale address) produce, while real disruptions are seen from many
// vantage points or spread over many detour interfaces at once.
//
// The pass is a pure filter over event emission: series and magnitudes are
// untouched, and both detection paths (the Events recomputation and the
// incremental CloseBins advance) consult the same corroborated() predicate,
// so incremental and recomputed event lists stay bit-identical. With
// Corroborate < 2 (the default) nothing is recorded and nothing is
// filtered — existing golden outputs are unchanged.

import (
	"net/netip"
	"time"

	"pinpoint/internal/hash"
	"pinpoint/internal/ipmap"
	"pinpoint/internal/timeseries"
)

// corrTypeKey identifies one corroboration ledger: one AS's alarm sources
// for one series type.
type corrTypeKey struct {
	asn ipmap.ASN
	typ Type
}

// corrSet is the source ledger of one (AS, type): which distinct sources
// fired in each bin, when each source was first seen, and the best
// single-alarm vantage count (distinct probe ASes behind one alarm) per
// bin.
type corrSet struct {
	perBin  map[int64]map[uint64]struct{} // bin unix → distinct source hashes
	first   map[uint64]int64              // source hash → first bin unix
	vantage map[int64]int                 // bin unix → max per-alarm vantage count
}

// corrAddrHash folds an alarm-source address into a stable 64-bit value.
func corrAddrHash(a netip.Addr) uint64 {
	b := a.As16()
	var hi, lo uint64
	for i := 0; i < 8; i++ {
		hi = hi<<8 | uint64(b[i])
		lo = lo<<8 | uint64(b[i+8])
	}
	return hash.Fold(0xc0_44_0b, hi, lo)
}

// recordSource notes that the given source contributed an alarm to the
// (asn, typ) series in the bin containing t. vantage is the number of
// distinct probe ASes already agreeing within that one alarm (delay alarms
// aggregate many vantage points by construction; forwarding alarms pass 1).
// surge marks a positive contribution: only surge sources count toward
// per-bin surge corroboration, while sources of either sign enter the
// first-seen ledger that backs dip corroboration. No-op unless
// corroboration is on.
func (a *Aggregator) recordSource(asn ipmap.ASN, typ Type, t time.Time, src uint64, vantage int, surge bool) {
	if a.cfg.Corroborate < 2 {
		return
	}
	if a.corr == nil {
		a.corr = make(map[corrTypeKey]*corrSet)
	}
	key := corrTypeKey{asn: asn, typ: typ}
	cs := a.corr[key]
	if cs == nil {
		cs = &corrSet{
			perBin:  make(map[int64]map[uint64]struct{}),
			first:   make(map[uint64]int64),
			vantage: make(map[int64]int),
		}
		a.corr[key] = cs
	}
	bin := timeseries.Bin(t, a.cfg.BinSize).Unix()
	if surge {
		set := cs.perBin[bin]
		if set == nil {
			set = make(map[uint64]struct{})
			cs.perBin[bin] = set
		}
		set[src] = struct{}{}
		if vantage > cs.vantage[bin] {
			cs.vantage[bin] = vantage
		}
	}
	if fb, ok := cs.first[src]; !ok || bin < fb {
		cs.first[src] = bin
	}
}

// corroborated reports whether a threshold crossing of the (asn, typ)
// series at bin (with the given magnitude) survives the corroboration
// filter. Positive crossings — excess alarms — need Corroborate distinct
// sources alarming *in that bin*, or one alarm whose own vantage count
// (distinct probe ASes agreeing on the same deviation) reaches Corroborate:
// a delay alarm triangulated by many probe ASes is cross-traceroute
// corroboration even when only one link is implicated. Negative crossings
// (forwarding dips, where the signal is the disappearance of
// routinely-seen next hops) have no alarms in the dip bin by nature; they
// need the AS's series to have been built from Corroborate distinct
// sources by then, so a series fed by a single lying router can never
// produce a believable dip either.
func (a *Aggregator) corroborated(asn ipmap.ASN, typ Type, bin time.Time, mag float64) bool {
	if a.cfg.Corroborate < 2 {
		return true
	}
	cs := a.corr[corrTypeKey{asn: asn, typ: typ}]
	if cs == nil {
		return false
	}
	b := bin.Unix()
	if mag >= 0 {
		return len(cs.perBin[b]) >= a.cfg.Corroborate || cs.vantage[b] >= a.cfg.Corroborate
	}
	// Count sources first seen at or before the dip bin: identical whether
	// evaluated mid-stream (CloseBins, alarms so far all ≤ b by the
	// chronological contract) or after the fact (Events recompute).
	n := 0
	for _, fb := range cs.first {
		if fb <= b {
			n++
			if n >= a.cfg.Corroborate {
				return true
			}
		}
	}
	return false
}
