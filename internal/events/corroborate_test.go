package events

import (
	"net/netip"
	"testing"
	"time"

	"pinpoint/internal/forwarding"
)

// fwdAlarm builds a one-hop forwarding alarm implicating the given next-hop
// address with the given responsibility.
func fwdAlarm(bin time.Time, hop string, resp float64) forwarding.Alarm {
	return forwarding.Alarm{
		Bin:    bin,
		Router: netip.MustParseAddr("10.1.0.1"),
		Dst:    netip.MustParseAddr("198.51.100.1"),
		Rho:    -0.6,
		Hops:   []forwarding.HopScore{{Hop: netip.MustParseAddr(hop), Responsibility: resp}},
	}
}

// surgeSchedule feeds a quiet week of tiny positive responsibilities on AS100
// followed by one big positive hour whose alarms funnel through the given
// peak hop addresses (round-robin), returning the aggregator and the peak
// bin. This is the lying-router shape: base activity plus a forged surge.
func surgeSchedule(t *testing.T, cfg Config, peakHops []string) (*Aggregator, time.Time) {
	t.Helper()
	a := NewAggregator(cfg, testTable(t))
	for h := 0; h < 24*7; h++ {
		a.AddForwardingAlarm(fwdAlarm(t0.Add(time.Duration(h)*time.Hour), "10.1.0.9", 0.01))
	}
	peak := t0.Add(24 * 7 * time.Hour)
	for i := 0; i < 100; i++ {
		a.AddForwardingAlarm(fwdAlarm(peak, peakHops[i%len(peakHops)], 0.5))
	}
	return a, peak
}

func findEvent(evs []Event, asn int, typ Type, bin time.Time) *Event {
	for i := range evs {
		if int(evs[i].ASN) == asn && evs[i].Type == typ && evs[i].Bin.Equal(bin) {
			return &evs[i]
		}
	}
	return nil
}

// TestCorroborationDemotesSingleSourceSurge is the artifact signature the
// pass exists for: a forged forwarding surge funneled through one stale
// interface address crosses the magnitude threshold but dies at K=2, while
// the identical surge spread over two distinct next hops survives.
func TestCorroborationDemotesSingleSourceSurge(t *testing.T) {
	base := Config{Threshold: 5}
	corr := Config{Threshold: 5, Corroborate: 2}
	peakHops := map[string][]string{
		"single-source": {"10.1.0.7"},
		"two-source":    {"10.1.0.7", "10.1.0.8"},
	}

	a, peak := surgeSchedule(t, base, peakHops["single-source"])
	if ev := findEvent(a.Events(t0, peak.Add(time.Hour)), 100, ForwardingAnomaly, peak); ev == nil {
		t.Fatal("baseline config missed the surge event; test is vacuous")
	}

	a, peak = surgeSchedule(t, corr, peakHops["single-source"])
	if ev := findEvent(a.Events(t0, peak.Add(time.Hour)), 100, ForwardingAnomaly, peak); ev != nil {
		t.Errorf("single-source surge survived K=2 corroboration: %+v", *ev)
	}

	a, peak = surgeSchedule(t, corr, peakHops["two-source"])
	if ev := findEvent(a.Events(t0, peak.Add(time.Hour)), 100, ForwardingAnomaly, peak); ev == nil {
		t.Error("two-source surge was wrongly demoted at K=2")
	}
}

// TestCorroborationVantageRule: a delay alarm that already aggregates K
// distinct probe ASes is cross-traceroute corroboration in a single alarm —
// one link suffices. The same alarm seen from one probe AS is not.
func TestCorroborationVantageRule(t *testing.T) {
	run := func(ases int) []Event {
		a := NewAggregator(Config{Threshold: 10, Corroborate: 3}, testTable(t))
		for h := 0; h < 24*7; h++ {
			al := delayAlarm(t0.Add(time.Duration(h)*time.Hour), "10.1.0.1", "10.1.0.2", 0.5)
			al.ASes = ases
			a.AddDelayAlarm(al)
		}
		peak := t0.Add(24 * 7 * time.Hour)
		for i := 0; i < 30; i++ {
			al := delayAlarm(peak, "10.1.0.1", "10.1.0.2", 8)
			al.ASes = ases
			a.AddDelayAlarm(al)
		}
		return a.Events(t0, peak.Add(2*time.Hour))
	}
	peak := t0.Add(24 * 7 * time.Hour)
	if ev := findEvent(run(3), 100, DelayChange, peak); ev == nil {
		t.Error("delay event with 3-AS vantage demoted at K=3 (vantage rule broken)")
	}
	if ev := findEvent(run(1), 100, DelayChange, peak); ev != nil {
		t.Errorf("single-link, single-vantage delay event survived K=3: %+v", *ev)
	}
}

// TestCorroborationDipLedger: a forwarding dip has no alarms in its own bin
// by nature, so it corroborates against the history ledger — the series must
// have been built from K distinct interfaces by the dip bin. A series fed by
// one interface can never produce a believable dip; negative-responsibility
// history still counts toward the ledger (but never toward surges).
func TestCorroborationDipLedger(t *testing.T) {
	run := func(hops []string) []Event {
		a := NewAggregator(Config{Threshold: 5, Corroborate: 2}, testTable(t))
		for h := 0; h < 24*7; h++ {
			// Negative history: routinely devalued hops, alternating sources.
			a.AddForwardingAlarm(fwdAlarm(t0.Add(time.Duration(h)*time.Hour), hops[h%len(hops)], -0.01))
		}
		peak := t0.Add(24 * 7 * time.Hour)
		for i := 0; i < 100; i++ {
			a.AddForwardingAlarm(fwdAlarm(peak, hops[i%len(hops)], -0.5))
		}
		return a.Events(t0, peak.Add(time.Hour))
	}
	peak := t0.Add(24 * 7 * time.Hour)
	if ev := findEvent(run([]string{"10.1.0.8", "10.1.0.9"}), 100, ForwardingAnomaly, peak); ev == nil {
		t.Error("two-interface dip demoted at K=2 (ledger should corroborate it)")
	}
	if ev := findEvent(run([]string{"10.1.0.9"}), 100, ForwardingAnomaly, peak); ev != nil {
		t.Errorf("single-interface dip survived K=2: %+v", *ev)
	}
	// Negative history must not leak into surge corroboration: after a
	// two-interface negative week, a single-source positive surge still dies.
	a := NewAggregator(Config{Threshold: 5, Corroborate: 2}, testTable(t))
	for h := 0; h < 24*7; h++ {
		a.AddForwardingAlarm(fwdAlarm(t0.Add(time.Duration(h)*time.Hour), []string{"10.1.0.8", "10.1.0.9"}[h%2], -0.01))
	}
	for i := 0; i < 100; i++ {
		a.AddForwardingAlarm(fwdAlarm(peak, "10.1.0.7", 0.5))
	}
	if ev := findEvent(a.Events(t0, peak.Add(time.Hour)), 100, ForwardingAnomaly, peak); ev != nil {
		t.Errorf("single-source surge corroborated by negative history: %+v", *ev)
	}
}

// TestCorroborationIncrementalMatchesRecompute: with corroboration on, the
// incremental CloseBins path and the from-scratch Events recomputation must
// agree event for event — the predicate is shared and the dip ledger is
// order-insensitive for chronological feeds.
func TestCorroborationIncrementalMatchesRecompute(t *testing.T) {
	cfg := Config{Window: 12 * time.Hour, Threshold: 3, Corroborate: 2}
	schedule := func(a *Aggregator, inc bool) []Event {
		var deltas []Event
		hops := []string{"10.1.0.8", "10.1.0.9"}
		for h := 0; h <= 16; h++ {
			bin := t0.Add(time.Duration(h) * time.Hour)
			a.ObserveBin(bin)
			switch h {
			case 10: // two-source surge: must survive
				for i := 0; i < 30; i++ {
					a.AddForwardingAlarm(fwdAlarm(bin, hops[i%2], 0.4))
				}
			case 13: // single-source surge: must be demoted
				for i := 0; i < 30; i++ {
					a.AddForwardingAlarm(fwdAlarm(bin, "10.1.0.7", 0.4))
				}
			case 15: // dip, corroborated by the two-interface history
				for i := 0; i < 30; i++ {
					a.AddForwardingAlarm(fwdAlarm(bin, hops[i%2], -0.4))
				}
			default:
				a.AddForwardingAlarm(fwdAlarm(bin, hops[h%2], 0.02))
				a.AddDelayAlarm(delayAlarm(bin, "10.1.0.1", "10.2.0.1", 0.5))
			}
			if inc {
				deltas = append(deltas, a.CloseBins(bin.Add(time.Hour))...)
			}
		}
		return deltas
	}
	incAgg := NewAggregator(cfg, testTable(t))
	deltas := schedule(incAgg, true)
	refAgg := NewAggregator(cfg, testTable(t))
	schedule(refAgg, false)

	from, to := t0, t0.Add(17*time.Hour)
	want := refAgg.Events(from, to)
	if len(want) == 0 {
		t.Fatal("schedule produced no events under corroboration; test is vacuous")
	}
	assertEventsEqual(t, "incremental vs recompute", incAgg.Events(from, to), want)
	assertEventsEqual(t, "deltas vs recompute", deltas, want)
	// The demoted single-source bin must appear in neither list.
	if ev := findEvent(want, 100, ForwardingAnomaly, t0.Add(13*time.Hour)); ev != nil {
		t.Errorf("single-source surge present in corroborated events: %+v", *ev)
	}
}
