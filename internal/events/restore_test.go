package events

import (
	"math"
	"reflect"
	"testing"
	"time"

	"pinpoint/internal/ipmap"
	"pinpoint/internal/timeseries"
)

// binHour is the test bin size; windowBins the magnitude window in bins.
const (
	binHour    = time.Hour
	windowBins = 6
)

func restoreConfig() Config {
	return Config{BinSize: binHour, Window: windowBins * binHour, Threshold: 3}
}

// binAlarms is the deterministic per-bin alarm script: quiet history, a
// burst (the event), then a tail.
func binAlarms(i, n int) []float64 {
	switch {
	case i == n-4:
		return []float64{40, 35} // the burst both ASes should flag
	case i%3 == 0:
		return []float64{1}
	case i%5 == 2:
		return []float64{2, 0.5}
	default:
		return nil
	}
}

// segment is the per-bin state a fake "store" captures: the close delta
// plus the events appended by the close.
type segment struct {
	bin   time.Time
	delta CloseDelta
	evs   []Event
}

// runPipeline drives an aggregator over n bins, returning a segment per
// bin (the same capture the publisher persists).
func runPipeline(t *testing.T, a *Aggregator, start time.Time, from, n int) []segment {
	t.Helper()
	segs := make([]segment, 0, n-from)
	for i := from; i < n; i++ {
		bin := start.Add(time.Duration(i) * binHour)
		a.ObserveBin(bin)
		for j, dev := range binAlarms(i, n) {
			near, far := "10.1.0.1", "10.2.0.1"
			if j%2 == 1 {
				near, far = "10.1.0.2", "10.1.0.3"
			}
			a.AddDelayAlarm(delayAlarm(bin, near, far, dev))
		}
		var d CloseDelta
		evs := a.CloseBinsRecord(bin.Add(binHour), &d)
		segs = append(segs, segment{bin: bin, delta: d, evs: append([]Event(nil), evs...)})
	}
	return segs
}

// restoredState assembles RestoredState from the first k segments with
// only the raw window retained — exactly what a boot from segments has.
func restoredState(segs []segment, k int) RestoredState {
	rs := RestoredState{
		DelayMag: make(map[ipmap.ASN][]timeseries.Point),
		FwdMag:   make(map[ipmap.ASN][]timeseries.Point),
	}
	rs.FirstBin = segs[0].delta.FirstBin
	rs.ValidThrough = segs[k-1].bin.Add(binHour)
	keep := rs.ValidThrough.Add(-windowBins * binHour)
	for _, s := range segs[:k] {
		rs.Events = append(rs.Events, s.evs...)
		for _, p := range s.delta.DelayMag {
			rs.DelayMag[p.ASN] = append(rs.DelayMag[p.ASN], timeseries.Point{T: p.T, V: p.V})
		}
		for _, p := range s.delta.FwdMag {
			rs.FwdMag[p.ASN] = append(rs.FwdMag[p.ASN], timeseries.Point{T: p.T, V: p.V})
		}
		for _, p := range s.delta.DelayRaw {
			if !p.T.Before(keep) {
				rs.DelayRaw = append(rs.DelayRaw, p)
			}
		}
		for _, p := range s.delta.FwdRaw {
			if !p.T.Before(keep) {
				rs.FwdRaw = append(rs.FwdRaw, p)
			}
		}
	}
	return rs
}

// TestRestoreMatchesUninterrupted is the staleness-fix regression test
// (ISSUE 9 satellite): an aggregator restored at bin k from segment-
// derived state — with history before the retained window living ONLY in
// those segments — and driven over the remaining bins must answer every
// query identically to the uninterrupted aggregator, including the
// recompute fallbacks that previously assumed in-memory storage from bin
// zero, and its generation counter must tell mirrors to resync.
func TestRestoreMatchesUninterrupted(t *testing.T) {
	const n = 24
	start := t0
	full := NewAggregator(restoreConfig(), testTable(t))
	segs := runPipeline(t, full, start, 0, n)
	end := start.Add(n * binHour)

	for _, k := range []int{1, n / 2, n - 1} {
		a := NewAggregator(restoreConfig(), testTable(t))
		if err := a.RestoreIncremental(restoredState(segs, k)); err != nil {
			t.Fatalf("k=%d: restore: %v", k, err)
		}
		if _, gen := a.IncrementalEvents(); gen == 0 {
			t.Fatalf("k=%d: restore did not bump the region generation", k)
		}
		runPipeline(t, a, start, k, n)

		// The incremental region itself.
		wantEvs, _ := full.IncrementalEvents()
		gotEvs, _ := a.IncrementalEvents()
		if !reflect.DeepEqual(wantEvs, gotEvs) {
			t.Fatalf("k=%d: incremental events differ\nwant %v\n got %v", k, wantEvs, gotEvs)
		}
		wd, wf, ws, wv, wok := full.MagnitudeSnapshot()
		gd, gf, gs, gv, gok := a.MagnitudeSnapshot()
		if !wok || !gok || !ws.Equal(gs) || !wv.Equal(gv) {
			t.Fatalf("k=%d: snapshot bounds differ: %v %v %v %v %v %v", k, wok, gok, ws, gs, wv, gv)
		}
		comparePointMaps(t, k, "delay", wd, gd)
		comparePointMaps(t, k, "fwd", wf, gf)

		// Covered queries and the fallback paths: a query ending past the
		// region forces the durable recompute split — this is what used to
		// recompute garbage when early raw bins live only in segments.
		for _, to := range []time.Time{end, end.Add(3 * binHour)} {
			want := full.Events(start, to)
			got := a.Events(start, to)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("k=%d to=%v: Events differ\nwant %v\n got %v", k, to, want, got)
			}
			for _, asn := range full.ASes() {
				wantPts := full.DelayMagnitude(asn, start.Add(-2*binHour), to)
				gotPts := a.DelayMagnitude(asn, start.Add(-2*binHour), to)
				if !pointsEqual(wantPts, gotPts) {
					t.Fatalf("k=%d to=%v AS%d: magnitudes differ\nwant %v\n got %v", k, to, asn, wantPts, gotPts)
				}
			}
		}
	}
}

// TestRestoreAfterEviction drives the restored aggregator with eviction
// after every close — bounded memory — and requires identical answers.
func TestRestoreAfterEviction(t *testing.T) {
	const n = 24
	start := t0
	full := NewAggregator(restoreConfig(), testTable(t))
	segs := runPipeline(t, full, start, 0, n)
	end := start.Add(n * binHour)

	k := n / 2
	a := NewAggregator(restoreConfig(), testTable(t))
	if err := a.RestoreIncremental(restoredState(segs, k)); err != nil {
		t.Fatal(err)
	}
	evicted := 0
	for i := k; i < n; i++ {
		bin := start.Add(time.Duration(i) * binHour)
		a.ObserveBin(bin)
		for j, dev := range binAlarms(i, n) {
			near, far := "10.1.0.1", "10.2.0.1"
			if j%2 == 1 {
				near, far = "10.1.0.2", "10.1.0.3"
			}
			a.AddDelayAlarm(delayAlarm(bin, near, far, dev))
		}
		a.CloseBins(bin.Add(binHour))
		evicted += a.EvictBefore(bin) // clamped internally to the window
	}
	if got, want := a.Events(start, end), full.Events(start, end); !reflect.DeepEqual(got, want) {
		t.Fatalf("with eviction: Events differ\nwant %v\n got %v", want, got)
	}
	for _, asn := range full.ASes() {
		if !pointsEqual(full.DelayMagnitude(asn, start, end), a.DelayMagnitude(asn, start, end)) {
			t.Fatalf("with eviction: AS%d magnitudes differ", asn)
		}
	}
	// The eviction must actually have dropped something, or this test
	// proves nothing about bounded memory.
	if evicted == 0 {
		t.Fatal("eviction horizon never dropped a bin")
	}
}

// TestSegmentBackedRejectsStaleMutations pins the immutable-history
// contract: out-of-order alarms and span-start moves below durable bins
// are dropped and counted, the region never goes stale, and the
// generation is unchanged (mirrors keep their state).
func TestSegmentBackedRejectsStaleMutations(t *testing.T) {
	const n = 12
	full := NewAggregator(restoreConfig(), testTable(t))
	segs := runPipeline(t, full, t0, 0, n)

	a := NewAggregator(restoreConfig(), testTable(t))
	if err := a.RestoreIncremental(restoredState(segs, n)); err != nil {
		t.Fatal(err)
	}
	_, gen0 := a.IncrementalEvents()
	before := a.Events(t0, t0.Add(n*binHour))

	a.AddDelayAlarm(delayAlarm(t0.Add(2*binHour), "10.1.0.1", "10.2.0.1", 99))
	a.ObserveBin(t0.Add(-5 * binHour))
	if got := a.DroppedStale(); got != 2 {
		t.Fatalf("DroppedStale = %d, want 2", got)
	}
	if _, gen := a.IncrementalEvents(); gen != gen0 {
		t.Fatalf("stale mutation bumped generation %d → %d", gen0, gen)
	}
	after := a.Events(t0, t0.Add(n*binHour))
	if !reflect.DeepEqual(before, after) {
		t.Fatal("rejected mutation changed query results")
	}
	// And the pipeline keeps going: the next in-order bin closes fine.
	next := t0.Add(n * binHour)
	a.ObserveBin(next)
	a.AddDelayAlarm(delayAlarm(next, "10.1.0.1", "10.2.0.1", 1))
	a.CloseBins(next.Add(binHour))
}

// TestRestoreRequiresFreshAggregator pins the restore preconditions.
func TestRestoreRequiresFreshAggregator(t *testing.T) {
	a := NewAggregator(restoreConfig(), testTable(t))
	a.ObserveBin(t0)
	if err := a.RestoreIncremental(RestoredState{FirstBin: t0, ValidThrough: t0}); err == nil {
		t.Fatal("restore on a non-fresh aggregator succeeded")
	}
	c := restoreConfig()
	c.Corroborate = 2
	b := NewAggregator(c, testTable(t))
	if err := b.RestoreIncremental(RestoredState{FirstBin: t0, ValidThrough: t0}); err == nil {
		t.Fatal("restore with corroboration enabled succeeded")
	}
}

func comparePointMaps(t *testing.T, k int, what string, want, got map[ipmap.ASN][]timeseries.Point) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("k=%d: %s mag map sizes differ: %d vs %d", k, what, len(want), len(got))
	}
	for asn, w := range want {
		if !pointsEqual(w, got[asn]) {
			t.Fatalf("k=%d: %s mag for AS%d differs\nwant %v\n got %v", k, what, asn, w, got[asn])
		}
	}
}

// pointsEqual compares point slices treating NaN == NaN (empty windows
// yield NaN magnitudes) and nil == empty.
func pointsEqual(a, b []timeseries.Point) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !a[i].T.Equal(b[i].T) {
			return false
		}
		if a[i].V != b[i].V && !(math.IsNaN(a[i].V) && math.IsNaN(b[i].V)) {
			return false
		}
	}
	return true
}
