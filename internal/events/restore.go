package events

// Segment-backed operation: when the serving layer persists every closed
// bin to the segment store, the aggregator's pre-window history can be
// evicted from memory and rebuilt at boot purely from segments. Two
// contracts change in this mode:
//
//  1. Durable history is immutable. Out-of-order mutations — an alarm or
//     span-start move landing below the region's validThrough — are
//     rejected and counted instead of marking the region stale, because
//     the staleness rebuild's from-scratch recompute assumes the raw
//     series are complete back to bin zero, which is exactly what
//     eviction takes away. Chronological pipelines (the only producers
//     of store-backed aggregators) never hit this.
//
//  2. Query fallbacks split at the region boundary. Bins the incremental
//     region covers answer from its cached points/events (produced from
//     complete data at close time); only bins at or beyond validThrough
//     recompute from the raw series — whose windows reach back at most
//     cfg.Window, the exact horizon EvictBefore retains.
//
// RestoreIncremental bumps the region generation on boot, so the
// generation-counter resync path mirrors (serve.Publisher) already use
// for staleness rebuilds also covers "history now lives in segments":
// any mirror state from before the restart is void.

import (
	"fmt"
	"time"

	"pinpoint/internal/ipmap"
	"pinpoint/internal/timeseries"
)

// ASPoint is one (AS, bin, value) sample of a per-AS series.
type ASPoint struct {
	ASN ipmap.ASN
	T   time.Time
	V   float64
}

// CloseDelta is everything one CloseBinsRecord advance contributed to the
// read model, in wire-ready form for the segment store.
type CloseDelta struct {
	FirstBin time.Time // analysis span start at close time
	DelayMag []ASPoint // magnitude points appended, incl. zero backfill
	FwdMag   []ASPoint
	DelayRaw []ASPoint // raw series sums finalized by the processed bins
	FwdRaw   []ASPoint
}

func appendASPoints(dst []ASPoint, asn ipmap.ASN, pts []timeseries.Point) []ASPoint {
	for _, p := range pts {
		dst = append(dst, ASPoint{ASN: asn, T: p.T, V: p.V})
	}
	return dst
}

// RestoredState is the read-model state a boot path reassembles from
// committed segments and hands to RestoreIncremental.
type RestoredState struct {
	FirstBin     time.Time // analysis span start (segment FirstBin)
	ValidThrough time.Time // exclusive end of durable history
	Events       []Event   // full committed event list, (bin, AS, type) order
	DelayMag     map[ipmap.ASN][]timeseries.Point
	FwdMag       map[ipmap.ASN][]timeseries.Point
	DelayRaw     []ASPoint // raw sums within the retained window only
	FwdRaw       []ASPoint
}

// RestoreIncremental seeds a fresh aggregator from segment-derived state
// and switches it to segment-backed mode. It must run before any alarm or
// bin is observed; the restored region resumes advancing at ValidThrough.
// The maps and slices in rs are adopted, not copied — the caller must not
// reuse them.
func (a *Aggregator) RestoreIncremental(rs RestoredState) error {
	if a.haveBin || a.inc.advanced || len(a.delaySeries) > 0 || len(a.fwdSeries) > 0 {
		return fmt.Errorf("events: RestoreIncremental on a non-fresh aggregator")
	}
	if a.cfg.Corroborate >= 2 {
		// The corroboration source ledger is not persisted; restoring
		// without it would silently drop corroborated events.
		return fmt.Errorf("events: corroboration (Corroborate=%d) does not support segment restore", a.cfg.Corroborate)
	}
	first := timeseries.Bin(rs.FirstBin, a.cfg.BinSize)
	through := timeseries.Bin(rs.ValidThrough, a.cfg.BinSize)
	if through.Before(first) {
		return fmt.Errorf("events: restored region ends %s before it starts %s", through, first)
	}
	a.firstBin = first
	a.haveBin = true
	if rs.DelayMag == nil {
		rs.DelayMag = make(map[ipmap.ASN][]timeseries.Point)
	}
	if rs.FwdMag == nil {
		rs.FwdMag = make(map[ipmap.ASN][]timeseries.Point)
	}
	a.inc = incState{
		advanced:     true,
		gen:          a.inc.gen + 1, // boot voids any pre-restart mirror
		start:        first,
		validThrough: through,
		delayMag:     rs.DelayMag,
		fwdMag:       rs.FwdMag,
		events:       rs.Events,
	}
	// Every AS the region tracks must own a live series again — CloseBins
	// only extends the magnitude cache of ASes whose series exist — and
	// the retained raw window re-seeds the values future windows read.
	for asn := range rs.DelayMag {
		a.series(a.delaySeries, asn)
	}
	for asn := range rs.FwdMag {
		a.series(a.fwdSeries, asn)
	}
	for _, p := range rs.DelayRaw {
		a.series(a.delaySeries, p.ASN).Set(p.T, p.V)
	}
	for _, p := range rs.FwdRaw {
		a.series(a.fwdSeries, p.ASN).Set(p.T, p.V)
	}
	a.segmentBacked = true
	return nil
}

// SetSegmentBacked switches an aggregator (typically a fresh one in front
// of an empty store) to segment-backed mode: durable history becomes
// immutable and query fallbacks split at the region boundary.
func (a *Aggregator) SetSegmentBacked() { a.segmentBacked = true }

// SegmentBacked reports whether the aggregator is in segment-backed mode.
func (a *Aggregator) SegmentBacked() bool { return a.segmentBacked }

// DroppedStale counts mutations rejected under segment-backed immutable
// history: out-of-order alarms and span-start moves below durable bins.
func (a *Aggregator) DroppedStale() int { return a.droppedStale }

// rejectStaleMutation reports (and counts) a mutation at bin b that a
// segment-backed aggregator must drop: durable history is immutable.
func (a *Aggregator) rejectStaleMutation(b time.Time) bool {
	if !a.segmentBacked || !a.inc.advanced {
		return false
	}
	if b.Before(a.inc.validThrough) || b.Before(a.inc.start) {
		a.droppedStale++
		return true
	}
	return false
}

// EvictBefore drops raw series bins strictly before the bin containing t
// from every per-AS series, clamped so no window the magnitude math can
// still compute — (validThrough−Window, ∞) for the next closes and query
// tails — ever crosses the eviction horizon. The cached region points and
// event list are unaffected: they are the durable read model. Returns the
// number of series bins dropped.
func (a *Aggregator) EvictBefore(t time.Time) int {
	cut := timeseries.Bin(t, a.cfg.BinSize)
	if a.inc.advanced {
		if floor := a.inc.validThrough.Add(-a.cfg.Window); cut.After(floor) {
			cut = floor
		}
	}
	dropped := 0
	for _, s := range a.delaySeries {
		dropped += s.EvictBefore(cut)
	}
	for _, s := range a.fwdSeries {
		dropped += s.EvictBefore(cut)
	}
	return dropped
}

// durableMagnitude answers a magnitude query in segment-backed mode when
// the plain region cache cannot (the range reaches outside the region):
// pre-region bins recompute against their empty windows, region bins come
// from the cache (bit-identical to a full-history recompute — each point
// was produced from complete data at close time), and tail bins at or
// beyond validThrough recompute from the raw series, whose windows stay
// within the retained horizon.
func (a *Aggregator) durableMagnitude(s *timeseries.Series, cached []timeseries.Point, from, to time.Time) []timeseries.Point {
	f := timeseries.Bin(from, a.cfg.BinSize)
	t := timeseries.Bin(to, a.cfg.BinSize)
	var out []timeseries.Point
	if f.Before(a.inc.start) {
		// Bins before the span start score against empty windows; no raw
		// history is consulted.
		end := minBin(t, a.inc.start)
		out = append(out, s.MagnitudeSince(a.firstBin, f, end, a.cfg.Window)...)
		f = end
	}
	if f.Before(a.inc.validThrough) && f.Before(t) {
		end := minBin(t, a.inc.validThrough)
		i := int(f.Sub(a.inc.start) / a.cfg.BinSize)
		j := int(end.Sub(a.inc.start) / a.cfg.BinSize)
		if j <= len(cached) {
			out = append(out, cached[i:j]...)
		} else {
			// The AS gained its series after the last close, so the cache
			// lags — but then the series' entire history is still in
			// memory and the recompute is exact.
			out = append(out, s.MagnitudeSince(a.firstBin, f, end, a.cfg.Window)...)
		}
		f = end
	}
	if f.Before(t) {
		out = append(out, s.MagnitudeSince(a.firstBin, f, t, a.cfg.Window)...)
	}
	return out
}

func minBin(a, b time.Time) time.Time {
	if a.Before(b) {
		return a
	}
	return b
}
