// Package events implements the paper's alarm aggregation and major-event
// detection (§6): alarms are grouped per AS with longest-prefix-match IP→AS
// mapping, each AS gets two severity time series (Σ d(∆) for delay alarms
// and Σ rᵢ for forwarding alarms), and peaks in the robust magnitude
// mag(X) = (X − median)/(1 + 1.4826·MAD) over a one-week sliding window
// (Eq 10) are reported as events.
package events

import (
	"fmt"
	"net/netip"
	"slices"
	"time"

	"pinpoint/internal/delay"
	"pinpoint/internal/forwarding"
	"pinpoint/internal/hash"
	"pinpoint/internal/ident"
	"pinpoint/internal/ipmap"
	"pinpoint/internal/timeseries"
)

// Config parameterizes the aggregator.
type Config struct {
	BinSize   time.Duration // must match the detectors'; default 1 hour
	Window    time.Duration // magnitude window; paper: one week
	Threshold float64       // |mag| at or above this is an event; default 10

	// Corroborate, when ≥ 2, enables the empathy-style corroboration pass
	// (see corroborate.go): an event is reported only when alarms from at
	// least this many distinct sources (links or probe ASes for delay,
	// implicated next-hop interfaces for forwarding) agree. 0 (the
	// default) keeps the paper's §6 behaviour exactly — magnitudes and
	// golden outputs are unchanged.
	Corroborate int
}

func (c Config) withDefaults() Config {
	if c.BinSize == 0 {
		c.BinSize = time.Hour
	}
	if c.Window == 0 {
		c.Window = 7 * 24 * time.Hour
	}
	if c.Threshold == 0 {
		c.Threshold = 10
	}
	return c
}

// Type distinguishes the two alarm families.
type Type int

// Event types.
const (
	DelayChange Type = iota
	ForwardingAnomaly
)

// String implements fmt.Stringer.
func (t Type) String() string {
	if t == DelayChange {
		return "delay-change"
	}
	return "forwarding-anomaly"
}

// Event is one detected major network disruption: a magnitude peak of one
// AS in one bin.
type Event struct {
	ASN       ipmap.ASN
	Bin       time.Time
	Type      Type
	Magnitude float64
}

// Aggregator groups alarms per AS and maintains the severity series.
// It is not safe for concurrent use.
type Aggregator struct {
	cfg   Config
	table *ipmap.Table

	// reg + cache, when set via UseRegistry, short-circuit the per-alarm
	// radix-trie walk: alarm addresses were interned during extraction, so
	// AddrID→ASN resolves through a dense memo after the first lookup.
	reg   *ident.Registry
	cache *ipmap.Cache

	delaySeries map[ipmap.ASN]*timeseries.Series
	fwdSeries   map[ipmap.ASN]*timeseries.Series

	firstBin time.Time
	haveBin  bool

	// inc is the incrementally maintained magnitude/event read model
	// advanced by CloseBins (see incremental.go). The query methods answer
	// from it when it covers the requested range.
	inc incState

	// corr is the corroboration source ledger, populated only when
	// cfg.Corroborate ≥ 2 (see corroborate.go).
	corr map[corrTypeKey]*corrSet

	// segmentBacked marks durable history as immutable and splits query
	// fallbacks at the region boundary (see restore.go); droppedStale
	// counts the out-of-order mutations rejected under that contract.
	segmentBacked bool
	droppedStale  int
}

// NewAggregator returns an Aggregator resolving addresses with the given
// LPM table (the simulator's announced prefixes, standing in for BGP data).
func NewAggregator(cfg Config, table *ipmap.Table) *Aggregator {
	return &Aggregator{
		cfg:         cfg.withDefaults(),
		table:       table,
		delaySeries: make(map[ipmap.ASN]*timeseries.Series),
		fwdSeries:   make(map[ipmap.ASN]*timeseries.Series),
	}
}

// Config returns the effective configuration.
func (a *Aggregator) Config() Config { return a.cfg }

// UseRegistry attaches the pipeline's identity layer: subsequent IP→AS
// resolutions are memoized per interned AddrID (one trie walk per distinct
// address ever, instead of one per alarm). core.New wires this up; callers
// constructing a bare Aggregator may skip it and keep the direct path.
func (a *Aggregator) UseRegistry(reg *ident.Registry) {
	a.reg = reg
	a.cache = ipmap.NewCache(a.table)
}

// lookupASN resolves an address to its AS, through the ID-memoized cache
// when a registry is attached (falling back to the trie for addresses the
// pipeline never interned).
func (a *Aggregator) lookupASN(addr netip.Addr) (ipmap.ASN, bool) {
	if a.reg != nil {
		if id, ok := a.reg.LookupAddr(addr); ok {
			return a.cache.Lookup(uint32(id), addr)
		}
	}
	return a.table.Lookup(addr)
}

// ObserveBin tells the aggregator that analysis covered the bin containing
// t, whether or not any alarm fired. Magnitude windows extend back to the
// first observed bin with zeros, so an AS whose very first alarm is the
// event still scores it against a week of quiet — without this, the first
// alarm of a series would always score zero.
func (a *Aggregator) ObserveBin(t time.Time) {
	b := timeseries.Bin(t, a.cfg.BinSize)
	if !a.haveBin || b.Before(a.firstBin) {
		if a.haveBin && a.segmentBacked && b.Before(a.firstBin) {
			// Segment-backed history is immutable: the span start is
			// durable and cannot move backwards.
			a.droppedStale++
			return
		}
		// Moving the span start below the incremental region's origin
		// changes every window; the region must be rebuilt.
		if a.inc.advanced && b.Before(a.inc.start) {
			a.inc.stale = true
		}
		a.firstBin = b
		a.haveBin = true
	}
}

func (a *Aggregator) spanStart(s *timeseries.Series) time.Time {
	if a.haveBin {
		return a.firstBin
	}
	first, _, ok := s.Span()
	if !ok {
		return time.Time{}
	}
	return first
}

// AddDelayAlarm accumulates a delay-change alarm: its deviation d(∆) is
// added to the series of every AS owning one of the link's two addresses
// ("alarms with IP addresses from different ASs are assigned to multiple
// groups", §6).
func (a *Aggregator) AddDelayAlarm(al delay.Alarm) {
	b := timeseries.Bin(al.Bin, a.cfg.BinSize)
	if a.rejectStaleMutation(b) {
		return
	}
	a.markMutation(b)
	asns := a.asnsOf(al.Link.Near, al.Link.Far)
	for _, asn := range asns {
		a.series(a.delaySeries, asn).Add(al.Bin, al.Deviation)
		if a.cfg.Corroborate >= 2 {
			// One delay alarm aggregates many probes over one link: the
			// link is the corroboration source and the alarm's probe-AS
			// count is its own vantage diversity.
			a.recordSource(asn, DelayChange, al.Bin,
				hash.Fold(0xd31a_11, corrAddrHash(al.Link.Near), corrAddrHash(al.Link.Far)),
				al.ASes, true)
		}
	}
}

// AddForwardingAlarm accumulates a forwarding alarm: each next hop's
// responsibility score is added to the next hop's AS series. Negative
// scores (devalued hops) and positive scores (newly used hops) cancel out
// when both hops sit in the same AS — the paper's intra-AS rerouting
// mitigation. The unresponsive bucket has no address and is skipped.
func (a *Aggregator) AddForwardingAlarm(al forwarding.Alarm) {
	b := timeseries.Bin(al.Bin, a.cfg.BinSize)
	if a.rejectStaleMutation(b) {
		return
	}
	a.markMutation(b)
	for _, h := range al.Hops {
		if h.Hop == forwarding.Unresponsive || !h.Hop.IsValid() {
			continue
		}
		asn, ok := a.lookupASN(h.Hop)
		if !ok {
			continue
		}
		a.series(a.fwdSeries, asn).Add(al.Bin, h.Responsibility)
		if a.cfg.Corroborate >= 2 {
			// The implicated next-hop interface is the corroboration
			// source — it is whose responsibility lands in this AS's
			// series. A genuine reroute spreads flows over several
			// distinct detour hops; a lying router's forged surge funnels
			// through its one stale address. Only newly-used (positive)
			// hops corroborate a surge; hops of either sign enter the
			// history ledger that backs dip corroboration.
			a.recordSource(asn, ForwardingAnomaly, al.Bin, corrAddrHash(h.Hop), 1, h.Responsibility > 0)
		}
	}
}

func (a *Aggregator) asnsOf(addrs ...netip.Addr) []ipmap.ASN {
	var out []ipmap.ASN
	for _, addr := range addrs {
		asn, ok := a.lookupASN(addr)
		if !ok {
			continue
		}
		dup := false
		for _, seen := range out {
			if seen == asn {
				dup = true
				break
			}
		}
		if !dup {
			out = append(out, asn)
		}
	}
	return out
}

func (a *Aggregator) series(m map[ipmap.ASN]*timeseries.Series, asn ipmap.ASN) *timeseries.Series {
	s := m[asn]
	if s == nil {
		s = timeseries.New(a.cfg.BinSize)
		m[asn] = s
	}
	return s
}

// ASes returns every AS with at least one alarm, sorted.
func (a *Aggregator) ASes() []ipmap.ASN {
	seen := make(map[ipmap.ASN]struct{})
	for asn := range a.delaySeries {
		seen[asn] = struct{}{}
	}
	for asn := range a.fwdSeries {
		seen[asn] = struct{}{}
	}
	out := make([]ipmap.ASN, 0, len(seen))
	for asn := range seen {
		out = append(out, asn)
	}
	slices.Sort(out) // ASNs are unique map keys: total order, deterministic
	return out
}

// DelaySeries returns the Σ d(∆) series of an AS (nil when it has none).
func (a *Aggregator) DelaySeries(asn ipmap.ASN) *timeseries.Series { return a.delaySeries[asn] }

// ForwardingSeries returns the Σ rᵢ series of an AS (nil when it has none).
func (a *Aggregator) ForwardingSeries(asn ipmap.ASN) *timeseries.Series { return a.fwdSeries[asn] }

// DelayMagnitude computes the Eq 10 magnitude of an AS's delay series over
// [from, to). Missing bins count as zero (a quiet hour is "no alarms").
func (a *Aggregator) DelayMagnitude(asn ipmap.ASN, from, to time.Time) []timeseries.Point {
	s := a.delaySeries[asn]
	if s == nil {
		return nil
	}
	if pts, ok := a.cachedMagnitude(a.inc.delayMag[asn], from, to); ok {
		return pts
	}
	if a.segmentBacked && a.inc.advanced {
		return a.durableMagnitude(s, a.inc.delayMag[asn], from, to)
	}
	return s.MagnitudeSince(a.spanStart(s), from, to, a.cfg.Window)
}

// ForwardingMagnitude computes the Eq 10 magnitude of an AS's forwarding
// series over [from, to).
func (a *Aggregator) ForwardingMagnitude(asn ipmap.ASN, from, to time.Time) []timeseries.Point {
	s := a.fwdSeries[asn]
	if s == nil {
		return nil
	}
	if pts, ok := a.cachedMagnitude(a.inc.fwdMag[asn], from, to); ok {
		return pts
	}
	if a.segmentBacked && a.inc.advanced {
		return a.durableMagnitude(s, a.inc.fwdMag[asn], from, to)
	}
	return s.MagnitudeSince(a.spanStart(s), from, to, a.cfg.Window)
}

// Events scans every AS's two magnitude series over [from, to) and returns
// the bins where |mag| ≥ Threshold, sorted by time then AS. Delay events
// trigger on positive peaks (worse delays); forwarding events trigger on
// both signs, matching the heavy left tail of Fig 5b.
func (a *Aggregator) Events(from, to time.Time) []Event {
	if a.covers(to) {
		return a.incrementalEvents(from, to)
	}
	if a.segmentBacked && a.inc.advanced && !a.inc.stale {
		// Segment-backed: the region answers its part (cached events were
		// derived from complete data at close time); only bins at or
		// beyond validThrough recompute, and their windows stay within
		// the retained raw horizon.
		head := a.incrementalEvents(from, a.inc.validThrough)
		tailFrom := from
		if tailFrom.Before(a.inc.validThrough) {
			tailFrom = a.inc.validThrough
		}
		return append(head, a.recomputeEvents(tailFrom, to)...)
	}
	return a.recomputeEvents(from, to)
}

// recomputeEvents is the original full scan: every AS's two magnitude
// series over [from, to), thresholded and sorted.
func (a *Aggregator) recomputeEvents(from, to time.Time) []Event {
	var out []Event
	for _, asn := range a.ASes() {
		for _, p := range a.DelayMagnitude(asn, from, to) {
			if p.V >= a.cfg.Threshold && a.corroborated(asn, DelayChange, p.T, p.V) {
				out = append(out, Event{ASN: asn, Bin: p.T, Type: DelayChange, Magnitude: p.V})
			}
		}
		for _, p := range a.ForwardingMagnitude(asn, from, to) {
			if (p.V >= a.cfg.Threshold || p.V <= -a.cfg.Threshold) && a.corroborated(asn, ForwardingAnomaly, p.T, p.V) {
				out = append(out, Event{ASN: asn, Bin: p.T, Type: ForwardingAnomaly, Magnitude: p.V})
			}
		}
	}
	// (Bin, ASN, Type) is a total order here — each AS contributes at most
	// one event per (bin, type) — so the type-specialized unstable sort
	// needs no further tiebreak to be deterministic.
	slices.SortFunc(out, func(a, b Event) int {
		if c := a.Bin.Compare(b.Bin); c != 0 {
			return c
		}
		if a.ASN != b.ASN {
			if a.ASN < b.ASN {
				return -1
			}
			return 1
		}
		return int(a.Type) - int(b.Type)
	})
	return out
}

// String implements fmt.Stringer.
func (e Event) String() string {
	return fmt.Sprintf("%s %s %s mag=%.1f", e.Bin.Format("2006-01-02T15:04"), e.ASN, e.Type, e.Magnitude)
}
