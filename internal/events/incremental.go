package events

// Incremental magnitude/event maintenance: the serving layer (§8) closes
// analysis bins one at a time and needs, after each close, the newly
// detected events and the extended per-AS magnitude series — without
// recomputing every AS over every bin the way Events does. CloseBins
// advances a processed region [start, validThrough) bin by bin, appending
// to per-AS magnitude slices and to one event list; the appended storage is
// never mutated afterwards, so callers may publish prefixes of these slices
// to concurrent readers while the aggregator keeps appending behind them.
//
// The query methods (Events, DelayMagnitude, ForwardingMagnitude) answer
// from the incremental region whenever it covers the requested range and
// nothing invalidated it; otherwise they fall back to the original full
// recomputation. Each incremental point is produced by the same
// timeseries.MagnitudeSince code the recomputation uses, so both paths are
// bit-identical.

import (
	"sort"
	"time"

	"pinpoint/internal/ipmap"
	"pinpoint/internal/timeseries"
)

// incState is the incrementally maintained read model. All slices are
// append-only while the state stays valid; a staleness rebuild allocates
// fresh storage so previously published prefixes stay intact.
type incState struct {
	advanced     bool
	stale        bool   // an out-of-order mutation landed inside the region
	gen          uint64 // bumped on every staleness rebuild
	start        time.Time
	validThrough time.Time // exclusive end of the processed region

	delayMag map[ipmap.ASN][]timeseries.Point
	fwdMag   map[ipmap.ASN][]timeseries.Point
	events   []Event
}

// markMutation records a series mutation at bin b: anything landing inside
// the already-processed region (or moving the span start backwards)
// invalidates the incremental state. Chronological pipelines never trigger
// this; direct out-of-order use of the aggregator falls back to the
// recomputation paths until the next CloseBins rebuilds.
func (a *Aggregator) markMutation(b time.Time) {
	if !a.inc.advanced || a.inc.stale {
		return
	}
	if b.Before(a.inc.validThrough) || b.Before(a.inc.start) {
		a.inc.stale = true
	}
}

// CloseBins advances the incremental region through every bin strictly
// before upTo's bin, computing each covered AS's magnitude at each bin and
// collecting threshold crossings. It returns the events appended by this
// call, in (bin, AS, type) order. Call it after all alarms of the closing
// bin have been added (core.Analyzer.OnBinClose fires at exactly that
// point).
//
// Caution: after a staleness rebuild every event is "appended by this
// call", so the return value is the full re-derived history, not a delta.
// Consumers mirroring the list incrementally should use IncrementalEvents
// and resynchronize when its generation changes (serve.Publisher does).
func (a *Aggregator) CloseBins(upTo time.Time) []Event {
	return a.CloseBinsRecord(upTo, nil)
}

// CloseBinsRecord is CloseBins with durability capture: when d is non-nil
// it is reset and filled with everything this advance contributed to the
// read model — the appended per-AS magnitude points (including zero
// backfill) and the raw per-AS series sums of the processed bins, which a
// restart needs to keep the magnitude windows exact. Raw sums are final
// at close time: later writes into a closed bin would be out-of-order
// mutations, which segment-backed aggregators reject.
func (a *Aggregator) CloseBinsRecord(upTo time.Time, d *CloseDelta) []Event {
	end := timeseries.Bin(upTo, a.cfg.BinSize)
	if d != nil {
		*d = CloseDelta{FirstBin: a.firstBin}
	}
	if a.inc.stale {
		// Rebuild from scratch with fresh storage: published prefixes of
		// the old slices must keep their contents. Bumping the generation
		// tells append-only mirrors (IncrementalEvents consumers) that
		// their copy of the history is void.
		if end.Before(a.inc.validThrough) {
			end = a.inc.validThrough
		}
		a.inc = incState{gen: a.inc.gen + 1}
	}
	if !a.haveBin {
		// Nothing observed yet (or a bare aggregator fed only alarms):
		// leave the incremental region unopened and keep the recompute
		// paths authoritative.
		return nil
	}
	if !a.inc.advanced {
		a.inc.advanced = true
		a.inc.start = a.firstBin
		a.inc.validThrough = a.firstBin
		a.inc.delayMag = make(map[ipmap.ASN][]timeseries.Point)
		a.inc.fwdMag = make(map[ipmap.ASN][]timeseries.Point)
	}
	if !end.After(a.inc.validThrough) {
		return nil
	}
	asns := a.ASes()
	firstNew := len(a.inc.events)
	for t := a.inc.validThrough; t.Before(end); t = t.Add(a.cfg.BinSize) {
		for _, asn := range asns {
			if s := a.delaySeries[asn]; s != nil {
				v := a.magAt(s, t)
				old := len(a.inc.delayMag[asn])
				a.inc.delayMag[asn] = a.appendMag(a.inc.delayMag[asn], t, v)
				if d != nil {
					d.DelayMag = appendASPoints(d.DelayMag, asn, a.inc.delayMag[asn][old:])
					if rv, ok := s.Value(t); ok {
						d.DelayRaw = append(d.DelayRaw, ASPoint{ASN: asn, T: t, V: rv})
					}
				}
				if v >= a.cfg.Threshold && a.corroborated(asn, DelayChange, t, v) {
					a.inc.events = append(a.inc.events, Event{ASN: asn, Bin: t, Type: DelayChange, Magnitude: v})
				}
			}
			if s := a.fwdSeries[asn]; s != nil {
				v := a.magAt(s, t)
				old := len(a.inc.fwdMag[asn])
				a.inc.fwdMag[asn] = a.appendMag(a.inc.fwdMag[asn], t, v)
				if d != nil {
					d.FwdMag = appendASPoints(d.FwdMag, asn, a.inc.fwdMag[asn][old:])
					if rv, ok := s.Value(t); ok {
						d.FwdRaw = append(d.FwdRaw, ASPoint{ASN: asn, T: t, V: rv})
					}
				}
				if (v >= a.cfg.Threshold || v <= -a.cfg.Threshold) && a.corroborated(asn, ForwardingAnomaly, t, v) {
					a.inc.events = append(a.inc.events, Event{ASN: asn, Bin: t, Type: ForwardingAnomaly, Magnitude: v})
				}
			}
		}
	}
	a.inc.validThrough = end
	return a.inc.events[firstNew:len(a.inc.events):len(a.inc.events)]
}

// magAt computes one magnitude point through the exact code path the full
// recomputation uses, so incremental and recomputed values are identical to
// the last bit.
func (a *Aggregator) magAt(s *timeseries.Series, t time.Time) float64 {
	pts := s.MagnitudeSince(a.firstBin, t, t.Add(a.cfg.BinSize), a.cfg.Window)
	return pts[0].V
}

// appendMag appends the magnitude point for bin t to an AS's cached series,
// first backfilling any bins from before the AS's first alarm. A series
// that did not exist yet is all-zero over those windows, and the magnitude
// of zero against an all-zero window is exactly (0−0)/(1+0) = 0 — the same
// value the recomputation produces — so the backfill is pure zeros.
func (a *Aggregator) appendMag(pts []timeseries.Point, t time.Time, v float64) []timeseries.Point {
	for next := a.inc.start.Add(time.Duration(len(pts)) * a.cfg.BinSize); next.Before(t); next = next.Add(a.cfg.BinSize) {
		pts = append(pts, timeseries.Point{T: next})
	}
	return append(pts, timeseries.Point{T: t, V: v})
}

// covers reports whether the incremental region can answer a query ending
// at to (exclusive). Bins before the region's start carry no events and no
// magnitudes under the recompute semantics either (their windows are empty,
// yielding NaN), so only the upper bound constrains event coverage.
func (a *Aggregator) covers(to time.Time) bool {
	return a.inc.advanced && !a.inc.stale && !timeseries.Bin(to, a.cfg.BinSize).After(a.inc.validThrough)
}

// incrementalEvents answers Events(from, to) from the maintained event
// list: the list is ordered by (bin, AS, type) — the same order the
// recomputation sorts into — so the answer is one binary-searched subrange.
func (a *Aggregator) incrementalEvents(from, to time.Time) []Event {
	f := timeseries.Bin(from, a.cfg.BinSize)
	t := timeseries.Bin(to, a.cfg.BinSize)
	evs := a.inc.events
	lo := sort.Search(len(evs), func(i int) bool { return !evs[i].Bin.Before(f) })
	hi := sort.Search(len(evs), func(i int) bool { return !evs[i].Bin.Before(t) })
	if lo == hi {
		return nil
	}
	out := make([]Event, hi-lo)
	copy(out, evs[lo:hi])
	return out
}

// cachedMagnitude answers a magnitude query from an AS's cached series when
// the incremental region covers [from, to). ok=false sends the caller to
// the recomputation path.
func (a *Aggregator) cachedMagnitude(pts []timeseries.Point, from, to time.Time) ([]timeseries.Point, bool) {
	if !a.inc.advanced || a.inc.stale {
		return nil, false
	}
	f := timeseries.Bin(from, a.cfg.BinSize)
	t := timeseries.Bin(to, a.cfg.BinSize)
	if f.Before(a.inc.start) || t.After(a.inc.validThrough) {
		return nil, false
	}
	if !f.Before(t) {
		return nil, true // empty range, as the recomputation returns
	}
	i := int(f.Sub(a.inc.start) / a.cfg.BinSize)
	j := int(t.Sub(a.inc.start) / a.cfg.BinSize)
	if j > len(pts) {
		// The AS gained its series after the last CloseBins; its cache has
		// not caught up yet.
		return nil, false
	}
	out := make([]timeseries.Point, j-i)
	copy(out, pts[i:j])
	return out, true
}

// Generation returns the incremental region's rebuild generation: bumped
// by every staleness rebuild and by RestoreIncremental at boot. The
// replication feed (serve) stamps it on every delta so mirrors — local or
// remote — know when their append-only copy of the history is void.
func (a *Aggregator) Generation() uint64 { return a.inc.gen }

// IncrementalEvents returns the incrementally accumulated event list as a
// fixed-length prefix safe to publish to concurrent readers, plus the
// rebuild generation. The list is append-only within one generation; a
// staleness rebuild discards it and bumps the generation, so a consumer
// mirroring the list must restart from scratch when gen changes.
func (a *Aggregator) IncrementalEvents() (evs []Event, gen uint64) {
	e := a.inc.events
	return e[:len(e):len(e)], a.inc.gen
}

// MagnitudeSnapshot returns a point-in-time view of the incrementally
// maintained magnitude read model: fresh maps whose slices are
// fixed-length prefixes of the aggregator's append-only storage, plus the
// region bounds (the event list is exposed by IncrementalEvents). The
// returned data is safe to hand to concurrent readers while the analysis
// goroutine keeps advancing the aggregator — later CloseBins calls only
// append past the returned lengths (or allocate fresh storage on a
// staleness rebuild). ok is false when the incremental region is unopened
// or invalidated.
func (a *Aggregator) MagnitudeSnapshot() (delayMag, fwdMag map[ipmap.ASN][]timeseries.Point, start, validThrough time.Time, ok bool) {
	if !a.inc.advanced || a.inc.stale {
		return nil, nil, time.Time{}, time.Time{}, false
	}
	delayMag = make(map[ipmap.ASN][]timeseries.Point, len(a.inc.delayMag))
	for asn, pts := range a.inc.delayMag {
		delayMag[asn] = pts[:len(pts):len(pts)]
	}
	fwdMag = make(map[ipmap.ASN][]timeseries.Point, len(a.inc.fwdMag))
	for asn, pts := range a.inc.fwdMag {
		fwdMag[asn] = pts[:len(pts):len(pts)]
	}
	return delayMag, fwdMag, a.inc.start, a.inc.validThrough, true
}
