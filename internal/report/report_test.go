package report

import (
	"math"
	"strings"
	"testing"
	"time"

	"pinpoint/internal/timeseries"
)

func TestTable(t *testing.T) {
	out := Table([][]string{
		{"link", "median", "ref"},
		{"a>b", "5.30", "5.25"},
	})
	if !strings.Contains(out, "link") || !strings.Contains(out, "a>b") {
		t.Errorf("table output:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Errorf("table lines = %d, want 3 (header, rule, row)", len(lines))
	}
}

func TestSparkline(t *testing.T) {
	s := Sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7})
	if len([]rune(s)) != 8 {
		t.Errorf("sparkline runes = %d", len([]rune(s)))
	}
	if !strings.ContainsRune(s, '▁') || !strings.ContainsRune(s, '█') {
		t.Errorf("sparkline missing extremes: %q", s)
	}
	if Sparkline(nil) != "" {
		t.Error("empty sparkline should be empty string")
	}
	if got := Sparkline([]float64{5, 5, 5}); got != "▁▁▁" {
		t.Errorf("flat sparkline = %q", got)
	}
	withNaN := Sparkline([]float64{1, math.NaN(), 3})
	if !strings.Contains(withNaN, " ") {
		t.Errorf("NaN should render as space: %q", withNaN)
	}
}

func TestTimeSeries(t *testing.T) {
	t0 := time.Date(2015, 6, 12, 0, 0, 0, 0, time.UTC)
	var pts []timeseries.Point
	for i := 0; i < 24; i++ {
		v := 1.0
		if i == 12 {
			v = 100
		}
		pts = append(pts, timeseries.Point{T: t0.Add(time.Duration(i) * time.Hour), V: v})
	}
	out := TimeSeries("AS3549 delay magnitude", pts, 5)
	if !strings.Contains(out, "AS3549") || !strings.Contains(out, "*") {
		t.Errorf("plot:\n%s", out)
	}
	if !strings.Contains(out, "100.00") {
		t.Errorf("plot missing max label:\n%s", out)
	}
	if !strings.Contains(out, "24 bins") {
		t.Errorf("plot missing bin count:\n%s", out)
	}
	empty := TimeSeries("x", nil, 5)
	if !strings.Contains(empty, "no data") {
		t.Error("empty plot should say so")
	}
}

func TestHistogram(t *testing.T) {
	out := Histogram("mags", []float64{0, 0.1, 0.2, 0.5, 0.9, 5}, 5)
	if !strings.Contains(out, "#") {
		t.Errorf("histogram has no bars:\n%s", out)
	}
	if !strings.Contains(Histogram("x", nil, 5), "no data") {
		t.Error("empty histogram should say so")
	}
}

func TestFormatters(t *testing.T) {
	if Percent(0.97) != "97.0%" {
		t.Errorf("Percent = %q", Percent(0.97))
	}
	if MS(5.346) != "5.35ms" {
		t.Errorf("MS = %q", MS(5.346))
	}
}
