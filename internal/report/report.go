// Package report renders experiment output as text: aligned tables, ASCII
// time-series plots and sparklines, and distribution plots. The experiment
// harnesses use it to print the "same rows/series" each paper figure shows,
// in a terminal instead of matplotlib.
package report

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"text/tabwriter"

	"pinpoint/internal/timeseries"
)

// Table renders rows with aligned columns. The first row is the header.
func Table(rows [][]string) string {
	var sb strings.Builder
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	for i, row := range rows {
		fmt.Fprintln(w, strings.Join(row, "\t"))
		if i == 0 {
			sep := make([]string, len(row))
			for j, cell := range row {
				sep[j] = strings.Repeat("-", len(cell))
			}
			fmt.Fprintln(w, strings.Join(sep, "\t"))
		}
	}
	w.Flush()
	return sb.String()
}

var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders values as a compact unicode bar series, mapping the
// value range onto eight block heights. NaNs render as spaces.
func Sparkline(values []float64) string {
	if len(values) == 0 {
		return ""
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		if math.IsNaN(v) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if math.IsInf(lo, 1) {
		return strings.Repeat(" ", len(values))
	}
	span := hi - lo
	var sb strings.Builder
	for _, v := range values {
		if math.IsNaN(v) {
			sb.WriteByte(' ')
			continue
		}
		idx := 0
		if span > 0 {
			idx = int((v - lo) / span * float64(len(sparkRunes)-1))
		}
		sb.WriteRune(sparkRunes[idx])
	}
	return sb.String()
}

// TimeSeries renders points as a fixed-height ASCII chart with a labeled
// value axis; the x axis is the bin sequence. Height must be ≥ 2.
func TimeSeries(title string, pts []timeseries.Point, height int) string {
	if height < 2 {
		height = 2
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	if len(pts) == 0 {
		sb.WriteString("  (no data)\n")
		return sb.String()
	}
	vals := timeseries.Values(pts)
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if math.IsInf(lo, 1) {
		sb.WriteString("  (all NaN)\n")
		return sb.String()
	}
	if hi == lo {
		hi = lo + 1
	}
	width := len(vals)
	grid := make([][]byte, height)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", width))
	}
	for x, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		y := int((v - lo) / (hi - lo) * float64(height-1))
		grid[height-1-y][x] = '*'
	}
	for i, row := range grid {
		label := ""
		switch i {
		case 0:
			label = fmt.Sprintf("%10.2f", hi)
		case height - 1:
			label = fmt.Sprintf("%10.2f", lo)
		default:
			label = strings.Repeat(" ", 10)
		}
		fmt.Fprintf(&sb, "%s |%s\n", label, string(row))
	}
	fmt.Fprintf(&sb, "%s +%s\n", strings.Repeat(" ", 10), strings.Repeat("-", width))
	fmt.Fprintf(&sb, "%s  %s .. %s (%d bins)\n", strings.Repeat(" ", 10),
		pts[0].T.Format("01-02 15:04"), pts[len(pts)-1].T.Format("01-02 15:04"), len(pts))
	return sb.String()
}

// Histogram renders value counts over n buckets between min and max.
func Histogram(title string, values []float64, buckets int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s\n", title)
	if len(values) == 0 || buckets < 1 {
		sb.WriteString("  (no data)\n")
		return sb.String()
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range values {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi == lo {
		hi = lo + 1
	}
	counts := make([]int, buckets)
	for _, v := range values {
		i := int((v - lo) / (hi - lo) * float64(buckets))
		if i >= buckets {
			i = buckets - 1
		}
		counts[i]++
	}
	maxC := 0
	for _, c := range counts {
		if c > maxC {
			maxC = c
		}
	}
	for i, c := range counts {
		bLo := lo + (hi-lo)*float64(i)/float64(buckets)
		bar := ""
		if maxC > 0 {
			bar = strings.Repeat("#", c*50/maxC)
		}
		fmt.Fprintf(&sb, "%12.2f |%-50s %d\n", bLo, bar, c)
	}
	return sb.String()
}

// Percent formats a fraction as a percentage with one decimal. strconv
// instead of fmt: these formatters run once per table cell in the
// experiment harnesses and the Sprintf reflection path allocates several
// times per call.
func Percent(frac float64) string {
	return strconv.FormatFloat(frac*100, 'f', 1, 64) + "%"
}

// MS formats a millisecond value.
func MS(v float64) string {
	return strconv.FormatFloat(v, 'f', 2, 64) + "ms"
}
