package timeseries

import (
	"math"
	"testing"
	"time"
)

var t0 = time.Date(2015, 11, 30, 0, 0, 0, 0, time.UTC)

func TestBin(t *testing.T) {
	in := time.Date(2015, 11, 30, 7, 42, 13, 500, time.UTC)
	want := time.Date(2015, 11, 30, 7, 0, 0, 0, time.UTC)
	if got := Bin(in, time.Hour); !got.Equal(want) {
		t.Errorf("Bin = %v, want %v", got, want)
	}
	// Non-UTC input normalizes to UTC.
	loc := time.FixedZone("X", 3600)
	if got := Bin(in.In(loc), time.Hour); !got.Equal(want) {
		t.Errorf("Bin non-UTC = %v, want %v", got, want)
	}
}

func TestSeriesAddAccumulates(t *testing.T) {
	s := New(time.Hour)
	s.Add(t0.Add(10*time.Minute), 1.5)
	s.Add(t0.Add(50*time.Minute), 2.5)
	s.Add(t0.Add(70*time.Minute), 7)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if v, ok := s.Value(t0); !ok || v != 4 {
		t.Errorf("bin0 = %v/%v, want 4", v, ok)
	}
	if v, ok := s.Value(t0.Add(time.Hour)); !ok || v != 7 {
		t.Errorf("bin1 = %v/%v, want 7", v, ok)
	}
	if _, ok := s.Value(t0.Add(5 * time.Hour)); ok {
		t.Error("unwritten bin should not exist")
	}
}

func TestSeriesSet(t *testing.T) {
	s := New(time.Hour)
	s.Set(t0, 5)
	s.Set(t0.Add(time.Minute), 9)
	if v, _ := s.Value(t0); v != 9 {
		t.Errorf("Set should replace, got %v", v)
	}
}

func TestPointsSorted(t *testing.T) {
	s := New(time.Hour)
	s.Add(t0.Add(3*time.Hour), 3)
	s.Add(t0, 1)
	s.Add(t0.Add(time.Hour), 2)
	pts := s.Points()
	for i := 1; i < len(pts); i++ {
		if pts[i].T.Before(pts[i-1].T) {
			t.Fatalf("Points not chronological: %v", pts)
		}
	}
}

func TestDense(t *testing.T) {
	s := New(time.Hour)
	s.Add(t0.Add(2*time.Hour), 5)
	pts := s.Dense(t0, t0.Add(4*time.Hour))
	if len(pts) != 4 {
		t.Fatalf("Dense len = %d, want 4", len(pts))
	}
	want := []float64{0, 0, 5, 0}
	for i, p := range pts {
		if p.V != want[i] {
			t.Errorf("Dense[%d] = %v, want %v", i, p.V, want[i])
		}
	}
}

func TestSpan(t *testing.T) {
	s := New(time.Hour)
	if _, _, ok := s.Span(); ok {
		t.Error("empty Span should be !ok")
	}
	s.Add(t0.Add(5*time.Hour), 1)
	s.Add(t0, 1)
	first, last, ok := s.Span()
	if !ok || !first.Equal(t0) || !last.Equal(t0.Add(5*time.Hour)) {
		t.Errorf("Span = %v..%v/%v", first, last, ok)
	}
}

func TestMagnitudeFlatSeriesIsZeroish(t *testing.T) {
	s := New(time.Hour)
	for i := 0; i < 24*7; i++ {
		s.Add(t0.Add(time.Duration(i)*time.Hour), 1)
	}
	mags := s.Magnitude(t0.Add(24*time.Hour), t0.Add(48*time.Hour), 7*24*time.Hour)
	for _, m := range mags {
		if math.Abs(m.V) > 1e-9 {
			t.Fatalf("flat series magnitude = %v at %v, want 0", m.V, m.T)
		}
	}
}

func TestMagnitudePeakDetection(t *testing.T) {
	s := New(time.Hour)
	// A quiet week with small background noise, then a huge spike.
	for i := 0; i < 24*7; i++ {
		s.Add(t0.Add(time.Duration(i)*time.Hour), float64(i%3))
	}
	spikeT := t0.Add(24 * 7 * time.Hour)
	s.Add(spikeT, 500)
	mags := s.Magnitude(spikeT, spikeT.Add(time.Hour), 7*24*time.Hour)
	if len(mags) != 1 {
		t.Fatalf("got %d magnitude points", len(mags))
	}
	if mags[0].V < 50 {
		t.Errorf("spike magnitude = %v, want large positive", mags[0].V)
	}
}

func TestMagnitudeNegativePeak(t *testing.T) {
	s := New(time.Hour)
	for i := 0; i < 24*7; i++ {
		s.Add(t0.Add(time.Duration(i)*time.Hour), 0)
	}
	dipT := t0.Add(24 * 7 * time.Hour)
	s.Add(dipT, -30) // e.g. sum of negative responsibility scores
	mags := s.Magnitude(dipT, dipT.Add(time.Hour), 7*24*time.Hour)
	if mags[0].V > -20 {
		t.Errorf("dip magnitude = %v, want strongly negative", mags[0].V)
	}
}

func TestMagnitudeQuietWeekDense(t *testing.T) {
	// A single alarm after a silent week must be scored against a dense
	// (mostly zero) window, not a one-point window.
	s := New(time.Hour)
	s.Add(t0, 0) // establish series start
	alarmT := t0.Add(7 * 24 * time.Hour)
	s.Add(alarmT, 10)
	mags := s.Magnitude(alarmT, alarmT.Add(time.Hour), 7*24*time.Hour)
	if mags[0].V < 5 {
		t.Errorf("magnitude = %v, want ≈ 10 (window median/MAD ≈ 0)", mags[0].V)
	}
}

func TestValuesAndExtremes(t *testing.T) {
	pts := []Point{{t0, 3}, {t0.Add(time.Hour), -5}, {t0.Add(2 * time.Hour), 8}}
	vs := Values(pts)
	if len(vs) != 3 || vs[1] != -5 {
		t.Errorf("Values = %v", vs)
	}
	mx, ok := MaxPoint(pts)
	if !ok || mx.V != 8 {
		t.Errorf("MaxPoint = %+v", mx)
	}
	mn, ok := MinPoint(pts)
	if !ok || mn.V != -5 {
		t.Errorf("MinPoint = %+v", mn)
	}
	if _, ok := MaxPoint(nil); ok {
		t.Error("MaxPoint(nil) should be !ok")
	}
	if _, ok := MinPoint(nil); ok {
		t.Error("MinPoint(nil) should be !ok")
	}
}
