package timeseries

import (
	"testing"
	"time"
)

func TestMagnitudeSinceSpanStart(t *testing.T) {
	s := New(time.Hour)
	// The series' first written point is the event itself — with a span
	// start a week earlier, the window behind it is dense zeros and the
	// event scores high; with the series' own (event-time) span it scores
	// zero.
	eventT := t0.Add(7 * 24 * time.Hour)
	s.Add(eventT, 50)

	own := s.Magnitude(eventT, eventT.Add(time.Hour), 7*24*time.Hour)
	if len(own) != 1 || own[0].V != 0 {
		t.Errorf("own-span magnitude = %+v, want 0 (single-point window)", own)
	}

	since := s.MagnitudeSince(t0, eventT, eventT.Add(time.Hour), 7*24*time.Hour)
	if len(since) != 1 || since[0].V < 25 {
		t.Errorf("span-start magnitude = %+v, want large", since)
	}
}

func TestMagnitudeSinceWindowClamp(t *testing.T) {
	s := New(time.Hour)
	for i := 0; i < 48; i++ {
		s.Add(t0.Add(time.Duration(i)*time.Hour), 1)
	}
	// Span start after the data begins: window must not reach before it.
	spanStart := t0.Add(24 * time.Hour)
	pts := s.MagnitudeSince(spanStart, t0.Add(30*time.Hour), t0.Add(31*time.Hour), 7*24*time.Hour)
	if len(pts) != 1 {
		t.Fatalf("points = %d", len(pts))
	}
	// Window = bins 24..30, all value 1 → magnitude 0.
	if pts[0].V != 0 {
		t.Errorf("magnitude = %v, want 0 over constant clamped window", pts[0].V)
	}
}
