// Package timeseries provides the time-binning and sliding-window machinery
// shared by the detectors: truncating timestamps to analysis bins (1 hour in
// the paper), accumulating per-bin values into series, and computing the
// one-week sliding median/MAD magnitude of §6 (Eq 10).
package timeseries

import (
	"slices"
	"time"

	"pinpoint/internal/stats"
)

// Bin truncates t to the start of its bin of the given size (UTC).
func Bin(t time.Time, size time.Duration) time.Time {
	return t.UTC().Truncate(size)
}

// Point is one (time, value) pair of a series.
type Point struct {
	T time.Time
	V float64
}

// Series accumulates values into fixed-size time bins. Values added to the
// same bin are summed, matching the paper's per-AS "sum of d(∆)" and
// "sum of rᵢ" series. The zero value is not usable; construct with New.
type Series struct {
	binSize time.Duration
	points  []Point
	index   map[time.Time]int
}

// New returns an empty series with the given bin size.
func New(binSize time.Duration) *Series {
	return &Series{binSize: binSize, index: make(map[time.Time]int)}
}

// BinSize returns the series' bin duration.
func (s *Series) BinSize() time.Duration { return s.binSize }

// at returns a pointer to the value of the bin containing t, appending a
// zero-valued point when the bin has never been written. Add and Set share
// this lookup-or-append step; the pointer is only valid until the next
// mutation.
func (s *Series) at(t time.Time) *float64 {
	b := Bin(t, s.binSize)
	if i, ok := s.index[b]; ok {
		return &s.points[i].V
	}
	s.index[b] = len(s.points)
	s.points = append(s.points, Point{T: b})
	return &s.points[len(s.points)-1].V
}

// Add accumulates v into the bin containing t.
func (s *Series) Add(t time.Time, v float64) { *s.at(t) += v }

// Set replaces the value of the bin containing t.
func (s *Series) Set(t time.Time, v float64) { *s.at(t) = v }

// Value returns the value of the bin containing t; ok is false when the bin
// has never been written.
func (s *Series) Value(t time.Time) (v float64, ok bool) {
	i, ok := s.index[Bin(t, s.binSize)]
	if !ok {
		return 0, false
	}
	return s.points[i].V, true
}

// Len returns the number of non-empty bins.
func (s *Series) Len() int { return len(s.points) }

// EvictBefore drops every bin strictly before the bin containing t,
// reclaiming their memory. Bounded-memory pipelines call this once a
// bin's history is durable in the segment store and outside every window
// the magnitude math can still reach; queries that would touch evicted
// bins see zeros, exactly as if the bins were never written, so the
// caller is responsible for choosing an eviction horizon no live window
// crosses. Returns the number of bins dropped.
func (s *Series) EvictBefore(t time.Time) int {
	cut := Bin(t, s.binSize)
	kept := s.points[:0]
	for _, p := range s.points {
		if !p.T.Before(cut) {
			kept = append(kept, p)
		}
	}
	dropped := len(s.points) - len(kept)
	if dropped == 0 {
		return 0
	}
	// Zero the tail so evicted points are collectable, then rebuild the
	// bin index over the surviving prefix.
	tail := s.points[len(kept):]
	for i := range tail {
		tail[i] = Point{}
	}
	s.points = kept
	s.index = make(map[time.Time]int, len(kept))
	for i, p := range kept {
		s.index[p.T] = i
	}
	return dropped
}

// Points returns the series in chronological order. Bins that were never
// written do not appear; callers who need dense series use Dense.
func (s *Series) Points() []Point {
	out := make([]Point, len(s.points))
	copy(out, s.points)
	// Bin times are unique (one index entry per bin), so T alone is a total
	// order and the type-specialized unstable sort is deterministic.
	slices.SortFunc(out, func(a, b Point) int { return a.T.Compare(b.T) })
	return out
}

// Dense returns the series between from and to (inclusive start, exclusive
// end) with one point per bin, filling unwritten bins with zero. The paper's
// magnitude windows treat quiet hours as zero alarms, so densification
// matters: a week with one alarm must not look like a one-point window.
func (s *Series) Dense(from, to time.Time) []Point {
	from = Bin(from, s.binSize)
	to = Bin(to, s.binSize)
	var out []Point
	for t := from; t.Before(to); t = t.Add(s.binSize) {
		v, _ := s.Value(t)
		out = append(out, Point{T: t, V: v})
	}
	return out
}

// Span returns the first and last bin timestamps, or ok=false for an empty
// series.
func (s *Series) Span() (first, last time.Time, ok bool) {
	if len(s.points) == 0 {
		return time.Time{}, time.Time{}, false
	}
	first, last = s.points[0].T, s.points[0].T
	for _, p := range s.points[1:] {
		if p.T.Before(first) {
			first = p.T
		}
		if p.T.After(last) {
			last = p.T
		}
	}
	return first, last, true
}

// Magnitude computes the robust anomaly magnitude of every bin between from
// and to against a trailing window (one week in the paper): for each bin t,
//
//	mag(t) = (x_t − median(W)) / (1 + 1.4826·MAD(W))
//
// where W is the dense window (t−window, t]. Bins before `from` still
// contribute to windows. This is Eq 10 applied over the series.
func (s *Series) Magnitude(from, to time.Time, window time.Duration) []Point {
	first, _, haveSpan := s.Span()
	if !haveSpan {
		first = Bin(from, s.binSize)
	}
	return s.MagnitudeSince(first, from, to, window)
}

// MagnitudeSince is Magnitude with an explicit series start: windows are
// clamped so they never reach before spanStart, but bins between spanStart
// and the first written point count as zero. Aggregators that know the true
// analysis start use this so a series whose first alarm IS the event still
// gets a quiet (all-zero) window behind it.
func (s *Series) MagnitudeSince(spanStart, from, to time.Time, window time.Duration) []Point {
	from = Bin(from, s.binSize)
	to = Bin(to, s.binSize)
	spanStart = Bin(spanStart, s.binSize)
	var out []Point
	for t := from; t.Before(to); t = t.Add(s.binSize) {
		start := t.Add(-window).Add(s.binSize)
		// The window never reaches before the series' known start: history
		// that predates all observation must not appear as phantom zeros.
		if start.Before(spanStart) {
			start = spanStart
		}
		win := s.Dense(start, t.Add(s.binSize))
		vals := make([]float64, len(win))
		for i, p := range win {
			vals[i] = p.V
		}
		x, _ := s.Value(t)
		out = append(out, Point{T: t, V: stats.Magnitude(x, vals)})
	}
	return out
}

// Values extracts just the values of a point slice, in order.
func Values(pts []Point) []float64 {
	out := make([]float64, len(pts))
	for i, p := range pts {
		out[i] = p.V
	}
	return out
}

// MaxPoint returns the point with the largest value, ok=false for empty
// input.
func MaxPoint(pts []Point) (Point, bool) {
	if len(pts) == 0 {
		return Point{}, false
	}
	best := pts[0]
	for _, p := range pts[1:] {
		if p.V > best.V {
			best = p
		}
	}
	return best, true
}

// MinPoint returns the point with the smallest value, ok=false for empty
// input.
func MinPoint(pts []Point) (Point, bool) {
	if len(pts) == 0 {
		return Point{}, false
	}
	best := pts[0]
	for _, p := range pts[1:] {
		if p.V < best.V {
			best = p
		}
	}
	return best, true
}
