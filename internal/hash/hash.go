// Package hash provides the repo's shared 64-bit mixing primitive, used
// wherever identifiers must map to stable pseudo-random values: the Atlas
// platform's per-(measurement, probe) scheduling offsets and PRNG seeds,
// and the delay detector's per-(link, bin) probe-dropping seeds. Keeping
// one implementation guarantees the two cannot silently diverge.
package hash

// Mix64 folds v into the running hash h: FNV-style multiply with a
// golden-ratio avalanche step.
func Mix64(h, v uint64) uint64 {
	h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	h *= 0x100000001b3
	return h
}

// Fold mixes vals into seed in order.
func Fold(seed uint64, vals ...uint64) uint64 {
	for _, v := range vals {
		seed = Mix64(seed, v)
	}
	return seed
}
