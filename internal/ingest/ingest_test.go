package ingest

import (
	"bytes"
	"compress/gzip"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"pinpoint/internal/trace"
)

// makeResults builds n synthetic traceroute results with varied shapes:
// multiple hops, timeouts, per-packet reply mixes — whole-second timestamps
// so the Unix-seconds wire format round-trips them exactly.
func makeResults(n int) []trace.Result {
	base := time.Date(2015, 11, 28, 0, 0, 0, 0, time.UTC)
	dst := netip.MustParseAddr("193.0.14.129")
	rs := make([]trace.Result, n)
	for i := range rs {
		hop2 := []trace.Reply{
			{From: netip.AddrFrom4([4]byte{192, 0, 2, byte(i % 250)}), RTT: 3.5 + float64(i%97)/8},
			{Timeout: true},
		}
		if i%7 == 0 { // an entirely unresponsive middle packet run
			hop2 = []trace.Reply{{Timeout: true}, {Timeout: true}, {Timeout: true}}
		}
		rs[i] = trace.Result{
			MsmID:   5000 + i%3,
			PrbID:   1 + i%17,
			Time:    base.Add(time.Duration(i) * 7 * time.Second),
			Src:     netip.AddrFrom4([4]byte{10, 0, byte(i % 200), 1}),
			Dst:     dst,
			ParisID: i % 16,
			Hops: []trace.Hop{
				{Index: 1, Replies: []trace.Reply{{From: netip.AddrFrom4([4]byte{10, 0, byte(i % 200), 254}), RTT: 0.4 + float64(i%13)/16}}},
				{Index: 2, Replies: hop2},
				{Index: 4, Replies: []trace.Reply{{From: dst, RTT: 11.25 + float64(i%29)/4}}},
			},
		}
	}
	return rs
}

// encodeDump writes rs as NDJSON; blankEvery > 0 interleaves blank lines.
func encodeDump(t *testing.T, rs []trace.Result, blankEvery int) []byte {
	t.Helper()
	var buf bytes.Buffer
	for i, r := range rs {
		if blankEvery > 0 && i%blankEvery == 0 {
			buf.WriteByte('\n')
		}
		b, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

func gzipBytes(t *testing.T, data []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	zw := gzip.NewWriter(&buf)
	if _, err := zw.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

type collected struct {
	results []trace.Result
	batches []int // batch sizes in delivery order
}

func collect(t *testing.T, data []byte, opts Options) (collected, Stats) {
	t.Helper()
	var c collected
	st, err := Decode(context.Background(), bytes.NewReader(data), opts, func(rs []trace.Result) error {
		c.results = append(c.results, rs...)
		c.batches = append(c.batches, len(rs))
		return nil
	})
	if err != nil {
		t.Fatalf("Decode(workers=%d): %v", opts.Workers, err)
	}
	return c, st
}

// TestDecodeWorkerEquivalence is the package's core property: the delivered
// stream — results, their order AND the batch boundaries — is bit-identical
// to a sequential decode for every worker count.
func TestDecodeWorkerEquivalence(t *testing.T) {
	orig := makeResults(2000)
	dump := encodeDump(t, orig, 9)

	seq, seqStats := collect(t, dump, Options{Workers: 1, ChunkSize: 64})
	if !reflect.DeepEqual(seq.results, orig) {
		t.Fatalf("sequential decode does not reproduce the encoded results (%d vs %d)",
			len(seq.results), len(orig))
	}
	if seqStats.Results != len(orig) {
		t.Fatalf("stats.Results = %d, want %d", seqStats.Results, len(orig))
	}

	for _, workers := range []int{2, 3, 4, 8} {
		par, parStats := collect(t, dump, Options{Workers: workers, ChunkSize: 64})
		if !reflect.DeepEqual(par.results, seq.results) {
			t.Errorf("workers=%d: result stream differs from sequential", workers)
		}
		if !reflect.DeepEqual(par.batches, seq.batches) {
			t.Errorf("workers=%d: batch boundaries differ: %v vs %v", workers, par.batches, seq.batches)
		}
		if parStats != seqStats {
			t.Errorf("workers=%d: stats differ: %+v vs %+v", workers, parStats, seqStats)
		}
	}
}

// TestMatchesReferenceReader cross-checks the pipeline against the
// independent straight-line decoder (trace.Reader): two implementations of
// the same wire format must agree result for result.
func TestMatchesReferenceReader(t *testing.T) {
	dump := encodeDump(t, makeResults(500), 7)
	want, err := trace.NewReader(bytes.NewReader(dump)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	got, _ := collect(t, dump, Options{Workers: 4})
	if !reflect.DeepEqual(got.results, want) {
		t.Fatalf("ingest pipeline disagrees with trace.Reader (%d vs %d results)",
			len(got.results), len(want))
	}
}

func TestGzipAutoDetect(t *testing.T) {
	orig := makeResults(300)
	plain := encodeDump(t, orig, 0)
	gz := gzipBytes(t, plain)

	want, _ := collect(t, plain, Options{Workers: 2})
	got, st := collect(t, gz, Options{Workers: 2})
	if !reflect.DeepEqual(got.results, want.results) {
		t.Fatal("gzip decode differs from plain decode")
	}
	if st.Bytes != int64(len(plain))-int64(len(orig)) {
		// Bytes counts decompressed payload without the newline terminators.
		t.Errorf("stats.Bytes = %d, want %d", st.Bytes, len(plain)-len(orig))
	}
}

func TestFilesMultiFileOrderAndAttribution(t *testing.T) {
	dir := t.TempDir()
	orig := makeResults(90)
	p1 := filepath.Join(dir, "a.ndjson")
	p2 := filepath.Join(dir, "b.ndjson.gz")
	p3 := filepath.Join(dir, "c.ndjson")
	if err := os.WriteFile(p1, encodeDump(t, orig[:30], 0), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p2, gzipBytes(t, encodeDump(t, orig[30:60], 0)), 0o644); err != nil {
		t.Fatal(err)
	}
	// File 3 has a bad line in the middle for error attribution.
	tail := encodeDump(t, orig[60:], 0)
	lines := bytes.SplitAfter(tail, []byte("\n"))
	var withBad []byte
	for i, l := range lines {
		if i == 5 {
			withBad = append(withBad, []byte("not json\n")...)
		}
		withBad = append(withBad, l...)
	}
	if err := os.WriteFile(p3, withBad, 0o644); err != nil {
		t.Fatal(err)
	}

	var got []trace.Result
	var lineErrs []LineError
	st, err := Files(context.Background(), []string{p1, p2, p3}, Options{Workers: 3, ChunkSize: 8,
		OnError: func(le *LineError) error {
			lineErrs = append(lineErrs, *le)
			return nil
		},
	}, func(rs []trace.Result) error {
		got = append(got, rs...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, orig) {
		t.Errorf("multi-file decode lost or reordered results: %d vs %d", len(got), len(orig))
	}
	if st.Skipped != 1 || len(lineErrs) != 1 {
		t.Fatalf("skipped = %d, line errors = %d, want 1/1", st.Skipped, len(lineErrs))
	}
	if le := lineErrs[0]; le.File != p3 || le.Line != 6 {
		t.Errorf("bad line attributed to %s:%d, want %s:6", le.File, le.Line, p3)
	}
}

func TestDefaultPolicyAbortsWithLineError(t *testing.T) {
	orig := makeResults(40)
	dump := encodeDump(t, orig, 0)
	dump = append(dump, []byte("{\"src_addr\":\"nope\"}\n")...)

	for _, workers := range []int{1, 4} {
		var got []trace.Result
		_, err := Decode(context.Background(), bytes.NewReader(dump), Options{Workers: workers, ChunkSize: 8},
			func(rs []trace.Result) error {
				got = append(got, rs...)
				return nil
			})
		var le *LineError
		if !errors.As(err, &le) {
			t.Fatalf("workers=%d: err = %v, want *LineError", workers, err)
		}
		if le.Line != len(orig)+1 {
			t.Errorf("workers=%d: error at line %d, want %d", workers, le.Line, len(orig)+1)
		}
		var ae *trace.AddrError
		if !errors.As(err, &ae) || ae.Field != "src_addr" {
			t.Errorf("workers=%d: underlying error not an AddrError(src_addr): %v", workers, err)
		}
		// The failing chunk's batch is withheld; everything before it arrived.
		if len(got) != len(orig)-len(orig)%8 && len(got) != len(orig) {
			t.Errorf("workers=%d: delivered %d results before abort", workers, len(got))
		}
	}
}

func TestOnErrorAbort(t *testing.T) {
	dump := []byte("junk\n")
	sentinel := errors.New("stop here")
	_, err := Decode(context.Background(), bytes.NewReader(dump), Options{Workers: 2,
		OnError: func(*LineError) error { return sentinel },
	}, func([]trace.Result) error { return nil })
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
}

func TestValidateRejectsStructurallyInvalid(t *testing.T) {
	// Decodes fine but hop indices are not ascending.
	line := `{"src_addr":"1.1.1.1","dst_addr":"2.2.2.2","result":[{"hop":2,"result":[{"x":"*"}]},{"hop":1,"result":[{"x":"*"}]}]}`
	_, err := Decode(context.Background(), strings.NewReader(line+"\n"), Options{Workers: 1, Validate: true},
		func([]trace.Result) error { return nil })
	var le *LineError
	if !errors.As(err, &le) {
		t.Fatalf("err = %v, want *LineError from validation", err)
	}
	if !strings.Contains(le.Err.Error(), "ascending") {
		t.Errorf("unexpected validation error: %v", le.Err)
	}
	// Without Validate the same line is accepted.
	if _, err := Decode(context.Background(), strings.NewReader(line+"\n"), Options{Workers: 1},
		func([]trace.Result) error { return nil }); err != nil {
		t.Errorf("non-validating decode rejected the line: %v", err)
	}
}

func TestConsumerErrorAborts(t *testing.T) {
	dump := encodeDump(t, makeResults(100), 0)
	sentinel := errors.New("consumer says no")
	for _, workers := range []int{1, 4} {
		calls := 0
		_, err := Decode(context.Background(), bytes.NewReader(dump), Options{Workers: workers, ChunkSize: 16},
			func([]trace.Result) error {
				calls++
				if calls == 2 {
					return sentinel
				}
				return nil
			})
		if !errors.Is(err, sentinel) {
			t.Errorf("workers=%d: err = %v, want consumer sentinel", workers, err)
		}
		if calls != 2 {
			t.Errorf("workers=%d: fn called %d times after abort, want 2", workers, calls)
		}
	}
}

func TestContextCancel(t *testing.T) {
	dump := encodeDump(t, makeResults(100), 0)
	for _, workers := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		cancel()
		_, err := Decode(ctx, bytes.NewReader(dump), Options{Workers: workers},
			func([]trace.Result) error { return nil })
		if !errors.Is(err, context.Canceled) {
			t.Errorf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
	}
}

func TestEmptyAndBlankInput(t *testing.T) {
	for _, input := range []string{"", "\n\n\n"} {
		st, err := Decode(context.Background(), strings.NewReader(input), Options{Workers: 2},
			func([]trace.Result) error {
				t.Fatal("fn called for empty input")
				return nil
			})
		if err != nil {
			t.Fatalf("input %q: %v", input, err)
		}
		if st.Results != 0 || st.Skipped != 0 {
			t.Errorf("input %q: stats %+v", input, st)
		}
	}
}

func TestReadErrorSurfacesAfterDeliveredResults(t *testing.T) {
	orig := makeResults(20)
	dump := encodeDump(t, orig, 0)
	failing := io.MultiReader(bytes.NewReader(dump), &errReader{})
	var got []trace.Result
	_, err := Decode(context.Background(), failing, Options{Workers: 2, ChunkSize: 4},
		func(rs []trace.Result) error {
			got = append(got, rs...)
			return nil
		})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("err = %v, want wrapped read error", err)
	}
	if !reflect.DeepEqual(got, orig) {
		t.Errorf("results scanned before the read error were not delivered (%d/%d)", len(got), len(orig))
	}
}

type errReader struct{}

func (*errReader) Read([]byte) (int, error) { return 0, errors.New("boom") }

// TestOversizedLineSkippable pins the lenient-policy contract for lines
// beyond MaxLineBytes: the line is drained (the stream stays aligned on
// the next newline), reported as ErrLineTooLong through OnError, and
// every surrounding result still decodes — identically for any worker
// count. The default policy aborts with the same typed error.
func TestOversizedLineSkippable(t *testing.T) {
	orig := makeResults(30)
	head := encodeDump(t, orig[:10], 0)
	tail := encodeDump(t, orig[10:], 0)
	huge := bytes.Repeat([]byte("x"), MaxLineBytes+4096)
	dump := append(append(append([]byte(nil), head...), append(huge, '\n')...), tail...)

	for _, workers := range []int{1, 4} {
		var got []trace.Result
		var lineErrs []LineError
		st, err := Decode(context.Background(), bytes.NewReader(dump),
			Options{Workers: workers, ChunkSize: 4, OnError: func(le *LineError) error {
				lineErrs = append(lineErrs, *le)
				return nil
			}},
			func(rs []trace.Result) error {
				got = append(got, rs...)
				return nil
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, orig) {
			t.Errorf("workers=%d: results around the oversized line lost (%d/%d)",
				workers, len(got), len(orig))
		}
		if st.Skipped != 1 || len(lineErrs) != 1 {
			t.Fatalf("workers=%d: skipped=%d lineErrs=%d, want 1/1", workers, st.Skipped, len(lineErrs))
		}
		if le := lineErrs[0]; le.Line != 11 || !errors.Is(le.Err, ErrLineTooLong) {
			t.Errorf("workers=%d: error = %v at line %d, want ErrLineTooLong at 11", workers, le.Err, le.Line)
		}
	}

	// Default strict policy: abort, typed.
	_, err := Decode(context.Background(), bytes.NewReader(dump), Options{Workers: 2},
		func([]trace.Result) error { return nil })
	if !errors.Is(err, ErrLineTooLong) {
		t.Fatalf("strict policy err = %v, want ErrLineTooLong", err)
	}
}

func TestFileStdinDash(t *testing.T) {
	// File("-") must read stdin; substitute a pipe for the test.
	orig := makeResults(10)
	dump := encodeDump(t, orig, 0)
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	oldStdin := os.Stdin
	os.Stdin = r
	defer func() { os.Stdin = oldStdin }()
	go func() {
		w.Write(dump)
		w.Close()
	}()
	var got []trace.Result
	st, err := File(context.Background(), "-", Options{Workers: 2}, func(rs []trace.Result) error {
		got = append(got, rs...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Results != len(orig) || !reflect.DeepEqual(got, orig) {
		t.Errorf("stdin decode delivered %d results, want %d", len(got), len(orig))
	}
}

func TestFilesMissingFileAfterDeliveredPrefix(t *testing.T) {
	dir := t.TempDir()
	orig := makeResults(12)
	p1 := filepath.Join(dir, "a.ndjson")
	if err := os.WriteFile(p1, encodeDump(t, orig, 0), 0o644); err != nil {
		t.Fatal(err)
	}
	var got []trace.Result
	_, err := Files(context.Background(), []string{p1, filepath.Join(dir, "missing.ndjson")},
		Options{Workers: 2}, func(rs []trace.Result) error {
			got = append(got, rs...)
			return nil
		})
	if err == nil || !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("err = %v, want wrapped fs.ErrNotExist", err)
	}
	if !reflect.DeepEqual(got, orig) {
		t.Errorf("results of the readable prefix were not delivered (%d/%d)", len(got), len(orig))
	}
}

// TestTruncatedGzipSurfacesReadError pins that a mid-stream decompression
// failure is reported as the stream error — NOT as a phantom decode error
// on the partial trailing fragment, which is not a line of the input.
func TestTruncatedGzipSurfacesReadError(t *testing.T) {
	orig := makeResults(200)
	gz := gzipBytes(t, encodeDump(t, orig, 0))
	trunc := gz[:len(gz)-500]
	for _, workers := range []int{1, 4} {
		var got []trace.Result
		_, err := Decode(context.Background(), bytes.NewReader(trunc), Options{Workers: workers},
			func(rs []trace.Result) error {
				got = append(got, rs...)
				return nil
			})
		if err == nil {
			t.Fatalf("workers=%d: truncated gzip accepted", workers)
		}
		var le *LineError
		if errors.As(err, &le) {
			t.Errorf("workers=%d: truncation misreported as a line error: %v", workers, err)
		}
		if len(got) > len(orig) || !reflect.DeepEqual(got, orig[:len(got)]) {
			t.Errorf("workers=%d: delivered prefix corrupted (%d results)", workers, len(got))
		}
	}
}

func TestSplitPaths(t *testing.T) {
	cases := map[string][]string{
		"a.ndjson": {"a.ndjson"},
		"a,b.gz,":  {"a", "b.gz"},
		" a , b ":  {"a", "b"},
		",":        nil,
		"":         nil,
		"-":        {"-"},
	}
	for in, want := range cases {
		if got := SplitPaths(in); !reflect.DeepEqual(got, want) {
			t.Errorf("SplitPaths(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestCorruptGzip(t *testing.T) {
	data := append([]byte{0x1f, 0x8b}, []byte("definitely not a gzip stream")...)
	_, err := Decode(context.Background(), bytes.NewReader(data), Options{Workers: 2},
		func([]trace.Result) error { return nil })
	if err == nil {
		t.Fatal("corrupt gzip accepted")
	}
}

// TestLenientStatsDeterministic pins that Skipped/Results accounting is
// identical across worker counts when the policy skips bad lines.
func TestLenientStatsDeterministic(t *testing.T) {
	orig := makeResults(200)
	dump := encodeDump(t, orig, 0)
	lines := bytes.SplitAfter(dump, []byte("\n"))
	var corrupted []byte
	for i, l := range lines {
		if i%23 == 11 {
			corrupted = append(corrupted, []byte("{\"src_addr\":\"zz\"}\n")...)
		}
		corrupted = append(corrupted, l...)
	}
	skip := func(*LineError) error { return nil }
	var ref Stats
	for i, workers := range []int{1, 2, 8} {
		st, err := Decode(context.Background(), bytes.NewReader(corrupted),
			Options{Workers: workers, ChunkSize: 32, OnError: skip},
			func([]trace.Result) error { return nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if st.Skipped == 0 || st.Results != len(orig) {
			t.Fatalf("workers=%d: stats %+v", workers, st)
		}
		if i == 0 {
			ref = st
		} else if st != ref {
			t.Errorf("workers=%d: stats %+v differ from sequential %+v", workers, st, ref)
		}
	}
}

// sanity-check the helper's variety so edge shapes stay covered
func TestMakeResultsShapes(t *testing.T) {
	rs := makeResults(20)
	sawUnresponsive := false
	for _, r := range rs {
		if err := r.Validate(); err != nil {
			t.Fatalf("fixture result invalid: %v", err)
		}
		if r.Hops[1].Unresponsive() {
			sawUnresponsive = true
		}
	}
	if !sawUnresponsive {
		t.Error("fixture lacks unresponsive hops")
	}
	if fmt.Sprint(rs[0].Time) == fmt.Sprint(rs[1].Time) {
		t.Error("fixture timestamps do not advance")
	}
}
