package ingest

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"net/netip"
	"strings"
	"testing"

	"pinpoint/internal/ident"
	"pinpoint/internal/trace"
)

// TestLineNumberParityWithReader is the counting-convention regression
// test: on a fixture with blank lines and a bad line, the line numbers
// ingest reports through *LineError match the ones trace.Reader reports in
// its errors — blank lines advance both counters identically.
func TestLineNumberParityWithReader(t *testing.T) {
	good := encodeDump(t, makeResults(6), 0)
	lines := strings.Split(strings.TrimRight(string(good), "\n"), "\n")
	// Layout: blanks before, between and around two bad lines.
	fixture := "\n" + lines[0] + "\n\n\n" + lines[1] + "\nnot json\n" + lines[2] + "\n\n{bad\n\n" + lines[3] + "\n"

	var ingestLines []int
	opts := Options{Workers: 1, OnError: func(le *LineError) error {
		ingestLines = append(ingestLines, le.Line)
		return nil
	}}
	c, st := collect(t, []byte(fixture), opts)
	if len(c.results) != 4 {
		t.Fatalf("delivered %d results, want 4", len(c.results))
	}

	var readerLines []int
	rd := trace.NewReader(strings.NewReader(fixture))
	for {
		_, err := rd.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			var n int
			if _, serr := fmt.Sscanf(err.Error(), "trace: line %d:", &n); serr != nil {
				t.Fatalf("cannot extract line number from %q: %v", err, serr)
			}
			readerLines = append(readerLines, n)
		}
	}

	want := []int{6, 9}
	if fmt.Sprint(ingestLines) != fmt.Sprint(want) {
		t.Errorf("ingest error lines = %v, want %v", ingestLines, want)
	}
	if fmt.Sprint(readerLines) != fmt.Sprint(want) {
		t.Errorf("reader error lines = %v, want %v", readerLines, want)
	}
	if st.Lines != 11 {
		t.Errorf("Stats.Lines = %d, want 11 (blank lines count)", st.Lines)
	}
}

// TestOversizedLineNumberParityWithReader pins that an oversized line gets
// the same line number — and is equally skippable — in both the ingest
// pipeline and the reference Reader.
func TestOversizedLineNumberParityWithReader(t *testing.T) {
	good := encodeDump(t, makeResults(2), 0)
	lines := strings.Split(strings.TrimRight(string(good), "\n"), "\n")
	huge := strings.Repeat("y", MaxLineBytes+1)
	fixture := "\n" + lines[0] + "\n" + huge + "\n" + lines[1] + "\n"

	var ingestLines []int
	opts := Options{Workers: 1, OnError: func(le *LineError) error {
		if !errors.Is(le.Err, ErrLineTooLong) {
			return le.Err
		}
		ingestLines = append(ingestLines, le.Line)
		return nil
	}}
	c, _ := collect(t, []byte(fixture), opts)
	if len(c.results) != 2 {
		t.Fatalf("delivered %d results, want 2", len(c.results))
	}

	rd := trace.NewReader(strings.NewReader(fixture))
	var readerLines []int
	for {
		_, err := rd.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			if !errors.Is(err, trace.ErrLineTooLong) {
				t.Fatalf("unexpected reader error: %v", err)
			}
			var n int
			if _, serr := fmt.Sscanf(err.Error(), "trace: line %d:", &n); serr != nil {
				t.Fatalf("cannot extract line number from %q: %v", err, serr)
			}
			readerLines = append(readerLines, n)
		}
	}

	if len(ingestLines) != 1 || ingestLines[0] != 3 {
		t.Errorf("ingest oversized line = %v, want [3]", ingestLines)
	}
	if len(readerLines) != 1 || readerLines[0] != 3 {
		t.Errorf("reader oversized line = %v, want [3]", readerLines)
	}
}

// TestInternFusion pins the interning-fusion contract: with Options.Intern
// set, decoded results are unchanged and the registry ends up pre-warmed
// with every address on the wire (src, dst and responding from addresses),
// for every worker count.
func TestInternFusion(t *testing.T) {
	orig := makeResults(200)
	dump := encodeDump(t, orig, 0)

	want := map[netip.Addr]bool{}
	for _, r := range orig {
		want[r.Src] = true
		want[r.Dst] = true
		for _, h := range r.Hops {
			for _, rep := range h.Replies {
				if !rep.Timeout {
					want[rep.From] = true
				}
			}
		}
	}

	for _, workers := range []int{1, 4} {
		reg := ident.NewRegistry()
		var plain, fused collected
		_, err := Decode(context.Background(), bytes.NewReader(dump), Options{Workers: workers}, func(rs []trace.Result) error {
			plain.results = append(plain.results, rs...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		_, err = Decode(context.Background(), bytes.NewReader(dump), Options{Workers: workers, Intern: reg}, func(rs []trace.Result) error {
			fused.results = append(fused.results, rs...)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if len(plain.results) != len(fused.results) {
			t.Fatalf("workers=%d: result counts differ: %d vs %d", workers, len(plain.results), len(fused.results))
		}
		for i := range plain.results {
			if !resultsEqual(plain.results[i], fused.results[i]) {
				t.Fatalf("workers=%d: result %d differs with fusion", workers, i)
			}
		}
		for a := range want {
			if _, ok := reg.LookupAddr(a); !ok {
				t.Errorf("workers=%d: address %v not interned by fusion", workers, a)
			}
		}
		// +1 for the reserved zero address.
		if got := reg.Addrs(); got != len(want)+1 {
			t.Errorf("workers=%d: registry holds %d addrs, want %d", workers, got, len(want)+1)
		}
	}
}

func resultsEqual(a, b trace.Result) bool {
	if a.MsmID != b.MsmID || a.PrbID != b.PrbID || !a.Time.Equal(b.Time) ||
		a.Src != b.Src || a.Dst != b.Dst || a.ParisID != b.ParisID || len(a.Hops) != len(b.Hops) {
		return false
	}
	for i := range a.Hops {
		if a.Hops[i].Index != b.Hops[i].Index || len(a.Hops[i].Replies) != len(b.Hops[i].Replies) {
			return false
		}
		for j := range a.Hops[i].Replies {
			if a.Hops[i].Replies[j] != b.Hops[i].Replies[j] {
				return false
			}
		}
	}
	return true
}
