package ingest

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"testing"

	"pinpoint/internal/trace"
)

var (
	benchOnce sync.Once
	benchDump []byte
	benchN    int
)

// benchFixture encodes a synthetic 16k-result NDJSON dump once; every
// benchmark iteration decodes the whole dump from memory, so ns/op and
// MB/s measure the decode pipeline alone (no disk, no analysis).
func benchFixture(b *testing.B) {
	b.Helper()
	benchOnce.Do(func() {
		rs := makeResults(16384)
		benchN = len(rs)
		var buf bytes.Buffer
		for _, r := range rs {
			line, err := json.Marshal(r)
			if err != nil {
				panic(err)
			}
			buf.Write(line)
			buf.WriteByte('\n')
		}
		benchDump = buf.Bytes()
	})
}

// BenchmarkIngest decodes the fixture dump with 1/2/4/8 workers. The
// delivered stream is bit-identical across rows (TestDecodeWorkerEquivalence),
// so rows differ only in wall time; on a single-core host the parallel rows
// measure pure coordination overhead, not speedup. Baselines live in
// BENCH_ingest.json.
func BenchmarkIngest(b *testing.B) {
	benchFixture(b)
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(int64(len(benchDump)))
			for i := 0; i < b.N; i++ {
				st, err := Decode(context.Background(), bytes.NewReader(benchDump),
					Options{Workers: workers}, func([]trace.Result) error { return nil })
				if err != nil {
					b.Fatal(err)
				}
				if st.Results != benchN {
					b.Fatalf("decoded %d results, want %d", st.Results, benchN)
				}
			}
			perOp := b.Elapsed().Seconds() / float64(b.N)
			if perOp > 0 {
				b.ReportMetric(float64(benchN)/perOp, "results/s")
			}
		})
	}
}
