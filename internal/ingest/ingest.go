// Package ingest is the streaming wire-format ingestion pipeline: it reads
// RIPE Atlas-format NDJSON traceroute dumps (plain or gzip, single file,
// stdin or multi-file) and decodes them into trace.Result batches — the
// real-data twin of the internal/atlas measurement generator, and the
// second parallel producer that can feed the sharded engine.
//
// Parallel decoding preserves the determinism guarantee of the rest of the
// pipeline: a single chunker goroutine cuts the line stream into
// sequence-numbered chunks of whole lines, N workers decode chunks
// concurrently, and a window-bounded reorder buffer releases decoded
// batches strictly in input order. The delivered stream — batch boundaries
// included — is bit-identical to a sequential decode for every worker
// count, because chunk cutting is a function of the input alone and a
// line's decoded value is a function of that line alone — the per-worker
// decoder state (address memo, scratch buffers) is pure memoization and
// cannot leak across lines into the output.
//
// Real dumps are full of measurement artifacts (timeouts, late and error
// packets, replies without RTTs); the per-reply leniency lives in
// trace.Result's wire decoder, while this package's error policy
// (Options.OnError) governs whole lines that fail to decode at all:
// by default the first bad line aborts the stream with a *LineError, or a
// caller-supplied hook may count/log and skip it. Policy decisions are made
// at delivery time on the ordered stream, so they too are independent of
// the worker count.
package ingest

import (
	"bufio"
	"compress/gzip"
	"context"
	"fmt"
	"io"
	"net/netip"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"

	"pinpoint/internal/ident"
	"pinpoint/internal/trace"
)

// DefaultChunkSize is how many lines one decode chunk — and hence one
// delivered batch — holds when Options.ChunkSize is 0. It matches the
// engine's default extraction batch, so a default ingest run hands the
// analyzer engine-sized batches.
const DefaultChunkSize = 256

// MaxLineBytes bounds a single NDJSON line. It is trace.MaxLineBytes: the
// reference Reader and this pipeline share one limit and one counting
// convention (blank and oversized-drained lines both advance line numbers).
// An oversized line is drained (the stream stays aligned on the next
// newline) and reported through the error policy as a *LineError wrapping
// ErrLineTooLong, so a lenient OnError can skip it and keep going.
const MaxLineBytes = trace.MaxLineBytes

// ErrLineTooLong reports a line exceeding MaxLineBytes; it reaches the
// error policy wrapped in a *LineError. It is trace.ErrLineTooLong, so
// errors.Is matches across both packages.
var ErrLineTooLong = trace.ErrLineTooLong

// Stats summarizes one ingestion run. When a run aborts early, Lines and
// Bytes count what the chunker had scanned — with parallel workers that can
// be slightly ahead of what was delivered.
type Stats struct {
	Lines   int   // physical lines scanned, including blank and failed ones
	Results int   // results delivered to the consumer
	Skipped int   // non-blank lines dropped by the error policy
	Bytes   int64 // decompressed payload bytes scanned (line terminators excluded)
}

// LineError locates a decode (or validation) failure in the input stream.
type LineError struct {
	File string // input name ("-" for stdin, "<reader>" for Decode)
	Line int    // 1-based line number within File
	Err  error
}

// Error implements error.
func (e *LineError) Error() string {
	return fmt.Sprintf("ingest: %s:%d: %v", e.File, e.Line, e.Err)
}

// Unwrap exposes the underlying decode error for errors.Is/As.
func (e *LineError) Unwrap() error { return e.Err }

// Options configures an ingestion run. The zero value decodes with
// GOMAXPROCS workers, engine-sized batches and a strict error policy.
type Options struct {
	// Workers is how many goroutines decode chunks concurrently. 0 means
	// GOMAXPROCS; 1 decodes inline on the caller's goroutine with no
	// goroutines at all. The delivered stream is identical for every value.
	Workers int

	// ChunkSize is how many non-blank lines are decoded per chunk; each
	// chunk yields at most one delivered batch (bad lines shrink it).
	// 0 means DefaultChunkSize.
	ChunkSize int

	// Validate additionally rejects results that decode but violate the
	// structural invariants of trace.Result.Validate (valid endpoints,
	// ascending hop indices); the violation is reported through the same
	// error policy as a decode failure.
	Validate bool

	// OnError is the per-line error policy, invoked in input order. nil
	// aborts the stream at the first bad line (the run error is a
	// *LineError). A non-nil hook returning nil skips the line and
	// continues; returning an error aborts the stream with that error.
	// On abort, the batch of the chunk containing the offending line is
	// withheld, so consumers never observe results past an abort point.
	OnError func(*LineError) error

	// Intern, when non-nil, fuses address interning into the decode
	// workers: every src/dst/from address is parsed and interned into this
	// registry straight from its wire bytes (via ident.Interner.AddrBytes,
	// one per-goroutine memo per worker), pre-warming the identity layer
	// the extractors intern into while the bytes are already in cache.
	// Decoded results are unchanged; the registry only gains entries —
	// including source addresses the extractors never intern, so interned
	// counts reported from it will run higher than without fusion.
	Intern *ident.Registry
}

func (o Options) withDefaults() Options {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.ChunkSize <= 0 {
		o.ChunkSize = DefaultChunkSize
	}
	return o
}

// Decode streams NDJSON traceroute results from r (gzip auto-detected by
// magic bytes), delivering them in input order as batches to fn. A non-nil
// error from fn aborts the run and is returned.
func Decode(ctx context.Context, r io.Reader, opts Options, fn func([]trace.Result) error) (Stats, error) {
	return run(ctx, []source{{name: "<reader>", r: r}}, opts, fn)
}

// File decodes one dump file. Path "-" reads stdin; gzip is auto-detected
// regardless of the file name.
func File(ctx context.Context, path string, opts Options, fn func([]trace.Result) error) (Stats, error) {
	return Files(ctx, []string{path}, opts, fn)
}

// SplitPaths splits a comma-separated dump-path list (the CLIs' -input
// syntax), trimming whitespace and dropping empty segments so a trailing
// comma cannot become an opaque open("") failure mid-run. The result may
// be empty; callers decide how to reject that.
func SplitPaths(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// Files decodes several dumps in order as one logical stream (per-file
// gzip detection, per-file line numbering in errors). Files are opened
// lazily as the stream reaches them, so an unreadable later file surfaces
// only after the preceding files' results were delivered — the same
// behavior as catting the files through one reader.
func Files(ctx context.Context, paths []string, opts Options, fn func([]trace.Result) error) (Stats, error) {
	srcs := make([]source, len(paths))
	for i, p := range paths {
		srcs[i] = source{name: p}
	}
	return run(ctx, srcs, opts, fn)
}

// source is one named input: either an already-open reader (Decode) or a
// path the chunker opens when the stream reaches it.
type source struct {
	name string
	r    io.Reader
}

// lineChunk is the unit of worker handoff: up to ChunkSize non-blank lines
// copied out of the reader's buffer (read slices die on the next read),
// with their 1-based line numbers for error attribution. errs carries
// read-level per-line failures the chunker itself detected (oversized
// lines); decode workers merge them with decode failures in line order.
type lineChunk struct {
	seq   uint64
	file  string
	buf   []byte // concatenated line payloads
	ends  []int  // end offset of line i in buf
	lines []int  // line number of line i within file
	errs  []LineError
}

// chunkPool recycles chunk buffers once a decode worker has drained them.
var chunkPool = sync.Pool{New: func() any { return new(lineChunk) }}

// decodedChunk is a worker's output: the chunk's results in line order plus
// any per-line failures, keyed by the chunk's sequence number for reorder.
type decodedChunk struct {
	seq     uint64
	results []trace.Result
	errs    []LineError
}

// newDecoder builds one decode worker's trace.Decoder: scratch state plus,
// when interning fusion is on, a per-worker Interner memo over the shared
// registry wired in as the decoder's address parser.
func newDecoder(opts Options) *trace.Decoder {
	d := new(trace.Decoder)
	if opts.Intern != nil {
		in := ident.NewInterner(opts.Intern)
		d.ParseAddr = func(b []byte) (netip.Addr, error) {
			_, a, err := in.AddrBytes(b)
			return a, err
		}
	}
	return d
}

// decodeChunk decodes every line of c through the fast wire decoder (one
// *trace.Decoder per worker; the differential fuzzer pins it equivalent to
// the encoding/json reference that trace.Reader still uses). Results go
// into a fresh slice — the consumer may retain delivered batches,
// mirroring atlas.RunChunks — and failures (the chunker's read-level ones
// plus decode ones) become LineErrors in line order.
func decodeChunk(d *trace.Decoder, c *lineChunk, validate bool) ([]trace.Result, []LineError) {
	results := make([]trace.Result, 0, len(c.ends))
	var errs []LineError
	if len(c.errs) > 0 {
		errs = append(errs, c.errs...)
	}
	start := 0
	for i, end := range c.ends {
		line := c.buf[start:end]
		start = end
		var res trace.Result
		err := d.Decode(line, &res)
		if err == nil && validate {
			err = res.Validate()
		}
		if err != nil {
			errs = append(errs, LineError{File: c.file, Line: c.lines[i], Err: err})
			continue
		}
		results = append(results, res)
	}
	// Chunker and decode errors each arrive line-ascending; restore the
	// global line order across the two lists (at most one error per line,
	// so the sort is deterministic).
	if len(c.errs) > 0 && len(errs) > len(c.errs) {
		sort.Slice(errs, func(i, j int) bool { return errs[i].Line < errs[j].Line })
	}
	return results, errs
}

// deliver applies the error policy (in line order) and hands the chunk's
// batch to fn. It runs on the ordered stream — the caller's goroutine —
// for every worker count, which is what makes abort/skip decisions and
// Stats deterministic.
func deliver(st *Stats, opts Options, results []trace.Result, errs []LineError, fn func([]trace.Result) error) error {
	for i := range errs {
		if opts.OnError == nil {
			return &errs[i]
		}
		if err := opts.OnError(&errs[i]); err != nil {
			return err
		}
		st.Skipped++
	}
	if len(results) == 0 {
		return nil
	}
	st.Results += len(results)
	return fn(results)
}

// chunker owns the read side: it opens sources, detects gzip, scans lines
// and cuts sequence-numbered chunks. Exactly one goroutine runs it, so
// chunk contents and sequence are a function of the input alone, never of
// scheduling — the root of the worker-count equivalence guarantee.
type chunker struct {
	srcs  []source
	size  int
	seq   uint64
	lines int
	bytes int64
	err   error // first open/read error; reported after ordered delivery
}

// run scans all sources, calling emit for each cut chunk. emit returning
// false stops the scan. Sequence numbers are assigned at emission, so the
// emitted sequence is contiguous even when a source ends on an empty chunk.
func (ck *chunker) run(emit func(*lineChunk) bool) {
	numbered := func(c *lineChunk) bool {
		c.seq = ck.seq
		ck.seq++
		return emit(c)
	}
	for _, src := range ck.srcs {
		if !ck.scan(src, numbered) {
			return
		}
	}
}

// scan chunks one source. It returns false when emission was stopped or a
// read error ended the stream; complete lines scanned before a read error
// are still emitted (the error surfaces after their ordered delivery).
func (ck *chunker) scan(src source, emit func(*lineChunk) bool) bool {
	r := src.r
	var closers []io.Closer
	defer func() {
		for _, c := range closers {
			c.Close()
		}
	}()
	if r == nil {
		if src.name == "-" {
			r = os.Stdin
		} else {
			f, err := os.Open(src.name)
			if err != nil {
				ck.err = fmt.Errorf("ingest: %w", err)
				return false
			}
			closers = append(closers, f)
			r = f
		}
	}
	// One buffered reader serves both the gzip magic peek and, for plain
	// sources, line scanning itself — no second copy through a nested
	// bufio on the chunker, the pipeline's serial stage. Only decompressed
	// gzip output needs its own line buffer.
	lr := bufio.NewReaderSize(r, 256*1024)
	if magic, err := lr.Peek(2); err == nil && magic[0] == 0x1f && magic[1] == 0x8b {
		zr, err := gzip.NewReader(lr)
		if err != nil {
			ck.err = fmt.Errorf("ingest: %s: %w", src.name, err)
			return false
		}
		closers = append(closers, zr)
		lr = bufio.NewReaderSize(zr, 256*1024)
	}
	line := 0
	c := newChunk(src.name)
	flush := func() bool {
		if len(c.ends) == 0 && len(c.errs) == 0 {
			return true
		}
		out := c
		c = newChunk(src.name)
		return emit(out)
	}
	full := func() bool { return len(c.ends) >= ck.size || len(c.errs) >= ck.size }
	var acc []byte // continuation buffer for lines spanning reader buffers
	for {
		frag, rerr := lr.ReadSlice('\n')
		if rerr == bufio.ErrBufferFull {
			acc = append(acc, frag...)
			if len(acc) <= MaxLineBytes {
				continue
			}
			// Oversized line: drain to the next newline so the stream stays
			// aligned, report it through the error policy, keep scanning.
			drained := int64(len(acc))
			acc = acc[:0]
			for rerr == bufio.ErrBufferFull {
				frag, rerr = lr.ReadSlice('\n')
				drained += int64(len(frag))
			}
			if rerr == nil {
				drained-- // the newline terminator is not payload
			}
			line++
			ck.lines++
			ck.bytes += drained
			c.errs = append(c.errs, LineError{File: src.name, Line: line, Err: ErrLineTooLong})
			if full() && !flush() {
				chunkPool.Put(c)
				return false
			}
			if rerr == io.EOF {
				break
			}
			if rerr != nil {
				ck.err = fmt.Errorf("ingest: %s: %w", src.name, rerr)
				break
			}
			continue
		}
		if rerr != nil && rerr != io.EOF {
			// Read/decompression failure mid-line (e.g. truncated gzip):
			// the trailing fragment is not a complete line — drop it so the
			// stream error surfaces instead of a phantom JSON failure on a
			// line that never existed in the input.
			ck.err = fmt.Errorf("ingest: %s: %w", src.name, rerr)
			break
		}
		b := frag
		if rerr == nil {
			b = b[:len(b)-1] // strip the newline
		}
		if len(acc) > 0 {
			acc = append(acc, b...)
			b = acc
		}
		if n := len(b); n > 0 && b[n-1] == '\r' { // CRLF dumps
			b = b[:n-1]
		}
		if len(b) > 0 || rerr == nil {
			line++
			ck.lines++
			ck.bytes += int64(len(b))
			if len(b) > MaxLineBytes {
				// The final fragment pushed the line over the limit (the
				// in-flight check above only fires between buffer refills).
				c.errs = append(c.errs, LineError{File: src.name, Line: line, Err: ErrLineTooLong})
			} else if len(b) > 0 {
				c.buf = append(c.buf, b...)
				c.ends = append(c.ends, len(c.buf))
				c.lines = append(c.lines, line)
			}
			if full() && !flush() {
				chunkPool.Put(c)
				return false
			}
		}
		acc = acc[:0]
		if rerr == io.EOF {
			break
		}
	}
	if !flush() {
		chunkPool.Put(c)
		return false
	}
	chunkPool.Put(c)
	return ck.err == nil
}

func newChunk(file string) *lineChunk {
	c := chunkPool.Get().(*lineChunk)
	c.file = file
	c.buf = c.buf[:0]
	c.ends = c.ends[:0]
	c.lines = c.lines[:0]
	c.errs = c.errs[:0]
	return c
}

func run(ctx context.Context, srcs []source, opts Options, fn func([]trace.Result) error) (Stats, error) {
	opts = opts.withDefaults()
	ck := &chunker{srcs: srcs, size: opts.ChunkSize}
	if opts.Workers == 1 {
		return runSeq(ctx, ck, opts, fn)
	}
	return runPar(ctx, ck, opts, fn)
}

// runSeq is the inline path: chunk, decode and deliver on the caller's
// goroutine. It shares the chunker and the delivery policy with runPar, so
// the two paths cannot drift apart.
func runSeq(ctx context.Context, ck *chunker, opts Options, fn func([]trace.Result) error) (Stats, error) {
	var (
		st     Stats
		runErr error
	)
	dec := newDecoder(opts)
	ck.run(func(c *lineChunk) bool {
		if err := ctx.Err(); err != nil {
			runErr = err
			chunkPool.Put(c)
			return false
		}
		results, errs := decodeChunk(dec, c, opts.Validate)
		chunkPool.Put(c)
		if err := deliver(&st, opts, results, errs, fn); err != nil {
			runErr = err
			return false
		}
		return true
	})
	st.Lines, st.Bytes = ck.lines, ck.bytes
	if runErr == nil {
		runErr = ck.err
	}
	if runErr == nil {
		runErr = ctx.Err()
	}
	return st, runErr
}

// runPar is the parallel path, mirroring the atlas generator's topology in
// the opposite direction: one chunker goroutine cuts sequence-numbered line
// chunks, workers decode them concurrently, and the caller's goroutine
// reorders completed chunks by sequence and delivers them — so delivery
// order, batch grouping and every byte of every result match the
// sequential path. A window semaphore bounds in-flight chunks (and with
// them the reorder buffer), back-pressuring the chunker when the consumer
// is the bottleneck.
func runPar(ctx context.Context, ck *chunker, opts Options, fn func([]trace.Result) error) (Stats, error) {
	workers := opts.Workers
	ctx2, cancel := context.WithCancel(ctx)
	defer cancel()

	tasks := make(chan *lineChunk, workers)
	results := make(chan *decodedChunk, workers)
	window := make(chan struct{}, 4*workers) // in-flight chunk bound

	go func() {
		defer close(tasks)
		ck.run(func(c *lineChunk) bool {
			select {
			case window <- struct{}{}:
			case <-ctx2.Done():
				chunkPool.Put(c)
				return false
			}
			select {
			case tasks <- c:
				return true
			case <-ctx2.Done():
				chunkPool.Put(c)
				return false
			}
		})
	}()

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			dec := newDecoder(opts)
			for c := range tasks {
				dc := &decodedChunk{seq: c.seq}
				dc.results, dc.errs = decodeChunk(dec, c, opts.Validate)
				chunkPool.Put(c)
				select {
				case results <- dc:
				case <-ctx2.Done():
					return
				}
			}
		}()
	}
	go func() {
		wg.Wait()
		close(results)
	}()

	// Reorder and deliver on the caller's goroutine. pending holds chunks
	// that decoded ahead of sequence; its size is bounded by the window.
	var (
		st      Stats
		next    uint64
		runErr  error
		pending = make(map[uint64]*decodedChunk, 4*workers)
	)
	for dc := range results {
		pending[dc.seq] = dc
		for runErr == nil {
			c, ok := pending[next]
			if !ok {
				break
			}
			delete(pending, next)
			next++
			<-window // chunk leaves flight; chunker may refill
			if err := deliver(&st, opts, c.results, c.errs, fn); err != nil {
				runErr = err
			}
		}
		if runErr != nil {
			cancel() // stop chunker and workers; results will close
		}
	}
	// The chunker exited before tasks closed, which happened before the
	// workers exited, which happened before results closed — so its
	// counters and read error are safely visible here.
	st.Lines, st.Bytes = ck.lines, ck.bytes
	if runErr == nil {
		runErr = ck.err
	}
	if runErr == nil {
		runErr = ctx.Err()
	}
	return st, runErr
}
