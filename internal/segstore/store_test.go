package segstore

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"testing"
	"time"
)

// synthRecord builds a deterministic record for bin index i with a mix of
// populated and empty sections.
func synthRecord(i int) *BinRecord {
	bin := time.Date(2015, 5, 1, i, 0, 0, 0, time.UTC)
	rec := &BinRecord{
		Bin:      bin,
		FirstBin: time.Date(2015, 5, 1, 0, 0, 0, 0, time.UTC),
		Results:  int64(1000 * (i + 1)),
	}
	if i%3 != 0 {
		for j := 0; j < i%4+1; j++ {
			rec.Delay = append(rec.Delay, DelayRow{
				Bin:       bin,
				Link:      fmt.Sprintf("10.0.%d.1-10.0.%d.2", j, j+1),
				MedianMS:  float64(i) + 0.25,
				RefMS:     float64(i) + 0.125,
				ShiftMS:   0.125,
				Deviation: float64(j) * 1.5,
				Probes:    int32(10 + j),
				ASes:      int32(j),
			})
		}
	}
	if i%2 == 0 {
		rec.Fwd = append(rec.Fwd, FwdRow{
			Bin: bin, Router: fmt.Sprintf("192.0.2.%d", i), Dst: "198.51.100.0",
			TopHop: "203.0.113.9", Rho: -0.5, TopR: 0.75,
		})
	}
	if i%5 == 1 {
		rec.Events = append(rec.Events, EventRow{Bin: bin, ASN: uint32(64500 + i), Type: 1, Magnitude: 12.5})
	}
	for j := 0; j < i%3; j++ {
		rec.Mag = append(rec.Mag, SeriesRow{Bin: bin, ASN: uint32(64500 + j), Family: uint8(j % 2), V: float64(i) / 4})
		rec.Raw = append(rec.Raw, SeriesRow{Bin: bin, ASN: uint32(64500 + j), Family: uint8(j % 2), V: float64(i) * 2})
	}
	return rec
}

func synthRecords(n int) []*BinRecord {
	out := make([]*BinRecord, n)
	for i := range out {
		out[i] = synthRecord(i)
	}
	return out
}

func TestRecordRoundTrip(t *testing.T) {
	for i, rec := range synthRecords(12) {
		enc := AppendRecord(nil, rec)
		var got BinRecord
		if err := DecodeRecord(enc, &got); err != nil {
			t.Fatalf("record %d: decode: %v", i, err)
		}
		if !reflect.DeepEqual(normalize(rec), normalize(&got)) {
			t.Fatalf("record %d: round trip mismatch\n in: %+v\nout: %+v", i, rec, &got)
		}
		// Re-encoding the decoded record must reproduce the bytes.
		if re := AppendRecord(nil, &got); !bytes.Equal(enc, re) {
			t.Fatalf("record %d: re-encode differs", i)
		}
	}
}

// normalize maps a record to a DeepEqual-friendly form (nil and empty
// slices compare equal; times collapse to unix seconds UTC).
func normalize(r *BinRecord) *BinRecord {
	c := *r
	if len(c.Delay) == 0 {
		c.Delay = nil
	}
	if len(c.Fwd) == 0 {
		c.Fwd = nil
	}
	if len(c.Events) == 0 {
		c.Events = nil
	}
	if len(c.Mag) == 0 {
		c.Mag = nil
	}
	if len(c.Raw) == 0 {
		c.Raw = nil
	}
	c.Bin = c.Bin.UTC()
	c.FirstBin = c.FirstBin.UTC()
	return &c
}

func TestRecordRoundTripNaN(t *testing.T) {
	rec := &BinRecord{
		Bin:      time.Unix(3600, 0).UTC(),
		FirstBin: time.Unix(0, 0).UTC(),
		Mag:      []SeriesRow{{Bin: time.Unix(3600, 0).UTC(), ASN: 1, Family: FamilyDelay, V: math.NaN()}},
	}
	enc := AppendRecord(nil, rec)
	var got BinRecord
	if err := DecodeRecord(enc, &got); err != nil {
		t.Fatal(err)
	}
	// NaN payloads must survive bit-for-bit (magnitudes can be NaN).
	if re := AppendRecord(nil, &got); !bytes.Equal(enc, re) {
		t.Fatal("NaN payload did not round-trip bit-identically")
	}
}

func TestStoreAppendReopen(t *testing.T) {
	for _, backend := range []string{"mem", "dir"} {
		t.Run(backend, func(t *testing.T) {
			var open func() (*Store, error)
			switch backend {
			case "mem":
				fs := NewMemFS()
				open = func() (*Store, error) { return OpenFS(fs) }
			case "dir":
				dir := t.TempDir()
				open = func() (*Store, error) { return Open(dir) }
			}
			recs := synthRecords(10)

			st, err := open()
			if err != nil {
				t.Fatal(err)
			}
			if st.Len() != 0 {
				t.Fatalf("fresh store has %d segments", st.Len())
			}
			for _, rec := range recs[:6] {
				if err := st.Append(rec); err != nil {
					t.Fatal(err)
				}
			}
			// Out-of-order bins are rejected.
			if err := st.Append(recs[2]); err == nil {
				t.Fatal("append of non-increasing bin succeeded")
			}
			checkStore(t, st, recs[:6])
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}

			// Reopen: committed prefix intact, appends resume.
			st, err = open()
			if err != nil {
				t.Fatal(err)
			}
			if ri := st.Recovery(); ri.Bins != 6 || ri.TruncatedData != 0 || ri.TruncatedEntries != 0 {
				t.Fatalf("clean reopen recovery = %+v", ri)
			}
			for _, rec := range recs[6:] {
				if err := st.Append(rec); err != nil {
					t.Fatal(err)
				}
			}
			checkStore(t, st, recs)
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func checkStore(t *testing.T, st *Store, want []*BinRecord) {
	t.Helper()
	if st.Len() != len(want) {
		t.Fatalf("Len = %d, want %d", st.Len(), len(want))
	}
	last, ok := st.LastBin()
	if len(want) == 0 {
		if ok {
			t.Fatal("LastBin ok on empty store")
		}
		return
	}
	if !ok || !last.Equal(want[len(want)-1].Bin) {
		t.Fatalf("LastBin = %v %v, want %v", last, ok, want[len(want)-1].Bin)
	}
	var rec BinRecord
	for i, w := range want {
		if !st.BinAt(i).Equal(w.Bin) {
			t.Fatalf("BinAt(%d) = %v, want %v", i, st.BinAt(i), w.Bin)
		}
		if err := st.Record(i, &rec); err != nil {
			t.Fatalf("Record(%d): %v", i, err)
		}
		if !reflect.DeepEqual(normalize(w), normalize(&rec)) {
			t.Fatalf("Record(%d) mismatch\nwant %+v\n got %+v", i, w, &rec)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	enc := AppendRecord(nil, synthRecord(5))
	cases := map[string][]byte{
		"empty":      {},
		"short":      enc[:3],
		"bad magic":  append([]byte{1, 2, 3, 4}, enc[4:]...),
		"truncated":  enc[:len(enc)-1],
		"trailing":   append(append([]byte{}, enc...), 0),
		// Counts start at byte 32 (after magic, flags, bin, firstBin, results).
		"huge count": func() []byte { b := append([]byte{}, enc...); b[32] = 0xff; b[33] = 0xff; b[34] = 0xff; return b }(),
	}
	for name, b := range cases {
		var rec BinRecord
		err := DecodeRecord(b, &rec)
		if err == nil {
			t.Fatalf("%s: decode succeeded", name)
		}
		var ce *CorruptError
		if !asCorrupt(err, &ce) {
			t.Fatalf("%s: error %v is not a *CorruptError", name, err)
		}
	}
}

func asCorrupt(err error, target **CorruptError) bool {
	ce, ok := err.(*CorruptError)
	if ok {
		*target = ce
	}
	return ok
}

func TestForeignFileRejected(t *testing.T) {
	fs := NewMemFS()
	f, _ := fs.OpenFile(dataName)
	f.WriteAt([]byte("this is definitely not a segment store file"), 0)
	if _, err := OpenFS(fs); err == nil {
		t.Fatal("open of a foreign file succeeded")
	}
}
