// Package segstore is the append-only on-disk segment store behind the
// serving layer: one compact columnar segment per closed analysis bin,
// holding exactly the wire-form state the snapshot publisher assembles —
// the bin's delay/forwarding alarms, the per-AS event list, the per-AS
// magnitude points appended by the incremental close, and the raw per-AS
// deviation/responsibility sums the magnitude window math needs.
//
// # Files and commit protocol
//
// A store directory holds two files:
//
//	segments.dat   16-byte header, then segment payloads back to back
//	manifest.log   16-byte header, then fixed 32-byte committed entries
//
// A commit is strictly ordered:
//
//  1. append the encoded segment payload to segments.dat
//  2. fsync segments.dat
//  3. append a 32-byte manifest entry {offset, length, payload CRC-32C,
//     bin, entry magic, entry CRC-32C} to manifest.log
//  4. fsync manifest.log
//
// The manifest is the commit record: a segment exists if and only if a
// valid manifest entry describes it. Because the payload is durable
// before its entry is written, a crash at ANY byte of the sequence
// leaves either (a) a data tail no entry points at, or (b) a torn or
// missing manifest entry — both recoverable.
//
// # Recovery state machine
//
// Open scans manifest entries in order and stops at the first invalid
// one: short entry, bad entry magic or entry CRC, non-contiguous offset,
// entry pointing past the end of segments.dat, non-increasing bin, or a
// payload whose CRC-32C does not match. Everything before the cut is the
// committed prefix; everything after — the torn manifest tail and the
// unreferenced data tail — is truncated away, both files are fsynced,
// and appends resume at the truncated tails. Recovery is idempotent: a
// crash during recovery truncation just re-runs it on the next open.
//
// # Reads
//
// Committed payloads are read zero-copy through a read-only shared mmap
// of segments.dat on Linux (remapped lazily as the file grows), with a
// plain ReadAt fallback elsewhere and on non-os filesystems. Decoding is
// defensive: any mutated or truncated payload yields a *CorruptError,
// never a panic — pinned by FuzzSegmentRoundTrip.
//
// # Crash injection
//
// The store runs on a narrow FS/File interface. DirFS is the real
// os-backed implementation; MemFS is an in-memory implementation whose
// write/sync journal lets the crash-injection harness replay a commit up
// to every byte offset and sync point and prove each cut recovers to
// exactly the committed prefix.
package segstore
