package segstore

import (
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// Series families for SeriesRow.Family.
const (
	FamilyDelay = uint8(0)
	FamilyFwd   = uint8(1)
)

// DelayRow is one delay-change alarm in wire form (strings exactly as the
// serving layer publishes them, so restored payloads are byte-identical).
type DelayRow struct {
	Bin       time.Time
	Link      string
	MedianMS  float64
	RefMS     float64
	ShiftMS   float64
	Deviation float64
	Probes    int32
	ASes      int32
}

// FwdRow is one forwarding anomaly in wire form.
type FwdRow struct {
	Bin    time.Time
	Router string
	Dst    string
	TopHop string
	Rho    float64
	TopR   float64
}

// EventRow is one per-AS event, stored numerically (ASN and event type are
// re-stringified on restore through the same code path that produced the
// original wire form).
type EventRow struct {
	Bin       time.Time
	ASN       uint32
	Type      uint8
	Magnitude float64
}

// SeriesRow is one per-(family, AS, bin) float: either a magnitude point
// appended by the incremental close (including its zero backfill) or a raw
// deviation/responsibility sum finalized by the close.
type SeriesRow struct {
	Bin    time.Time
	ASN    uint32
	Family uint8
	V      float64
}

// BinRecord is everything one closed bin contributes to the read model.
// Mag carries the magnitude points the close appended; Raw carries the raw
// series sums the magnitude window math needs after a restart.
type BinRecord struct {
	Bin      time.Time
	FirstBin time.Time
	Results  int64
	Delay    []DelayRow
	Fwd      []FwdRow
	Events   []EventRow
	Mag      []SeriesRow
	Raw      []SeriesRow
}

// payloadMagic opens every encoded segment payload.
const payloadMagic = uint32(0x31474553) // "SEG1"

// Minimal encoded size of each row kind, used to reject absurd counts
// before allocating.
const (
	minDelayRow  = 8 + 4*8 + 2*4 + 2 // bin, 4 floats, probes+ases, empty-string len
	minFwdRow    = 8 + 2*8 + 3*2
	minEventRow  = 8 + 4 + 1 + 8
	minSeriesRow = 8 + 4 + 1 + 8
	headerSize   = 4 + 4 + 3*8 + 5*4
)

// CorruptError reports segment bytes that cannot be decoded. Every decode
// failure is one of these — decoding never panics on hostile input.
type CorruptError struct {
	Offset int    // byte offset in the payload where decoding failed
	Reason string // what was wrong
}

func (e *CorruptError) Error() string {
	return fmt.Sprintf("segstore: corrupt segment at byte %d: %s", e.Offset, e.Reason)
}

func corrupt(off int, format string, args ...any) error {
	return &CorruptError{Offset: off, Reason: fmt.Sprintf(format, args...)}
}

// AppendRecord appends the columnar encoding of rec to dst and returns the
// extended slice. Layout (little-endian throughout):
//
//	u32 payload magic, u32 flags (0)
//	i64 bin, i64 firstBin, i64 results
//	u32 nDelay, u32 nFwd, u32 nEvents, u32 nMag, u32 nRaw
//	delay columns:  bins i64×n, median f64×n, ref f64×n, shift f64×n,
//	                dev f64×n, probes i32×n, ases i32×n, links (u16+bytes)×n
//	fwd columns:    bins i64×n, rho f64×n, topR f64×n,
//	                routers (u16+bytes)×n, dsts ×n, topHops ×n
//	event columns:  asn u32×n, bin i64×n, type u8×n, magnitude f64×n
//	mag columns:    family u8×n, asn u32×n, bin i64×n, v f64×n
//	raw columns:    same as mag
func AppendRecord(dst []byte, rec *BinRecord) []byte {
	dst = le32(dst, payloadMagic)
	dst = le32(dst, 0)
	dst = le64(dst, uint64(rec.Bin.Unix()))
	dst = le64(dst, uint64(rec.FirstBin.Unix()))
	dst = le64(dst, uint64(rec.Results))
	dst = le32(dst, uint32(len(rec.Delay)))
	dst = le32(dst, uint32(len(rec.Fwd)))
	dst = le32(dst, uint32(len(rec.Events)))
	dst = le32(dst, uint32(len(rec.Mag)))
	dst = le32(dst, uint32(len(rec.Raw)))

	for i := range rec.Delay {
		dst = le64(dst, uint64(rec.Delay[i].Bin.Unix()))
	}
	for i := range rec.Delay {
		dst = le64(dst, math.Float64bits(rec.Delay[i].MedianMS))
	}
	for i := range rec.Delay {
		dst = le64(dst, math.Float64bits(rec.Delay[i].RefMS))
	}
	for i := range rec.Delay {
		dst = le64(dst, math.Float64bits(rec.Delay[i].ShiftMS))
	}
	for i := range rec.Delay {
		dst = le64(dst, math.Float64bits(rec.Delay[i].Deviation))
	}
	for i := range rec.Delay {
		dst = le32(dst, uint32(rec.Delay[i].Probes))
	}
	for i := range rec.Delay {
		dst = le32(dst, uint32(rec.Delay[i].ASes))
	}
	for i := range rec.Delay {
		dst = leStr(dst, rec.Delay[i].Link)
	}

	for i := range rec.Fwd {
		dst = le64(dst, uint64(rec.Fwd[i].Bin.Unix()))
	}
	for i := range rec.Fwd {
		dst = le64(dst, math.Float64bits(rec.Fwd[i].Rho))
	}
	for i := range rec.Fwd {
		dst = le64(dst, math.Float64bits(rec.Fwd[i].TopR))
	}
	for i := range rec.Fwd {
		dst = leStr(dst, rec.Fwd[i].Router)
	}
	for i := range rec.Fwd {
		dst = leStr(dst, rec.Fwd[i].Dst)
	}
	for i := range rec.Fwd {
		dst = leStr(dst, rec.Fwd[i].TopHop)
	}

	for i := range rec.Events {
		dst = le32(dst, rec.Events[i].ASN)
	}
	for i := range rec.Events {
		dst = le64(dst, uint64(rec.Events[i].Bin.Unix()))
	}
	for i := range rec.Events {
		dst = append(dst, rec.Events[i].Type)
	}
	for i := range rec.Events {
		dst = le64(dst, math.Float64bits(rec.Events[i].Magnitude))
	}

	dst = appendSeries(dst, rec.Mag)
	dst = appendSeries(dst, rec.Raw)
	return dst
}

func appendSeries(dst []byte, rows []SeriesRow) []byte {
	for i := range rows {
		dst = append(dst, rows[i].Family)
	}
	for i := range rows {
		dst = le32(dst, rows[i].ASN)
	}
	for i := range rows {
		dst = le64(dst, uint64(rows[i].Bin.Unix()))
	}
	for i := range rows {
		dst = le64(dst, math.Float64bits(rows[i].V))
	}
	return dst
}

// DecodeRecord decodes a segment payload into rec, reusing rec's slices.
// Any malformed input yields a *CorruptError; valid encodings round-trip
// exactly (AppendRecord ∘ DecodeRecord is the identity on the encoding).
func DecodeRecord(b []byte, rec *BinRecord) error {
	r := reader{b: b}
	magic, err := r.u32()
	if err != nil {
		return err
	}
	if magic != payloadMagic {
		return corrupt(0, "bad payload magic %#x", magic)
	}
	flags, err := r.u32()
	if err != nil {
		return err
	}
	if flags != 0 {
		return corrupt(4, "unsupported payload flags %#x", flags)
	}
	binSec, err := r.i64()
	if err != nil {
		return err
	}
	firstSec, err := r.i64()
	if err != nil {
		return err
	}
	results, err := r.i64()
	if err != nil {
		return err
	}
	nDelay, err := r.count(minDelayRow)
	if err != nil {
		return err
	}
	nFwd, err := r.count(minFwdRow)
	if err != nil {
		return err
	}
	nEvents, err := r.count(minEventRow)
	if err != nil {
		return err
	}
	nMag, err := r.count(minSeriesRow)
	if err != nil {
		return err
	}
	nRaw, err := r.count(minSeriesRow)
	if err != nil {
		return err
	}

	rec.Bin = unixUTC(binSec)
	rec.FirstBin = unixUTC(firstSec)
	rec.Results = results
	rec.Delay = growDelay(rec.Delay[:0], nDelay)
	rec.Fwd = growFwd(rec.Fwd[:0], nFwd)
	rec.Events = growEvents(rec.Events[:0], nEvents)
	rec.Mag = growSeries(rec.Mag[:0], nMag)
	rec.Raw = growSeries(rec.Raw[:0], nRaw)

	for i := range rec.Delay {
		s, err := r.i64()
		if err != nil {
			return err
		}
		rec.Delay[i].Bin = unixUTC(s)
	}
	for i := range rec.Delay {
		if rec.Delay[i].MedianMS, err = r.f64(); err != nil {
			return err
		}
	}
	for i := range rec.Delay {
		if rec.Delay[i].RefMS, err = r.f64(); err != nil {
			return err
		}
	}
	for i := range rec.Delay {
		if rec.Delay[i].ShiftMS, err = r.f64(); err != nil {
			return err
		}
	}
	for i := range rec.Delay {
		if rec.Delay[i].Deviation, err = r.f64(); err != nil {
			return err
		}
	}
	for i := range rec.Delay {
		v, err := r.u32()
		if err != nil {
			return err
		}
		rec.Delay[i].Probes = int32(v)
	}
	for i := range rec.Delay {
		v, err := r.u32()
		if err != nil {
			return err
		}
		rec.Delay[i].ASes = int32(v)
	}
	for i := range rec.Delay {
		if rec.Delay[i].Link, err = r.str(); err != nil {
			return err
		}
	}

	for i := range rec.Fwd {
		s, err := r.i64()
		if err != nil {
			return err
		}
		rec.Fwd[i].Bin = unixUTC(s)
	}
	for i := range rec.Fwd {
		if rec.Fwd[i].Rho, err = r.f64(); err != nil {
			return err
		}
	}
	for i := range rec.Fwd {
		if rec.Fwd[i].TopR, err = r.f64(); err != nil {
			return err
		}
	}
	for i := range rec.Fwd {
		if rec.Fwd[i].Router, err = r.str(); err != nil {
			return err
		}
	}
	for i := range rec.Fwd {
		if rec.Fwd[i].Dst, err = r.str(); err != nil {
			return err
		}
	}
	for i := range rec.Fwd {
		if rec.Fwd[i].TopHop, err = r.str(); err != nil {
			return err
		}
	}

	for i := range rec.Events {
		if rec.Events[i].ASN, err = r.u32(); err != nil {
			return err
		}
	}
	for i := range rec.Events {
		s, err := r.i64()
		if err != nil {
			return err
		}
		rec.Events[i].Bin = unixUTC(s)
	}
	for i := range rec.Events {
		if rec.Events[i].Type, err = r.u8(); err != nil {
			return err
		}
	}
	for i := range rec.Events {
		if rec.Events[i].Magnitude, err = r.f64(); err != nil {
			return err
		}
	}

	if err := decodeSeries(&r, rec.Mag); err != nil {
		return err
	}
	if err := decodeSeries(&r, rec.Raw); err != nil {
		return err
	}
	if r.off != len(r.b) {
		return corrupt(r.off, "%d trailing bytes", len(r.b)-r.off)
	}
	return nil
}

func decodeSeries(r *reader, rows []SeriesRow) error {
	var err error
	for i := range rows {
		if rows[i].Family, err = r.u8(); err != nil {
			return err
		}
		if rows[i].Family > FamilyFwd {
			return corrupt(r.off-1, "bad series family %d", rows[i].Family)
		}
	}
	for i := range rows {
		if rows[i].ASN, err = r.u32(); err != nil {
			return err
		}
	}
	for i := range rows {
		s, err := r.i64()
		if err != nil {
			return err
		}
		rows[i].Bin = unixUTC(s)
	}
	for i := range rows {
		if rows[i].V, err = r.f64(); err != nil {
			return err
		}
	}
	return nil
}

// unixUTC restores a bin time. Bins are whole-second UTC wall times
// (timeseries.Bin truncates), so this is an exact round trip.
func unixUTC(sec int64) time.Time { return time.Unix(sec, 0).UTC() }

func le32(dst []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(dst, v) }
func le64(dst []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(dst, v) }

func leStr(dst []byte, s string) []byte {
	if len(s) > math.MaxUint16 {
		// Link/router keys are short interned identifiers; anything this
		// long is a bug upstream. Truncate deterministically rather than
		// corrupt the frame.
		s = s[:math.MaxUint16]
	}
	dst = binary.LittleEndian.AppendUint16(dst, uint16(len(s)))
	return append(dst, s...)
}

func growDelay(s []DelayRow, n int) []DelayRow {
	if cap(s) < n {
		return make([]DelayRow, n)
	}
	return s[:n]
}

func growFwd(s []FwdRow, n int) []FwdRow {
	if cap(s) < n {
		return make([]FwdRow, n)
	}
	return s[:n]
}

func growEvents(s []EventRow, n int) []EventRow {
	if cap(s) < n {
		return make([]EventRow, n)
	}
	return s[:n]
}

func growSeries(s []SeriesRow, n int) []SeriesRow {
	if cap(s) < n {
		return make([]SeriesRow, n)
	}
	return s[:n]
}

// reader is a bounds-checked little-endian cursor over a payload.
type reader struct {
	b   []byte
	off int
}

func (r *reader) need(n int) error {
	if len(r.b)-r.off < n {
		return corrupt(r.off, "truncated: need %d bytes, have %d", n, len(r.b)-r.off)
	}
	return nil
}

func (r *reader) u8() (uint8, error) {
	if err := r.need(1); err != nil {
		return 0, err
	}
	v := r.b[r.off]
	r.off++
	return v, nil
}

func (r *reader) u16() (uint16, error) {
	if err := r.need(2); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint16(r.b[r.off:])
	r.off += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if err := r.need(4); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint32(r.b[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) i64() (int64, error) {
	if err := r.need(8); err != nil {
		return 0, err
	}
	v := binary.LittleEndian.Uint64(r.b[r.off:])
	r.off += 8
	return int64(v), nil
}

func (r *reader) f64() (float64, error) {
	v, err := r.i64()
	return math.Float64frombits(uint64(v)), err
}

func (r *reader) str() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	if err := r.need(int(n)); err != nil {
		return "", err
	}
	s := string(r.b[r.off : r.off+int(n)])
	r.off += int(n)
	return s, nil
}

// count reads a row count and rejects counts that could not possibly fit
// in the remaining bytes, so hostile headers cannot trigger huge
// allocations before the per-field bounds checks run.
func (r *reader) count(minRow int) (int, error) {
	v, err := r.u32()
	if err != nil {
		return 0, err
	}
	if int64(v)*int64(minRow) > int64(len(r.b)) {
		return 0, corrupt(r.off-4, "count %d exceeds payload capacity", v)
	}
	return int(v), nil
}
