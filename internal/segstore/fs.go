package segstore

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// FS is the narrow filesystem surface the store runs on. DirFS is the real
// thing; MemFS backs the crash-injection harness.
type FS interface {
	// OpenFile opens name for read/write, creating it (durably, for DirFS:
	// the directory entry is fsynced) if it does not exist.
	OpenFile(name string) (File, error)
}

// File is the per-file surface: positioned reads and writes, truncate,
// and a durability barrier. The store only ever appends (WriteAt at the
// known tail) and truncates during recovery.
type File interface {
	io.ReaderAt
	io.Closer
	WriteAt(p []byte, off int64) (int, error)
	Truncate(size int64) error
	Sync() error
	Size() (int64, error)
}

// ---------------------------------------------------------------------------
// DirFS: the os-backed implementation.

// DirFS roots an FS at an OS directory, creating it if needed.
func DirFS(dir string) (FS, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &dirFS{dir: dir}, nil
}

// DirFSReadOnly roots an FS at an existing OS directory without creating
// anything: files open O_RDONLY and a missing file or directory is an
// error. Writes through the returned files fail at the OS level; the store
// layer never attempts them on a read-only open.
func DirFSReadOnly(dir string) (FS, error) {
	if st, err := os.Stat(dir); err != nil {
		return nil, err
	} else if !st.IsDir() {
		return nil, fmt.Errorf("segstore: %s is not a directory", dir)
	}
	return &dirFS{dir: dir, readonly: true}, nil
}

type dirFS struct {
	dir      string
	readonly bool
}

func (d *dirFS) OpenFile(name string) (File, error) {
	path := filepath.Join(d.dir, name)
	if d.readonly {
		f, err := os.Open(path)
		if err != nil {
			return nil, err
		}
		return &dirFile{f: f}, nil
	}
	_, statErr := os.Stat(path)
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	if os.IsNotExist(statErr) {
		// A freshly created file is only durable once its directory entry
		// is synced; without this a post-crash open could see an empty
		// directory with a stale manifest elsewhere.
		if err := syncDir(d.dir); err != nil {
			f.Close()
			return nil, err
		}
	}
	return &dirFile{f: f}, nil
}

func syncDir(dir string) error {
	df, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer df.Close()
	return df.Sync()
}

type dirFile struct{ f *os.File }

func (d *dirFile) ReadAt(p []byte, off int64) (int, error)  { return d.f.ReadAt(p, off) }
func (d *dirFile) WriteAt(p []byte, off int64) (int, error) { return d.f.WriteAt(p, off) }
func (d *dirFile) Truncate(size int64) error                { return d.f.Truncate(size) }
func (d *dirFile) Sync() error                              { return d.f.Sync() }
func (d *dirFile) Close() error                             { return d.f.Close() }

func (d *dirFile) Size() (int64, error) {
	st, err := d.f.Stat()
	if err != nil {
		return 0, err
	}
	return st.Size(), nil
}

// ---------------------------------------------------------------------------
// MemFS: in-memory files with a write/sync journal for crash simulation.

// Op is one journaled filesystem operation: either a write of Data at Off
// or (Sync=true) a durability barrier. The crash harness replays a
// recorded journal with a byte budget to materialize every intermediate
// on-disk state a crash could expose.
type Op struct {
	Name string
	Off  int64
	Data []byte
	Sync bool
}

// Cost is the number of cut points the op contributes: one per written
// byte, one for a sync.
func (o Op) Cost() int {
	if o.Sync {
		return 1
	}
	return len(o.Data)
}

// MemFS is an in-memory FS. All methods are safe for concurrent use,
// though the store serializes its own access.
type MemFS struct {
	mu      sync.Mutex
	files   map[string]*memFile
	journal []Op
	record  bool
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memFile)}
}

type memFile struct {
	fs   *MemFS
	name string
	buf  []byte
}

func (m *MemFS) OpenFile(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	f, ok := m.files[name]
	if !ok {
		f = &memFile{fs: m, name: name}
		m.files[name] = f
	}
	return f, nil
}

// Clone deep-copies the filesystem contents (the journal is not cloned).
func (m *MemFS) Clone() *MemFS {
	m.mu.Lock()
	defer m.mu.Unlock()
	c := NewMemFS()
	for name, f := range m.files {
		c.files[name] = &memFile{fs: c, name: name, buf: append([]byte(nil), f.buf...)}
	}
	return c
}

// StartJournal begins recording write and sync operations. The returned
// stop function ends recording and returns the journal.
func (m *MemFS) StartJournal() (stop func() []Op) {
	m.mu.Lock()
	m.journal = nil
	m.record = true
	m.mu.Unlock()
	return func() []Op {
		m.mu.Lock()
		defer m.mu.Unlock()
		m.record = false
		j := m.journal
		m.journal = nil
		return j
	}
}

// JournalCost sums the cut points of a journal: one per written byte plus
// one per sync.
func JournalCost(ops []Op) int {
	total := 0
	for _, op := range ops {
		total += op.Cost()
	}
	return total
}

// ApplyOps replays ops onto the filesystem with a cut-point budget: ops
// apply in order while budget lasts; a write caught by the cut applies
// only its first remaining-budget bytes; everything after is dropped.
// Combined with enumerating budget = 0..JournalCost(ops), this
// materializes every crash state the ordered commit protocol can expose
// (later states — e.g. a torn manifest entry — only exist because every
// earlier sync completed).
func ApplyOps(m *MemFS, ops []Op, budget int) {
	for _, op := range ops {
		if budget <= 0 {
			return
		}
		if op.Sync {
			budget--
			continue
		}
		n := len(op.Data)
		if n > budget {
			n = budget
		}
		f, err := m.OpenFile(op.Name)
		if err != nil {
			panic(fmt.Sprintf("segstore: ApplyOps open %s: %v", op.Name, err))
		}
		if _, err := f.WriteAt(op.Data[:n], op.Off); err != nil {
			panic(fmt.Sprintf("segstore: ApplyOps write %s: %v", op.Name, err))
		}
		budget -= n
	}
}

func (f *memFile) ReadAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("segstore: memfs: negative offset %d", off)
	}
	if off >= int64(len(f.buf)) {
		return 0, io.EOF
	}
	n := copy(p, f.buf[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *memFile) WriteAt(p []byte, off int64) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if off < 0 {
		return 0, fmt.Errorf("segstore: memfs: negative offset %d", off)
	}
	end := off + int64(len(p))
	if end > int64(len(f.buf)) {
		grown := make([]byte, end)
		copy(grown, f.buf)
		f.buf = grown
	}
	copy(f.buf[off:], p)
	if f.fs.record {
		f.fs.journal = append(f.fs.journal, Op{Name: f.name, Off: off, Data: append([]byte(nil), p...)})
	}
	return len(p), nil
}

func (f *memFile) Truncate(size int64) error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if size < 0 {
		return fmt.Errorf("segstore: memfs: negative truncate %d", size)
	}
	if size < int64(len(f.buf)) {
		f.buf = f.buf[:size]
	} else if size > int64(len(f.buf)) {
		grown := make([]byte, size)
		copy(grown, f.buf)
		f.buf = grown
	}
	return nil
}

func (f *memFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.fs.record {
		f.fs.journal = append(f.fs.journal, Op{Name: f.name, Sync: true})
	}
	return nil
}

func (f *memFile) Close() error { return nil }

func (f *memFile) Size() (int64, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	return int64(len(f.buf)), nil
}
