//go:build linux

package segstore

import "syscall"

// mmap maps the first size bytes of the data file read-only and shared:
// committed segments are immutable, so readers can alias the page cache
// with zero copies.
func (d *dirFile) mmap(size int64) ([]byte, error) {
	if size <= 0 {
		return nil, nil
	}
	return syscall.Mmap(int(d.f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

func (d *dirFile) munmap(b []byte) {
	if len(b) > 0 {
		syscall.Munmap(b)
	}
}
