package segstore

import (
	"testing"
	"time"
)

// benchRecord is a realistically sized closed bin: a few alarms, a few
// events, and per-AS magnitude/raw rows for ~64 ASes.
func benchRecord(i int) *BinRecord {
	bin := time.Date(2015, 5, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Hour)
	rec := &BinRecord{
		Bin:      bin,
		FirstBin: time.Date(2015, 5, 1, 0, 0, 0, 0, time.UTC),
		Results:  int64(200_000 * (i + 1)),
	}
	for j := 0; j < 8; j++ {
		rec.Delay = append(rec.Delay, DelayRow{
			Bin: bin, Link: "198.51.100.17-198.51.100.33",
			MedianMS: 42.5, RefMS: 30.25, ShiftMS: 12.25, Deviation: 14.5,
			Probes: 120, ASes: 3,
		})
	}
	for j := 0; j < 2; j++ {
		rec.Fwd = append(rec.Fwd, FwdRow{
			Bin: bin, Router: "192.0.2.129", Dst: "203.0.113.0",
			TopHop: "198.51.100.65", Rho: -0.62, TopR: 0.9,
		})
	}
	rec.Events = append(rec.Events, EventRow{Bin: bin, ASN: 64500, Type: 0, Magnitude: 18.25})
	for a := 0; a < 64; a++ {
		rec.Mag = append(rec.Mag, SeriesRow{Bin: bin, ASN: uint32(64500 + a), Family: uint8(a % 2), V: 1.5})
		rec.Raw = append(rec.Raw, SeriesRow{Bin: bin, ASN: uint32(64500 + a), Family: uint8(a % 2), V: 3.25})
	}
	return rec
}

// BenchmarkSegmentCommit measures one full crash-safe commit (encode,
// payload write, data fsync, manifest append, manifest fsync) on the real
// os-backed store. fsync dominates — this is the floor a per-bin commit
// adds to bin close.
func BenchmarkSegmentCommit(b *testing.B) {
	st, err := Open(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	rec := benchRecord(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; b.Loop(); i++ {
		rec.Bin = time.Unix(int64(i+1)*3600, 0).UTC()
		if err := st.Append(rec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBootRecovery measures a cold open of a month-scale store (720
// hourly bins): manifest scan, payload checksum validation, and a full
// decode of every segment — the whole restart read path.
func BenchmarkBootRecovery(b *testing.B) {
	dir := b.TempDir()
	st, err := Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	const bins = 720
	for i := 0; i < bins; i++ {
		if err := st.Append(benchRecord(i)); err != nil {
			b.Fatal(err)
		}
	}
	st.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for b.Loop() {
		st, err := Open(dir)
		if err != nil {
			b.Fatal(err)
		}
		if st.Len() != bins {
			b.Fatalf("recovered %d bins", st.Len())
		}
		var rec BinRecord
		for i := 0; i < bins; i++ {
			if err := st.Record(i, &rec); err != nil {
				b.Fatal(err)
			}
		}
		st.Close()
	}
}
