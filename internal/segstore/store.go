package segstore

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"
)

const (
	dataName = "segments.dat"
	manName  = "manifest.log"

	fileHeaderSize = 16
	entrySize      = 32
	entryMagic     = uint32(0x314E414D) // "MAN1"

	formatVersion = uint32(1)
)

var (
	dataMagic = [8]byte{'P', 'P', 'S', 'E', 'G', 'D', 'A', 'T'}
	manMagic  = [8]byte{'P', 'P', 'S', 'E', 'G', 'M', 'A', 'N'}

	castagnoli = crc32.MakeTable(crc32.Castagnoli)
)

// entry is one committed manifest record.
type entry struct {
	off    int64  // payload offset in segments.dat
	length uint32 // payload length
	crc    uint32 // CRC-32C of the payload
	bin    int64  // bin unix seconds
}

// RecoveryInfo describes what Open found and repaired.
type RecoveryInfo struct {
	Bins             int   // committed segments recovered
	TruncatedEntries int64 // manifest bytes dropped (torn/invalid tail)
	TruncatedData    int64 // data bytes dropped (unreferenced tail)
}

// Store is an open segment store. It is not safe for concurrent use; the
// publisher serializes commits on the analysis goroutine.
type Store struct {
	fsys     FS
	data     File
	man      File
	entries  []entry
	dataEnd  int64 // end offset of the committed data prefix
	buf      []byte
	scratch  []byte
	mm       []byte // read-only mmap of segments.dat, if available
	rec      RecoveryInfo
	readonly bool
}

// Open opens (creating if needed) a store rooted at an OS directory.
func Open(dir string) (*Store, error) {
	fsys, err := DirFS(dir)
	if err != nil {
		return nil, err
	}
	return OpenFS(fsys)
}

// OpenReadOnly opens an existing store without mutating it: recovery is
// virtual (a torn tail is ignored, not truncated) and Append is rejected.
// Because committed data is append-only, a read-only store is safe to open
// on a directory another process is actively committing to — it serves the
// prefix that was durable at open time. This is the follower bootstrap
// entry point (serve.NewFollower with a local store directory).
func OpenReadOnly(dir string) (*Store, error) {
	fsys, err := DirFSReadOnly(dir)
	if err != nil {
		return nil, err
	}
	return openFS(fsys, true)
}

// OpenFS opens a store on an arbitrary filesystem, running recovery: the
// committed prefix is whatever the manifest validates; any torn tail in
// either file is truncated away.
func OpenFS(fsys FS) (*Store, error) {
	return openFS(fsys, false)
}

// OpenFSReadOnly is OpenReadOnly on an arbitrary filesystem.
func OpenFSReadOnly(fsys FS) (*Store, error) {
	return openFS(fsys, true)
}

func openFS(fsys FS, readonly bool) (*Store, error) {
	s := &Store{fsys: fsys, readonly: readonly}
	var err error
	if s.data, err = fsys.OpenFile(dataName); err != nil {
		return nil, err
	}
	if s.man, err = fsys.OpenFile(manName); err != nil {
		s.data.Close()
		return nil, err
	}
	if err := s.recover(); err != nil {
		s.data.Close()
		s.man.Close()
		return nil, err
	}
	s.remap()
	return s, nil
}

// initHeader validates or (re)writes a 16-byte file header. A file shorter
// than one header cannot hold any committed state (headers are synced at
// creation before any commit), so a torn header resets the file — or, on a
// read-only open, just means an empty committed prefix.
func initHeader(f File, magic [8]byte, readonly bool) (int64, error) {
	size, err := f.Size()
	if err != nil {
		return 0, err
	}
	if size < fileHeaderSize {
		if readonly {
			return fileHeaderSize, nil
		}
		var hdr [fileHeaderSize]byte
		copy(hdr[:], magic[:])
		binary.LittleEndian.PutUint32(hdr[8:], formatVersion)
		if err := f.Truncate(0); err != nil {
			return 0, err
		}
		if _, err := f.WriteAt(hdr[:], 0); err != nil {
			return 0, err
		}
		if err := f.Sync(); err != nil {
			return 0, err
		}
		return fileHeaderSize, nil
	}
	var hdr [fileHeaderSize]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return 0, err
	}
	if [8]byte(hdr[:8]) != magic {
		return 0, fmt.Errorf("segstore: %q is not a segment store file", hdr[:8])
	}
	if v := binary.LittleEndian.Uint32(hdr[8:]); v != formatVersion {
		return 0, fmt.Errorf("segstore: unsupported format version %d", v)
	}
	return size, nil
}

// recover scans the manifest, validates each entry against the data file,
// and truncates both files to the committed prefix.
func (s *Store) recover() error {
	dataSize, err := initHeader(s.data, dataMagic, s.readonly)
	if err != nil {
		return err
	}
	manSize, err := initHeader(s.man, manMagic, s.readonly)
	if err != nil {
		return err
	}

	nEntries := (manSize - fileHeaderSize) / entrySize
	raw := make([]byte, nEntries*entrySize)
	if len(raw) > 0 {
		if _, err := readFull(s.man, raw, fileHeaderSize); err != nil {
			return fmt.Errorf("segstore: reading manifest: %w", err)
		}
	}

	expectOff := int64(fileHeaderSize)
	lastBin := int64(-1 << 62)
	for i := int64(0); i < nEntries; i++ {
		eb := raw[i*entrySize : (i+1)*entrySize]
		e, ok := parseEntry(eb)
		if !ok {
			break
		}
		if e.off != expectOff || e.off+int64(e.length) > dataSize {
			break
		}
		if e.bin <= lastBin {
			break
		}
		payload, err := s.readPayload(e)
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
				break
			}
			return err
		}
		if crc32.Checksum(payload, castagnoli) != e.crc {
			break
		}
		s.entries = append(s.entries, e)
		expectOff = e.off + int64(e.length)
		lastBin = e.bin
	}

	s.dataEnd = expectOff
	s.rec = RecoveryInfo{
		Bins:             len(s.entries),
		TruncatedEntries: manSize - (fileHeaderSize + int64(len(s.entries))*entrySize),
		TruncatedData:    dataSize - s.dataEnd,
	}
	// Truncate the torn tails so appends resume on a clean prefix. This is
	// idempotent: a crash mid-truncation leaves a (shorter) torn tail the
	// next open truncates again. A read-only open never truncates: the torn
	// tail is simply outside the served prefix (and on a live writer's
	// directory it is usually not torn at all, just newer than this open).
	if s.readonly {
		return nil
	}
	if s.rec.TruncatedEntries > 0 {
		if err := s.man.Truncate(fileHeaderSize + int64(len(s.entries))*entrySize); err != nil {
			return err
		}
		if err := s.man.Sync(); err != nil {
			return err
		}
	}
	if s.rec.TruncatedData > 0 {
		if err := s.data.Truncate(s.dataEnd); err != nil {
			return err
		}
		if err := s.data.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// parseEntry validates the fixed 32-byte manifest entry layout:
// off u64 | len u32 | payload crc u32 | bin i64 | magic u32 | entry crc u32.
func parseEntry(b []byte) (entry, bool) {
	if binary.LittleEndian.Uint32(b[24:]) != entryMagic {
		return entry{}, false
	}
	if crc32.Checksum(b[:28], castagnoli) != binary.LittleEndian.Uint32(b[28:]) {
		return entry{}, false
	}
	return entry{
		off:    int64(binary.LittleEndian.Uint64(b[0:])),
		length: binary.LittleEndian.Uint32(b[8:]),
		crc:    binary.LittleEndian.Uint32(b[12:]),
		bin:    int64(binary.LittleEndian.Uint64(b[16:])),
	}, true
}

func appendEntry(dst []byte, e entry) []byte {
	start := len(dst)
	dst = le64(dst, uint64(e.off))
	dst = le32(dst, e.length)
	dst = le32(dst, e.crc)
	dst = le64(dst, uint64(e.bin))
	dst = le32(dst, entryMagic)
	dst = le32(dst, crc32.Checksum(dst[start:start+28], castagnoli))
	return dst
}

// Recovery reports what Open found and repaired.
func (s *Store) Recovery() RecoveryInfo { return s.rec }

// Len is the number of committed segments.
func (s *Store) Len() int { return len(s.entries) }

// BinAt returns the bin time of committed segment i.
func (s *Store) BinAt(i int) time.Time { return unixUTC(s.entries[i].bin) }

// LastBin returns the newest committed bin, if any.
func (s *Store) LastBin() (time.Time, bool) {
	if len(s.entries) == 0 {
		return time.Time{}, false
	}
	return unixUTC(s.entries[len(s.entries)-1].bin), true
}

// Append commits one closed bin: payload write, data fsync, manifest entry
// write, manifest fsync. On return the record is durable. Bins must be
// strictly increasing.
func (s *Store) Append(rec *BinRecord) error {
	if s.readonly {
		return errors.New("segstore: store is open read-only")
	}
	if len(s.entries) > 0 && rec.Bin.Unix() <= s.entries[len(s.entries)-1].bin {
		return fmt.Errorf("segstore: bin %s not after last committed bin %s",
			rec.Bin.UTC().Format(time.RFC3339), unixUTC(s.entries[len(s.entries)-1].bin).Format(time.RFC3339))
	}
	s.buf = AppendRecord(s.buf[:0], rec)
	e := entry{
		off:    s.dataEnd,
		length: uint32(len(s.buf)),
		crc:    crc32.Checksum(s.buf, castagnoli),
		bin:    rec.Bin.Unix(),
	}
	if _, err := s.data.WriteAt(s.buf, e.off); err != nil {
		return fmt.Errorf("segstore: writing segment: %w", err)
	}
	if err := s.data.Sync(); err != nil {
		return fmt.Errorf("segstore: syncing segment: %w", err)
	}
	s.scratch = appendEntry(s.scratch[:0], e)
	manOff := fileHeaderSize + int64(len(s.entries))*entrySize
	if _, err := s.man.WriteAt(s.scratch, manOff); err != nil {
		return fmt.Errorf("segstore: writing manifest entry: %w", err)
	}
	if err := s.man.Sync(); err != nil {
		return fmt.Errorf("segstore: syncing manifest: %w", err)
	}
	s.entries = append(s.entries, e)
	s.dataEnd = e.off + int64(e.length)
	return nil
}

// Payload returns the raw committed payload bytes of segment i. The slice
// aliases the mmap window when one is mapped — treat it as read-only and
// do not retain it across Append calls.
func (s *Store) Payload(i int) ([]byte, error) {
	e := s.entries[i]
	end := e.off + int64(e.length)
	if end <= int64(len(s.mm)) {
		return s.mm[e.off:end:end], nil
	}
	// Segment beyond the mapped window (appended since the last remap):
	// try growing the map once, then fall back to a copying read.
	s.remap()
	if end <= int64(len(s.mm)) {
		return s.mm[e.off:end:end], nil
	}
	if cap(s.scratch) < int(e.length) {
		s.scratch = make([]byte, e.length)
	}
	s.scratch = s.scratch[:e.length]
	if _, err := readFull(s.data, s.scratch, e.off); err != nil {
		return nil, fmt.Errorf("segstore: reading segment %d: %w", i, err)
	}
	return s.scratch, nil
}

// readPayload reads a payload during recovery (no mmap yet).
func (s *Store) readPayload(e entry) ([]byte, error) {
	if cap(s.scratch) < int(e.length) {
		s.scratch = make([]byte, e.length)
	}
	s.scratch = s.scratch[:e.length]
	_, err := readFull(s.data, s.scratch, e.off)
	return s.scratch, err
}

// Record decodes committed segment i into rec, reusing rec's slices.
func (s *Store) Record(i int, rec *BinRecord) error {
	b, err := s.Payload(i)
	if err != nil {
		return err
	}
	return DecodeRecord(b, rec)
}

// remap (re)maps the committed data prefix read-only when the backing file
// supports it. Failure just leaves the ReadAt path in place.
func (s *Store) remap() {
	mp, ok := s.data.(mmapper)
	if !ok {
		return
	}
	if s.dataEnd <= int64(len(s.mm)) {
		return
	}
	if s.mm != nil {
		mp.munmap(s.mm)
		s.mm = nil
	}
	if m, err := mp.mmap(s.dataEnd); err == nil {
		s.mm = m
	}
}

// Close releases the files. It does not sync: every Append already left
// the store durable.
func (s *Store) Close() error {
	if s.mm != nil {
		if mp, ok := s.data.(mmapper); ok {
			mp.munmap(s.mm)
		}
		s.mm = nil
	}
	err := s.data.Close()
	if err2 := s.man.Close(); err == nil {
		err = err2
	}
	return err
}

// mmapper is the optional zero-copy read fast path a File may provide.
type mmapper interface {
	mmap(size int64) ([]byte, error)
	munmap(b []byte)
}

func readFull(f File, p []byte, off int64) (int, error) {
	n, err := f.ReadAt(p, off)
	if n == len(p) {
		return n, nil
	}
	if err == nil {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}
