//go:build !linux

package segstore

// Non-Linux builds read through File.ReadAt; dirFile intentionally does
// not implement mmapper here.
