package segstore

import (
	"reflect"
	"testing"
)

// TestCrashInjectionEveryCut is the fault-point harness: for every number
// of already-committed bins, it journals one full commit (payload write,
// data sync, manifest entry write, manifest sync) and replays it cut at
// EVERY byte offset and sync point. Each cut must reopen without error or
// panic to exactly the committed prefix — the in-flight bin is either
// fully present (the cut fell after its manifest entry was complete) or
// fully absent; never half-visible — and the reopened store must accept
// the next append and survive another reopen.
func TestCrashInjectionEveryCut(t *testing.T) {
	recs := synthRecords(5)
	for committed := 0; committed < len(recs)-1; committed++ {
		base := NewMemFS()
		st, err := OpenFS(base)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < committed; i++ {
			if err := st.Append(recs[i]); err != nil {
				t.Fatal(err)
			}
		}

		pre := base.Clone() // on-disk state the crash falls back onto
		stop := base.StartJournal()
		if err := st.Append(recs[committed]); err != nil {
			t.Fatal(err)
		}
		ops := stop()
		st.Close()

		total := JournalCost(ops)
		if total == 0 {
			t.Fatalf("committed=%d: empty commit journal", committed)
		}
		sawPartial, sawFull := false, false
		for cut := 0; cut <= total; cut++ {
			crashed := pre.Clone()
			ApplyOps(crashed, ops, cut)
			n := verifyCrashRecovery(t, crashed, recs, committed, cut)
			if n == committed {
				sawPartial = true
			} else {
				sawFull = true
			}
		}
		// Sanity on the harness itself: both outcomes must be reachable —
		// early cuts lose the bin, the final cut keeps it.
		if !sawPartial || !sawFull {
			t.Fatalf("committed=%d: cut sweep degenerate (partial=%v full=%v)", committed, sawPartial, sawFull)
		}
	}
}

// verifyCrashRecovery opens a crashed filesystem and checks the recovery
// contract. Returns the number of bins recovered.
func verifyCrashRecovery(t *testing.T, crashed *MemFS, recs []*BinRecord, committed, cut int) int {
	t.Helper()
	st, err := OpenFS(crashed)
	if err != nil {
		t.Fatalf("committed=%d cut=%d: reopen failed: %v", committed, cut, err)
	}
	n := st.Len()
	if n != committed && n != committed+1 {
		t.Fatalf("committed=%d cut=%d: recovered %d bins", committed, cut, n)
	}
	var rec BinRecord
	for i := 0; i < n; i++ {
		if err := st.Record(i, &rec); err != nil {
			t.Fatalf("committed=%d cut=%d: decode recovered bin %d: %v", committed, cut, i, err)
		}
		if !reflect.DeepEqual(normalize(recs[i]), normalize(&rec)) {
			t.Fatalf("committed=%d cut=%d: recovered bin %d differs from committed record", committed, cut, i)
		}
	}
	// Resume ingest: the next uncovered bin must commit cleanly on the
	// truncated tail and survive a further reopen.
	next := recs[n]
	if err := st.Append(next); err != nil {
		t.Fatalf("committed=%d cut=%d: append after recovery: %v", committed, cut, err)
	}
	st.Close()

	st2, err := OpenFS(crashed)
	if err != nil {
		t.Fatalf("committed=%d cut=%d: reopen after resumed append: %v", committed, cut, err)
	}
	if st2.Len() != n+1 {
		t.Fatalf("committed=%d cut=%d: resumed append not durable: %d bins", committed, cut, st2.Len())
	}
	if err := st2.Record(n, &rec); err != nil {
		t.Fatalf("committed=%d cut=%d: decode resumed bin: %v", committed, cut, err)
	}
	if !reflect.DeepEqual(normalize(next), normalize(&rec)) {
		t.Fatalf("committed=%d cut=%d: resumed bin differs", committed, cut)
	}
	st2.Close()
	return n
}

// TestCrashDuringRecoveryTruncation crashes again while recovery itself is
// truncating torn tails: recovery must be idempotent.
func TestCrashDuringRecoveryTruncation(t *testing.T) {
	recs := synthRecords(4)
	base := NewMemFS()
	st, err := OpenFS(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs[:2] {
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	pre := base.Clone()
	stop := base.StartJournal()
	if err := st.Append(recs[2]); err != nil {
		t.Fatal(err)
	}
	ops := stop()
	st.Close()

	// Crash mid-commit (half the payload written), then recover — which
	// truncates — then reopen again: same committed prefix both times.
	crashed := pre.Clone()
	ApplyOps(crashed, ops, JournalCost(ops)/2)
	st1, err := OpenFS(crashed)
	if err != nil {
		t.Fatal(err)
	}
	n := st1.Len()
	st1.Close()
	st2, err := OpenFS(crashed)
	if err != nil {
		t.Fatal(err)
	}
	if st2.Len() != n {
		t.Fatalf("recovery not idempotent: %d then %d bins", n, st2.Len())
	}
	if ri := st2.Recovery(); ri.TruncatedData != 0 || ri.TruncatedEntries != 0 {
		t.Fatalf("second recovery still truncating: %+v", ri)
	}
	st2.Close()
}

// TestRecoveryDetectsBitFlips flips every byte of a committed store in
// turn; reopen must never panic and never surface a record that fails to
// decode — a flipped committed prefix is either caught by checksum
// (shrinking the prefix) or, for flips in already-validated regions we
// re-read later, still decodes (flips in file headers can fail the open
// instead, which is also acceptable). This is the torn-tail-detection
// property of the manifest checksums beyond pure prefix cuts.
func TestRecoveryDetectsBitFlips(t *testing.T) {
	recs := synthRecords(3)
	base := NewMemFS()
	st, err := OpenFS(base)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range recs {
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()

	for _, name := range []string{dataName, manName} {
		f, _ := base.OpenFile(name)
		size, _ := f.Size()
		for off := int64(0); off < size; off++ {
			flipped := base.Clone()
			ff, _ := flipped.OpenFile(name)
			orig := make([]byte, 1)
			ff.ReadAt(orig, off)
			ff.WriteAt([]byte{orig[0] ^ 0xa5}, off)

			st2, err := OpenFS(flipped)
			if err != nil {
				continue // header flip: refusing to open is fine
			}
			var rec BinRecord
			for i := 0; i < st2.Len(); i++ {
				if err := st2.Record(i, &rec); err != nil {
					t.Fatalf("%s byte %d flipped: recovered bin %d undecodable: %v", name, off, i, err)
				}
			}
			st2.Close()
		}
	}
}
