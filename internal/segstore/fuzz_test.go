package segstore

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzSegmentRoundTrip pins the codec's two safety properties:
//
//  1. encode∘decode identity — any payload that decodes re-encodes to the
//     exact same bytes (the encoding is canonical), and decoding those
//     bytes again yields the same record;
//  2. decode of arbitrary mutated/truncated bytes never panics and always
//     fails with a typed *CorruptError.
//
// The seed corpus is synthetic records plus segments captured from
// fixed-seed ddos/ixp runs (testdata/corpus, written by
// -update-segcorpus in internal/serve's restart test).
func FuzzSegmentRoundTrip(f *testing.F) {
	for _, rec := range synthRecords(8) {
		f.Add(AppendRecord(nil, rec))
	}
	matches, _ := filepath.Glob(filepath.Join("testdata", "corpus", "*.seg"))
	for _, path := range matches {
		b, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		var rec BinRecord
		err := DecodeRecord(data, &rec)
		if err != nil {
			if _, ok := err.(*CorruptError); !ok {
				t.Fatalf("decode error %T is not *CorruptError: %v", err, err)
			}
			return
		}
		re := AppendRecord(nil, &rec)
		if !bytes.Equal(re, data) {
			t.Fatalf("decoded payload re-encodes differently (%d vs %d bytes)", len(re), len(data))
		}
		var rec2 BinRecord
		if err := DecodeRecord(re, &rec2); err != nil {
			t.Fatalf("re-encoded payload does not decode: %v", err)
		}
	})
}
