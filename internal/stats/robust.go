package stats

import "math"

// MADScale is the consistency constant that makes the median absolute
// deviation comparable to a standard deviation under normality
// (1/Φ⁻¹(0.75) ≈ 1.4826). It appears in Eq 10 of the paper.
const MADScale = 1.4826

// MAD returns the median absolute deviation of xs around its median:
// median(|x − median(xs)|). It returns NaN for an empty slice.
func MAD(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Median(xs)
	dev := make([]float64, len(xs))
	for i, x := range xs {
		dev[i] = math.Abs(x - m)
	}
	return Median(dev)
}

// Magnitude computes the paper's robust anomaly magnitude (Eq 10):
//
//	mag(x) = (x − median(ref)) / (1 + 1.4826·MAD(ref))
//
// where ref is the reference window (one sliding week in §6). The +1 in the
// denominator keeps the score bounded when the window is almost constant.
// An empty reference window yields NaN.
func Magnitude(x float64, ref []float64) float64 {
	if len(ref) == 0 {
		return math.NaN()
	}
	return (x - Median(ref)) / (1 + MADScale*MAD(ref))
}

// Trimmed returns a copy of xs with the fraction trim removed from each tail
// (after sorting). trim ∈ [0, 0.5). Used by diagnostics, not the detectors.
func Trimmed(xs []float64, trim float64) []float64 {
	if trim < 0 || trim >= 0.5 || len(xs) == 0 {
		return sortedCopy(xs)
	}
	s := sortedCopy(xs)
	k := int(trim * float64(len(s)))
	return s[k : len(s)-k]
}
