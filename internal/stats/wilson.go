package stats

import (
	"math"
	"sort"
)

// Z95 is the standard normal quantile for a two-sided 95% confidence level,
// the value the paper plugs into the Wilson score (§4.2.2).
const Z95 = 1.96

// Wilson returns the lower and upper bounds of the Wilson score interval for
// a binomial proportion: n trials, success probability p, normal quantile z.
// Both bounds lie in [0, 1]. For n == 0 it returns (0, 1), the vacuous
// interval.
//
// This is Eq 5 of the paper. With p = 0.5 it yields the rank bounds of a
// distribution-free confidence interval for the median.
func Wilson(n int, p, z float64) (lo, hi float64) {
	if n <= 0 {
		return 0, 1
	}
	nf := float64(n)
	z2 := z * z
	denom := 1 + z2/nf
	center := p + z2/(2*nf)
	half := z * math.Sqrt(p*(1-p)/nf+z2/(4*nf*nf))
	lo = (center - half) / denom
	hi = (center + half) / denom
	if lo < 0 {
		lo = 0
	}
	if hi > 1 {
		hi = 1
	}
	return lo, hi
}

// MedianCI is a median estimate with a distribution-free confidence interval
// derived from order statistics via the Wilson score. Lower ≤ Median ≤ Upper
// always holds for n ≥ 1.
type MedianCI struct {
	Median float64
	Lower  float64
	Upper  float64
	N      int // number of samples the interval is based on
}

// Valid reports whether the interval was computed from at least one sample.
func (ci MedianCI) Valid() bool { return ci.N > 0 }

// Width returns Upper − Lower, the uncertainty of the median estimate.
func (ci MedianCI) Width() float64 { return ci.Upper - ci.Lower }

// Overlaps reports whether two confidence intervals intersect. Following
// Schenker & Gentleman (cited in §4.2.3), non-overlap is the paper's
// criterion for a statistically significant median difference.
func (ci MedianCI) Overlaps(other MedianCI) bool {
	return ci.Lower <= other.Upper && other.Lower <= ci.Upper
}

// MedianWilson computes the median of xs together with its Wilson-score
// confidence interval at the given z (use Z95 for the paper's 95% level).
// The input is not modified. For an empty slice it returns a zero MedianCI
// with N == 0.
//
// The interval is obtained by converting the Wilson bounds for p = 0.5 into
// ranks l = floor(n·wl) and u = ceil(n·wu)−1 and reading the corresponding
// order statistics, clamped to valid indices (Newcombe's recommendation for
// small n, §4.2.2).
func MedianWilson(xs []float64, z float64) MedianCI {
	if len(xs) == 0 {
		return MedianCI{}
	}
	s := sortedCopy(xs)
	return MedianWilsonSorted(s, z)
}

// MedianWilsonSorted is MedianWilson for an already ascending-sorted slice.
// It is the executable oracle for MedianWilsonSelect: the selection kernel
// must return exactly what this returns on the sorted input, and
// FuzzSelectVsSort enforces it.
func MedianWilsonSorted(sorted []float64, z float64) MedianCI {
	n := len(sorted)
	if n == 0 {
		return MedianCI{}
	}
	lo, hi := wilsonRanks(n, z)
	return MedianCI{
		Median: medianSorted(sorted),
		Lower:  sorted[lo],
		Upper:  sorted[hi],
		N:      n,
	}
}

// wilsonRanks converts the Wilson bounds for p = 0.5 into the order-statistic
// ranks l = floor(n·wl) and u = ceil(n·wu)−1 of the median confidence
// interval, clamped to valid indices (Newcombe's recommendation for small n,
// §4.2.2). Requires n ≥ 1; always returns 0 ≤ lo ≤ hi ≤ n−1.
func wilsonRanks(n int, z float64) (lo, hi int) {
	wl, wu := Wilson(n, 0.5, z)
	lo = int(math.Floor(float64(n) * wl))
	hi = int(math.Ceil(float64(n)*wu)) - 1
	if lo < 0 {
		lo = 0
	}
	if hi > n-1 {
		hi = n - 1
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// MeanCI is the parametric (CLT, standard-error) confidence interval around
// the arithmetic mean. It is the baseline the paper rejects in §4.2.2
// because RTT outliers inflate it; we keep it for the ablation benchmarks.
func MeanCI(xs []float64, z float64) MedianCI {
	n := len(xs)
	if n == 0 {
		return MedianCI{}
	}
	m := Mean(xs)
	se := Stddev(xs) / math.Sqrt(float64(n))
	return MedianCI{Median: m, Lower: m - z*se, Upper: m + z*se, N: n}
}

// insertSorted inserts v into a sorted slice, keeping it sorted.
// It is used by streaming consumers that maintain per-link sample buffers.
func insertSorted(s []float64, v float64) []float64 {
	i := sort.SearchFloat64s(s, v)
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// SortedSamples is a growable, always-sorted sample buffer for computing
// order statistics incrementally within a time bin.
// The zero value is ready to use.
type SortedSamples struct {
	s []float64
}

// Add inserts one sample.
func (b *SortedSamples) Add(v float64) { b.s = insertSorted(b.s, v) }

// Len returns the number of samples.
func (b *SortedSamples) Len() int { return len(b.s) }

// Reset empties the buffer but keeps its capacity for reuse.
func (b *SortedSamples) Reset() { b.s = b.s[:0] }

// Values returns the sorted backing slice. The caller must not modify it.
func (b *SortedSamples) Values() []float64 { return b.s }

// MedianWilson computes the median confidence interval of the buffer.
func (b *SortedSamples) MedianWilson(z float64) MedianCI {
	return MedianWilsonSorted(b.s, z)
}
