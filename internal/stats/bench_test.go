package stats

import (
	"math/rand/v2"
	"testing"
)

func benchSamples(n int) []float64 {
	rng := rand.New(rand.NewPCG(1, 1))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 5 + rng.NormFloat64()*12
	}
	return xs
}

func BenchmarkMedianWilson1k(b *testing.B) {
	xs := benchSamples(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MedianWilson(xs, Z95)
	}
}

func BenchmarkMedianWilsonSorted1k(b *testing.B) {
	xs := sortedCopy(benchSamples(1000))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MedianWilsonSorted(xs, Z95)
	}
}

func BenchmarkMedianWilsonSelect1k(b *testing.B) {
	xs := benchSamples(1000)
	buf := make([]float64, len(xs))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(buf, xs)
		MedianWilsonSelect(buf, Z95)
	}
}

func BenchmarkRadixSortUint64_1k(b *testing.B) {
	rng := rand.New(rand.NewPCG(3, 3))
	src := make([]uint64, 1000)
	for i := range src {
		src[i] = rng.Uint64() & 0xffffffffffff // 48-bit keys: two skipped passes
	}
	keys := make([]uint64, len(src))
	var tmp []uint64
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(keys, src)
		tmp = RadixSortUint64(keys, tmp)
	}
}

func BenchmarkRadixSortUint64Pairs1k(b *testing.B) {
	rng := rand.New(rand.NewPCG(4, 4))
	src := make([]uint64, 1000)
	for i := range src {
		src[i] = rng.Uint64()
	}
	keys := make([]uint64, len(src))
	vals := make([]int32, len(src))
	var tmpK []uint64
	var tmpV []int32
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		copy(keys, src)
		for j := range vals {
			vals[j] = int32(j)
		}
		tmpK, tmpV = RadixSortUint64Pairs(keys, vals, tmpK, tmpV)
	}
}

func BenchmarkPearson(b *testing.B) {
	x := benchSamples(64)
	y := benchSamples(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Pearson(x, y)
	}
}

func BenchmarkMagnitudeWeekWindow(b *testing.B) {
	win := benchSamples(168)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Magnitude(42, win)
	}
}

func BenchmarkNormalizedEntropy(b *testing.B) {
	counts := []int{90, 4, 3, 2, 1, 7, 9, 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NormalizedEntropy(counts)
	}
}

func BenchmarkSortedSamplesAdd(b *testing.B) {
	var s SortedSamples
	rng := rand.New(rand.NewPCG(2, 2))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s.Len() > 4096 {
			s.Reset()
		}
		s.Add(rng.Float64())
	}
}
