package stats

import (
	"math/rand/v2"
	"testing"
)

func benchSamples(n int) []float64 {
	rng := rand.New(rand.NewPCG(1, 1))
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = 5 + rng.NormFloat64()*12
	}
	return xs
}

func BenchmarkMedianWilson1k(b *testing.B) {
	xs := benchSamples(1000)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MedianWilson(xs, Z95)
	}
}

func BenchmarkMedianWilsonSorted1k(b *testing.B) {
	xs := sortedCopy(benchSamples(1000))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MedianWilsonSorted(xs, Z95)
	}
}

func BenchmarkPearson(b *testing.B) {
	x := benchSamples(64)
	y := benchSamples(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Pearson(x, y)
	}
}

func BenchmarkMagnitudeWeekWindow(b *testing.B) {
	win := benchSamples(168)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Magnitude(42, win)
	}
}

func BenchmarkNormalizedEntropy(b *testing.B) {
	counts := []int{90, 4, 3, 2, 1, 7, 9, 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		NormalizedEntropy(counts)
	}
}

func BenchmarkSortedSamplesAdd(b *testing.B) {
	var s SortedSamples
	rng := rand.New(rand.NewPCG(2, 2))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if s.Len() > 4096 {
			s.Reset()
		}
		s.Add(rng.Float64())
	}
}
