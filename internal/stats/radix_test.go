package stats

import (
	"math/rand"
	"slices"
	"testing"
)

// radixSizes straddles the insertion-sort cutoff and includes sizes large
// enough to take all eight counting passes.
var radixSizes = []int{0, 1, 2, 3, radixCutoff - 1, radixCutoff, radixCutoff + 1, 100, 1000, 4096}

func radixPatterns(rng *rand.Rand, n int) map[string][]uint64 {
	pats := map[string][]uint64{
		"random":   nil,
		"sorted":   nil,
		"reverse":  nil,
		"allequal": nil,
		"lowbyte":  nil, // only the low byte varies: 7 skipped passes
		"highbyte": nil, // only the high byte varies: 7 skipped passes
		"dup":      nil,
	}
	for name := range pats {
		keys := make([]uint64, n)
		for i := range keys {
			switch name {
			case "random":
				keys[i] = rng.Uint64()
			case "sorted":
				keys[i] = uint64(i) * 3
			case "reverse":
				keys[i] = uint64(n-i) << 17
			case "allequal":
				keys[i] = 0xdeadbeefcafe
			case "lowbyte":
				keys[i] = 0xab00 | uint64(rng.Intn(256))
			case "highbyte":
				keys[i] = uint64(rng.Intn(256))<<56 | 0x42
			case "dup":
				keys[i] = uint64(rng.Intn(5))
			}
		}
		pats[name] = keys
	}
	return pats
}

func TestRadixSortUint64(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var tmp []uint64 // reused across calls: exercises the scratch contract
	for _, n := range radixSizes {
		for name, keys := range radixPatterns(rng, n) {
			want := append([]uint64(nil), keys...)
			slices.Sort(want)
			tmp = RadixSortUint64(keys, tmp)
			if !slices.Equal(keys, want) {
				t.Fatalf("n=%d %s: radix %v != sorted %v", n, name, keys, want)
			}
		}
	}
}

func TestRadixSortUint64Pairs(t *testing.T) {
	type pair struct {
		k uint64
		v int32
	}
	rng := rand.New(rand.NewSource(5))
	var tmpK []uint64
	var tmpV []int32
	for _, n := range radixSizes {
		for name, keys := range radixPatterns(rng, n) {
			vals := make([]int32, n)
			for i := range vals {
				vals[i] = int32(i)
			}
			// Stable reference: sort (key, original index) pairs stably by
			// key only — equal keys must keep input order.
			want := make([]pair, n)
			for i := range want {
				want[i] = pair{keys[i], vals[i]}
			}
			slices.SortStableFunc(want, func(a, b pair) int {
				switch {
				case a.k < b.k:
					return -1
				case a.k > b.k:
					return 1
				}
				return 0
			})
			tmpK, tmpV = RadixSortUint64Pairs(keys, vals, tmpK, tmpV)
			for i := range keys {
				if keys[i] != want[i].k || vals[i] != want[i].v {
					t.Fatalf("n=%d %s: pair %d = (%d,%d), stable oracle (%d,%d)",
						n, name, i, keys[i], vals[i], want[i].k, want[i].v)
				}
			}
		}
	}
}

func TestRadixSortUint64PairsLengthMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on length mismatch")
		}
	}()
	RadixSortUint64Pairs(make([]uint64, 3), make([]int32, 2), nil, nil)
}
