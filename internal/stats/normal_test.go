package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestNormalQuantile(t *testing.T) {
	tests := []struct {
		p, want float64
	}{
		{0.5, 0},
		{0.975, 1.959964},
		{0.025, -1.959964},
		{0.8413447, 1.0}, // Φ(1) ≈ 0.8413
	}
	for _, tt := range tests {
		if got := NormalQuantile(tt.p); !almostEqual(got, tt.want, 1e-4) {
			t.Errorf("NormalQuantile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestQQNormalOnNormalData(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = 5 + 2*rng.NormFloat64()
	}
	r := QQCorrelation(xs)
	if r < 0.995 {
		t.Errorf("QQCorrelation of normal sample = %v, want ≥ 0.995", r)
	}
	pts := QQNormal(xs)
	if len(pts) != len(xs) {
		t.Fatalf("QQNormal returned %d points, want %d", len(pts), len(xs))
	}
	// Points must be monotonically increasing in both coordinates.
	for i := 1; i < len(pts); i++ {
		if pts[i].Theoretical < pts[i-1].Theoretical || pts[i].Sample < pts[i-1].Sample {
			t.Fatal("Q-Q points must be monotone")
		}
	}
}

func TestQQNormalOnHeavyTailedData(t *testing.T) {
	// The discriminating power Fig 3 relies on: a contaminated sample (a few
	// huge outliers, as in raw differential RTTs) has visibly lower PPCC
	// than a clean normal one.
	rng := rand.New(rand.NewPCG(5, 6))
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = rng.NormFloat64()
		if rng.Float64() < 0.02 {
			xs[i] += 50 // measurement-error spike
		}
	}
	r := QQCorrelation(xs)
	if r > 0.9 {
		t.Errorf("QQCorrelation of contaminated sample = %v, want < 0.9", r)
	}
}

func TestQQNormalDegenerate(t *testing.T) {
	if QQNormal([]float64{1, 2}) != nil {
		t.Error("QQNormal with <3 samples should be nil")
	}
	if QQNormal([]float64{3, 3, 3, 3}) != nil {
		t.Error("QQNormal with zero variance should be nil")
	}
	if !math.IsNaN(QQCorrelation([]float64{3, 3, 3})) {
		t.Error("QQCorrelation degenerate should be NaN")
	}
}

func TestECDFAndCCDF(t *testing.T) {
	xs := []float64{3, 1, 2, 4}
	cdf := ECDF(xs)
	if len(cdf) != 4 {
		t.Fatalf("ECDF len = %d", len(cdf))
	}
	if cdf[0].X != 1 || cdf[0].P != 0.25 {
		t.Errorf("ECDF first = %+v", cdf[0])
	}
	if cdf[3].X != 4 || cdf[3].P != 1 {
		t.Errorf("ECDF last = %+v", cdf[3])
	}
	ccdf := CCDF(xs)
	if !almostEqual(ccdf[0].P, 0.75, 1e-12) || !almostEqual(ccdf[3].P, 0, 1e-12) {
		t.Errorf("CCDF = %+v", ccdf)
	}
	if ECDF(nil) != nil || CCDF(nil) != nil {
		t.Error("empty ECDF/CCDF should be nil")
	}
}

func TestFractionBelow(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := FractionBelow(xs, 3); got != 0.5 {
		t.Errorf("FractionBelow = %v, want 0.5", got)
	}
	if got := FractionBelow(xs, 0.5); got != 0 {
		t.Errorf("FractionBelow = %v, want 0", got)
	}
	if got := FractionBelow(xs, 99); got != 1 {
		t.Errorf("FractionBelow = %v, want 1", got)
	}
	if !math.IsNaN(FractionBelow(nil, 1)) {
		t.Error("FractionBelow of empty should be NaN")
	}
}

// Median-CLT check underpinning §4.2.2: medians of repeated heavy-tailed
// samples are approximately normal, while means of the same samples are
// wrecked by outliers. This is the statistical heart of the paper.
func TestMedianCLTRobustness(t *testing.T) {
	rng := rand.New(rand.NewPCG(11, 13))
	const bins = 300
	const perBin = 120
	medians := make([]float64, bins)
	means := make([]float64, bins)
	for b := 0; b < bins; b++ {
		xs := make([]float64, perBin)
		for i := range xs {
			xs[i] = 5 + rng.NormFloat64() // base delay ~N(5,1)
			if rng.Float64() < 0.03 {     // 3% huge outliers
				xs[i] += 100 + 50*rng.Float64()
			}
		}
		medians[b] = Median(xs)
		means[b] = Mean(xs)
	}
	rMed := QQCorrelation(medians)
	rMean := QQCorrelation(means)
	if rMed < 0.99 {
		t.Errorf("median-CLT PPCC = %v, want ≥ 0.99", rMed)
	}
	if rMean >= rMed {
		t.Errorf("mean PPCC (%v) should be worse than median PPCC (%v)", rMean, rMed)
	}
	// The medians should also be far more stable (Fig 2's key message).
	if Stddev(medians) > 0.5*Stddev(means) {
		t.Errorf("median spread %v should be well below mean spread %v",
			Stddev(medians), Stddev(means))
	}
}
