package stats

import "math"

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs (divisor n), or NaN for an
// empty slice.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs))
}

// Stddev returns the population standard deviation of xs.
func Stddev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Summary holds descriptive statistics of a sample. It is the unit printed
// by experiment harnesses when comparing against the per-link statistics the
// paper reports (e.g. Fig 2: µ=4.8, σ=12.2).
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	Max    float64
}

// Describe computes a Summary of xs. For an empty slice all fields are NaN
// and N is zero.
func Describe(xs []float64) Summary {
	if len(xs) == 0 {
		nan := math.NaN()
		return Summary{Mean: nan, Stddev: nan, Min: nan, P25: nan, Median: nan, P75: nan, Max: nan}
	}
	s := sortedCopy(xs)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Stddev: Stddev(xs),
		Min:    s[0],
		P25:    QuantileSorted(s, 0.25),
		Median: medianSorted(s),
		P75:    QuantileSorted(s, 0.75),
		Max:    s[len(s)-1],
	}
}

// CountAbove returns how many elements of xs exceed the threshold. The paper
// uses it to count outliers beyond µ+3σ (Fig 3 discussion).
func CountAbove(xs []float64, threshold float64) int {
	n := 0
	for _, x := range xs {
		if x > threshold {
			n++
		}
	}
	return n
}
