package stats

import "math"

// Pearson returns the Pearson product-moment correlation coefficient of two
// equal-length vectors, in [−1, 1].
//
// Degenerate cases: if either vector has zero variance the coefficient is
// undefined; we return NaN and let callers decide (the forwarding detector
// treats NaN as "no evidence of change" when the vectors are proportional
// and as incomparable otherwise).
func Pearson(x, y []float64) float64 {
	n := len(x)
	if n == 0 || n != len(y) {
		return math.NaN()
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := 0; i < n; i++ {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return math.NaN()
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Covariance returns the population covariance of two equal-length vectors,
// or NaN if the lengths differ or are zero.
func Covariance(x, y []float64) float64 {
	n := len(x)
	if n == 0 || n != len(y) {
		return math.NaN()
	}
	mx, my := Mean(x), Mean(y)
	var s float64
	for i := 0; i < n; i++ {
		s += (x[i] - mx) * (y[i] - my)
	}
	return s / float64(n)
}
