package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestMeanStddev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almostEqual(got, 5, 1e-12) {
		t.Errorf("Mean = %v, want 5", got)
	}
	if got := Stddev(xs); !almostEqual(got, 2, 1e-12) {
		t.Errorf("Stddev = %v, want 2", got)
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Stddev(nil)) {
		t.Error("empty Mean/Stddev should be NaN")
	}
}

func TestDescribe(t *testing.T) {
	d := Describe([]float64{1, 2, 3, 4, 5})
	if d.N != 5 || d.Min != 1 || d.Max != 5 || d.Median != 3 {
		t.Errorf("Describe = %+v", d)
	}
	empty := Describe(nil)
	if empty.N != 0 || !math.IsNaN(empty.Mean) {
		t.Errorf("empty Describe = %+v", empty)
	}
}

func TestCountAbove(t *testing.T) {
	if got := CountAbove([]float64{1, 5, 10, 20}, 5); got != 2 {
		t.Errorf("CountAbove = %d, want 2", got)
	}
}

func TestPearson(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	yPos := []float64{2, 4, 6, 8, 10}
	yNeg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(x, yPos); !almostEqual(got, 1, 1e-12) {
		t.Errorf("Pearson positive = %v, want 1", got)
	}
	if got := Pearson(x, yNeg); !almostEqual(got, -1, 1e-12) {
		t.Errorf("Pearson negative = %v, want -1", got)
	}
	if !math.IsNaN(Pearson(x, []float64{1, 1, 1, 1, 1})) {
		t.Error("Pearson with constant vector should be NaN")
	}
	if !math.IsNaN(Pearson(x, []float64{1, 2})) {
		t.Error("Pearson with mismatched lengths should be NaN")
	}
	// Paper's worked example (§5.2.2): reference [10,100,0,5] vs observed
	// [10,1,89,30] has ρ ≈ −0.6.
	ref := []float64{10, 100, 0, 5}
	cur := []float64{10, 1, 89, 30}
	if got := Pearson(cur, ref); !almostEqual(got, -0.6, 0.005) {
		t.Errorf("paper example ρ = %v, want ≈ -0.6", got)
	}
}

func TestPearsonRangeProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	f := func(n uint8) bool {
		m := int(n%50) + 2
		x := make([]float64, m)
		y := make([]float64, m)
		for i := range x {
			x[i] = rng.Float64() * 100
			y[i] = rng.Float64() * 100
		}
		r := Pearson(x, y)
		return math.IsNaN(r) || (r >= -1.0000001 && r <= 1.0000001)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalizedEntropy(t *testing.T) {
	tests := []struct {
		name   string
		counts []int
		want   float64
	}{
		{"even", []int{10, 10, 10, 10}, 1},
		{"concentrated", []int{100, 0, 0, 0}, 0},
		{"empty", nil, 0},
		{"zeros", []int{0, 0}, 0},
		{"single", []int{5}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := NormalizedEntropy(tt.counts); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("NormalizedEntropy(%v) = %v, want %v", tt.counts, got, tt.want)
			}
		})
	}
	// Unbalanced should be strictly between 0 and 1.
	h := NormalizedEntropy([]int{90, 5, 3, 2})
	if h <= 0 || h >= 1 {
		t.Errorf("unbalanced entropy = %v, want in (0,1)", h)
	}
	// The paper's §4.3 scenario: 90 probes in one AS of 5 → low entropy ≤ 0.5.
	h = NormalizedEntropy([]int{90, 4, 3, 2, 1})
	if h > 0.5 {
		t.Errorf("90-of-100 concentration entropy = %v, want ≤ 0.5", h)
	}
}

func TestEntropyRangeProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		counts := make([]int, len(raw))
		for i, v := range raw {
			counts[i] = int(v)
		}
		h := NormalizedEntropy(counts)
		return h >= 0 && h <= 1+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestMAD(t *testing.T) {
	xs := []float64{1, 1, 2, 2, 4, 6, 9}
	// median = 2, abs dev = {1,1,0,0,2,4,7}, median = 1
	if got := MAD(xs); !almostEqual(got, 1, 1e-12) {
		t.Errorf("MAD = %v, want 1", got)
	}
	if !math.IsNaN(MAD(nil)) {
		t.Error("MAD of empty should be NaN")
	}
	if got := MAD([]float64{5, 5, 5}); got != 0 {
		t.Errorf("MAD of constant = %v, want 0", got)
	}
}

func TestMagnitude(t *testing.T) {
	ref := []float64{0, 0, 1, 0, 0, 2, 0, 1, 0, 0}
	// A value equal to the window median scores 0.
	if got := Magnitude(Median(ref), ref); !almostEqual(got, 0, 1e-12) {
		t.Errorf("Magnitude at median = %v, want 0", got)
	}
	// Larger deviations score monotonically larger.
	m1 := Magnitude(10, ref)
	m2 := Magnitude(100, ref)
	if !(m2 > m1 && m1 > 0) {
		t.Errorf("Magnitude not monotone: %v, %v", m1, m2)
	}
	// Constant window: denominator collapses to 1, score is x − median.
	if got := Magnitude(7, []float64{3, 3, 3}); !almostEqual(got, 4, 1e-12) {
		t.Errorf("Magnitude constant window = %v, want 4", got)
	}
	if !math.IsNaN(Magnitude(1, nil)) {
		t.Error("Magnitude with empty window should be NaN")
	}
}

func TestEWMA(t *testing.T) {
	e := NewEWMA(0.1, 3)
	// During warm-up, reference is the running median.
	if got := e.Observe(10); got != 10 {
		t.Errorf("warmup 1 = %v, want 10", got)
	}
	if got := e.Observe(20); got != 15 {
		t.Errorf("warmup 2 = %v, want 15", got)
	}
	if got := e.Observe(30); got != 20 {
		t.Errorf("warmup 3 = %v, want 20 (median of 10,20,30)", got)
	}
	if !e.Primed() {
		t.Fatal("EWMA should be primed after 3 observations")
	}
	// Next observation updates exponentially: 0.1*120 + 0.9*20 = 30.
	if got := e.Observe(120); !almostEqual(got, 30, 1e-12) {
		t.Errorf("post-warmup = %v, want 30", got)
	}
	// Small alpha resists outliers: value stays near 30, far below 1000.
	v := e.Observe(1000)
	if v > 130 {
		t.Errorf("EWMA too sensitive to outlier: %v", v)
	}
}

func TestEWMAWarmupClamp(t *testing.T) {
	e := NewEWMA(0.5, 0) // clamps to 1
	e.Observe(4)
	if !e.Primed() {
		t.Error("warmup ≤ 1 should prime after first observation")
	}
	if got := e.Observe(8); !almostEqual(got, 6, 1e-12) {
		t.Errorf("got %v, want 6", got)
	}
}

func TestSmoothInto(t *testing.T) {
	ref := []float64{10, 100, 0}
	cur := []float64{20, 0, 50}
	SmoothInto(ref, cur, 0.1)
	want := []float64{11, 90, 5}
	for i := range ref {
		if !almostEqual(ref[i], want[i], 1e-12) {
			t.Errorf("SmoothInto[%d] = %v, want %v", i, ref[i], want[i])
		}
	}
}

func TestTrimmed(t *testing.T) {
	xs := []float64{100, 1, 2, 3, 4, 5, 6, 7, 8, -50}
	tr := Trimmed(xs, 0.1)
	if len(tr) != 8 {
		t.Fatalf("Trimmed len = %d, want 8", len(tr))
	}
	if tr[0] != 1 || tr[len(tr)-1] != 8 {
		t.Errorf("Trimmed = %v, extremes should be removed", tr)
	}
}
