package stats

import (
	"math"
	"sort"
)

// NormalQuantile returns Φ⁻¹(p), the standard normal quantile function,
// via the inverse error function. p must be in (0, 1); values outside give
// ±Inf or NaN following math.Erfinv.
func NormalQuantile(p float64) float64 {
	return math.Sqrt2 * math.Erfinv(2*p-1)
}

// QQPoint is one point of a quantile-quantile plot: the theoretical normal
// quantile against the standardized sample quantile.
type QQPoint struct {
	Theoretical float64
	Sample      float64
}

// QQNormal builds the Q-Q plot of xs against the standard normal
// distribution, standardizing the sample by its own mean and standard
// deviation (so a normal sample lies on the x = y diagonal, as in Fig 3).
// Plotting positions are (i − 0.5)/n. It returns nil for fewer than 3
// samples or zero variance.
func QQNormal(xs []float64) []QQPoint {
	n := len(xs)
	if n < 3 {
		return nil
	}
	mu := Mean(xs)
	sd := Stddev(xs)
	if sd == 0 {
		return nil
	}
	s := sortedCopy(xs)
	pts := make([]QQPoint, n)
	for i := 0; i < n; i++ {
		p := (float64(i) + 0.5) / float64(n)
		pts[i] = QQPoint{
			Theoretical: NormalQuantile(p),
			Sample:      (s[i] - mu) / sd,
		}
	}
	return pts
}

// QQCorrelation returns the correlation coefficient of the Q-Q plot points —
// the probability-plot correlation coefficient (PPCC). Values near 1 mean
// the sample is close to normal; the gap from 1 grows with skew or heavy
// tails. It returns NaN when the plot is degenerate.
//
// The paper argues normality visually (Fig 3); PPCC gives the experiment
// harness a scalar to compare median-CLT (≈1) against mean-CLT (<1).
func QQCorrelation(xs []float64) float64 {
	pts := QQNormal(xs)
	if pts == nil {
		return math.NaN()
	}
	tx := make([]float64, len(pts))
	ty := make([]float64, len(pts))
	for i, p := range pts {
		tx[i] = p.Theoretical
		ty[i] = p.Sample
	}
	return Pearson(tx, ty)
}

// ECDFPoint is one step of an empirical distribution function.
type ECDFPoint struct {
	X float64 // sample value
	P float64 // cumulative probability P(X ≤ x)
}

// ECDF returns the empirical CDF of xs as sorted step points.
// It returns nil for an empty slice.
func ECDF(xs []float64) []ECDFPoint {
	if len(xs) == 0 {
		return nil
	}
	s := sortedCopy(xs)
	pts := make([]ECDFPoint, len(s))
	for i, x := range s {
		pts[i] = ECDFPoint{X: x, P: float64(i+1) / float64(len(s))}
	}
	return pts
}

// CCDF returns the complementary CDF, P(X > x), as sorted step points
// (Fig 5a uses this form). It returns nil for an empty slice.
func CCDF(xs []float64) []ECDFPoint {
	pts := ECDF(xs)
	for i := range pts {
		pts[i].P = 1 - pts[i].P
	}
	return pts
}

// FractionBelow returns P(X < v) under the empirical distribution of xs.
func FractionBelow(xs []float64, v float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(sortedCopy(xs), v)
	return float64(i) / float64(len(xs))
}
