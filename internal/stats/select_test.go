package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// feqt is the test-side equivalence for selected values: equal under ==
// (which identifies -0/+0) or both NaN. This is the contract SelectKths
// documents — bit-level NaN payloads and zero signs are interchangeable
// under sort.Float64s' order, so the oracle itself does not pin them.
func feqt(a, b float64) bool {
	return a == b || (math.IsNaN(a) && math.IsNaN(b))
}

// checkSelected runs SelectKths on a copy of xs and verifies every
// requested rank against the fully sorted oracle, plus the partition
// invariant around each rank.
func checkSelected(t *testing.T, xs []float64, ks ...int) {
	t.Helper()
	got := append([]float64(nil), xs...)
	SelectKths(got, ks...)
	want := append([]float64(nil), xs...)
	sort.Float64s(want)
	for _, k := range ks {
		if !feqt(got[k], want[k]) {
			t.Fatalf("SelectKths(%v, %v): rank %d = %v, sorted oracle has %v", xs, ks, k, got[k], want[k])
		}
		for i := 0; i < k; i++ {
			if fless(got[k], got[i]) {
				t.Fatalf("SelectKths(%v, %v): got[%d]=%v > got[%d]=%v breaks partition", xs, ks, i, got[i], k, got[k])
			}
		}
		for i := k + 1; i < len(got); i++ {
			if fless(got[i], got[k]) {
				t.Fatalf("SelectKths(%v, %v): got[%d]=%v < got[%d]=%v breaks partition", xs, ks, i, got[i], k, got[k])
			}
		}
	}
	// The partial order must still be a permutation of the input.
	perm := append([]float64(nil), got...)
	sort.Float64s(perm)
	for i := range perm {
		if !feqt(perm[i], want[i]) {
			t.Fatalf("SelectKths(%v, %v) is not a permutation: sorted output %v vs %v", xs, ks, perm, want)
		}
	}
}

var (
	nan  = math.NaN()
	pinf = math.Inf(1)
	ninf = math.Inf(-1)
)

// edgeInputs is the table the edge suite and the oracle comparisons share:
// tiny n, all-equal, pre-sorted, reverse-sorted, duplicates, non-finite.
var edgeInputs = [][]float64{
	{},
	{1},
	{2, 1},
	{1, 2},
	{3, 3, 3},
	{5, 5, 5, 5, 5, 5, 5, 5},
	{1, 2, 3, 4, 5, 6, 7},
	{7, 6, 5, 4, 3, 2, 1},
	{2, 1, 2, 1, 2, 1, 2, 1, 2},
	{-1.5, 0, 1.5, -1.5, 0, 1.5},
	{pinf, ninf, 0, pinf, ninf},
	{nan, 1, 2},
	{1, nan, 2, nan},
	{nan, nan, nan},
	{nan, pinf, ninf, 0, -0.0, nan, 1e300, -1e300},
	{math.Copysign(0, -1), 0, math.Copysign(0, -1), 0},
	{1e-308, -1e-308, 5e-324, -5e-324, 0},
}

func TestSelectKthsEdges(t *testing.T) {
	for _, xs := range edgeInputs {
		if len(xs) == 0 {
			SelectKths(nil) // no ranks on empty input: must not panic
			continue
		}
		// Every single rank, and a few multi-rank combinations.
		for k := range xs {
			checkSelected(t, xs, k)
		}
		checkSelected(t, xs, 0, len(xs)-1)
		checkSelected(t, xs, len(xs)/2, 0, len(xs)-1, len(xs)/2) // dupes + unsorted ranks
	}
}

func TestSelectKthsRankPanics(t *testing.T) {
	for _, k := range []int{-1, 3} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SelectKths rank %d on len 3: expected panic", k)
				}
			}()
			SelectKths([]float64{1, 2, 3}, k)
		}()
	}
}

func TestSelectKthsLarge(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 5000 // exercises the Floyd–Rivest sampling branch (> 600)
	patterns := map[string]func(i int) float64{
		"random":    func(int) float64 { return rng.NormFloat64() * 100 },
		"sorted":    func(i int) float64 { return float64(i) },
		"reverse":   func(i int) float64 { return float64(n - i) },
		"constant":  func(int) float64 { return 42 },
		"two-value": func(i int) float64 { return float64(i & 1) },
		"organpipe": func(i int) float64 { return float64(min(i, n-i)) },
		"dup-heavy": func(int) float64 { return float64(rng.Intn(8)) },
	}
	for name, gen := range patterns {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = gen(i)
		}
		for _, ks := range [][]int{{0}, {n - 1}, {n / 2}, {1234, 2500, 3777}, {17, 18, 19, 20}} {
			got := append([]float64(nil), xs...)
			SelectKths(got, ks...)
			want := append([]float64(nil), xs...)
			sort.Float64s(want)
			for _, k := range ks {
				if !feqt(got[k], want[k]) {
					t.Fatalf("%s: rank %d = %v, want %v", name, k, got[k], want[k])
				}
			}
		}
	}
}

// TestMedianWilsonSelectMatchesSorted pins the selection path to the
// sorted oracle over the edge table, random inputs, and the Wilson-rank
// clamp region (n = 1..40 where floor/ceil ranks hit the ends).
func TestMedianWilsonSelectMatchesSorted(t *testing.T) {
	check := func(xs []float64, z float64) {
		t.Helper()
		s := append([]float64(nil), xs...)
		sort.Float64s(s)
		want := MedianWilsonSorted(s, z)
		buf := append([]float64(nil), xs...)
		got := MedianWilsonSelect(buf, z)
		if got.N != want.N || !feqt(got.Median, want.Median) || !feqt(got.Lower, want.Lower) || !feqt(got.Upper, want.Upper) {
			t.Fatalf("MedianWilsonSelect(%v, z=%v) = %+v, oracle %+v", xs, z, got, want)
		}
	}
	zs := []float64{0, 0.5, Z95, 3, 10}
	for _, xs := range edgeInputs {
		for _, z := range zs {
			check(xs, z)
		}
	}
	rng := rand.New(rand.NewSource(11))
	for n := 1; n <= 40; n++ { // small n: ranks clamp at the ends
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Round(rng.NormFloat64()*50) / 4 // duplicates likely
		}
		for _, z := range zs {
			check(xs, z)
		}
	}
	for _, n := range []int{100, 999, 1000, 4096} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.ExpFloat64() * 250
		}
		check(xs, Z95)
	}
}

// TestQuantileSelectMatchesSorted is the regression pinning the rerouted
// Quantile: the selection path must return exactly what the old
// sort-the-copy path returned.
func TestQuantileSelectMatchesSorted(t *testing.T) {
	qs := []float64{0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1, -0.1, 1.1, nan}
	check := func(xs []float64) {
		t.Helper()
		for _, q := range qs {
			s := append([]float64(nil), xs...)
			sort.Float64s(s)
			want := QuantileSorted(s, q)
			got := Quantile(xs, q)
			if !feqt(got, want) {
				t.Fatalf("Quantile(%v, %v) = %v, sorted path gives %v", xs, q, got, want)
			}
		}
	}
	for _, xs := range edgeInputs {
		check(xs)
	}
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{3, 17, 256, 2000} {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() * 1000
		}
		check(xs)
	}
}

// FuzzSelectVsSort is the differential fuzzer of the tentpole: arbitrary
// float bit patterns (duplicates, NaN payloads, ±Inf, subnormals, tiny n)
// through SelectKths and MedianWilsonSelect vs the sort.Float64s oracle.
func FuzzSelectVsSort(f *testing.F) {
	f.Add([]byte{}, uint8(0), uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, uint8(0), uint8(0))
	seed := func(xs []float64, r1, r2 uint8) {
		b := make([]byte, 0, len(xs)*8)
		for _, x := range xs {
			u := math.Float64bits(x)
			for s := 0; s < 64; s += 8 {
				b = append(b, byte(u>>s))
			}
		}
		f.Add(b, r1, r2)
	}
	for _, xs := range edgeInputs {
		seed(xs, 0, uint8(len(xs)))
	}
	seed([]float64{nan, nan, 1, 1, nan, ninf, pinf, ninf}, 3, 200)

	f.Fuzz(func(t *testing.T, data []byte, r1, r2 uint8) {
		n := len(data) / 8
		if n == 0 {
			return
		}
		if n > 1<<14 {
			n = 1 << 14
		}
		xs := make([]float64, n)
		for i := range xs {
			var u uint64
			for s := 0; s < 8; s++ {
				u |= uint64(data[i*8+s]) << (8 * s)
			}
			xs[i] = math.Float64frombits(u)
		}
		want := append([]float64(nil), xs...)
		sort.Float64s(want)

		ks := []int{int(r1) % n, int(r2) % n}
		got := append([]float64(nil), xs...)
		SelectKths(got, ks...)
		for _, k := range ks {
			if !feqt(got[k], want[k]) {
				t.Fatalf("rank %d: select %v (bits %#x), oracle %v (bits %#x)",
					k, got[k], math.Float64bits(got[k]), want[k], math.Float64bits(want[k]))
			}
		}

		z := float64(r1%4) * 0.98 // 0, 0.98, 1.96, 2.94
		wantCI := MedianWilsonSorted(want, z)
		gotCI := MedianWilsonSelect(append([]float64(nil), xs...), z)
		if gotCI.N != wantCI.N || !feqt(gotCI.Median, wantCI.Median) ||
			!feqt(gotCI.Lower, wantCI.Lower) || !feqt(gotCI.Upper, wantCI.Upper) {
			t.Fatalf("MedianWilson z=%v: select %+v, oracle %+v", z, gotCI, wantCI)
		}

		q := float64(r2) / 255
		if gotQ, wantQ := QuantileSelect(append([]float64(nil), xs...), q), QuantileSorted(want, q); !feqt(gotQ, wantQ) {
			t.Fatalf("Quantile q=%v: select %v, oracle %v", q, gotQ, wantQ)
		}
	})
}
