package stats

// LSD radix sorting kernels for the detectors' bin-close permutation
// sorts. Every close-time ordering pass in internal/delay and
// internal/forwarding is a total order over values that pack losslessly
// into a uint64 (dense integer IDs, biased int32 probe IDs, big-endian
// IPv4 addresses), so an 8-bit-digit LSD counting sort replaces the
// comparison sorts: O(n) passes, no comparator calls, and — because
// counting sort is stable and callers pack unique keys — output identical
// to slices.SortFunc on the unpacked order.
//
// Both kernels take caller-owned scratch and return it (possibly grown) so
// steady-state use across bins is allocation-free.

// radixCutoff is the size below which binary-insertion sort beats setting
// up eight 256-counter histograms.
const radixCutoff = 48

// RadixSortUint64 sorts keys ascending in place. tmp is scratch of at
// least len(keys) (grown and returned for reuse; pass nil the first time).
func RadixSortUint64(keys []uint64, tmp []uint64) []uint64 {
	n := len(keys)
	if n < radixCutoff {
		insertionSortUint64(keys)
		return tmp
	}
	if cap(tmp) < n {
		tmp = make([]uint64, n)
	}
	tmp = tmp[:n]

	// One pass builds all eight per-byte histograms.
	var count [8][256]int32
	for _, k := range keys {
		count[0][byte(k)]++
		count[1][byte(k>>8)]++
		count[2][byte(k>>16)]++
		count[3][byte(k>>24)]++
		count[4][byte(k>>32)]++
		count[5][byte(k>>40)]++
		count[6][byte(k>>48)]++
		count[7][byte(k>>56)]++
	}

	src, dst := keys, tmp
	for b := 0; b < 8; b++ {
		c := &count[b]
		shift := uint(b * 8)
		// A digit shared by every key sorts to a no-op pass; skip it.
		// (Common: high bytes of small ID spaces.)
		if c[byte(src[0]>>shift)] == int32(n) {
			continue
		}
		var pos [256]int32
		var sum int32
		for d := 0; d < 256; d++ {
			pos[d] = sum
			sum += c[d]
		}
		for _, k := range src {
			d := byte(k >> shift)
			dst[pos[d]] = k
			pos[d]++
		}
		src, dst = dst, src
	}
	if &src[0] != &keys[0] {
		copy(keys, src)
	}
	return tmp
}

// RadixSortUint64Pairs sorts keys ascending in place, permuting vals the
// same way (vals[i] travels with keys[i]); len(vals) must equal len(keys).
// The sort is stable, so equal keys keep their input order — callers that
// pack only part of their order into the key rely on this. tmpK/tmpV are
// scratch of at least len(keys) (grown and returned; pass nil first).
func RadixSortUint64Pairs(keys []uint64, vals []int32, tmpK []uint64, tmpV []int32) ([]uint64, []int32) {
	n := len(keys)
	if n != len(vals) {
		panic("stats: RadixSortUint64Pairs length mismatch")
	}
	if n < radixCutoff {
		insertionSortUint64Pairs(keys, vals)
		return tmpK, tmpV
	}
	if cap(tmpK) < n {
		tmpK = make([]uint64, n)
	}
	if cap(tmpV) < n {
		tmpV = make([]int32, n)
	}
	tmpK, tmpV = tmpK[:n], tmpV[:n]

	var count [8][256]int32
	for _, k := range keys {
		count[0][byte(k)]++
		count[1][byte(k>>8)]++
		count[2][byte(k>>16)]++
		count[3][byte(k>>24)]++
		count[4][byte(k>>32)]++
		count[5][byte(k>>40)]++
		count[6][byte(k>>48)]++
		count[7][byte(k>>56)]++
	}

	srcK, dstK := keys, tmpK
	srcV, dstV := vals, tmpV
	for b := 0; b < 8; b++ {
		c := &count[b]
		shift := uint(b * 8)
		if c[byte(srcK[0]>>shift)] == int32(n) {
			continue
		}
		var pos [256]int32
		var sum int32
		for d := 0; d < 256; d++ {
			pos[d] = sum
			sum += c[d]
		}
		for i, k := range srcK {
			d := byte(k >> shift)
			p := pos[d]
			dstK[p] = k
			dstV[p] = srcV[i]
			pos[d] = p + 1
		}
		srcK, dstK = dstK, srcK
		srcV, dstV = dstV, srcV
	}
	if &srcK[0] != &keys[0] {
		copy(keys, srcK)
		copy(vals, srcV)
	}
	return tmpK, tmpV
}

// insertionSortUint64 sorts small key slices ascending.
func insertionSortUint64(keys []uint64) {
	for i := 1; i < len(keys); i++ {
		k := keys[i]
		j := i
		for j > 0 && keys[j-1] > k {
			keys[j] = keys[j-1]
			j--
		}
		keys[j] = k
	}
}

// insertionSortUint64Pairs is insertionSortUint64 carrying a payload;
// stable (strict > guard), matching the counting-sort passes.
func insertionSortUint64Pairs(keys []uint64, vals []int32) {
	for i := 1; i < len(keys); i++ {
		k, v := keys[i], vals[i]
		j := i
		for j > 0 && keys[j-1] > k {
			keys[j], vals[j] = keys[j-1], vals[j-1]
			j--
		}
		keys[j], vals[j] = k, v
	}
}
