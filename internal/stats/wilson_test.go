package stats

import (
	"math"
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestWilsonKnownValues(t *testing.T) {
	// Classic textbook check: n=10, p=0.5, z=1.96 → approx (0.237, 0.763).
	lo, hi := Wilson(10, 0.5, Z95)
	if !almostEqual(lo, 0.2366, 1e-3) || !almostEqual(hi, 0.7634, 1e-3) {
		t.Errorf("Wilson(10, .5) = (%v, %v), want ≈ (0.237, 0.763)", lo, hi)
	}
	// Larger n narrows the interval around p.
	lo2, hi2 := Wilson(1000, 0.5, Z95)
	if hi2-lo2 >= hi-lo {
		t.Error("Wilson interval should narrow as n grows")
	}
}

func TestWilsonEdgeCases(t *testing.T) {
	lo, hi := Wilson(0, 0.5, Z95)
	if lo != 0 || hi != 1 {
		t.Errorf("Wilson(0) = (%v,%v), want vacuous (0,1)", lo, hi)
	}
	lo, hi = Wilson(5, 0, Z95)
	if lo != 0 || hi <= 0 {
		t.Errorf("Wilson(5, p=0) = (%v,%v): lower must clamp to 0, upper > 0", lo, hi)
	}
	lo, hi = Wilson(5, 1, Z95)
	if hi != 1 || lo >= 1 {
		t.Errorf("Wilson(5, p=1) = (%v,%v): upper must clamp to 1, lower < 1", lo, hi)
	}
}

func TestWilsonBoundsProperty(t *testing.T) {
	f := func(n uint8, p01 uint16, zRaw uint8) bool {
		n1 := int(n%200) + 1
		p := float64(p01%1001) / 1000
		z := 0.5 + float64(zRaw%30)/10 // z in [0.5, 3.5)
		lo, hi := Wilson(n1, p, z)
		return lo >= 0 && hi <= 1 && lo <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMedianWilson(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	ci := MedianWilson(xs, Z95)
	if !ci.Valid() || ci.N != 10 {
		t.Fatalf("expected valid CI with N=10, got %+v", ci)
	}
	if ci.Median != 5.5 {
		t.Errorf("Median = %v, want 5.5", ci.Median)
	}
	if ci.Lower > ci.Median || ci.Upper < ci.Median {
		t.Errorf("CI (%v, %v) must bracket the median %v", ci.Lower, ci.Upper, ci.Median)
	}
	if ci.Lower < 1 || ci.Upper > 10 {
		t.Errorf("CI (%v, %v) must lie within the sample range", ci.Lower, ci.Upper)
	}
}

func TestMedianWilsonSingleSample(t *testing.T) {
	ci := MedianWilson([]float64{42}, Z95)
	if ci.Median != 42 || ci.Lower != 42 || ci.Upper != 42 || ci.N != 1 {
		t.Errorf("single sample CI = %+v, want degenerate at 42", ci)
	}
}

func TestMedianWilsonEmpty(t *testing.T) {
	ci := MedianWilson(nil, Z95)
	if ci.Valid() {
		t.Error("empty CI should be invalid")
	}
}

// The CI should contain the true median ~95% of the time: check coverage on
// repeated normal samples.
func TestMedianWilsonCoverage(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	const trials = 400
	const n = 99
	covered := 0
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64() // true median 0
		}
		ci := MedianWilson(xs, Z95)
		if ci.Lower <= 0 && 0 <= ci.Upper {
			covered++
		}
	}
	cov := float64(covered) / trials
	if cov < 0.90 || cov > 0.995 {
		t.Errorf("coverage = %.3f, want ≈ 0.95", cov)
	}
}

func TestMedianCIOverlaps(t *testing.T) {
	a := MedianCI{Median: 5, Lower: 4, Upper: 6, N: 10}
	b := MedianCI{Median: 5.5, Lower: 5.5, Upper: 7, N: 10}
	c := MedianCI{Median: 9, Lower: 8, Upper: 10, N: 10}
	if !a.Overlaps(b) || !b.Overlaps(a) {
		t.Error("a and b should overlap")
	}
	if a.Overlaps(c) || c.Overlaps(a) {
		t.Error("a and c should not overlap")
	}
	// Touching intervals count as overlapping.
	d := MedianCI{Median: 6.5, Lower: 6, Upper: 7, N: 10}
	if !a.Overlaps(d) {
		t.Error("touching intervals should overlap")
	}
}

func TestMedianWilsonOrderProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := raw[:0]
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		ci := MedianWilson(xs, Z95)
		s := make([]float64, len(xs))
		copy(s, xs)
		sort.Float64s(s)
		return ci.Lower <= ci.Median && ci.Median <= ci.Upper &&
			ci.Lower >= s[0] && ci.Upper <= s[len(s)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestMeanCI(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ci := MeanCI(xs, Z95)
	if !almostEqual(ci.Median, 3, 1e-12) {
		t.Errorf("MeanCI center = %v, want 3", ci.Median)
	}
	if ci.Lower >= ci.Upper {
		t.Error("MeanCI must have positive width")
	}
	if MeanCI(nil, Z95).Valid() {
		t.Error("empty MeanCI should be invalid")
	}
}

func TestSortedSamples(t *testing.T) {
	var b SortedSamples
	for _, v := range []float64{5, 1, 4, 2, 3} {
		b.Add(v)
	}
	if b.Len() != 5 {
		t.Fatalf("Len = %d, want 5", b.Len())
	}
	vals := b.Values()
	for i := 1; i < len(vals); i++ {
		if vals[i-1] > vals[i] {
			t.Fatalf("buffer not sorted: %v", vals)
		}
	}
	ci := b.MedianWilson(Z95)
	if ci.Median != 3 {
		t.Errorf("buffer median = %v, want 3", ci.Median)
	}
	b.Reset()
	if b.Len() != 0 {
		t.Error("Reset should empty the buffer")
	}
}
