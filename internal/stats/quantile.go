package stats

import (
	"math"
	"sort"
)

// Median returns the median of xs, or NaN for an empty slice.
// The input is not modified.
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := sortedCopy(xs)
	return medianSorted(s)
}

// MedianSorted returns the median of a slice already sorted in ascending
// order, or NaN for an empty slice. It is the allocation-free companion of
// Median for hot paths that maintain sorted sample buffers.
func MedianSorted(sorted []float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	return medianSorted(sorted)
}

func medianSorted(s []float64) float64 {
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	// Midpoint written to avoid float64 overflow near ±MaxFloat64: with the
	// same sign a+b could overflow, with opposite signs b−a could.
	a, b := s[n/2-1], s[n/2]
	if (a < 0) != (b < 0) {
		return (a + b) / 2
	}
	return a + (b-a)/2
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1) of xs using linear
// interpolation between order statistics (type-7 estimator, the common
// default). It returns NaN for an empty slice or q outside [0, 1].
// The input is not modified. A single quantile needs at most two order
// statistics, so the copy goes through the O(n) selection kernel instead
// of a full sort; the values are pinned ≡ the sorted path by regression
// test.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	return QuantileSelect(s, q)
}

// QuantileSelect is Quantile computing its two order statistics via
// SelectKths instead of sorting; it partially reorders xs in place.
// Returns exactly what QuantileSorted returns on sort.Float64s(xs).
func QuantileSelect(xs []float64, q float64) float64 {
	n := len(xs)
	if n == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	if n == 1 {
		return xs[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		SelectKths(xs, lo)
		return xs[lo]
	}
	SelectKths(xs, lo, hi)
	frac := pos - float64(lo)
	return xs[lo]*(1-frac) + xs[hi]*frac
}

// QuantileSorted is Quantile on an already ascending-sorted slice.
func QuantileSorted(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Min returns the smallest element of xs, or NaN for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or NaN for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Rank returns the fraction of elements of xs that are ≤ v, i.e. the
// empirical CDF of xs evaluated at v. It returns NaN for an empty slice.
func Rank(xs []float64, v float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	n := 0
	for _, x := range xs {
		if x <= v {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

func sortedCopy(xs []float64) []float64 {
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	return s
}
