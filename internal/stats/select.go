package stats

import (
	"math"
	"math/bits"
	"sort"
)

// This file holds the selection kernels of the detectors' bin-close hot
// path. Closing a bin needs three order statistics per link (the median and
// the two Wilson-score rank bounds, §4.2.2); a full sort.Float64s is
// O(n log n) per link-bin just to read three ranks, while Floyd–Rivest
// selection finds them in O(n) expected time. The contract is strict:
// SelectKths places at every requested rank exactly the value an ascending
// sort.Float64s would place there, so MedianWilsonSelect returns the same
// MedianCI as MedianWilsonSorted on the sorted input — MedianWilsonSorted
// is retained unchanged as the executable oracle, and FuzzSelectVsSort
// pins kernel ≡ oracle over adversarial inputs (duplicates, NaN/±Inf,
// tiny n).

// fless is the strict weak ordering sort.Float64s sorts by: NaN values
// first, then ascending. The selection entry points realize this order by
// sweeping NaNs to the front once (nanSweep), which lets every partition
// loop below compare with bare < instead of paying a NaN test per
// comparison; fless itself remains the specification the tests check
// partition invariants against.
func fless(a, b float64) bool {
	return a < b || (math.IsNaN(a) && !math.IsNaN(b))
}

// nanSweep moves every NaN to the front of xs, preserving nothing else,
// and returns their count m. Afterwards xs[:m] is exactly where
// sort.Float64s would leave the NaNs, and xs[m:] is NaN-free, so ranks
// below m are already satisfied and ranks at or above m reduce to
// selection under plain <. The common all-finite case costs one
// predictable never-taken branch per element.
func nanSweep(xs []float64) int {
	m := 0
	for i, x := range xs {
		if x != x {
			xs[i], xs[m] = xs[m], xs[i]
			m++
		}
	}
	return m
}

// SelectKths partially orders xs in place so that for every rank k in ks,
// xs[k] holds the k-th smallest element — the value sort.Float64s would
// put there — with xs[:k] ≤ xs[k] ≤ xs[k+1:] under the same NaN-first
// order. Expected time is O(n · |ks|) with no allocation; ranks must be
// valid indices into xs or SelectKths panics. When equivalent elements
// (duplicates, two NaN payloads, -0 vs +0) straddle a requested rank, the
// value at the rank is equivalent under == (NaN position included) to the
// oracle's, though not necessarily the same bit pattern — the detectors
// never see that distinction because equivalent floats compare and
// subtract identically downstream.
func SelectKths(xs []float64, ks ...int) {
	for _, k := range ks {
		if k < 0 || k >= len(xs) {
			panic("stats: SelectKths rank out of range")
		}
	}
	if len(ks) == 0 {
		return
	}
	m := nanSweep(xs)
	if len(ks) == 1 {
		if ks[0] >= m {
			floydRivest(xs, m, len(xs)-1, ks[0])
		}
		return
	}
	// Sort and dedupe the ranks (at most a handful: insertion sort).
	var buf [8]int
	sorted := append(buf[:0], ks...)
	for i := 1; i < len(sorted); i++ {
		for j := i; j > 0 && sorted[j] < sorted[j-1]; j-- {
			sorted[j], sorted[j-1] = sorted[j-1], sorted[j]
		}
	}
	uniq := sorted[:0]
	for _, k := range sorted {
		// Ranks below the NaN prefix already hold their oracle value.
		if k >= m && (len(uniq) == 0 || k != uniq[len(uniq)-1]) {
			uniq = append(uniq, k)
		}
	}
	if len(uniq) > 0 {
		multiSelect(xs, m, len(xs)-1, uniq)
	}
}

// multiSelect resolves an ascending list of ranks within xs[lo:hi+1]:
// selecting the middle rank fully partitions the segment around it, so the
// remaining ranks split into independent sub-segments (left recursed,
// right handled by the loop — the deeper side shrinks geometrically).
func multiSelect(xs []float64, lo, hi int, ks []int) {
	for len(ks) > 0 {
		if len(ks) == 1 {
			floydRivest(xs, lo, hi, ks[0])
			return
		}
		m := len(ks) / 2
		k := ks[m]
		floydRivest(xs, lo, hi, k)
		if m > 0 {
			multiSelect(xs, lo, k-1, ks[:m])
		}
		lo, ks = k+1, ks[m+1:]
	}
}

// floydRivest places the k-th smallest element of xs[lo:hi+1] at xs[k]
// and partitions the segment around it. Callers guarantee the segment is
// NaN-free (nanSweep ran), so plain < is the oracle's order here. This is the
// classic SELECT of Floyd & Rivest (CACM '75): on large segments a small
// recursively-selected sample brackets the target rank so the partition
// pivot lands within O(√(n log n)) of it, giving n + min(k, n−k) + o(n)
// expected comparisons. Selection is deterministic — no randomness — and a
// round budget guards against adversarial inputs that defeat the sampled
// pivots: past it the segment is handed to sort.Float64s, the oracle
// itself, so the equivalence contract holds trivially on every path.
func floydRivest(xs []float64, lo, hi, k int) {
	rounds := 0
	maxRounds := 2*bits.Len(uint(hi-lo+1)) + 8
	for hi > lo {
		if hi-lo < 16 {
			insertionSortFloat(xs, lo, hi)
			return
		}
		if rounds++; rounds > maxRounds {
			sort.Float64s(xs[lo : hi+1])
			return
		}
		if hi-lo > 600 {
			// Sample bracketing: select the same rank inside a subrange
			// sized ~n^(2/3) around the expected position, then use the
			// now-exact xs[k] of the sample as the partition pivot below.
			n := float64(hi - lo + 1)
			i := float64(k - lo + 1)
			z := math.Log(n)
			s := 0.5 * math.Exp(2*z/3)
			sd := 0.5 * math.Sqrt(z*s*(n-s)/n)
			if i < n/2 {
				sd = -sd
			}
			nlo := max(lo, int(float64(k)-i*s/n+sd))
			nhi := min(hi, int(float64(k)+(n-i)*s/n+sd))
			floydRivest(xs, nlo, nhi, k)
		}
		// Partition xs[lo:hi+1] around t = xs[k] (Hoare scheme with the
		// boundary fix-up of Algorithm 489).
		t := xs[k]
		i, j := lo, hi
		xs[lo], xs[k] = xs[k], xs[lo]
		if t < xs[hi] {
			xs[lo], xs[hi] = xs[hi], xs[lo]
		}
		for i < j {
			xs[i], xs[j] = xs[j], xs[i]
			i++
			j--
			for xs[i] < t {
				i++
			}
			for t < xs[j] {
				j--
			}
		}
		if xs[lo] == t {
			xs[lo], xs[j] = xs[j], xs[lo]
		} else {
			j++
			xs[j], xs[hi] = xs[hi], xs[j]
		}
		if j <= k {
			lo = j + 1
		}
		if k <= j {
			hi = j - 1
		}
	}
}

// insertionSortFloat sorts a NaN-free xs[lo:hi+1] ascending.
func insertionSortFloat(xs []float64, lo, hi int) {
	for i := lo + 1; i <= hi; i++ {
		for j := i; j > lo && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// MedianWilsonSelect computes exactly what MedianWilsonSorted computes on
// sort.Float64s(xs) — the same order statistics at the same Wilson ranks,
// hence the same MedianCI — without sorting: the three (four, for even n)
// required ranks are selected in O(n). xs is partially reordered in place;
// callers owning a scratch buffer (the delay detector's per-bin sample
// buffer) lose nothing, others should copy first. For an empty slice it
// returns a zero MedianCI with N == 0.
func MedianWilsonSelect(xs []float64, z float64) MedianCI {
	n := len(xs)
	if n == 0 {
		return MedianCI{}
	}
	lo, hi := wilsonRanks(n, z)
	if n%2 == 1 {
		SelectKths(xs, lo, n/2, hi)
	} else {
		SelectKths(xs, lo, n/2-1, n/2, hi)
	}
	// The median ranks are in their sorted positions now, so the sorted
	// midpoint arithmetic applies verbatim.
	return MedianCI{
		Median: medianSorted(xs),
		Lower:  xs[lo],
		Upper:  xs[hi],
		N:      n,
	}
}
