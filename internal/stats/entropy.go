package stats

import "math"

// NormalizedEntropy returns the Shannon entropy of the distribution implied
// by the non-negative counts, normalized by ln(n) so the result lies in
// [0, 1]: 0 when all mass is in one bucket, 1 when mass is spread evenly.
//
// This is H(A) from §4.3, used to decide whether the probes observing a link
// are spread across enough ASs. Buckets with zero count contribute nothing.
// Special cases: no positive counts → 0; exactly one bucket → 1 (a single AS
// trivially has "even" dispersion, but the ≥3-AS criterion screens that case
// out before entropy is consulted).
func NormalizedEntropy(counts []int) float64 {
	n := len(counts)
	total := 0
	positive := 0
	for _, c := range counts {
		if c > 0 {
			total += c
			positive++
		}
	}
	if total == 0 {
		return 0
	}
	if n < 2 {
		return 1
	}
	h := 0.0
	for _, c := range counts {
		if c <= 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log(p)
	}
	return h / math.Log(float64(n))
}
