// Package stats provides the robust, nonparametric statistics used by the
// delay-change and forwarding-anomaly detectors: order statistics and
// quantiles, Wilson-score confidence intervals for the median, exponential
// smoothing, Pearson correlation, normalized entropy, median absolute
// deviation, and helpers for normality assessment (normal quantiles and Q-Q
// regression) and empirical distributions (CDF/CCDF).
//
// All functions operate on float64 samples. Unless documented otherwise they
// do not mutate their inputs and treat NaN values as absent (callers are
// expected to filter them; functions that sort copy first).
package stats
