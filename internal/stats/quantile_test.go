package stats

import (
	"math"
	"testing"
)

func almostEqual(a, b, eps float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= eps
}

func TestMedian(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{"empty", nil, math.NaN()},
		{"single", []float64{3}, 3},
		{"odd", []float64{3, 1, 2}, 2},
		{"even", []float64{4, 1, 3, 2}, 2.5},
		{"duplicates", []float64{5, 5, 5, 5}, 5},
		{"negative", []float64{-3, -1, -2}, -2},
		{"unsorted big", []float64{9, 2, 7, 4, 5, 6, 3, 8, 1}, 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := Median(tt.in)
			if !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("Median(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestMedianDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated its input: %v", in)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	tests := []struct {
		q, want float64
	}{
		{0, 1},
		{0.25, 2},
		{0.5, 3},
		{0.75, 4},
		{1, 5},
		{0.1, 1.4},
	}
	for _, tt := range tests {
		if got := Quantile(xs, tt.q); !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Quantile(xs, %v) = %v, want %v", tt.q, got, tt.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) should be NaN")
	}
	if !math.IsNaN(Quantile(xs, -0.1)) || !math.IsNaN(Quantile(xs, 1.1)) {
		t.Error("Quantile outside [0,1] should be NaN")
	}
	if got := Quantile([]float64{7}, 0.99); got != 7 {
		t.Errorf("Quantile single = %v, want 7", got)
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 4, 1, 5}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v, want -1", got)
	}
	if got := Max(xs); got != 5 {
		t.Errorf("Max = %v, want 5", got)
	}
	if !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Error("Min/Max of empty should be NaN")
	}
}

func TestRank(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := Rank(xs, 2.5); got != 0.5 {
		t.Errorf("Rank = %v, want 0.5", got)
	}
	if got := Rank(xs, 0); got != 0 {
		t.Errorf("Rank = %v, want 0", got)
	}
	if got := Rank(xs, 10); got != 1 {
		t.Errorf("Rank = %v, want 1", got)
	}
	if !math.IsNaN(Rank(nil, 1)) {
		t.Error("Rank of empty should be NaN")
	}
}

func TestMedianSorted(t *testing.T) {
	if got := MedianSorted([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("MedianSorted = %v, want 2.5", got)
	}
	if !math.IsNaN(MedianSorted(nil)) {
		t.Error("MedianSorted(nil) should be NaN")
	}
}
