package stats

// EWMA is an exponentially weighted moving average:
//
//	m̄_t = α·m_t + (1−α)·m̄_{t−1}
//
// (Eq 7 of the paper). A small α makes the reference sluggish, which is what
// the detectors want: anomalous bins barely move the reference, so a
// sustained event keeps deviating from it.
//
// The paper seeds the reference with the median of the first three
// observations (§4.2.4); Warmup controls that behaviour. The zero value is
// unusable — construct with NewEWMA.
type EWMA struct {
	Alpha float64

	warmup   []float64
	warmupN  int
	value    float64
	primed   bool
	haveInit bool
}

// NewEWMA returns an EWMA with the given smoothing factor α ∈ (0, 1) and
// warm-up length. With warmup == n > 0 the first n observations are buffered
// and their median becomes the initial reference value m̄₀; subsequent
// observations update it exponentially. With warmup ≤ 1 the first
// observation becomes m̄₀ directly.
func NewEWMA(alpha float64, warmup int) *EWMA {
	if warmup < 1 {
		warmup = 1
	}
	return &EWMA{Alpha: alpha, warmupN: warmup}
}

// MakeEWMA is NewEWMA by value, for embedding in columnar detector state
// (flat arrays of per-link references) without a pointer indirection per
// smoothed component.
func MakeEWMA(alpha float64, warmup int) EWMA {
	if warmup < 1 {
		warmup = 1
	}
	return EWMA{Alpha: alpha, warmupN: warmup}
}

// Observe feeds one measurement and returns the updated reference value.
// During warm-up the returned value is the running median of the
// observations so far.
func (e *EWMA) Observe(x float64) float64 {
	if !e.primed {
		e.warmup = append(e.warmup, x)
		e.value = Median(e.warmup)
		e.haveInit = true
		if len(e.warmup) >= e.warmupN {
			e.primed = true
			e.warmup = nil
		}
		return e.value
	}
	e.value = e.Alpha*x + (1-e.Alpha)*e.value
	return e.value
}

// Value returns the current reference value. Ready reports whether at least
// one observation has been made.
func (e *EWMA) Value() float64 { return e.value }

// Ready reports whether the EWMA has seen at least one observation.
func (e *EWMA) Ready() bool { return e.haveInit }

// Primed reports whether the warm-up phase has completed and the reference
// is now updated exponentially.
func (e *EWMA) Primed() bool { return e.primed }

// SmoothInto updates ref ← α·cur + (1−α)·ref element-wise over two vectors of
// equal length. It is the vector form of Eq 8 used by the forwarding model.
func SmoothInto(ref, cur []float64, alpha float64) {
	for i := range ref {
		ref[i] = alpha*cur[i] + (1-alpha)*ref[i]
	}
}
