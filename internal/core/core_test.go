package core

import (
	"context"
	"testing"
	"time"

	"pinpoint/internal/atlas"
	"pinpoint/internal/delay"
	"pinpoint/internal/events"
	"pinpoint/internal/netsim"
	"pinpoint/internal/trace"
)

var start = time.Date(2015, 11, 28, 0, 0, 0, 0, time.UTC)

// buildAttack builds a small Internet, injects a 2-hour congestion on the
// last-hop link of one root instance (a miniature §7.1 DDoS), and returns
// the platform plus ground truth.
func buildAttack(t testing.TB) (p *atlas.Platform, topo *netsim.Topo, eventStart, eventEnd time.Time) {
	t.Helper()
	topo, err := netsim.Generate(netsim.TopoConfig{
		Seed: 1234, Tier1: 2, Transit: 5, Stub: 20,
		Roots: 1, RootInstances: 3, Anchors: 2, IXPs: 1, IXPMembers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	eventStart = start.Add(48 * time.Hour)
	eventEnd = eventStart.Add(2 * time.Hour)
	root := topo.Roots[0]
	sc := netsim.NewScenario(netsim.Event{
		Name: "ddos", Kind: netsim.EventCongestion,
		From: root.Sites[0], To: root.Instances[0], Both: true,
		ExtraDelayMS: 60, Loss: 0.02,
		Start: eventStart, End: eventEnd,
	})
	n, err := topo.Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	p = atlas.NewPlatform(n, 99, netsim.TracerouteOpts{})
	p.AddProbes(topo.ProbeSites())
	p.AddBuiltin(root.Addr)
	return p, topo, eventStart, eventEnd
}

func TestEndToEndDDoSDetection(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	p, topo, evStart, evEnd := buildAttack(t)
	root := topo.Roots[0]

	cfg := Config{RetainAlarms: true}
	cfg.Events.Window = 24 * time.Hour
	cfg.Events.Threshold = 3
	a := New(cfg, p.ProbeASN, p.Net().Prefixes())

	end := start.Add(72 * time.Hour)
	if err := p.Run(start, end, func(r trace.Result) error {
		a.Observe(r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	a.Flush()

	if a.Results() == 0 {
		t.Fatal("no results processed")
	}

	// 1. Delay-alarm severity must concentrate in the attack window. Counts
	//    alone are misleading: after the event the polluted reference decays
	//    back over many bins of low-deviation "recovery" alarms (a known
	//    property of the paper's unconditional reference update, bounded by
	//    the small α).
	var inWindow, outWindow int
	var inDev, outDev float64
	rootLinkSeen := false
	for _, al := range a.DelayAlarms() {
		if !al.Bin.Before(evStart) && al.Bin.Before(evEnd) {
			inWindow++
			inDev += al.Deviation
			if al.Link.Near == root.Addr || al.Link.Far == root.Addr {
				rootLinkSeen = true
			}
		} else {
			outWindow++
			outDev += al.Deviation
		}
	}
	if inWindow == 0 {
		t.Fatal("no delay alarms during the attack window")
	}
	if !rootLinkSeen {
		t.Error("no alarm pinpointing the root's last-hop link")
	}
	if inDev <= outDev {
		t.Errorf("severity outside the window (%.0f) exceeds inside (%.0f)", outDev, inDev)
	}

	// 2. The root operator AS's delay magnitude must peak inside the window.
	mags := a.Aggregator().DelayMagnitude(root.ASN, start.Add(24*time.Hour), end)
	var peakT time.Time
	peakV := -1e18
	for _, pt := range mags {
		if pt.V > peakV {
			peakV, peakT = pt.V, pt.T
		}
	}
	if peakT.Before(evStart) || !peakT.Before(evEnd) {
		t.Errorf("delay magnitude peak at %v (%.1f), want inside [%v, %v)", peakT, peakV, evStart, evEnd)
	}

	// 3. Event detection surfaces the operator AS.
	evs := a.Aggregator().Events(start.Add(24*time.Hour), end)
	found := false
	for _, e := range evs {
		if e.ASN == root.ASN && e.Type == events.DelayChange &&
			!e.Bin.Before(evStart) && e.Bin.Before(evEnd) {
			found = true
		}
	}
	if !found {
		t.Errorf("no delay-change event for %v in window; events: %v", root.ASN, evs)
	}

	// 4. The alarm graph around the root address is non-trivial during the
	//    attack (Fig 8's connected component).
	g := a.Graph(evStart, evEnd)
	if nodes := g.ComponentNodes(root.Addr); len(nodes) < 2 {
		t.Errorf("root component has %d nodes, want ≥ 2", len(nodes))
	}
}

func TestRunStream(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	p, _, _, _ := buildAttack(t)
	a := New(Config{RetainAlarms: true}, p.ProbeASN, p.Net().Prefixes())
	ch, errc := p.Stream(context.Background(), start, start.Add(6*time.Hour))
	if err := a.RunStream(context.Background(), ch); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if a.Results() == 0 {
		t.Error("stream processed no results")
	}
}

func TestRunStreamCancel(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	p, _, _, _ := buildAttack(t)
	a := New(Config{}, p.ProbeASN, p.Net().Prefixes())
	ctx, cancel := context.WithCancel(context.Background())
	ch, _ := p.Stream(ctx, start, start.Add(240*time.Hour))
	done := make(chan error, 1)
	go func() { done <- a.RunStream(ctx, ch) }()
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != context.Canceled {
			t.Errorf("RunStream error = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("RunStream did not return after cancel")
	}
}

func TestAlarmHooks(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	p, _, evStart, _ := buildAttack(t)
	a := New(Config{}, p.ProbeASN, p.Net().Prefixes())
	hooked := 0
	a.OnDelayAlarm = func(delay.Alarm) { hooked++ }
	err := p.Run(evStart.Add(-24*time.Hour), evStart.Add(3*time.Hour), func(r trace.Result) error {
		a.Observe(r)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Flush()
	if hooked == 0 {
		t.Error("OnDelayAlarm never invoked")
	}
	if len(a.DelayAlarms()) != 0 {
		t.Error("alarms retained despite RetainAlarms=false")
	}
}

func TestFlushIdempotent(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	p, _, evStart, _ := buildAttack(t)
	for _, workers := range []int{1, 4} {
		a := New(Config{RetainAlarms: true, Workers: workers}, p.ProbeASN, p.Net().Prefixes())
		err := p.Run(evStart.Add(-24*time.Hour), evStart.Add(3*time.Hour), func(r trace.Result) error {
			a.Observe(r)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		a.Flush()
		nd, nf := len(a.DelayAlarms()), len(a.ForwardingAlarms())
		if nd == 0 {
			t.Fatalf("workers=%d: fixture produced no delay alarms", workers)
		}
		// The RunStream-cancel shape: a deferred Flush after an explicit
		// one must not re-emit the closed bin's alarms.
		a.Flush()
		a.Flush()
		if len(a.DelayAlarms()) != nd || len(a.ForwardingAlarms()) != nf {
			t.Errorf("workers=%d: double Flush grew alarms %d/%d → %d/%d",
				workers, nd, nf, len(a.DelayAlarms()), len(a.ForwardingAlarms()))
		}
		a.Close()
		a.Close() // Close is idempotent too
	}
}

func TestShardedFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	p, _, _, _ := buildAttack(t)
	a := New(Config{Workers: 4}, p.ProbeASN, p.Net().Prefixes())
	defer a.Close()
	if a.Workers() != 4 {
		t.Fatalf("Workers() = %d, want 4", a.Workers())
	}
	if a.DelayDetector() != nil || a.ForwardingDetector() != nil {
		t.Error("sharded analyzer must not expose per-shard detectors")
	}
	ch, errc := p.StreamBatches(context.Background(), start, start.Add(6*time.Hour), 0)
	if err := a.RunBatches(context.Background(), ch); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if a.Results() == 0 {
		t.Error("batched stream processed no results")
	}
	if a.LinksSeen() == 0 || a.RoutersSeen() == 0 {
		t.Errorf("stats empty: links=%d routers=%d", a.LinksSeen(), a.RoutersSeen())
	}
}
