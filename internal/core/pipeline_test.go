package core

import (
	"context"
	"reflect"
	"testing"
	"time"

	"pinpoint/internal/trace"
)

// TestRunPlatformFusedMatchesSequential drives the fused pipeline (parallel
// generator workers feeding the sharded engine with no intermediate channel
// hop) and asserts its retained alarms, statistics and result count are
// identical to the classic sequential Observe loop.
func TestRunPlatformFusedMatchesSequential(t *testing.T) {
	end := start.Add(24 * time.Hour)

	p1, _, _, _ := buildAttack(t)
	base := New(Config{RetainAlarms: true}, p1.ProbeASN, p1.Net().Prefixes())
	if err := p1.Run(start, end, func(r trace.Result) error {
		base.Observe(r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	base.Flush()

	p2, _, _, _ := buildAttack(t)
	p2.SetWorkers(3)
	fused := New(Config{RetainAlarms: true, Workers: 2}, p2.ProbeASN, p2.Net().Prefixes())
	defer fused.Close()
	if err := fused.RunPlatform(context.Background(), p2, start, end); err != nil {
		t.Fatal(err)
	}

	if base.Results() == 0 || fused.Results() != base.Results() {
		t.Fatalf("results: fused %d, sequential %d", fused.Results(), base.Results())
	}
	if !reflect.DeepEqual(base.DelayAlarms(), fused.DelayAlarms()) {
		t.Errorf("delay alarms differ: fused %d, sequential %d",
			len(fused.DelayAlarms()), len(base.DelayAlarms()))
	}
	if !reflect.DeepEqual(base.ForwardingAlarms(), fused.ForwardingAlarms()) {
		t.Errorf("forwarding alarms differ: fused %d, sequential %d",
			len(fused.ForwardingAlarms()), len(base.ForwardingAlarms()))
	}
	if base.LinksSeen() != fused.LinksSeen() {
		t.Errorf("links seen: fused %d, sequential %d", fused.LinksSeen(), base.LinksSeen())
	}
	if base.RoutersSeen() != fused.RoutersSeen() {
		t.Errorf("routers seen: fused %d, sequential %d", fused.RoutersSeen(), base.RoutersSeen())
	}
}

func TestRunPlatformCancel(t *testing.T) {
	p, _, _, _ := buildAttack(t)
	p.SetWorkers(2)
	a := New(Config{Workers: 2}, p.ProbeASN, p.Net().Prefixes())
	defer a.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := a.RunPlatform(ctx, p, start, start.Add(1000*time.Hour))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The canceled run already flushed; the analyzer must remain usable and
	// idempotent.
	a.Flush()
}
