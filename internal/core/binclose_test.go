package core

import (
	"context"
	"testing"
	"time"

	"pinpoint/internal/timeseries"
)

// runWithBinHook runs the miniature attack platform for a short window and
// records every OnBinClose firing, asserting at hook time that the alarm
// record of the closed bin is complete (no alarm of a later bin dispatched
// yet — the snapshot-publication invariant).
func runWithBinHook(t *testing.T, workers int, hours int) (bins []time.Time, alarmsAtClose map[time.Time]int, a *Analyzer) {
	t.Helper()
	p, _, _, _ := buildAttack(t)
	cfg := Config{RetainAlarms: true, Workers: workers}
	a = New(cfg, p.ProbeASN, p.Net().Prefixes())
	defer a.Close()
	alarmsAtClose = make(map[time.Time]int)
	a.OnBinClose = func(bin time.Time) {
		bins = append(bins, bin)
		alarmsAtClose[bin] = len(a.DelayAlarms()) + len(a.ForwardingAlarms())
		for _, al := range a.DelayAlarms() {
			if al.Bin.After(bin) {
				t.Errorf("OnBinClose(%v) ran with a dispatched alarm from later bin %v", bin, al.Bin)
			}
		}
	}
	end := start.Add(time.Duration(hours) * time.Hour)
	if err := a.RunPlatform(context.Background(), p, start, end); err != nil {
		t.Fatal(err)
	}
	return bins, alarmsAtClose, a
}

func TestOnBinCloseFiresPerBinInOrder(t *testing.T) {
	bins, _, a := runWithBinHook(t, 1, 6)
	if len(bins) == 0 {
		t.Fatal("OnBinClose never fired")
	}
	for i := 1; i < len(bins); i++ {
		if !bins[i].After(bins[i-1]) {
			t.Fatalf("bins not strictly increasing: %v", bins)
		}
	}
	// The final bin closes at Flush, so every observed bin closes exactly
	// once: first result bin through last result bin.
	want := 6
	if len(bins) != want {
		t.Errorf("%d bin closes, want %d (hourly bins over 6h): %v", len(bins), want, bins)
	}
	if got := timeseries.Bin(start, time.Hour); !bins[0].Equal(got) {
		t.Errorf("first closed bin %v, want %v", bins[0], got)
	}
	if a.Results() == 0 {
		t.Error("no results ingested")
	}
	// Flush is idempotent: a second Flush must not re-fire the hook.
	n := len(bins)
	a.Flush()
	if len(bins) != n {
		t.Errorf("idempotent Flush re-fired OnBinClose: %d → %d", n, len(bins))
	}
}

func TestOnBinCloseShardedMatchesSequential(t *testing.T) {
	seqBins, seqAlarms, _ := runWithBinHook(t, 1, 6)
	engBins, engAlarms, _ := runWithBinHook(t, 3, 6)
	if len(seqBins) != len(engBins) {
		t.Fatalf("sequential closed %d bins, sharded %d", len(seqBins), len(engBins))
	}
	for i := range seqBins {
		if !seqBins[i].Equal(engBins[i]) {
			t.Errorf("close %d: sequential %v, sharded %v", i, seqBins[i], engBins[i])
		}
	}
	for bin, n := range seqAlarms {
		if engAlarms[bin] != n {
			t.Errorf("bin %v: %d alarms dispatched at close sequentially, %d sharded", bin, n, engAlarms[bin])
		}
	}
}

// TestOnBinCloseDrivesIncrementalAggregator pins the contract the serving
// layer depends on: advancing the aggregator's incremental region from the
// hook yields the same events as a plain run's full recomputation.
func TestOnBinCloseDrivesIncrementalAggregator(t *testing.T) {
	p1, _, _, _ := buildAttack(t)
	cfg := Config{}
	cfg.Events.Window = 4 * time.Hour
	cfg.Events.Threshold = 3
	end := start.Add(8 * time.Hour)

	inc := New(cfg, p1.ProbeASN, p1.Net().Prefixes())
	defer inc.Close()
	inc.OnBinClose = func(bin time.Time) {
		inc.Aggregator().CloseBins(bin.Add(time.Hour))
	}
	if err := inc.RunPlatform(context.Background(), p1, start, end); err != nil {
		t.Fatal(err)
	}

	p2, _, _, _ := buildAttack(t)
	ref := New(cfg, p2.ProbeASN, p2.Net().Prefixes())
	defer ref.Close()
	if err := ref.RunPlatform(context.Background(), p2, start, end); err != nil {
		t.Fatal(err)
	}

	got := inc.Aggregator().Events(start, end)
	want := ref.Aggregator().Events(start, end)
	if len(got) != len(want) {
		t.Fatalf("incremental run: %d events, plain run: %d\ngot %v\nwant %v", len(got), len(want), got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d: got %+v, want %+v", i, got[i], want[i])
		}
	}
}
