// Package core wires the paper's three methods into one analysis pipeline:
// traceroute results stream in; differential-RTT delay alarms (§4) and
// packet-forwarding anomalies (§5) stream out and are simultaneously
// aggregated into per-AS severity series and major events (§6).
//
// This is the engine behind cmd/pinpoint (offline analysis) and cmd/ihr
// (the near-real-time Internet Health Report of §8).
package core

import (
	"context"
	"time"

	"pinpoint/internal/delay"
	"pinpoint/internal/events"
	"pinpoint/internal/forwarding"
	"pinpoint/internal/ipmap"
	"pinpoint/internal/trace"
)

// Config bundles the three stages' configurations. Zero values give the
// paper's parameters throughout. The three bin sizes are forced to match:
// Delay.BinSize wins when set, else one hour.
type Config struct {
	Delay      delay.Config
	Forwarding forwarding.Config
	Events     events.Config

	// RetainAlarms keeps every alarm in memory for later queries
	// (DelayAlarms / ForwardingAlarms). Leave it false for unbounded
	// streaming runs and consume alarms via the hooks instead.
	RetainAlarms bool
}

func (c Config) withDefaults() Config {
	if c.Delay.BinSize == 0 {
		c.Delay.BinSize = time.Hour
	}
	c.Forwarding.BinSize = c.Delay.BinSize
	c.Events.BinSize = c.Delay.BinSize
	return c
}

// Analyzer is the end-to-end pipeline. It is not safe for concurrent use;
// RunStream provides the single-goroutine streaming harness.
type Analyzer struct {
	cfg Config

	delayDet *delay.Detector
	fwdDet   *forwarding.Detector
	agg      *events.Aggregator

	delayAlarms []delay.Alarm
	fwdAlarms   []forwarding.Alarm
	results     int

	// OnDelayAlarm and OnForwardingAlarm, when non-nil, are invoked for
	// every alarm as its bin closes (the near-real-time reporting path).
	OnDelayAlarm      func(delay.Alarm)
	OnForwardingAlarm func(forwarding.Alarm)
}

// New returns an Analyzer. probeASN resolves probe ids to AS numbers (the
// §4.3 diversity filter needs it); table maps IPs to ASes for aggregation.
func New(cfg Config, probeASN func(int) (ipmap.ASN, bool), table *ipmap.Table) *Analyzer {
	cfg = cfg.withDefaults()
	return &Analyzer{
		cfg:      cfg,
		delayDet: delay.NewDetector(cfg.Delay, probeASN),
		fwdDet:   forwarding.NewDetector(cfg.Forwarding),
		agg:      events.NewAggregator(cfg.Events, table),
	}
}

// Observe ingests one traceroute result (results must arrive in
// chronological order, as the platform and the Atlas stream provide them).
func (a *Analyzer) Observe(r trace.Result) {
	a.results++
	a.agg.ObserveBin(r.Time)
	a.dispatchDelay(a.delayDet.Observe(r))
	a.dispatchFwd(a.fwdDet.Observe(r))
}

// Flush closes the open bin in both detectors. Call at end of stream.
func (a *Analyzer) Flush() {
	a.dispatchDelay(a.delayDet.Flush())
	a.dispatchFwd(a.fwdDet.Flush())
}

func (a *Analyzer) dispatchDelay(alarms []delay.Alarm) {
	for _, al := range alarms {
		a.agg.AddDelayAlarm(al)
		if a.cfg.RetainAlarms {
			a.delayAlarms = append(a.delayAlarms, al)
		}
		if a.OnDelayAlarm != nil {
			a.OnDelayAlarm(al)
		}
	}
}

func (a *Analyzer) dispatchFwd(alarms []forwarding.Alarm) {
	for _, al := range alarms {
		a.agg.AddForwardingAlarm(al)
		if a.cfg.RetainAlarms {
			a.fwdAlarms = append(a.fwdAlarms, al)
		}
		if a.OnForwardingAlarm != nil {
			a.OnForwardingAlarm(al)
		}
	}
}

// RunStream consumes a result channel until it closes or the context is
// canceled, then flushes. It returns the context's error when canceled.
func (a *Analyzer) RunStream(ctx context.Context, results <-chan trace.Result) error {
	for {
		select {
		case r, ok := <-results:
			if !ok {
				a.Flush()
				return nil
			}
			a.Observe(r)
		case <-ctx.Done():
			a.Flush()
			return ctx.Err()
		}
	}
}

// Results returns how many traceroute results have been ingested.
func (a *Analyzer) Results() int { return a.results }

// DelayAlarms returns retained delay alarms (RetainAlarms must be set).
func (a *Analyzer) DelayAlarms() []delay.Alarm { return a.delayAlarms }

// ForwardingAlarms returns retained forwarding alarms.
func (a *Analyzer) ForwardingAlarms() []forwarding.Alarm { return a.fwdAlarms }

// Aggregator exposes the per-AS severity series and event detection.
func (a *Analyzer) Aggregator() *events.Aggregator { return a.agg }

// DelayDetector exposes the underlying §4 detector (for statistics such as
// LinksSeen).
func (a *Analyzer) DelayDetector() *delay.Detector { return a.delayDet }

// ForwardingDetector exposes the underlying §5 detector.
func (a *Analyzer) ForwardingDetector() *forwarding.Detector { return a.fwdDet }

// Graph builds the alarm graph (Figs 8, 12) from the retained alarms within
// [from, to).
func (a *Analyzer) Graph(from, to time.Time) *events.AlarmGraph {
	var dal []delay.Alarm
	for _, al := range a.delayAlarms {
		if !al.Bin.Before(from) && al.Bin.Before(to) {
			dal = append(dal, al)
		}
	}
	var fal []forwarding.Alarm
	for _, al := range a.fwdAlarms {
		if !al.Bin.Before(from) && al.Bin.Before(to) {
			fal = append(fal, al)
		}
	}
	return events.NewAlarmGraph(dal, fal)
}
