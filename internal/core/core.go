// Package core wires the paper's three methods into one analysis pipeline:
// traceroute results stream in; differential-RTT delay alarms (§4) and
// packet-forwarding anomalies (§5) stream out and are simultaneously
// aggregated into per-AS severity series and major events (§6).
//
// This is the engine behind cmd/pinpoint (offline analysis) and cmd/ihr
// (the near-real-time Internet Health Report of §8).
//
// The Analyzer is a thin facade over two interchangeable detection
// backends: the classic sequential detector pair (Workers ≤ 1) and the
// sharded concurrent engine of internal/engine (Workers > 1). Both produce
// bit-identical alarms, events and series; the engine simply spreads
// ingestion and bin evaluation across cores. RunPlatform additionally
// fuses a parallel atlas.Platform generator into the engine with no
// intermediate channel hop — the full producer/consumer pipeline.
package core

import (
	"context"
	"io"
	"runtime"
	"time"

	"pinpoint/internal/atlas"
	"pinpoint/internal/delay"
	"pinpoint/internal/engine"
	"pinpoint/internal/events"
	"pinpoint/internal/forwarding"
	"pinpoint/internal/ident"
	"pinpoint/internal/ingest"
	"pinpoint/internal/ipmap"
	"pinpoint/internal/timeseries"
	"pinpoint/internal/trace"
)

// Config bundles the three stages' configurations. Zero values give the
// paper's parameters throughout. The three bin sizes are forced to match:
// Delay.BinSize wins when set, else one hour.
type Config struct {
	Delay      delay.Config
	Forwarding forwarding.Config
	Events     events.Config

	// RetainAlarms keeps every alarm in memory for later queries
	// (DelayAlarms / ForwardingAlarms). Leave it false for unbounded
	// streaming runs and consume alarms via the hooks instead.
	RetainAlarms bool

	// Workers selects the detection backend. 0 or 1 runs the exact legacy
	// sequential path (two detectors on the caller's goroutine); > 1
	// shards per-link and per-router state across that many concurrent
	// workers, producing identical output (see internal/engine). Use
	// AutoWorkers for GOMAXPROCS.
	Workers int

	// BatchSize tunes how many results the sharded engine extracts before
	// handing work to the shards (0 = engine default). Ignored when
	// Workers ≤ 1.
	BatchSize int
}

// AutoWorkers sets Config.Workers to the number of usable CPUs.
const AutoWorkers = -1

// BinSize resolves the analysis bin size this configuration yields — the
// shared Delay/Forwarding/Events bin after defaults apply. Roles that run
// no analyzer (a serve.Follower bootstrapping from store files) use it to
// agree with the writer's engine instead of hardcoding the default.
func (c Config) BinSize() time.Duration { return c.withDefaults().Delay.BinSize }

func (c Config) withDefaults() Config {
	if c.Delay.BinSize == 0 {
		c.Delay.BinSize = time.Hour
	}
	c.Forwarding.BinSize = c.Delay.BinSize
	c.Events.BinSize = c.Delay.BinSize
	if c.Workers == AutoWorkers {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Analyzer is the end-to-end pipeline. It must be driven from a single
// goroutine (RunStream and RunBatches provide streaming harnesses); with
// Workers > 1 the heavy lifting happens on the engine's shard goroutines
// while alarms still surface on the calling goroutine, so the hook and
// accessor semantics are unchanged.
type Analyzer struct {
	cfg Config

	// reg is the analyzer-wide identity layer: extraction interns every
	// address/link/flow/router through it, both detection backends index
	// their columnar state by its IDs, and the aggregator resolves alarm
	// addresses to ASes through an ID-memoized cache. The Analyzer owns
	// its lifecycle; it lives exactly as long as the Analyzer.
	reg *ident.Registry

	// Sequential backend (Workers ≤ 1).
	delayDet *delay.Detector
	fwdDet   *forwarding.Detector

	// Sharded backend (Workers > 1).
	eng *engine.Engine

	agg *events.Aggregator

	delayAlarms []delay.Alarm
	fwdAlarms   []forwarding.Alarm
	results     int
	dirty       bool // observations since the last Flush

	// Open-bin tracking for OnBinClose: mirrors the detectors' own bin
	// bookkeeping so the facade knows when a close happened and for which
	// bin, on both backends.
	binSize      time.Duration
	curBin       time.Time
	haveBin      bool
	closedchunks []time.Time // scratch for ObserveBatch bin closes

	// Per-bin result accounting: openResults counts results observed in the
	// open bin, closedResults the results in all closed bins, and
	// lastCloseResults the closedResults value captured at the moment the
	// most recent close was detected (a batch can detect several closes
	// before their hooks fire). The split is a property of the input stream
	// alone — batch boundaries and worker counts do not move it — which is
	// what makes the segment store's per-bin records byte-identical across
	// configurations.
	openResults      int
	closedResults    int
	lastCloseResults int
	closedcounts     []int // scratch parallel to closedchunks

	// OnDelayAlarm and OnForwardingAlarm, when non-nil, are invoked for
	// every alarm as its bin closes (the near-real-time reporting path).
	OnDelayAlarm      func(delay.Alarm)
	OnForwardingAlarm func(forwarding.Alarm)

	// OnBinClose, when non-nil, is invoked with each closed bin's start
	// time after every alarm of that bin has been dispatched (hooks run,
	// aggregator updated, retained slices appended). Closes happen when a
	// result opens a later bin and at Flush. This is the publication point
	// for snapshot-based serving layers (internal/serve): at the moment the
	// hook runs, the aggregator holds the complete alarm record of the
	// closed bin, so Aggregator.CloseBins(bin+binSize) extends the
	// incremental magnitude/event read model consistently.
	OnBinClose func(bin time.Time)

	// resumeAt, when warming is set, is the restart cursor: the first bin
	// NOT yet covered by durable history (see SetResumeCursor).
	resumeAt time.Time
	warming  bool
}

// New returns an Analyzer. probeASN resolves probe ids to AS numbers (the
// §4.3 diversity filter needs it); table maps IPs to ASes for aggregation.
func New(cfg Config, probeASN func(int) (ipmap.ASN, bool), table *ipmap.Table) *Analyzer {
	cfg = cfg.withDefaults()
	reg := ident.NewRegistry()
	cfg.Delay.Registry = reg
	cfg.Forwarding.Registry = reg
	a := &Analyzer{
		cfg:     cfg,
		reg:     reg,
		agg:     events.NewAggregator(cfg.Events, table),
		binSize: cfg.Delay.BinSize,
	}
	// Alarm addresses were interned during extraction, so aggregation can
	// resolve AddrID→ASN through a memoized dense cache instead of walking
	// the radix trie once per alarm.
	a.agg.UseRegistry(reg)
	if cfg.Workers > 1 {
		a.eng = engine.New(engine.Config{
			Delay:      cfg.Delay,
			Forwarding: cfg.Forwarding,
			Workers:    cfg.Workers,
			BatchSize:  cfg.BatchSize,
			Registry:   reg,
		}, probeASN)
	} else {
		a.delayDet = delay.NewDetector(cfg.Delay, probeASN)
		a.fwdDet = forwarding.NewDetector(cfg.Forwarding)
	}
	return a
}

// Registry exposes the analyzer-wide identity layer: interned address,
// link, flow and router counts, and reverse lookup for diagnostics.
func (a *Analyzer) Registry() *ident.Registry { return a.reg }

// Observe ingests one traceroute result (results must arrive in
// chronological order, as the platform and the Atlas stream provide them).
func (a *Analyzer) Observe(r trace.Result) {
	a.results++
	a.dirty = true
	a.agg.ObserveBin(r.Time)
	closed, didClose := a.trackBin(r.Time)
	if a.eng != nil {
		da, fa := a.eng.Observe(r)
		a.dispatchDelay(da)
		a.dispatchFwd(fa)
	} else {
		a.dispatchDelay(a.delayDet.Observe(r))
		a.dispatchFwd(a.fwdDet.Observe(r))
	}
	if didClose {
		a.lastCloseResults = a.closedResults
		a.binClosed(closed)
	}
}

// ObserveBatch ingests a slice of chronologically ordered results.
func (a *Analyzer) ObserveBatch(rs []trace.Result) {
	if a.eng != nil {
		a.results += len(rs)
		if len(rs) > 0 {
			a.dirty = true
		}
		closes := a.closedchunks[:0]
		counts := a.closedcounts[:0]
		for _, r := range rs {
			a.agg.ObserveBin(r.Time)
			if c, ok := a.trackBin(r.Time); ok {
				closes = append(closes, c)
				counts = append(counts, a.closedResults)
			}
		}
		da, fa := a.eng.ObserveBatch(rs)
		a.dispatchDelay(da)
		a.dispatchFwd(fa)
		// Engine alarms come back merged per batch; each closed bin's
		// alarms are all dispatched by now, so the hooks fire in close
		// order after the dispatch.
		for i, c := range closes {
			a.lastCloseResults = counts[i]
			a.binClosed(c)
		}
		a.closedchunks = closes[:0]
		a.closedcounts = counts[:0]
		return
	}
	for _, r := range rs {
		a.Observe(r)
	}
}

// trackBin advances the facade's open-bin marker to t's bin and reports
// whether doing so closed a previous bin.
func (a *Analyzer) trackBin(t time.Time) (closed time.Time, didClose bool) {
	b := timeseries.Bin(t, a.binSize)
	if a.haveBin && b.After(a.curBin) {
		closed, didClose = a.curBin, true
	}
	if !a.haveBin || b.After(a.curBin) {
		a.curBin, a.haveBin = b, true
	}
	if didClose {
		a.closedResults += a.openResults
		a.openResults = 0
	}
	a.openResults++
	return closed, didClose
}

// SetResumeCursor arms warmup-replay mode for a restart from durable
// storage: the deterministic input stream is replayed from its beginning
// so the detectors rebuild their reference state (EWMA references,
// forwarding models — none of which is snapshotted) bit-identically, but
// everything already covered by durable history is suppressed — alarms
// whose bin starts before t are not dispatched (no aggregator feed, no
// retention, no hooks) and OnBinClose does not fire for bins before t.
// Results are still counted. From bin t on, the pipeline behaves exactly
// as an uninterrupted run: same alarms, same closes, same bytes.
//
// Call it before the first Observe, with t = last durable bin + bin size
// (serve.Publisher's restore path returns exactly this cursor). The
// filter keys on each alarm's own bin, not on the cursor bin being
// reached, because a closed bin's alarms only surface after a result
// from a LATER bin arrives.
func (a *Analyzer) SetResumeCursor(t time.Time) {
	a.resumeAt = timeseries.Bin(t, a.binSize)
	a.warming = true
}

func (a *Analyzer) binClosed(bin time.Time) {
	if a.warming {
		if bin.Before(a.resumeAt) {
			return
		}
		// First non-suppressed close: every earlier bin has closed and
		// dispatched by now, so the per-alarm filter can stand down.
		a.warming = false
	}
	if a.OnBinClose != nil {
		a.OnBinClose(bin)
	}
}

// Flush closes the open bin in both detectors. Call at end of stream.
// Flush is idempotent: a second call with no intervening Observe is a
// no-op, so a deferred Flush after a canceled RunStream (which already
// flushed) cannot emit duplicate alarms.
func (a *Analyzer) Flush() {
	if !a.dirty {
		return
	}
	a.dirty = false
	if a.eng != nil {
		da, fa := a.eng.Flush()
		a.dispatchDelay(da)
		a.dispatchFwd(fa)
	} else {
		a.dispatchDelay(a.delayDet.Flush())
		a.dispatchFwd(a.fwdDet.Flush())
	}
	if a.haveBin {
		closed := a.curBin
		a.haveBin = false
		a.closedResults += a.openResults
		a.openResults = 0
		a.lastCloseResults = a.closedResults
		a.binClosed(closed)
	}
}

// Close releases the sharded engine's worker goroutines (no-op on the
// sequential path and when called twice). It does not flush; call Flush
// first to evaluate a still-open bin.
func (a *Analyzer) Close() {
	if a.eng != nil {
		a.eng.Close()
	}
}

func (a *Analyzer) dispatchDelay(alarms []delay.Alarm) {
	for _, al := range alarms {
		if a.warming && al.Bin.Before(a.resumeAt) {
			continue // durable history replayed for detector state only
		}
		a.agg.AddDelayAlarm(al)
		if a.cfg.RetainAlarms {
			a.delayAlarms = append(a.delayAlarms, al)
		}
		if a.OnDelayAlarm != nil {
			a.OnDelayAlarm(al)
		}
	}
}

func (a *Analyzer) dispatchFwd(alarms []forwarding.Alarm) {
	for _, al := range alarms {
		if a.warming && al.Bin.Before(a.resumeAt) {
			continue
		}
		a.agg.AddForwardingAlarm(al)
		if a.cfg.RetainAlarms {
			a.fwdAlarms = append(a.fwdAlarms, al)
		}
		if a.OnForwardingAlarm != nil {
			a.OnForwardingAlarm(al)
		}
	}
}

// RunStream consumes a result channel until it closes or the context is
// canceled, then flushes. It returns the context's error when canceled.
func (a *Analyzer) RunStream(ctx context.Context, results <-chan trace.Result) error {
	for {
		select {
		case r, ok := <-results:
			if !ok {
				a.Flush()
				return nil
			}
			a.Observe(r)
		case <-ctx.Done():
			a.Flush()
			return ctx.Err()
		}
	}
}

// RunBatches consumes a channel of result batches (see
// atlas.Platform.StreamBatches) until it closes or the context is
// canceled, then flushes. Batch delivery amortizes channel overhead, which
// matters once the sharded engine makes the detectors stop being the
// bottleneck.
func (a *Analyzer) RunBatches(ctx context.Context, batches <-chan []trace.Result) error {
	for {
		select {
		case rs, ok := <-batches:
			if !ok {
				a.Flush()
				return nil
			}
			a.ObserveBatch(rs)
		case <-ctx.Done():
			a.Flush()
			return ctx.Err()
		}
	}
}

// RunPlatform runs a measurement campaign through the fused pipeline: the
// platform's generator workers produce chronologically reordered result
// chunks which are ingested on this goroutine — extraction, interning and
// shard routing happen directly on each chunk as it is emitted, with no
// intermediate channel hop or relay goroutine between producer and engine
// (compare StreamBatches + RunBatches, which pay one). Backpressure is
// end-to-end: a slow engine stalls emission, which stalls the generator's
// reorder window, which stalls its scheduler. Flush runs in all exit paths;
// the context error is returned when canceled.
func (a *Analyzer) RunPlatform(ctx context.Context, p *atlas.Platform, from, to time.Time) error {
	err := p.RunChunks(ctx, from, to, a.cfg.BatchSize, func(rs []trace.Result) error {
		a.ObserveBatch(rs)
		return nil
	})
	a.Flush()
	return err
}

// RunReader is the ingestion twin of RunPlatform: it streams an NDJSON
// traceroute dump from r (gzip auto-detected) through the parallel decoder
// of internal/ingest and ingests every ordered batch on this goroutine —
// decode workers run ahead within their reorder window while the engine
// ingests behind, with the same determinism guarantee as the fused
// generator: analysis output is bit-identical for every decode worker
// count. When opts.ChunkSize is 0 the engine's batch size is used, so
// delivered batches match the extraction batches downstream. Flush runs in
// all exit paths; decode statistics are returned alongside any run error.
//
// Optional onBatch observers run after each batch is ingested (e.g. to
// track result timestamps); callers that must wrap ObserveBatch itself in
// a lock (cmd/ihr) drive ingest.Decode/Files directly instead.
func (a *Analyzer) RunReader(ctx context.Context, r io.Reader, opts ingest.Options, onBatch ...func([]trace.Result)) (ingest.Stats, error) {
	return a.runIngest(opts, onBatch, func(o ingest.Options, fn func([]trace.Result) error) (ingest.Stats, error) {
		return ingest.Decode(ctx, r, o, fn)
	})
}

// RunFiles is RunReader over one or more dump files replayed in order as a
// single logical stream ("-" reads stdin; gzip is auto-detected per file).
func (a *Analyzer) RunFiles(ctx context.Context, paths []string, opts ingest.Options, onBatch ...func([]trace.Result)) (ingest.Stats, error) {
	return a.runIngest(opts, onBatch, func(o ingest.Options, fn func([]trace.Result) error) (ingest.Stats, error) {
		return ingest.Files(ctx, paths, o, fn)
	})
}

// runIngest is the single implementation behind RunReader and RunFiles:
// engine-sized batches, ingestion + observers per ordered batch, Flush on
// every exit path.
func (a *Analyzer) runIngest(opts ingest.Options, onBatch []func([]trace.Result),
	decode func(ingest.Options, func([]trace.Result) error) (ingest.Stats, error)) (ingest.Stats, error) {
	if opts.ChunkSize <= 0 {
		opts.ChunkSize = a.cfg.BatchSize // 0 falls through to ingest's default
	}
	st, err := decode(opts, func(rs []trace.Result) error {
		a.ObserveBatch(rs)
		for _, ob := range onBatch {
			ob(rs)
		}
		return nil
	})
	a.Flush()
	return st, err
}

// Results returns how many traceroute results have been ingested.
func (a *Analyzer) Results() int { return a.results }

// ResultsClosed returns the number of results observed in bins up to and
// including the most recently closed one, as captured when that close was
// detected. Unlike Results it is invariant under batch boundaries and
// worker counts, so it is what the segment store records per bin.
func (a *Analyzer) ResultsClosed() int { return a.lastCloseResults }

// Workers returns the effective worker count of the detection backend
// (1 for the sequential path).
func (a *Analyzer) Workers() int {
	if a.eng != nil {
		return a.eng.Workers()
	}
	return 1
}

// LinksSeen returns how many distinct links ever produced ∆ samples — the
// paper's "we monitored delays for 262k IPv4 links" statistic — across all
// workers.
func (a *Analyzer) LinksSeen() int {
	if a.eng != nil {
		return a.eng.Stats().LinksSeen
	}
	return a.delayDet.LinksSeen()
}

// RoutersSeen returns how many distinct router addresses have forwarding
// models (§5) across all workers.
func (a *Analyzer) RoutersSeen() int {
	if a.eng != nil {
		return a.eng.Stats().RoutersSeen
	}
	return a.fwdDet.RoutersSeen()
}

// AvgNextHops returns the mean number of responsive next hops per
// forwarding reference model across all workers.
func (a *Analyzer) AvgNextHops() float64 {
	if a.eng != nil {
		return a.eng.Stats().AvgNextHops
	}
	return a.fwdDet.AvgNextHops()
}

// BinCloseStats returns cumulative bin-close kernel accounting from both
// detectors, aggregated across workers (cmd/pinpoint's -binclose-stats
// summary). On the sharded backend the durations sum shard CPU time, not
// elapsed time.
func (a *Analyzer) BinCloseStats() (delay.CloseStats, forwarding.CloseStats) {
	if a.eng != nil {
		st := a.eng.Stats()
		return st.DelayClose, st.FwdClose
	}
	return a.delayDet.CloseStats(), a.fwdDet.CloseStats()
}

// DelayAlarms returns retained delay alarms (RetainAlarms must be set).
func (a *Analyzer) DelayAlarms() []delay.Alarm { return a.delayAlarms }

// ForwardingAlarms returns retained forwarding alarms.
func (a *Analyzer) ForwardingAlarms() []forwarding.Alarm { return a.fwdAlarms }

// Aggregator exposes the per-AS severity series and event detection.
func (a *Analyzer) Aggregator() *events.Aggregator { return a.agg }

// DelayDetector exposes the underlying §4 detector on the sequential path;
// it is nil when Workers > 1 (use LinksSeen for cross-shard statistics).
func (a *Analyzer) DelayDetector() *delay.Detector { return a.delayDet }

// ForwardingDetector exposes the underlying §5 detector on the sequential
// path; it is nil when Workers > 1 (use RoutersSeen / AvgNextHops).
func (a *Analyzer) ForwardingDetector() *forwarding.Detector { return a.fwdDet }

// Graph builds the alarm graph (Figs 8, 12) from the retained alarms within
// [from, to).
func (a *Analyzer) Graph(from, to time.Time) *events.AlarmGraph {
	var dal []delay.Alarm
	for _, al := range a.delayAlarms {
		if !al.Bin.Before(from) && al.Bin.Before(to) {
			dal = append(dal, al)
		}
	}
	var fal []forwarding.Alarm
	for _, al := range a.fwdAlarms {
		if !al.Bin.Before(from) && al.Bin.Before(to) {
			fal = append(fal, al)
		}
	}
	return events.NewAlarmGraph(dal, fal)
}
