package core

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"pinpoint/internal/ingest"
	"pinpoint/internal/trace"
)

// BenchmarkRunFiles measures the full dump-replay path — NDJSON file on
// disk → chunked parallel decode → delay/forwarding detectors → event
// aggregation — per decode worker count. This is the end-to-end view of
// the BenchmarkIngest decode speedup: the same campaign the round-trip
// tests replay, written once to a plain NDJSON file.
func BenchmarkRunFiles(b *testing.B) {
	p, _, _, _ := buildAttack(b)
	end := start.Add(72 * time.Hour) // covers the injected 48h..50h attack

	path := filepath.Join(b.TempDir(), "dump.ndjson")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	tw := trace.NewWriter(f)
	if err := p.Run(start, end, tw.Write); err != nil {
		b.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	fi, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}

	cfg := Config{}
	cfg.Events.Window = 24 * time.Hour
	cfg.Events.Threshold = 3

	for _, workers := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.ReportAllocs()
			b.SetBytes(fi.Size())
			var results int
			for i := 0; i < b.N; i++ {
				a := New(cfg, p.ProbeASN, p.Net().Prefixes())
				st, err := a.RunFiles(context.Background(), []string{path},
					ingest.Options{Workers: workers})
				a.Close()
				if err != nil {
					b.Fatal(err)
				}
				if st.Results == 0 {
					b.Fatal("no results decoded")
				}
				results = st.Results
			}
			if sec := b.Elapsed().Seconds() / float64(b.N); sec > 0 {
				b.ReportMetric(float64(results)/sec, "results/s")
			}
		})
	}
}
