package core

import (
	"bytes"
	"compress/gzip"
	"context"
	"os"
	"reflect"
	"testing"
	"time"

	"pinpoint/internal/ingest"
	"pinpoint/internal/trace"
)

// TestRunReaderRoundTripMatchesFused is the ingestion pipeline's headline
// correctness property: generate → encode to the Atlas NDJSON wire format
// (gzipped, like a real dump) → decode through the parallel ingest pipeline
// → analyze must produce alarms, statistics and events bit-identical to the
// direct fused RunPlatform run on the same seed and case, for every decode
// worker count.
func TestRunReaderRoundTripMatchesFused(t *testing.T) {
	end := start.Add(72 * time.Hour) // covers the injected 48h..50h attack

	// Direct fused run: parallel generator straight into the sharded engine.
	p1, _, _, _ := buildAttack(t)
	p1.SetWorkers(3)
	cfg := Config{RetainAlarms: true, Workers: 2}
	cfg.Events.Threshold = 3
	cfg.Events.Window = 24 * time.Hour
	direct := New(cfg, p1.ProbeASN, p1.Net().Prefixes())
	defer direct.Close()
	if err := direct.RunPlatform(context.Background(), p1, start, end); err != nil {
		t.Fatal(err)
	}
	if direct.Results() == 0 || len(direct.DelayAlarms()) == 0 {
		t.Fatalf("direct run degenerate: %d results, %d delay alarms",
			direct.Results(), len(direct.DelayAlarms()))
	}
	evFrom, evTo := start.Add(24*time.Hour), end
	directEvents := direct.Aggregator().Events(evFrom, evTo)
	if len(directEvents) == 0 {
		t.Fatal("direct run detected no events; round-trip comparison would be vacuous")
	}

	// Encode the same campaign to a gzipped NDJSON dump — what
	// `atlasgen -out dump.ndjson.gz` produces.
	p2, _, _, _ := buildAttack(t)
	var dump bytes.Buffer
	zw := gzip.NewWriter(&dump)
	tw := trace.NewWriter(zw)
	if err := p2.Run(start, end, tw.Write); err != nil {
		t.Fatal(err)
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}

	for _, workers := range []int{1, 2, 3, 4, 8} {
		replay := New(cfg, p2.ProbeASN, p2.Net().Prefixes())
		st, err := replay.RunReader(context.Background(), bytes.NewReader(dump.Bytes()),
			ingest.Options{Workers: workers})
		if err != nil {
			replay.Close()
			t.Fatalf("decode workers=%d: %v", workers, err)
		}

		if st.Results != direct.Results() || replay.Results() != direct.Results() {
			t.Errorf("decode workers=%d: results %d (stats %d), want %d",
				workers, replay.Results(), st.Results, direct.Results())
		}
		if !reflect.DeepEqual(replay.DelayAlarms(), direct.DelayAlarms()) {
			t.Errorf("decode workers=%d: delay alarms differ (%d vs %d)",
				workers, len(replay.DelayAlarms()), len(direct.DelayAlarms()))
		}
		if !reflect.DeepEqual(replay.ForwardingAlarms(), direct.ForwardingAlarms()) {
			t.Errorf("decode workers=%d: forwarding alarms differ (%d vs %d)",
				workers, len(replay.ForwardingAlarms()), len(direct.ForwardingAlarms()))
		}
		if !reflect.DeepEqual(replay.Aggregator().Events(evFrom, evTo), directEvents) {
			t.Errorf("decode workers=%d: events differ", workers)
		}
		if replay.LinksSeen() != direct.LinksSeen() || replay.RoutersSeen() != direct.RoutersSeen() {
			t.Errorf("decode workers=%d: stats differ: links %d/%d routers %d/%d", workers,
				replay.LinksSeen(), direct.LinksSeen(), replay.RoutersSeen(), direct.RoutersSeen())
		}
		replay.Close()
	}
}

// TestRunFilesSplitDumpMatchesSingle replays the same campaign split across
// two dump files (one gzipped) and asserts the multi-file stream analyzes
// identically to the single-reader stream.
func TestRunFilesSplitDumpMatchesSingle(t *testing.T) {
	end := start.Add(24 * time.Hour)
	p, _, _, _ := buildAttack(t)

	var all []trace.Result
	if err := p.Run(start, end, func(r trace.Result) error {
		all = append(all, r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	encode := func(rs []trace.Result, gz bool) []byte {
		var buf bytes.Buffer
		var w *trace.Writer
		var zw *gzip.Writer
		if gz {
			zw = gzip.NewWriter(&buf)
			w = trace.NewWriter(zw)
		} else {
			w = trace.NewWriter(&buf)
		}
		for _, r := range rs {
			if err := w.Write(r); err != nil {
				t.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			t.Fatal(err)
		}
		if zw != nil {
			if err := zw.Close(); err != nil {
				t.Fatal(err)
			}
		}
		return buf.Bytes()
	}
	mid := len(all) / 2
	dir := t.TempDir()
	paths := []string{dir + "/part1.ndjson", dir + "/part2.ndjson.gz"}
	writeFile(t, paths[0], encode(all[:mid], false))
	writeFile(t, paths[1], encode(all[mid:], true))

	single := New(Config{RetainAlarms: true, Workers: 2}, p.ProbeASN, p.Net().Prefixes())
	defer single.Close()
	if _, err := single.RunReader(context.Background(),
		bytes.NewReader(encode(all, false)), ingest.Options{Workers: 2}); err != nil {
		t.Fatal(err)
	}

	split := New(Config{RetainAlarms: true, Workers: 2}, p.ProbeASN, p.Net().Prefixes())
	defer split.Close()
	st, err := split.RunFiles(context.Background(), paths, ingest.Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.Results != len(all) {
		t.Fatalf("split replay decoded %d results, want %d", st.Results, len(all))
	}
	if !reflect.DeepEqual(split.DelayAlarms(), single.DelayAlarms()) ||
		!reflect.DeepEqual(split.ForwardingAlarms(), single.ForwardingAlarms()) {
		t.Error("split-file replay alarms differ from single-stream replay")
	}
}

func writeFile(t *testing.T, path string, data []byte) {
	t.Helper()
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}
