package core

import (
	"testing"
	"time"

	"pinpoint/internal/atlas"
	"pinpoint/internal/netsim"
	"pinpoint/internal/trace"
)

// The whole pipeline is address-family agnostic: an IPv6 congestion event
// is pinpointed exactly like an IPv4 one (the paper runs both families
// through the same system, §2/§7).
func TestEndToEndIPv6(t *testing.T) {
	if testing.Short() {
		t.Skip("integration test")
	}
	topo, err := netsim.Generate(netsim.TopoConfig{
		Seed: 86, IPv6: true, Tier1: 2, Transit: 5, Stub: 16,
		Roots: 1, RootInstances: 3, Anchors: 2, IXPs: 1, IXPMembers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	root := topo.Roots[0]
	evStart := start.Add(36 * time.Hour)
	evEnd := evStart.Add(2 * time.Hour)
	sc := netsim.NewScenario(netsim.Event{
		Name: "v6-congestion", Kind: netsim.EventCongestion,
		From: root.Sites[0], To: root.Instances[0], Both: true,
		ExtraDelayMS: 70, Start: evStart, End: evEnd,
	})
	n, err := topo.Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	p := atlas.NewPlatform(n, 86, netsim.TracerouteOpts{})
	p.AddProbes(topo.ProbeSites())
	p.AddBuiltin(root.Addr)

	a := New(Config{RetainAlarms: true}, p.ProbeASN, n.Prefixes())
	if err := p.Run(start, start.Add(48*time.Hour), func(r trace.Result) error {
		a.Observe(r)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	a.Flush()

	found := false
	for _, al := range a.DelayAlarms() {
		if !al.Bin.Before(evStart) && al.Bin.Before(evEnd) {
			if !al.Link.Near.Is6() || !al.Link.Far.Is6() {
				t.Fatalf("non-IPv6 alarm link %v", al.Link)
			}
			if al.Link.Far == root.Addr || al.Link.Near == root.Addr {
				found = true
			}
		}
	}
	if !found {
		t.Error("IPv6 congestion not pinpointed to the root's last-hop link")
	}
	// Aggregation maps the v6 alarms to the operator AS.
	mags := a.Aggregator().DelayMagnitude(root.ASN, start.Add(24*time.Hour), start.Add(48*time.Hour))
	peak := 0.0
	for _, pt := range mags {
		if pt.V > peak {
			peak = pt.V
		}
	}
	if peak < 5 {
		t.Errorf("v6 operator AS magnitude peak = %v, want substantial", peak)
	}
}
