package core

import (
	"testing"
	"time"

	"pinpoint/internal/ipmap"
	"pinpoint/internal/trace"
)

// TestResumeCursorSuppressesDurableCloses pins the warmup-replay
// mechanics on both backends: with a resume cursor at bin k, replaying
// the stream from the start still counts every result, but OnBinClose
// fires only for bins at or after the cursor — durable bins are
// rebuilt silently. (Alarm-level suppression and byte-identity of the
// restored read model are covered end-to-end by internal/serve's
// restart golden test.)
func TestResumeCursorSuppressesDurableCloses(t *testing.T) {
	start := time.Date(2015, 5, 1, 0, 0, 0, 0, time.UTC)
	noASN := func(int) (ipmap.ASN, bool) { return 0, false }
	for _, workers := range []int{1, 3} {
		const bins, cursor = 6, 3
		a := New(Config{Workers: workers}, noASN, &ipmap.Table{})
		a.SetResumeCursor(start.Add(cursor * time.Hour))
		var closes []time.Time
		a.OnBinClose = func(bin time.Time) { closes = append(closes, bin) }

		var rs []trace.Result
		for i := 0; i < bins; i++ {
			rs = append(rs, trace.Result{Time: start.Add(time.Duration(i) * time.Hour)})
		}
		a.ObserveBatch(rs)
		a.Flush()
		a.Close()

		if a.Results() != bins {
			t.Fatalf("workers=%d: warmup results not counted: %d", workers, a.Results())
		}
		want := bins - cursor // bins cursor..bins-1
		if len(closes) != want {
			t.Fatalf("workers=%d: %d closes fired (%v), want %d", workers, len(closes), closes, want)
		}
		for i, bin := range closes {
			if exp := start.Add(time.Duration(cursor+i) * time.Hour); !bin.Equal(exp) {
				t.Fatalf("workers=%d: close %d = %v, want %v", workers, i, bin, exp)
			}
		}
	}
}
