// Package serve is the §8 serving layer of the Internet Health Report: a
// snapshot-published read model plus HTTP API that decouples serving from
// analysis, now split into a writer role and a replica role sharing one
// snapshot-assembly core.
//
// The analysis goroutine owns all mutable state. On every engine bin close
// (core.Analyzer.OnBinClose) and at the end of the run, the Publisher
// assembles an immutable Snapshot — wire-form alarm slices, the
// incrementally maintained per-AS magnitude series and event list from
// internal/events, and status counters — and publishes it with a single
// atomic.Pointer swap. HTTP handlers load the current snapshot and read it
// without any locking: a slow or heavy reader can never stall ObserveBatch,
// and a heavy batch can never stall readers, because the two sides share no
// lock at all.
//
// The alarm, event and magnitude slices inside consecutive snapshots share
// their append-only backing arrays: the analysis side only ever appends
// past the published lengths (and allocates fresh storage on the rare
// staleness rebuild), so publishing is O(ASes) map copying, not a deep copy
// of the accumulated history.
//
// Every publication also emits one Delta on the versioned replication feed
// (see feed.go). A Follower (follower.go) rebuilds byte-identical snapshots
// purely from that feed — the same mirror type (mirror.go) drives both
// roles, so the writer's and a replica's payloads agree to the byte.
package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pinpoint/internal/core"
	"pinpoint/internal/delay"
	"pinpoint/internal/events"
	"pinpoint/internal/forwarding"
	"pinpoint/internal/ipmap"
	"pinpoint/internal/segstore"
	"pinpoint/internal/timeseries"
)

// DelayAlarm is the wire form of a §4 delay-change alarm, field for field
// the payload the pre-snapshot server emitted.
type DelayAlarm struct {
	Bin       time.Time `json:"bin"`
	Link      string    `json:"link"`
	MedianMS  float64   `json:"median_ms"`
	RefMS     float64   `json:"reference_ms"`
	ShiftMS   float64   `json:"shift_ms"`
	Deviation float64   `json:"deviation"`
	Probes    int       `json:"probes"`
	ASes      int       `json:"ases"`
}

// FwdAlarm is the wire form of a §5 forwarding anomaly.
type FwdAlarm struct {
	Bin    time.Time `json:"bin"`
	Router string    `json:"router"`
	Dst    string    `json:"dst"`
	Rho    float64   `json:"rho"`
	TopHop string    `json:"top_hop"`
	TopR   float64   `json:"top_responsibility"`
}

// Event is the wire form of a §6 major event.
type Event struct {
	ASN       string    `json:"asn"`
	Bin       time.Time `json:"bin"`
	Type      string    `json:"type"`
	Magnitude float64   `json:"magnitude"`
}

// Point is one magnitude sample.
type Point struct {
	T time.Time `json:"t"`
	V float64   `json:"v"`
}

// Identities are the interned identity-layer counters shown by /api/status.
type Identities struct {
	Addrs   int `json:"addrs"`
	Links   int `json:"links"`
	Flows   int `json:"flows"`
	Routers int `json:"routers"`
}

// Meta describes the analysis run being served.
type Meta struct {
	Case        string
	Description string
	Start, End  time.Time
}

// Snapshot is one immutable published state of the analysis. Everything a
// handler needs is reachable from it without locks; the encoded-payload
// caches fill lazily (sync.Once) on first use and are themselves immutable
// afterwards.
type Snapshot struct {
	Seq        uint64
	Meta       Meta
	BinSize    time.Duration
	LastBin    time.Time // last closed bin; zero before the first close
	Results    int
	Done       bool // the run finished successfully
	Failed     bool // the run finished with an error
	Err        string
	Identities Identities

	DelayAlarms []DelayAlarm
	FwdAlarms   []FwdAlarm
	Events      []Event

	// Incremental magnitude region (see events.MagnitudeSnapshot): dense
	// hourly points per AS over [MagStart, MagEnd).
	MagStart, MagEnd time.Time
	delayMag, fwdMag map[ipmap.ASN][]timeseries.Point

	// evGen is the aggregator rebuild generation Events was mirrored
	// under. On the writer a change between consecutive snapshots means the
	// event history was re-derived; on a follower it can also mean the
	// upstream writer restarted (the feed's Rebuild flag, not gen drift,
	// distinguishes the two). Either way it keys ETag invalidation.
	evGen uint64

	encDelay, encFwd, encEvents, encStatus payloadCache
}

// Complete reports whether analysis has finished (successfully or not); a
// complete snapshot never changes again.
func (s *Snapshot) Complete() bool { return s.Done || s.Failed }

// Gen returns the aggregator rebuild generation this snapshot was assembled
// under (the generation stamped on feed deltas).
func (s *Snapshot) Gen() uint64 { return s.evGen }

// Magnitude returns the AS's magnitude series clipped to the published
// region ∩ [from, to). Nil-series ASes yield empty slices.
func (s *Snapshot) Magnitude(asn ipmap.ASN, from, to time.Time) (delayPts, fwdPts []Point) {
	return s.magPoints(s.delayMag[asn], from, to), s.magPoints(s.fwdMag[asn], from, to)
}

func (s *Snapshot) magPoints(pts []timeseries.Point, from, to time.Time) []Point {
	out := []Point{}
	if s.BinSize <= 0 || s.MagEnd.IsZero() {
		return out
	}
	f := timeseries.Bin(from, s.BinSize)
	t := timeseries.Bin(to, s.BinSize)
	if f.Before(s.MagStart) {
		f = s.MagStart
	}
	if t.After(s.MagEnd) {
		t = s.MagEnd
	}
	if !f.Before(t) {
		return out
	}
	i := int(f.Sub(s.MagStart) / s.BinSize)
	j := int(t.Sub(s.MagStart) / s.BinSize)
	if j > len(pts) {
		j = len(pts)
	}
	for ; i < j; i++ {
		out = append(out, Point{T: pts[i].T, V: pts[i].V})
	}
	return out
}

// Publisher is the writer role: it accumulates the read model on the
// analysis goroutine (via the shared mirror), publishes immutable snapshots
// and emits the replication feed. All methods except Snapshot, Results,
// CatchUp, the store readers and the subscription API must run on the
// analysis goroutine (they do — they are driven by the Analyzer's hooks and
// the ingest loop).
type Publisher struct {
	m   mirror
	a   *core.Analyzer
	agg *events.Aggregator

	cur     atomic.Pointer[Snapshot]
	results atomic.Int64 // live between publishes, for /api/status freshness

	// sentDelay/sentFwd track the alarm prefixes already emitted on the
	// feed. Deltas partition alarms by closing bin — the same rule commitBin
	// uses — so live and store-synthesized deltas carry identical rows.
	sentDelay, sentFwd int
	closeDelta         events.CloseDelta // per-close capture scratch
	finished           bool

	// Segment-store state (see store.go). storeMu serializes the analysis
	// goroutine's commits with /api/bins and catch-up reads; everything else
	// is written only at construction or on the analysis goroutine.
	store          *segstore.Store
	storeMu        sync.Mutex
	storeErr       error
	committedDelay int // prefix of p.m.delay already committed to segments
	committedFwd   int
	binIndex       []BinSummary
	storeRec       segstore.BinRecord // reused per-commit encode scratch
	floorResults   int                // durable result count; floor during warmup replay
	resumedAt      time.Time          // resume cursor, when booted from segments
	resumed        bool

	bc *broadcaster
}

// NewPublisher wires a Publisher into the analyzer's alarm and bin-close
// hooks and publishes an initial empty snapshot so handlers always have
// one. Call it before ingesting; the analyzer's hook fields must not be
// reassigned afterwards.
func NewPublisher(a *core.Analyzer, meta Meta) *Publisher {
	p := newPublisher(a, meta)
	p.publish(time.Time{}, false, nil, nil)
	return p
}

// newPublisher builds the publisher and installs the analyzer hooks, but
// does not publish the initial snapshot: the segment-store boot path
// (NewPublisherWithStore) restores the read model first so the first
// published snapshot already carries the durable history.
func newPublisher(a *core.Analyzer, meta Meta) *Publisher {
	p := &Publisher{
		a:   a,
		agg: a.Aggregator(),
		bc:  newBroadcaster(defaultFeedWindow),
	}
	p.m.meta = meta
	p.m.binSize = a.Aggregator().Config().BinSize
	a.OnDelayAlarm = func(al delay.Alarm) {
		p.m.delay = append(p.m.delay, DelayAlarm{
			Bin: al.Bin, Link: al.Link.String(),
			MedianMS: al.Observed.Median, RefMS: al.Reference.Median,
			ShiftMS: al.DiffMS, Deviation: al.Deviation,
			Probes: al.Probes, ASes: al.ASes,
		})
	}
	a.OnForwardingAlarm = func(al forwarding.Alarm) {
		top, _ := al.MaxResponsibility()
		p.m.fwd = append(p.m.fwd, FwdAlarm{
			Bin: al.Bin, Router: al.Router.String(), Dst: al.Dst.String(),
			Rho: al.Rho, TopHop: top.Hop.String(), TopR: top.Responsibility,
		})
	}
	a.OnBinClose = func(bin time.Time) {
		evs := p.agg.CloseBinsRecord(bin.Add(p.m.binSize), &p.closeDelta)
		p.syncEvents()
		if p.store != nil {
			p.commitBin(bin, &p.closeDelta, evs)
		}
		p.publish(bin, false, nil, &p.closeDelta)
	}
	return p
}

// SetFeedWindow sets how many recent deltas the catch-up ring retains
// (cmd -feed). Call before serving.
func (p *Publisher) SetFeedWindow(n int) { p.bc.setWindow(n) }

// ObserveResults records ingested results between bin closes so
// /api/status stays fresh while a bin is still open. Safe to call from the
// ingest goroutine.
func (p *Publisher) ObserveResults(n int) { p.results.Add(int64(n)) }

// Results returns the live ingested-result count.
func (p *Publisher) Results() int {
	n := int(p.results.Load())
	if s := p.Snapshot(); s != nil && s.Results > n {
		return s.Results
	}
	return n
}

// Snapshot returns the current published snapshot. It is never nil.
func (p *Publisher) Snapshot() *Snapshot { return p.cur.Load() }

// Finish publishes the terminal snapshot: on success the incremental
// event/magnitude region is extended through the display window's end (so
// a completed run answers exactly like a full recomputation over
// [Start, End)), on failure the error is recorded and surfaced. Must be
// called on the analysis goroutine after the final Flush; it is idempotent.
func (p *Publisher) Finish(err error) {
	if p.finished {
		return
	}
	p.finished = true
	if err == nil {
		if serr := p.StoreErr(); serr != nil {
			// The analysis itself succeeded but its durable record did not: a
			// monitoring client must not mistake a store with missing bins for
			// a completed run.
			err = fmt.Errorf("segment store commit failed: %w", serr)
		}
	}
	var cd *events.CloseDelta
	if err == nil {
		// The tail extension over empty bins is recomputed identically by any
		// restart (its windows live inside the retained horizon), so it is
		// not committed to the store — but its magnitude points do travel on
		// the feed, so a follower ends with the same region.
		p.agg.CloseBinsRecord(p.m.meta.End, &p.closeDelta)
		p.syncEvents()
		cd = &p.closeDelta
	}
	p.publish(time.Time{}, true, err, cd)
}

// syncEvents mirrors the aggregator's incremental event list into wire
// form. The mirror is append-only within one aggregator generation; a
// staleness rebuild bumps the generation, in which case the mirror restarts
// with fresh storage (published snapshots keep their old prefixes) instead
// of appending the re-derived history after the stale copy.
func (p *Publisher) syncEvents() {
	all, gen := p.agg.IncrementalEvents()
	if gen != p.m.gen {
		p.m.gen = gen
		p.m.evs = nil
	}
	for _, e := range all[len(p.m.evs):] {
		p.m.evs = append(p.m.evs, Event{
			ASN: e.ASN.String(), Bin: e.Bin, Type: e.Type.String(), Magnitude: e.Magnitude,
		})
	}
}

// publish assembles and swaps in the next snapshot, then broadcasts the
// feed delta against the previous one. cd is the close's capture (nil for
// the initial/restore publication and failed finishes) supplying the
// delta's magnitude rows.
func (p *Publisher) publish(closedBin time.Time, final bool, runErr error, cd *events.CloseDelta) {
	prev := p.cur.Load()
	p.m.seq++
	reg := p.a.Registry()
	res := p.a.Results()
	if res < p.floorResults {
		// Warmup replay after a segment-store boot recounts from zero; keep
		// reporting the durable count until the replay catches up.
		res = p.floorResults
	}
	p.m.results = res
	p.m.idents = Identities{
		Addrs: reg.Addrs(), Links: reg.Links(),
		Flows: reg.Flows(), Routers: reg.Routers(),
	}
	if !closedBin.IsZero() {
		p.m.lastBin = closedBin
	}
	if final {
		if runErr != nil {
			p.m.failed = true
			p.m.errMsg = runErr.Error()
		} else {
			p.m.done = true
		}
	}
	if dm, fm, start, thru, ok := p.agg.MagnitudeSnapshot(); ok {
		p.m.delayMag, p.m.fwdMag = dm, fm
		p.m.magStart, p.m.magThrough = start, thru
	} else {
		p.m.delayMag, p.m.fwdMag = nil, nil
		p.m.magStart, p.m.magThrough = time.Time{}, time.Time{}
	}
	snap := p.m.assemble()
	p.cur.Store(snap)
	p.results.Store(int64(snap.Results))

	d := Delta{
		Seq: snap.Seq, Gen: snap.evGen, Bin: closedBin, Results: snap.Results,
		Done: snap.Done, Failed: snap.Failed, Err: snap.Err,
		DelayAlarms: []DelayAlarm{}, FwdAlarms: []FwdAlarm{}, Events: []Event{},
	}
	if prev == nil {
		// Degenerate first publication (fresh boot or store restore): no
		// previous snapshot to diff against, so nothing travels; the feed's
		// catch-up sources cover this state. Sent counters start at the
		// published lengths so the next delta carries only newer rows.
		p.sentDelay, p.sentFwd = len(snap.DelayAlarms), len(snap.FwdAlarms)
		p.bc.broadcast(d, false)
		return
	}
	// Alarms partition by closing bin (a batch spanning several closes
	// appends all its alarms before the first close hook fires); the final
	// delta flushes whatever is still unsent. This keeps each delta's rows a
	// property of the input stream, not of batch boundaries, so a delta
	// synthesized from the committed segment is identical to the live one.
	nd, nf := len(snap.DelayAlarms), len(snap.FwdAlarms)
	if !final {
		nd = p.sentDelay
		for nd < len(snap.DelayAlarms) && !snap.DelayAlarms[nd].Bin.After(closedBin) {
			nd++
		}
		nf = p.sentFwd
		for nf < len(snap.FwdAlarms) && !snap.FwdAlarms[nf].Bin.After(closedBin) {
			nf++
		}
	}
	d.DelayAlarms = snap.DelayAlarms[p.sentDelay:nd]
	d.FwdAlarms = snap.FwdAlarms[p.sentFwd:nf]
	p.sentDelay, p.sentFwd = nd, nf
	if prev.evGen == snap.evGen {
		d.Events = snap.Events[len(prev.Events):]
	} else {
		// The event history was rebuilt (out-of-order mutation):
		// resynchronize subscribers with the full re-derived list. cd
		// likewise carries the full re-derived magnitude history, so the
		// delta is a complete events/magnitude resync on its own — marked
		// Rebuild so mirrors replace instead of appending. (Gen drift alone
		// does not mean this: a writer restart bumps the generation while
		// the history stays append-consistent.)
		d.Events = snap.Events
		d.Rebuild = true
	}
	if cd != nil {
		d.DelayMag = magRows(cd.DelayMag)
		d.FwdMag = magRows(cd.FwdMag)
	}
	d.MagStart, d.MagThrough = snap.MagStart, snap.MagEnd
	ids := snap.Identities
	d.Identities = &ids
	p.bc.broadcast(d, true)
}

// Subscribe registers a feed subscriber. Cancel the subscription when the
// consumer goes away; a subscriber that falls more than the buffer behind
// is dropped with a gap mark (see Subscription.Gap) and resynchronizes via
// ?since= catch-up.
func (p *Publisher) Subscribe() *Subscription { return p.bc.subscribe() }

// CloseSubscribers terminates every delta stream (server shutdown). New
// Subscribe calls return an already-closed channel.
func (p *Publisher) CloseSubscribers() { p.bc.closeAll() }

// CatchUp returns the feed deltas covering (since, upTo], trying each
// catch-up source in order: the in-memory ring (exact recent deltas), then
// per-bin deltas synthesized from the segment store (record i ↔ seq i+2,
// plus the synthetic empty seq-1 initial delta), with the newest seqs
// topped up from the ring again. ok=false means neither source covers the
// range — the caller falls back to a single full-state delta.
//
// Synthesized deltas are pure appends (never Rebuild) stamped with the
// current generation as bookkeeping. That is correct for any client whose
// state is a prefix of the durable history at seq `since` — including a
// follower that tracked a previous incarnation of this writer: a restart
// bumps the generation but never rewrites committed history (segment-backed
// aggregators reject out-of-order mutations), so the missing bins are
// exactly an append.
func (p *Publisher) CatchUp(since, upTo uint64) ([]Delta, bool) {
	if since >= upTo {
		return nil, true
	}
	if ds, ok := p.bc.catchUp(since, upTo); ok {
		return ds, true
	}
	if p.store == nil {
		return nil, false
	}
	gen := p.cur.Load().evGen
	p.storeMu.Lock()
	n := uint64(len(p.binIndex))
	storeHi := n + 1 // store covers seqs 1 (synthetic initial) .. n+1
	if storeHi > upTo {
		storeHi = upTo
	}
	out := make([]Delta, 0, storeHi-since)
	var rec segstore.BinRecord
	for s := since + 1; s <= storeHi; s++ {
		if s == 1 {
			out = append(out, Delta{
				Seq: 1, Gen: gen,
				DelayAlarms: []DelayAlarm{}, FwdAlarms: []FwdAlarm{}, Events: []Event{},
			})
			continue
		}
		if err := p.store.Record(int(s-2), &rec); err != nil {
			p.storeMu.Unlock()
			return nil, false
		}
		out = append(out, deltaFromRecord(&rec, s, gen, p.m.binSize))
	}
	p.storeMu.Unlock()
	if storeHi == upTo {
		return out, true
	}
	tail, ok := p.bc.catchUp(storeHi, upTo)
	if !ok {
		return nil, false
	}
	return append(out, tail...), true
}
