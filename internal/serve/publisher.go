// Package serve is the §8 serving layer of the Internet Health Report: a
// snapshot-published read model plus HTTP API that decouples serving from
// analysis.
//
// The analysis goroutine owns all mutable state. On every engine bin close
// (core.Analyzer.OnBinClose) and at the end of the run, the Publisher
// assembles an immutable Snapshot — wire-form alarm slices, the
// incrementally maintained per-AS magnitude series and event list from
// internal/events, and status counters — and publishes it with a single
// atomic.Pointer swap. HTTP handlers load the current snapshot and read it
// without any locking: a slow or heavy reader can never stall ObserveBatch,
// and a heavy batch can never stall readers, because the two sides share no
// lock at all.
//
// The alarm, event and magnitude slices inside consecutive snapshots share
// their append-only backing arrays: the analysis side only ever appends
// past the published lengths (and allocates fresh storage on the rare
// staleness rebuild), so publishing is O(ASes) map copying, not a deep copy
// of the accumulated history.
package serve

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"pinpoint/internal/core"
	"pinpoint/internal/delay"
	"pinpoint/internal/events"
	"pinpoint/internal/forwarding"
	"pinpoint/internal/ipmap"
	"pinpoint/internal/segstore"
	"pinpoint/internal/timeseries"
)

// DelayAlarm is the wire form of a §4 delay-change alarm, field for field
// the payload the pre-snapshot server emitted.
type DelayAlarm struct {
	Bin       time.Time `json:"bin"`
	Link      string    `json:"link"`
	MedianMS  float64   `json:"median_ms"`
	RefMS     float64   `json:"reference_ms"`
	ShiftMS   float64   `json:"shift_ms"`
	Deviation float64   `json:"deviation"`
	Probes    int       `json:"probes"`
	ASes      int       `json:"ases"`
}

// FwdAlarm is the wire form of a §5 forwarding anomaly.
type FwdAlarm struct {
	Bin    time.Time `json:"bin"`
	Router string    `json:"router"`
	Dst    string    `json:"dst"`
	Rho    float64   `json:"rho"`
	TopHop string    `json:"top_hop"`
	TopR   float64   `json:"top_responsibility"`
}

// Event is the wire form of a §6 major event.
type Event struct {
	ASN       string    `json:"asn"`
	Bin       time.Time `json:"bin"`
	Type      string    `json:"type"`
	Magnitude float64   `json:"magnitude"`
}

// Point is one magnitude sample.
type Point struct {
	T time.Time `json:"t"`
	V float64   `json:"v"`
}

// Identities are the interned identity-layer counters shown by /api/status.
type Identities struct {
	Addrs   int `json:"addrs"`
	Links   int `json:"links"`
	Flows   int `json:"flows"`
	Routers int `json:"routers"`
}

// Meta describes the analysis run being served.
type Meta struct {
	Case        string
	Description string
	Start, End  time.Time
}

// Snapshot is one immutable published state of the analysis. Everything a
// handler needs is reachable from it without locks; the encoded-payload
// caches fill lazily (sync.Once) on first use and are themselves immutable
// afterwards.
type Snapshot struct {
	Seq        uint64
	Meta       Meta
	BinSize    time.Duration
	LastBin    time.Time // last closed bin; zero before the first close
	Results    int
	Done       bool // the run finished successfully
	Failed     bool // the run finished with an error
	Err        string
	Identities Identities

	DelayAlarms []DelayAlarm
	FwdAlarms   []FwdAlarm
	Events      []Event

	// Incremental magnitude region (see events.MagnitudeSnapshot): dense
	// hourly points per AS over [MagStart, MagEnd).
	MagStart, MagEnd time.Time
	delayMag, fwdMag map[ipmap.ASN][]timeseries.Point

	// evGen is the aggregator rebuild generation Events was mirrored
	// under; a change between consecutive snapshots means the event
	// history was re-derived, not appended to.
	evGen uint64

	encDelay, encFwd, encEvents, encStatus payloadCache
}

// Complete reports whether analysis has finished (successfully or not); a
// complete snapshot never changes again, which is what makes strong ETags
// on it sound.
func (s *Snapshot) Complete() bool { return s.Done || s.Failed }

// Magnitude returns the AS's magnitude series clipped to the published
// region ∩ [from, to). Nil-series ASes yield empty slices.
func (s *Snapshot) Magnitude(asn ipmap.ASN, from, to time.Time) (delayPts, fwdPts []Point) {
	return s.magPoints(s.delayMag[asn], from, to), s.magPoints(s.fwdMag[asn], from, to)
}

func (s *Snapshot) magPoints(pts []timeseries.Point, from, to time.Time) []Point {
	out := []Point{}
	if s.BinSize <= 0 || s.MagEnd.IsZero() {
		return out
	}
	f := timeseries.Bin(from, s.BinSize)
	t := timeseries.Bin(to, s.BinSize)
	if f.Before(s.MagStart) {
		f = s.MagStart
	}
	if t.After(s.MagEnd) {
		t = s.MagEnd
	}
	if !f.Before(t) {
		return out
	}
	i := int(f.Sub(s.MagStart) / s.BinSize)
	j := int(t.Sub(s.MagStart) / s.BinSize)
	if j > len(pts) {
		j = len(pts)
	}
	for ; i < j; i++ {
		out = append(out, Point{T: pts[i].T, V: pts[i].V})
	}
	return out
}

// Delta is the per-publication increment pushed to /api/stream subscribers:
// everything appended since the previous snapshot.
type Delta struct {
	Seq         uint64       `json:"seq"`
	Bin         time.Time    `json:"bin,omitzero"`
	Results     int          `json:"results"`
	DelayAlarms []DelayAlarm `json:"delay_alarms"`
	FwdAlarms   []FwdAlarm   `json:"fwd_alarms"`
	Events      []Event      `json:"events"`
	Done        bool         `json:"done"`
	Failed      bool         `json:"failed,omitempty"`
	Err         string       `json:"error,omitempty"`
}

// Publisher accumulates the wire-form read model on the analysis goroutine
// and publishes immutable snapshots. All methods except Snapshot, Results
// and the subscription API must run on the analysis goroutine (they do —
// they are driven by the Analyzer's hooks and the ingest loop).
type Publisher struct {
	meta    Meta
	a       *core.Analyzer
	agg     *events.Aggregator
	binSize time.Duration

	cur     atomic.Pointer[Snapshot]
	results atomic.Int64 // live between publishes, for /api/status freshness

	seq      uint64
	delay    []DelayAlarm // append-only; snapshots hold prefixes
	fwd      []FwdAlarm
	evs      []Event // wire-form mirror of the aggregator's event list
	evGen    uint64  // aggregator rebuild generation the mirror tracks
	finished bool

	// Segment-store state (see store.go). storeMu serializes the analysis
	// goroutine's commits with /api/bins reads; everything else is written
	// only at construction or on the analysis goroutine.
	store          *segstore.Store
	storeMu        sync.Mutex
	storeErr       error
	committedDelay int // prefix of p.delay already committed to segments
	committedFwd   int
	binIndex       []BinSummary
	storeRec       segstore.BinRecord // reused per-commit encode scratch
	floorResults   int                // durable result count; floor during warmup replay
	resumedAt      time.Time          // resume cursor, when booted from segments
	resumed        bool

	mu      sync.Mutex // guards subscribers only
	subs    map[int]chan Delta
	nextSub int
	closed  bool
}

// NewPublisher wires a Publisher into the analyzer's alarm and bin-close
// hooks and publishes an initial empty snapshot so handlers always have
// one. Call it before ingesting; the analyzer's hook fields must not be
// reassigned afterwards.
func NewPublisher(a *core.Analyzer, meta Meta) *Publisher {
	p := newPublisher(a, meta)
	p.publish(time.Time{}, false, nil)
	return p
}

// newPublisher builds the publisher and installs the analyzer hooks, but
// does not publish the initial snapshot: the segment-store boot path
// (NewPublisherWithStore) restores the read model first so the first
// published snapshot already carries the durable history.
func newPublisher(a *core.Analyzer, meta Meta) *Publisher {
	p := &Publisher{
		meta:    meta,
		a:       a,
		agg:     a.Aggregator(),
		binSize: a.Aggregator().Config().BinSize,
		subs:    make(map[int]chan Delta),
	}
	a.OnDelayAlarm = func(al delay.Alarm) {
		p.delay = append(p.delay, DelayAlarm{
			Bin: al.Bin, Link: al.Link.String(),
			MedianMS: al.Observed.Median, RefMS: al.Reference.Median,
			ShiftMS: al.DiffMS, Deviation: al.Deviation,
			Probes: al.Probes, ASes: al.ASes,
		})
	}
	a.OnForwardingAlarm = func(al forwarding.Alarm) {
		top, _ := al.MaxResponsibility()
		p.fwd = append(p.fwd, FwdAlarm{
			Bin: al.Bin, Router: al.Router.String(), Dst: al.Dst.String(),
			Rho: al.Rho, TopHop: top.Hop.String(), TopR: top.Responsibility,
		})
	}
	a.OnBinClose = func(bin time.Time) {
		if p.store != nil {
			var d events.CloseDelta
			evs := p.agg.CloseBinsRecord(bin.Add(p.binSize), &d)
			p.syncEvents()
			p.commitBin(bin, &d, evs)
		} else {
			p.agg.CloseBins(bin.Add(p.binSize))
			p.syncEvents()
		}
		p.publish(bin, false, nil)
	}
	return p
}

// ObserveResults records ingested results between bin closes so
// /api/status stays fresh while a bin is still open. Safe to call from the
// ingest goroutine.
func (p *Publisher) ObserveResults(n int) { p.results.Add(int64(n)) }

// Results returns the live ingested-result count.
func (p *Publisher) Results() int {
	n := int(p.results.Load())
	if s := p.Snapshot(); s != nil && s.Results > n {
		return s.Results
	}
	return n
}

// Snapshot returns the current published snapshot. It is never nil.
func (p *Publisher) Snapshot() *Snapshot { return p.cur.Load() }

// Finish publishes the terminal snapshot: on success the incremental
// event/magnitude region is extended through the display window's end (so
// a completed run answers exactly like a full recomputation over
// [Start, End)), on failure the error is recorded and surfaced. Must be
// called on the analysis goroutine after the final Flush; it is idempotent.
func (p *Publisher) Finish(err error) {
	if p.finished {
		return
	}
	p.finished = true
	if err == nil {
		if serr := p.StoreErr(); serr != nil {
			// The analysis itself succeeded but its durable record did not: a
			// monitoring client must not mistake a store with missing bins for
			// a completed run.
			err = fmt.Errorf("segment store commit failed: %w", serr)
		}
	}
	if err == nil {
		// The tail extension over empty bins is recomputed identically by any
		// restart (its windows live inside the retained horizon), so it is
		// not committed to the store.
		p.agg.CloseBins(p.meta.End)
		p.syncEvents()
	}
	p.publish(time.Time{}, true, err)
}

// syncEvents mirrors the aggregator's incremental event list into wire
// form. The mirror is append-only within one aggregator generation; a
// staleness rebuild bumps the generation, in which case the mirror restarts
// with fresh storage (published snapshots keep their old prefixes) instead
// of appending the re-derived history after the stale copy.
func (p *Publisher) syncEvents() {
	all, gen := p.agg.IncrementalEvents()
	if gen != p.evGen {
		p.evGen = gen
		p.evs = nil
	}
	for _, e := range all[len(p.evs):] {
		p.evs = append(p.evs, Event{
			ASN: e.ASN.String(), Bin: e.Bin, Type: e.Type.String(), Magnitude: e.Magnitude,
		})
	}
}

// publish assembles and swaps in the next snapshot, then broadcasts the
// delta against the previous one.
func (p *Publisher) publish(closedBin time.Time, final bool, runErr error) {
	prev := p.cur.Load()
	p.seq++
	reg := p.a.Registry()
	res := p.a.Results()
	if res < p.floorResults {
		// Warmup replay after a segment-store boot recounts from zero; keep
		// reporting the durable count until the replay catches up.
		res = p.floorResults
	}
	snap := &Snapshot{
		Seq:     p.seq,
		Meta:    p.meta,
		BinSize: p.binSize,
		LastBin: closedBin,
		Results: res,
		Identities: Identities{
			Addrs: reg.Addrs(), Links: reg.Links(),
			Flows: reg.Flows(), Routers: reg.Routers(),
		},
		DelayAlarms: p.delay[:len(p.delay):len(p.delay)],
		FwdAlarms:   p.fwd[:len(p.fwd):len(p.fwd)],
		Events:      p.evs[:len(p.evs):len(p.evs)],
		evGen:       p.evGen,
	}
	if prev != nil && closedBin.IsZero() {
		snap.LastBin = prev.LastBin
	}
	if final {
		if runErr != nil {
			snap.Failed = true
			snap.Err = runErr.Error()
		} else {
			snap.Done = true
		}
	}
	if dm, fm, start, thru, ok := p.agg.MagnitudeSnapshot(); ok {
		snap.delayMag, snap.fwdMag = dm, fm
		snap.MagStart, snap.MagEnd = start, thru
	}
	p.cur.Store(snap)
	p.results.Store(int64(snap.Results))

	d := Delta{
		Seq: snap.Seq, Bin: closedBin, Results: snap.Results,
		Done: snap.Done, Failed: snap.Failed, Err: snap.Err,
		DelayAlarms: []DelayAlarm{}, FwdAlarms: []FwdAlarm{}, Events: []Event{},
	}
	if prev != nil {
		d.DelayAlarms = snap.DelayAlarms[len(prev.DelayAlarms):]
		d.FwdAlarms = snap.FwdAlarms[len(prev.FwdAlarms):]
		if prev.evGen == snap.evGen {
			d.Events = snap.Events[len(prev.Events):]
		} else {
			// The event history was rebuilt (out-of-order mutation):
			// resynchronize subscribers with the full re-derived list.
			d.Events = snap.Events
		}
	}
	p.broadcast(d)
}

// Subscribe registers a delta subscriber. The returned cancel function must
// be called when the subscriber goes away. A subscriber that falls more
// than the buffer behind is dropped (its channel is closed); SSE clients
// reconnect and resynchronize from the snapshot.
func (p *Publisher) Subscribe() (<-chan Delta, func()) {
	p.mu.Lock()
	defer p.mu.Unlock()
	ch := make(chan Delta, 64)
	if p.closed {
		close(ch)
		return ch, func() {}
	}
	id := p.nextSub
	p.nextSub++
	p.subs[id] = ch
	return ch, func() {
		p.mu.Lock()
		defer p.mu.Unlock()
		if _, ok := p.subs[id]; ok {
			delete(p.subs, id)
			close(ch)
		}
	}
}

func (p *Publisher) broadcast(d Delta) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for id, ch := range p.subs {
		select {
		case ch <- d:
		default: // slow consumer: drop it rather than stall analysis
			delete(p.subs, id)
			close(ch)
		}
	}
}

// CloseSubscribers terminates every delta stream (server shutdown). New
// Subscribe calls return an already-closed channel.
func (p *Publisher) CloseSubscribers() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	for id, ch := range p.subs {
		delete(p.subs, id)
		close(ch)
	}
}
