package serve

// The versioned replication feed: the wire contract shared by the three
// snapshot producers — the local publisher, the segment-store boot path,
// and the remote follower.
//
// The feed is the SSE stream of /api/stream promoted to a self-describing
// protocol. One `hello` event opens every connection (protocol version,
// aggregator generation, run metadata, current snapshot position), then one
// `delta` event per snapshot publication. A client that already holds state
// reconnects with ?since=SEQ and the server replays the missing deltas from
// its in-memory window, synthesizes them from the segment store when the
// window no longer reaches back far enough, or falls back to a single
// `full` delta carrying the entire current state. A subscriber dropped for
// falling behind receives a terminal `gap` event so it can distinguish
// "resync needed" from "run complete".
//
// Delta sequence numbers are the snapshot Seq: the initial publication is
// seq 1 and the close of the k-th analysis bin publishes seq k+2, so
// committed store record i always maps to delta seq i+2 regardless of
// restarts. The generation is the aggregator's rebuild generation
// (events.Generation), carried as bookkeeping; a delta that carries the
// full re-derived event list and magnitude history (instead of an append)
// says so explicitly with the Rebuild flag. Generation drift alone is NOT
// a resync signal: a writer restart bumps the generation while the durable
// history stays append-consistent, so a mirror that inferred "replace" from
// a gen change would discard state that is still a valid prefix.
//
// Byte-identity across the feed rests on JSON float round-tripping: Go
// marshals float64 with the shortest representation that parses back to
// the same bits, so a decoded mirror reproduces the writer's payload bytes
// exactly.

import (
	"encoding/json"
	"slices"
	"time"

	"pinpoint/internal/events"
	"pinpoint/internal/ipmap"
	"pinpoint/internal/segstore"
	"pinpoint/internal/timeseries"
)

// FeedProto is the replication feed protocol version carried by every
// hello event. A follower refuses to track a writer speaking a different
// version. Version 2 made the "carries the full re-derived history"
// property explicit (Delta.Rebuild) instead of inferred from generation
// drift.
const FeedProto = 2

// defaultFeedWindow is how many recent deltas the in-memory catch-up ring
// retains (the -feed flag overrides it on the writer).
const defaultFeedWindow = 256

// MagRow is one per-AS magnitude point on the feed. Rows within one delta
// are ordered (bin, AS) for the close they extend — the same deterministic
// order the incremental aggregator appends in — so a mirror can append them
// to its per-AS series verbatim.
type MagRow struct {
	ASN uint32    `json:"asn"`
	T   time.Time `json:"t"`
	V   float64   `json:"v"`
}

// Delta is one feed increment: everything one snapshot publication appended
// since the previous one, stamped with the snapshot seq and the aggregator
// generation. Alarm lists are partitioned by closing bin (exactly like the
// segment store's records), so a delta replayed live and a delta
// synthesized from a committed segment carry the same rows. A Full delta
// replaces the mirror's entire state instead of appending.
type Delta struct {
	Seq     uint64    `json:"seq"`
	Gen     uint64    `json:"gen"`
	Bin     time.Time `json:"bin,omitzero"`
	Results int       `json:"results"`

	DelayAlarms []DelayAlarm `json:"delay_alarms"`
	FwdAlarms   []FwdAlarm   `json:"fwd_alarms"`
	Events      []Event      `json:"events"`

	// Magnitude region extension: the points this close appended, with the
	// region bounds after the close. Empty when no bin closed.
	MagStart   time.Time `json:"mag_start,omitzero"`
	MagThrough time.Time `json:"mag_through,omitzero"`
	DelayMag   []MagRow  `json:"delay_mag,omitempty"`
	FwdMag     []MagRow  `json:"fwd_mag,omitempty"`

	// Identities travels only on live deltas (segments do not persist it);
	// nil means "keep what you have".
	Identities *Identities `json:"identities,omitempty"`

	// Full marks a whole-state resync: the alarm/event/magnitude lists are
	// the complete current state, not an increment.
	Full bool `json:"full,omitempty"`

	// Rebuild marks a live staleness rebuild upstream: Events, DelayMag and
	// FwdMag are the full re-derived history (alarms stay appends). Only the
	// writer's own bin-close delta for a rebuild sets it; store-synthesized
	// catch-up deltas never do — durable history is append-consistent across
	// writer restarts even though a restart bumps Gen.
	Rebuild bool `json:"rebuild,omitempty"`

	Done   bool   `json:"done"`
	Failed bool   `json:"failed,omitempty"`
	Err    string `json:"error,omitempty"`
}

// helloJSON is the first SSE event: the subscriber's synchronization point.
// Counts double as cursors — a client that fetched the plain endpoints with
// cursor pagination can verify it is exactly caught up before applying
// deltas — and the metadata block lets a follower adopt the writer's run
// identity and validate the protocol version.
type helloJSON struct {
	Proto       int       `json:"proto"`
	Seq         uint64    `json:"seq"`
	Gen         uint64    `json:"gen"`
	Bin         time.Time `json:"bin,omitzero"`
	Results     int       `json:"results"`
	DelayAlarms int       `json:"delay_alarms"`
	FwdAlarms   int       `json:"fwd_alarms"`
	Events      int       `json:"events"`
	Done        bool      `json:"done"`
	Failed      bool      `json:"failed,omitempty"`
	Err         string    `json:"error,omitempty"`

	Case        string        `json:"case"`
	Description string        `json:"description"`
	Start       time.Time     `json:"start"`
	End         time.Time     `json:"end"`
	BinNS       time.Duration `json:"bin_ns"`
}

// gapJSON is the terminal event of a subscriber dropped for falling behind:
// the last delta seq that was enqueued for it, so the client knows where to
// resume with ?since=.
type gapJSON struct {
	LastSeq uint64 `json:"last_seq"`
}

// helloFor builds the hello event for the current snapshot.
func helloFor(snap *Snapshot) helloJSON {
	return helloJSON{
		Proto: FeedProto,
		Seq:   snap.Seq, Gen: snap.evGen, Bin: snap.LastBin, Results: snap.Results,
		DelayAlarms: len(snap.DelayAlarms), FwdAlarms: len(snap.FwdAlarms),
		Events: len(snap.Events),
		Done:   snap.Done, Failed: snap.Failed, Err: snap.Err,
		Case: snap.Meta.Case, Description: snap.Meta.Description,
		Start: snap.Meta.Start, End: snap.Meta.End, BinNS: snap.BinSize,
	}
}

// decodeDelta parses one delta event payload. It is the follower's half of
// the codec and the subject of FuzzFeedDecode: it must never panic, and
// decode∘encode must be the identity on anything it accepts.
func decodeDelta(b []byte) (Delta, error) {
	var d Delta
	if err := json.Unmarshal(b, &d); err != nil {
		return Delta{}, err
	}
	return d, nil
}

// decodeHello parses the hello event payload.
func decodeHello(b []byte) (helloJSON, error) {
	var h helloJSON
	if err := json.Unmarshal(b, &h); err != nil {
		return helloJSON{}, err
	}
	return h, nil
}

// magRows converts an events.CloseDelta point list to feed rows, preserving
// the aggregator's deterministic (bin, AS) append order.
func magRows(pts []events.ASPoint) []MagRow {
	if len(pts) == 0 {
		return nil
	}
	rows := make([]MagRow, len(pts))
	for i, pt := range pts {
		rows[i] = MagRow{ASN: uint32(pt.ASN), T: pt.T, V: pt.V}
	}
	return rows
}

// magRowsFromSeries filters a committed segment's series rows down to one
// family, preserving stored order (which is the close's append order).
func magRowsFromSeries(rows []segstore.SeriesRow, family uint8) []MagRow {
	var out []MagRow
	for _, r := range rows {
		if r.Family == family {
			out = append(out, MagRow{ASN: r.ASN, T: r.Bin, V: r.V})
		}
	}
	return out
}

// sortedMagRows flattens a snapshot's magnitude map into rows ordered
// (AS, bin) — the deterministic full-state form used by Full deltas.
func sortedMagRows(m map[ipmap.ASN][]timeseries.Point) []MagRow {
	if len(m) == 0 {
		return nil
	}
	asns := make([]ipmap.ASN, 0, len(m))
	for asn := range m {
		asns = append(asns, asn)
	}
	slices.Sort(asns)
	var out []MagRow
	for _, asn := range asns {
		for _, pt := range m[asn] {
			out = append(out, MagRow{ASN: uint32(asn), T: pt.T, V: pt.V})
		}
	}
	return out
}

// fullDelta packages the entire current snapshot as one Full delta: the
// catch-up source of last resort, correct from any starting state.
func fullDelta(snap *Snapshot) Delta {
	ids := snap.Identities
	return Delta{
		Seq: snap.Seq, Gen: snap.evGen, Bin: snap.LastBin, Results: snap.Results,
		DelayAlarms: snap.DelayAlarms, FwdAlarms: snap.FwdAlarms, Events: snap.Events,
		MagStart: snap.MagStart, MagThrough: snap.MagEnd,
		DelayMag: sortedMagRows(snap.delayMag), FwdMag: sortedMagRows(snap.fwdMag),
		Identities: &ids, Full: true,
		Done: snap.Done, Failed: snap.Failed, Err: snap.Err,
	}
}

// appendDelayAlarms converts committed segment rows back to wire form. The
// strings were stored exactly as published, so the round trip is verbatim.
func appendDelayAlarms(dst []DelayAlarm, rows []segstore.DelayRow) []DelayAlarm {
	for _, r := range rows {
		dst = append(dst, DelayAlarm{
			Bin: r.Bin, Link: r.Link,
			MedianMS: r.MedianMS, RefMS: r.RefMS,
			ShiftMS: r.ShiftMS, Deviation: r.Deviation,
			Probes: int(r.Probes), ASes: int(r.ASes),
		})
	}
	return dst
}

func appendFwdAlarms(dst []FwdAlarm, rows []segstore.FwdRow) []FwdAlarm {
	for _, r := range rows {
		dst = append(dst, FwdAlarm{
			Bin: r.Bin, Router: r.Router, Dst: r.Dst,
			Rho: r.Rho, TopHop: r.TopHop, TopR: r.TopR,
		})
	}
	return dst
}

func appendWireEvents(dst []Event, rows []segstore.EventRow) []Event {
	for _, r := range rows {
		dst = append(dst, Event{
			ASN: ipmap.ASN(r.ASN).String(), Bin: r.Bin,
			Type: events.Type(r.Type).String(), Magnitude: r.Magnitude,
		})
	}
	return dst
}

// deltaFromRecord synthesizes the feed delta of one committed bin: record i
// of the store is exactly what delta seq i+2 appended (the store partitions
// alarms by closing bin, and live deltas use the same rule). Identities is
// not persisted, so synthesized deltas leave it nil; gen is stamped by the
// caller (the durable history is valid under the writer's current
// generation — segment-backed aggregators never rebuild it).
func deltaFromRecord(rec *segstore.BinRecord, seq, gen uint64, binSize time.Duration) Delta {
	return Delta{
		Seq: seq, Gen: gen, Bin: rec.Bin, Results: int(rec.Results),
		DelayAlarms: appendDelayAlarms(nil, rec.Delay),
		FwdAlarms:   appendFwdAlarms(nil, rec.Fwd),
		Events:      appendWireEvents(nil, rec.Events),
		MagStart:    rec.FirstBin,
		MagThrough:  rec.Bin.Add(binSize),
		DelayMag:    magRowsFromSeries(rec.Mag, segstore.FamilyDelay),
		FwdMag:      magRowsFromSeries(rec.Mag, segstore.FamilyFwd),
	}
}
