package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"
	"time"

	"pinpoint/internal/core"
	"pinpoint/internal/events"
	"pinpoint/internal/experiments"
	"pinpoint/internal/timeseries"
	"pinpoint/internal/trace"
)

// The legacy wire structs and encoder of the pre-snapshot cmd/ihr server,
// reproduced verbatim: the acceptance bar is that a completed run's alarm
// and event payloads are byte-identical to what that server emitted.
type legacyDelayAlarmJSON struct {
	Bin       time.Time `json:"bin"`
	Link      string    `json:"link"`
	MedianMS  float64   `json:"median_ms"`
	RefMS     float64   `json:"reference_ms"`
	ShiftMS   float64   `json:"shift_ms"`
	Deviation float64   `json:"deviation"`
	Probes    int       `json:"probes"`
	ASes      int       `json:"ases"`
}

type legacyFwdAlarmJSON struct {
	Bin    time.Time `json:"bin"`
	Router string    `json:"router"`
	Dst    string    `json:"dst"`
	Rho    float64   `json:"rho"`
	TopHop string    `json:"top_hop"`
	TopR   float64   `json:"top_responsibility"`
}

type legacyEventJSON struct {
	ASN       string    `json:"asn"`
	Bin       time.Time `json:"bin"`
	Type      string    `json:"type"`
	Magnitude float64   `json:"magnitude"`
}

func legacyEncode(t *testing.T, v interface{}) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCompletedRunPayloadsMatchLegacyServer runs the golden ddos and ixp
// quick cases to completion through the snapshot pipeline and checks the
// alarm/event payloads byte for byte against the legacy server's encoding
// of the same analysis — the legacy alarm conversion applied to the
// retained alarm record, and the legacy O(ASes × bins) event recomputation
// on a fresh aggregator.
func TestCompletedRunPayloadsMatchLegacyServer(t *testing.T) {
	for _, name := range []string{"ddos", "ixp"} {
		t.Run(name, func(t *testing.T) {
			c, err := experiments.NewCase(name, experiments.Quick)
			if err != nil {
				t.Fatal(err)
			}
			a := core.New(core.Config{RetainAlarms: true}, c.Platform.ProbeASN, c.Net.Prefixes())
			defer a.Close()
			pub := NewPublisher(a, Meta{
				Case: c.Name, Description: c.Description,
				Start: c.Start, End: c.End,
			})
			srv := NewServer(pub, Options{Logf: func(string, ...any) {}})

			var firstT time.Time
			haveFirst := false
			err = c.Platform.RunChunks(context.Background(), c.Start, c.End, 0, func(rs []trace.Result) error {
				if !haveFirst && len(rs) > 0 {
					firstT, haveFirst = rs[0].Time, true
				}
				a.ObserveBatch(rs)
				pub.ObserveResults(len(rs))
				return nil
			})
			a.Flush()
			pub.Finish(err)
			if err != nil {
				t.Fatal(err)
			}

			// Legacy alarm payloads from the retained record (the exact
			// conversions the old hooks applied, in the same order).
			legacyDelay := []legacyDelayAlarmJSON{}
			for _, al := range a.DelayAlarms() {
				legacyDelay = append(legacyDelay, legacyDelayAlarmJSON{
					Bin: al.Bin, Link: al.Link.String(),
					MedianMS: al.Observed.Median, RefMS: al.Reference.Median,
					ShiftMS: al.DiffMS, Deviation: al.Deviation,
					Probes: al.Probes, ASes: al.ASes,
				})
			}
			legacyFwd := []legacyFwdAlarmJSON{}
			for _, al := range a.ForwardingAlarms() {
				top, _ := al.MaxResponsibility()
				legacyFwd = append(legacyFwd, legacyFwdAlarmJSON{
					Bin: al.Bin, Router: al.Router.String(), Dst: al.Dst.String(),
					Rho: al.Rho, TopHop: top.Hop.String(), TopR: top.Responsibility,
				})
			}

			// Legacy events: the old server asked a live aggregator for the
			// full [start, end) recomputation. Rebuild one from the retained
			// alarms so no incremental state is involved.
			ref := events.NewAggregator(events.Config{}, c.Net.Prefixes())
			if haveFirst {
				ref.ObserveBin(firstT)
			}
			for _, al := range a.DelayAlarms() {
				ref.AddDelayAlarm(al)
			}
			for _, al := range a.ForwardingAlarms() {
				ref.AddForwardingAlarm(al)
			}
			legacyEvents := []legacyEventJSON{}
			for _, e := range ref.Events(c.Start, c.End) {
				legacyEvents = append(legacyEvents, legacyEventJSON{
					ASN: e.ASN.String(), Bin: e.Bin, Type: e.Type.String(), Magnitude: e.Magnitude,
				})
			}

			if len(legacyDelay)+len(legacyFwd) == 0 {
				t.Fatal("case produced no alarms; comparison is vacuous")
			}

			compare := func(url string, legacy []byte) {
				t.Helper()
				rec := get(t, srv, url)
				if rec.Code != 200 {
					t.Fatalf("%s: status %d", url, rec.Code)
				}
				if !bytes.Equal(rec.Body.Bytes(), legacy) {
					t.Errorf("%s payload differs from the legacy server (%d vs %d bytes)",
						url, rec.Body.Len(), len(legacy))
				}
			}
			compare("/api/alarms/delay", legacyEncode(t, legacyDelay))
			compare("/api/alarms/forwarding", legacyEncode(t, legacyFwd))
			compare("/api/events", legacyEncode(t, legacyEvents))

			// Magnitude values must equal the legacy full recomputation for
			// every alarmed AS (the response shape intentionally changed:
			// both keys always present).
			for _, asn := range ref.ASes() {
				rec := get(t, srv, fmt.Sprintf("/api/magnitude?asn=%d", uint32(asn)))
				var got struct {
					Delay      []Point `json:"delay"`
					Forwarding []Point `json:"forwarding"`
				}
				if err := json.Unmarshal(rec.Body.Bytes(), &got); err != nil {
					t.Fatal(err)
				}
				checkMag := func(family string, gotPts []Point, wantPts []Point) {
					t.Helper()
					if len(gotPts) != len(wantPts) {
						t.Fatalf("AS%d %s: %d points, legacy %d", asn, family, len(gotPts), len(wantPts))
					}
					for i := range wantPts {
						if !gotPts[i].T.Equal(wantPts[i].T) || gotPts[i].V != wantPts[i].V {
							t.Fatalf("AS%d %s point %d: %+v vs legacy %+v", asn, family, i, gotPts[i], wantPts[i])
						}
					}
				}
				checkMag("delay", got.Delay, toPoints(ref.DelayMagnitude(asn, c.Start, c.End)))
				checkMag("forwarding", got.Forwarding, toPoints(ref.ForwardingMagnitude(asn, c.Start, c.End)))
			}
		})
	}
}

func toPoints(pts []timeseries.Point) []Point {
	out := make([]Point, len(pts))
	for i, p := range pts {
		out[i] = Point{T: p.T, V: p.V}
	}
	return out
}
