package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"log"
	"net/http"
	"strconv"
	"sync"
	"time"

	"pinpoint/internal/ipmap"
)

// Options configures the HTTP server. Zero values get production defaults.
type Options struct {
	Addr string // listen address; default ":8080"

	ReadHeaderTimeout time.Duration // default 5s
	ReadTimeout       time.Duration // default 10s
	IdleTimeout       time.Duration // default 2m
	ShutdownGrace     time.Duration // default 5s

	// Logf receives serving diagnostics (encode/write failures, lifecycle).
	// Default log.Printf.
	Logf func(format string, args ...any)
}

func (o Options) withDefaults() Options {
	if o.Addr == "" {
		o.Addr = ":8080"
	}
	if o.ReadHeaderTimeout == 0 {
		o.ReadHeaderTimeout = 5 * time.Second
	}
	if o.ReadTimeout == 0 {
		o.ReadTimeout = 10 * time.Second
	}
	if o.IdleTimeout == 0 {
		o.IdleTimeout = 2 * time.Minute
	}
	if o.ShutdownGrace == 0 {
		o.ShutdownGrace = 5 * time.Second
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// Source is what the HTTP API serves from: a snapshot producer with a
// replication feed. Publisher (the writer role) and Follower (the replica
// role) both implement it, so one Server works unchanged on either side of
// the split.
type Source interface {
	// Snapshot returns the current immutable snapshot; never nil.
	Snapshot() *Snapshot
	// Results returns the live ingested-result count (snapshot count plus
	// anything observed since the last publication).
	Results() int
	// Subscribe registers a feed subscriber.
	Subscribe() *Subscription
	// CloseSubscribers terminates every feed stream (server shutdown).
	CloseSubscribers()
	// CatchUp returns the feed deltas covering (since, upTo], or ok=false
	// when no catch-up source reaches back that far (the stream handler
	// then sends one full-state delta).
	CatchUp(since, upTo uint64) ([]Delta, bool)
	// StoreBins, StoreBin and HasStore expose the committed-segment index
	// for /api/bins time travel.
	StoreBins() ([]BinSummary, bool)
	StoreBin(bin time.Time) (*BinPayload, bool, error)
	HasStore() bool
}

// Server is the lock-free HTTP API over a Source's snapshots.
//
//	GET /api/status            analysis progress and run outcome
//	GET /api/alarms/delay      delay-change alarms (filter + paginate)
//	GET /api/alarms/forwarding forwarding anomalies (filter + paginate)
//	GET /api/events            major per-AS events (filter + paginate)
//	GET /api/magnitude?asn=N   hourly magnitude series for one AS
//	GET /api/bins              committed segment-store bins (time travel)
//	GET /api/stream            versioned replication feed (SSE, ?since=)
//	GET /                      human-readable summary
type Server struct {
	src  Source
	mux  *http.ServeMux
	opts Options
}

// NewServer builds the API around a snapshot source — the writer's
// Publisher or a replica's Follower.
func NewServer(src Source, opts Options) *Server {
	s := &Server{src: src, mux: http.NewServeMux(), opts: opts.withDefaults()}
	s.mux.HandleFunc("/api/status", s.handleStatus)
	s.mux.HandleFunc("/api/alarms/delay", s.handleDelayAlarms)
	s.mux.HandleFunc("/api/alarms/forwarding", s.handleFwdAlarms)
	s.mux.HandleFunc("/api/events", s.handleEvents)
	s.mux.HandleFunc("/api/magnitude", s.handleMagnitude)
	s.mux.HandleFunc("/api/bins", s.handleBins)
	s.mux.HandleFunc("/api/stream", s.handleStream)
	s.mux.HandleFunc("/", s.handleIndex)
	return s
}

// Handler exposes the routing table (tests and embedding).
func (s *Server) Handler() http.Handler { return s.mux }

// ListenAndServe serves until ctx is canceled, then shuts down gracefully:
// in-flight requests get ShutdownGrace to finish, SSE streams are released
// by closing their subscriptions. A closed listener after cancellation is
// reported as nil.
func (s *Server) ListenAndServe(ctx context.Context) error {
	srv := &http.Server{
		Addr:              s.opts.Addr,
		Handler:           s.mux,
		ReadHeaderTimeout: s.opts.ReadHeaderTimeout,
		ReadTimeout:       s.opts.ReadTimeout,
		// No WriteTimeout: /api/stream is long-lived by design. Slow plain
		// readers are bounded by the snapshot model instead — they can only
		// stall themselves.
		IdleTimeout: s.opts.IdleTimeout,
	}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	s.src.CloseSubscribers() // unblock SSE handlers so Shutdown can drain
	grace, cancel := context.WithTimeout(context.Background(), s.opts.ShutdownGrace)
	defer cancel()
	if err := srv.Shutdown(grace); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}

// payloadCache lazily renders one endpoint's default payload for a
// snapshot. Snapshots are immutable, so the render happens at most once per
// snapshot per endpoint and is then served byte-for-byte, with an ETag
// derived from the bytes.
type payloadCache struct {
	once sync.Once
	data []byte
	etag string
	err  error
}

func (c *payloadCache) get(build func() any) ([]byte, string, error) {
	c.once.Do(func() {
		c.data, c.err = encodePayload(build())
		if c.err == nil {
			h := fnv.New64a()
			h.Write(c.data)
			c.etag = fmt.Sprintf("\"%x\"", h.Sum64())
		}
	})
	return c.data, c.etag, c.err
}

// encodePayload renders exactly what the legacy json.Encoder with two-space
// indent produced: MarshalIndent plus a trailing newline. Marshal-first
// means an encoding failure never truncates a half-written 200 response.
func encodePayload(v any) ([]byte, error) {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// writeJSON encodes v and writes it as one response. Encode errors surface
// as a clean 500 (nothing has been written yet); write errors — the client
// went away — are logged only.
func (s *Server) writeJSON(w http.ResponseWriter, v any) {
	b, err := encodePayload(v)
	if err != nil {
		s.opts.Logf("serve: encoding response: %v", err)
		http.Error(w, "response encoding failed", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(b); err != nil {
		s.opts.Logf("serve: writing response: %v", err)
	}
}

// serveCached serves a snapshot's pre-encoded default payload with strong
// ETag revalidation. Snapshots are immutable, so the bytes-derived ETag is
// valid mid-run too: it is stable across no-op polls of the same snapshot
// and changes exactly when a bin close (or completion) publishes new bytes.
func (s *Server) serveCached(w http.ResponseWriter, r *http.Request, snap *Snapshot, c *payloadCache, build func() any) {
	b, etag, err := c.get(build)
	if err != nil {
		s.opts.Logf("serve: encoding response: %v", err)
		http.Error(w, "response encoding failed", http.StatusInternalServerError)
		return
	}
	w.Header().Set("ETag", etag)
	if match := r.Header.Get("If-None-Match"); match != "" && match == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if _, err := w.Write(b); err != nil {
		s.opts.Logf("serve: writing response: %v", err)
	}
}

// query is the parsed filter/pagination parameter set shared by the alarm
// and event endpoints.
type query struct {
	from, to                           time.Time
	haveFrom, haveTo                   bool
	link, router, dst                  string
	asn                                string
	typ                                string
	minDev, minRho, minMag             float64
	haveMinDev, haveMinRho, haveMinMag bool

	paged  bool
	cursor int
	limit  int
}

// anyFilter reports whether any narrowing filter is active (pagination
// aside) — unfiltered, unpaged requests ride the pre-encoded payload.
func (q query) anyFilter() bool {
	return q.haveFrom || q.haveTo || q.link != "" || q.router != "" || q.dst != "" ||
		q.asn != "" || q.typ != "" || q.haveMinDev || q.haveMinRho || q.haveMinMag
}

func parseQuery(r *http.Request) (query, error) {
	var q query
	vals := r.URL.Query()
	var err error
	parseT := func(key string) (time.Time, bool, error) {
		s := vals.Get(key)
		if s == "" {
			return time.Time{}, false, nil
		}
		t, err := time.Parse(time.RFC3339, s)
		if err != nil {
			return time.Time{}, false, fmt.Errorf("invalid %s: %v", key, err)
		}
		return t, true, nil
	}
	if q.from, q.haveFrom, err = parseT("from"); err != nil {
		return q, err
	}
	if q.to, q.haveTo, err = parseT("to"); err != nil {
		return q, err
	}
	parseF := func(key string) (float64, bool, error) {
		s := vals.Get(key)
		if s == "" {
			return 0, false, nil
		}
		f, err := strconv.ParseFloat(s, 64)
		if err != nil {
			return 0, false, fmt.Errorf("invalid %s: %v", key, err)
		}
		return f, true, nil
	}
	if q.minDev, q.haveMinDev, err = parseF("min_deviation"); err != nil {
		return q, err
	}
	if q.minRho, q.haveMinRho, err = parseF("max_rho"); err != nil {
		return q, err
	}
	if q.minMag, q.haveMinMag, err = parseF("min_magnitude"); err != nil {
		return q, err
	}
	q.link = vals.Get("link")
	q.router = vals.Get("router")
	q.dst = vals.Get("dst")
	q.asn = vals.Get("asn")
	q.typ = vals.Get("type")
	if s := vals.Get("limit"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n <= 0 {
			return q, fmt.Errorf("invalid limit %q", s)
		}
		q.paged, q.limit = true, n
	}
	if s := vals.Get("cursor"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 0 {
			return q, fmt.Errorf("invalid cursor %q", s)
		}
		q.paged, q.cursor = true, n
	}
	if q.paged && q.limit == 0 {
		q.limit = 1000
	}
	return q, nil
}

// binMatch applies the shared [from, to) time filter.
func (q query) binMatch(bin time.Time) bool {
	if q.haveFrom && bin.Before(q.from) {
		return false
	}
	if q.haveTo && !bin.Before(q.to) {
		return false
	}
	return true
}

// page is the envelope of a paginated response. NextCursor is the index to
// resume from; it is omitted on the final page. Cursors stay valid across
// snapshots because the underlying slices are append-only.
type page[T any] struct {
	Items      []T    `json:"items"`
	NextCursor string `json:"next_cursor,omitempty"`
}

// filterPage scans all[cursor:] for matches. Unpaged: returns every match.
// Paged: returns up to limit matches plus the cursor of the next match.
func filterPage[T any](all []T, match func(T) bool, q query) page[T] {
	out := page[T]{Items: []T{}}
	i := q.cursor
	if !q.paged {
		i = 0
	}
	for ; i < len(all); i++ {
		if !match(all[i]) {
			continue
		}
		if q.paged && len(out.Items) == q.limit {
			out.NextCursor = strconv.Itoa(i)
			return out
		}
		out.Items = append(out.Items, all[i])
	}
	return out
}

// serveList is the shared alarm/event endpoint body: pre-encoded fast path
// for the plain request, filter/paginate otherwise. The plain payload is a
// bare array (the legacy wire shape, always [] instead of null when empty);
// paged requests get the {items, next_cursor} envelope.
func serveList[T any](s *Server, w http.ResponseWriter, r *http.Request, snap *Snapshot,
	cache *payloadCache, all []T, match func(query, T) bool) {
	q, err := parseQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	if !q.anyFilter() && !q.paged {
		s.serveCached(w, r, snap, cache, func() any {
			if all == nil {
				return []T{}
			}
			return all
		})
		return
	}
	pg := filterPage(all, func(v T) bool { return match(q, v) }, q)
	if q.paged {
		s.writeJSON(w, pg)
		return
	}
	s.writeJSON(w, pg.Items)
}

func (s *Server) handleDelayAlarms(w http.ResponseWriter, r *http.Request) {
	snap := s.src.Snapshot()
	serveList(s, w, r, snap, &snap.encDelay, snap.DelayAlarms, func(q query, a DelayAlarm) bool {
		if !q.binMatch(a.Bin) || (q.link != "" && a.Link != q.link) {
			return false
		}
		return !q.haveMinDev || a.Deviation >= q.minDev
	})
}

func (s *Server) handleFwdAlarms(w http.ResponseWriter, r *http.Request) {
	snap := s.src.Snapshot()
	serveList(s, w, r, snap, &snap.encFwd, snap.FwdAlarms, func(q query, a FwdAlarm) bool {
		if !q.binMatch(a.Bin) || (q.router != "" && a.Router != q.router) || (q.dst != "" && a.Dst != q.dst) {
			return false
		}
		// ρ sits below τ < 0 when anomalous; "at most" is the natural knob.
		return !q.haveMinRho || a.Rho <= q.minRho
	})
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	snap := s.src.Snapshot()
	serveList(s, w, r, snap, &snap.encEvents, snap.Events, func(q query, e Event) bool {
		if !q.binMatch(e.Bin) || (q.asn != "" && e.ASN != q.asn) || (q.typ != "" && e.Type != q.typ) {
			return false
		}
		if !q.haveMinMag {
			return true
		}
		m := e.Magnitude
		if m < 0 {
			m = -m
		}
		return m >= q.minMag
	})
}

// statusJSON is the /api/status payload. Done means "finished
// successfully"; a failed run reports done=false, failed=true and the
// error, so a monitoring client can no longer mistake a crashed ingest for
// a completed analysis.
type statusJSON struct {
	Case        string     `json:"case"`
	Description string     `json:"description"`
	Start       time.Time  `json:"start"`
	End         time.Time  `json:"end"`
	Results     int        `json:"results"`
	Done        bool       `json:"done"`
	Failed      bool       `json:"failed"`
	Err         string     `json:"error,omitempty"`
	LastBin     time.Time  `json:"last_bin,omitzero"`
	Seq         uint64     `json:"snapshot_seq"`
	DelayAlarms int        `json:"delayAlarms"`
	FwdAlarms   int        `json:"fwdAlarms"`
	Events      int        `json:"events"`
	Identities  Identities `json:"identities"`
}

func (s *Server) statusOf(snap *Snapshot) statusJSON {
	return statusJSON{
		Case:        snap.Meta.Case,
		Description: snap.Meta.Description,
		Start:       snap.Meta.Start,
		End:         snap.Meta.End,
		Results:     snap.Results,
		Done:        snap.Done,
		Failed:      snap.Failed,
		Err:         snap.Err,
		LastBin:     snap.LastBin,
		Seq:         snap.Seq,
		DelayAlarms: len(snap.DelayAlarms),
		FwdAlarms:   len(snap.FwdAlarms),
		Events:      len(snap.Events),
		Identities:  snap.Identities,
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	snap := s.src.Snapshot()
	if snap.Complete() {
		// Terminal state: immutable, so the bytes-derived ETag applies.
		s.serveCached(w, r, snap, &snap.encStatus, func() any { return s.statusOf(snap) })
		return
	}
	st := s.statusOf(snap)
	if live := s.src.Results(); live > st.Results {
		st.Results = live
	}
	// Mid-run the payload is (generation, seq, live results); polling
	// between publications revalidates to 304 until any of them moves.
	etag := etagFor(snap, fmt.Sprintf("status|%d", st.Results))
	w.Header().Set("ETag", etag)
	if match := r.Header.Get("If-None-Match"); match != "" && match == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	s.writeJSON(w, st)
}

// magnitudeJSON always carries both families; a quiet AS gets two empty
// arrays, never a bare {}.
type magnitudeJSON struct {
	Delay      []Point `json:"delay"`
	Forwarding []Point `json:"forwarding"`
}

func (s *Server) handleMagnitude(w http.ResponseWriter, r *http.Request) {
	asn, err := strconv.ParseUint(r.URL.Query().Get("asn"), 10, 32)
	if err != nil {
		http.Error(w, "missing or invalid asn parameter", http.StatusBadRequest)
		return
	}
	q, err := parseQuery(r)
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	snap := s.src.Snapshot()
	from, to := snap.Meta.Start, snap.Meta.End
	if q.haveFrom {
		from = q.from
	}
	if q.haveTo {
		to = q.to
	}
	var resp magnitudeJSON
	resp.Delay, resp.Forwarding = snap.Magnitude(ipmap.ASN(asn), from, to)
	// (generation, seq, query) identifies the bytes for any snapshot —
	// complete or mid-run — because snapshots are immutable and a rebuild
	// that re-derives history always bumps the generation.
	w.Header().Set("ETag", etagFor(snap, r.URL.RawQuery))
	if match := r.Header.Get("If-None-Match"); match != "" && match == w.Header().Get("ETag") {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	s.writeJSON(w, resp)
}

// handleBins serves the segment store's committed-bin index, or — with
// ?bin=RFC3339 — the full decoded contribution of one committed bin. It
// reads the durable segments, not the snapshot, so it answers for any
// closed bin even after the in-memory history was evicted.
func (s *Server) handleBins(w http.ResponseWriter, r *http.Request) {
	if raw := r.URL.Query().Get("bin"); raw != "" {
		t, err := time.Parse(time.RFC3339, raw)
		if err != nil {
			http.Error(w, fmt.Sprintf("invalid bin: %v", err), http.StatusBadRequest)
			return
		}
		pl, found, err := s.src.StoreBin(t)
		if err != nil {
			s.opts.Logf("serve: reading segment: %v", err)
			http.Error(w, "segment read failed", http.StatusInternalServerError)
			return
		}
		if !found {
			if !s.src.HasStore() {
				http.Error(w, "no segment store attached", http.StatusNotFound)
			} else {
				http.Error(w, "bin not committed", http.StatusNotFound)
			}
			return
		}
		s.writeJSON(w, pl)
		return
	}
	bins, ok := s.src.StoreBins()
	if !ok {
		http.Error(w, "no segment store attached", http.StatusNotFound)
		return
	}
	if bins == nil {
		bins = []BinSummary{}
	}
	s.writeJSON(w, bins)
}

// etagFor derives a strong ETag for parameterized reads: snapshots are
// immutable, so (generation, seq, query) identifies the bytes — on the
// writer and on every follower, whose mirrors carry the same generation and
// seq by construction.
func etagFor(snap *Snapshot, rawQuery string) string {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d|%d|%s", snap.evGen, snap.Seq, rawQuery)
	return fmt.Sprintf("\"%x\"", h.Sum64())
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	snap := s.src.Snapshot()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintf(w, "Internet Health Report — %s\n%s\n\n", snap.Meta.Case, snap.Meta.Description)
	state := "running"
	switch {
	case snap.Done:
		state = "done"
	case snap.Failed:
		state = "FAILED: " + snap.Err
	}
	fmt.Fprintf(w, "results processed: %d (%s)\n", s.src.Results(), state)
	fmt.Fprintf(w, "delay alarms: %d, forwarding alarms: %d, events: %d\n\n",
		len(snap.DelayAlarms), len(snap.FwdAlarms), len(snap.Events))
	fmt.Fprintln(w, "API: /api/status /api/alarms/delay /api/alarms/forwarding /api/events /api/magnitude?asn=N /api/stream")
}
