package serve

// Segment-store integration: every closed bin is committed to an
// internal/segstore.Store before its snapshot is published, and a restart
// boots the read model straight from the committed segments.
//
// Commit path (analysis goroutine, inside OnBinClose):
//
//	CloseBinsRecord captures the close's read-model delta →
//	commitBin encodes one BinRecord (the wire-form alarm slices appended
//	since the last commit, the close's events, magnitude points and raw
//	series sums) → Store.Append makes it durable → the aggregator's raw
//	series are evicted down to the magnitude window.
//
// Boot path (NewPublisherWithStore on a non-empty store):
//
//	every committed record is decoded once; the wire alarm/event mirrors
//	are rebuilt verbatim (strings were stored as published), the
//	aggregator is seeded via events.RestoreIncremental, the analyzer gets
//	a resume cursor at the first uncovered bin, and the snapshot sequence
//	is seeded with one publication per committed bin — so a finished
//	resumed run serves byte-identical payloads, ETags included, to an
//	uninterrupted one.
//
// The same record→wire conversions power the replication feed's catch-up
// synthesis (Publisher.CatchUp) and a follower's local-file bootstrap
// (mirror.restoreFromRecords): committed record i is exactly feed delta
// seq i+2.
//
// A store commit failure is recorded, stops further commits (the manifest
// must stay a prefix of the run), and surfaces through Finish as a failed
// run. /api/bins reads decode committed segments directly, giving
// time-travel to any closed bin's exact contribution.

import (
	"fmt"
	"sort"
	"time"

	"pinpoint/internal/core"
	"pinpoint/internal/events"
	"pinpoint/internal/ipmap"
	"pinpoint/internal/segstore"
	"pinpoint/internal/timeseries"
)

// BinSummary is one committed bin as listed by /api/bins.
type BinSummary struct {
	Bin         time.Time `json:"bin"`
	Results     int       `json:"results"`
	DelayAlarms int       `json:"delay_alarms"`
	FwdAlarms   int       `json:"fwd_alarms"`
	Events      int       `json:"events"`
}

// BinPayload is the full time-travel view of one committed bin: exactly
// what that bin's close contributed to the read model, decoded from its
// segment.
type BinPayload struct {
	Bin         time.Time    `json:"bin"`
	Results     int          `json:"results"`
	DelayAlarms []DelayAlarm `json:"delay_alarms"`
	FwdAlarms   []FwdAlarm   `json:"fwd_alarms"`
	Events      []Event      `json:"events"`
}

// NewPublisherWithStore is NewPublisher plus durability: closed bins are
// committed to st before publication, and a non-empty st boots the read
// model from its segments. After a boot the caller must replay the run's
// input from the start — the analyzer's resume cursor (Resumed) suppresses
// everything already durable, so the replay only rebuilds detector state.
//
// Aggregator corroboration (events.Config.Corroborate ≥ 2) is rejected:
// its source ledger is not persisted, so a restore would silently change
// results.
func NewPublisherWithStore(a *core.Analyzer, meta Meta, st *segstore.Store) (*Publisher, error) {
	p := newPublisher(a, meta)
	p.store = st
	if c := p.agg.Config().Corroborate; c >= 2 {
		// Rejected even on a fresh store: the resulting segments could never
		// be restored from.
		p.detachHooks()
		return nil, fmt.Errorf("serve: segment store does not support corroboration (Corroborate=%d)", c)
	}
	if st.Len() == 0 {
		p.agg.SetSegmentBacked()
		p.publish(time.Time{}, false, nil, nil)
		return p, nil
	}
	if err := p.restoreFromStore(); err != nil {
		p.detachHooks()
		return nil, err
	}
	return p, nil
}

// detachHooks unwires a publisher whose construction failed, so the
// analyzer is not left calling into a half-built read model.
func (p *Publisher) detachHooks() {
	p.a.OnDelayAlarm = nil
	p.a.OnForwardingAlarm = nil
	p.a.OnBinClose = nil
}

// Store returns the attached segment store, if any.
func (p *Publisher) Store() *segstore.Store { return p.store }

// HasStore reports whether a segment store is attached (Source interface).
func (p *Publisher) HasStore() bool { return p.store != nil }

// Resumed reports whether this publisher booted from committed segments,
// and if so the resume cursor: the first bin not covered by the store,
// where live dispatch picks up during the input replay.
func (p *Publisher) Resumed() (time.Time, bool) { return p.resumedAt, p.resumed }

// StoreErr returns the first segment-commit error, if any. Once set, no
// further bins are committed (the store must stay a prefix of the run) and
// Finish reports the run as failed.
func (p *Publisher) StoreErr() error {
	if p.store == nil {
		return nil
	}
	p.storeMu.Lock()
	defer p.storeMu.Unlock()
	return p.storeErr
}

// commitBin makes one closed bin durable: the wire-form alarms appended
// since the previous commit, the events this close produced, and the
// close's magnitude/raw series delta. Runs on the analysis goroutine.
func (p *Publisher) commitBin(bin time.Time, d *events.CloseDelta, evs []events.Event) {
	if p.StoreErr() != nil {
		return
	}
	rec := &p.storeRec
	rec.Bin = bin
	rec.FirstBin = d.FirstBin
	rec.Results = int64(p.a.ResultsClosed())
	// The uncommitted mirror tails are bin-ordered (alarms surface in close
	// order on both backends), but a batch spanning several closes appends
	// all its alarms before the first close hook fires — so commit only the
	// prefix belonging to bins ≤ the closing bin, keeping each record's
	// contents a property of the input stream, not of batch boundaries.
	nd := p.committedDelay
	rec.Delay = rec.Delay[:0]
	for ; nd < len(p.m.delay) && !p.m.delay[nd].Bin.After(bin); nd++ {
		al := p.m.delay[nd]
		rec.Delay = append(rec.Delay, segstore.DelayRow{
			Bin: al.Bin, Link: al.Link,
			MedianMS: al.MedianMS, RefMS: al.RefMS,
			ShiftMS: al.ShiftMS, Deviation: al.Deviation,
			Probes: int32(al.Probes), ASes: int32(al.ASes),
		})
	}
	nf := p.committedFwd
	rec.Fwd = rec.Fwd[:0]
	for ; nf < len(p.m.fwd) && !p.m.fwd[nf].Bin.After(bin); nf++ {
		al := p.m.fwd[nf]
		rec.Fwd = append(rec.Fwd, segstore.FwdRow{
			Bin: al.Bin, Router: al.Router, Dst: al.Dst,
			TopHop: al.TopHop, Rho: al.Rho, TopR: al.TopR,
		})
	}
	rec.Events = rec.Events[:0]
	for _, e := range evs {
		rec.Events = append(rec.Events, segstore.EventRow{
			Bin: e.Bin, ASN: uint32(e.ASN), Type: uint8(e.Type), Magnitude: e.Magnitude,
		})
	}
	rec.Mag = appendSeriesRows(rec.Mag[:0], d.DelayMag, d.FwdMag)
	rec.Raw = appendSeriesRows(rec.Raw[:0], d.DelayRaw, d.FwdRaw)

	p.storeMu.Lock()
	defer p.storeMu.Unlock()
	if err := p.store.Append(rec); err != nil {
		p.storeErr = err
		return
	}
	p.binIndex = append(p.binIndex, BinSummary{
		Bin: bin, Results: int(rec.Results),
		DelayAlarms: len(rec.Delay), FwdAlarms: len(rec.Fwd), Events: len(rec.Events),
	})
	p.committedDelay, p.committedFwd = nd, nf
	// The bin is durable: drop raw series history the magnitude window can
	// no longer reach (EvictBefore clamps to validThrough − Window).
	p.agg.EvictBefore(bin)
}

func appendSeriesRows(dst []segstore.SeriesRow, delayPts, fwdPts []events.ASPoint) []segstore.SeriesRow {
	for _, pt := range delayPts {
		dst = append(dst, segstore.SeriesRow{
			Bin: pt.T, ASN: uint32(pt.ASN), Family: segstore.FamilyDelay, V: pt.V,
		})
	}
	for _, pt := range fwdPts {
		dst = append(dst, segstore.SeriesRow{
			Bin: pt.T, ASN: uint32(pt.ASN), Family: segstore.FamilyFwd, V: pt.V,
		})
	}
	return dst
}

// restoreFromStore rebuilds the entire read model from committed segments:
// wire mirrors, aggregator region, resume cursor, snapshot sequence.
func (p *Publisher) restoreFromStore() error {
	n := p.store.Len()
	lastBin, _ := p.store.LastBin()
	validThrough := lastBin.Add(p.m.binSize)
	// Raw series sums are only needed where a future window can still read
	// them; older bins were evicted by the original run too.
	keep := validThrough.Add(-p.agg.Config().Window)

	rs := events.RestoredState{
		ValidThrough: validThrough,
		DelayMag:     make(map[ipmap.ASN][]timeseries.Point),
		FwdMag:       make(map[ipmap.ASN][]timeseries.Point),
	}
	var rec segstore.BinRecord
	for i := 0; i < n; i++ {
		if err := p.store.Record(i, &rec); err != nil {
			return fmt.Errorf("serve: decoding committed segment %d: %w", i, err)
		}
		p.m.delay = appendDelayAlarms(p.m.delay, rec.Delay)
		p.m.fwd = appendFwdAlarms(p.m.fwd, rec.Fwd)
		for _, r := range rec.Events {
			rs.Events = append(rs.Events, events.Event{
				ASN: ipmap.ASN(r.ASN), Bin: r.Bin, Type: events.Type(r.Type), Magnitude: r.Magnitude,
			})
		}
		for _, r := range rec.Mag {
			pt := timeseries.Point{T: r.Bin, V: r.V}
			if r.Family == segstore.FamilyDelay {
				rs.DelayMag[ipmap.ASN(r.ASN)] = append(rs.DelayMag[ipmap.ASN(r.ASN)], pt)
			} else {
				rs.FwdMag[ipmap.ASN(r.ASN)] = append(rs.FwdMag[ipmap.ASN(r.ASN)], pt)
			}
		}
		for _, r := range rec.Raw {
			if r.Bin.Before(keep) {
				continue
			}
			pt := events.ASPoint{ASN: ipmap.ASN(r.ASN), T: r.Bin, V: r.V}
			if r.Family == segstore.FamilyDelay {
				rs.DelayRaw = append(rs.DelayRaw, pt)
			} else {
				rs.FwdRaw = append(rs.FwdRaw, pt)
			}
		}
		p.binIndex = append(p.binIndex, BinSummary{
			Bin: rec.Bin, Results: int(rec.Results),
			DelayAlarms: len(rec.Delay), FwdAlarms: len(rec.Fwd), Events: len(rec.Events),
		})
		if i == n-1 {
			rs.FirstBin = rec.FirstBin
			p.floorResults = int(rec.Results)
		}
	}
	if err := p.agg.RestoreIncremental(rs); err != nil {
		return fmt.Errorf("serve: restoring aggregator from segments: %w", err)
	}
	p.a.SetResumeCursor(validThrough)
	p.resumedAt, p.resumed = validThrough, true
	p.syncEvents() // mirrors the restored event list through the usual path
	p.committedDelay, p.committedFwd = len(p.m.delay), len(p.m.fwd)
	// One publication happened per committed bin in the original run; seed
	// the sequence so a finished resumed run ends on the same Seq (and the
	// same /api/status bytes and ETags) as an uninterrupted one.
	p.m.seq = uint64(n)
	p.publish(lastBin, false, nil, nil)
	return nil
}

// StoreBins lists the committed bins, oldest first. ok is false when no
// store is attached.
func (p *Publisher) StoreBins() (bins []BinSummary, ok bool) {
	if p.store == nil {
		return nil, false
	}
	p.storeMu.Lock()
	defer p.storeMu.Unlock()
	return append([]BinSummary{}, p.binIndex...), true
}

// StoreBin decodes the committed segment of the given bin. found is false
// when the bin is not committed (or no store is attached).
func (p *Publisher) StoreBin(bin time.Time) (pl *BinPayload, found bool, err error) {
	if p.store == nil {
		return nil, false, nil
	}
	p.storeMu.Lock()
	defer p.storeMu.Unlock()
	return storeBinLookup(p.store, p.binIndex, bin, p.m.binSize)
}

// storeBinLookup is the shared /api/bins?bin= body: locate the committed
// record for a bin and decode it to the time-travel payload. The caller
// holds whatever lock serializes access to the store's decode scratch.
func storeBinLookup(st *segstore.Store, binIndex []BinSummary, bin time.Time, binSize time.Duration) (pl *BinPayload, found bool, err error) {
	b := timeseries.Bin(bin, binSize)
	i := sort.Search(len(binIndex), func(i int) bool { return !binIndex[i].Bin.Before(b) })
	if i == len(binIndex) || !binIndex[i].Bin.Equal(b) {
		return nil, false, nil
	}
	var rec segstore.BinRecord
	if err := st.Record(i, &rec); err != nil {
		return nil, true, fmt.Errorf("serve: decoding committed segment %d: %w", i, err)
	}
	pl = &BinPayload{
		Bin:         rec.Bin,
		Results:     int(rec.Results),
		DelayAlarms: appendDelayAlarms([]DelayAlarm{}, rec.Delay),
		FwdAlarms:   appendFwdAlarms([]FwdAlarm{}, rec.Fwd),
		Events:      appendWireEvents([]Event{}, rec.Events),
	}
	return pl, true, nil
}
