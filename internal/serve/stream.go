package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"time"
)

// sseHeartbeat is the comment-line keepalive cadence for /api/stream.
const sseHeartbeat = 15 * time.Second

// helloJSON is the first SSE event: the subscriber's synchronization point.
// Counts double as cursors — a client that fetched the plain endpoints with
// cursor pagination can verify it is exactly caught up before applying
// deltas.
type helloJSON struct {
	Seq         uint64    `json:"seq"`
	Bin         time.Time `json:"bin,omitzero"`
	Results     int       `json:"results"`
	DelayAlarms int       `json:"delay_alarms"`
	FwdAlarms   int       `json:"fwd_alarms"`
	Events      int       `json:"events"`
	Done        bool      `json:"done"`
	Failed      bool      `json:"failed,omitempty"`
	Err         string    `json:"error,omitempty"`
}

// handleStream is the SSE endpoint: one `hello` event carrying the current
// snapshot position, then one `delta` event per snapshot publication (bin
// close or run completion). The subscription is registered before the
// snapshot is read, so no delta can fall between the hello and the stream;
// deltas at or below the hello's seq are skipped instead of replayed.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	ch, cancel := s.pub.Subscribe()
	defer cancel()
	snap := s.pub.Snapshot()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	hello := helloJSON{
		Seq: snap.Seq, Bin: snap.LastBin, Results: snap.Results,
		DelayAlarms: len(snap.DelayAlarms), FwdAlarms: len(snap.FwdAlarms),
		Events: len(snap.Events),
		Done:   snap.Done, Failed: snap.Failed, Err: snap.Err,
	}
	if !s.sseEvent(w, fl, "hello", hello) {
		return
	}
	if snap.Complete() {
		// Terminal snapshot already published: nothing further will come.
		return
	}

	hb := time.NewTicker(sseHeartbeat)
	defer hb.Stop()
	for {
		select {
		case d, ok := <-ch:
			if !ok {
				return // publisher shut down or dropped us as too slow
			}
			if d.Seq <= snap.Seq {
				continue // already reflected in the hello
			}
			if !s.sseEvent(w, fl, "delta", d) {
				return
			}
			if d.Done || d.Failed {
				return
			}
		case <-hb.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// sseEvent writes one named SSE event. Encode errors are logged and end the
// stream (the SSE framing cannot carry a half-event); write errors mean the
// client left.
func (s *Server) sseEvent(w http.ResponseWriter, fl http.Flusher, name string, v any) bool {
	b, err := json.Marshal(v)
	if err != nil {
		s.opts.Logf("serve: encoding SSE %s: %v", name, err)
		return false
	}
	if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, b); err != nil {
		return false
	}
	fl.Flush()
	return true
}
