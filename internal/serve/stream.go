package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"
)

// sseHeartbeat is the comment-line keepalive cadence for /api/stream.
const sseHeartbeat = 15 * time.Second

// handleStream is the replication feed endpoint: one `hello` event carrying
// the protocol version, run identity and current snapshot position, then
// one `delta` event per snapshot publication (bin close or run completion).
//
// A client holding state from an earlier connection passes ?since=SEQ; the
// deltas covering (since, current] are replayed first — from the in-memory
// ring, synthesized from the segment store, or as a single full-state
// delta when neither reaches back far enough. The subscription is
// registered before the snapshot is read, so no delta can fall between the
// replay and the live stream; live deltas at or below the snapshot's seq
// are skipped instead of duplicated.
//
// A subscriber dropped for falling behind gets a terminal `gap` event with
// the last delivered seq, so clients can tell "resync needed" (reconnect
// with since=) from "run complete" (terminal delta) and "server shutdown"
// (plain EOF).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	var since uint64
	haveSince := false
	if raw := r.URL.Query().Get("since"); raw != "" {
		n, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			http.Error(w, fmt.Sprintf("invalid since: %v", err), http.StatusBadRequest)
			return
		}
		since, haveSince = n, true
	}

	sub := s.src.Subscribe()
	defer sub.Cancel()
	snap := s.src.Snapshot()

	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")

	if !s.sseEvent(w, fl, "hello", helloFor(snap)) {
		return
	}
	if haveSince && since < snap.Seq {
		ds, ok := s.src.CatchUp(since, snap.Seq)
		if !ok {
			// Nothing reaches back to since: one full-state delta resyncs
			// the client from any starting point.
			ds = []Delta{fullDelta(snap)}
		}
		for _, d := range ds {
			if !s.sseEvent(w, fl, "delta", d) {
				return
			}
		}
	}
	if snap.Complete() {
		// Terminal snapshot already published: nothing further will come.
		return
	}

	hb := time.NewTicker(sseHeartbeat)
	defer hb.Stop()
	for {
		select {
		case d, ok := <-sub.C:
			if !ok {
				if last, dropped := sub.Gap(); dropped {
					// Dropped as too slow: tell the client where the feed
					// left off so it can reconnect with ?since=.
					s.sseEvent(w, fl, "gap", gapJSON{LastSeq: last})
				}
				return
			}
			if d.Seq <= snap.Seq {
				continue // already reflected in the hello/catch-up
			}
			if !s.sseEvent(w, fl, "delta", d) {
				return
			}
			if d.Done || d.Failed {
				return
			}
		case <-hb.C:
			if _, err := fmt.Fprint(w, ": keepalive\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		}
	}
}

// sseEvent writes one named SSE event. Encode errors are logged and end the
// stream (the SSE framing cannot carry a half-event); write errors mean the
// client left.
func (s *Server) sseEvent(w http.ResponseWriter, fl http.Flusher, name string, v any) bool {
	b, err := json.Marshal(v)
	if err != nil {
		s.opts.Logf("serve: encoding SSE %s: %v", name, err)
		return false
	}
	if _, err := fmt.Fprintf(w, "event: %s\ndata: %s\n\n", name, b); err != nil {
		return false
	}
	fl.Flush()
	return true
}
