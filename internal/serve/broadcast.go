package serve

import "sync"

// Subscription is one delta-stream consumer. Receive from C; call Cancel
// when done. A subscriber that falls more than the channel buffer behind is
// dropped — its channel is closed after the buffered deltas drain — and
// Gap then reports the last seq that was enqueued for it, so the consumer
// (the SSE handler, which forwards a terminal `gap` event) can tell a
// resync-needed drop apart from an orderly shutdown.
type Subscription struct {
	C <-chan Delta

	b       *broadcaster
	ch      chan Delta
	id      int
	lastSeq uint64 // guarded by b.mu
	gapped  bool   // guarded by b.mu
}

// Cancel deregisters the subscription. Idempotent.
func (s *Subscription) Cancel() {
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	if _, ok := s.b.subs[s.id]; ok {
		delete(s.b.subs, s.id)
		close(s.ch)
	}
}

// Gap reports whether the subscription was dropped for falling behind, and
// if so the last delta seq enqueued before the drop.
func (s *Subscription) Gap() (lastSeq uint64, dropped bool) {
	s.b.mu.Lock()
	defer s.b.mu.Unlock()
	return s.lastSeq, s.gapped
}

// broadcaster fans deltas out to subscriptions and keeps the recent-delta
// ring the ?since= catch-up replays from. The ring holds deltas by value;
// their slices are shared with the immutable snapshots, so retaining them
// costs headers, not copies.
type broadcaster struct {
	mu     sync.Mutex
	subs   map[int]*Subscription
	nextID int
	closed bool

	ring    []Delta // consecutive seqs, oldest first
	ringCap int
}

func newBroadcaster(window int) *broadcaster {
	if window <= 0 {
		window = defaultFeedWindow
	}
	return &broadcaster{subs: make(map[int]*Subscription), ringCap: window}
}

// setWindow resizes the catch-up ring (writer -feed flag). Call before
// serving; shrinking drops the oldest deltas.
func (b *broadcaster) setWindow(n int) {
	if n <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ringCap = n
	if len(b.ring) > n {
		b.ring = append([]Delta(nil), b.ring[len(b.ring)-n:]...)
	}
}

// subscribe registers a consumer. On a closed broadcaster the returned
// subscription's channel is already closed (and not gap-marked).
func (b *broadcaster) subscribe() *Subscription {
	b.mu.Lock()
	defer b.mu.Unlock()
	ch := make(chan Delta, 64)
	sub := &Subscription{C: ch, ch: ch, b: b, id: b.nextID}
	b.nextID++
	if b.closed {
		close(ch)
		return sub
	}
	b.subs[sub.id] = sub
	return sub
}

// broadcast enqueues d for every subscription, dropping (and gap-marking)
// any whose buffer is full rather than stalling the producer. keep controls
// ring retention: the writer's restore-time publication is a degenerate
// empty delta that must never satisfy a catch-up, so it stays out.
func (b *broadcaster) broadcast(d Delta, keep bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if keep {
		b.ring = append(b.ring, d)
		if len(b.ring) > b.ringCap {
			// Amortized trim: slide rather than reallocating per delta.
			b.ring = append(b.ring[:0], b.ring[len(b.ring)-b.ringCap:]...)
		}
	}
	for id, sub := range b.subs {
		select {
		case sub.ch <- d:
			sub.lastSeq = d.Seq
		default: // slow consumer: drop it rather than stall analysis
			sub.gapped = true
			delete(b.subs, id)
			close(sub.ch)
		}
	}
}

// catchUp returns the deltas covering (since, upTo] when the ring still
// holds that range contiguously; ok=false sends the caller to the next
// catch-up source (segment store synthesis, then a full-state delta).
func (b *broadcaster) catchUp(since, upTo uint64) ([]Delta, bool) {
	if since >= upTo {
		return nil, true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]Delta, 0, upTo-since)
	for _, d := range b.ring {
		if d.Seq <= since || d.Seq > upTo {
			continue
		}
		if len(out) == 0 {
			if d.Seq != since+1 {
				return nil, false // ring no longer reaches back to since
			}
		} else if d.Seq != out[len(out)-1].Seq+1 {
			return nil, false // hole (should not happen; be safe)
		}
		out = append(out, d)
	}
	if uint64(len(out)) != upTo-since {
		return nil, false
	}
	return out, true
}

// closeAll terminates every subscription (server shutdown) without gap
// marking. New subscribe calls return an already-closed channel.
func (b *broadcaster) closeAll() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.closed = true
	for id, sub := range b.subs {
		delete(b.subs, id)
		close(sub.ch)
	}
}
