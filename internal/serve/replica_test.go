package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pinpoint/internal/core"
	"pinpoint/internal/delay"
	"pinpoint/internal/trace"
)

// startTail runs f.Run in the background and returns a wait function that
// fails the test if the follower does not finish cleanly in time.
func startTail(t *testing.T, f *Follower) (wait func(t *testing.T)) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	done := make(chan error, 1)
	go func() { done <- f.Run(ctx) }()
	return func(t *testing.T) {
		t.Helper()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("follower run: %v", err)
			}
		case <-time.After(2 * time.Minute):
			t.Fatalf("follower never reached the terminal snapshot (stuck at seq %d)",
				f.Snapshot().Seq)
		}
	}
}

// waitSeq polls until the follower's published snapshot reaches seq.
func waitSeq(t *testing.T, f *Follower, seq uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if f.Snapshot().Seq >= seq {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("follower stuck at seq %d, want >= %d", f.Snapshot().Seq, seq)
}

// apiURLs lists the completed-run read endpoints whose payloads the replica
// equivalence tests compare byte for byte.
func apiURLs(a *core.Analyzer) []string {
	urls := []string{"/api/status", "/api/alarms/delay", "/api/alarms/forwarding", "/api/events"}
	for _, asn := range a.Aggregator().ASes() {
		urls = append(urls, fmt.Sprintf("/api/magnitude?asn=%d", uint32(asn)))
	}
	return urls
}

func compareReplica(t *testing.T, writer, follower *Server, urls []string) {
	t.Helper()
	want := capturePayloads(t, writer, urls)
	got := capturePayloads(t, follower, urls)
	for _, u := range urls {
		if !bytes.Equal(got[u], want[u]) {
			t.Errorf("%s differs on the follower (%d vs %d bytes)", u, len(got[u]), len(want[u]))
		}
	}
}

// TestReplicaLiveTailEquivalence is the tentpole acceptance test: a
// follower tailing the feed live, from before the first result arrives,
// ends with completed-run API payloads byte-identical to the writer's —
// for both fixed-seed cases and regardless of the writer's worker count.
func TestReplicaLiveTailEquivalence(t *testing.T) {
	for _, tc := range []struct {
		name    string
		workers int
	}{
		{"ddos", 1},
		{"ddos", 4},
		{"ixp", 2},
	} {
		t.Run(fmt.Sprintf("%s_workers=%d", tc.name, tc.workers), func(t *testing.T) {
			w := openStoreRun(t, tc.name, tc.workers, t.TempDir())
			ts := httptest.NewServer(w.srv.Handler())
			defer ts.Close()

			f, err := NewFollower(FollowerOptions{URL: ts.URL})
			if err != nil {
				t.Fatal(err)
			}
			fsrv := NewServer(f, Options{Logf: func(string, ...any) {}})
			wait := startTail(t, f)

			w.ingest(t, 0)
			wait(t)

			compareReplica(t, w.srv, fsrv, apiURLs(w.a))
			w.close(t)
		})
	}
}

// TestReplicaResyncAfterDisconnect severs the feed connection twice
// mid-run with a catch-up ring too small to cover the gap, so the
// reconnects must resync through store-synthesized deltas — and still end
// byte-identical.
func TestReplicaResyncAfterDisconnect(t *testing.T) {
	w := openStoreRun(t, "ddos", 2, t.TempDir())
	w.pub.SetFeedWindow(2)
	ts := httptest.NewServer(w.srv.Handler())
	defer ts.Close()

	f, err := NewFollower(FollowerOptions{URL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	fsrv := NewServer(f, Options{Logf: func(string, ...any) {}})
	wait := startTail(t, f)

	drops := 0
	err = w.c.Platform.RunChunks(context.Background(), w.c.Start, w.c.End, 0, func(rs []trace.Result) error {
		w.a.ObserveBatch(rs)
		w.pub.ObserveResults(len(rs))
		if n := w.st.Len(); (drops == 0 && n >= 3) || (drops == 1 && n >= 6) {
			drops++
			ts.CloseClientConnections()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if drops != 2 {
		t.Fatalf("forced %d disconnects, want 2 (case too short?)", drops)
	}
	w.a.Flush()
	w.pub.Finish(nil)
	if serr := w.pub.StoreErr(); serr != nil {
		t.Fatalf("store error during run: %v", serr)
	}
	wait(t)

	compareReplica(t, w.srv, fsrv, apiURLs(w.a))
	w.close(t)
}

// TestReplicaResyncAcrossGenerationBump reconnects a follower whose
// resume window straddles a staleness-fallback generation bump: the
// catch-up (from the ring, or as a full-state delta when the ring cannot
// reach back) must hand over the re-derived event history exactly once —
// no duplicate, no missing events, payloads byte-identical.
func TestReplicaResyncAcrossGenerationBump(t *testing.T) {
	for _, tc := range []struct {
		name       string
		feedWindow int
	}{
		{"ring_catchup", 0},  // default window: replay the gen-bump delta itself
		{"full_fallback", 1}, // window too small: resync via one full-state delta
	} {
		t.Run(tc.name, func(t *testing.T) {
			a, pub, srv := newTestPipeline(t)
			if tc.feedWindow > 0 {
				pub.SetFeedWindow(tc.feedWindow)
			}
			ts := httptest.NewServer(srv.Handler())
			defer ts.Close()

			// Generous backoff: the generation bump below lands while the
			// follower is still disconnected, so its resume straddles it.
			f, err := NewFollower(FollowerOptions{
				URL:          ts.URL,
				ReconnectMin: 500 * time.Millisecond,
			})
			if err != nil {
				t.Fatal(err)
			}
			fsrv := NewServer(f, Options{Logf: func(string, ...any) {}})
			wait := startTail(t, f)

			for h := 0; h <= 5; h++ {
				bin := t0.Add(time.Duration(h) * time.Hour)
				dev := 1.0
				if h == 5 {
					dev = 50 // event bin
				}
				closeBin(a, bin, []delay.Alarm{mkDelayAlarm(bin, "10.1.0.1", "10.2.0.1", dev)}, nil)
			}
			waitSeq(t, f, 7) // bins 0..5 applied live
			if len(f.Snapshot().Events) == 0 {
				t.Fatal("no events before the rebuild; test is vacuous")
			}
			ts.CloseClientConnections()

			// An alarm landing in an already-processed bin forces the
			// aggregator to rebuild — the next close bumps the generation and
			// carries the full re-derived history.
			lateBin := t0.Add(2 * time.Hour)
			bin6 := t0.Add(6 * time.Hour)
			closeBin(a, bin6, []delay.Alarm{
				mkDelayAlarm(lateBin, "10.1.0.1", "10.2.0.1", 40),
				mkDelayAlarm(bin6, "10.1.0.1", "10.2.0.1", 1),
			}, nil)
			pub.Finish(nil)
			wait(t)

			if got, want := f.Snapshot().Gen(), pub.Snapshot().Gen(); got != want {
				t.Errorf("follower generation %d, writer %d", got, want)
			}
			urls := []string{"/api/status", "/api/alarms/delay", "/api/events",
				"/api/magnitude?asn=100", "/api/magnitude?asn=200"}
			compareReplica(t, srv, fsrv, urls)

			var evs []Event
			if err := json.Unmarshal(get(t, fsrv, "/api/events").Body.Bytes(), &evs); err != nil {
				t.Fatal(err)
			}
			seen := make(map[string]bool)
			for _, e := range evs {
				key := e.ASN + e.Bin.String() + e.Type
				if seen[key] {
					t.Fatalf("duplicate event on follower after rebuild: %+v", e)
				}
				seen[key] = true
			}
			want := a.Aggregator().Events(t0, t0.Add(12*time.Hour))
			if len(evs) != len(want) {
				t.Fatalf("follower serves %d events after rebuild, recompute has %d", len(evs), len(want))
			}
		})
	}
}

// TestReplicaStoreFileBootstrap boots a follower from the writer's own
// segment files (read-only) instead of replaying the feed: the mirror must
// land at seq n+1 for n records, adopt the writer's generation at the first
// hello, catch up over the feed, and serve byte-identical payloads —
// including /api/bins, which both sides read from the same segments.
func TestReplicaStoreFileBootstrap(t *testing.T) {
	dir := t.TempDir()
	w := openStoreRun(t, "ddos", 2, dir)
	w.ingest(t, 0)
	ts := httptest.NewServer(w.srv.Handler())
	defer ts.Close()

	f, err := NewFollower(FollowerOptions{
		URL:      ts.URL,
		StoreDir: dir,
		Meta: Meta{
			Case: w.c.Name, Description: w.c.Description,
			Start: w.c.Start, End: w.c.End,
		},
		BinSize: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := f.Snapshot().Seq, uint64(w.st.Len())+1; got != want {
		t.Fatalf("file bootstrap landed at seq %d, want %d (%d records)", got, want, w.st.Len())
	}
	if !f.HasStore() {
		t.Fatal("bootstrapped follower reports no store")
	}
	fsrv := NewServer(f, Options{Logf: func(string, ...any) {}})
	wait := startTail(t, f)
	wait(t)

	urls := append(apiURLs(w.a), "/api/bins")
	compareReplica(t, w.srv, fsrv, urls)

	// The bootstrap store also serves single-bin time travel.
	bins, ok := f.StoreBins()
	if !ok || len(bins) != w.st.Len() {
		t.Fatalf("follower StoreBins: ok=%v len=%d, store has %d", ok, len(bins), w.st.Len())
	}
	u := "/api/bins?bin=" + bins[len(bins)/2].Bin.Format(time.RFC3339)
	wantRec, gotRec := get(t, w.srv, u), get(t, fsrv, u)
	if gotRec.Code != 200 || !bytes.Equal(gotRec.Body.Bytes(), wantRec.Body.Bytes()) {
		t.Fatalf("%s: follower status %d, byte-identical=%v", u, gotRec.Code,
			bytes.Equal(gotRec.Body.Bytes(), wantRec.Body.Bytes()))
	}
	w.close(t)
}

// TestFollowerSSEDataJoin pins the SSE decode rule that successive data
// lines join with '\n' (the spec's framing): a payload split mid-token must
// surface as a decode error, not silently concatenate into a different
// value (here seq 12 from "1"+"2").
func TestFollowerSSEDataJoin(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/event-stream")
		h, err := json.Marshal(helloFor(&Snapshot{BinSize: time.Hour, Meta: Meta{Case: "ddos"}}))
		if err != nil {
			t.Error(err)
			return
		}
		fmt.Fprintf(w, "event: hello\ndata: %s\n\n", h)
		fmt.Fprint(w, "event: delta\ndata: {\"seq\":1\ndata: 2}\n\n")
	}))
	defer ts.Close()

	f, err := NewFollower(FollowerOptions{URL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	err = f.tail(context.Background())
	if err == nil || !strings.Contains(err.Error(), "decoding delta") {
		t.Fatalf("split-token delta: err=%v, want a delta decode error", err)
	}
	if got := f.Snapshot().Seq; got != 0 {
		t.Fatalf("follower applied seq %d from a corrupt payload", got)
	}
}

// TestReplicaResyncAcrossWriterRestart reconnects a follower across a
// writer restart: the restarted writer boots from the segment store under a
// bumped generation, and its fresh in-memory ring no longer reaches back to
// the follower's resume point, so the catch-up must be synthesized from the
// committed segments. Durable history survives a restart as a valid prefix
// of the follower's state, so those deltas are appends — the generation
// drift alone must NOT make the follower discard its event list and
// magnitude history (it used to: gen change was read as "full re-derived
// history", silently replacing everything with one bin's increment).
func TestReplicaResyncAcrossWriterRestart(t *testing.T) {
	dir := t.TempDir()

	// A proxy with a swappable backend keeps the follower's URL stable
	// across the restart; "down" rejects dials while the first incarnation
	// is being killed, so the follower cannot slip back in and catch up
	// before the gap has grown.
	down := http.Handler(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "writer restarting", http.StatusServiceUnavailable)
	}))
	var backend atomic.Pointer[http.Handler]
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		(*backend.Load()).ServeHTTP(w, r)
	}))
	defer ts.Close()

	w1 := openStoreRun(t, "ddos", 2, dir)
	h1 := w1.srv.Handler()
	backend.Store(&h1)

	f, err := NewFollower(FollowerOptions{
		URL:          ts.URL,
		ReconnectMin: 5 * time.Millisecond,
		ReconnectMax: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	fsrv := NewServer(f, Options{Logf: func(string, ...any) {}})
	wait := startTail(t, f)

	// Let the follower tail live until the run has produced events (so a
	// state-discarding resync would have something to lose), sever it, then
	// keep the writer running until more bins are durable before killing
	// it: the follower's resume point lands several bins behind the store.
	severedAt := 0
	err = w1.c.Platform.RunChunks(context.Background(), w1.c.Start, w1.c.End, 0, func(rs []trace.Result) error {
		w1.a.ObserveBatch(rs)
		w1.pub.ObserveResults(len(rs))
		if severedAt == 0 && len(w1.pub.Snapshot().Events) > 0 {
			waitSeq(t, f, w1.pub.Snapshot().Seq)
			severedAt = w1.st.Len()
			backend.Store(&down)
			ts.CloseClientConnections()
		}
		if severedAt > 0 && w1.st.Len() >= severedAt+4 {
			return errKill
		}
		return nil
	})
	if !errors.Is(err, errKill) {
		t.Fatalf("simulated crash never triggered: %v", err)
	}
	if severedAt == 0 {
		t.Fatal("follower was never severed (case produced no events?)")
	}
	w1.close(t)

	frozen := f.Snapshot()
	if len(frozen.Events) == 0 {
		t.Fatal("follower holds no events at the restart; the loss scenario is vacuous")
	}

	w2 := openStoreRun(t, "ddos", 1, dir)
	if got, had := w2.pub.Snapshot().Gen(), frozen.Gen(); got <= had {
		t.Fatalf("restart did not bump the generation (writer %d, follower %d); test is vacuous", got, had)
	}
	if frozen.Seq >= w2.pub.Snapshot().Seq {
		t.Fatalf("follower seq %d not behind the restored writer's %d; catch-up path not exercised", frozen.Seq, w2.pub.Snapshot().Seq)
	}
	// The restarted writer's ring is empty, so this catch-up is synthesized
	// from segments: every delta must be a plain append, never a resync.
	ds, ok := w2.pub.CatchUp(frozen.Seq, w2.pub.Snapshot().Seq)
	if !ok {
		t.Fatal("restored writer cannot serve store-synthesized catch-up")
	}
	for _, d := range ds {
		if d.Rebuild || d.Full {
			t.Fatalf("store-synthesized catch-up delta seq %d has Rebuild=%v Full=%v, want a plain append", d.Seq, d.Rebuild, d.Full)
		}
	}

	h2 := w2.srv.Handler()
	backend.Store(&h2)
	w2.ingest(t, 0)
	wait(t)

	if got, want := f.Snapshot().Gen(), w2.pub.Snapshot().Gen(); got != want {
		t.Errorf("follower generation %d, restarted writer %d", got, want)
	}
	if got := f.Snapshot(); len(got.Events) < len(frozen.Events) {
		t.Errorf("follower lost events across the restart resync: %d before, %d after", len(frozen.Events), len(got.Events))
	}
	compareReplica(t, w2.srv, fsrv, apiURLs(w2.a))
	w2.close(t)
}

// TestReplicaChaining pins that replicas chain: a second-tier follower
// tailing a first-tier follower's own feed converges to the same bytes.
func TestReplicaChaining(t *testing.T) {
	w := openStoreRun(t, "ddos", 2, t.TempDir())
	ts := httptest.NewServer(w.srv.Handler())
	defer ts.Close()

	f1, err := NewFollower(FollowerOptions{URL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	f1srv := NewServer(f1, Options{Logf: func(string, ...any) {}})
	ts1 := httptest.NewServer(f1srv.Handler())
	defer ts1.Close()
	wait1 := startTail(t, f1)

	f2, err := NewFollower(FollowerOptions{URL: ts1.URL})
	if err != nil {
		t.Fatal(err)
	}
	f2srv := NewServer(f2, Options{Logf: func(string, ...any) {}})
	wait2 := startTail(t, f2)

	w.ingest(t, 0)
	wait1(t)
	wait2(t)

	urls := apiURLs(w.a)
	compareReplica(t, w.srv, f1srv, urls)
	compareReplica(t, w.srv, f2srv, urls)
	w.close(t)
}
