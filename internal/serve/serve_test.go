package serve

import (
	"encoding/json"
	"errors"
	"math"
	"net/http/httptest"
	"net/netip"
	"strings"
	"testing"
	"time"

	"pinpoint/internal/core"
	"pinpoint/internal/delay"
	"pinpoint/internal/forwarding"
	"pinpoint/internal/ipmap"
	"pinpoint/internal/stats"
	"pinpoint/internal/trace"
)

var t0 = time.Date(2015, 5, 1, 0, 0, 0, 0, time.UTC)

// newTestPipeline builds a real analyzer + publisher + server whose state
// tests drive synthetically through the analyzer's hooks — the same calls
// core makes, in the same order.
func newTestPipeline(t *testing.T) (*core.Analyzer, *Publisher, *Server) {
	t.Helper()
	var tbl ipmap.Table
	tbl.MustAdd("10.1.0.0/16", 100)
	tbl.MustAdd("10.2.0.0/16", 200)
	cfg := core.Config{}
	cfg.Events.Window = 6 * time.Hour
	cfg.Events.Threshold = 3
	a := core.New(cfg, func(int) (ipmap.ASN, bool) { return 0, false }, &tbl)
	t.Cleanup(a.Close)
	pub := NewPublisher(a, Meta{
		Case: "test", Description: "synthetic pipeline",
		Start: t0, End: t0.Add(12 * time.Hour),
	})
	srv := NewServer(pub, Options{Logf: func(string, ...any) {}})
	return a, pub, srv
}

func mkDelayAlarm(bin time.Time, near, far string, dev float64) delay.Alarm {
	return delay.Alarm{
		Bin:       bin,
		Link:      trace.LinkKey{Near: netip.MustParseAddr(near), Far: netip.MustParseAddr(far)},
		Observed:  stats.MedianCI{Median: 10 + dev, N: 12},
		Reference: stats.MedianCI{Median: 10, N: 30},
		Deviation: dev, DiffMS: dev, Probes: 9, ASes: 4,
	}
}

func mkFwdAlarm(bin time.Time, router string, rho float64) forwarding.Alarm {
	return forwarding.Alarm{
		Bin:    bin,
		Router: netip.MustParseAddr(router),
		Dst:    netip.MustParseAddr("198.51.100.1"),
		Rho:    rho,
		Hops:   []forwarding.HopScore{{Hop: netip.MustParseAddr("10.2.0.9"), Responsibility: -0.4}},
	}
}

// closeBin replays exactly what core does when a bin closes: aggregator
// updates and alarm hooks first, then OnBinClose.
func closeBin(a *core.Analyzer, bin time.Time, das []delay.Alarm, fas []forwarding.Alarm) {
	agg := a.Aggregator()
	agg.ObserveBin(bin)
	for _, al := range das {
		agg.AddDelayAlarm(al)
		a.OnDelayAlarm(al)
	}
	for _, al := range fas {
		agg.AddForwardingAlarm(al)
		a.OnForwardingAlarm(al)
	}
	a.OnBinClose(bin)
}

func get(t *testing.T, srv *Server, url string, hdr ...string) *httptest.ResponseRecorder {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	for i := 0; i+1 < len(hdr); i += 2 {
		req.Header.Set(hdr[i], hdr[i+1])
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	return rec
}

// Regression: before the first alarm/event the legacy handlers encoded nil
// slices, serving the JSON literal `null`; /api/magnitude served `{}` with
// neither family key. Empty collections must serve as empty arrays.
func TestEmptyCollectionsServeArraysNotNull(t *testing.T) {
	_, _, srv := newTestPipeline(t)
	for _, url := range []string{"/api/alarms/delay", "/api/alarms/forwarding", "/api/events"} {
		rec := get(t, srv, url)
		if rec.Code != 200 {
			t.Fatalf("%s: status %d", url, rec.Code)
		}
		if body := rec.Body.String(); body != "[]\n" {
			t.Errorf("%s body = %q, want \"[]\\n\"", url, body)
		}
	}
	rec := get(t, srv, "/api/magnitude?asn=100")
	want := "{\n  \"delay\": [],\n  \"forwarding\": []\n}\n"
	if rec.Body.String() != want {
		t.Errorf("magnitude body = %q, want %q", rec.Body.String(), want)
	}
	// Filtered empty results are arrays too.
	if body := get(t, srv, "/api/alarms/delay?link=nope").Body.String(); body != "[]\n" {
		t.Errorf("filtered empty body = %q", body)
	}
}

// Regression: a failed run used to flip done=true and only log the error,
// making /api/status indistinguishable from a successful completion.
func TestFailedRunSurfacesInStatusAndIndex(t *testing.T) {
	a, pub, srv := newTestPipeline(t)
	closeBin(a, t0, []delay.Alarm{mkDelayAlarm(t0, "10.1.0.1", "10.2.0.1", 1)}, nil)
	pub.Finish(errors.New("open dump: no such file"))

	var st struct {
		Done   bool   `json:"done"`
		Failed bool   `json:"failed"`
		Err    string `json:"error"`
	}
	rec := get(t, srv, "/api/status")
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Done {
		t.Error("failed run reports done=true")
	}
	if !st.Failed || !strings.Contains(st.Err, "no such file") {
		t.Errorf("failed run: failed=%v err=%q, want failure surfaced", st.Failed, st.Err)
	}
	if idx := get(t, srv, "/").Body.String(); !strings.Contains(idx, "FAILED: open dump: no such file") {
		t.Errorf("index page hides the failure: %q", idx)
	}
	// Finish is terminal and idempotent: a later Finish(nil) cannot
	// retroactively mark the run successful.
	pub.Finish(nil)
	if s := pub.Snapshot(); !s.Failed || s.Done {
		t.Errorf("second Finish overwrote the failure: done=%v failed=%v", s.Done, s.Failed)
	}
}

// Regression: the legacy writeJSON streamed the encoder straight into the
// ResponseWriter and called http.Error after a partial body on failure.
// Encoding now happens before any byte is written: the client gets a clean
// 500, never a truncated 200.
func TestEncodeErrorsProduceClean500(t *testing.T) {
	var logged []string
	srv := NewServer(&Publisher{}, Options{Logf: func(f string, a ...any) {
		logged = append(logged, f)
	}})
	rec := httptest.NewRecorder()
	srv.writeJSON(rec, math.NaN()) // unencodable
	if rec.Code != 500 {
		t.Fatalf("status %d, want 500", rec.Code)
	}
	if b := rec.Body.String(); strings.Contains(b, "{") || strings.Contains(b, "[") {
		t.Errorf("partial JSON leaked into the error response: %q", b)
	}
	if len(logged) == 0 {
		t.Error("encode failure was not logged")
	}
}

func TestMidRunAndPostRunSnapshots(t *testing.T) {
	a, pub, srv := newTestPipeline(t)
	if got := pub.Snapshot().Seq; got != 1 {
		t.Fatalf("initial snapshot seq = %d, want 1", got)
	}

	closeBin(a, t0, []delay.Alarm{mkDelayAlarm(t0, "10.1.0.1", "10.2.0.1", 1)}, nil)
	mid := pub.Snapshot()
	if mid.Complete() {
		t.Error("mid-run snapshot reports complete")
	}
	if len(mid.DelayAlarms) != 1 || !mid.LastBin.Equal(t0) {
		t.Errorf("mid-run snapshot: %d alarms, lastBin %v", len(mid.DelayAlarms), mid.LastBin)
	}

	// Quiet history, then a big spike: a magnitude peak against a calm
	// window makes an event. The old snapshot must not change throughout.
	for h := 1; h <= 4; h++ {
		bin := t0.Add(time.Duration(h) * time.Hour)
		closeBin(a, bin, []delay.Alarm{mkDelayAlarm(bin, "10.1.0.1", "10.2.0.1", 1)}, nil)
	}
	spikeBin := t0.Add(5 * time.Hour)
	closeBin(a, spikeBin,
		[]delay.Alarm{mkDelayAlarm(spikeBin, "10.1.0.1", "10.2.0.1", 50)},
		[]forwarding.Alarm{mkFwdAlarm(spikeBin, "10.1.0.1", -0.6)})
	if len(mid.DelayAlarms) != 1 || len(mid.Events) != 0 {
		t.Error("published snapshot mutated by a later bin close")
	}
	cur := pub.Snapshot()
	if len(cur.DelayAlarms) != 6 || len(cur.FwdAlarms) != 1 {
		t.Errorf("post-close snapshot: %d delay, %d fwd", len(cur.DelayAlarms), len(cur.FwdAlarms))
	}
	if len(cur.Events) == 0 {
		t.Error("spike produced no event in the snapshot")
	}

	pub.Finish(nil)
	fin := pub.Snapshot()
	if !fin.Done || fin.Failed {
		t.Errorf("final snapshot done=%v failed=%v", fin.Done, fin.Failed)
	}
	var evs []Event
	if err := json.Unmarshal(get(t, srv, "/api/events").Body.Bytes(), &evs); err != nil {
		t.Fatal(err)
	}
	if len(evs) != len(fin.Events) {
		t.Errorf("endpoint serves %d events, snapshot has %d", len(evs), len(fin.Events))
	}
	// Magnitude is served from the published region and carries both keys.
	var mag struct {
		Delay      []Point `json:"delay"`
		Forwarding []Point `json:"forwarding"`
	}
	if err := json.Unmarshal(get(t, srv, "/api/magnitude?asn=100").Body.Bytes(), &mag); err != nil {
		t.Fatal(err)
	}
	if len(mag.Delay) == 0 {
		t.Error("AS100 delay magnitude empty after completed run")
	}
}

func TestFiltersAndPagination(t *testing.T) {
	a, pub, srv := newTestPipeline(t)
	linkA, linkB := "10.1.0.1>10.2.0.1", "10.1.0.2>10.2.0.2"
	for h := 0; h < 4; h++ {
		bin := t0.Add(time.Duration(h) * time.Hour)
		closeBin(a, bin, []delay.Alarm{
			mkDelayAlarm(bin, "10.1.0.1", "10.2.0.1", float64(h)+1),
			mkDelayAlarm(bin, "10.1.0.2", "10.2.0.2", 0.5),
		}, []forwarding.Alarm{mkFwdAlarm(bin, "10.1.0.1", -0.3-0.1*float64(h))})
	}
	pub.Finish(nil)

	decode := func(rec *httptest.ResponseRecorder, v any) {
		t.Helper()
		if rec.Code != 200 {
			t.Fatalf("status %d: %s", rec.Code, rec.Body.String())
		}
		if err := json.Unmarshal(rec.Body.Bytes(), v); err != nil {
			t.Fatal(err)
		}
	}

	var das []DelayAlarm
	decode(get(t, srv, "/api/alarms/delay"), &das)
	if len(das) != 8 {
		t.Fatalf("unfiltered: %d alarms, want 8", len(das))
	}

	// Time window [t0+1h, t0+3h) → 2 bins × 2 alarms.
	decode(get(t, srv, "/api/alarms/delay?from="+t0.Add(time.Hour).Format(time.RFC3339)+
		"&to="+t0.Add(3*time.Hour).Format(time.RFC3339)), &das)
	if len(das) != 4 {
		t.Errorf("time filter: %d alarms, want 4", len(das))
	}
	for _, al := range das {
		if al.Bin.Before(t0.Add(time.Hour)) || !al.Bin.Before(t0.Add(3*time.Hour)) {
			t.Errorf("alarm bin %v outside filter window", al.Bin)
		}
	}

	decode(get(t, srv, "/api/alarms/delay?link="+linkA), &das)
	if len(das) != 4 {
		t.Errorf("link filter: %d alarms, want 4", len(das))
	}
	decode(get(t, srv, "/api/alarms/delay?min_deviation=3"), &das)
	if len(das) != 2 { // deviations 3 and 4 on linkA
		t.Errorf("min_deviation filter: %d alarms, want 2", len(das))
	}
	_ = linkB

	var fas []FwdAlarm
	decode(get(t, srv, "/api/alarms/forwarding?max_rho=-0.45"), &fas)
	if len(fas) != 2 { // ρ = -0.5, -0.6
		t.Errorf("max_rho filter: %d alarms, want 2", len(fas))
	}

	// Cursor pagination walks the full set without gaps or repeats.
	var walked []DelayAlarm
	cursor := ""
	for pages := 0; ; pages++ {
		if pages > 10 {
			t.Fatal("pagination did not terminate")
		}
		url := "/api/alarms/delay?limit=3"
		if cursor != "" {
			url += "&cursor=" + cursor
		}
		var pg struct {
			Items      []DelayAlarm `json:"items"`
			NextCursor string       `json:"next_cursor"`
		}
		decode(get(t, srv, url), &pg)
		if len(pg.Items) > 3 {
			t.Fatalf("page of %d > limit 3", len(pg.Items))
		}
		walked = append(walked, pg.Items...)
		if pg.NextCursor == "" {
			break
		}
		cursor = pg.NextCursor
	}
	if len(walked) != 8 {
		t.Fatalf("pagination walked %d alarms, want 8", len(walked))
	}
	decode(get(t, srv, "/api/alarms/delay"), &das)
	for i := range das {
		if walked[i] != das[i] {
			t.Errorf("paginated item %d differs from unpaginated listing", i)
		}
	}

	// Filters compose with pagination.
	var pg struct {
		Items      []DelayAlarm `json:"items"`
		NextCursor string       `json:"next_cursor"`
	}
	decode(get(t, srv, "/api/alarms/delay?link="+linkA+"&limit=3"), &pg)
	if len(pg.Items) != 3 || pg.NextCursor == "" {
		t.Errorf("filtered page: %d items, next=%q", len(pg.Items), pg.NextCursor)
	}

	// Events filters.
	var evs []Event
	decode(get(t, srv, "/api/events?type=delay-change"), &evs)
	for _, e := range evs {
		if e.Type != "delay-change" {
			t.Errorf("type filter leaked %q", e.Type)
		}
	}
	decode(get(t, srv, "/api/events?asn=AS100"), &evs)
	for _, e := range evs {
		if e.ASN != "AS100" {
			t.Errorf("asn filter leaked %q", e.ASN)
		}
	}

	// Invalid parameters are rejected up front.
	for _, bad := range []string{
		"/api/alarms/delay?from=yesterday",
		"/api/alarms/delay?limit=0",
		"/api/alarms/delay?limit=x",
		"/api/alarms/delay?cursor=-1",
		"/api/events?min_magnitude=big",
		"/api/magnitude?asn=100&to=notatime",
	} {
		if rec := get(t, srv, bad); rec.Code != 400 {
			t.Errorf("%s: status %d, want 400", bad, rec.Code)
		}
	}
}

func TestETagRevalidation(t *testing.T) {
	a, pub, srv := newTestPipeline(t)
	closeBin(a, t0, []delay.Alarm{mkDelayAlarm(t0, "10.1.0.1", "10.2.0.1", 2)}, nil)

	// Mid-run: snapshots are immutable between publications, so polling gets
	// a validator that is stable across no-op polls…
	midETag := get(t, srv, "/api/alarms/delay").Header().Get("ETag")
	if midETag == "" {
		t.Fatal("mid-run response served no ETag")
	}
	if again := get(t, srv, "/api/alarms/delay").Header().Get("ETag"); again != midETag {
		t.Errorf("mid-run ETag unstable across no-op polls: %q then %q", midETag, again)
	}
	if rec := get(t, srv, "/api/alarms/delay", "If-None-Match", midETag); rec.Code != 304 {
		t.Errorf("mid-run revalidation status %d, want 304", rec.Code)
	}
	midMag := get(t, srv, "/api/magnitude?asn=100").Header().Get("ETag")
	if midMag == "" {
		t.Fatal("mid-run magnitude response served no ETag")
	}
	if rec := get(t, srv, "/api/magnitude?asn=100", "If-None-Match", midMag); rec.Code != 304 {
		t.Errorf("mid-run magnitude revalidation status %d, want 304", rec.Code)
	}
	midStatus := get(t, srv, "/api/status").Header().Get("ETag")
	if midStatus == "" {
		t.Fatal("mid-run status served no ETag")
	}
	if rec := get(t, srv, "/api/status", "If-None-Match", midStatus); rec.Code != 304 {
		t.Errorf("mid-run status revalidation status %d, want 304", rec.Code)
	}

	// …and that a bin close invalidates: the next snapshot's bytes differ,
	// so a conditional GET with the stale validator gets a fresh 200.
	bin1 := t0.Add(time.Hour)
	closeBin(a, bin1, []delay.Alarm{mkDelayAlarm(bin1, "10.1.0.2", "10.2.0.2", 2)}, nil)
	rec := get(t, srv, "/api/alarms/delay", "If-None-Match", midETag)
	if rec.Code != 200 {
		t.Errorf("post-close revalidation status %d, want 200", rec.Code)
	}
	if etag := rec.Header().Get("ETag"); etag == midETag {
		t.Error("bin close did not rotate the alarms ETag")
	}
	if rec := get(t, srv, "/api/magnitude?asn=100", "If-None-Match", midMag); rec.Code != 200 {
		t.Errorf("post-close magnitude revalidation status %d, want 200", rec.Code)
	}
	if rec := get(t, srv, "/api/status", "If-None-Match", midStatus); rec.Code != 200 {
		t.Errorf("post-close status revalidation status %d, want 200", rec.Code)
	}

	pub.Finish(nil)
	rec = get(t, srv, "/api/alarms/delay")
	etag := rec.Header().Get("ETag")
	if etag == "" {
		t.Fatal("completed run served no ETag")
	}
	rec304 := get(t, srv, "/api/alarms/delay", "If-None-Match", etag)
	if rec304.Code != 304 {
		t.Fatalf("revalidation status %d, want 304", rec304.Code)
	}
	if rec304.Body.Len() != 0 {
		t.Errorf("304 carried a body: %q", rec304.Body.String())
	}
	if rec := get(t, srv, "/api/alarms/delay", "If-None-Match", `"different"`); rec.Code != 200 {
		t.Errorf("stale validator status %d, want 200", rec.Code)
	}
	// Repeated GETs serve identical bytes (the pre-encoded payload).
	if got := get(t, srv, "/api/alarms/delay").Body.String(); got != rec.Body.String() {
		t.Error("pre-encoded payload changed between identical GETs")
	}
	// Parameterized magnitude reads revalidate on completed runs too.
	m := get(t, srv, "/api/magnitude?asn=100")
	if metag := m.Header().Get("ETag"); metag == "" {
		t.Error("completed magnitude response has no ETag")
	} else if rec := get(t, srv, "/api/magnitude?asn=100", "If-None-Match", metag); rec.Code != 304 {
		t.Errorf("magnitude revalidation status %d, want 304", rec.Code)
	}
	// /api/status on the terminal snapshot revalidates as well.
	st := get(t, srv, "/api/status")
	if setag := st.Header().Get("ETag"); setag == "" {
		t.Error("terminal status has no ETag")
	}
}

// Regression: an out-of-order alarm forces the aggregator to rebuild its
// incremental event history, and CloseBins then returns the full
// re-derived list. The publisher must resynchronize its wire-form mirror
// instead of appending that list after the stale copy — no duplicate
// events may ever reach a snapshot.
func TestEventMirrorSurvivesStalenessRebuild(t *testing.T) {
	a, pub, srv := newTestPipeline(t)
	for h := 0; h <= 5; h++ {
		bin := t0.Add(time.Duration(h) * time.Hour)
		dev := 1.0
		if h == 5 {
			dev = 50 // event bin
		}
		closeBin(a, bin, []delay.Alarm{mkDelayAlarm(bin, "10.1.0.1", "10.2.0.1", dev)}, nil)
	}
	if got := len(pub.Snapshot().Events); got == 0 {
		t.Fatal("no events before the rebuild; test is vacuous")
	}
	preRebuild := pub.Snapshot().Events

	// An alarm landing in an already-processed bin marks the region stale;
	// the next close rebuilds the whole history.
	lateBin := t0.Add(2 * time.Hour)
	bin6 := t0.Add(6 * time.Hour)
	closeBin(a, bin6, []delay.Alarm{
		mkDelayAlarm(lateBin, "10.1.0.1", "10.2.0.1", 40),
		mkDelayAlarm(bin6, "10.1.0.1", "10.2.0.1", 1),
	}, nil)
	pub.Finish(nil)

	var evs []Event
	if err := json.Unmarshal(get(t, srv, "/api/events").Body.Bytes(), &evs); err != nil {
		t.Fatal(err)
	}
	seen := make(map[string]bool)
	for _, e := range evs {
		key := e.ASN + e.Bin.String() + e.Type
		if seen[key] {
			t.Fatalf("duplicate event after rebuild: %+v\nfull list: %v", e, evs)
		}
		seen[key] = true
	}
	// The re-derived list matches a clean recomputation.
	want := a.Aggregator().Events(t0, t0.Add(12*time.Hour))
	if len(evs) != len(want) {
		t.Fatalf("served %d events after rebuild, recompute has %d", len(evs), len(want))
	}
	// Pre-rebuild snapshots kept their own (old-generation) history.
	for i, e := range preRebuild {
		if e.Bin.After(t0.Add(5 * time.Hour)) {
			t.Errorf("pre-rebuild snapshot event %d mutated: %+v", i, e)
		}
	}
}
