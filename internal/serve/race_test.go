package serve

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pinpoint/internal/atlas"
	"pinpoint/internal/core"
	"pinpoint/internal/netsim"
	"pinpoint/internal/trace"
)

// TestConcurrentReadsDuringIngest hammers every endpoint from several
// goroutines while the analysis goroutine ingests a live run — the
// snapshot model's core claim, checked under -race in CI: handlers share
// no lock with ObserveBatch, and every response is internally consistent.
func TestConcurrentReadsDuringIngest(t *testing.T) {
	topo, err := netsim.Generate(netsim.TopoConfig{
		Seed: 77, Tier1: 2, Transit: 5, Stub: 20,
		Roots: 1, RootInstances: 3, Anchors: 2, IXPs: 1, IXPMembers: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Date(2015, 11, 28, 0, 0, 0, 0, time.UTC)
	sc := netsim.NewScenario(netsim.Event{
		Name: "ddos", Kind: netsim.EventCongestion,
		From: topo.Roots[0].Sites[0], To: topo.Roots[0].Instances[0], Both: true,
		ExtraDelayMS: 60, Loss: 0.02,
		Start: start.Add(3 * time.Hour), End: start.Add(5 * time.Hour),
	})
	n, err := topo.Build(sc)
	if err != nil {
		t.Fatal(err)
	}
	p := atlas.NewPlatform(n, 99, netsim.TracerouteOpts{})
	p.AddProbes(topo.ProbeSites())
	p.AddBuiltin(topo.Roots[0].Addr)

	end := start.Add(8 * time.Hour)
	a := core.New(core.Config{Workers: 2}, p.ProbeASN, n.Prefixes())
	defer a.Close()
	pub := NewPublisher(a, Meta{Case: "race", Description: "race harness", Start: start, End: end})
	srv := NewServer(pub, Options{Logf: func(string, ...any) {}})

	var analysisDone atomic.Bool
	runErr := make(chan error, 1)
	go func() {
		err := p.RunChunks(context.Background(), start, end, 0, func(rs []trace.Result) error {
			a.ObserveBatch(rs)
			pub.ObserveResults(len(rs))
			return nil
		})
		a.Flush()
		pub.Finish(err)
		analysisDone.Store(true)
		runErr <- err
	}()

	urls := []string{
		"/api/status",
		"/api/alarms/delay",
		"/api/alarms/forwarding",
		"/api/events",
		"/api/magnitude?asn=1",
		"/api/alarms/delay?limit=5",
		"/",
	}
	var wg sync.WaitGroup
	var reads atomic.Int64
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; !analysisDone.Load() || i < 50; i++ {
				url := urls[(g+i)%len(urls)]
				rec := httptest.NewRecorder()
				srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", url, nil))
				if rec.Code != 200 {
					t.Errorf("%s: status %d", url, rec.Code)
					return
				}
				reads.Add(1)
				if analysisDone.Load() && i >= 50 {
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if err := <-runErr; err != nil {
		t.Fatal(err)
	}
	if reads.Load() == 0 {
		t.Fatal("no reads executed")
	}

	// After completion the served state is the full analysis.
	var st struct {
		Done    bool `json:"done"`
		Results int  `json:"results"`
	}
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/api/status", nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if !st.Done || st.Results != a.Results() {
		t.Errorf("final status done=%v results=%d (analyzer %d)", st.Done, st.Results, a.Results())
	}
}
