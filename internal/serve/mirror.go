package serve

// mirror is the snapshot-assembly core: the pure append-only read-model
// state out of which every Snapshot is built, with no knowledge of where
// its increments come from. The writer drives it from the analyzer's hooks
// (alarm appends, bin closes); a follower drives it by applying decoded
// feed deltas; the segment-store boot path drives it from committed
// records via the same deltas. All three share the invariants that make
// lock-free publication sound: slices only ever grow (snapshots hold
// fixed-length prefixes), and a rebuild (Full or Rebuild delta, staleness
// resync) allocates fresh storage instead of mutating what previous
// snapshots still reference.

import (
	"fmt"
	"time"

	"pinpoint/internal/ipmap"
	"pinpoint/internal/segstore"
	"pinpoint/internal/timeseries"
)

type mirror struct {
	meta    Meta
	binSize time.Duration

	seq     uint64
	gen     uint64 // aggregator rebuild generation the mirrors track
	lastBin time.Time
	results int
	idents  Identities

	delay []DelayAlarm // append-only; snapshots hold prefixes
	fwd   []FwdAlarm
	evs   []Event // wire-form mirror of the aggregator's event list

	// Magnitude region: dense per-AS points over [magStart, magThrough).
	// The writer swaps in the aggregator's own point-in-time maps; a
	// follower appends feed rows into maps it owns. Either way assemble
	// publishes fixed-length prefixes.
	delayMag, fwdMag     map[ipmap.ASN][]timeseries.Point
	magStart, magThrough time.Time

	done, failed bool
	errMsg       string
}

// assemble builds the immutable snapshot of the mirror's current state.
func (m *mirror) assemble() *Snapshot {
	snap := &Snapshot{
		Seq:         m.seq,
		Meta:        m.meta,
		BinSize:     m.binSize,
		LastBin:     m.lastBin,
		Results:     m.results,
		Done:        m.done,
		Failed:      m.failed,
		Err:         m.errMsg,
		Identities:  m.idents,
		DelayAlarms: m.delay[:len(m.delay):len(m.delay)],
		FwdAlarms:   m.fwd[:len(m.fwd):len(m.fwd)],
		Events:      m.evs[:len(m.evs):len(m.evs)],
		evGen:       m.gen,
	}
	if m.delayMag != nil || m.fwdMag != nil {
		snap.delayMag = clipMag(m.delayMag)
		snap.fwdMag = clipMag(m.fwdMag)
		snap.MagStart, snap.MagEnd = m.magStart, m.magThrough
	}
	return snap
}

func clipMag(src map[ipmap.ASN][]timeseries.Point) map[ipmap.ASN][]timeseries.Point {
	out := make(map[ipmap.ASN][]timeseries.Point, len(src))
	for asn, pts := range src {
		out[asn] = pts[:len(pts):len(pts)]
	}
	return out
}

// apply advances the mirror by one decoded feed delta. The caller has
// already handled sequencing (skipping stale deltas, detecting gaps); apply
// only interprets content:
//
//   - Full replaces the entire state.
//   - Rebuild replaces the event list and magnitude history (the delta
//     carries the full re-derivation) while alarms stay append-only —
//     exactly how the writer's own mirrors resynchronize on a staleness
//     rebuild.
//   - Otherwise everything appends. Gen is adopted as bookkeeping either
//     way: a gen change WITHOUT Rebuild (writer restart, store-synthesized
//     catch-up) means the history stayed append-consistent, so treating it
//     as a resync would silently discard the mirror's valid prefix.
//   - A nil Identities means "keep the previous value" (store-synthesized
//     deltas cannot carry it).
func (m *mirror) apply(d *Delta) {
	switch {
	case d.Full:
		m.delay = append([]DelayAlarm(nil), d.DelayAlarms...)
		m.fwd = append([]FwdAlarm(nil), d.FwdAlarms...)
		m.evs = append([]Event(nil), d.Events...)
		m.delayMag, m.fwdMag = nil, nil
		m.magStart, m.magThrough = time.Time{}, time.Time{}
		if !d.MagThrough.IsZero() {
			m.delayMag = make(map[ipmap.ASN][]timeseries.Point)
			m.fwdMag = make(map[ipmap.ASN][]timeseries.Point)
			applyMagRows(m.delayMag, d.DelayMag)
			applyMagRows(m.fwdMag, d.FwdMag)
			m.magStart, m.magThrough = d.MagStart, d.MagThrough
		}
		m.lastBin = d.Bin
	case d.Rebuild:
		// Staleness rebuild upstream: the event list and magnitude history
		// were re-derived from scratch and this delta carries them whole.
		// Fresh storage — published snapshots keep their old prefixes.
		m.evs = append([]Event(nil), d.Events...)
		m.delayMag = make(map[ipmap.ASN][]timeseries.Point)
		m.fwdMag = make(map[ipmap.ASN][]timeseries.Point)
		applyMagRows(m.delayMag, d.DelayMag)
		applyMagRows(m.fwdMag, d.FwdMag)
		if !d.MagThrough.IsZero() {
			m.magStart, m.magThrough = d.MagStart, d.MagThrough
		} else {
			m.magStart, m.magThrough = time.Time{}, time.Time{}
			m.delayMag, m.fwdMag = nil, nil
		}
		m.delay = append(m.delay, d.DelayAlarms...)
		m.fwd = append(m.fwd, d.FwdAlarms...)
		if !d.Bin.IsZero() {
			m.lastBin = d.Bin
		}
	default:
		m.delay = append(m.delay, d.DelayAlarms...)
		m.fwd = append(m.fwd, d.FwdAlarms...)
		m.evs = append(m.evs, d.Events...)
		if len(d.DelayMag) > 0 || len(d.FwdMag) > 0 || !d.MagThrough.IsZero() {
			if m.delayMag == nil {
				m.delayMag = make(map[ipmap.ASN][]timeseries.Point)
				m.fwdMag = make(map[ipmap.ASN][]timeseries.Point)
			}
			applyMagRows(m.delayMag, d.DelayMag)
			applyMagRows(m.fwdMag, d.FwdMag)
			m.magStart, m.magThrough = d.MagStart, d.MagThrough
		}
		if !d.Bin.IsZero() {
			m.lastBin = d.Bin
		}
	}
	m.seq = d.Seq
	m.gen = d.Gen
	m.results = d.Results
	if d.Identities != nil {
		m.idents = *d.Identities
	}
	if d.Done {
		m.done = true
	}
	if d.Failed {
		m.failed = true
		m.errMsg = d.Err
	}
}

func applyMagRows(dst map[ipmap.ASN][]timeseries.Point, rows []MagRow) {
	for _, r := range rows {
		asn := ipmap.ASN(r.ASN)
		dst[asn] = append(dst[asn], timeseries.Point{T: r.T, V: r.V})
	}
}

// restoreFromRecords rebuilds the mirror from a segment store's committed
// records — the follower's local-file bootstrap, sharing the record→delta
// conversion with the writer's catch-up synthesis. After n records the
// mirror sits at seq n+1 (the same position the writer's own store boot
// seeds), so a subsequent feed connection resumes with ?since=n+1. Returns
// the /api/bins index alongside.
func (m *mirror) restoreFromRecords(st *segstore.Store) ([]BinSummary, error) {
	n := st.Len()
	bins := make([]BinSummary, 0, n)
	var rec segstore.BinRecord
	for i := 0; i < n; i++ {
		if err := st.Record(i, &rec); err != nil {
			return nil, fmt.Errorf("serve: decoding committed segment %d: %w", i, err)
		}
		d := deltaFromRecord(&rec, uint64(i+2), m.gen, m.binSize)
		m.apply(&d)
		bins = append(bins, BinSummary{
			Bin: rec.Bin, Results: int(rec.Results),
			DelayAlarms: len(rec.Delay), FwdAlarms: len(rec.Fwd), Events: len(rec.Events),
		})
	}
	return bins, nil
}
