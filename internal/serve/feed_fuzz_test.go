package serve

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"
)

// FuzzFeedDecode pins the follower's half of the feed codec: decodeDelta
// (and decodeHello) must never panic on arbitrary bytes, and for any delta
// decodeDelta accepts, encode∘decode is the identity on the encoded form —
// the byte-identity guarantee of the replication feed rests on exactly this
// round trip.
func FuzzFeedDecode(f *testing.F) {
	bin := time.Date(2015, 5, 1, 3, 0, 0, 0, time.UTC)
	ids := Identities{Addrs: 46, Links: 69, Flows: 114, Routers: 39}
	seeds := []Delta{
		{Seq: 1, Gen: 0, Results: 0, DelayAlarms: []DelayAlarm{}, FwdAlarms: []FwdAlarm{}, Events: []Event{}},
		{
			Seq: 5, Gen: 2, Bin: bin, Results: 22272,
			DelayAlarms: []DelayAlarm{{
				Bin: bin, Link: "10.1.0.1>10.2.0.1",
				MedianMS: 12.25, RefMS: 10, ShiftMS: 2.25, Deviation: 7.5,
				Probes: 9, ASes: 4,
			}},
			FwdAlarms: []FwdAlarm{{
				Bin: bin, Router: "10.2.0.9", Dst: "198.51.100.1",
				Rho: -0.62, TopHop: "10.2.0.7", TopR: -0.4,
			}},
			Events:     []Event{{ASN: "AS2001", Bin: bin, Type: "delay", Magnitude: 12.5}},
			MagStart:   bin.Add(-2 * time.Hour),
			MagThrough: bin.Add(time.Hour),
			DelayMag:   []MagRow{{ASN: 2001, T: bin, V: 3.5}, {ASN: 2003, T: bin, V: 0}},
			FwdMag:     []MagRow{{ASN: 2001, T: bin, V: -1.25}},
			Identities: &ids,
		},
		{Seq: 98, Gen: 1, Bin: bin, Results: 7, Full: true, Done: true},
		{Seq: 9, Failed: true, Err: "ingest: connection reset"},
	}
	for _, d := range seeds {
		b, err := json.Marshal(d)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(b)
	}
	if b, err := json.Marshal(helloFor(&Snapshot{Seq: 3, Results: 12, BinSize: time.Hour,
		Meta: Meta{Case: "ddos", Start: bin, End: bin.Add(12 * time.Hour)}})); err == nil {
		f.Add(b)
	}
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`{"seq":18446744073709551615,"gen":-1}`))
	f.Add([]byte(`{"bin":"not-a-time"}`))
	f.Add([]byte{0xff, 0xfe, '{', '}'})

	f.Fuzz(func(t *testing.T, b []byte) {
		decodeHello(b) // must not panic; identity is pinned on the delta side
		d, err := decodeDelta(b)
		if err != nil {
			return
		}
		enc, err := json.Marshal(d)
		if err != nil {
			t.Fatalf("accepted delta does not re-encode: %v", err)
		}
		d2, err := decodeDelta(enc)
		if err != nil {
			t.Fatalf("re-encoded delta does not decode: %v\n%s", err, enc)
		}
		enc2, err := json.Marshal(d2)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("encode∘decode is not the identity:\n  first:  %s\n  second: %s", enc, enc2)
		}
	})
}
