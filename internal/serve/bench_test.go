package serve

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pinpoint/internal/atlas"
	"pinpoint/internal/core"
	"pinpoint/internal/netsim"
	"pinpoint/internal/trace"
)

// benchWorkload is a pre-generated 6-hour campaign replayed (with shifted
// timestamps) as an endless chronological ingest feed.
type benchWorkload struct {
	results []trace.Result
	span    time.Duration
	start   time.Time
	table   func() *core.Analyzer // fresh analyzer factory
}

var (
	benchOnce sync.Once
	benchWL   *benchWorkload
)

func benchData(b *testing.B) *benchWorkload {
	b.Helper()
	benchOnce.Do(func() {
		topo, err := netsim.Generate(netsim.TopoConfig{
			Seed: 77, Tier1: 2, Transit: 5, Stub: 20,
			Roots: 1, RootInstances: 3, Anchors: 2, IXPs: 1, IXPMembers: 4,
		})
		if err != nil {
			panic(err)
		}
		n, err := topo.Build(nil)
		if err != nil {
			panic(err)
		}
		p := atlas.NewPlatform(n, 99, netsim.TracerouteOpts{})
		p.AddProbes(topo.ProbeSites())
		p.AddBuiltin(topo.Roots[0].Addr)
		start := time.Date(2015, 11, 28, 0, 0, 0, 0, time.UTC)
		end := start.Add(6 * time.Hour)
		var all []trace.Result
		err = p.RunChunks(context.Background(), start, end, 0, func(rs []trace.Result) error {
			all = append(all, rs...)
			return nil
		})
		if err != nil {
			panic(err)
		}
		benchWL = &benchWorkload{
			results: all,
			span:    end.Sub(start).Round(time.Hour) + time.Hour,
			start:   start,
			table: func() *core.Analyzer {
				return core.New(core.Config{}, p.ProbeASN, n.Prefixes())
			},
		}
	})
	return benchWL
}

// feedForever replays the workload in chronological laps (each lap shifted
// by the span) in batches of batchSize until stop closes. Returns the total
// results ingested.
func (wl *benchWorkload) feedForever(a *core.Analyzer, pub *Publisher, batchSize int, stop <-chan struct{}) *atomic.Int64 {
	var total atomic.Int64
	go func() {
		buf := make([]trace.Result, 0, batchSize)
		for lap := 0; ; lap++ {
			shift := time.Duration(lap) * wl.span
			for i := 0; i < len(wl.results); i += batchSize {
				select {
				case <-stop:
					return
				default:
				}
				end := i + batchSize
				if end > len(wl.results) {
					end = len(wl.results)
				}
				buf = buf[:0]
				for _, r := range wl.results[i:end] {
					r.Time = r.Time.Add(shift)
					buf = append(buf, r)
				}
				a.ObserveBatch(buf)
				if pub != nil {
					pub.ObserveResults(len(buf))
				}
				total.Add(int64(len(buf)))
			}
		}
	}()
	return &total
}

var benchURLs = []string{
	"/api/alarms/delay",
	"/api/events",
	"/api/status",
	"/api/magnitude?asn=1",
}

// BenchmarkServeReads measures handler latency per read. The sub-benchmarks
// vary what the analysis side is doing — nothing, small batches, huge
// batches. With snapshot publication the read path takes no lock shared
// with ObserveBatch, so ns/op and the reported p99 must stay flat across
// all three (the acceptance claim: read latency independent of batch size).
func BenchmarkServeReads(b *testing.B) {
	wl := benchData(b)
	for _, bc := range []struct {
		name  string
		batch int // 0 = no concurrent ingest
	}{
		{"idle", 0},
		{"ingest-batch=256", 256},
		{"ingest-batch=8192", 8192},
	} {
		b.Run(bc.name, func(b *testing.B) {
			a := wl.table()
			defer a.Close()
			pub := NewPublisher(a, Meta{Case: "bench", Start: wl.start, End: wl.start.Add(wl.span)})
			srv := NewServer(pub, Options{Logf: func(string, ...any) {}})
			h := srv.Handler()
			if bc.batch > 0 {
				stop := make(chan struct{})
				defer close(stop)
				wl.feedForever(a, pub, bc.batch, stop)
			} else {
				// Serve a realistic completed state rather than empty slices.
				stop := make(chan struct{})
				total := wl.feedForever(a, pub, 1024, stop)
				for total.Load() < int64(len(wl.results)) {
					time.Sleep(time.Millisecond)
				}
				close(stop)
			}

			var mu sync.Mutex
			var lats []time.Duration
			var idx atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				local := make([]time.Duration, 0, 1024)
				for pb.Next() {
					url := benchURLs[int(idx.Add(1))%len(benchURLs)]
					req := httptest.NewRequest("GET", url, nil)
					rec := httptest.NewRecorder()
					t0 := time.Now()
					h.ServeHTTP(rec, req)
					local = append(local, time.Since(t0))
					if rec.Code != 200 {
						b.Errorf("%s: status %d", url, rec.Code)
					}
				}
				mu.Lock()
				lats = append(lats, local...)
				mu.Unlock()
			})
			b.StopTimer()
			if len(lats) > 0 {
				sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
				p99 := lats[len(lats)*99/100]
				b.ReportMetric(float64(p99.Nanoseconds()), "p99-ns")
				b.ReportMetric(float64(len(lats))/b.Elapsed().Seconds(), "reads/s")
			}
		})
	}
}

// BenchmarkReplicaReads measures the read tier the writer/replica split
// buys: one writer completes a run, N followers converge on byte-identical
// terminal snapshots over the replication feed, and the readers fan out
// across the replica handlers round-robin. Reported are the fleet-wide
// aggregate reads/s and the p99 of a single read. (On a single-core
// container the replicas share that core, so aggregate throughput stays
// flat with N; the numbers demonstrate per-replica read cost, while the
// scaling claim needs one core per replica.)
func BenchmarkReplicaReads(b *testing.B) {
	wl := benchData(b)
	for _, replicas := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("replicas=%d", replicas), func(b *testing.B) {
			a := wl.table()
			defer a.Close()
			pub := NewPublisher(a, Meta{Case: "bench", Start: wl.start, End: wl.start.Add(wl.span)})
			wsrv := NewServer(pub, Options{Logf: func(string, ...any) {}})
			ts := httptest.NewServer(wsrv.Handler())
			defer ts.Close()

			const batch = 1024
			for i := 0; i < len(wl.results); i += batch {
				end := i + batch
				if end > len(wl.results) {
					end = len(wl.results)
				}
				a.ObserveBatch(wl.results[i:end])
				pub.ObserveResults(end - i)
			}
			a.Flush()
			pub.Finish(nil)

			handlers := make([]http.Handler, replicas)
			for r := 0; r < replicas; r++ {
				f, err := NewFollower(FollowerOptions{URL: ts.URL})
				if err != nil {
					b.Fatal(err)
				}
				// The run is complete: Run returns once the follower has
				// caught up through the terminal delta.
				if err := f.Run(context.Background()); err != nil {
					b.Fatal(err)
				}
				if !f.Snapshot().Complete() {
					b.Fatal("follower did not reach the terminal snapshot")
				}
				handlers[r] = NewServer(f, Options{Logf: func(string, ...any) {}}).Handler()
			}

			var mu sync.Mutex
			var lats []time.Duration
			var idx atomic.Int64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				local := make([]time.Duration, 0, 1024)
				for pb.Next() {
					i := int(idx.Add(1))
					url := benchURLs[i%len(benchURLs)]
					h := handlers[i%replicas]
					req := httptest.NewRequest("GET", url, nil)
					rec := httptest.NewRecorder()
					t0 := time.Now()
					h.ServeHTTP(rec, req)
					local = append(local, time.Since(t0))
					if rec.Code != 200 {
						b.Errorf("%s: status %d", url, rec.Code)
					}
				}
				mu.Lock()
				lats = append(lats, local...)
				mu.Unlock()
			})
			b.StopTimer()
			if len(lats) > 0 {
				sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
				p99 := lats[len(lats)*99/100]
				b.ReportMetric(float64(p99.Nanoseconds()), "p99-ns")
				b.ReportMetric(float64(len(lats))/b.Elapsed().Seconds(), "reads/s")
			}
		})
	}
}

// BenchmarkServeIngest measures analysis throughput bare versus under
// sustained concurrent read pressure — the "readers cannot stall the
// pipeline" half of the claim. BENCH_serve.json records the slowdown.
func BenchmarkServeIngest(b *testing.B) {
	wl := benchData(b)
	for _, readers := range []int{0, 4} {
		name := "alone"
		if readers > 0 {
			name = "with-4-readers"
		}
		b.Run(name, func(b *testing.B) {
			a := wl.table()
			defer a.Close()
			pub := NewPublisher(a, Meta{Case: "bench", Start: wl.start, End: wl.start.Add(wl.span)})
			srv := NewServer(pub, Options{Logf: func(string, ...any) {}})
			stop := make(chan struct{})
			defer close(stop)
			for g := 0; g < readers; g++ {
				go func(g int) {
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						rec := httptest.NewRecorder()
						srv.Handler().ServeHTTP(rec, httptest.NewRequest("GET", benchURLs[(g+i)%len(benchURLs)], nil))
					}
				}(g)
			}

			const batch = 1024
			buf := make([]trace.Result, 0, batch)
			results := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lap := i * batch / len(wl.results)
				off := i * batch % len(wl.results)
				end := off + batch
				if end > len(wl.results) {
					end = len(wl.results)
				}
				shift := time.Duration(lap) * wl.span
				buf = buf[:0]
				for _, r := range wl.results[off:end] {
					r.Time = r.Time.Add(shift)
					buf = append(buf, r)
				}
				a.ObserveBatch(buf)
				pub.ObserveResults(len(buf))
				results += len(buf)
			}
			b.StopTimer()
			b.ReportMetric(float64(results)/b.Elapsed().Seconds(), "results/s")
		})
	}
}
