package serve

// Follower is the replica role: it dials a writer's replication feed,
// rebuilds byte-identical snapshots by applying decoded deltas to the same
// mirror the writer assembles from, and serves the full read API from them.
// N followers behind any load balancer form a horizontally scalable read
// tier over one writer.
//
// State machine:
//
//	bootstrap   — optionally rebuild the mirror from local segment-store
//	              files (read-only open; safe against a live writer, whose
//	              store is append-only), landing at seq n+1 for n records.
//	connect     — GET {url}/api/stream?since={seq}. The hello validates the
//	              protocol version and run identity and supplies Meta and
//	              the bin size; a store-bootstrapped mirror adopts the
//	              writer's generation here (durable history is valid under
//	              any generation — segment-backed writers never rebuild it).
//	tail        — apply each delta in seq order, publish a snapshot per
//	              delta, re-broadcast on the follower's own feed (replicas
//	              chain). Stale deltas (seq ≤ mirror's) are skipped.
//	resync      — a seq gap, a `gap` event (dropped as too slow), or a
//	              dropped connection returns to connect with since=seq; the
//	              writer replays from its ring or store, or sends one Full
//	              delta that replaces the whole mirror. Resync semantics
//	              ride on the deltas themselves: a live staleness rebuild
//	              arrives as a Rebuild delta carrying the full re-derived
//	              event/magnitude history, while a writer restart merely
//	              bumps the generation — its store-synthesized catch-up
//	              deltas keep appending, because durable history survives
//	              restarts as a valid prefix of the mirror's state.
//	terminal    — a Done/Failed delta ends the run; Run returns nil.

import (
	"bufio"
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pinpoint/internal/segstore"
)

// FollowerOptions configures a Follower. URL is required; everything else
// has serviceable defaults.
type FollowerOptions struct {
	// URL is the writer's base URL (e.g. "http://writer:8080").
	URL string

	// StoreDir, when set, bootstraps the mirror from local segment-store
	// files before first connect, instead of replaying the whole feed.
	// Requires Meta and BinSize (they cannot come from the hello yet).
	StoreDir string

	// Meta and BinSize describe the run when bootstrapping from files; when
	// zero they are adopted from the writer's hello.
	Meta    Meta
	BinSize time.Duration

	// Client is the HTTP client used to dial the feed. Default: a client
	// without timeout (the stream is long-lived).
	Client *http.Client

	// ReconnectMin/Max bound the exponential backoff between connection
	// attempts. Defaults 100ms / 5s.
	ReconnectMin, ReconnectMax time.Duration

	// FeedWindow sizes the follower's own downstream catch-up ring.
	FeedWindow int

	// Logf receives connection diagnostics. Default: discard.
	Logf func(format string, args ...any)
}

// Follower tails a writer's replication feed and serves read-only
// snapshots. It implements Source, so NewServer works on it unchanged.
type Follower struct {
	opts FollowerOptions

	// m is owned by the Run goroutine (and by NewFollower before Run
	// starts); readers only touch the published snapshot.
	m   mirror
	cur atomic.Pointer[Snapshot]

	bc *broadcaster

	store    *segstore.Store
	storeMu  sync.Mutex // serializes /api/bins reads (shared decode scratch)
	binIndex []BinSummary

	adoptGen bool // first hello after a file bootstrap adopts the writer's gen
}

// NewFollower builds a follower and, when StoreDir is set, bootstraps its
// mirror from the local segment files. The feed is not dialed until Run.
func NewFollower(opts FollowerOptions) (*Follower, error) {
	if opts.URL == "" {
		return nil, errors.New("serve: follower needs a writer URL")
	}
	if opts.Client == nil {
		opts.Client = &http.Client{}
	}
	if opts.ReconnectMin <= 0 {
		opts.ReconnectMin = 100 * time.Millisecond
	}
	if opts.ReconnectMax <= 0 {
		opts.ReconnectMax = 5 * time.Second
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	f := &Follower{opts: opts, bc: newBroadcaster(opts.FeedWindow)}
	f.m.meta = opts.Meta
	f.m.binSize = opts.BinSize
	if opts.StoreDir != "" {
		if opts.BinSize <= 0 {
			return nil, errors.New("serve: follower store bootstrap needs BinSize")
		}
		st, err := segstore.OpenReadOnly(opts.StoreDir)
		if err != nil {
			return nil, fmt.Errorf("serve: follower store bootstrap: %w", err)
		}
		bins, err := f.m.restoreFromRecords(st)
		if err != nil {
			return nil, err
		}
		f.store = st
		f.binIndex = bins
		f.adoptGen = true
	}
	f.cur.Store(f.m.assemble())
	return f, nil
}

// Snapshot returns the current rebuilt snapshot. Never nil; seq 0 before
// the first delta (or file bootstrap) lands.
func (f *Follower) Snapshot() *Snapshot { return f.cur.Load() }

// Results returns the snapshot's result count (followers have no live
// between-publish counter; the feed is the only result source).
func (f *Follower) Results() int { return f.cur.Load().Results }

// Subscribe registers a downstream feed subscriber (replicas chain: a
// follower re-broadcasts every applied delta).
func (f *Follower) Subscribe() *Subscription { return f.bc.subscribe() }

// CloseSubscribers terminates the follower's downstream streams.
func (f *Follower) CloseSubscribers() { f.bc.closeAll() }

// CatchUp serves downstream ?since= requests from the follower's own ring.
// Deeper history falls back to the handler's full-state delta.
func (f *Follower) CatchUp(since, upTo uint64) ([]Delta, bool) {
	return f.bc.catchUp(since, upTo)
}

// HasStore reports whether the follower bootstrapped from local segments.
func (f *Follower) HasStore() bool { return f.store != nil }

// StoreBins lists the bootstrap store's committed bins.
func (f *Follower) StoreBins() ([]BinSummary, bool) {
	if f.store == nil {
		return nil, false
	}
	f.storeMu.Lock()
	defer f.storeMu.Unlock()
	return append([]BinSummary{}, f.binIndex...), true
}

// StoreBin decodes one committed bin from the bootstrap store.
func (f *Follower) StoreBin(bin time.Time) (*BinPayload, bool, error) {
	if f.store == nil {
		return nil, false, nil
	}
	f.storeMu.Lock()
	defer f.storeMu.Unlock()
	return storeBinLookup(f.store, f.binIndex, bin, f.cur.Load().BinSize)
}

// errFeedGap asks the run loop to reconnect and resync via ?since=.
var errFeedGap = errors.New("serve: feed gap")

// maxSSELine caps one SSE line (one delta payload) on the feed. An event
// beyond it is a permanent failure: reconnecting would refetch the same
// oversized payload forever.
const maxSSELine = 64 << 20

// Run tails the writer until the run completes, the context is canceled,
// or a permanent protocol/identity mismatch is hit. Transient failures
// (connection loss, slow-subscriber drops, seq gaps) reconnect with
// backoff and resync through the catch-up protocol.
func (f *Follower) Run(ctx context.Context) error {
	defer f.bc.closeAll()
	backoff := f.opts.ReconnectMin
	for {
		seqBefore := f.m.seq
		err := f.tail(ctx)
		if f.m.seq > seqBefore {
			// The connection applied at least one delta: the feed is healthy
			// again, so later transient flaps start from a fresh backoff
			// instead of inheriting the max from flaps hours ago.
			backoff = f.opts.ReconnectMin
		}
		if snap := f.cur.Load(); snap.Complete() {
			return nil
		}
		if ctx.Err() != nil {
			return ctx.Err()
		}
		var perm *permanentError
		if errors.As(err, &perm) {
			return perm.err
		}
		if err != nil {
			f.opts.Logf("serve: follower reconnecting after: %v", err)
		}
		select {
		case <-time.After(backoff):
		case <-ctx.Done():
			return ctx.Err()
		}
		if backoff *= 2; backoff > f.opts.ReconnectMax {
			backoff = f.opts.ReconnectMax
		}
	}
}

// permanentError wraps failures no reconnect can fix (protocol version or
// run identity mismatch).
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }

// tail runs one feed connection: dial with since=seq, validate the hello,
// apply deltas until the stream ends.
func (f *Follower) tail(ctx context.Context) error {
	url := f.opts.URL + "/api/stream?since=" + strconv.FormatUint(f.m.seq, 10)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return &permanentError{err}
	}
	resp, err := f.opts.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("serve: feed returned %s", resp.Status)
	}

	sawHello := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), maxSSELine)
	var event string
	var data []byte
	haveData := false
	for sc.Scan() {
		line := sc.Bytes()
		switch {
		case len(line) == 0: // blank line: dispatch the accumulated event
			if event == "" && !haveData {
				continue
			}
			ev, payload := event, data
			event, data, haveData = "", nil, false
			if !sawHello {
				if ev != "hello" {
					return fmt.Errorf("serve: feed started with %q, want hello", ev)
				}
				if err := f.applyHello(payload); err != nil {
					return err
				}
				sawHello = true
				continue
			}
			switch ev {
			case "delta":
				done, err := f.applyDelta(payload)
				if err != nil || done {
					return err
				}
			case "gap":
				// Dropped as too slow upstream: resync via since=.
				return errFeedGap
			}
		case bytes.HasPrefix(line, []byte("event: ")):
			event = string(line[len("event: "):])
		case bytes.HasPrefix(line, []byte("data: ")):
			// Successive data lines join with '\n' per the SSE spec (our
			// writer emits single-line JSON, but a spec-correct decode must
			// not silently concatenate a future multi-line payload).
			if haveData {
				data = append(data, '\n')
			}
			data = append(data, line[len("data: "):]...)
			haveData = true
		}
	}
	if err := sc.Err(); err != nil && ctx.Err() == nil {
		if errors.Is(err, bufio.ErrTooLong) {
			// Retrying cannot shrink the event: every reconnect would fetch
			// the same oversized payload and fail again, so surface the
			// failure instead of resyncing forever.
			return &permanentError{fmt.Errorf("serve: feed event exceeds the %dMB limit: %w", maxSSELine>>20, err)}
		}
		return err
	}
	// Clean EOF: the writer shut down or the complete run's stream ended.
	return nil
}

// applyHello validates the feed identity and synchronizes run metadata.
func (f *Follower) applyHello(payload []byte) error {
	h, err := decodeHello(payload)
	if err != nil {
		return fmt.Errorf("serve: decoding hello: %w", err)
	}
	if h.Proto != FeedProto {
		return &permanentError{fmt.Errorf("serve: writer speaks feed proto %d, follower %d", h.Proto, FeedProto)}
	}
	if h.BinNS <= 0 {
		// A writer always knows its bin size; a zero one means the upstream
		// is itself a follower that has not synchronized yet (replica chains
		// boot in any order). Transient: back off and redial.
		return errors.New("serve: upstream feed not synchronized yet")
	}
	if f.m.meta.Case != "" && h.Case != f.m.meta.Case {
		return &permanentError{fmt.Errorf("serve: writer serves case %q, follower expects %q", h.Case, f.m.meta.Case)}
	}
	if f.m.binSize > 0 && h.BinNS != f.m.binSize {
		return &permanentError{fmt.Errorf("serve: writer bin size %v, follower %v", h.BinNS, f.m.binSize)}
	}
	f.m.meta = Meta{Case: h.Case, Description: h.Description, Start: h.Start, End: h.End}
	f.m.binSize = h.BinNS
	if f.adoptGen {
		// The file-bootstrapped history is durable and thus valid under the
		// writer's current generation (segment-backed aggregators never
		// rebuild committed history); adopt it so downstream hellos and
		// ETags agree with the writer's before the first delta lands.
		f.m.gen = h.Gen
		f.adoptGen = false
	}
	f.cur.Store(f.m.assemble())
	return nil
}

// applyDelta advances the mirror by one decoded delta, publishes the
// resulting snapshot and re-broadcasts downstream. done reports a terminal
// delta.
func (f *Follower) applyDelta(payload []byte) (done bool, err error) {
	d, err := decodeDelta(payload)
	if err != nil {
		return false, fmt.Errorf("serve: decoding delta: %w", err)
	}
	if d.Seq <= f.m.seq {
		return false, nil // already reflected (hello overlap on reconnect)
	}
	if !d.Full && d.Seq != f.m.seq+1 {
		return false, errFeedGap
	}
	f.m.apply(&d)
	f.cur.Store(f.m.assemble())
	f.bc.broadcast(d, true)
	return d.Done || d.Failed, nil
}
