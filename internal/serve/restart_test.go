package serve

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"pinpoint/internal/core"
	"pinpoint/internal/experiments"
	"pinpoint/internal/segstore"
	"pinpoint/internal/trace"
)

var updateSegcorpus = flag.Bool("update-segcorpus", false,
	"regenerate internal/segstore/testdata/corpus from fixed-seed case runs")

// errKill is the sentinel a test callback returns to simulate the process
// dying mid-run: ingestion stops, nothing is flushed or finished, and only
// what the store committed survives.
var errKill = errors.New("simulated crash")

// storeRun is one pipeline run committing to the segment store in dir.
type storeRun struct {
	c   *experiments.Case
	a   *core.Analyzer
	pub *Publisher
	srv *Server
	st  *segstore.Store
}

func openStoreRun(t *testing.T, name string, workers int, dir string) *storeRun {
	t.Helper()
	c, err := experiments.NewCase(name, experiments.Quick)
	if err != nil {
		t.Fatal(err)
	}
	st, err := segstore.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	a := core.New(core.Config{Workers: workers}, c.Platform.ProbeASN, c.Net.Prefixes())
	pub, err := NewPublisherWithStore(a, Meta{
		Case: c.Name, Description: c.Description,
		Start: c.Start, End: c.End,
	}, st)
	if err != nil {
		t.Fatal(err)
	}
	return &storeRun{
		c: c, a: a, pub: pub, st: st,
		srv: NewServer(pub, Options{Logf: func(string, ...any) {}}),
	}
}

// ingest drives the full case input through the analyzer. killAfter > 0
// aborts (without flushing) once that many bins are durable, returning
// true; otherwise the run is completed and finished.
func (r *storeRun) ingest(t *testing.T, killAfter int) (killed bool) {
	t.Helper()
	err := r.c.Platform.RunChunks(context.Background(), r.c.Start, r.c.End, 0, func(rs []trace.Result) error {
		r.a.ObserveBatch(rs)
		r.pub.ObserveResults(len(rs))
		if killAfter > 0 && r.st.Len() >= killAfter {
			return errKill
		}
		return nil
	})
	if killAfter > 0 {
		if !errors.Is(err, errKill) {
			t.Fatalf("kill after %d bins never triggered: %v", killAfter, err)
		}
		r.close(t)
		return true
	}
	if err != nil {
		t.Fatal(err)
	}
	r.a.Flush()
	r.pub.Finish(nil)
	if serr := r.pub.StoreErr(); serr != nil {
		t.Fatalf("store error during run: %v", serr)
	}
	return false
}

func (r *storeRun) close(t *testing.T) {
	t.Helper()
	r.a.Close()
	if err := r.st.Close(); err != nil {
		t.Fatal(err)
	}
}

// capturePayloads reads the completed-run API payloads byte for byte.
func capturePayloads(t *testing.T, srv *Server, urls []string) map[string][]byte {
	t.Helper()
	out := make(map[string][]byte, len(urls))
	for _, u := range urls {
		rec := get(t, srv, u)
		if rec.Code != 200 {
			t.Fatalf("%s: status %d", u, rec.Code)
		}
		out[u] = append([]byte(nil), rec.Body.Bytes()...)
	}
	return out
}

func storeFiles(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, name := range []string{"segments.dat", "manifest.log"} {
		b, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		out[name] = b
	}
	return out
}

// TestRestartEquivalence is the ISSUE 9 acceptance test: run the quick
// ddos case committing every bin to the segment store, kill the process
// after bin k, boot a fresh pipeline from the store and finish the run —
// the completed-run API payloads must be byte-identical to the
// uninterrupted run's for several k and for different worker counts, and
// so must the store files themselves. A baseline without any store pins
// that store mode does not perturb the analysis output.
func TestRestartEquivalence(t *testing.T) {
	const caseName = "ddos"
	baseDir := t.TempDir()
	base := openStoreRun(t, caseName, 2, filepath.Join(baseDir, "base"))
	base.ingest(t, 0)
	nbins := base.st.Len()
	if nbins < 3 {
		t.Fatalf("case committed only %d bins; restart points are vacuous", nbins)
	}

	urls := []string{"/api/status", "/api/alarms/delay", "/api/alarms/forwarding", "/api/events", "/api/bins"}
	for _, asn := range base.a.Aggregator().ASes() {
		urls = append(urls, fmt.Sprintf("/api/magnitude?asn=%d", uint32(asn)))
	}
	want := capturePayloads(t, base.srv, urls)
	base.close(t)
	wantFiles := storeFiles(t, filepath.Join(baseDir, "base"))

	// Store mode must not perturb the analysis: the same run without a
	// store serves the same bytes (minus the store-only /api/bins).
	plain := runPlainCase(t, caseName, 2)
	for _, u := range urls {
		if u == "/api/bins" {
			continue
		}
		rec := get(t, plain, u)
		if !bytes.Equal(rec.Body.Bytes(), want[u]) {
			t.Errorf("store-backed %s differs from plain pipeline (%d vs %d bytes)",
				u, len(want[u]), rec.Body.Len())
		}
	}

	for i, tc := range []struct{ kill, workers int }{
		{1, 2},
		{nbins / 2, 1},
		{nbins - 1, 4},
	} {
		t.Run(fmt.Sprintf("kill=%d_workers=%d", tc.kill, tc.workers), func(t *testing.T) {
			dir := filepath.Join(baseDir, fmt.Sprintf("restart%d", i))

			killed := openStoreRun(t, caseName, 2, dir)
			killed.ingest(t, tc.kill)
			st, err := segstore.Open(dir)
			if err != nil {
				t.Fatal(err)
			}
			committed := st.Len()
			if committed < tc.kill || committed >= nbins {
				t.Fatalf("killed run left %d committed bins (kill=%d, total=%d)", committed, tc.kill, nbins)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}

			r := openStoreRun(t, caseName, tc.workers, dir)
			cursor, resumed := r.pub.Resumed()
			if !resumed {
				t.Fatal("publisher did not resume from the non-empty store")
			}
			if wantCursor := r.st.BinAt(committed - 1).Add(time.Hour); !cursor.Equal(wantCursor) {
				t.Fatalf("resume cursor %v, want %v", cursor, wantCursor)
			}

			// Hammer the store-reading endpoints from another goroutine for
			// the whole resumed run: commits and segment reads must be
			// race-free.
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					for _, u := range []string{"/api/bins", "/api/status"} {
						req := httptest.NewRequest("GET", u, nil)
						r.srv.Handler().ServeHTTP(httptest.NewRecorder(), req)
					}
				}
			}()
			r.ingest(t, 0)
			close(stop)
			wg.Wait()

			got := capturePayloads(t, r.srv, urls)
			for _, u := range urls {
				if !bytes.Equal(got[u], want[u]) {
					t.Errorf("%s differs after restart (%d vs %d bytes)", u, len(got[u]), len(want[u]))
				}
			}
			r.close(t)
			for name, wantB := range wantFiles {
				if gotB := storeFiles(t, dir)[name]; !bytes.Equal(gotB, wantB) {
					t.Errorf("%s differs from the uninterrupted run's (%d vs %d bytes)",
						name, len(gotB), len(wantB))
				}
			}
		})
	}
}

func runPlainCase(t *testing.T, name string, workers int) *Server {
	t.Helper()
	c, err := experiments.NewCase(name, experiments.Quick)
	if err != nil {
		t.Fatal(err)
	}
	a := core.New(core.Config{Workers: workers}, c.Platform.ProbeASN, c.Net.Prefixes())
	defer a.Close()
	pub := NewPublisher(a, Meta{
		Case: c.Name, Description: c.Description,
		Start: c.Start, End: c.End,
	})
	err = c.Platform.RunChunks(context.Background(), c.Start, c.End, 0, func(rs []trace.Result) error {
		a.ObserveBatch(rs)
		pub.ObserveResults(len(rs))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	a.Flush()
	pub.Finish(nil)
	return NewServer(pub, Options{Logf: func(string, ...any) {}})
}

// TestBinsEndpoint pins the time-travel API: the index lists every
// committed bin, a committed bin decodes to its exact contribution, and
// queries without a store or for uncommitted bins 404.
func TestBinsEndpoint(t *testing.T) {
	r := openStoreRun(t, "ddos", 1, t.TempDir())
	r.ingest(t, 0)
	defer r.close(t)

	bins, ok := r.pub.StoreBins()
	if !ok || len(bins) != r.st.Len() {
		t.Fatalf("StoreBins: ok=%v len=%d, store has %d", ok, len(bins), r.st.Len())
	}
	total := 0
	for _, b := range bins {
		total += b.DelayAlarms + b.FwdAlarms
	}
	snap := r.pub.Snapshot()
	if got := len(snap.DelayAlarms) + len(snap.FwdAlarms); total != got {
		t.Fatalf("per-bin alarm counts sum to %d, snapshot has %d", total, got)
	}

	// One committed bin round-trips through the endpoint.
	u := "/api/bins?bin=" + bins[len(bins)/2].Bin.Format(time.RFC3339)
	rec := get(t, r.srv, u)
	if rec.Code != 200 {
		t.Fatalf("%s: status %d: %s", u, rec.Code, rec.Body.String())
	}
	pl, found, err := r.pub.StoreBin(bins[len(bins)/2].Bin)
	if err != nil || !found {
		t.Fatalf("StoreBin: found=%v err=%v", found, err)
	}
	wantAlarms := 0
	for _, al := range snap.DelayAlarms {
		if al.Bin.Equal(pl.Bin) {
			wantAlarms++
		}
	}
	if len(pl.DelayAlarms) != wantAlarms {
		t.Fatalf("bin payload has %d delay alarms, snapshot attributes %d to that bin",
			len(pl.DelayAlarms), wantAlarms)
	}

	if rec := get(t, r.srv, "/api/bins?bin="+r.c.End.Add(48*time.Hour).Format(time.RFC3339)); rec.Code != 404 {
		t.Fatalf("uncommitted bin: status %d", rec.Code)
	}
	if rec := get(t, r.srv, "/api/bins?bin=not-a-time"); rec.Code != 400 {
		t.Fatalf("malformed bin: status %d", rec.Code)
	}

	plain := runPlainCase(t, "ddos", 1)
	if rec := get(t, plain, "/api/bins"); rec.Code != 404 {
		t.Fatalf("storeless /api/bins: status %d", rec.Code)
	}
}

// TestUpdateSegcorpus regenerates the fuzz seed corpus from fixed-seed
// case runs when -update-segcorpus is set. The checked-in corpus gives
// FuzzSegmentRoundTrip realistic segment payloads as starting points.
func TestUpdateSegcorpus(t *testing.T) {
	if !*updateSegcorpus {
		t.Skip("run with -update-segcorpus to regenerate the fuzz corpus")
	}
	outDir := filepath.Join("..", "segstore", "testdata", "corpus")
	if err := os.MkdirAll(outDir, 0o755); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"ddos", "ixp"} {
		r := openStoreRun(t, name, 2, t.TempDir())
		r.ingest(t, 0)
		n := r.st.Len()
		stride := n/8 + 1
		largest, largestLen := 0, -1
		for i := 0; i < n; i++ {
			b, err := r.st.Payload(i)
			if err != nil {
				t.Fatal(err)
			}
			if len(b) > largestLen {
				largest, largestLen = i, len(b)
			}
			if i%stride != 0 {
				continue
			}
			writeCorpus(t, outDir, name, i, b)
		}
		if largest%stride != 0 {
			b, err := r.st.Payload(largest)
			if err != nil {
				t.Fatal(err)
			}
			writeCorpus(t, outDir, name, largest, b)
		}
		r.close(t)
	}
}

func writeCorpus(t *testing.T, dir, name string, i int, b []byte) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("%s_%03d.seg", name, i)), b, 0o644); err != nil {
		t.Fatal(err)
	}
}
