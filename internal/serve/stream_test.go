package serve

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"pinpoint/internal/delay"
)

// sseClient reads one named event (skipping keepalive comments) from an SSE
// stream.
type sseClient struct {
	sc *bufio.Scanner
}

func (c *sseClient) next(t *testing.T) (name string, data []byte) {
	t.Helper()
	for c.sc.Scan() {
		line := c.sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = []byte(strings.TrimPrefix(line, "data: "))
		case line == "" && name != "":
			return name, data
		}
	}
	t.Fatal("SSE stream ended unexpectedly")
	return "", nil
}

func TestStreamDeliversDeltasPerBinClose(t *testing.T) {
	a, pub, srv := newTestPipeline(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/api/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type %q", ct)
	}
	cl := &sseClient{sc: bufio.NewScanner(resp.Body)}

	// The hello is written after the subscription is registered, so once it
	// arrives the bin closes below are guaranteed to reach this client.
	name, data := cl.next(t)
	if name != "hello" {
		t.Fatalf("first event %q, want hello", name)
	}
	var hello struct {
		Seq         uint64 `json:"seq"`
		DelayAlarms int    `json:"delay_alarms"`
		Done        bool   `json:"done"`
	}
	if err := json.Unmarshal(data, &hello); err != nil {
		t.Fatal(err)
	}
	if hello.Done || hello.DelayAlarms != 0 {
		t.Fatalf("hello = %+v", hello)
	}

	closeBin(a, t0, []delay.Alarm{mkDelayAlarm(t0, "10.1.0.1", "10.2.0.1", 2)}, nil)
	name, data = cl.next(t)
	if name != "delta" {
		t.Fatalf("second event %q, want delta", name)
	}
	var d Delta
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatal(err)
	}
	if d.Seq <= hello.Seq || len(d.DelayAlarms) != 1 || !d.Bin.Equal(t0) {
		t.Fatalf("delta = %+v", d)
	}
	if d.DelayAlarms[0].Link != "10.1.0.1>10.2.0.1" {
		t.Errorf("delta alarm link %q", d.DelayAlarms[0].Link)
	}

	bin1 := t0.Add(time.Hour)
	closeBin(a, bin1, []delay.Alarm{
		mkDelayAlarm(bin1, "10.1.0.1", "10.2.0.1", 1),
		mkDelayAlarm(bin1, "10.1.0.2", "10.2.0.2", 1),
	}, nil)
	_, data = cl.next(t)
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatal(err)
	}
	if len(d.DelayAlarms) != 2 {
		t.Fatalf("second delta carries %d alarms, want 2", len(d.DelayAlarms))
	}

	// Completion delivers a terminal delta and ends the stream.
	pub.Finish(nil)
	name, data = cl.next(t)
	if err := json.Unmarshal(data, &d); err != nil {
		t.Fatal(err)
	}
	if name != "delta" || !d.Done {
		t.Fatalf("terminal event %q done=%v", name, d.Done)
	}
	if cl.sc.Scan() {
		t.Errorf("stream kept going after the terminal delta: %q", cl.sc.Text())
	}
}

func TestStreamOnCompletedRunSendsHelloAndCloses(t *testing.T) {
	a, pub, srv := newTestPipeline(t)
	closeBin(a, t0, []delay.Alarm{mkDelayAlarm(t0, "10.1.0.1", "10.2.0.1", 2)}, nil)
	pub.Finish(nil)

	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/api/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	cl := &sseClient{sc: bufio.NewScanner(resp.Body)}
	name, data := cl.next(t)
	var hello struct {
		Done        bool `json:"done"`
		DelayAlarms int  `json:"delay_alarms"`
	}
	if err := json.Unmarshal(data, &hello); err != nil {
		t.Fatal(err)
	}
	if name != "hello" || !hello.Done || hello.DelayAlarms != 1 {
		t.Fatalf("hello on completed run: %q %+v", name, hello)
	}
	if cl.sc.Scan() {
		t.Errorf("completed-run stream stayed open: %q", cl.sc.Text())
	}
}

func TestSlowSubscriberIsDroppedNotBlocking(t *testing.T) {
	a, pub, _ := newTestPipeline(t)
	sub := pub.Subscribe()
	defer sub.Cancel()
	ch := sub.C
	// Never read from ch: once the buffer fills, the publisher must drop
	// the subscriber instead of stalling the analysis goroutine.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for h := 0; h < 100; h++ {
			bin := t0.Add(time.Duration(h) * time.Hour)
			closeBin(a, bin, []delay.Alarm{mkDelayAlarm(bin, "10.1.0.1", "10.2.0.1", 1)}, nil)
		}
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("publisher stalled on a slow subscriber")
	}
	// The channel must have been closed after the buffer filled.
	n := 0
	for range ch {
		n++
	}
	if n == 0 || n > 100 {
		t.Errorf("drained %d deltas from dropped subscriber", n)
	}
	// The drop must be gap-marked (versus an orderly CloseSubscribers) with
	// the seq of the last delta that made it into the buffer.
	if last, dropped := sub.Gap(); !dropped || last == 0 {
		t.Errorf("Gap() = (%d, %v), want a marked drop with its last seq", last, dropped)
	}
}
