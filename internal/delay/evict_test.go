package delay

import (
	"math/rand/v2"
	"net/netip"
	"testing"
	"time"

	"pinpoint/internal/trace"
)

var (
	nearC = netip.MustParseAddr("10.0.2.1")
	farD  = netip.MustParseAddr("10.0.3.1")
)

// mkResultOn is mkResult generalized to an arbitrary link.
func mkResultOn(prb int, at time.Time, near, far netip.Addr, rttNear, rttFar float64, rng *rand.Rand) trace.Result {
	jit := func(v float64) float64 { return v + rng.Float64()*0.2 }
	return trace.Result{
		MsmID: 5001, PrbID: prb, Time: at,
		Src: netip.MustParseAddr("192.0.2.1"), Dst: netip.MustParseAddr("198.51.100.1"),
		Hops: []trace.Hop{
			{Index: 1, Replies: []trace.Reply{
				{From: near, RTT: jit(rttNear)}, {From: near, RTT: jit(rttNear)}, {From: near, RTT: jit(rttNear)},
			}},
			{Index: 2, Replies: []trace.Reply{
				{From: far, RTT: jit(rttFar)}, {From: far, RTT: jit(rttFar)}, {From: far, RTT: jit(rttFar)},
			}},
		},
	}
}

// feedBinOn feeds one bin of results for one link.
func feedBinOn(d *Detector, bin int, near, far netip.Addr, nProbes int, rng *rand.Rand) []Alarm {
	var alarms []Alarm
	at := t0.Add(time.Duration(bin) * time.Hour)
	for p := 1; p <= nProbes; p++ {
		base := 5 + float64(p%7)
		r := mkResultOn(p, at.Add(time.Duration(p)*time.Minute), near, far, base, base+2, rng)
		alarms = append(alarms, d.Observe(r)...)
	}
	return alarms
}

// TestEvictIdleBins drives one link warm, lets it fall idle past the
// threshold while a second link keeps bins closing, and checks that the
// idle slot is reclaimed (sweep), that LinksSeen stays exact when the link
// returns, and that the returning link restarts reference warmup.
func TestEvictIdleBins(t *testing.T) {
	d := NewDetector(Config{Seed: 1, EvictIdleBins: 2}, testASN)
	rng := rand.New(rand.NewPCG(7, 7))

	// Bins 0..5: both links active; link (nearA, farB) builds a reference.
	for bin := 0; bin < 6; bin++ {
		feedBin(d, bin, 30, 0, rng)
		feedBinOn(d, bin, nearC, farD, 30, rng)
	}
	if d.LinksSeen() != 2 {
		t.Fatalf("LinksSeen = %d, want 2", d.LinksSeen())
	}

	// Bins 6..10: only (nearC, farD) appears; (nearA, farB) goes idle and
	// must be swept once its idle run reaches EvictIdleBins.
	for bin := 6; bin <= 10; bin++ {
		feedBinOn(d, bin, nearC, farD, 30, rng)
	}
	if got := d.CloseStats().Evicted; got != 1 {
		t.Fatalf("Evicted = %d, want 1 after the idle sweep", got)
	}
	if len(d.freeSlots) != 1 {
		t.Fatalf("free slots = %d, want 1", len(d.freeSlots))
	}

	// The link returns: the freed slot is reused, LinksSeen must not
	// recount it, and its reference must be rebuilt from scratch — so a
	// shifted bin right after warmup start cannot alarm yet.
	alarms := feedBin(d, 11, 30, 10, rng)
	alarms = append(alarms, feedBinOn(d, 11, nearC, farD, 30, rng)...)
	alarms = append(alarms, feedBin(d, 12, 30, 0, rng)...)
	alarms = append(alarms, feedBinOn(d, 12, nearC, farD, 30, rng)...)
	for _, a := range alarms {
		if a.Link == (trace.LinkKey{Near: nearA, Far: farB}) {
			t.Fatalf("evicted link alarmed during re-warmup: %+v", a)
		}
	}
	if len(d.freeSlots) != 0 {
		t.Fatalf("free slots = %d after reuse, want 0", len(d.freeSlots))
	}
	if d.LinksSeen() != 2 {
		t.Errorf("LinksSeen = %d after return, want 2 (no recount)", d.LinksSeen())
	}
	d.Flush()
}

// TestEvictTouchResetMatchesSweep checks the touch-time staleness path: a
// link that returns after the idle threshold but whose slot was never swept
// (no interleaved traffic, so no bin closes happened while it was idle)
// must still restart from a cold reference.
func TestEvictTouchResetMatchesSweep(t *testing.T) {
	d := NewDetector(Config{Seed: 1, EvictIdleBins: 2}, testASN)
	rng := rand.New(rand.NewPCG(9, 9))

	for bin := 0; bin < 6; bin++ {
		feedBin(d, bin, 30, 0, rng)
	}
	// The stream jumps straight to bin 10: the detector closes bin 5 once
	// (no closes for the empty bins 6..9), so the sweep never saw the slot
	// idle. The gap is 4 full idle bins > EvictIdleBins, so the touch-time
	// check must drop the reference, and the +10 ms shift in bin 10 must
	// not alarm (no reference to compare against).
	alarms := feedBin(d, 10, 30, 10, rng)
	alarms = append(alarms, feedBin(d, 11, 30, 0, rng)...)
	alarms = append(alarms, d.Flush()...)
	if len(alarms) != 0 {
		t.Fatalf("stale-reset link alarmed: %+v", alarms[0])
	}
	if got := d.CloseStats().Evicted; got != 1 {
		t.Errorf("Evicted = %d, want 1 (touch-time reset)", got)
	}
	if d.LinksSeen() != 1 {
		t.Errorf("LinksSeen = %d, want 1", d.LinksSeen())
	}
}

// TestNoEvictionByDefault pins the paper behavior: with EvictIdleBins unset
// an idle link keeps its reference across an arbitrary gap and alarms
// immediately on a shifted return bin.
func TestNoEvictionByDefault(t *testing.T) {
	d := NewDetector(Config{Seed: 1}, testASN)
	rng := rand.New(rand.NewPCG(9, 9))
	for bin := 0; bin < 6; bin++ {
		feedBin(d, bin, 30, 0, rng)
	}
	alarms := feedBin(d, 10, 30, 10, rng)
	alarms = append(alarms, feedBin(d, 11, 30, 0, rng)...)
	alarms = append(alarms, d.Flush()...)
	if len(alarms) != 1 {
		t.Fatalf("alarms = %d, want 1 (reference retained across the gap)", len(alarms))
	}
	if got := d.CloseStats().Evicted; got != 0 {
		t.Errorf("Evicted = %d, want 0", got)
	}
}
