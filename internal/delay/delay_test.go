package delay

import (
	"math/rand/v2"
	"net/netip"
	"testing"
	"time"

	"pinpoint/internal/ipmap"
	"pinpoint/internal/stats"
	"pinpoint/internal/trace"
)

var (
	t0    = time.Date(2015, 6, 1, 0, 0, 0, 0, time.UTC)
	nearA = netip.MustParseAddr("10.0.0.1")
	farB  = netip.MustParseAddr("10.0.1.1")
)

// testASN maps probe id → AS: probes 1..10 are AS101, 11..20 AS102, etc.
func testASN(id int) (ipmap.ASN, bool) {
	if id <= 0 {
		return 0, false
	}
	return ipmap.ASN(101 + (id-1)/10), true
}

// mkResult builds a two-hop result where hop1 responds from nearA with
// rttNear and hop2 from farB with rttFar (three replies each, jittered by
// rng so Wilson CIs have width).
func mkResult(prb int, at time.Time, rttNear, rttFar float64, rng *rand.Rand) trace.Result {
	jit := func(v float64) float64 { return v + rng.Float64()*0.2 }
	return trace.Result{
		MsmID: 5001, PrbID: prb, Time: at,
		Src: netip.MustParseAddr("192.0.2.1"), Dst: netip.MustParseAddr("198.51.100.1"),
		Hops: []trace.Hop{
			{Index: 1, Replies: []trace.Reply{
				{From: nearA, RTT: jit(rttNear)}, {From: nearA, RTT: jit(rttNear)}, {From: nearA, RTT: jit(rttNear)},
			}},
			{Index: 2, Replies: []trace.Reply{
				{From: farB, RTT: jit(rttFar)}, {From: farB, RTT: jit(rttFar)}, {From: farB, RTT: jit(rttFar)},
			}},
		},
	}
}

// feedBin feeds one bin of results: nProbes probes (ids 1..n), with the
// far-hop RTT shifted by shift ms.
func feedBin(d *Detector, bin int, nProbes int, shift float64, rng *rand.Rand) []Alarm {
	var alarms []Alarm
	at := t0.Add(time.Duration(bin) * time.Hour)
	for p := 1; p <= nProbes; p++ {
		base := 5 + float64(p%7) // per-probe return-path offset ε
		r := mkResult(p, at.Add(time.Duration(p)*time.Minute), base, base+2+shift, rng)
		alarms = append(alarms, d.Observe(r)...)
	}
	return alarms
}

func TestDeviationEq6(t *testing.T) {
	ref := stats.MedianCI{Median: 5, Lower: 4, Upper: 6, N: 10}
	// Overlap → 0.
	if got := Deviation(stats.MedianCI{Median: 5.5, Lower: 5, Upper: 7, N: 10}, ref); got != 0 {
		t.Errorf("overlap deviation = %v, want 0", got)
	}
	// Observed above: gap 2 over half-width 1 → 2.
	obs := stats.MedianCI{Median: 9, Lower: 8, Upper: 10, N: 10}
	if got := Deviation(obs, ref); !almostEq(got, 2, 1e-9) {
		t.Errorf("above deviation = %v, want 2", got)
	}
	// Observed below: gap (4 − 2) over (5 − 4) → 2.
	obs = stats.MedianCI{Median: 1, Lower: 0, Upper: 2, N: 10}
	if got := Deviation(obs, ref); !almostEq(got, 2, 1e-9) {
		t.Errorf("below deviation = %v, want 2", got)
	}
	// Degenerate reference CI: guarded, large but finite.
	degr := stats.MedianCI{Median: 5, Lower: 5, Upper: 5, N: 10}
	got := Deviation(stats.MedianCI{Median: 6, Lower: 6, Upper: 6, N: 10}, degr)
	if got <= 0 || got > 1e6 {
		t.Errorf("degenerate deviation = %v", got)
	}
}

func TestDefaultsMatchPaper(t *testing.T) {
	d := NewDetector(Config{}, testASN)
	cfg := d.Config()
	if cfg.BinSize != time.Hour || cfg.Z != 1.96 || cfg.MinASes != 3 ||
		cfg.MinEntropy != 0.5 || cfg.MinDiffMS != 1.0 || cfg.WarmupBins != 3 {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestNoAlarmsOnStableLink(t *testing.T) {
	d := NewDetector(Config{Seed: 1}, testASN)
	rng := rand.New(rand.NewPCG(1, 1))
	var alarms []Alarm
	for bin := 0; bin < 12; bin++ {
		alarms = append(alarms, feedBin(d, bin, 30, 0, rng)...)
	}
	alarms = append(alarms, d.Flush()...)
	if len(alarms) != 0 {
		t.Errorf("stable link produced %d alarms: %+v", len(alarms), alarms[0])
	}
	if d.LinksSeen() != 1 {
		t.Errorf("LinksSeen = %d, want 1", d.LinksSeen())
	}
}

func TestDetectsDelayShift(t *testing.T) {
	d := NewDetector(Config{Seed: 1}, testASN)
	rng := rand.New(rand.NewPCG(2, 2))
	for bin := 0; bin < 8; bin++ {
		if a := feedBin(d, bin, 30, 0, rng); len(a) != 0 {
			t.Fatalf("warm period produced alarms at bin %d", bin)
		}
	}
	// +10 ms shift on the link during bin 8.
	alarms := feedBin(d, 8, 30, 10, rng)
	alarms = append(alarms, feedBin(d, 9, 30, 0, rng)...) // rollover triggers evaluation of bin 8
	alarms = append(alarms, d.Flush()...)
	if len(alarms) != 1 {
		t.Fatalf("alarms = %d, want exactly 1", len(alarms))
	}
	a := alarms[0]
	if a.Link != (trace.LinkKey{Near: nearA, Far: farB}) {
		t.Errorf("alarm link = %v", a.Link)
	}
	if !a.Bin.Equal(t0.Add(8 * time.Hour)) {
		t.Errorf("alarm bin = %v", a.Bin)
	}
	if a.Deviation <= 0 {
		t.Errorf("deviation = %v, want > 0", a.Deviation)
	}
	if a.DiffMS < 8 || a.DiffMS > 12 {
		t.Errorf("DiffMS = %v, want ≈ 10", a.DiffMS)
	}
	if a.ASes < 3 {
		t.Errorf("ASes = %d", a.ASes)
	}
}

func TestSmallShiftBelow1msNotReported(t *testing.T) {
	d := NewDetector(Config{Seed: 1}, testASN)
	rng := rand.New(rand.NewPCG(3, 3))
	for bin := 0; bin < 8; bin++ {
		feedBin(d, bin, 40, 0, rng)
	}
	alarms := feedBin(d, 8, 40, 0.5, rng)
	alarms = append(alarms, d.Flush()...)
	for _, a := range alarms {
		if a.DiffMS < 1 {
			t.Errorf("sub-1ms change reported: %+v", a)
		}
	}
}

func TestDiversityFilterRequiresThreeASes(t *testing.T) {
	seen := 0
	cfg := Config{Seed: 1, Observer: func(o Observation) { seen++ }}
	d := NewDetector(cfg, testASN)
	rng := rand.New(rand.NewPCG(4, 4))
	// Probes 1..10 are all AS101; 11..20 AS102 → only 2 ASes.
	for bin := 0; bin < 5; bin++ {
		at := t0.Add(time.Duration(bin) * time.Hour)
		for p := 1; p <= 20; p++ {
			d.Observe(mkResult(p, at, 5, 7, rng))
		}
	}
	d.Flush()
	if seen != 0 {
		t.Errorf("2-AS link evaluated %d times, want 0", seen)
	}
}

func TestEntropyDropsDominantAS(t *testing.T) {
	var obs []Observation
	cfg := Config{Seed: 1, Observer: func(o Observation) { obs = append(obs, o) }}
	// 20 probes in AS900, one each in AS901/902/903: H([20,1,1,1]) ≈ 0.38,
	// below the 0.5 threshold → probes must be dropped from AS900 until
	// H > 0.5, which happens at [12,1,1,1] (H ≈ 0.52).
	dominantASN := func(id int) (ipmap.ASN, bool) {
		if id <= 20 {
			return 900, true
		}
		return ipmap.ASN(880 + id), true
	}
	d := NewDetector(cfg, dominantASN)
	rng := rand.New(rand.NewPCG(5, 5))
	ids := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19, 20, 21, 22, 23}
	for bin := 0; bin < 2; bin++ {
		at := t0.Add(time.Duration(bin) * time.Hour)
		for _, p := range ids {
			d.Observe(mkResult(p, at, 5, 7, rng))
		}
	}
	d.Flush()
	if len(obs) == 0 {
		t.Fatal("link never evaluated")
	}
	for _, o := range obs {
		if o.Probes != 15 {
			t.Errorf("probes after dropping = %d, want 15 (12 in the dominant AS + 3)", o.Probes)
		}
		if o.ASes != 4 {
			t.Errorf("ASes = %d, want 4 (dropping trims, never removes, ASes)", o.ASes)
		}
	}
}

func TestUpToNineSamplesPerProbe(t *testing.T) {
	d := NewDetector(Config{Seed: 1}, testASN)
	rng := rand.New(rand.NewPCG(6, 6))
	d.Observe(mkResult(1, t0, 5, 7, rng))
	li, ok := d.reg.LookupLink(trace.LinkKey{Near: nearA, Far: farB})
	if !ok || int(li) >= len(d.slotOf) || d.slotOf[li] < 0 || d.links[d.slotOf[li]].epoch != d.epoch {
		t.Fatal("no samples extracted")
	}
	n := 0
	for _, e := range d.links[d.slotOf[li]].entries {
		if e.probe == 1 {
			n++
		}
	}
	if n != 9 {
		t.Errorf("samples per probe = %d, want 9 (3×3 combinations)", n)
	}
}

func TestTimeoutsAndSelfPairsSkipped(t *testing.T) {
	d := NewDetector(Config{Seed: 1}, testASN)
	r := trace.Result{
		PrbID: 1, Time: t0,
		Src: netip.MustParseAddr("192.0.2.1"), Dst: netip.MustParseAddr("198.51.100.1"),
		Hops: []trace.Hop{
			{Index: 1, Replies: []trace.Reply{{From: nearA, RTT: 5}, {Timeout: true}}},
			{Index: 2, Replies: []trace.Reply{{From: nearA, RTT: 6}, {Timeout: true}}},
		},
	}
	d.Observe(r)
	if len(d.touched) != 0 {
		t.Errorf("self-pair (same addr both hops) extracted: %v", d.touched)
	}
}

func TestNonAdjacentHopsNotPaired(t *testing.T) {
	d := NewDetector(Config{Seed: 1}, testASN)
	r := trace.Result{
		PrbID: 1, Time: t0,
		Src: netip.MustParseAddr("192.0.2.1"), Dst: netip.MustParseAddr("198.51.100.1"),
		Hops: []trace.Hop{
			{Index: 1, Replies: []trace.Reply{{From: nearA, RTT: 5}}},
			{Index: 3, Replies: []trace.Reply{{From: farB, RTT: 9}}}, // gap at 2
		},
	}
	d.Observe(r)
	if len(d.touched) != 0 {
		t.Errorf("non-adjacent hops paired: %v", d.touched)
	}
}

func TestUnknownProbeIgnored(t *testing.T) {
	d := NewDetector(Config{Seed: 1}, testASN)
	rng := rand.New(rand.NewPCG(7, 7))
	d.Observe(mkResult(-5, t0, 5, 7, rng))
	if len(d.touched) != 0 {
		t.Error("result from unknown probe ingested")
	}
}

func TestNegativeDifferentialRTTSupported(t *testing.T) {
	// ∆ < 0 (far hop replies faster than near hop due to asymmetric return
	// paths) must flow through the pipeline — the paper observes these
	// routinely (Fig 7c, 7d).
	var obs []Observation
	d := NewDetector(Config{Seed: 1, Observer: func(o Observation) { obs = append(obs, o) }}, testASN)
	rng := rand.New(rand.NewPCG(8, 8))
	for bin := 0; bin < 2; bin++ {
		at := t0.Add(time.Duration(bin) * time.Hour)
		for p := 1; p <= 30; p++ {
			d.Observe(mkResult(p, at, 9, 3, rng)) // far RTT < near RTT
		}
	}
	d.Flush()
	if len(obs) == 0 {
		t.Fatal("no observations")
	}
	if obs[0].Observed.Median >= 0 {
		t.Errorf("median ∆ = %v, want negative", obs[0].Observed.Median)
	}
}

// Ablation A1 in miniature: a bin contaminated by a few huge outliers must
// not trip the median detector, but does trip the mean baseline.
func TestMedianRobustToOutliersMeanIsNot(t *testing.T) {
	run := func(useMean bool) int {
		d := NewDetector(Config{Seed: 1, UseMeanCI: useMean}, testASN)
		rng := rand.New(rand.NewPCG(9, 9))
		alarms := 0
		for bin := 0; bin < 10; bin++ {
			at := t0.Add(time.Duration(bin) * time.Hour)
			for p := 1; p <= 30; p++ {
				rtt := 5.0
				// In later bins a couple of probes report wild outliers.
				if bin >= 5 && p <= 2 {
					rtt = 400
				}
				alarms += len(d.Observe(mkResult(p, at, 3, 3+rtt-3, rng)))
			}
		}
		alarms += len(d.Flush())
		return alarms
	}
	if n := run(false); n != 0 {
		t.Errorf("median detector fired %d alarms on outliers, want 0", n)
	}
	if n := run(true); n == 0 {
		t.Error("mean baseline should fire on outliers (that is why the paper rejects it)")
	}
}

func TestObserverSeesReferenceWarmup(t *testing.T) {
	var obs []Observation
	d := NewDetector(Config{Seed: 1, Observer: func(o Observation) { obs = append(obs, o) }}, testASN)
	rng := rand.New(rand.NewPCG(10, 10))
	for bin := 0; bin < 6; bin++ {
		feedBin(d, bin, 30, 0, rng)
	}
	d.Flush()
	if len(obs) != 6 {
		t.Fatalf("observations = %d, want 6", len(obs))
	}
	// First WarmupBins observations have an invalid reference.
	for i := 0; i < 3; i++ {
		if obs[i].Reference.Valid() {
			t.Errorf("bin %d reference should be warming up", i)
		}
	}
	for i := 3; i < 6; i++ {
		if !obs[i].Reference.Valid() {
			t.Errorf("bin %d reference should be primed", i)
		}
	}
}

func almostEq(a, b, eps float64) bool {
	if a > b {
		return a-b <= eps
	}
	return b-a <= eps
}
