package delay

import (
	"math/rand/v2"
	"testing"
	"time"

	"pinpoint/internal/ident"
	"pinpoint/internal/stats"
)

// BenchmarkObserve measures per-result ingestion cost (sample extraction
// into the per-link accumulators) — the streaming hot path.
func BenchmarkObserve(b *testing.B) {
	d := NewDetector(Config{Seed: 1}, testASN)
	rng := rand.New(rand.NewPCG(1, 1))
	results := make([]int, 64)
	for i := range results {
		results[i] = i%30 + 1
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prb := results[i%len(results)]
		d.Observe(mkResult(prb, t0.Add(time.Duration(i/1000)*time.Hour), 5, 7, rng))
	}
}

// BenchmarkCloseBin measures one full bin evaluation (diversity filter,
// Wilson characterization, reference update) for a well-observed link.
func BenchmarkCloseBin(b *testing.B) {
	rng := rand.New(rand.NewPCG(2, 2))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := NewDetector(Config{Seed: 1}, testASN)
		for p := 1; p <= 60; p++ {
			d.Observe(mkResult(p, t0, 5, 7, rng))
		}
		b.StartTimer()
		d.Flush()
	}
}

// BenchmarkBinClose measures steady-state bin evaluation: a warmed
// detector re-ingests one pre-extracted per-bin sample batch and closes
// the bin, exercising the radix close order, probe grouping, diversity
// filtering, and the selection kernel with every scratch buffer warm.
// The batch is alarm-free by construction (identical distribution every
// bin), so this is the detector's quiet-network floor — it must run with
// 0 allocs/op.
func BenchmarkBinClose(b *testing.B) {
	d := NewDetector(Config{Seed: 1}, testASN)
	rng := rand.New(rand.NewPCG(3, 3))
	in := ident.NewInterner(d.Registry())
	var batch []Sample
	for p := 1; p <= 60; p++ {
		r := mkResult(p, t0, 5, 7, rng)
		ExtractSamples(in, r, testASN, func(s Sample) { batch = append(batch, s) })
	}
	bin := t0
	run := func() []Alarm {
		d.BeginBin(bin)
		for _, s := range batch {
			d.IngestSample(s)
		}
		bin = bin.Add(time.Hour)
		return d.Flush()
	}
	for i := 0; i < 4; i++ {
		run() // warm the reference and every scratch buffer
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if alarms := run(); len(alarms) != 0 {
			b.Fatalf("steady-state fixture emitted %d alarms", len(alarms))
		}
	}
	b.ReportMetric(float64(len(batch)*b.N)/b.Elapsed().Seconds(), "samples/s")
}

func BenchmarkDeviation(b *testing.B) {
	ref := stats.MedianCI{Median: 5, Lower: 4, Upper: 6, N: 100}
	cur := stats.MedianCI{Median: 10, Lower: 9, Upper: 11, N: 100}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Deviation(cur, ref)
	}
}
