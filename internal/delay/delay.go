// Package delay implements the paper's differential-RTT delay-change
// detection (§4): per 1-hour bin and per IP-level link it computes the
// differential RTT samples from every probe, filters links without enough
// probe diversity (§4.3), characterizes the distribution with the median and
// its Wilson-score confidence interval (§4.2.2), compares against an
// exponentially smoothed reference (§4.2.4), and reports anomalies with the
// deviation score d(∆) of Eq 6 (§4.2.3).
//
// The hot path flows interned IDs, not addresses: extraction interns every
// (near, far) pair through ident.Registry once and emits ∆ samples tagged
// with a dense LinkID; the detector keeps columnar per-link state in flat
// slices indexed by that ID, with per-bin sample buffers whose capacity is
// reused across bins. Steady-state ingestion therefore performs no map
// writes and no allocations; addresses reappear only at bin close, where
// links are evaluated in reverse-resolved (Near, Far) order so the emitted
// alarms are bit-identical to the pre-ID implementation.
package delay

import (
	"encoding/binary"
	"math"
	"math/rand/v2"
	"slices"
	"sort"
	"time"

	"pinpoint/internal/hash"
	"pinpoint/internal/ident"
	"pinpoint/internal/ipmap"
	"pinpoint/internal/stats"
	"pinpoint/internal/timeseries"
	"pinpoint/internal/trace"
)

// Config parameterizes the detector. NewDetector fills zero fields with the
// paper's values.
type Config struct {
	BinSize    time.Duration // analysis bin; paper: 1 hour
	Z          float64       // normal quantile for CIs; paper: 1.96 (95%)
	Alpha      float64       // exponential smoothing factor; paper: "small"
	WarmupBins int           // bins whose median seeds the reference; paper: 3
	MinASes    int           // probe-diversity criterion 1; paper: 3
	MinEntropy float64       // probe-diversity criterion 2; paper: 0.5
	MinSamples int           // minimum ∆ samples per link-bin; Appendix B: 9
	MinDiffMS  float64       // minimum median gap to report; paper: 1 ms
	Seed       uint64        // seeds the random probe dropping of §4.3

	// EvictIdleBins, when positive, evicts a link's per-link state (sample
	// buffers and smoothed reference) once the link has produced no samples
	// for that many consecutive bins, bounding detector memory on long runs
	// with churning link populations. Eviction is an explicit fidelity
	// tradeoff: a link returning after the idle window restarts reference
	// warmup exactly as a never-seen link would, so alarms it would have
	// raised against the old reference are lost. The decision depends only
	// on the link's own sample history (bin timestamps, not close counts),
	// so any shard layout evicts identically and sharded output stays
	// bit-identical to sequential output. 0 (the default) disables eviction,
	// preserving the paper's unbounded-memory behavior.
	EvictIdleBins int

	// Registry is the identity layer the detector interns links through.
	// Leave nil for a private registry (the standalone sequential path);
	// the sharded engine injects its shared registry here so the LinkIDs
	// on routed samples resolve in every shard.
	Registry *ident.Registry

	// Observer, when non-nil, receives every evaluated link-bin observation
	// (after diversity filtering), anomalous or not. Experiment harnesses
	// use it to regenerate the per-link panels of Figs 2, 7 and 11.
	Observer func(Observation)

	// SymmetricLink, when non-nil, marks links known to carry their return
	// traffic on the same physical path (Eq 4: ∆ = δAB + δBA, no
	// return-path ambiguity). For such links the probe-diversity
	// constraint is released, as §9 proposes for future work: any probe
	// count is accepted because every probe's ε is the link's own reverse
	// delay. Asserting symmetry is the caller's responsibility — the paper
	// notes there is no general technique for it yet.
	SymmetricLink func(trace.LinkKey) bool

	// Ablation knobs — NOT part of the paper's method; they implement the
	// baselines §4.2.2 and §4.3 argue against, for the A1/A2 benches.

	// UseMeanCI characterizes bins with the arithmetic mean and its
	// standard-error CI (the original CLT) instead of the median + Wilson
	// score.
	UseMeanCI bool
	// DisableDiversityFilter accepts every link regardless of probe AS
	// diversity.
	DisableDiversityFilter bool
}

func (c Config) withDefaults() Config {
	if c.BinSize == 0 {
		c.BinSize = time.Hour
	}
	if c.Z == 0 {
		c.Z = stats.Z95
	}
	if c.Alpha == 0 {
		// The paper only says "a small α value is preferable" (§4.2.4).
		// 0.01 keeps a 2-hour, +100 ms event from dragging the reference
		// more than a couple of ms, which bounds the post-event recovery
		// tail of low-deviation alarms while still adapting to genuine
		// level shifts within a few days.
		c.Alpha = 0.01
	}
	if c.WarmupBins == 0 {
		c.WarmupBins = 3
	}
	if c.MinASes == 0 {
		c.MinASes = 3
	}
	if c.MinEntropy == 0 {
		c.MinEntropy = 0.5
	}
	if c.MinSamples == 0 {
		c.MinSamples = 9
	}
	if c.MinDiffMS == 0 {
		c.MinDiffMS = 1.0
	}
	if c.Registry == nil {
		c.Registry = ident.NewRegistry()
	}
	return c
}

// Alarm reports one abnormal delay change on one link in one bin.
type Alarm struct {
	Bin       time.Time
	Link      trace.LinkKey
	Observed  stats.MedianCI // this bin's median ∆ and CI
	Reference stats.MedianCI // the smoothed normal reference
	Deviation float64        // d(∆), Eq 6 — relative gap between the CIs
	DiffMS    float64        // |observed median − reference median|
	Probes    int            // probes contributing after filtering
	ASes      int            // distinct probe ASes after filtering
}

// Observation is the per-bin evaluation of one link, emitted to
// Config.Observer. Reference is the state before this bin updates it; it is
// invalid (N == 0) while the reference is still warming up.
type Observation struct {
	Bin       time.Time
	Link      trace.LinkKey
	Observed  stats.MedianCI
	Reference stats.MedianCI
	Anomalous bool
	Deviation float64
	Probes    int
	ASes      int
}

// probeASNFunc resolves a probe id to its AS number.
type probeASNFunc func(int) (ipmap.ASN, bool)

// linkRef is the smoothed normal reference of one link: the median and the
// CI bounds are each tracked with the same exponential smoothing (§4.2.4).
// It is embedded by value in the columnar link state.
type linkRef struct {
	median stats.EWMA
	lower  stats.EWMA
	upper  stats.EWMA
}

func (r *linkRef) ci() stats.MedianCI {
	if !r.median.Primed() {
		return stats.MedianCI{}
	}
	return stats.MedianCI{Median: r.median.Value(), Lower: r.lower.Value(), Upper: r.upper.Value(), N: 1}
}

func (r *linkRef) observe(ci stats.MedianCI) {
	r.median.Observe(ci.Median)
	r.lower.Observe(ci.Lower)
	r.upper.Observe(ci.Upper)
}

// Sample is one differential-RTT contribution (§4.2.1) extracted from a
// traceroute result: the ∆ of one (near, far) reply combination, tagged with
// the probe and its AS. The link is carried as an interned ident.LinkID —
// 24 bytes per sample instead of two netip.Addrs — so samples are cheap to
// buffer and route; the sharded engine hashes the LinkID to pick the shard
// owning the link.
type Sample struct {
	Link  ident.LinkID
	Probe int32
	ASN   ipmap.ASN
	Delta float64
}

// ExtractSamples decomposes one result into its differential RTT samples
// (§4.2.1): for adjacent hops X, Y every combination RTT(P→y) − RTT(P→x)
// over the replies is one ∆ sample of the link (x, y), giving one to nine
// samples per probe and link. Results from probes with no resolvable AS
// yield nothing, since the §4.3 diversity filter cannot place them.
// Extraction interns addresses and links through the caller's Interner
// (lock-free single-owner memo over the shared registry) and emits
// ID-tagged samples; it owns no other state, so each extracting goroutine
// runs with its own Interner while detector state stays shard-local.
func ExtractSamples(in *ident.Interner, r trace.Result, probeASN func(int) (ipmap.ASN, bool), fn func(Sample)) {
	asn, ok := probeASN(r.PrbID)
	if !ok {
		return
	}
	prb := int32(r.PrbID)
	for hi := 0; hi+1 < len(r.Hops); hi++ {
		near, far := &r.Hops[hi], &r.Hops[hi+1]
		if far.Index != near.Index+1 {
			continue
		}
		// Intern each far responder once per hop pair, not once per
		// combination. Atlas sends three packets per hop, so the stack
		// buffer covers every realistic result.
		var farBuf [8]ident.AddrID
		nfar := len(far.Replies)
		if nfar > len(farBuf) {
			nfar = len(farBuf)
		}
		for j := 0; j < nfar; j++ {
			rb := &far.Replies[j]
			if rb.Timeout || !rb.From.IsValid() {
				farBuf[j] = ident.ZeroAddr
				continue
			}
			farBuf[j] = in.Addr(rb.From)
		}
		for _, ra := range near.Replies {
			if ra.Timeout || !ra.From.IsValid() {
				continue
			}
			nearID := in.Addr(ra.From)
			for j, rb := range far.Replies {
				if rb.Timeout || !rb.From.IsValid() || rb.From == ra.From {
					continue
				}
				farID := ident.ZeroAddr
				if j < nfar {
					farID = farBuf[j]
				} else {
					farID = in.Addr(rb.From)
				}
				fn(Sample{
					Link:  in.Link(nearID, farID),
					Probe: prb,
					ASN:   asn,
					Delta: rb.RTT - ra.RTT,
				})
			}
		}
	}
}

// sampleEntry is one ∆ sample as stored in the columnar per-link bin
// buffer, in arrival order. Grouping by probe happens once, at bin close.
type sampleEntry struct {
	probe int32
	asn   ipmap.ASN
	delta float64
}

// linkState is the columnar per-link record, indexed by ident.LinkID. The
// entries buffer is truncated (capacity kept) when a new bin first touches
// the link, so steady-state ingestion reuses the same backing arrays. The
// reverse-resolved key is cached here at slot creation (a LinkID's address
// pair never changes), so bin close never goes back to the registry. With
// EvictIdleBins set, idle slots are reclaimed onto a free list (dead marks
// a reclaimed slot); lastBin records the bin the link last produced a
// sample in, the sole input to the eviction decision.
type linkState struct {
	epoch   uint32        // bin epoch of the entries buffer
	entries []sampleEntry // this bin's ∆ samples, arrival order
	dead    bool          // slot reclaimed, waiting on the free list
	hasRef  bool          // ref initialized (link passed filtering once)
	isV4    bool          // both addresses are 4-byte: key64 is valid
	id      ident.LinkID  // owning link, to clear slotOf on eviction
	lastBin int64         // UnixNano of the bin the link last appeared in
	key     trace.LinkKey // reverse-resolved (Near, Far), cached once
	key64   uint64        // big-endian-packed (Near, Far) for the radix close order
	ref     linkRef
}

// probeGroup is one probe's contiguous run in the probe-sorted entries of
// one link-bin: entries[start:end] are its samples in arrival order.
type probeGroup struct {
	probe      int32
	asn        ipmap.ASN
	start, end int32
}

// asBucket groups the indices of one AS's probeGroups (probe-ascending),
// the unit the §4.3 dropping loop removes probes from.
type asBucket struct {
	asn    ipmap.ASN
	groups []int32 // indices into the groups scratch
}

// Detector is the streaming delay-change detector. Feed chronologically
// ordered results with Observe; alarms for a bin are returned when the
// stream crosses into the next bin (and by Flush at end of stream).
// Detector is not safe for concurrent use.
type Detector struct {
	cfg      Config
	reg      *ident.Registry
	intern   *ident.Interner
	probeASN probeASNFunc

	// Probe dropping (§4.3) draws from a PCG reseeded per (link, bin) from
	// cfg.Seed, so a link's random decisions depend only on the link, the
	// bin and the seed — never on how many other links were evaluated
	// first. This is what lets N shard-local detectors reproduce the
	// single-detector output bit for bit.
	pcg *rand.PCG
	rng *rand.Rand

	curBin  time.Time
	haveBin bool
	epoch   uint32 // distinguishes the open bin's entries from stale ones

	// Columnar state. LinkIDs are global to the registry while a sharded
	// detector owns only ~1/W of the links, so a dense per-detector slot
	// table (slotOf: LinkID → index into links, −1 when unowned; 4 bytes
	// per global ID) keeps the ~200-byte linkState records scaled to the
	// links this detector actually ingests.
	slotOf    []int32
	links     []linkState
	touched   []ident.LinkID // links with samples in the open bin
	linkSeen  []bool         // per-LinkID: ever counted in linksSeen (survives eviction)
	linksSeen int

	// Idle-state eviction (Config.EvictIdleBins). evictAfter is the idle
	// threshold in nanoseconds (0 = disabled); freeSlots are reclaimed link
	// slots awaiting reuse. The authoritative staleness check runs at touch
	// time against lastBin, so the close-time sweep is pure memory
	// reclamation and cannot change output.
	evictAfter int64
	freeSlots  []int32
	evicted    int

	sink func(Sample) // bound once; avoids a closure alloc per result

	// Bin-close scratch, reused across bins so steady-state close is
	// alloc-free. closeKeys/closeOrd (+ their radix ping-pong buffers) hold
	// the link close-order permutation and stay live across the whole link
	// loop; lkeyBuf/ltmpBuf are the per-link radix scratch reused by
	// groupEntries and filterDiversity (their decoded permutations land in
	// ordBuf/idxBuf, so the key buffers are dead between uses).
	closeKeys  []uint64
	closeOrd   []int32
	closeTmpK  []uint64
	closeTmpV  []int32
	lkeyBuf    []uint64
	ltmpBuf    []uint64
	ordBuf     []int32
	groupBuf   []probeGroup
	idxBuf     []int32
	bucketBuf  []asBucket
	countsBuf  []int
	samplesBuf []float64

	// Cumulative bin-close accounting (CloseStats).
	binsClosed    int
	linksClosed   int
	kernelSamples int64
	closeDur      time.Duration
}

// CloseStats is cumulative bin-close activity: how much work flowed
// through the close-time statistics kernels and how long it took. It backs
// the cmd/pinpoint -binclose-stats summary so detector-side performance is
// visible without a profiler.
type CloseStats struct {
	Bins    int           // bins closed
	Links   int           // link-bins evaluated (after diversity filtering)
	Samples int64         // ∆ samples fed through the median/CI kernels
	Evicted int           // idle link states evicted (Config.EvictIdleBins)
	Dur     time.Duration // wall time spent closing bins
}

// CloseStats returns the detector's cumulative bin-close accounting.
func (d *Detector) CloseStats() CloseStats {
	return CloseStats{Bins: d.binsClosed, Links: d.linksClosed, Samples: d.kernelSamples, Evicted: d.evicted, Dur: d.closeDur}
}

// NewDetector returns a Detector with the given configuration; probeASN
// resolves probe ids to AS numbers (unresolvable probes are ignored, since
// diversity filtering is impossible without an AS).
func NewDetector(cfg Config, probeASN func(int) (ipmap.ASN, bool)) *Detector {
	cfg = cfg.withDefaults()
	pcg := rand.NewPCG(cfg.Seed, 0x5ca1ab1e)
	d := &Detector{
		cfg:      cfg,
		reg:      cfg.Registry,
		intern:   ident.NewInterner(cfg.Registry),
		probeASN: probeASN,
		pcg:      pcg,
		rng:      rand.New(pcg),
		epoch:    1,
	}
	if cfg.EvictIdleBins > 0 {
		d.evictAfter = int64(cfg.EvictIdleBins) * cfg.BinSize.Nanoseconds()
	}
	d.sink = d.IngestSample
	return d
}

// Config returns the effective (default-filled) configuration.
func (d *Detector) Config() Config { return d.cfg }

// Registry returns the identity registry the detector interns through.
func (d *Detector) Registry() *ident.Registry { return d.reg }

// LinksSeen returns how many distinct links ever produced ∆ samples — the
// paper's "we monitored delays for 262k IPv4 links" statistic.
func (d *Detector) LinksSeen() int { return d.linksSeen }

// Observe ingests one traceroute result. When the result's bin is newer
// than the current one, the current bin is evaluated first and its alarms
// returned. Results older than the current bin are folded into it (the
// platform emits in order, so this only smooths jitter at bin edges).
func (d *Detector) Observe(r trace.Result) []Alarm {
	bin := timeseries.Bin(r.Time, d.cfg.BinSize)
	var alarms []Alarm
	if d.haveBin && bin.After(d.curBin) {
		alarms = d.closeBin()
	}
	if !d.haveBin || bin.After(d.curBin) {
		d.curBin = bin
		d.haveBin = true
	}
	d.ingest(r)
	return alarms
}

// Flush evaluates and clears the currently open bin. Call at end of stream.
func (d *Detector) Flush() []Alarm {
	if !d.haveBin {
		return nil
	}
	alarms := d.closeBin()
	d.haveBin = false
	return alarms
}

// ingest extracts differential RTT samples (§4.2.1) and folds them into the
// open bin.
func (d *Detector) ingest(r trace.Result) {
	ExtractSamples(d.intern, r, d.probeASN, d.sink)
}

// BeginBin opens (or asserts) the bin the next IngestSample calls belong to.
// It is the sharded engine's entry point: the engine closes bins explicitly
// via Flush, so BeginBin never evaluates — it only moves the bin cursor
// forward. Bins must be opened in chronological order.
func (d *Detector) BeginBin(bin time.Time) {
	if !d.haveBin || bin.After(d.curBin) {
		d.curBin = bin
		d.haveBin = true
	}
}

// IngestSample folds one extracted ∆ sample into the open bin. Together with
// BeginBin and Flush it forms the shard-scoped API: an engine shard feeds
// only the samples whose link hashes to it, and the per-(link, bin) seeded
// probe dropping guarantees the shard reproduces exactly what a single
// detector would have decided for that link. In steady state this is one
// epoch check and one append into a recycled buffer — no map, no alloc.
func (d *Detector) IngestSample(s Sample) {
	li := int(s.Link)
	if li >= len(d.slotOf) {
		d.slotOf = ident.GrowTable(d.slotOf, li+1, -1)
	}
	if li >= len(d.linkSeen) {
		d.linkSeen = ident.GrowTable(d.linkSeen, li+1, false)
	}
	si := d.slotOf[li]
	if si < 0 {
		// Resolve the address pair once, at slot creation: every later bin
		// close reads the cached key instead of going through the registry's
		// read lock, and the packed big-endian form drives the radix close
		// order for IPv4 links.
		key := d.reg.LinkKeyOf(s.Link)
		st := linkState{key: key, id: s.Link}
		if key.Near.Is4() && key.Far.Is4() {
			n4, f4 := key.Near.As4(), key.Far.As4()
			st.key64 = uint64(binary.BigEndian.Uint32(n4[:]))<<32 | uint64(binary.BigEndian.Uint32(f4[:]))
			st.isV4 = true
		}
		if n := len(d.freeSlots); n > 0 {
			si = d.freeSlots[n-1]
			d.freeSlots = d.freeSlots[:n-1]
			d.links[si] = st
		} else {
			si = int32(len(d.links))
			d.links = append(d.links, st)
		}
		d.slotOf[li] = si
	}
	ls := &d.links[si]
	if ls.epoch != d.epoch {
		ls.epoch = d.epoch
		ls.entries = ls.entries[:0]
		d.touched = append(d.touched, s.Link)
		bin := d.curBin.UnixNano()
		// Touch-time staleness is the authoritative eviction semantics: a
		// link idle for more than EvictIdleBins full bins restarts from a
		// cold reference, exactly as if the close-time sweep had reclaimed
		// the slot. Because the check reads only (this bin, last sample
		// bin), every shard layout decides identically.
		if d.evictAfter > 0 && ls.hasRef && bin-ls.lastBin > d.evictAfter {
			ls.hasRef = false
			ls.ref = linkRef{}
			d.evicted++
		}
		ls.lastBin = bin
		if !d.linkSeen[li] {
			d.linkSeen[li] = true
			d.linksSeen++
		}
	}
	ls.entries = append(ls.entries, sampleEntry{probe: s.Probe, asn: s.ASN, delta: s.Delta})
}

// closeBin runs steps 2–5 of §4.2 on the accumulated bin and resets it.
func (d *Detector) closeBin() []Alarm {
	t0 := time.Now()
	var alarms []Alarm
	// Deterministic iteration: links are evaluated in (Near, Far) address
	// order. The probe-dropping step consumes randomness keyed per link, and
	// downstream consumers accumulate floats in emission order, so the close
	// order must stay exactly the address order the pre-ID detector used —
	// never the (run-dependent) ID order. When every touched link is IPv4
	// (the normal case) the order comes from a radix sort over packed
	// big-endian (Near, Far) keys: two Is4 addresses compare by their 4-byte
	// big-endian value under netip.Addr.Compare (same BitLen, same v4-mapped
	// prefix), so uint64 key order ≡ the comparison order, and distinct
	// LinkIDs always pack to distinct keys. Any non-IPv4 link falls back to
	// the comparison sort on the cached keys.
	keys64 := d.closeKeys[:0]
	order := d.closeOrd[:0]
	allV4 := true
	for i, id := range d.touched {
		ls := &d.links[d.slotOf[id]]
		if !ls.isV4 {
			allV4 = false
			break
		}
		keys64 = append(keys64, ls.key64)
		order = append(order, int32(i))
	}
	if allV4 {
		d.closeTmpK, d.closeTmpV = stats.RadixSortUint64Pairs(keys64, order, d.closeTmpK, d.closeTmpV)
	} else {
		order = order[:0]
		for i := range d.touched {
			order = append(order, int32(i))
		}
		slices.SortFunc(order, func(a, b int32) int {
			ka := &d.links[d.slotOf[d.touched[a]]].key
			kb := &d.links[d.slotOf[d.touched[b]]].key
			if c := ka.Near.Compare(kb.Near); c != 0 {
				return c
			}
			return ka.Far.Compare(kb.Far)
		})
	}

	for _, ti := range order {
		ls := &d.links[d.slotOf[d.touched[ti]]]
		key := ls.key
		ord, groups := d.groupEntries(ls.entries)
		var samples []float64
		var ok bool
		var probes, ases int
		if d.cfg.SymmetricLink != nil && d.cfg.SymmetricLink(key) {
			samples, probes, ases = d.collectAll(ls.entries, ord, groups)
			ok = true
		} else {
			d.reseed(key)
			samples, probes, ases, ok = d.filterDiversity(ls.entries, ord, groups)
		}
		if !ok || len(samples) < d.cfg.MinSamples {
			continue
		}
		d.linksClosed++
		d.kernelSamples += int64(len(samples))
		var obs stats.MedianCI
		if d.cfg.UseMeanCI {
			// The ablation's Mean/Stddev accumulate floats in element order;
			// keep the historical full sort so its summation order (and thus
			// its rounding) stays bit-identical.
			sort.Float64s(samples)
			obs = stats.MeanCI(samples, d.cfg.Z)
		} else {
			// Three order statistics, selected in O(n) — same MedianCI the
			// sorted path produced (stats.MedianWilsonSorted stays as the
			// fuzz-pinned oracle).
			obs = stats.MedianWilsonSelect(samples, d.cfg.Z)
		}

		if !ls.hasRef {
			ls.hasRef = true
			ls.ref = linkRef{
				median: stats.MakeEWMA(d.cfg.Alpha, d.cfg.WarmupBins),
				lower:  stats.MakeEWMA(d.cfg.Alpha, d.cfg.WarmupBins),
				upper:  stats.MakeEWMA(d.cfg.Alpha, d.cfg.WarmupBins),
			}
		}
		ref := &ls.ref

		refCI := ref.ci()
		anomalous := false
		deviation := 0.0
		if refCI.Valid() {
			deviation = Deviation(obs, refCI)
			diff := math.Abs(obs.Median - refCI.Median)
			// Report only non-overlapping CIs with a median gap of at
			// least MinDiffMS (§4.2.3's 1 ms rule of thumb).
			if deviation > 0 && diff >= d.cfg.MinDiffMS {
				anomalous = true
				alarms = append(alarms, Alarm{
					Bin:       d.curBin,
					Link:      key,
					Observed:  obs,
					Reference: refCI,
					Deviation: deviation,
					DiffMS:    diff,
					Probes:    probes,
					ASes:      ases,
				})
			}
		}
		if d.cfg.Observer != nil {
			d.cfg.Observer(Observation{
				Bin:       d.curBin,
				Link:      key,
				Observed:  obs,
				Reference: refCI,
				Anomalous: anomalous,
				Deviation: deviation,
				Probes:    probes,
				ASes:      ases,
			})
		}
		// Step 5: update the reference with the latest values. The small α
		// keeps anomalous bins from dragging the reference along.
		ref.observe(obs)
	}

	// Idle-state sweep: reclaim slots whose link has produced no samples for
	// EvictIdleBins consecutive bins (ending at the bin just closed). The
	// sweep frees the dominant memory — sample buffers and references — and
	// returns the slot to the free list; a returning link recreates it from
	// scratch. It is strictly weaker than the touch-time check above (an
	// evicted link's earliest possible return is one bin later, which the
	// touch check also resets), so reclamation timing can never change
	// output — only when memory is released.
	if d.evictAfter > 0 {
		cb := d.curBin.UnixNano()
		for si := range d.links {
			ls := &d.links[si]
			if ls.dead || cb-ls.lastBin < d.evictAfter {
				continue
			}
			d.slotOf[ls.id] = -1
			*ls = linkState{dead: true}
			d.freeSlots = append(d.freeSlots, int32(si))
			d.evicted++
		}
	}

	d.closeKeys = keys64[:0]
	d.closeOrd = order[:0]
	d.touched = d.touched[:0]
	d.epoch++
	d.binsClosed++
	d.closeDur += time.Since(t0)
	return alarms
}

// groupEntries groups a link-bin's entries by probe without moving them:
// it orders an index permutation by (probe, arrival index) — a total order
// over values that pack losslessly into a uint64 (sign-biased probe in the
// high word, arrival index in the low word), so an LSD radix sort over the
// packed keys replaces the comparison sort and the permutation decodes
// straight out of the keys' low words. The result is identical to the old
// sort: probe-ascending groups, each probe's samples in arrival order,
// exactly as the old per-probe append buffers kept them.
func (d *Detector) groupEntries(entries []sampleEntry) ([]int32, []probeGroup) {
	keys := d.lkeyBuf[:0]
	for i := range entries {
		// XOR-biasing the int32 probe maps signed order onto unsigned order.
		keys = append(keys, uint64(uint32(entries[i].probe)^0x80000000)<<32|uint64(uint32(i)))
	}
	d.ltmpBuf = stats.RadixSortUint64(keys, d.ltmpBuf)
	ord := d.ordBuf[:0]
	for _, k := range keys {
		ord = append(ord, int32(uint32(k)))
	}
	d.lkeyBuf = keys[:0]
	groups := d.groupBuf[:0]
	for i := 0; i < len(ord); {
		p := entries[ord[i]].probe
		j := i + 1
		for j < len(ord) && entries[ord[j]].probe == p {
			j++
		}
		groups = append(groups, probeGroup{
			probe: p,
			asn:   entries[ord[i]].asn,
			start: int32(i),
			end:   int32(j),
		})
		i = j
	}
	d.ordBuf = ord
	d.groupBuf = groups
	return ord, groups
}

// reseed rebinds the probe-dropping PRNG to the (link, bin) about to be
// evaluated. The stream position never leaks into the draw sequence, so any
// partition of links across detectors reproduces the same decisions.
func (d *Detector) reseed(key trace.LinkKey) {
	h1 := hash.Mix64(hash.Mix64(d.cfg.Seed, uint64(d.curBin.Unix())), 0x5ca1ab1e)
	h2 := d.cfg.Seed
	near := key.Near.As16()
	far := key.Far.As16()
	for i := 0; i < 16; i += 8 {
		h1 = hash.Fold(h1, binary.BigEndian.Uint64(near[i:]), binary.BigEndian.Uint64(far[i:]))
		h2 = hash.Fold(h2, binary.BigEndian.Uint64(far[i:]), binary.BigEndian.Uint64(near[i:]))
	}
	d.pcg.Seed(h1, h2)
}

// filterDiversity applies §4.3: the link must be observed from at least
// MinASes distinct ASes, and the probe-per-AS distribution must have
// normalized entropy above MinEntropy — otherwise probes are randomly
// dropped from the most-represented AS until it does. It returns the
// surviving ∆ samples (into the reusable scratch) and the contributing
// probe/AS counts; ok is false when the link fails the AS-count criterion.
// The dropping decisions are bit-identical to the map-based implementation:
// per-AS probe lists are probe-ascending and the most-represented AS breaks
// ties on the smallest ASN, so the PRNG sees the same draw sequence.
func (d *Detector) filterDiversity(entries []sampleEntry, ord []int32, groups []probeGroup) (samples []float64, probes, ases int, ok bool) {
	// Bucket the probe groups per AS, ASN-ascending. Group indices within a
	// bucket are probe-ascending because groups already are: the radix key
	// packs (uint32 ASN, group index) so key order is exactly the old
	// comparator's (asn, index) total order, index doubling as the
	// deterministic tie-break.
	buckets := d.bucketBuf[:0]
	keys := d.lkeyBuf[:0]
	for gi := range groups {
		keys = append(keys, uint64(groups[gi].asn)<<32|uint64(uint32(gi)))
	}
	d.ltmpBuf = stats.RadixSortUint64(keys, d.ltmpBuf)
	idx := d.idxBuf[:0]
	for _, k := range keys {
		idx = append(idx, int32(uint32(k)))
	}
	d.lkeyBuf = keys[:0]
	for i := 0; i < len(idx); {
		j := i + 1
		for j < len(idx) && groups[idx[j]].asn == groups[idx[i]].asn {
			j++
		}
		buckets = append(buckets, asBucket{asn: groups[idx[i]].asn, groups: idx[i:j:j]})
		i = j
	}
	d.idxBuf = idx[:0]
	d.bucketBuf = buckets[:0]

	samples = d.samplesBuf[:0]
	collect := func() []float64 {
		for _, b := range buckets {
			if len(b.groups) == 0 {
				continue
			}
			ases++
			for _, gi := range b.groups {
				g := groups[gi]
				probes++
				for _, ei := range ord[g.start:g.end] {
					samples = append(samples, entries[ei].delta)
				}
			}
		}
		d.samplesBuf = samples
		return samples
	}

	if d.cfg.DisableDiversityFilter {
		return collect(), probes, ases, true
	}
	if len(buckets) < d.cfg.MinASes {
		return nil, 0, 0, false
	}
	counts := d.countsBuf[:0]
	refresh := func() []int {
		counts = counts[:0]
		for _, b := range buckets {
			counts = append(counts, len(b.groups))
		}
		return counts
	}
	for stats.NormalizedEntropy(refresh()) <= d.cfg.MinEntropy {
		// Find the most-represented AS (deterministic tie-break on ASN:
		// buckets are ASN-ascending and the comparison is strict).
		maxB := -1
		maxN := -1
		for bi := range buckets {
			if len(buckets[bi].groups) > maxN {
				maxN = len(buckets[bi].groups)
				maxB = bi
			}
		}
		if maxN <= 1 {
			// Cannot improve entropy further; §4.3's loop always
			// terminates before this in practice, but guard regardless.
			break
		}
		ids := buckets[maxB].groups
		drop := d.rng.IntN(len(ids))
		buckets[maxB].groups = append(ids[:drop], ids[drop+1:]...)
	}
	d.countsBuf = counts[:0]
	return collect(), probes, ases, true
}

// collectAll gathers every probe's samples without diversity filtering —
// the symmetric-link path (§9 future work) where return-path ambiguity
// does not exist.
func (d *Detector) collectAll(entries []sampleEntry, ord []int32, groups []probeGroup) (samples []float64, probes, ases int) {
	samples = d.samplesBuf[:0]
	var lastASN ipmap.ASN
	asnSeen := d.countsBuf[:0] // reuse as a tiny distinct-ASN scratch
	for _, g := range groups {
		probes++
		if probes == 1 || g.asn != lastASN {
			dup := false
			for _, a := range asnSeen {
				if ipmap.ASN(a) == g.asn {
					dup = true
					break
				}
			}
			if !dup {
				asnSeen = append(asnSeen, int(g.asn))
			}
			lastASN = g.asn
		}
		for _, ei := range ord[g.start:g.end] {
			samples = append(samples, entries[ei].delta)
		}
	}
	ases = len(asnSeen)
	d.countsBuf = asnSeen[:0]
	d.samplesBuf = samples
	return samples, probes, ases
}

// Deviation computes d(∆) of Eq 6: the gap between the observed and
// reference confidence intervals, normalized by the reference interval's
// own half-width on the crossed side. Overlapping intervals score 0.
func Deviation(obs, ref stats.MedianCI) float64 {
	const eps = 1e-3 // guards division when the reference CI is degenerate
	switch {
	case ref.Upper < obs.Lower:
		den := ref.Upper - ref.Median
		if den < eps {
			den = eps
		}
		return (obs.Lower - ref.Upper) / den
	case ref.Lower > obs.Upper:
		den := ref.Median - ref.Lower
		if den < eps {
			den = eps
		}
		return (ref.Lower - obs.Upper) / den
	default:
		return 0
	}
}
