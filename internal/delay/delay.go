// Package delay implements the paper's differential-RTT delay-change
// detection (§4): per 1-hour bin and per IP-level link it computes the
// differential RTT samples from every probe, filters links without enough
// probe diversity (§4.3), characterizes the distribution with the median and
// its Wilson-score confidence interval (§4.2.2), compares against an
// exponentially smoothed reference (§4.2.4), and reports anomalies with the
// deviation score d(∆) of Eq 6 (§4.2.3).
package delay

import (
	"encoding/binary"
	"math"
	"math/rand/v2"
	"sort"
	"time"

	"pinpoint/internal/hash"
	"pinpoint/internal/ipmap"
	"pinpoint/internal/stats"
	"pinpoint/internal/timeseries"
	"pinpoint/internal/trace"
)

// Config parameterizes the detector. NewDetector fills zero fields with the
// paper's values.
type Config struct {
	BinSize    time.Duration // analysis bin; paper: 1 hour
	Z          float64       // normal quantile for CIs; paper: 1.96 (95%)
	Alpha      float64       // exponential smoothing factor; paper: "small"
	WarmupBins int           // bins whose median seeds the reference; paper: 3
	MinASes    int           // probe-diversity criterion 1; paper: 3
	MinEntropy float64       // probe-diversity criterion 2; paper: 0.5
	MinSamples int           // minimum ∆ samples per link-bin; Appendix B: 9
	MinDiffMS  float64       // minimum median gap to report; paper: 1 ms
	Seed       uint64        // seeds the random probe dropping of §4.3

	// Observer, when non-nil, receives every evaluated link-bin observation
	// (after diversity filtering), anomalous or not. Experiment harnesses
	// use it to regenerate the per-link panels of Figs 2, 7 and 11.
	Observer func(Observation)

	// SymmetricLink, when non-nil, marks links known to carry their return
	// traffic on the same physical path (Eq 4: ∆ = δAB + δBA, no
	// return-path ambiguity). For such links the probe-diversity
	// constraint is released, as §9 proposes for future work: any probe
	// count is accepted because every probe's ε is the link's own reverse
	// delay. Asserting symmetry is the caller's responsibility — the paper
	// notes there is no general technique for it yet.
	SymmetricLink func(trace.LinkKey) bool

	// Ablation knobs — NOT part of the paper's method; they implement the
	// baselines §4.2.2 and §4.3 argue against, for the A1/A2 benches.

	// UseMeanCI characterizes bins with the arithmetic mean and its
	// standard-error CI (the original CLT) instead of the median + Wilson
	// score.
	UseMeanCI bool
	// DisableDiversityFilter accepts every link regardless of probe AS
	// diversity.
	DisableDiversityFilter bool
}

func (c Config) withDefaults() Config {
	if c.BinSize == 0 {
		c.BinSize = time.Hour
	}
	if c.Z == 0 {
		c.Z = stats.Z95
	}
	if c.Alpha == 0 {
		// The paper only says "a small α value is preferable" (§4.2.4).
		// 0.01 keeps a 2-hour, +100 ms event from dragging the reference
		// more than a couple of ms, which bounds the post-event recovery
		// tail of low-deviation alarms while still adapting to genuine
		// level shifts within a few days.
		c.Alpha = 0.01
	}
	if c.WarmupBins == 0 {
		c.WarmupBins = 3
	}
	if c.MinASes == 0 {
		c.MinASes = 3
	}
	if c.MinEntropy == 0 {
		c.MinEntropy = 0.5
	}
	if c.MinSamples == 0 {
		c.MinSamples = 9
	}
	if c.MinDiffMS == 0 {
		c.MinDiffMS = 1.0
	}
	return c
}

// Alarm reports one abnormal delay change on one link in one bin.
type Alarm struct {
	Bin       time.Time
	Link      trace.LinkKey
	Observed  stats.MedianCI // this bin's median ∆ and CI
	Reference stats.MedianCI // the smoothed normal reference
	Deviation float64        // d(∆), Eq 6 — relative gap between the CIs
	DiffMS    float64        // |observed median − reference median|
	Probes    int            // probes contributing after filtering
	ASes      int            // distinct probe ASes after filtering
}

// Observation is the per-bin evaluation of one link, emitted to
// Config.Observer. Reference is the state before this bin updates it; it is
// invalid (N == 0) while the reference is still warming up.
type Observation struct {
	Bin       time.Time
	Link      trace.LinkKey
	Observed  stats.MedianCI
	Reference stats.MedianCI
	Anomalous bool
	Deviation float64
	Probes    int
	ASes      int
}

// probeASNFunc resolves a probe id to its AS number.
type probeASNFunc func(int) (ipmap.ASN, bool)

// linkRef is the smoothed normal reference of one link: the median and the
// CI bounds are each tracked with the same exponential smoothing (§4.2.4).
type linkRef struct {
	median *stats.EWMA
	lower  *stats.EWMA
	upper  *stats.EWMA
}

func (r *linkRef) ci() stats.MedianCI {
	if !r.median.Primed() {
		return stats.MedianCI{}
	}
	return stats.MedianCI{Median: r.median.Value(), Lower: r.lower.Value(), Upper: r.upper.Value(), N: 1}
}

func (r *linkRef) observe(ci stats.MedianCI) {
	r.median.Observe(ci.Median)
	r.lower.Observe(ci.Lower)
	r.upper.Observe(ci.Upper)
}

// Sample is one differential-RTT contribution (§4.2.1) extracted from a
// traceroute result: the ∆ of one (near, far) reply combination, tagged with
// the probe and its AS. Samples are the unit of work the sharded engine
// routes to the shard owning Link.
type Sample struct {
	Link  trace.LinkKey
	Probe int
	ASN   ipmap.ASN
	Delta float64
}

// ExtractSamples decomposes one result into its differential RTT samples
// (§4.2.1): for adjacent hops X, Y every combination RTT(P→y) − RTT(P→x)
// over the replies is one ∆ sample of the link (x, y), giving one to nine
// samples per probe and link. Results from probes with no resolvable AS
// yield nothing, since the §4.3 diversity filter cannot place them.
// Extraction is pure: it reads only the result, so it can run on any
// goroutine while detector state stays shard-local.
func ExtractSamples(r trace.Result, probeASN func(int) (ipmap.ASN, bool), fn func(Sample)) {
	asn, ok := probeASN(r.PrbID)
	if !ok {
		return
	}
	for _, pair := range r.AdjacentPairs() {
		for _, ra := range pair.Near.Replies {
			if ra.Timeout || !ra.From.IsValid() {
				continue
			}
			for _, rb := range pair.Far.Replies {
				if rb.Timeout || !rb.From.IsValid() || rb.From == ra.From {
					continue
				}
				fn(Sample{
					Link:  trace.LinkKey{Near: ra.From, Far: rb.From},
					Probe: r.PrbID,
					ASN:   asn,
					Delta: rb.RTT - ra.RTT,
				})
			}
		}
	}
}

// probeAgg collects one probe's ∆ samples for one link within a bin.
type probeAgg struct {
	asn     ipmap.ASN
	samples []float64
}

// linkAgg collects all ∆ samples for one link within a bin, per probe.
type linkAgg struct {
	perProbe map[int]*probeAgg
}

// Detector is the streaming delay-change detector. Feed chronologically
// ordered results with Observe; alarms for a bin are returned when the
// stream crosses into the next bin (and by Flush at end of stream).
// Detector is not safe for concurrent use.
type Detector struct {
	cfg      Config
	probeASN probeASNFunc

	// Probe dropping (§4.3) draws from a PCG reseeded per (link, bin) from
	// cfg.Seed, so a link's random decisions depend only on the link, the
	// bin and the seed — never on how many other links were evaluated
	// first. This is what lets N shard-local detectors reproduce the
	// single-detector output bit for bit.
	pcg *rand.PCG
	rng *rand.Rand

	curBin  time.Time
	haveBin bool
	cur     map[trace.LinkKey]*linkAgg
	refs    map[trace.LinkKey]*linkRef

	sink func(Sample) // bound once; avoids a closure alloc per result

	linksSeen map[trace.LinkKey]struct{}
}

// NewDetector returns a Detector with the given configuration; probeASN
// resolves probe ids to AS numbers (unresolvable probes are ignored, since
// diversity filtering is impossible without an AS).
func NewDetector(cfg Config, probeASN func(int) (ipmap.ASN, bool)) *Detector {
	cfg = cfg.withDefaults()
	pcg := rand.NewPCG(cfg.Seed, 0x5ca1ab1e)
	d := &Detector{
		cfg:       cfg,
		probeASN:  probeASN,
		pcg:       pcg,
		rng:       rand.New(pcg),
		cur:       make(map[trace.LinkKey]*linkAgg),
		refs:      make(map[trace.LinkKey]*linkRef),
		linksSeen: make(map[trace.LinkKey]struct{}),
	}
	d.sink = d.IngestSample
	return d
}

// Config returns the effective (default-filled) configuration.
func (d *Detector) Config() Config { return d.cfg }

// LinksSeen returns how many distinct links ever produced ∆ samples — the
// paper's "we monitored delays for 262k IPv4 links" statistic.
func (d *Detector) LinksSeen() int { return len(d.linksSeen) }

// Observe ingests one traceroute result. When the result's bin is newer
// than the current one, the current bin is evaluated first and its alarms
// returned. Results older than the current bin are folded into it (the
// platform emits in order, so this only smooths jitter at bin edges).
func (d *Detector) Observe(r trace.Result) []Alarm {
	bin := timeseries.Bin(r.Time, d.cfg.BinSize)
	var alarms []Alarm
	if d.haveBin && bin.After(d.curBin) {
		alarms = d.closeBin()
	}
	if !d.haveBin || bin.After(d.curBin) {
		d.curBin = bin
		d.haveBin = true
	}
	d.ingest(r)
	return alarms
}

// Flush evaluates and clears the currently open bin. Call at end of stream.
func (d *Detector) Flush() []Alarm {
	if !d.haveBin {
		return nil
	}
	alarms := d.closeBin()
	d.haveBin = false
	return alarms
}

// ingest extracts differential RTT samples (§4.2.1) and folds them into the
// open bin.
func (d *Detector) ingest(r trace.Result) {
	ExtractSamples(r, d.probeASN, d.sink)
}

// BeginBin opens (or asserts) the bin the next IngestSample calls belong to.
// It is the sharded engine's entry point: the engine closes bins explicitly
// via Flush, so BeginBin never evaluates — it only moves the bin cursor
// forward. Bins must be opened in chronological order.
func (d *Detector) BeginBin(bin time.Time) {
	if !d.haveBin || bin.After(d.curBin) {
		d.curBin = bin
		d.haveBin = true
	}
}

// IngestSample folds one extracted ∆ sample into the open bin. Together with
// BeginBin and Flush it forms the shard-scoped API: an engine shard feeds
// only the samples whose link hashes to it, and the per-(link, bin) seeded
// probe dropping guarantees the shard reproduces exactly what a single
// detector would have decided for that link.
func (d *Detector) IngestSample(s Sample) {
	agg := d.cur[s.Link]
	if agg == nil {
		agg = &linkAgg{perProbe: make(map[int]*probeAgg)}
		d.cur[s.Link] = agg
		d.linksSeen[s.Link] = struct{}{}
	}
	pa := agg.perProbe[s.Probe]
	if pa == nil {
		pa = &probeAgg{asn: s.ASN}
		agg.perProbe[s.Probe] = pa
	}
	pa.samples = append(pa.samples, s.Delta)
}

// closeBin runs steps 2–5 of §4.2 on the accumulated bin and resets it.
func (d *Detector) closeBin() []Alarm {
	var alarms []Alarm
	// Deterministic iteration: sort links by string key. The probe-dropping
	// step consumes randomness, so map order must not leak into results.
	keys := make([]trace.LinkKey, 0, len(d.cur))
	for k := range d.cur {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Near != keys[j].Near {
			return keys[i].Near.Less(keys[j].Near)
		}
		return keys[i].Far.Less(keys[j].Far)
	})

	for _, key := range keys {
		agg := d.cur[key]
		var samples []float64
		var probes, ases int
		if d.cfg.SymmetricLink != nil && d.cfg.SymmetricLink(key) {
			samples, probes, ases = collectAll(agg)
		} else {
			d.reseed(key)
			samples, probes, ases = d.filterDiversity(agg)
		}
		if samples == nil || len(samples) < d.cfg.MinSamples {
			continue
		}
		sort.Float64s(samples)
		var obs stats.MedianCI
		if d.cfg.UseMeanCI {
			obs = stats.MeanCI(samples, d.cfg.Z)
		} else {
			obs = stats.MedianWilsonSorted(samples, d.cfg.Z)
		}

		ref := d.refs[key]
		if ref == nil {
			ref = &linkRef{
				median: stats.NewEWMA(d.cfg.Alpha, d.cfg.WarmupBins),
				lower:  stats.NewEWMA(d.cfg.Alpha, d.cfg.WarmupBins),
				upper:  stats.NewEWMA(d.cfg.Alpha, d.cfg.WarmupBins),
			}
			d.refs[key] = ref
		}

		refCI := ref.ci()
		anomalous := false
		deviation := 0.0
		if refCI.Valid() {
			deviation = Deviation(obs, refCI)
			diff := math.Abs(obs.Median - refCI.Median)
			// Report only non-overlapping CIs with a median gap of at
			// least MinDiffMS (§4.2.3's 1 ms rule of thumb).
			if deviation > 0 && diff >= d.cfg.MinDiffMS {
				anomalous = true
				alarms = append(alarms, Alarm{
					Bin:       d.curBin,
					Link:      key,
					Observed:  obs,
					Reference: refCI,
					Deviation: deviation,
					DiffMS:    diff,
					Probes:    probes,
					ASes:      ases,
				})
			}
		}
		if d.cfg.Observer != nil {
			d.cfg.Observer(Observation{
				Bin:       d.curBin,
				Link:      key,
				Observed:  obs,
				Reference: refCI,
				Anomalous: anomalous,
				Deviation: deviation,
				Probes:    probes,
				ASes:      ases,
			})
		}
		// Step 5: update the reference with the latest values. The small α
		// keeps anomalous bins from dragging the reference along.
		ref.observe(obs)
	}

	d.cur = make(map[trace.LinkKey]*linkAgg)
	return alarms
}

// reseed rebinds the probe-dropping PRNG to the (link, bin) about to be
// evaluated. The stream position never leaks into the draw sequence, so any
// partition of links across detectors reproduces the same decisions.
func (d *Detector) reseed(key trace.LinkKey) {
	h1 := hash.Mix64(hash.Mix64(d.cfg.Seed, uint64(d.curBin.Unix())), 0x5ca1ab1e)
	h2 := d.cfg.Seed
	near := key.Near.As16()
	far := key.Far.As16()
	for i := 0; i < 16; i += 8 {
		h1 = hash.Fold(h1, binary.BigEndian.Uint64(near[i:]), binary.BigEndian.Uint64(far[i:]))
		h2 = hash.Fold(h2, binary.BigEndian.Uint64(far[i:]), binary.BigEndian.Uint64(near[i:]))
	}
	d.pcg.Seed(h1, h2)
}

// filterDiversity applies §4.3: the link must be observed from at least
// MinASes distinct ASes, and the probe-per-AS distribution must have
// normalized entropy above MinEntropy — otherwise probes are randomly
// dropped from the most-represented AS until it does. It returns the
// surviving ∆ samples and the contributing probe/AS counts, or nil when the
// link fails the AS-count criterion.
func (d *Detector) filterDiversity(agg *linkAgg) (samples []float64, probes, ases int) {
	byAS := make(map[ipmap.ASN][]int) // ASN → probe ids
	for id, pa := range agg.perProbe {
		byAS[pa.asn] = append(byAS[pa.asn], id)
	}
	if d.cfg.DisableDiversityFilter {
		for _, ids := range byAS {
			ases++
			for _, id := range ids {
				probes++
				samples = append(samples, agg.perProbe[id].samples...)
			}
		}
		return samples, probes, ases
	}
	if len(byAS) < d.cfg.MinASes {
		return nil, 0, 0
	}
	// Sort probe lists for deterministic dropping.
	for _, ids := range byAS {
		sort.Ints(ids)
	}
	counts := func() []int {
		out := make([]int, 0, len(byAS))
		for _, ids := range byAS {
			out = append(out, len(ids))
		}
		return out
	}
	for stats.NormalizedEntropy(counts()) <= d.cfg.MinEntropy {
		// Find the most-represented AS (deterministic tie-break on ASN).
		var maxAS ipmap.ASN
		maxN := -1
		asns := make([]ipmap.ASN, 0, len(byAS))
		for asn := range byAS {
			asns = append(asns, asn)
		}
		sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
		for _, asn := range asns {
			if len(byAS[asn]) > maxN {
				maxN = len(byAS[asn])
				maxAS = asn
			}
		}
		if maxN <= 1 {
			// Cannot improve entropy further; §4.3's loop always
			// terminates before this in practice, but guard regardless.
			break
		}
		ids := byAS[maxAS]
		drop := d.rng.IntN(len(ids))
		byAS[maxAS] = append(ids[:drop], ids[drop+1:]...)
	}
	for _, ids := range byAS {
		if len(ids) == 0 {
			continue
		}
		ases++
		for _, id := range ids {
			probes++
			samples = append(samples, agg.perProbe[id].samples...)
		}
	}
	return samples, probes, ases
}

// collectAll gathers every probe's samples without diversity filtering —
// the symmetric-link path (§9 future work) where return-path ambiguity
// does not exist.
func collectAll(agg *linkAgg) (samples []float64, probes, ases int) {
	asSeen := make(map[ipmap.ASN]struct{})
	ids := make([]int, 0, len(agg.perProbe))
	for id := range agg.perProbe {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		pa := agg.perProbe[id]
		probes++
		asSeen[pa.asn] = struct{}{}
		samples = append(samples, pa.samples...)
	}
	return samples, probes, len(asSeen)
}

// Deviation computes d(∆) of Eq 6: the gap between the observed and
// reference confidence intervals, normalized by the reference interval's
// own half-width on the crossed side. Overlapping intervals score 0.
func Deviation(obs, ref stats.MedianCI) float64 {
	const eps = 1e-3 // guards division when the reference CI is degenerate
	switch {
	case ref.Upper < obs.Lower:
		den := ref.Upper - ref.Median
		if den < eps {
			den = eps
		}
		return (obs.Lower - ref.Upper) / den
	case ref.Lower > obs.Upper:
		den := ref.Median - ref.Lower
		if den < eps {
			den = eps
		}
		return (ref.Lower - obs.Upper) / den
	default:
		return 0
	}
}
