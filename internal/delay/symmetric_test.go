package delay

import (
	"math/rand/v2"
	"testing"
	"time"

	"pinpoint/internal/ipmap"
	"pinpoint/internal/trace"
)

// All probes in one AS: the standard diversity filter discards the link,
// but marking it symmetric (the §9 future-work path) accepts it, and a
// genuine shift is then detected from a single-AS vantage.
func TestSymmetricLinkReleasesDiversity(t *testing.T) {
	oneAS := func(id int) (ipmap.ASN, bool) { return 64999, true }
	key := trace.LinkKey{Near: nearA, Far: farB}

	run := func(symmetric bool) ([]Alarm, int) {
		evaluated := 0
		cfg := Config{Seed: 1, Observer: func(o Observation) { evaluated++ }}
		if symmetric {
			cfg.SymmetricLink = func(k trace.LinkKey) bool { return k == key }
		}
		d := NewDetector(cfg, oneAS)
		rng := rand.New(rand.NewPCG(4, 4))
		var alarms []Alarm
		for bin := 0; bin < 9; bin++ {
			at := t0.Add(time.Duration(bin) * time.Hour)
			shift := 0.0
			if bin == 8 {
				shift = 10
			}
			for p := 1; p <= 8; p++ {
				alarms = append(alarms, d.Observe(mkResult(p, at, 5, 7+shift, rng))...)
			}
		}
		alarms = append(alarms, d.Flush()...)
		return alarms, evaluated
	}

	alarms, evaluated := run(false)
	if evaluated != 0 || len(alarms) != 0 {
		t.Errorf("single-AS link should be discarded without symmetry: evaluated=%d alarms=%d", evaluated, len(alarms))
	}

	alarms, evaluated = run(true)
	if evaluated == 0 {
		t.Fatal("symmetric link never evaluated")
	}
	if len(alarms) != 1 {
		t.Fatalf("alarms = %d, want 1 (the +10ms shift)", len(alarms))
	}
	if alarms[0].ASes != 1 || alarms[0].Probes != 8 {
		t.Errorf("alarm diversity bookkeeping = %d ASes / %d probes", alarms[0].ASes, alarms[0].Probes)
	}
}

// Symmetric marking must be per-link: other links keep the full filter.
func TestSymmetricLinkScopedToKey(t *testing.T) {
	oneAS := func(id int) (ipmap.ASN, bool) { return 64999, true }
	other := trace.LinkKey{Near: farB, Far: nearA} // reversed: different key
	evaluated := 0
	cfg := Config{
		Seed:          1,
		Observer:      func(o Observation) { evaluated++ },
		SymmetricLink: func(k trace.LinkKey) bool { return k == other },
	}
	d := NewDetector(cfg, oneAS)
	rng := rand.New(rand.NewPCG(5, 5))
	for bin := 0; bin < 3; bin++ {
		at := t0.Add(time.Duration(bin) * time.Hour)
		for p := 1; p <= 8; p++ {
			d.Observe(mkResult(p, at, 5, 7, rng)) // produces (nearA, farB) only
		}
	}
	d.Flush()
	if evaluated != 0 {
		t.Errorf("non-marked link evaluated %d times despite single-AS probes", evaluated)
	}
}
